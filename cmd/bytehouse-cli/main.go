// Command bytehouse-cli is an interactive SQL shell over the reproduction
// warehouse with ByteCard driving the optimizer. Each result is followed by
// the execution metrics (reader strategies, block I/O, hash resizes) so the
// optimizer's decisions are visible.
//
//	bytehouse-cli -dataset imdb -scale 0.02
//	bytehouse> SELECT COUNT(*) FROM title WHERE production_year > 2010;
//	bytehouse> \estimate SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id;
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bytecard"
	"bytecard/internal/rbx"
)

func main() {
	var (
		dataset     = flag.String("dataset", "toy", "dataset: imdb, stats, aeolus, toy")
		scale       = flag.Float64("scale", 0.05, "dataset scale factor")
		seed        = flag.Int64("seed", 1, "generator seed")
		estimator   = flag.String("estimator", "bytecard", "optimizer estimator: bytecard, sketch, sample, heuristic")
		parallelism = flag.Int("parallelism", 0, "executor worker count (0 = BYTECARD_PARALLELISM env, then GOMAXPROCS; 1 = sequential)")
		residualFl  = flag.Bool("residual", false, "enable the online residual corrector (executed truth feeds back into estimates; also BYTECARD_RESIDUAL=1)")
		pushdown    = flag.Bool("pushdown", true, "enable the pushdown scan contract: zone-map block skipping, predicate/projection/limit pushdown (also BYTECARD_PUSHDOWN)")
	)
	flag.Parse()
	// The pushdown knob is tri-state at the Options level: 0 defers to
	// BYTECARD_PUSHDOWN, so only an explicit -pushdown flag pins it.
	pd := 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "pushdown" {
			if *pushdown {
				pd = 1
			} else {
				pd = -1
			}
		}
	})
	if err := run(*dataset, *scale, *seed, *estimator, *parallelism, *residualFl, pd); err != nil {
		fmt.Fprintln(os.Stderr, "bytehouse-cli:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, estimator string, parallelism int, residualOn bool, pd int) error {
	fmt.Printf("opening %s (scale %.3g) and training ByteCard models...\n", dataset, scale)
	sys, err := bytecard.Open(bytecard.Options{
		Dataset: dataset, Scale: scale, Seed: seed, Estimator: estimator, Parallelism: parallelism,
		Pushdown:           pd,
		ResidualCorrection: residualOn,
		RBX:                rbx.TrainConfig{Columns: 200, Epochs: 8, MaxPop: 30000, Seed: seed + 9},
	})
	if err != nil {
		return err
	}
	fmt.Printf("ready: %d tables, %d rows. Commands: \\tables, \\estimate <sql>, \\ndv <sql>, \\explain <sql>, \\metrics, \\cache [flush], \\quit\n",
		len(sys.Dataset.DB.TableNames()), sys.Dataset.DB.TotalRows())

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("bytehouse> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(scanner.Text()), ";"))
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return nil
		case line == `\tables`:
			for _, name := range sys.Dataset.DB.TableNames() {
				t := sys.Dataset.DB.Table(name)
				fmt.Printf("  %-18s %8d rows  (%s)\n", name, t.NumRows(), strings.Join(t.ColumnNames(), ", "))
			}
		case strings.HasPrefix(line, `\estimate `):
			sql := strings.TrimPrefix(line, `\estimate `)
			est, err := sys.EstimateCount(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			truth, err := sys.TrueCount(sql)
			if err != nil {
				fmt.Println("error computing truth:", err)
				continue
			}
			fmt.Printf("estimate: %.1f   truth: %.0f   q-error: %.2f\n", est, truth, qerr(est, truth))
		case strings.HasPrefix(line, `\ndv `):
			sql := strings.TrimPrefix(line, `\ndv `)
			est, err := sys.EstimateNDV(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("NDV estimate: %.1f\n", est)
		case strings.HasPrefix(line, `\explain `):
			sql := strings.TrimPrefix(line, `\explain `)
			plan, err := sys.Explain(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(plan)
			for _, s := range plan.Trace {
				fmt.Println("  trace:", s.String())
			}
		case line == `\cache`:
			b, err := json.MarshalIndent(sys.Infer.Admin().CacheStats(), "", "  ")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(string(b))
		case line == `\cache flush`:
			fmt.Printf("flushed %d cached entries\n", sys.Infer.Admin().FlushCaches())
		case line == `\metrics`:
			b, err := json.MarshalIndent(sys.Metrics(), "", "  ")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(string(b))
		default:
			res, err := sys.Run(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(strings.Join(res.Columns, " | "))
			limit := len(res.Rows)
			if limit > 25 {
				limit = 25
			}
			for _, row := range res.Rows[:limit] {
				cells := make([]string, len(row))
				for i, d := range row {
					cells[i] = d.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			if len(res.Rows) > limit {
				fmt.Printf("... (%d rows total)\n", len(res.Rows))
			}
			m := res.Metrics
			read, skipped := m.IO.BlocksRead(), m.IO.BlocksSkipped()
			ratio := 0.0
			if read+skipped > 0 {
				ratio = float64(skipped) / float64(read+skipped)
			}
			fmt.Printf("-- %d rows; plan %.2fms exec %.2fms; %d workers; %d blocks read, %d skipped (%.0f%% skip); readers %v; agg resizes %d\n",
				len(res.Rows), float64(m.PlanDuration.Microseconds())/1000,
				float64(m.ExecDuration.Microseconds())/1000, m.ParallelWorkers,
				read, skipped, ratio*100, m.ReaderStrategy, m.HashResizes)
		}
	}
}

func qerr(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
