// Command bytecard-train runs the ModelForge training pipeline for one
// dataset and writes the artifacts into a model store directory.
//
//	bytecard-train -dataset imdb -scale 0.05 -store ./models
package main

import (
	"flag"
	"fmt"
	"os"

	"bytecard/internal/datagen"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

func main() {
	var (
		dataset = flag.String("dataset", "imdb", "dataset: imdb, stats, aeolus, toy")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		dir     = flag.String("store", "./models", "model store directory")
		buckets = flag.Int("buckets", 50, "FactorJoin bucket count")
		sample  = flag.Int("sample", 8000, "BN training sample rows")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *dir, *buckets, *sample); err != nil {
		fmt.Fprintln(os.Stderr, "bytecard-train:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, dir string, buckets, sampleRows int) error {
	ds, err := datagen.ByName(dataset, datagen.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d tables, %d rows\n", ds.Name, len(ds.DB.TableNames()), ds.DB.TotalRows())
	store, err := modelstore.Open(dir)
	if err != nil {
		return err
	}
	forge := modelforge.New(ds.Name, ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows:  sampleRows,
		BucketCount: buckets,
		RBX:         rbx.TrainConfig{Columns: 400, Epochs: 12, MaxPop: 50000, Seed: seed + 9},
		Seed:        seed,
	})
	report, err := forge.TrainAll()
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-12s %12s %12s\n", "Artifact", "Kind", "Size(KB)", "Train(s)")
	for _, m := range report.Models {
		fmt.Printf("%-28s %-12s %12.1f %12.2f\n", m.Name, m.Kind, float64(m.SizeBytes)/1024, m.TrainSeconds)
	}
	fmt.Printf("total training time: %.1fs; artifacts in %s\n", report.TotalSeconds, dir)
	return nil
}
