// Command bytecard-bench regenerates the paper's evaluation tables and
// figures on the synthetic reproduction datasets.
//
// Usage:
//
//	bytecard-bench -exp all            # every experiment
//	bytecard-bench -exp table1,fig5    # a subset
//	bytecard-bench -scale 0.1 -seed 7  # bigger data, different seed
//
// Output is a textual rendering of each table/figure; EXPERIMENTS.md in
// the repository root records a reference run.
//
// The estimation fast-path suite (pooled BN inference, batched join DP,
// parallel training) runs separately and persists a JSON baseline:
//
//	bytecard-bench -estimation                 # full suite -> BENCH_estimation.json
//	bytecard-bench -estimation -smoke          # CI gate: seconds, not minutes
//	bytecard-bench -estimation -out other.json
//	bytecard-bench -check BENCH_estimation.json  # enforce speedup floors
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bytecard/internal/bench"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,table5,table6,fig5,fig6a,fig6b,fig7 or all; drift (residual-correction drift study) runs only when named explicitly")
		scale      = flag.Float64("scale", 0.05, "dataset scale factor")
		seed       = flag.Int64("seed", 1, "generator seed")
		probes     = flag.Int("probes", 60, "Q-error probes per dataset")
		datasets   = flag.String("datasets", "imdb,stats,aeolus", "datasets to evaluate")
		verbose    = flag.Bool("v", false, "log progress")
		estimation = flag.Bool("estimation", false, "run the estimation fast-path suite instead of the paper experiments")
		smoke      = flag.Bool("smoke", false, "with -estimation: shrink iterations/data to a CI-sized compile-and-run gate")
		out        = flag.String("out", "BENCH_estimation.json", "with -estimation: report output path")
		par        = flag.Int("parallelism", 4, "with -estimation: batched planner worker count")
		check      = flag.String("check", "", "validate an estimation report against the fast-path speedup floors and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := bench.CheckJSON(*check); err != nil {
			fmt.Fprintln(os.Stderr, "bytecard-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: all speedup floors hold\n", *check)
		return
	}

	var logf func(format string, args ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *estimation {
		if err := runEstimation(bench.EstimationConfig{
			Smoke: *smoke, Parallelism: *par, Seed: *seed, Log: logf,
		}, *out); err != nil {
			fmt.Fprintln(os.Stderr, "bytecard-bench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, ProbeCount: *probes, Log: logf}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	names := strings.Split(*datasets, ",")

	if err := run(cfg, names, func(name string) bool { return all || want[name] }); err != nil {
		fmt.Fprintln(os.Stderr, "bytecard-bench:", err)
		os.Exit(1)
	}
	// The drift study builds its own environments (clean-trained models vs
	// drifted data), so it is opt-in rather than part of -exp all.
	if want["drift"] {
		if err := runDrift(cfg, names); err != nil {
			fmt.Fprintln(os.Stderr, "bytecard-bench:", err)
			os.Exit(1)
		}
	}
}

func runDrift(cfg bench.Config, datasets []string) error {
	fmt.Println("== Drift: stale-model q-error before/after online residual correction ==")
	fmt.Printf("%-8s %-12s %8s %8s %8s %10s\n", "Dataset", "Mode", "P50", "P90", "P99", "max")
	for _, ds := range datasets {
		rows, err := bench.DriftExperiment(ds, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			s := r.Summary
			fmt.Printf("%-8s %-12s %8.2f %8.2f %8.2f %10.2f\n", r.Dataset, r.Mode, s.P50, s.P90, s.P99, s.Max)
		}
	}
	fmt.Println()
	return nil
}

func runEstimation(cfg bench.EstimationConfig, out string) error {
	rep, err := bench.EstimationSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Estimation fast path: before (baseline) vs after (fast path) ==")
	fmt.Printf("%-14s %14s %14s %8s %12s %12s %10s\n",
		"Bench", "before(ns)", "after(ns)", "speedup", "allocs-before", "allocs-after", "ratio")
	for _, b := range rep.Benches {
		fmt.Printf("%-14s %14.0f %14.0f %8.2f %12.1f %12.1f %10.1f\n",
			b.Name, b.Before.NsPerOp, b.After.NsPerOp, b.Speedup,
			b.Before.AllocsPerOp, b.After.AllocsPerOp, b.AllocRatio)
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	fmt.Println("\nreport written to", out)
	return nil
}

func run(cfg bench.Config, datasets []string, want func(string) bool) error {
	needEnv := want("table1") || want("table2") || want("table3") || want("table5") ||
		want("table6") || want("fig5") || want("fig7")
	envs := map[string]*bench.Env{}
	if needEnv {
		for _, ds := range datasets {
			env, err := bench.NewEnv(ds, cfg)
			if err != nil {
				return fmt.Errorf("environment for %s: %w", ds, err)
			}
			envs[ds] = env
		}
	}

	if want("table1") {
		fmt.Println("== Table 1: Estimation Errors of Traditional CardEst Methods ==")
		if err := printQErrorTable(datasets, envs, func(e *bench.Env) ([]bench.QErrorRow, error) { return e.Table1() }); err != nil {
			return err
		}
	}
	if want("table2") {
		fmt.Println("== Table 2: Estimation Errors of Learned CardEst Methods (ByteCard) ==")
		if err := printQErrorTable(datasets, envs, func(e *bench.Env) ([]bench.QErrorRow, error) { return e.Table2() }); err != nil {
			return err
		}
	}
	if want("table3") {
		fmt.Println("== Table 3: Training Time and Model Size ==")
		fmt.Printf("%-24s %-8s %14s %14s\n", "Method", "Dataset", "TrainTime(s)", "ModelSize(KB)")
		for _, ds := range datasets {
			rows, err := envs[ds].Table3()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("%-24s %-8s %14.2f %14.1f\n", r.Method, r.Dataset, r.TrainSeconds, float64(r.ModelBytes)/1024)
			}
		}
		fmt.Println()
	}
	if want("table5") {
		fmt.Println("== Table 5: Workload Statistics ==")
		fmt.Printf("%-16s %8s %10s %8s %8s %12s %22s %10s %10s\n",
			"Workload", "queries", "templates", "tables", "grpkeys", "hit-max-tab", "true-card range", "hit-max", "grp-hit")
		for _, ds := range datasets {
			env := envs[ds]
			s, err := env.Table5()
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %8d %10d %d-%-6d %d-%-6d %12d %10.2g--%-10.2g %10d\n",
				env.Hybrid.Name, s.Queries, s.JoinTemplates, s.MinTables, s.MaxTables,
				s.MinGroupKeys, s.MaxGroupKeys, s.HitMaxTables, s.MinCard, s.MaxCard, s.HitMaxGroupKeys)
		}
		fmt.Println()
	}
	if want("table6") {
		fmt.Println("== Table 6: Details of ByteCard's Models Per Dataset ==")
		fmt.Printf("%-8s %-12s %14s %14s\n", "Dataset", "Method", "ModelSize(KB)", "TrainTime(s)")
		for _, ds := range datasets {
			for _, r := range envs[ds].Table6() {
				fmt.Printf("%-8s %-12s %14.1f %14.2f\n", r.Dataset, r.Method, float64(r.SizeBytes)/1024, r.TrainSeconds)
			}
		}
		fmt.Println()
	}
	if want("fig5") {
		fmt.Println("== Figure 5: Query Latency (normalized to slowest P99 per workload) ==")
		fmt.Printf("%-16s %-10s %8s %8s %8s %8s %12s %14s\n", "Workload", "Method", "P50", "P75", "P90", "P99", "total(s)", "plan-time(s)")
		for _, ds := range datasets {
			rows, err := envs[ds].Figure5()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("%-16s %-10s %8.3f %8.3f %8.3f %8.3f %12.2f %14.2f\n",
					r.Workload, r.Method, r.N50, r.N75, r.N90, r.N99, r.TotalSeconds, r.EstimatorPlanSeconds)
			}
		}
		fmt.Println()
	}
	if want("fig6a") {
		fmt.Println("== Figure 6a: Read I/Os across STATS scales (blocks) ==")
		scales := []float64{cfg.Scale * 0.5, cfg.Scale, cfg.Scale * 2, cfg.Scale * 4}
		rows, err := bench.Figure6a(cfg, scales)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-10s %12s %14s\n", "Scale", "Method", "Blocks", "Bytes(MB)")
		for _, r := range rows {
			fmt.Printf("%-8.3f %-10s %12d %14.1f\n", r.Scale, r.Method, r.Blocks, float64(r.Bytes)/(1<<20))
		}
		fmt.Println()
	}
	if want("fig6b") {
		fmt.Println("== Figure 6b: Hash-table resizing frequency across AEOLUS scales ==")
		scales := []float64{cfg.Scale * 0.5, cfg.Scale, cfg.Scale * 2, cfg.Scale * 4}
		rows, err := bench.Figure6b(cfg, scales)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-12s %10s\n", "Scale", "Method", "Resizes")
		for _, r := range rows {
			fmt.Printf("%-8.3f %-12s %10d\n", r.Scale, r.Method, r.Resizes)
		}
		fmt.Println()
	}
	if want("fig7") {
		fmt.Println("== Figure 7: Q-Error distributions over hybrid workloads ==")
		fmt.Printf("%-16s %-10s %8s %8s %8s %8s %8s %10s\n", "Workload", "Method", "min", "P25", "P50", "P75", "P90", "max")
		for _, ds := range datasets {
			rows, err := envs[ds].Figure7()
			if err != nil {
				return err
			}
			for _, r := range rows {
				s := r.Summary
				fmt.Printf("%-16s %-10s %8.2f %8.2f %8.2f %8.2f %8.2f %10.2f\n",
					envs[ds].Hybrid.Name, r.Method, s.Min, s.P25, s.P50, s.P75, s.P90, s.Max)
			}
		}
		fmt.Println()
	}
	return nil
}

func printQErrorTable(datasets []string, envs map[string]*bench.Env, f func(*bench.Env) ([]bench.QErrorRow, error)) error {
	fmt.Printf("%-10s %-8s %10s %10s %10s\n", "CardEst", "Dataset", "50%", "90%", "99%")
	for _, ds := range datasets {
		rows, err := f(envs[ds])
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10s %-8s %10.2f %10.2f %10.2f\n",
				r.Kind+" Est.", r.Dataset, r.Summary.P50, r.Summary.P90, r.Summary.P99)
		}
	}
	fmt.Println()
	return nil
}
