// Command bytecard-lint is ByteCard's static-analysis multichecker: seven
// project-specific analyzers enforcing the determinism, guard-discipline,
// pool-hygiene, clamping, crash-safe-write, and cache-publication
// conventions the estimation stack depends on.
//
// Standalone:
//
//	go run ./cmd/bytecard-lint ./...
//
// As a go vet tool (shares vet's per-package caching):
//
//	go build -o /tmp/bytecard-lint ./cmd/bytecard-lint
//	go vet -vettool=/tmp/bytecard-lint ./...
//
// Findings are suppressed per site with //bytecard:<key>-ok <reason>
// annotations (keys: atomicwrite, cacheput, clamp, directcall, pool, rand,
// unordered);
// the reason is mandatory.
package main

import "bytecard/internal/lint"

func main() {
	lint.Main(lint.All()...)
}
