// Command bytecard-lint is ByteCard's static-analysis multichecker: twelve
// project-specific analyzers enforcing the determinism, guard-discipline,
// pool-hygiene, clamping, crash-safe-write, cache-publication, lock,
// atomic-consistency, context-propagation, and goroutine-provenance
// conventions the estimation stack depends on.
//
// Standalone:
//
//	go run ./cmd/bytecard-lint ./...
//
// With SARIF output and the committed baseline:
//
//	go run ./cmd/bytecard-lint -sarif lint.sarif -baseline lint-baseline.json ./...
//
// As a go vet tool (shares vet's per-package caching):
//
//	go build -o /tmp/bytecard-lint ./cmd/bytecard-lint
//	go vet -vettool=/tmp/bytecard-lint ./...
//
// Findings are suppressed per site with //bytecard:<key>-ok <reason>
// annotations (keys: atomic, atomicwrite, cacheput, clamp, ctx, directcall,
// goroutine, lock, pool, rand, rawscan, unordered); the reason is mandatory.
package main

import "bytecard/internal/lint"

func main() {
	lint.Main(lint.All()...)
}
