// Command modelforge-server runs the ModelForge training service as a
// standalone HTTP server — the paper's isolated-training deployment shape.
//
//	modelforge-server -dataset stats -addr :8491 -store ./models
//
// Endpoints: POST /train, POST /train/{table}, POST /ingest,
// POST /finetune, GET /models.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"bytecard/internal/datagen"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

func main() {
	var (
		dataset = flag.String("dataset", "imdb", "dataset: imdb, stats, aeolus, toy")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		dir     = flag.String("store", "./models", "model store directory")
		addr    = flag.String("addr", ":8491", "listen address")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *dir, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "modelforge-server:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, dir, addr string) error {
	ds, err := datagen.ByName(dataset, datagen.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	store, err := modelstore.Open(dir)
	if err != nil {
		return err
	}
	svc := modelforge.New(ds.Name, ds.DB, ds.Schema, store, modelforge.Config{
		RBX:  rbx.TrainConfig{Columns: 400, Epochs: 12, MaxPop: 50000, Seed: seed + 9},
		Seed: seed,
	})
	fmt.Printf("modelforge-server: dataset %s (%d rows), store %s, listening on %s\n",
		ds.Name, ds.DB.TotalRows(), dir, addr)
	return http.ListenAndServe(addr, modelforge.NewServer(svc))
}
