// Command modelforge-server runs the ModelForge training service as a
// standalone hardened HTTP server — the paper's isolated-training
// deployment shape, with the serving-resilience layer on: socket timeouts,
// bounded in-flight admission (429 + Retry-After on overload), per-request
// deadlines propagated into training, panic recovery, /healthz + /readyz
// probes, and graceful drain on SIGINT/SIGTERM.
//
//	modelforge-server -dataset stats -addr :8491 -store ./models
//
// Endpoints: POST /train, POST /train/{table}, POST /ingest,
// POST /finetune, GET /models, GET /healthz, GET /readyz.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bytecard/internal/datagen"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

func main() {
	var (
		dataset  = flag.String("dataset", "imdb", "dataset: imdb, stats, aeolus, toy")
		scale    = flag.Float64("scale", 0.05, "dataset scale factor")
		seed     = flag.Int64("seed", 1, "generator seed")
		dir      = flag.String("store", "./models", "model store directory")
		addr     = flag.String("addr", ":8491", "listen address")
		keepGens = flag.Int("keep-generations", modelstore.DefaultKeepGenerations,
			"artifact generations retained per model key for corruption fallback")
		maxInFlight = flag.Int("max-inflight", 8,
			"concurrent requests served before shedding with 429")
		reqTimeout = flag.Duration("request-timeout", 10*time.Minute,
			"per-request deadline propagated into training")
		drainGrace = flag.Duration("shutdown-grace", 30*time.Second,
			"time allowed for in-flight requests to drain on shutdown")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *dir, *addr, *keepGens, *maxInFlight, *reqTimeout, *drainGrace); err != nil {
		fmt.Fprintln(os.Stderr, "modelforge-server:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, dir, addr string,
	keepGens, maxInFlight int, reqTimeout, drainGrace time.Duration) error {
	ds, err := datagen.ByName(dataset, datagen.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	store, err := modelstore.Open(dir, modelstore.WithKeepGenerations(keepGens))
	if err != nil {
		return err
	}
	svc := modelforge.New(ds.Name, ds.DB, ds.Schema, store, modelforge.Config{
		RBX:  rbx.TrainConfig{Columns: 400, Epochs: 12, MaxPop: 50000, Seed: seed + 9},
		Seed: seed,
	})
	h := modelforge.NewHardened(svc, modelforge.ServeConfig{
		MaxInFlight:    maxInFlight,
		RequestTimeout: reqTimeout,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.ListenAndServe(addr) }()
	fmt.Printf("modelforge-server: dataset %s (%d rows), store %s (keep %d gens), listening on %s\n",
		ds.Name, ds.DB.TotalRows(), dir, keepGens, addr)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("modelforge-server: draining (readiness off)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := h.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return <-serveErr
}
