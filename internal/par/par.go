// Package par provides the bounded worker pool used by model training
// (Chow-Liu MI matrix, FactorJoin build). Training parallelism is resolved
// separately from the executor's BYTECARD_PARALLELISM: training runs in
// ModelForge's background refresh, not on the query critical path, so it
// gets its own knob (BYTECARD_TRAIN_WORKERS).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Do runs fn(i) for every i in [0, n) across at most workers goroutines,
// each pulling the next index from a shared atomic cursor, and blocks until
// all calls return. With workers <= 1 or n <= 1 it degenerates to a plain
// serial loop (no goroutines). fn must be safe to call concurrently for
// distinct indices; Do establishes a happens-before edge from every fn call
// to its return, so callers may read results without further locking.
func Do(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// envTrainWorkers reads BYTECARD_TRAIN_WORKERS once; 0 means unset/invalid.
var envTrainWorkers = sync.OnceValue(func() int {
	if s := os.Getenv("BYTECARD_TRAIN_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
})

// TrainWorkers resolves the training worker count: an explicit positive
// request wins, then BYTECARD_TRAIN_WORKERS, then GOMAXPROCS.
func TrainWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	if v := envTrainWorkers(); v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}
