// Package par provides the bounded worker pools used by model training
// (Chow-Liu MI matrix, FactorJoin build) and the executor's morsel-driven
// scans (Chunks, Strided). It is the repo's one blessed goroutine source:
// every library fan-out routes through here — enforced by the
// goroutinesrc analyzer — so worker clamping and scheduling determinism
// stay centralized. Training parallelism is resolved separately from the
// executor's BYTECARD_PARALLELISM: training runs in ModelForge's
// background refresh, not on the query critical path, so it gets its own
// knob (BYTECARD_TRAIN_WORKERS).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Do runs fn(i) for every i in [0, n) across at most workers goroutines,
// each pulling the next index from a shared atomic cursor, and blocks until
// all calls return. With workers <= 1 or n <= 1 it degenerates to a plain
// serial loop (no goroutines). fn must be safe to call concurrently for
// distinct indices; Do establishes a happens-before edge from every fn call
// to its return, so callers may read results without further locking.
func Do(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks runs fn for every chunk index in [0, chunks) across up to
// workers goroutines, dispatching chunks dynamically (morsel-driven: an
// atomic cursor balances uneven chunks) and passing each call the spawned
// worker's index. Callers write outputs into chunk-indexed slots, which
// keeps concatenation deterministic regardless of scheduling. With
// workers <= 1 it degenerates to a serial loop on worker 0.
func Chunks(workers, chunks int, fn func(worker, chunk int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(0, c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(worker, c)
			}
		}(w)
	}
	wg.Wait()
}

// Strided statically assigns chunk c to worker c mod workers, each worker
// visiting its chunks in ascending order. Aggregation uses this instead of
// dynamic dispatch so each worker's accumulation order — and therefore
// floating-point partial sums — is reproducible run to run.
func Strided(workers, chunks int, fn func(worker, chunk int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(0, c)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for c := worker; c < chunks; c += workers {
				fn(worker, c)
			}
		}(w)
	}
	wg.Wait()
}

// Effective clamps a requested worker count to the machine's effective
// parallelism. Spawning more CPU-bound workers than GOMAXPROCS is pure
// scheduling overhead — on a one-CPU box a "4-worker" fan-out serializes
// anyway, paying goroutine spawn and cursor contention for nothing — so
// every fan-out decision (estimator batches, training pools) routes its
// request through here and the 1-effective-worker path degenerates to
// the plain serial loop inside Do.
func Effective(workers int) int {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// overheadOnce measures, once per process, the fixed cost of one Do
// fan-out (goroutine spawn, shared-cursor contention, WaitGroup join)
// over the serial loop on a trivial body. The measurement is clamped to
// [1µs, 1ms]: the floor keeps a degenerate reading (GOMAXPROCS=1, where
// Do never spawns) meaningful, the ceiling keeps one noisy scheduling
// hiccup from suppressing fan-out for the whole process lifetime.
var overheadOnce = sync.OnceValue(func() time.Duration {
	const rounds, n = 8, 64
	body := func(int) {}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		Do(n, 1, body)
	}
	serial := time.Since(start)
	start = time.Now()
	for r := 0; r < rounds; r++ {
		Do(n, runtime.GOMAXPROCS(0), body)
	}
	d := (time.Since(start) - serial) / rounds
	if d < time.Microsecond {
		d = time.Microsecond
	}
	if d > time.Millisecond {
		d = time.Millisecond
	}
	return d
})

// Overhead returns the measured per-call fixed cost of a Do fan-out on
// this machine. Callers compare it against the work a batch would spread
// across workers to decide whether fanning out pays at all.
func Overhead() time.Duration { return overheadOnce() }

// envTrainWorkers reads BYTECARD_TRAIN_WORKERS once; 0 means unset/invalid.
var envTrainWorkers = sync.OnceValue(func() int {
	if s := os.Getenv("BYTECARD_TRAIN_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
})

// TrainWorkers resolves the training worker count: an explicit positive
// request wins, then BYTECARD_TRAIN_WORKERS, then GOMAXPROCS — clamped
// to effective parallelism either way, so a 4-worker request on a 1-CPU
// box takes the serial path (trained artifacts are byte-identical at any
// worker count, so the clamp is a pure wall-clock win).
func TrainWorkers(requested int) int {
	switch {
	case requested > 0:
	case envTrainWorkers() > 0:
		requested = envTrainWorkers()
	default:
		requested = runtime.GOMAXPROCS(0)
	}
	return Effective(requested)
}
