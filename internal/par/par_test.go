package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoversEveryIndexOnce checks each index is visited exactly once for
// serial, bounded, and oversubscribed worker counts.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		const n = 237
		var hits [n]atomic.Int32
		Do(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

// TestDoHappensBefore writes results from workers and reads them without
// locking after Do returns — the documented happens-before contract. Run
// under -race this is a real synchronization check, not just a sum check.
func TestDoHappensBefore(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	Do(n, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestTrainWorkersExplicitWins(t *testing.T) {
	// An explicit request wins over env/GOMAXPROCS resolution, but every
	// resolution is clamped to effective parallelism: extra CPU-bound
	// workers on a smaller machine are pure scheduling overhead, and the
	// trained artifacts are byte-identical at any worker count.
	want := 3
	if m := runtime.GOMAXPROCS(0); m < want {
		want = m
	}
	if got := TrainWorkers(3); got != want {
		t.Errorf("TrainWorkers(3) = %d, want %d", got, want)
	}
	if got := TrainWorkers(0); got < 1 {
		t.Errorf("TrainWorkers(0) = %d, want >= 1", got)
	}
}

func TestEffectiveClamps(t *testing.T) {
	m := runtime.GOMAXPROCS(0)
	if got := Effective(m + 7); got != m {
		t.Errorf("Effective(%d) = %d, want %d", m+7, got, m)
	}
	if got := Effective(0); got != 1 {
		t.Errorf("Effective(0) = %d, want 1", got)
	}
	if got := Effective(1); got != 1 {
		t.Errorf("Effective(1) = %d, want 1", got)
	}
}

func TestOverheadBounded(t *testing.T) {
	d := Overhead()
	if d < time.Microsecond || d > time.Millisecond {
		t.Errorf("Overhead() = %v, want within [1µs, 1ms]", d)
	}
}
