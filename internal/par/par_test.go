package par

import (
	"sync/atomic"
	"testing"
)

// TestDoCoversEveryIndexOnce checks each index is visited exactly once for
// serial, bounded, and oversubscribed worker counts.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		const n = 237
		var hits [n]atomic.Int32
		Do(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

// TestDoHappensBefore writes results from workers and reads them without
// locking after Do returns — the documented happens-before contract. Run
// under -race this is a real synchronization check, not just a sum check.
func TestDoHappensBefore(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	Do(n, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestTrainWorkersExplicitWins(t *testing.T) {
	if got := TrainWorkers(3); got != 3 {
		t.Errorf("TrainWorkers(3) = %d", got)
	}
	if got := TrainWorkers(0); got < 1 {
		t.Errorf("TrainWorkers(0) = %d, want >= 1", got)
	}
}
