package faultinject_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/costmodel"
	"bytecard/internal/datagen"
	"bytecard/internal/faultinject"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
)

// trainedStore trains every model family twice into one store, so each
// artifact has a fallback generation behind its newest.
func trainedStore(t *testing.T) (string, *modelstore.Store) {
	t.Helper()
	dir := t.TempDir()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.Toy(datagen.Config{Scale: 0.5, Seed: 23})
	svc := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 600, BucketCount: 12,
		RBX:  rbx.TrainConfig{Columns: 40, Epochs: 2, MaxPop: 4000, Seed: 1},
		Seed: 1,
	})
	for round := 0; round < 2; round++ {
		if _, err := svc.TrainAll(); err != nil {
			t.Fatalf("train round %d: %v", round, err)
		}
		traces := make([]costmodel.Trace, 12)
		for i := range traces {
			traces[i] = costmodel.Trace{
				Features: []float64{
					float64(i + round), float64(i % 3), 1, float64(i * i),
					float64(round), 2, float64(i % 5), 0.5,
				},
				Millis: float64(10 + i + round),
			}
		}
		if _, err := svc.TrainCostModel(traces, costmodel.TrainConfig{Epochs: 20, Seed: 5}); err != nil {
			t.Fatalf("train cost model round %d: %v", round, err)
		}
	}
	// The base RBX model is workload-independent and trains only when
	// missing, so the rounds above leave it a single generation; re-publish
	// it to give it a fallback too.
	a, err := store.Get(modelforge.RBXBaseName)
	if err != nil {
		t.Fatal(err)
	}
	a.Timestamp = a.Timestamp.Add(time.Hour)
	if err := store.Put(a); err != nil {
		t.Fatal(err)
	}
	return dir, store
}

// manifestOfKind returns one stored manifest of the given kind.
func manifestOfKind(t *testing.T, store *modelstore.Store, kind core.ModelKind) modelstore.Manifest {
	t.Helper()
	list, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range list {
		if m.Kind == kind {
			return m
		}
	}
	t.Fatalf("no %s artifact in store", kind)
	return modelstore.Manifest{}
}

// TestCorruptedArtifactFallback is the satellite's table: for every model
// kind the store serves, corrupt the newest generation on disk (torn upload
// via Truncate, bit rot via Garble) and assert the load path quarantines the
// bad file, falls back to the last-known-good generation, and surfaces the
// incident through the obs counters and Health.
func TestCorruptedArtifactFallback(t *testing.T) {
	cases := []struct {
		kind    core.ModelKind
		corrupt func([]byte) []byte
	}{
		{core.KindBN, func(b []byte) []byte { return faultinject.Truncate(b, 0.4) }},
		{core.KindFactorJoin, func(b []byte) []byte { return faultinject.Garble(b, 7) }},
		{core.KindRBX, func(b []byte) []byte { return faultinject.Truncate(b, 0.7) }},
		{core.KindCost, func(b []byte) []byte { return faultinject.Garble(b, 11) }},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			dir, store := trainedStore(t)
			m := manifestOfKind(t, store, tc.kind)
			if len(m.Generations) < 2 {
				t.Fatalf("%s: %d generations, need a fallback behind the newest", m.Name, len(m.Generations))
			}
			newest := m.Generations[0]
			path := filepath.Join(dir, newest.File)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			got, err := store.Get(m.Name)
			if err != nil {
				t.Fatalf("get %s with corrupt newest generation: %v", m.Name, err)
			}
			if got.Kind != tc.kind {
				t.Errorf("served kind = %s, want %s", got.Kind, tc.kind)
			}
			// The survivor is the older generation, verified against its own
			// checksum and served with its own metadata.
			want := m.Generations[1]
			if int64(len(got.Data)) != want.SizeBytes {
				t.Errorf("served %d bytes, fallback generation has %d", len(got.Data), want.SizeBytes)
			}
			if !got.Timestamp.Equal(want.Timestamp) {
				t.Errorf("served timestamp %v, want fallback's %v", got.Timestamp, want.Timestamp)
			}
			// The bad generation is quarantined, not deleted, for forensics.
			if _, err := os.Stat(filepath.Join(dir, "quarantine", newest.File)); err != nil {
				t.Errorf("corrupt generation not quarantined: %v", err)
			}
			snap := store.Obs().Snapshot()
			if snap.Corruptions != 1 || snap.Quarantines != 1 || snap.Fallbacks != 1 {
				t.Errorf("obs = %+v, want one corruption/quarantine/fallback", snap)
			}
			h := store.Health()
			if len(h.Degraded) != 1 || h.Degraded[0] != m.Name {
				t.Errorf("health degraded = %v, want [%s]", h.Degraded, m.Name)
			}
			// Every other kind still loads clean.
			for _, other := range cases {
				if other.kind == tc.kind {
					continue
				}
				om := manifestOfKind(t, store, other.kind)
				if _, err := store.Get(om.Name); err != nil {
					t.Errorf("untouched %s failed to load: %v", om.Name, err)
				}
			}
			if snap := store.Obs().Snapshot(); snap.Corruptions != 1 {
				t.Errorf("clean loads re-flagged corruption: %+v", snap)
			}
		})
	}
}
