// Package faultinject provides deterministic, seed-driven fault injection
// for chaos-testing ByteCard's fault-tolerance layer. An Injector
// implements core.FaultHook: armed rules fire panics, NaN outputs, and
// artificial inference delays against matching model keys, each drawn from
// a seeded generator so a failing run replays exactly. The package also
// builds corrupt artifact payloads (truncation, byte garbling) for
// exercising the Model Loader's skip-and-continue contract, and provides
// StoreHook — deterministic crash points for the model store's write path:
// named barriers that abort the process-under-test (an emulated crash) or
// fail with an injected error, so a chaos sweep can prove the store
// recovers to a consistent generation from a crash at every barrier.
// Production code never links an Injector or StoreHook; the hooks stay nil.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/modelstore"
)

// Kind is a fault class.
type Kind int

// Fault classes.
const (
	// Panic makes the model call panic before inference runs.
	Panic Kind = iota
	// NaN replaces the model's output with NaN.
	NaN
	// Delay stalls the model call by the rule's Delay.
	Delay
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case NaN:
		return "nan"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule arms one fault class against matching model keys.
type Rule struct {
	Kind Kind
	// KeyPrefix limits the rule to model keys with this prefix ("bn:",
	// "factorjoin", "rbx", "costmodel"); empty matches every key.
	KeyPrefix string
	// Rate is the per-call injection probability in (0, 1]; 0 means 1
	// (inject on every matching call).
	Rate float64
	// Delay is the artificial latency for Delay rules.
	Delay time.Duration
}

// Injector is a deterministic core.FaultHook.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	counts map[Kind]int64
}

var _ core.FaultHook = (*Injector)(nil)

// New creates an injector; all probability draws derive from seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), counts: map[Kind]int64{}}
}

// Arm adds a rule.
func (in *Injector) Arm(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
}

// Disarm drops every rule (the injected fault "heals").
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Injected returns how many faults of a class have fired.
func (in *Injector) Injected(k Kind) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// fireLocked decides whether a rule triggers on this call.
func (in *Injector) fireLocked(r Rule, key string) bool {
	if r.KeyPrefix != "" && !strings.HasPrefix(key, r.KeyPrefix) {
		return false
	}
	if r.Rate > 0 && r.Rate < 1 && in.rng.Float64() >= r.Rate {
		return false
	}
	return true
}

// Before implements core.FaultHook: it runs inside the guard's recovery
// scope ahead of the model call, sleeping for armed delays and panicking
// for armed panics (delays apply first so a call can be both slow and
// fatal).
func (in *Injector) Before(key string) {
	in.mu.Lock()
	var sleep time.Duration
	panics := false
	for _, r := range in.rules {
		switch r.Kind {
		case Delay:
			if in.fireLocked(r, key) {
				sleep += r.Delay
				in.counts[Delay]++
			}
		case Panic:
			if in.fireLocked(r, key) {
				panics = true
				in.counts[Panic]++
			}
		}
	}
	in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if panics {
		panic(fmt.Sprintf("faultinject: injected panic in %s", key))
	}
}

// Transform implements core.FaultHook: armed NaN rules replace the model's
// output.
func (in *Injector) Transform(key string, v float64) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Kind == NaN && in.fireLocked(r, key) {
			in.counts[NaN]++
			return math.NaN()
		}
	}
	return v
}

// crashPanic is the sentinel payload of an emulated process crash fired at
// a store write barrier. It is unexported so only IsCrash can classify it.
type crashPanic struct{ point string }

// IsCrash reports whether a recovered panic value is an emulated crash
// fired by a StoreHook, returning the barrier it fired at.
func IsCrash(r any) (string, bool) {
	c, ok := r.(crashPanic)
	if !ok {
		return "", false
	}
	return c.point, true
}

// StoreHook is a deterministic modelstore.WriteHook: it records every write
// barrier traversed (so a chaos sweep can enumerate them from a clean run)
// and can arm exactly one crash (panic that unwinds like a process abort —
// no further writes happen) or one injected failure (the barrier returns an
// error, as a full disk or flaky volume would) at a named point.
type StoreHook struct {
	mu      sync.Mutex
	visited []string
	crashAt string
	failAt  string
	failErr error
}

var _ modelstore.WriteHook = (*StoreHook)(nil)

// NewStoreHook creates an unarmed hook that only records barriers.
func NewStoreHook() *StoreHook { return &StoreHook{} }

// At implements modelstore.WriteHook.
func (h *StoreHook) At(point string) error {
	h.mu.Lock()
	h.visited = append(h.visited, point)
	crash := h.crashAt == point
	var fail error
	if h.failAt == point {
		fail = h.failErr
	}
	h.mu.Unlock()
	if crash {
		panic(crashPanic{point: point})
	}
	return fail
}

// ArmCrash makes the next traversal of point panic like a process crash.
func (h *StoreHook) ArmCrash(point string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashAt = point
}

// ArmFail makes every traversal of point return err (injected I/O failure).
func (h *StoreHook) ArmFail(point string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failAt, h.failErr = point, err
}

// DisarmStore clears armed crash and failure points (recording continues).
func (h *StoreHook) DisarmStore() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashAt, h.failAt, h.failErr = "", "", nil
}

// Visited returns the barriers traversed so far, in order.
func (h *StoreHook) Visited() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.visited...)
}

// ResetVisited clears the recorded barrier trace.
func (h *StoreHook) ResetVisited() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.visited = nil
}

// Truncate returns the leading fraction of an artifact payload — what a
// torn upload leaves in the model store.
func Truncate(data []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return append([]byte{}, data[:int(float64(len(data))*frac)]...)
}

// Garble returns a copy of an artifact payload with seed-chosen bytes
// flipped — bit rot that keeps the original length.
func Garble(data []byte, seed int64) []byte {
	out := append([]byte{}, data...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	flips := len(out)/16 + 1
	for i := 0; i < flips; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}
