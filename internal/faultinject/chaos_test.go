package faultinject_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"bytecard"
	"bytecard/internal/core"
	"bytecard/internal/faultinject"
	"bytecard/internal/rbx"
)

// smoke is the chaos workload: filters, a join, NDV, and grouping over the
// toy schema, touching every model family (BN, FactorJoin, RBX).
var smoke = []string{
	"SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 1",
	"SELECT COUNT(*) FROM fact WHERE val < 20",
	"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 2",
	"SELECT COUNT(DISTINCT val) FROM fact",
	"SELECT val, COUNT(*) FROM fact GROUP BY val",
}

func openSystem(t *testing.T, opts bytecard.Options) *bytecard.System {
	t.Helper()
	opts.Dataset = "toy"
	opts.Scale = 1
	opts.Seed = 17
	opts.StoreDir = t.TempDir()
	opts.SampleRows = 800
	opts.BucketCount = 12
	opts.RBX = rbx.TrainConfig{Columns: 50, Epochs: 2, MaxPop: 5000, Seed: 1}
	// Plan caching off for the whole chaos suite: every run must exercise
	// the guarded model path, not replay decisions cached while computing
	// the fault-free ground truths.
	opts.PlanCacheBytes = -1
	sys, err := bytecard.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// truths runs the workload fault-free and records each query's result shape
// (and scalar value where the shape is scalar). Execution correctness must
// be identical under injection: faults may only degrade estimation.
func truths(t *testing.T, sys *bytecard.System) map[string][2]int64 {
	t.Helper()
	out := map[string][2]int64{}
	for _, sql := range smoke {
		res, err := sys.Run(sql)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		v, err := res.ScalarInt()
		if err != nil {
			v = -1 // non-scalar: compare row counts only
		}
		out[sql] = [2]int64{int64(len(res.Rows)), v}
	}
	return out
}

// runSmoke executes the workload under an active fault and checks every
// query completes with the fault-free result.
func runSmoke(t *testing.T, sys *bytecard.System, want map[string][2]int64, fault string) {
	t.Helper()
	for _, sql := range smoke {
		res, err := sys.Run(sql)
		if err != nil {
			t.Fatalf("%s: query %q failed: %v", fault, sql, err)
		}
		v, err := res.ScalarInt()
		if err != nil {
			v = -1
		}
		got := [2]int64{int64(len(res.Rows)), v}
		if got != want[sql] {
			t.Errorf("%s: query %q = %v, want %v", fault, sql, got, want[sql])
		}
	}
}

func TestChaosPanic(t *testing.T) {
	sys := openSystem(t, bytecard.Options{})
	want := truths(t, sys)
	inj := faultinject.New(101)
	inj.Arm(faultinject.Rule{Kind: faultinject.Panic})
	sys.SetFaultHook(inj)
	before := sys.Metrics()

	runSmoke(t, sys, want, "panic")

	h := sys.Metrics()
	if inj.Injected(faultinject.Panic) == 0 {
		t.Fatal("no panics were injected")
	}
	if h.Guard.Panics == 0 {
		t.Error("guard recovered no panics")
	}
	if h.Estimator.Fallbacks <= before.Estimator.Fallbacks {
		t.Errorf("fallbacks did not move: %d -> %d", before.Estimator.Fallbacks, h.Estimator.Fallbacks)
	}
	// Healing the fault restores the learned path (breakers may need the
	// cooldown; use a fresh key check instead of waiting).
	sys.SetFaultHook(nil)
	runSmoke(t, sys, want, "healed")
}

func TestChaosNaN(t *testing.T) {
	sys := openSystem(t, bytecard.Options{})
	want := truths(t, sys)
	inj := faultinject.New(102)
	inj.Arm(faultinject.Rule{Kind: faultinject.NaN})
	sys.SetFaultHook(inj)
	before := sys.Metrics()

	runSmoke(t, sys, want, "nan")

	h := sys.Metrics()
	if inj.Injected(faultinject.NaN) == 0 {
		t.Fatal("no NaNs were injected")
	}
	if h.Guard.Invalid == 0 {
		t.Error("sanitizer rejected no estimates")
	}
	if h.Estimator.Fallbacks <= before.Estimator.Fallbacks {
		t.Errorf("fallbacks did not move: %d -> %d", before.Estimator.Fallbacks, h.Estimator.Fallbacks)
	}
	// The estimation API must never surface NaN: either a clean error or
	// a finite value (via fallback-free single-table path this errors).
	if v, err := sys.EstimateCount(smoke[0]); err == nil && (math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
		t.Errorf("EstimateCount leaked invalid value %v", v)
	}
}

func TestChaosDelay(t *testing.T) {
	sys := openSystem(t, bytecard.Options{
		Guard: core.GuardConfig{LatencyBudget: 5 * time.Millisecond},
	})
	want := truths(t, sys)
	inj := faultinject.New(103)
	inj.Arm(faultinject.Rule{Kind: faultinject.Delay, Delay: 50 * time.Millisecond})
	sys.SetFaultHook(inj)
	before := sys.Metrics()

	runSmoke(t, sys, want, "delay")

	h := sys.Metrics()
	if inj.Injected(faultinject.Delay) == 0 {
		t.Fatal("no delays were injected")
	}
	if h.Guard.Timeouts == 0 {
		t.Error("latency budget never tripped")
	}
	if h.Estimator.Fallbacks <= before.Estimator.Fallbacks {
		t.Errorf("fallbacks did not move: %d -> %d", before.Estimator.Fallbacks, h.Estimator.Fallbacks)
	}
}

func TestChaosCorruptArtifact(t *testing.T) {
	sys := openSystem(t, bytecard.Options{})
	want := truths(t, sys)

	// Retrain both tables so strictly newer artifacts land in the store,
	// then corrupt their payloads on disk: one truncated, one garbled.
	future := time.Now().Add(time.Hour)
	manifests, err := sys.Store.List()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, m := range manifests {
		if m.Kind != core.KindBN {
			continue
		}
		if _, err := sys.Forge.TrainTableAt(m.Table, future); err != nil {
			t.Fatal(err)
		}
		art, err := sys.Store.Get(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if corrupted == 0 {
			art.Data = faultinject.Truncate(art.Data, 0.4)
		} else {
			art.Data = faultinject.Garble(art.Data, 7)
		}
		art.Timestamp = future.Add(time.Minute)
		if err := sys.Store.Put(art); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no BN artifacts to corrupt")
	}

	// The refresh must report the corruption but keep serving: the
	// previously installed models stay live and queries stay correct.
	if _, err := sys.RefreshModels(); err == nil {
		t.Error("refresh must surface the corrupt artifacts")
	}
	if h := sys.Metrics(); h.Loader.LastError == "" || h.Loader.ConsecutiveFailures != 1 {
		t.Errorf("loader health = %+v, want recorded failure", h.Loader)
	}
	runSmoke(t, sys, want, "corrupt-artifact")
	if _, err := sys.EstimateCount(smoke[0]); err != nil {
		t.Errorf("estimation lost its models after corrupt refresh: %v", err)
	}
}

func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	sys := openSystem(t, bytecard.Options{
		Breaker: core.BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, HalfOpenProbes: 1},
	})
	want := truths(t, sys)
	now := time.Now()
	clock := now
	var mu sync.Mutex
	sys.Infer.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	})
	inj := faultinject.New(104)
	inj.Arm(faultinject.Rule{Kind: faultinject.Panic, KeyPrefix: "bn:fact"})
	sys.SetFaultHook(inj)

	// Three failing calls open the breaker.
	fv, err := sys.Featurizer.FeaturizeSQLQuery(smoke[0])
	if err != nil {
		t.Fatal(err)
	}
	ft := fv.Query().Tables[0]
	for i := 0; i < 3; i++ {
		sys.Estimator.EstimateFilter(ft)
	}
	if st := sys.Infer.BreakerState("bn:fact"); st != core.BreakerOpen {
		t.Fatalf("breaker = %s after 3 panics, want open", st)
	}
	panicsAtOpen := sys.Metrics().Guard.Panics

	// While open, calls skip the model entirely (no new panics) and the
	// workload still completes via fallback.
	sys.Estimator.EstimateFilter(ft)
	runSmoke(t, sys, want, "breaker-open")
	if p := sys.Metrics().Guard.Panics; p != panicsAtOpen {
		t.Errorf("open breaker still invoked the model: panics %d -> %d", panicsAtOpen, p)
	}
	snap := sys.Infer.Snapshot()
	if snap.BreakerTrips == 0 {
		t.Error("snapshot shows no breaker trips")
	}
	found := false
	for _, b := range snap.Breakers {
		if b.Key == "bn:fact" && b.State == core.BreakerOpen && b.Failures >= 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot breakers missing open bn:fact: %+v", snap.Breakers)
	}

	// Heal the model and pass the cooldown: the half-open probe succeeds
	// and the breaker closes, restoring the learned path.
	inj.Disarm()
	mu.Lock()
	clock = now.Add(2 * time.Minute)
	mu.Unlock()
	fallbacksBefore := sys.Metrics().Estimator.Fallbacks
	sys.Estimator.EstimateFilter(ft)
	if st := sys.Infer.BreakerState("bn:fact"); st != core.BreakerClosed {
		t.Fatalf("breaker = %s after successful probe, want closed", st)
	}
	sys.Estimator.EstimateFilter(ft)
	if fb := sys.Metrics().Estimator.Fallbacks; fb != fallbacksBefore {
		t.Errorf("healed model still falling back: %d -> %d", fallbacksBefore, fb)
	}
	runSmoke(t, sys, want, "breaker-recovered")
}

// TestChaosConcurrent storms the system from many goroutines while panics
// and NaNs fire probabilistically; under -race this validates the guard,
// breaker, and loader locking, and the engine must never crash.
func TestChaosConcurrent(t *testing.T) {
	sys := openSystem(t, bytecard.Options{})
	want := truths(t, sys)
	inj := faultinject.New(105)
	inj.Arm(faultinject.Rule{Kind: faultinject.Panic, Rate: 0.3})
	inj.Arm(faultinject.Rule{Kind: faultinject.NaN, Rate: 0.3})
	sys.SetFaultHook(inj)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				for _, sql := range smoke {
					res, err := sys.Run(sql)
					if err != nil {
						errs <- err
						return
					}
					if int64(len(res.Rows)) != want[sql][0] {
						errs <- nil
					}
				}
				_, _ = sys.RefreshModels() // loader racing queries
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent chaos run failed: %v", err)
	}
	if inj.Injected(faultinject.Panic) == 0 && inj.Injected(faultinject.NaN) == 0 {
		t.Error("no faults fired during the storm")
	}
}
