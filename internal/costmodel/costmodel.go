// Package costmodel implements the paper's stated next step: a
// query-driven learned cost model deployed through the same framework as
// the CardEst models. Runtime traces (plan features paired with measured
// execution times) train a small regression network; inference predicts a
// plan's execution cost, enabling admission control and workload-management
// decisions. Unlike the CardEst models it is query-driven by design — the
// paper notes cost models need runtime traces, which the warehouse already
// logs.
package costmodel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"time"

	"bytecard/internal/engine"
	"bytecard/internal/nn"
	"bytecard/internal/sqlparse"
)

// FeatureDim is the plan-feature width.
const FeatureDim = 8

// Featurize encodes the optimizer's view of a plan: the signals available
// before execution.
func Featurize(p *engine.Plan) []float64 {
	var scanRows, multiStage, predCols float64
	for _, sp := range p.Scans {
		scanRows += sp.EstRows
		if sp.Strategy == "multi-stage" {
			multiStage++
		}
		predCols += float64(len(sp.ColOrder))
	}
	var baseRows float64
	for _, t := range p.Query.Tables {
		baseRows += float64(t.Table.NumRows())
	}
	return []float64{
		float64(len(p.Query.Tables)),
		float64(len(p.Query.Joins)),
		math.Log1p(scanRows),
		math.Log1p(baseRows),
		math.Log1p(p.EstFinalRows),
		math.Log1p(float64(p.AggCapacity)),
		multiStage,
		float64(len(p.Query.GroupBy)),
	}
}

// Trace is one runtime observation.
type Trace struct {
	Features []float64
	// Millis is the measured plan+execution latency.
	Millis float64
}

// CollectTraces runs queries through the engine, recording plan features
// and measured latency — the runtime-trace logging the warehouse performs.
func CollectTraces(exec *engine.Engine, sqls []string) ([]Trace, error) {
	var traces []Trace
	for _, sql := range sqls {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		q, err := exec.Analyze(stmt)
		if err != nil {
			return nil, err
		}
		planStart := time.Now()
		p, err := exec.Plan(q)
		if err != nil {
			return nil, err
		}
		feat := Featurize(p)
		res, err := exec.Execute(p)
		if err != nil {
			return nil, err
		}
		total := time.Since(planStart)
		_ = res
		traces = append(traces, Trace{Features: feat, Millis: float64(total.Microseconds()) / 1000})
	}
	return traces, nil
}

// Model is a trained cost regressor (predicts log-milliseconds).
type Model struct {
	Net          *nn.Network
	TrainSeconds float64
}

// TrainConfig controls training.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
}

// Train fits the cost model on runtime traces.
func Train(traces []Trace, cfg TrainConfig) (*Model, error) {
	if len(traces) < 8 {
		return nil, errors.New("costmodel: need at least 8 traces")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 120
	}
	if cfg.LR <= 0 {
		cfg.LR = 3e-3
	}
	start := time.Now()
	var xs [][]float64
	var ys []float64
	for _, t := range traces {
		if len(t.Features) != FeatureDim {
			return nil, fmt.Errorf("costmodel: trace has %d features, want %d", len(t.Features), FeatureDim)
		}
		xs = append(xs, t.Features)
		ys = append(ys, math.Log1p(t.Millis))
	}
	net := nn.NewNetwork(cfg.Seed+1, FeatureDim, 32, 16, 1)
	if _, err := net.Train(xs, ys, nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 16, LR: cfg.LR, Seed: cfg.Seed + 2,
	}); err != nil {
		return nil, err
	}
	return &Model{Net: net, TrainSeconds: time.Since(start).Seconds()}, nil
}

// PredictMillis estimates a plan's latency from its features (floored at
// zero: the network regresses log-latency and may dip below log(1) for
// sub-millisecond plans).
func (m *Model) PredictMillis(features []float64) float64 {
	ms := math.Expm1(m.Net.Forward(features)[0])
	if ms < 0 {
		return 0
	}
	return ms
}

// PredictPlan estimates a plan's latency directly.
func (m *Model) PredictPlan(p *engine.Plan) float64 {
	return m.PredictMillis(Featurize(p))
}

// Validate checks network health (the Model Validator hook; cost models
// ride the same load/validate/initContext protocol as CardEst models).
func (m *Model) Validate() error {
	if m.Net == nil {
		return errors.New("costmodel: missing network")
	}
	if m.Net.InputDim() != FeatureDim {
		return fmt.Errorf("costmodel: input dim %d, want %d", m.Net.InputDim(), FeatureDim)
	}
	return m.Net.Validate()
}

// SizeBytes reports the parameter footprint.
func (m *Model) SizeBytes() int64 { return m.Net.SizeBytes() }

// Encode serializes the model with gob.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes and validates a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
