package costmodel_test

import (
	"math"
	"testing"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/costmodel"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/sqlparse"
	"bytecard/internal/workload"
)

func collect(t *testing.T) (*engine.Engine, []costmodel.Trace) {
	t.Helper()
	ds := datagen.IMDB(datagen.Config{Scale: 0.02, Seed: 81})
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	w, err := workload.JOBHybrid(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sqls []string
	for _, q := range w.Queries[:60] {
		sqls = append(sqls, q.SQL)
	}
	traces, err := costmodel.CollectTraces(exec, sqls)
	if err != nil {
		t.Fatal(err)
	}
	return exec, traces
}

func TestCollectTraces(t *testing.T) {
	_, traces := collect(t)
	if len(traces) != 60 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Features) != costmodel.FeatureDim {
			t.Fatalf("feature dim %d", len(tr.Features))
		}
		if tr.Millis < 0 {
			t.Fatalf("negative latency %g", tr.Millis)
		}
	}
}

func TestTrainPredictsBetterThanMean(t *testing.T) {
	// Synthetic target derived from the features: wall-clock latencies are
	// too noisy under parallel test load to grade the regressor reliably.
	exec, traces := collect(t)
	_ = exec
	for i := range traces {
		f := traces[i].Features
		traces[i].Millis = math.Expm1(0.3*f[0] + 0.25*f[4] + 0.1*f[2])
	}
	train, test := traces[:45], traces[45:]
	model, err := costmodel.Train(train, costmodel.TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: predict the training mean (in log space).
	var meanLog float64
	for _, tr := range train {
		meanLog += math.Log1p(tr.Millis)
	}
	meanLog /= float64(len(train))
	var modelErr, baseErr float64
	for _, tr := range test {
		y := math.Log1p(tr.Millis)
		p := math.Log1p(math.Max(model.PredictMillis(tr.Features), 0))
		modelErr += (p - y) * (p - y)
		baseErr += (meanLog - y) * (meanLog - y)
	}
	if modelErr >= baseErr {
		t.Errorf("model MSE %g not better than mean baseline %g", modelErr, baseErr)
	}
	if model.TrainSeconds <= 0 || model.SizeBytes() <= 0 {
		t.Error("metadata missing")
	}
}

func TestPredictPlan(t *testing.T) {
	exec, traces := collect(t)
	model, err := costmodel.Train(traces, costmodel.TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := exec.Analyze(sqlparse.MustParse("SELECT COUNT(*) FROM title WHERE production_year > 2000"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if ms := model.PredictPlan(p); ms < 0 || math.IsNaN(ms) {
		t.Errorf("PredictPlan = %g", ms)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := costmodel.Train(nil, costmodel.TrainConfig{}); err == nil {
		t.Error("too few traces must fail")
	}
	bad := make([]costmodel.Trace, 10)
	for i := range bad {
		bad[i] = costmodel.Trace{Features: []float64{1}, Millis: 1}
	}
	if _, err := costmodel.Train(bad, costmodel.TrainConfig{}); err == nil {
		t.Error("wrong feature width must fail")
	}
}

func TestEncodeDecodeAndFrameworkLoad(t *testing.T) {
	_, traces := collect(t)
	model, err := costmodel.Train(traces, costmodel.TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := costmodel.Decode(data); err != nil {
		t.Fatal(err)
	}
	if _, err := costmodel.Decode([]byte("junk")); err == nil {
		t.Error("garbage must fail")
	}
	// The framework hosts cost models through the same artifact protocol.
	infer := core.NewInferenceEngine(core.Options{})
	err = infer.LoadModel(core.Artifact{
		Name: "imdb/costmodel", Kind: core.KindCost, Timestamp: time.Now(), Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if infer.CostModel() == nil {
		t.Fatal("cost model not retrievable from the inference engine")
	}
	infer.Disable("costmodel")
	if infer.CostModel() != nil {
		t.Error("disabled cost model must be hidden")
	}
}
