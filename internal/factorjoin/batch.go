package factorjoin

import (
	"sort"
	"strings"
	"sync"
)

// Memo carries inference state shared across one batch of Estimate calls
// (one join-order DP rank, or a whole DP). The factor-graph walk repeats
// the same sub-computations for every connected subset it sizes — the
// single-variable leaf messages of each joined table, the per-bucket
// effective-NDV vectors those leaves contribute at the combination root
// (a Cardenas pow() per bucket per side, the dominant cost), the
// P(b_u|b_v) conditional matrices, and the per-variable key-domain
// vectors. A Memo computes each of those once per batch and shares the
// result across items, turning the per-rank cost from
// O(subsets · tables · buckets) pow-calls into O(tables · buckets).
//
// Everything memoized here is a pure function of the model plus the
// CountSource's answer for one (binding, column): identical inputs give
// bit-identical floats, and memoized values are never mutated after
// construction, so EstimateWithMemo returns exactly what Estimate would
// — the byte-identity the planner's batched/sequential parity contract
// requires (asserted in tests).
//
// A Memo must only be shared across calls that resolve bindings
// consistently (items of one query) against one model and one
// CountSource. It is safe for concurrent use: entries are computed
// outside the lock and the first completed insert wins, so racing
// workers converge on one shared value.
type Memo struct {
	mu      sync.Mutex
	leaves  map[string]*leafEntry
	conds   map[string][]float64
	domains map[string][]float64
}

// leafEntry is one memoized single-variable factor message with its
// per-bucket effective-NDV vector (and the error, if construction
// failed — a missing model fails identically for every item).
type leafEntry struct {
	m   msg
	err error
}

// NewMemo returns an empty memo ready for one batch.
func NewMemo() *Memo {
	return &Memo{
		leaves:  map[string]*leafEntry{},
		conds:   map[string][]float64{},
		domains: map[string][]float64{},
	}
}

// leaf returns the memoized message for key, computing it via compute on
// first use. Concurrent duplicate computes produce identical values; the
// stored entry is returned so all consumers share one backing array.
func (mm *Memo) leaf(key string, compute func() (msg, error)) (msg, error) {
	mm.mu.Lock()
	if e, ok := mm.leaves[key]; ok {
		mm.mu.Unlock()
		return e.m, e.err
	}
	mm.mu.Unlock()
	m, err := compute()
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if e, ok := mm.leaves[key]; ok {
		return e.m, e.err
	}
	mm.leaves[key] = &leafEntry{m: m, err: err}
	return m, err
}

// vector is the shared get-or-compute for the conditional and domain
// maps (errors are not memoized there: conditional's only failure modes
// are model-shape mismatches that fail identically and cheaply).
func (mm *Memo) vector(table map[string][]float64, key string, compute func() []float64) []float64 {
	mm.mu.Lock()
	if v, ok := table[key]; ok {
		mm.mu.Unlock()
		return v
	}
	mm.mu.Unlock()
	v := compute()
	if v == nil {
		return nil // failed computes are not memoized
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if prev, ok := table[key]; ok {
		return prev
	}
	table[key] = v
	return v
}

// leafKey canonicalizes a single-variable factor: the binding resolves
// the filtered counts (CountSource answers per binding), name+col
// resolve the model-side KeyStats.
func leafKey(binding, name, col string) string {
	return binding + "\x1f" + name + "\x1f" + col
}

// condKey canonicalizes a conditional matrix: it depends only on the
// factor's physical table and the (v, u) column pair.
func condKey(name, colV, colU string) string {
	return name + "\x1f" + colV + "\x1f" + colU
}

// domainKey canonicalizes a variable's key-domain vector: varDomain reads
// only the KeyStats of the attached (table, column) pairs and folds them
// with max, so the sorted pair set is a complete, order-insensitive
// identity — the same variable reached through different subsets hits
// the same entry.
func domainKey(v *qvar) string {
	parts := make([]string, 0, len(v.factors))
	for _, f := range v.factors {
		parts = append(parts, f.name+"\x1f"+f.colOf[v.id])
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}
