// Package factorjoin implements the multi-table COUNT model ByteCard
// adopts: join-key domains are partitioned into equi-height "join buckets",
// each table keeps per-bucket statistics (count, distinct values, max
// value frequency), and a query-time factor graph over the join conditions
// combines per-table filtered bucket counts — supplied by the single-table
// Bayesian networks — into a join-size estimate or upper bound, without
// ever training on denormalized joins.
package factorjoin

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"bytecard/internal/catalog"
	"bytecard/internal/par"
	"bytecard/internal/storage"
)

// DefaultBucketCount matches the paper's equi-height bucket configuration.
const DefaultBucketCount = 200

// Buckets is the shared bucket layout of one join-key equivalence class.
type Buckets struct {
	// Class is the canonical class name (its first member reference).
	Class string
	// Bounds holds B+1 ascending boundaries; bucket i covers
	// [Bounds[i], Bounds[i+1]) with the last bucket closed.
	Bounds []float64
}

// Count returns the number of buckets.
func (b *Buckets) Count() int { return len(b.Bounds) - 1 }

// BucketOf maps a key value to its bucket, or -1 outside the domain.
func (b *Buckets) BucketOf(v float64) int {
	if v < b.Bounds[0] || v > b.Bounds[len(b.Bounds)-1] {
		return -1
	}
	i := sort.SearchFloat64s(b.Bounds, v)
	if i > 0 && (i >= len(b.Bounds) || b.Bounds[i] != v) {
		i--
	}
	if i >= b.Count() {
		i = b.Count() - 1
	}
	return i
}

// KeyStats are one table-column's per-bucket statistics (unfiltered; query
// filters arrive through the CountSource at inference time).
type KeyStats struct {
	Table  string
	Column string
	Class  string
	// Cnt is the row count per bucket.
	Cnt []float64
	// NDV is the distinct key count per bucket.
	NDV []float64
	// MaxF is the maximum single-value frequency per bucket (the quantity
	// FactorJoin's upper bound multiplies).
	MaxF []float64
}

// Model is a trained FactorJoin model for one dataset.
type Model struct {
	// BucketsByClass maps class name to layout.
	BucketsByClass map[string]*Buckets
	// Keys maps "table.column" to stats.
	Keys map[string]*KeyStats
	// PairJoint maps "table|colA|colB" (colA < colB) to the row-major
	// bucketsA×bucketsB joint count matrix — the key-tree conditionals
	// behind the distribution-dimension reduction for fact tables with
	// several join keys.
	PairJoint map[string][]float64
	// BuildSeconds records construction time (FactorJoin's "training").
	BuildSeconds float64
}

func keyName(table, column string) string { return table + "." + column }
func pairName(t, a, b string) string      { return t + "|" + a + "|" + b }
func orderedPair(a, b string) (string, string) {
	if a < b {
		return a, b
	}
	return b, a
}

// Build constructs join buckets and per-key statistics for every join class
// over the database, single-threaded. See BuildWorkers for the parallel
// variant; both produce byte-identical models.
func Build(db *storage.Database, classes []catalog.JoinClass, bucketCount int) (*Model, error) {
	return BuildWorkers(db, classes, bucketCount, 1)
}

// classWork is one join class's independent build unit: its resolved member
// columns going in, its bucket layout and per-member stats coming out.
type classWork struct {
	name    string
	refs    []catalog.ColumnRef
	cols    []*storage.Column
	buckets *Buckets
	stats   []*KeyStats
}

// pairWork is one multi-key table's (colA, colB) joint-matrix build unit.
type pairWork struct {
	table   string
	ca, cb  string
	ba, bb  *Buckets
	colA    *storage.Column
	colB    *storage.Column
	numRows int
	joint   []float64
}

// BuildWorkers constructs the model fanning the independent build units —
// one per join class (value union, bucket bounds, per-member key stats) and
// one per multi-key table column pair (joint bucket matrix) — across at
// most workers goroutines. Each unit writes only its own slot and all map
// merges run serially in deterministic order, so the resulting model is
// byte-identical for every worker count.
func BuildWorkers(db *storage.Database, classes []catalog.JoinClass, bucketCount, workers int) (*Model, error) {
	start := time.Now()
	if bucketCount <= 1 {
		bucketCount = DefaultBucketCount
	}
	if workers < 1 {
		workers = 1
	}
	m := &Model{
		BucketsByClass: map[string]*Buckets{},
		Keys:           map[string]*KeyStats{},
		PairJoint:      map[string][]float64{},
	}
	// Resolve member columns serially so reference errors surface in class
	// declaration order regardless of scheduling.
	var work []*classWork
	for _, class := range classes {
		if len(class.Members) == 0 {
			continue
		}
		cw := &classWork{name: class.Members[0].String()}
		for _, ref := range class.Members {
			t := db.Table(ref.Table)
			if t == nil {
				return nil, fmt.Errorf("factorjoin: class %s references unknown table %s", cw.name, ref.Table)
			}
			col := t.ColByName(ref.Column)
			if col == nil {
				return nil, fmt.Errorf("factorjoin: class %s references unknown column %s", cw.name, ref)
			}
			cw.refs = append(cw.refs, ref)
			cw.cols = append(cw.cols, col)
		}
		work = append(work, cw)
	}
	par.Do(len(work), workers, func(i int) {
		cw := work[i]
		// Union multiset of key values across member columns.
		var values []float64
		for _, col := range cw.cols {
			values = append(values, col.NumericAll()...)
		}
		if len(values) == 0 {
			return
		}
		cw.buckets = buildBuckets(cw.name, values, bucketCount)
		cw.stats = make([]*KeyStats, len(cw.cols))
		for j := range cw.cols {
			cw.stats[j] = buildKeyStats(cw.refs[j], cw.cols[j], cw.buckets)
		}
	})
	keysByTable := map[string][]*KeyStats{}
	var tableOrder []string
	for _, cw := range work {
		if cw.buckets == nil {
			continue
		}
		m.BucketsByClass[cw.name] = cw.buckets
		for j, ref := range cw.refs {
			m.Keys[keyName(ref.Table, ref.Column)] = cw.stats[j]
			if _, ok := keysByTable[ref.Table]; !ok {
				tableOrder = append(tableOrder, ref.Table)
			}
			keysByTable[ref.Table] = append(keysByTable[ref.Table], cw.stats[j])
		}
	}
	// Pairwise joint bucket matrices for multi-key tables.
	var pairs []*pairWork
	for _, table := range tableOrder {
		keys := keysByTable[table]
		if len(keys) < 2 {
			continue
		}
		t := db.Table(table)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := keys[i], keys[j]
				ca, cb := a.Column, b.Column
				if cb < ca {
					a, b = b, a
					ca, cb = cb, ca
				}
				pairs = append(pairs, &pairWork{
					table: table, ca: ca, cb: cb,
					ba: m.BucketsByClass[a.Class], bb: m.BucketsByClass[b.Class],
					colA: t.ColByName(ca), colB: t.ColByName(cb), numRows: t.NumRows(),
				})
			}
		}
	}
	par.Do(len(pairs), workers, func(i int) {
		pw := pairs[i]
		joint := make([]float64, pw.ba.Count()*pw.bb.Count())
		nb := pw.bb.Count()
		for r := 0; r < pw.numRows; r++ {
			ia, ib := pw.ba.BucketOf(pw.colA.Numeric(r)), pw.bb.BucketOf(pw.colB.Numeric(r))
			if ia >= 0 && ib >= 0 {
				joint[ia*nb+ib]++
			}
		}
		pw.joint = joint
	})
	for _, pw := range pairs {
		m.PairJoint[pairName(pw.table, pw.ca, pw.cb)] = pw.joint
	}
	m.BuildSeconds = time.Since(start).Seconds()
	return m, nil
}

// buildBuckets derives strictly increasing equi-height bounds.
func buildBuckets(name string, values []float64, count int) *Buckets {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	target := float64(len(sorted)) / float64(count)
	bounds := []float64{sorted[0]}
	var acc float64
	for i := 0; i < len(sorted)-1; i++ {
		acc++
		if acc >= target && sorted[i+1] > bounds[len(bounds)-1] {
			bounds = append(bounds, sorted[i+1])
			acc = 0
		}
	}
	last := sorted[len(sorted)-1]
	if last > bounds[len(bounds)-1] {
		bounds = append(bounds, math.Nextafter(last, math.Inf(1)))
	} else {
		bounds = append(bounds, bounds[len(bounds)-1]+1)
	}
	return &Buckets{Class: name, Bounds: bounds}
}

func buildKeyStats(ref catalog.ColumnRef, col *storage.Column, buckets *Buckets) *KeyStats {
	n := buckets.Count()
	ks := &KeyStats{
		Table:  ref.Table,
		Column: ref.Column,
		Class:  buckets.Class,
		Cnt:    make([]float64, n),
		NDV:    make([]float64, n),
		MaxF:   make([]float64, n),
	}
	freq := make([]map[float64]float64, n)
	for i := range freq {
		freq[i] = map[float64]float64{}
	}
	for r := 0; r < col.Len(); r++ {
		v := col.Numeric(r)
		if b := buckets.BucketOf(v); b >= 0 {
			ks.Cnt[b]++
			freq[b][v]++
		}
	}
	for b := range freq {
		ks.NDV[b] = float64(len(freq[b]))
		//bytecard:unordered-ok max over a bucket's value frequencies is commutative
		for _, f := range freq[b] {
			if f > ks.MaxF[b] {
				ks.MaxF[b] = f
			}
		}
	}
	return ks
}

// BoundsFor exposes a key column's bucket bounds (the forced discretization
// the table's Bayesian network adopts so its key marginals align with the
// join buckets). ok is false for non-key columns.
func (m *Model) BoundsFor(table, column string) ([]float64, bool) {
	ks, ok := m.Keys[keyName(table, column)]
	if !ok {
		return nil, false
	}
	return m.BucketsByClass[ks.Class].Bounds, true
}

// NDVFor exposes a key column's exact per-bucket distinct counts (computed
// from the full column during the build). Tables' Bayesian networks adopt
// these as their bin NDVs so equality predicates on join keys estimate
// against exact distinct counts rather than sampled approximations.
func (m *Model) NDVFor(table, column string) ([]float64, bool) {
	ks, ok := m.Keys[keyName(table, column)]
	if !ok {
		return nil, false
	}
	return ks.NDV, true
}

// KeyColumns lists the join-key columns recorded for a table.
func (m *Model) KeyColumns(table string) []string {
	var out []string
	for _, ks := range m.Keys {
		if ks.Table == table {
			out = append(out, ks.Column)
		}
	}
	sort.Strings(out)
	return out
}

// SizeBytes reports the model's parameter footprint.
func (m *Model) SizeBytes() int64 {
	var total int64
	for _, b := range m.BucketsByClass {
		total += int64(len(b.Bounds)) * 8
	}
	for _, k := range m.Keys {
		total += int64(len(k.Cnt)+len(k.NDV)+len(k.MaxF)) * 8
	}
	for _, j := range m.PairJoint {
		total += int64(len(j)) * 8
	}
	return total
}

// sortedKeys returns m's keys in ascending order — every map the model owns
// is walked through this so serialization and validation are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// wireModel is the model's deterministic serialization shape: gob encodes
// maps in iteration order, which Go randomizes, so the maps are flattened
// into key-sorted slices first. Two builds of the same model therefore
// produce byte-identical artifacts, which keeps modelstore checksums and
// A/B regression diffs stable.
type wireModel struct {
	Classes      []wireClass
	Keys         []wireKey
	PairJoints   []wirePair
	BuildSeconds float64
}

type wireClass struct {
	Name    string
	Buckets *Buckets
}

type wireKey struct {
	Name  string
	Stats *KeyStats
}

type wirePair struct {
	Name  string
	Joint []float64
}

// Encode serializes the model with gob over the key-sorted wire format;
// equal models encode to equal bytes.
func (m *Model) Encode() ([]byte, error) {
	w := wireModel{BuildSeconds: m.BuildSeconds}
	for _, name := range sortedKeys(m.BucketsByClass) {
		w.Classes = append(w.Classes, wireClass{Name: name, Buckets: m.BucketsByClass[name]})
	}
	for _, name := range sortedKeys(m.Keys) {
		w.Keys = append(w.Keys, wireKey{Name: name, Stats: m.Keys[name]})
	}
	for _, name := range sortedKeys(m.PairJoint) {
		w.PairJoints = append(w.PairJoints, wirePair{Name: name, Joint: m.PairJoint[name]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes and validates a model.
func Decode(data []byte) (*Model, error) {
	var w wireModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	m := Model{
		BucketsByClass: make(map[string]*Buckets, len(w.Classes)),
		Keys:           make(map[string]*KeyStats, len(w.Keys)),
		PairJoint:      make(map[string][]float64, len(w.PairJoints)),
		BuildSeconds:   w.BuildSeconds,
	}
	for _, c := range w.Classes {
		m.BucketsByClass[c.Name] = c.Buckets
	}
	for _, k := range w.Keys {
		m.Keys[k.Name] = k.Stats
	}
	for _, p := range w.PairJoints {
		m.PairJoint[p.Name] = p.Joint
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks structural consistency (the Model Validator health hook).
// Maps are walked in key order so a multi-problem model always reports the
// same first error.
func (m *Model) Validate() error {
	if len(m.BucketsByClass) == 0 {
		return errors.New("factorjoin: model has no join classes")
	}
	for _, name := range sortedKeys(m.BucketsByClass) {
		b := m.BucketsByClass[name]
		if len(b.Bounds) < 2 {
			return fmt.Errorf("factorjoin: class %s has %d bounds", name, len(b.Bounds))
		}
		if !sort.Float64sAreSorted(b.Bounds) {
			return fmt.Errorf("factorjoin: class %s bounds unsorted", name)
		}
	}
	for _, name := range sortedKeys(m.Keys) {
		k := m.Keys[name]
		b, ok := m.BucketsByClass[k.Class]
		if !ok {
			return fmt.Errorf("factorjoin: key %s references unknown class %s", name, k.Class)
		}
		n := b.Count()
		if len(k.Cnt) != n || len(k.NDV) != n || len(k.MaxF) != n {
			return fmt.Errorf("factorjoin: key %s stats misshaped", name)
		}
		for i := range k.Cnt {
			if k.Cnt[i] < 0 || math.IsNaN(k.Cnt[i]) || k.MaxF[i] > k.Cnt[i] || k.NDV[i] > k.Cnt[i] {
				return fmt.Errorf("factorjoin: key %s bucket %d inconsistent", name, i)
			}
		}
	}
	return nil
}
