package factorjoin

import (
	"fmt"
	"math"

	"bytecard/internal/cardinal"
)

// Mode selects between the probabilistic point estimate and the upper
// bound FactorJoin natively produces.
type Mode int

// Inference modes.
const (
	// ModeEstimate combines average per-value frequencies under the
	// containment assumption (min-NDV).
	ModeEstimate Mode = iota
	// ModeBound combines maximum per-value frequencies, yielding an upper
	// bound on the true join size when the supplied bucket counts are
	// exact upper bounds.
	ModeBound
)

// QueryTable identifies one joined table.
type QueryTable struct {
	// Binding is the query alias; Name the physical table carrying stats.
	Binding, Name string
}

// Cond is one equi-join condition between bindings.
type Cond struct {
	LBind, LCol string
	RBind, RCol string
}

// CountSource supplies the filtered per-bucket row counts of one table's
// key column — in ByteCard this is the table's Bayesian network evaluated
// jointly with the key bucket (P(filters ∧ key∈b)·|T|); tests supply exact
// counts.
type CountSource func(binding, table, column string, bounds []float64) ([]float64, error)

// qvar is a join variable: an equivalence class of joined columns.
type qvar struct {
	id      int
	class   string
	buckets *Buckets
	factors []*qfactor
}

// qfactor is a joined table with its variables.
type qfactor struct {
	binding, name string
	vars          []*qvar
	colOf         map[int]string // var id → column name
}

// Estimate runs factor-graph inference over the query's join structure.
// The factor graph must be a tree (acyclic); cyclic graphs return an error
// so the caller can fall back to a traditional estimator.
func (m *Model) Estimate(tables []QueryTable, conds []Cond, src CountSource, mode Mode) (float64, error) {
	return m.EstimateWithMemo(tables, conds, src, mode, nil)
}

// EstimateWithMemo is Estimate with an optional batch memo sharing leaf
// messages, effective-NDV vectors, conditional matrices, and domain
// vectors across calls (see Memo). A nil memo is the plain sequential
// path; with a memo the returned value is bit-identical, only cheaper.
func (m *Model) EstimateWithMemo(tables []QueryTable, conds []Cond, src CountSource, mode Mode, memo *Memo) (float64, error) {
	if len(tables) < 2 || len(conds) == 0 {
		return 0, fmt.Errorf("factorjoin: need at least two tables and one condition")
	}
	vars, _, err := m.buildGraph(tables, conds)
	if err != nil {
		return 0, err
	}
	// Root: the variable touching the most factors (richest containment
	// information at the final combination step).
	root := vars[0]
	for _, v := range vars[1:] {
		if len(v.factors) > len(root.factors) {
			root = v
		}
	}
	est, err := m.combineAtVar(root, nil, src, mode, memo)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(est) || est < 0 {
		est = 0
	}
	return est, nil
}

// buildGraph unifies join columns into variables and checks the factor
// graph is a connected tree.
func (m *Model) buildGraph(tables []QueryTable, conds []Cond) ([]*qvar, []*qfactor, error) {
	type colRef struct{ bind, col string }
	parent := map[colRef]colRef{}
	var find func(colRef) colRef
	find = func(x colRef) colRef {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	// refs lists the joined columns in first-encountered condition order.
	// Iterating the parent map instead would randomize variable and factor
	// ordering call to call — and with it the float accumulation order of
	// the final combination, making repeated estimates differ in their last
	// bits. Planning requires bit-identical repeatability.
	var refs []colRef
	seenRef := map[colRef]bool{}
	addRef := func(r colRef) {
		if !seenRef[r] {
			seenRef[r] = true
			refs = append(refs, r)
		}
	}
	for _, c := range conds {
		addRef(colRef{c.LBind, c.LCol})
		addRef(colRef{c.RBind, c.RCol})
		a, b := find(colRef{c.LBind, c.LCol}), find(colRef{c.RBind, c.RCol})
		if a != b {
			parent[a] = b
		}
	}
	varOf := map[colRef]*qvar{}
	var vars []*qvar
	factorOf := map[string]*qfactor{}
	var factors []*qfactor
	for _, t := range tables {
		f := &qfactor{binding: t.Binding, name: t.Name, colOf: map[int]string{}}
		factorOf[t.Binding] = f
		factors = append(factors, f)
	}
	edges := 0
	for _, ref := range refs {
		root := find(ref)
		v, ok := varOf[root]
		if !ok {
			ks, found := m.Keys[keyName(factorOf[root.bind].name, root.col)]
			if !found {
				return nil, nil, fmt.Errorf("factorjoin: no bucket stats for %s.%s", factorOf[root.bind].name, root.col)
			}
			v = &qvar{id: len(vars), class: ks.Class, buckets: m.BucketsByClass[ks.Class]}
			varOf[root] = v
			vars = append(vars, v)
		}
		f := factorOf[ref.bind]
		if f == nil {
			return nil, nil, fmt.Errorf("factorjoin: condition references unknown binding %s", ref.bind)
		}
		if _, dup := f.colOf[v.id]; dup {
			return nil, nil, fmt.Errorf("factorjoin: table %s joins variable twice (cyclic graph)", ref.bind)
		}
		if _, ok := m.Keys[keyName(f.name, ref.col)]; !ok {
			return nil, nil, fmt.Errorf("factorjoin: no bucket stats for %s.%s", f.name, ref.col)
		}
		f.colOf[v.id] = ref.col
		f.vars = append(f.vars, v)
		v.factors = append(v.factors, f)
		edges++
	}
	// Tree check on the bipartite graph: connected with nodes-1 edges.
	nodes := len(vars) + len(factors)
	if edges != nodes-1 {
		return nil, nil, fmt.Errorf("factorjoin: join graph is cyclic (%d edges, %d nodes)", edges, nodes)
	}
	for _, f := range factors {
		if len(f.vars) == 0 {
			return nil, nil, fmt.Errorf("factorjoin: table %s participates in no join condition", f.binding)
		}
	}
	return vars, factors, nil
}

// msg carries a subtree's per-bucket statistics at a variable: the
// (expected or bounded) row count and the per-key-value maximum frequency
// of the whole subtree (base MaxF amplified by downstream fan-out — the
// quantity the upper bound multiplies). ndv, present only on memoized
// leaf messages, precomputes effNDV per bucket; consumers fall back to
// the inline computation when it is nil (identical values either way).
type msg struct {
	ks   *KeyStats
	cnt  []float64
	maxF []float64
	ndv  []float64
}

// downCount computes the message of factor f's subtree as seen from
// variable v (excluding v's other factors).
func (m *Model) downCount(f *qfactor, v *qvar, src CountSource, mode Mode, memo *Memo) (msg, error) {
	// Single-variable factors produce pure leaf messages — constructed,
	// never mutated — so under a memo each (binding, column) leaf is built
	// once per batch (two vector copies plus a Cardenas pow() per bucket)
	// and shared read-only across every subset that joins the table.
	if memo != nil && len(f.vars) == 1 {
		return memo.leaf(leafKey(f.binding, f.name, f.colOf[v.id]), func() (msg, error) {
			out, err := m.leafMsg(f, v, src)
			if err != nil {
				return out, err
			}
			out.ndv = make([]float64, len(out.cnt))
			for b := range out.ndv {
				out.ndv[b] = m.effNDV(out.ks, out.cnt, b)
			}
			return out, nil
		})
	}
	out, err := m.leafMsg(f, v, src)
	if err != nil {
		return msg{}, err
	}
	for _, u := range f.vars {
		if u.id == v.id {
			continue
		}
		// Fan-out through variable u: expected (estimate) or maximal
		// (bound) join partners per subtree row whose u-key falls in each
		// u-bucket.
		fan := make([]float64, u.buckets.Count())
		worst := make([]float64, u.buckets.Count())
		domain := m.domainOf(u, memo)
		for i := range fan {
			fan[i] = 1
			worst[i] = 1
		}
		for _, g := range u.factors {
			if g == f {
				continue
			}
			sub, err := m.downCount(g, u, src, mode, memo)
			if err != nil {
				return msg{}, err
			}
			for b := range fan {
				if mode == ModeBound {
					fan[b] *= sub.maxF[b]
				} else {
					// Expected partners per row through u: the subtree's
					// rows spread over the bucket's key domain.
					fan[b] *= sub.cnt[b] / math.Max(domain[b], 1)
				}
				worst[b] *= sub.maxF[b]
			}
		}
		// Project the fan-out from u-buckets onto v-buckets through f's
		// key-tree conditional P(b_u | b_v).
		cond, err := m.conditionalOf(f, v, u, memo)
		if err != nil {
			return msg{}, err
		}
		ub := u.buckets.Count()
		for bv := range out.cnt {
			row := cond[bv*ub : (bv+1)*ub]
			if out.cnt[bv] > 0 {
				var factor float64
				for bu, p := range row {
					factor += p * fan[bu]
				}
				out.cnt[bv] *= factor
			}
			// Per-value worst case: a value's rows may all land in the
			// reachable u-bucket with the largest downstream frequency.
			var w float64
			for bu, p := range row {
				if p > 0 && worst[bu] > w {
					w = worst[bu]
				}
			}
			out.maxF[bv] *= w
		}
	}
	return out, nil
}

// leafMsg constructs the base message of factor f at variable v: the
// CountSource's filtered per-bucket counts and the model's per-bucket
// maximum frequencies, both copied so messages never alias mutable state.
func (m *Model) leafMsg(f *qfactor, v *qvar, src CountSource) (msg, error) {
	col := f.colOf[v.id]
	ks := m.Keys[keyName(f.name, col)]
	cnt, err := src(f.binding, f.name, col, v.buckets.Bounds)
	if err != nil {
		return msg{}, err
	}
	if len(cnt) != v.buckets.Count() {
		return msg{}, fmt.Errorf("factorjoin: count source returned %d buckets for %s.%s, want %d", len(cnt), f.name, col, v.buckets.Count())
	}
	return msg{ks: ks, cnt: append([]float64(nil), cnt...), maxF: append([]float64(nil), ks.MaxF...)}, nil
}

// domainOf is varDomain behind the batch memo (pure in the model, so
// memoized values are bit-identical to fresh ones).
func (m *Model) domainOf(v *qvar, memo *Memo) []float64 {
	if memo == nil {
		return m.varDomain(v)
	}
	return memo.vector(memo.domains, domainKey(v), func() []float64 { return m.varDomain(v) })
}

// conditionalOf is conditional behind the batch memo. Failures are not
// memoized: conditional only errors on model-shape mismatches, which
// fail identically and cheaply on every call.
func (m *Model) conditionalOf(f *qfactor, v, u *qvar, memo *Memo) ([]float64, error) {
	if memo == nil {
		return m.conditional(f, v, u)
	}
	var condErr error
	out := memo.vector(memo.conds, condKey(f.name, f.colOf[v.id], f.colOf[u.id]), func() []float64 {
		c, err := m.conditional(f, v, u)
		if err != nil {
			condErr = err
			return nil
		}
		return c
	})
	if out == nil {
		if condErr == nil {
			condErr = fmt.Errorf("factorjoin: conditional for %s unavailable", f.name)
		}
		return nil, condErr
	}
	return out, nil
}

// varDomain estimates the per-bucket key-domain size of a variable: the
// largest unfiltered distinct count among its attached tables (the
// dimension side of a PK–FK join dominates).
func (m *Model) varDomain(v *qvar) []float64 {
	out := make([]float64, v.buckets.Count())
	for _, f := range v.factors {
		ks := m.Keys[keyName(f.name, f.colOf[v.id])]
		for b := range out {
			if ks.NDV[b] > out[b] {
				out[b] = ks.NDV[b]
			}
		}
	}
	return out
}

// effNDV estimates the distinct key count of the subtree at bucket b.
func (m *Model) effNDV(ks *KeyStats, sub []float64, b int) float64 {
	base := math.Min(sub[b], ks.Cnt[b])
	ndv := cardinal.Cardenas(ks.NDV[b], math.Max(ks.Cnt[b], 1), math.Max(base, 0))
	if sub[b] > 0 && ndv < 1 {
		ndv = 1
	}
	if ndv > ks.NDV[b] {
		ndv = ks.NDV[b]
	}
	return ndv
}

// conditional returns the row-major P(b_u | b_v) matrix within factor f,
// derived from the stored pairwise joint (or independence when the pair
// was not materialized — the key-tree reduction's fallback edge).
func (m *Model) conditional(f *qfactor, v, u *qvar) ([]float64, error) {
	colV, colU := f.colOf[v.id], f.colOf[u.id]
	a, b := orderedPair(colV, colU)
	joint, ok := m.PairJoint[pairName(f.name, a, b)]
	vb, ub := v.buckets.Count(), u.buckets.Count()
	out := make([]float64, vb*ub)
	if !ok {
		// Independence fallback: P(b_u) from u's marginal.
		ksU := m.Keys[keyName(f.name, colU)]
		var total float64
		for _, c := range ksU.Cnt {
			total += c
		}
		if total == 0 {
			total = 1
		}
		for bv := 0; bv < vb; bv++ {
			for bu := 0; bu < ub; bu++ {
				out[bv*ub+bu] = ksU.Cnt[bu] / total
			}
		}
		return out, nil
	}
	// joint is (a-buckets)×(b-buckets); orient to (v,u).
	transposed := colV != a
	for bv := 0; bv < vb; bv++ {
		var rowSum float64
		for bu := 0; bu < ub; bu++ {
			var j float64
			if transposed {
				j = joint[bu*vb+bv]
			} else {
				j = joint[bv*ub+bu]
			}
			out[bv*ub+bu] = j
			rowSum += j
		}
		if rowSum > 0 {
			for bu := 0; bu < ub; bu++ {
				out[bv*ub+bu] /= rowSum
			}
		}
	}
	return out, nil
}

// combineAtVar folds every factor at the root variable into the final
// estimate: Σ_b minNDV(b)·∏_i freq_i(b) (estimate) or
// Σ_b min_i[cnt_i(b)·∏_{j≠i} maxF_j(b)] (bound).
func (m *Model) combineAtVar(v *qvar, exclude *qfactor, src CountSource, mode Mode, memo *Memo) (float64, error) {
	var sides []msg
	for _, f := range v.factors {
		if f == exclude {
			continue
		}
		sub, err := m.downCount(f, v, src, mode, memo)
		if err != nil {
			return 0, err
		}
		sides = append(sides, sub)
	}
	if len(sides) == 1 {
		var total float64
		for _, c := range sides[0].cnt {
			total += c
		}
		return total, nil
	}
	domain := m.domainOf(v, memo)
	var total float64
	for b := 0; b < v.buckets.Count(); b++ {
		if mode == ModeBound {
			best := math.Inf(1)
			for i := range sides {
				term := sides[i].cnt[b]
				for j := range sides {
					if j != i {
						term *= sides[j].maxF[b]
					}
				}
				if term < best {
					best = term
				}
			}
			if !math.IsInf(best, 1) {
				total += best
			}
			continue
		}
		// Probabilistic overlap: the expected number of key values shared
		// by every side is ∏ effNDV_i / domain^(k-1) (capped by the
		// smallest side), and each shared value contributes the product of
		// the sides' average frequencies.
		minNDV := math.Inf(1)
		match := 1.0
		freqProd := 1.0
		ok := true
		for i := range sides {
			if sides[i].cnt[b] <= 0 {
				ok = false
				break
			}
			// Memoized leaves carry their effNDV vector (one Cardenas
			// pow() per bucket, computed once per batch instead of once
			// per subset); other sides compute it inline. Same function,
			// same inputs — bit-identical either way.
			var ndv float64
			if sides[i].ndv != nil {
				ndv = sides[i].ndv[b]
			} else {
				ndv = m.effNDV(sides[i].ks, sides[i].cnt, b)
			}
			if ndv < 1e-9 {
				ok = false
				break
			}
			if ndv < minNDV {
				minNDV = ndv
			}
			match *= ndv
			freqProd *= sides[i].cnt[b] / ndv
		}
		if !ok {
			continue
		}
		d := math.Max(domain[b], 1)
		for i := 1; i < len(sides); i++ {
			match /= d
		}
		if match > minNDV {
			match = minNDV
		}
		total += match * freqProd
	}
	return total, nil
}
