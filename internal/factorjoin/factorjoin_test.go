package factorjoin

import (
	"math/rand"
	"testing"

	"bytecard/internal/catalog"
	"bytecard/internal/datagen"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// exactSource returns a CountSource computing exact filtered bucket counts
// straight from storage — isolating the inference math from BN error.
func exactSource(db *storage.Database, filters map[string]func(t *storage.Table, row int) bool) CountSource {
	return func(binding, table, column string, bounds []float64) ([]float64, error) {
		t := db.Table(table)
		b := &Buckets{Bounds: bounds}
		out := make([]float64, b.Count())
		col := t.ColByName(column)
		keep := filters[binding]
		for r := 0; r < t.NumRows(); r++ {
			if keep != nil && !keep(t, r) {
				continue
			}
			if i := b.BucketOf(col.Numeric(r)); i >= 0 {
				out[i]++
			}
		}
		return out, nil
	}
}

// trueJoin2 brute-forces |A ⋈ B| on one condition with optional filters.
func trueJoin2(a, b *storage.Table, ac, bc string, fa, fb func(t *storage.Table, row int) bool) float64 {
	counts := map[float64]float64{}
	colA := a.ColByName(ac)
	for r := 0; r < a.NumRows(); r++ {
		if fa != nil && !fa(a, r) {
			continue
		}
		counts[colA.Numeric(r)]++
	}
	var total float64
	colB := b.ColByName(bc)
	for r := 0; r < b.NumRows(); r++ {
		if fb != nil && !fb(b, r) {
			continue
		}
		total += counts[colB.Numeric(r)]
	}
	return total
}

func toyModel(t *testing.T) (*Model, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 2, Seed: 31})
	m, err := Build(ds.DB, ds.Schema.JoinClasses(), 50)
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestBuildProducesConsistentStats(t *testing.T) {
	m, ds := toyModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.BuildSeconds <= 0 || m.SizeBytes() <= 0 {
		t.Error("build metadata missing")
	}
	ks := m.Keys["fact.dim_id"]
	if ks == nil {
		t.Fatal("missing fact.dim_id stats")
	}
	var total float64
	for b := range ks.Cnt {
		total += ks.Cnt[b]
		if ks.NDV[b] > ks.Cnt[b] || ks.MaxF[b] > ks.Cnt[b] {
			t.Errorf("bucket %d inconsistent: cnt=%g ndv=%g maxf=%g", b, ks.Cnt[b], ks.NDV[b], ks.MaxF[b])
		}
	}
	if total != float64(ds.DB.Table("fact").NumRows()) {
		t.Errorf("bucket counts sum to %g, want %d", total, ds.DB.Table("fact").NumRows())
	}
}

func TestBucketOf(t *testing.T) {
	b := &Buckets{Bounds: []float64{0, 10, 20, 30}}
	cases := map[float64]int{0: 0, 9: 0, 10: 1, 29: 2, 30: 2, -1: -1, 40: -1}
	for v, want := range cases {
		if got := b.BucketOf(v); got != want {
			t.Errorf("BucketOf(%g) = %d, want %d", v, got, want)
		}
	}
}

func TestTwoTableJoinEstimate(t *testing.T) {
	m, ds := toyModel(t)
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []Cond{{LBind: "f", LCol: "dim_id", RBind: "d", RCol: "id"}}
	src := exactSource(ds.DB, nil)
	truth := trueJoin2(ds.DB.Table("fact"), ds.DB.Table("dim"), "dim_id", "id", nil, nil)

	est, err := m.Estimate(tables, conds, src, ModeEstimate)
	if err != nil {
		t.Fatal(err)
	}
	if q := qerr(est, truth); q > 1.5 {
		t.Errorf("estimate %g vs truth %g (q=%g)", est, truth, q)
	}
	bound, err := m.Estimate(tables, conds, src, ModeBound)
	if err != nil {
		t.Fatal(err)
	}
	if bound < truth*(1-1e-9) {
		t.Errorf("bound %g below truth %g", bound, truth)
	}
}

func TestFilteredJoin(t *testing.T) {
	m, ds := toyModel(t)
	fdim := func(tab *storage.Table, r int) bool { return tab.ColByName("cat").Value(r).I <= 2 }
	ffact := func(tab *storage.Table, r int) bool { return tab.ColByName("val").Value(r).I < 40 }
	filters := map[string]func(*storage.Table, int) bool{"d": fdim, "f": ffact}
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []Cond{{LBind: "f", LCol: "dim_id", RBind: "d", RCol: "id"}}
	src := exactSource(ds.DB, filters)
	truth := trueJoin2(ds.DB.Table("fact"), ds.DB.Table("dim"), "dim_id", "id",
		func(tab *storage.Table, r int) bool { return ffact(tab, r) },
		func(tab *storage.Table, r int) bool { return fdim(tab, r) })
	est, err := m.Estimate(tables, conds, src, ModeEstimate)
	if err != nil {
		t.Fatal(err)
	}
	if q := qerr(est, truth); q > 2.5 {
		t.Errorf("filtered estimate %g vs truth %g (q=%g)", est, truth, q)
	}
}

// TestBoundPropertyRandom is the key property test: with exact bucket
// counts, ModeBound must never fall below the true join size.
func TestBoundPropertyRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDatabase()
		mk := func(name string, n, dom int) {
			b := storage.NewBuilder(name, []storage.ColumnSpec{{Name: "k", Kind: types.KindInt64}})
			for i := 0; i < n; i++ {
				// Mixed skew: half Zipf-ish, half uniform.
				var v int64
				if rng.Intn(2) == 0 {
					v = int64(rng.Intn(dom/4 + 1))
				} else {
					v = int64(rng.Intn(dom + 1))
				}
				b.Append([]types.Datum{types.Int(v)})
			}
			db.Add(b.Build())
		}
		mk("r", 200+rng.Intn(400), 50+rng.Intn(100))
		mk("s", 200+rng.Intn(400), 50+rng.Intn(100))
		schema := catalog.NewSchema()
		class := catalog.JoinClass{Members: []catalog.ColumnRef{
			{Table: "r", Column: "k"}, {Table: "s", Column: "k"},
		}}
		_ = schema
		m, err := Build(db, []catalog.JoinClass{class}, 16)
		if err != nil {
			t.Fatal(err)
		}
		tables := []QueryTable{{Binding: "r", Name: "r"}, {Binding: "s", Name: "s"}}
		conds := []Cond{{LBind: "r", LCol: "k", RBind: "s", RCol: "k"}}
		truth := trueJoin2(db.Table("r"), db.Table("s"), "k", "k", nil, nil)
		bound, err := m.Estimate(tables, conds, exactSource(db, nil), ModeBound)
		if err != nil {
			t.Fatal(err)
		}
		if bound < truth*(1-1e-9) {
			t.Errorf("seed %d: bound %g < truth %g", seed, bound, truth)
		}
		est, err := m.Estimate(tables, conds, exactSource(db, nil), ModeEstimate)
		if err != nil {
			t.Fatal(err)
		}
		if q := qerr(est, truth); q > 20 {
			t.Errorf("seed %d: estimate %g vs truth %g (q=%g)", seed, est, truth, q)
		}
	}
}

// chainDB builds a 3-table chain a ←(a_id) b (id)→ c(b_id) where b carries
// two join keys (exercising the pairwise key-tree reduction).
func chainDB(t *testing.T, seed int64) (*storage.Database, []catalog.JoinClass) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()
	ab := storage.NewBuilder("a", []storage.ColumnSpec{{Name: "id", Kind: types.KindInt64}})
	for i := 1; i <= 40; i++ {
		ab.Append([]types.Datum{types.Int(int64(i))})
	}
	db.Add(ab.Build())
	bb := storage.NewBuilder("b", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "a_id", Kind: types.KindInt64},
	})
	for i := 1; i <= 300; i++ {
		// a_id correlates with id range (keys are dependent).
		aid := int64(1 + (i*40/300+rng.Intn(8))%40)
		bb.Append([]types.Datum{types.Int(int64(i)), types.Int(aid)})
	}
	db.Add(bb.Build())
	cb := storage.NewBuilder("c", []storage.ColumnSpec{{Name: "b_id", Kind: types.KindInt64}})
	for i := 0; i < 500; i++ {
		cb.Append([]types.Datum{types.Int(int64(1 + rng.Intn(300)))})
	}
	db.Add(cb.Build())
	classes := []catalog.JoinClass{
		{Members: []catalog.ColumnRef{{Table: "a", Column: "id"}, {Table: "b", Column: "a_id"}}},
		{Members: []catalog.ColumnRef{{Table: "b", Column: "id"}, {Table: "c", Column: "b_id"}}},
	}
	return db, classes
}

func trueChainJoin(db *storage.Database) float64 {
	// |a ⋈ b ⋈ c| with PK a.id and PK b.id: every b row matches exactly
	// one a row (a_id ∈ [1,40]); count c rows per b.id.
	cCount := map[int64]float64{}
	c := db.Table("c").ColByName("b_id")
	for r := 0; r < db.Table("c").NumRows(); r++ {
		cCount[c.Value(r).I]++
	}
	var total float64
	b := db.Table("b")
	for r := 0; r < b.NumRows(); r++ {
		total += cCount[b.ColByName("id").Value(r).I]
	}
	return total
}

func TestChainJoinWithMultiKeyTable(t *testing.T) {
	db, classes := chainDB(t, 3)
	m, err := Build(db, classes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PairJoint) != 1 {
		t.Fatalf("PairJoint entries = %d, want 1 (table b)", len(m.PairJoint))
	}
	tables := []QueryTable{
		{Binding: "a", Name: "a"}, {Binding: "b", Name: "b"}, {Binding: "c", Name: "c"},
	}
	conds := []Cond{
		{LBind: "a", LCol: "id", RBind: "b", RCol: "a_id"},
		{LBind: "b", LCol: "id", RBind: "c", RCol: "b_id"},
	}
	truth := trueChainJoin(db)
	est, err := m.Estimate(tables, conds, exactSource(db, nil), ModeEstimate)
	if err != nil {
		t.Fatal(err)
	}
	if q := qerr(est, truth); q > 3 {
		t.Errorf("chain estimate %g vs truth %g (q=%g)", est, truth, q)
	}
	bound, err := m.Estimate(tables, conds, exactSource(db, nil), ModeBound)
	if err != nil {
		t.Fatal(err)
	}
	if bound < truth*(1-1e-6) {
		t.Errorf("chain bound %g below truth %g", bound, truth)
	}
}

func TestCyclicGraphRejected(t *testing.T) {
	m, _ := toyModel(t)
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []Cond{
		{LBind: "f", LCol: "dim_id", RBind: "d", RCol: "id"},
		{LBind: "f", LCol: "id", RBind: "d", RCol: "cat"},
	}
	if _, err := m.Estimate(tables, conds, nil, ModeEstimate); err == nil {
		t.Error("cyclic factor graph must be rejected")
	}
}

func TestUnknownKeyRejected(t *testing.T) {
	m, ds := toyModel(t)
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []Cond{{LBind: "f", LCol: "val", RBind: "d", RCol: "cat"}}
	if _, err := m.Estimate(tables, conds, exactSource(ds.DB, nil), ModeEstimate); err == nil {
		t.Error("join on non-bucketed columns must be rejected")
	}
}

func TestBoundsForAndKeyColumns(t *testing.T) {
	m, _ := toyModel(t)
	if _, ok := m.BoundsFor("fact", "dim_id"); !ok {
		t.Error("fact.dim_id must have bounds")
	}
	if _, ok := m.BoundsFor("fact", "val"); ok {
		t.Error("fact.val is not a key")
	}
	cols := m.KeyColumns("fact")
	if len(cols) != 1 || cols[0] != "dim_id" {
		t.Errorf("KeyColumns(fact) = %v", cols)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m, ds := toyModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	conds := []Cond{{LBind: "f", LCol: "dim_id", RBind: "d", RCol: "id"}}
	a, _ := m.Estimate(tables, conds, exactSource(ds.DB, nil), ModeEstimate)
	b, _ := m2.Estimate(tables, conds, exactSource(ds.DB, nil), ModeEstimate)
	if a != b {
		t.Errorf("roundtrip changed estimate: %g vs %g", a, b)
	}
}

func TestValidateCorruption(t *testing.T) {
	m, _ := toyModel(t)
	for _, ks := range m.Keys {
		ks.MaxF[0] = ks.Cnt[0] + 100
		break
	}
	if err := m.Validate(); err == nil {
		t.Error("maxF > cnt must fail validation")
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage must fail decode")
	}
	empty := &Model{}
	if err := empty.Validate(); err == nil {
		t.Error("empty model must fail validation")
	}
}

func TestEstimateArgumentChecks(t *testing.T) {
	m, ds := toyModel(t)
	if _, err := m.Estimate(nil, nil, exactSource(ds.DB, nil), ModeEstimate); err == nil {
		t.Error("no tables must error")
	}
	tables := []QueryTable{{Binding: "f", Name: "fact"}, {Binding: "d", Name: "dim"}}
	if _, err := m.Estimate(tables, nil, exactSource(ds.DB, nil), ModeEstimate); err == nil {
		t.Error("no conditions must error")
	}
}

func qerr(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// TestBoundPropertyChainRandom extends the bound property to random
// 3-table chains with a multi-key middle table.
func TestBoundPropertyChainRandom(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		db, classes := chainDB(t, seed)
		m, err := Build(db, classes, 12)
		if err != nil {
			t.Fatal(err)
		}
		tables := []QueryTable{
			{Binding: "a", Name: "a"}, {Binding: "b", Name: "b"}, {Binding: "c", Name: "c"},
		}
		conds := []Cond{
			{LBind: "a", LCol: "id", RBind: "b", RCol: "a_id"},
			{LBind: "b", LCol: "id", RBind: "c", RCol: "b_id"},
		}
		truth := trueChainJoin(db)
		bound, err := m.Estimate(tables, conds, exactSource(db, nil), ModeBound)
		if err != nil {
			t.Fatal(err)
		}
		if bound < truth*(1-1e-6) {
			t.Errorf("seed %d: bound %g < truth %g", seed, bound, truth)
		}
	}
}

func TestNDVForExposure(t *testing.T) {
	m, _ := toyModel(t)
	ndv, ok := m.NDVFor("fact", "dim_id")
	if !ok || len(ndv) == 0 {
		t.Fatal("NDVFor must expose key bucket NDVs")
	}
	if _, ok := m.NDVFor("fact", "val"); ok {
		t.Error("non-key column must not expose NDVs")
	}
}
