package factorjoin

import (
	"bytes"
	"reflect"
	"testing"

	"bytecard/internal/datagen"
)

// TestBuildWorkersDeterministic is the parallel-training parity gate: the
// FactorJoin model built with a worker pool must be identical to the
// single-threaded build, for every worker count — structurally AND on the
// wire. Encode flattens the model's maps into key-sorted slices, so equal
// models must now serialize to equal bytes (the property modelstore
// checksums rely on).
func TestBuildWorkersDeterministic(t *testing.T) {
	for _, dataset := range []string{"toy", "imdb"} {
		scale := 2.0
		if dataset == "imdb" {
			scale = 0.05
		}
		ds, err := datagen.ByName(dataset, datagen.Config{Scale: scale, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Build(ds.DB, ds.Schema.JoinClasses(), 50)
		if err != nil {
			t.Fatal(err)
		}
		serialBytes, err := serial.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			m, err := BuildWorkers(ds.DB, ds.Schema.JoinClasses(), 50, workers)
			if err != nil {
				t.Fatal(err)
			}
			// BuildSeconds is wall time and legitimately differs; everything
			// else must match bit for bit.
			m.BuildSeconds = serial.BuildSeconds
			if !reflect.DeepEqual(m, serial) {
				t.Errorf("%s: workers=%d model differs from serial build", dataset, workers)
			}
			got, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, serialBytes) {
				t.Errorf("%s: workers=%d encoding differs from serial build's bytes", dataset, workers)
			}
		}
	}
}

// TestEncodeDeterministic re-encodes one model repeatedly and through a
// decode round-trip: every serialization of equal models must be
// byte-identical.
func TestEncodeDeterministic(t *testing.T) {
	ds, err := datagen.ByName("toy", datagen.Config{Scale: 2.0, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(ds.DB, ds.Schema.JoinClasses(), 50)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
	rt, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	rtBytes, err := rt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, rtBytes) {
		t.Fatal("decode → encode round-trip changed the bytes")
	}
}
