package factorjoin

import (
	"reflect"
	"testing"

	"bytecard/internal/datagen"
)

// TestBuildWorkersDeterministic is the parallel-training parity gate: the
// FactorJoin model built with a worker pool must be identical to the
// single-threaded build, for every worker count. (Comparison is structural:
// gob serializes maps in random iteration order, so equal models need not
// share bytes.)
func TestBuildWorkersDeterministic(t *testing.T) {
	for _, dataset := range []string{"toy", "imdb"} {
		scale := 2.0
		if dataset == "imdb" {
			scale = 0.05
		}
		ds, err := datagen.ByName(dataset, datagen.Config{Scale: scale, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Build(ds.DB, ds.Schema.JoinClasses(), 50)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			m, err := BuildWorkers(ds.DB, ds.Schema.JoinClasses(), 50, workers)
			if err != nil {
				t.Fatal(err)
			}
			// BuildSeconds is wall time and legitimately differs; everything
			// else must match bit for bit.
			m.BuildSeconds = serial.BuildSeconds
			if !reflect.DeepEqual(m, serial) {
				t.Errorf("%s: workers=%d model differs from serial build", dataset, workers)
			}
		}
	}
}
