package bn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"bytecard/internal/expr"
)

// trainWide trains a model over nCols loosely correlated categorical
// columns — wide enough that per-node allocation costs dominate the
// fresh-allocation baseline.
func trainWide(t *testing.T, nCols, nRows int) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	cols := make([][]float64, nCols)
	names := make([]string, nCols)
	for c := range cols {
		cols[c] = make([]float64, nRows)
		names[c] = fmt.Sprintf("c%d", c)
	}
	for r := 0; r < nRows; r++ {
		base := float64(rng.Intn(5))
		for c := range cols {
			v := base
			if rng.Float64() > 0.7 {
				v = float64(rng.Intn(5))
			}
			cols[c][r] = v
		}
	}
	m, err := Train(TrainConfig{Table: "wide", ColNames: names, Sample: cols, Laplace: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildEvidence compiles a deterministic spread of soft-evidence vectors
// over the model's columns (one constrained column per variant).
func buildEvidence(m *Model) [][][]float64 {
	var out [][][]float64
	for i := range m.Cols {
		w := make([][]float64, len(m.Cols))
		v := make([]float64, m.Cols[i].Bins())
		for b := range v {
			if b%2 == 0 {
				v[b] = 1
			} else {
				v[b] = 0.25
			}
		}
		w[i] = v
		out = append(out, w)
	}
	return out
}

// TestProbMatchesNoScratch pins the pooled fast path to the
// fresh-allocation reference bit-for-bit: both run the identical upward
// pass, so even float non-associativity cannot separate them.
func TestProbMatchesNoScratch(t *testing.T) {
	m := trainCorrelated(t, 4000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	for vi, w := range buildEvidence(m) {
		got := ctx.Prob(w)
		want := ctx.ProbNoScratch(w)
		if got != want {
			t.Fatalf("variant %d: pooled Prob=%v, ProbNoScratch=%v", vi, got, want)
		}
		// Re-run to catch stale state leaking through the recycled scratch.
		if again := ctx.Prob(w); again != want {
			t.Fatalf("variant %d: second pooled Prob=%v, want %v", vi, again, want)
		}
	}
}

// TestMarginalsScratchReuse runs Marginals-backed APIs interleaved and
// verifies results are stable across scratch reuse (accumulating buffers
// must be cleared between checkouts).
func TestMarginalsScratchReuse(t *testing.T) {
	m := trainCorrelated(t, 4000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	evidence := buildEvidence(m)
	type snap struct {
		pe     float64
		belief [][]float64
		pair   [][]float64
	}
	reference := make([]snap, len(evidence))
	for i, w := range evidence {
		pe, belief, pair := ctx.Marginals(w)
		reference[i] = snap{pe, belief, pair}
	}
	// Interleave Prob/JointWithColumn (pooled) with fresh Marginals calls;
	// every Marginals result must match its first-run reference exactly.
	for round := 0; round < 3; round++ {
		for i, w := range evidence {
			ctx.Prob(w)
			if _, err := ctx.JointWithColumn(nil, m.Cols[0].Name); err != nil {
				t.Fatal(err)
			}
			pe, belief, pair := ctx.Marginals(w)
			if pe != reference[i].pe {
				t.Fatalf("round %d variant %d: pe=%v, want %v", round, i, pe, reference[i].pe)
			}
			for n := range belief {
				for b := range belief[n] {
					if belief[n][b] != reference[i].belief[n][b] {
						t.Fatalf("round %d variant %d: belief[%d][%d] drifted", round, i, n, b)
					}
				}
				for k := range pair[n] {
					if pair[n][k] != reference[i].pair[n][k] {
						t.Fatalf("round %d variant %d: pair[%d][%d] drifted", round, i, n, k)
					}
				}
			}
		}
	}
}

// TestMarginalsResultsSurviveLaterCalls guards the escape contract: the
// tables Marginals returns are owned by the caller and must not be
// overwritten by subsequent inference on the same Context.
func TestMarginalsResultsSurviveLaterCalls(t *testing.T) {
	m := trainCorrelated(t, 2000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	evidence := buildEvidence(m)
	pe, belief, _ := ctx.Marginals(evidence[0])
	root := m.Root()
	saved := append([]float64(nil), belief[root]...)
	for i := 0; i < 50; i++ {
		ctx.Prob(evidence[i%len(evidence)])
		ctx.Marginals(evidence[(i+1)%len(evidence)])
	}
	for b := range saved {
		if belief[root][b] != saved[b] {
			t.Fatalf("belief[root][%d] overwritten after later calls (pe=%v)", b, pe)
		}
	}
}

// TestProbAllocsPerRun is the ISSUE's regression gate: the pooled path
// must allocate nothing in steady state, and at least 5x less than the
// fresh-allocation baseline.
func TestProbAllocsPerRun(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation counts are only meaningful without -race")
	}
	m := trainWide(t, 8, 4000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	w := buildEvidence(m)[0]
	ctx.Prob(w) // warm the pool
	pooled := testing.AllocsPerRun(200, func() { ctx.Prob(w) })
	baseline := testing.AllocsPerRun(200, func() { ctx.ProbNoScratch(w) })
	t.Logf("Prob allocs/op: pooled=%.1f baseline=%.1f", pooled, baseline)
	if pooled != 0 {
		t.Errorf("pooled Prob allocates %.1f/op, want 0", pooled)
	}
	if baseline < 5*math.Max(pooled, 1) {
		t.Errorf("baseline allocates %.1f/op — less than 5x the pooled path (%.1f/op)", baseline, pooled)
	}
}

// TestSelectivityConjAllocs bounds the constraint API: only the compiled
// per-constraint weight vectors may allocate, never the BP buffers.
func TestSelectivityConjAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation counts are only meaningful without -race")
	}
	m := trainCorrelated(t, 4000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	cons := []expr.Constraint{eqConstraint("a", 1), rangeConstraint("c", expr.OpLe, 1)}
	if _, err := ctx.SelectivityConj(cons); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ctx.SelectivityConj(cons); err != nil {
			t.Fatal(err)
		}
	})
	// One Weights vector per constraint; allow a small constant for
	// interface headers, nothing proportional to node count or bins.
	if allocs > float64(len(cons))+2 {
		t.Errorf("SelectivityConj allocates %.1f/op, want <= %d", allocs, len(cons)+2)
	}
}

// TestConcurrentScratchParity hammers one shared Context from many
// goroutines (run under -race) and checks every result against the
// fresh-allocation reference computed up front.
func TestConcurrentScratchParity(t *testing.T) {
	m := trainCorrelated(t, 4000)
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	evidence := buildEvidence(m)
	want := make([]float64, len(evidence))
	for i, w := range evidence {
		want[i] = ctx.ProbNoScratch(w)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 300; it++ {
				i := (g + it) % len(evidence)
				if got := ctx.Prob(evidence[i]); got != want[i] {
					select {
					case errs <- fmt.Errorf("goroutine %d iter %d: got %v, want %v", g, it, got, want[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestTrainWorkersDeterministic checks structure and parameters are
// identical at any worker count (the MI cells are independent; everything
// order-sensitive stays serial).
func TestTrainWorkersDeterministic(t *testing.T) {
	sample := sampleCorrelated(6000, 11)
	train := func(workers int) *Model {
		m, err := Train(TrainConfig{
			Table:    "t",
			ColNames: []string{"a", "b", "c"},
			Sample:   sample,
			Laplace:  0.1,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m4 := train(1), train(4)
	if fmt.Sprint(m1.Parent) != fmt.Sprint(m4.Parent) {
		t.Fatalf("structure differs: %v vs %v", m1.Parent, m4.Parent)
	}
	for b := range m1.Prior {
		if m1.Prior[b] != m4.Prior[b] {
			t.Fatalf("prior[%d] differs", b)
		}
	}
	for i := range m1.CPT {
		for k := range m1.CPT[i] {
			if m1.CPT[i][k] != m4.CPT[i][k] {
				t.Fatalf("CPT[%d][%d] differs", i, k)
			}
		}
	}
	if m1.StructureSeconds <= 0 || m1.ParamSeconds < 0 {
		t.Fatalf("stage timings not recorded: structure=%v param=%v", m1.StructureSeconds, m1.ParamSeconds)
	}
}
