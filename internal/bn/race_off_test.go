//go:build !race

package bn

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
