// Package bn implements ByteCard's single-table COUNT model: a
// tree-structured Bayesian network over discretized columns. Structure is
// learned with the Chow-Liu algorithm (maximum-spanning tree over pairwise
// mutual information), parameters with maximum likelihood plus
// Expectation-Maximization when training rows carry missing values, and
// inference runs variable elimination / belief propagation over an
// immutable, topologically indexed context so concurrent query threads
// never contend (the paper's initContext design).
package bn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"

	"bytecard/internal/expr"
)

// DefaultMaxBins bounds the discretized domain of a continuous column.
const DefaultMaxBins = 32

// ColumnModel is the discretizer for one column: either categorical (one
// bin per observed value) or binned (equi-height ranges over the numeric
// image).
type ColumnModel struct {
	Name string
	// Categorical reports whether bins map 1:1 to values.
	Categorical bool
	// Values holds the sorted distinct values for categorical columns.
	Values []float64
	// Bounds holds bins+1 ascending boundaries for binned columns; bin i
	// covers [Bounds[i], Bounds[i+1]) with the last bin closed.
	Bounds []float64
	// BinNDV estimates the number of distinct values per bin (for
	// equality selectivity inside a bin).
	BinNDV []float64
}

// Bins returns the discretized domain size.
func (c *ColumnModel) Bins() int {
	if c.Categorical {
		return len(c.Values)
	}
	return len(c.Bounds) - 1
}

// BinOf maps a value to its bin, or -1 when the value is outside the
// learned domain (categorical miss).
func (c *ColumnModel) BinOf(v float64) int {
	if c.Categorical {
		i := sort.SearchFloat64s(c.Values, v)
		if i < len(c.Values) && c.Values[i] == v {
			return i
		}
		return -1
	}
	if v < c.Bounds[0] || v > c.Bounds[len(c.Bounds)-1] {
		return -1
	}
	i := sort.SearchFloat64s(c.Bounds, v)
	// SearchFloat64s returns the first boundary >= v.
	if i > 0 && (i >= len(c.Bounds) || c.Bounds[i] != v) {
		i--
	}
	if i >= c.Bins() {
		i = c.Bins() - 1
	}
	return i
}

// Weights converts a compiled column constraint into per-bin inclusion
// weights in [0,1]: the estimated fraction of each bin's rows satisfying
// the constraint (uniformity within a bin, 1/NDV for point predicates).
func (c *ColumnModel) Weights(cons expr.Constraint) []float64 {
	n := c.Bins()
	w := make([]float64, n)
	if cons.Empty {
		return w
	}
	if c.Categorical {
		for i, v := range c.Values {
			if cons.Contains(v) {
				w[i] = 1
			}
		}
		return w
	}
	if cons.HasEq {
		// Point predicate: the containing bin contributes one of its
		// distinct values (fractional overlap would be zero-width).
		if i := c.BinOf(cons.Lo); i >= 0 {
			d := c.BinNDV[i]
			if d < 1 {
				d = 1
			}
			w[i] = 1 / d
		}
		return w
	}
	for i := 0; i < n; i++ {
		lo, hi := c.Bounds[i], c.Bounds[i+1]
		w[i] = binOverlap(lo, hi, i == n-1, cons)
		if w[i] == 0 && cons.Contains(lo) {
			// Discrete correction: the bin's lower boundary value is
			// admitted even though the continuous overlap has measure
			// zero (e.g. v <= domainMin).
			d := c.BinNDV[i]
			if d < 1 {
				d = 1
			}
			w[i] = 1 / d
		}
		if w[i] > 0 && len(cons.Ne) > 0 {
			d := c.BinNDV[i]
			if d < 1 {
				d = 1
			}
			for _, ne := range cons.Ne {
				if ne >= lo && ne <= hi {
					w[i] -= 1 / d
				}
			}
			if w[i] < 0 {
				w[i] = 0
			}
		}
	}
	return w
}

// binOverlap estimates the fraction of bin [lo,hi] covered by the
// constraint interval under within-bin uniformity.
func binOverlap(lo, hi float64, lastBin bool, cons expr.Constraint) float64 {
	clo, chi := math.Max(lo, cons.Lo), math.Min(hi, cons.Hi)
	if chi < clo {
		return 0
	}
	width := hi - lo
	if width == 0 {
		if cons.Contains(lo) {
			return 1
		}
		return 0
	}
	frac := (chi - clo) / width
	if !lastBin && chi == hi && cons.Hi >= hi {
		// Bin is half-open: fine, full coverage on the right.
		frac = (hi - clo) / width
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Model is a trained tree Bayesian network.
type Model struct {
	Table string
	// Rows is the training population size (for cardinality scaling).
	Rows float64
	Cols []ColumnModel
	// Parent[i] is the parent node of column i, or -1 for the root.
	Parent []int
	// Prior is the root's marginal distribution.
	Prior []float64
	// CPT[i] is nil for the root; otherwise row-major
	// P(x_i = b | x_parent = a) at [a*Bins(i)+b].
	CPT [][]float64
	// TrainSeconds records the total training wall time.
	TrainSeconds float64
	// StructureSeconds records the Chow-Liu stage (MI matrix + spanning
	// tree) within TrainSeconds; ParamSeconds records parameter learning
	// (ML counts plus EM sweeps). Both are additive gob fields: models
	// serialized before they existed decode with zeros.
	StructureSeconds float64
	ParamSeconds     float64
}

// ColIndex returns the index of the named column, or -1.
func (m *Model) ColIndex(name string) int {
	for i := range m.Cols {
		if m.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// Root returns the root node index.
func (m *Model) Root() int {
	for i, p := range m.Parent {
		if p < 0 {
			return i
		}
	}
	return -1
}

// SizeBytes reports the serialized parameter footprint.
func (m *Model) SizeBytes() int64 {
	var total int64
	total += int64(len(m.Prior)) * 8
	for _, cpt := range m.CPT {
		total += int64(len(cpt)) * 8
	}
	for i := range m.Cols {
		total += int64(len(m.Cols[i].Values)+len(m.Cols[i].Bounds)+len(m.Cols[i].BinNDV)) * 8
	}
	return total
}

// Encode serializes the model with gob.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes and validates a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate is the health detector: the parent relation must form a tree
// rooted at exactly one node (cycle detection — the DAG check the paper's
// Model Validator runs), and every distribution must be a finite,
// normalized probability vector.
func (m *Model) Validate() error {
	n := len(m.Cols)
	if n == 0 {
		return errors.New("bn: model has no columns")
	}
	if len(m.Parent) != n || len(m.CPT) != n {
		return fmt.Errorf("bn: structure arrays sized %d/%d, want %d", len(m.Parent), len(m.CPT), n)
	}
	roots := 0
	for i, p := range m.Parent {
		if p < 0 {
			roots++
			continue
		}
		if p >= n {
			return fmt.Errorf("bn: node %d has out-of-range parent %d", i, p)
		}
	}
	if roots != 1 {
		return fmt.Errorf("bn: %d roots, want exactly 1", roots)
	}
	// Cycle detection: walk each node to the root.
	for i := range m.Parent {
		seen := map[int]bool{}
		for cur := i; cur >= 0; cur = m.Parent[cur] {
			if seen[cur] {
				return fmt.Errorf("bn: cycle through node %d — structure is not a DAG", cur)
			}
			seen[cur] = true
		}
	}
	root := m.Root()
	if len(m.Prior) != m.Cols[root].Bins() {
		return fmt.Errorf("bn: prior has %d entries, root has %d bins", len(m.Prior), m.Cols[root].Bins())
	}
	if err := checkDist(m.Prior); err != nil {
		return fmt.Errorf("bn: prior: %w", err)
	}
	for i := range m.Cols {
		if i == root {
			if m.CPT[i] != nil {
				return fmt.Errorf("bn: root %d must not carry a CPT", i)
			}
			continue
		}
		pb, cb := m.Cols[m.Parent[i]].Bins(), m.Cols[i].Bins()
		if len(m.CPT[i]) != pb*cb {
			return fmt.Errorf("bn: node %d CPT sized %d, want %d", i, len(m.CPT[i]), pb*cb)
		}
		for a := 0; a < pb; a++ {
			if err := checkDist(m.CPT[i][a*cb : (a+1)*cb]); err != nil {
				return fmt.Errorf("bn: node %d row %d: %w", i, a, err)
			}
		}
	}
	return nil
}

func checkDist(p []float64) error {
	var sum float64
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return errors.New("non-finite or negative probability")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("distribution sums to %g", sum)
	}
	return nil
}
