//go:build race

package bn

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops a fraction of Puts under the race detector, so
// allocation-count assertions on pooled paths only hold without it.
const raceEnabled = true
