package bn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

// sampleCorrelated draws (a, b, c): a uniform in 0..3, b = a with prob 0.8
// else uniform, c independent uniform in 0..1.
func sampleCorrelated(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, 3)
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for r := 0; r < n; r++ {
		a := float64(rng.Intn(4))
		b := a
		if rng.Float64() > 0.8 {
			b = float64(rng.Intn(4))
		}
		cols[0][r] = a
		cols[1][r] = b
		cols[2][r] = float64(rng.Intn(2))
	}
	return cols
}

func trainCorrelated(t *testing.T, n int) *Model {
	t.Helper()
	m, err := Train(TrainConfig{
		Table:    "t",
		ColNames: []string{"a", "b", "c"},
		Sample:   sampleCorrelated(n, 7),
		Laplace:  0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func eqConstraint(col string, v float64) expr.Constraint {
	c := expr.NewConstraint(col)
	c.Add(expr.OpEq, v, true)
	return c
}

func rangeConstraint(col string, op expr.CmpOp, v float64) expr.Constraint {
	c := expr.NewConstraint(col)
	c.Add(op, v, true)
	return c
}

func TestTrainProducesValidModel(t *testing.T) {
	m := trainCorrelated(t, 5000)
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid model: %v", err)
	}
	if m.Root() < 0 {
		t.Fatal("no root")
	}
	if m.TrainSeconds <= 0 {
		t.Error("train time not recorded")
	}
	if m.SizeBytes() <= 0 {
		t.Error("size not positive")
	}
}

func TestChowLiuLinksCorrelatedColumns(t *testing.T) {
	m := trainCorrelated(t, 8000)
	// a and b are strongly dependent: they must be adjacent in the tree.
	ai, bi := m.ColIndex("a"), m.ColIndex("b")
	if !(m.Parent[ai] == bi || m.Parent[bi] == ai) {
		t.Errorf("a and b must be adjacent; parents = %v", m.Parent)
	}
}

func TestJointMatchesEmpirical(t *testing.T) {
	sample := sampleCorrelated(20000, 11)
	m, err := Train(TrainConfig{Table: "t", ColNames: []string{"a", "b", "c"}, Sample: sample, Laplace: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := m.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	// Check P(a=x ∧ b=y) against empirical joint for all pairs.
	n := float64(len(sample[0]))
	for x := 0.0; x < 4; x++ {
		for y := 0.0; y < 4; y++ {
			got, err := ctx.SelectivityConj([]expr.Constraint{eqConstraint("a", x), eqConstraint("b", y)})
			if err != nil {
				t.Fatal(err)
			}
			var cnt float64
			for r := range sample[0] {
				if sample[0][r] == x && sample[1][r] == y {
					cnt++
				}
			}
			want := cnt / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("P(a=%g,b=%g) = %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestUnconstrainedProbabilityIsOne(t *testing.T) {
	m := trainCorrelated(t, 2000)
	ctx, _ := m.NewContext()
	got, err := ctx.SelectivityConj(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("P(no evidence) = %g, want 1", got)
	}
}

func TestProbMatchesBruteForceEnumeration(t *testing.T) {
	m := trainCorrelated(t, 3000)
	ctx, _ := m.NewContext()
	// Enumerate the model's own joint distribution directly and compare
	// against the VE result for random soft evidence.
	rng := rand.New(rand.NewSource(3))
	enumerate := func(weights [][]float64) float64 {
		root := m.Root()
		var total float64
		var rec func(assign []int, idx int, prob float64)
		order := ctx.topo
		rec = func(assign []int, ti int, prob float64) {
			if ti == len(order) {
				total += prob
				return
			}
			i := order[ti]
			for b := 0; b < m.Cols[i].Bins(); b++ {
				var p float64
				if i == root {
					p = m.Prior[b]
				} else {
					pb := assign[m.Parent[i]]
					p = m.CPT[i][pb*m.Cols[i].Bins()+b]
				}
				w := 1.0
				if weights[i] != nil {
					w = weights[i][b]
				}
				assign[i] = b
				rec(assign, ti+1, prob*p*w)
			}
			assign[i] = -1
		}
		assign := make([]int, len(m.Cols))
		rec(assign, 0, 1)
		return total
	}
	for trial := 0; trial < 20; trial++ {
		weights := make([][]float64, len(m.Cols))
		for i := range weights {
			if rng.Intn(2) == 0 {
				continue
			}
			w := make([]float64, m.Cols[i].Bins())
			for b := range w {
				w[b] = rng.Float64()
			}
			weights[i] = w
		}
		got := ctx.Prob(weights)
		want := enumerate(weights)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: VE %g vs enumeration %g", trial, got, want)
		}
	}
}

func TestMarginalsConsistency(t *testing.T) {
	m := trainCorrelated(t, 3000)
	ctx, _ := m.NewContext()
	weights := make([][]float64, len(m.Cols))
	w := make([]float64, m.Cols[0].Bins())
	w[1] = 1
	w[2] = 0.5
	weights[0] = w
	pe, belief, pair := ctx.Marginals(weights)
	for i := range m.Cols {
		var sum float64
		for _, v := range belief[i] {
			sum += v
		}
		if math.Abs(sum-pe) > 1e-9*(1+pe) {
			t.Errorf("node %d belief sums to %g, want P(e)=%g", i, sum, pe)
		}
		if i != m.Root() {
			var psum float64
			for _, v := range pair[i] {
				psum += v
			}
			if math.Abs(psum-pe) > 1e-9*(1+pe) {
				t.Errorf("node %d pairwise sums to %g, want %g", i, psum, pe)
			}
		}
	}
}

func TestJointWithColumnMatchesIndicators(t *testing.T) {
	m := trainCorrelated(t, 4000)
	ctx, _ := m.NewContext()
	cons := []expr.Constraint{eqConstraint("c", 1)}
	vec, err := ctx.JointWithColumn(cons, "b")
	if err != nil {
		t.Fatal(err)
	}
	bi := m.ColIndex("b")
	for b := 0; b < m.Cols[bi].Bins(); b++ {
		weights := make([][]float64, len(m.Cols))
		wc := make([]float64, m.Cols[m.ColIndex("c")].Bins())
		wc[1] = 1
		weights[m.ColIndex("c")] = wc
		wb := make([]float64, m.Cols[bi].Bins())
		wb[b] = 1
		weights[bi] = wb
		want := ctx.Prob(weights)
		if math.Abs(vec[b]-want) > 1e-9*(1+want) {
			t.Errorf("bucket %d: joint %g vs indicator %g", b, vec[b], want)
		}
	}
}

func TestBinnedRangeSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20000
	cols := [][]float64{make([]float64, n)}
	for r := 0; r < n; r++ {
		cols[0][r] = rng.Float64() * 1000
	}
	m, err := Train(TrainConfig{Table: "t", ColNames: []string{"v"}, Sample: cols, MaxBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := m.NewContext()
	got, err := ctx.SelectivityConj([]expr.Constraint{rangeConstraint("v", expr.OpLt, 250)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 0.03 {
		t.Errorf("P(v<250) = %g, want ~0.25", got)
	}
}

func TestEMWithMissingValues(t *testing.T) {
	sample := sampleCorrelated(8000, 13)
	n := len(sample[0])
	missing := make([][]bool, 3)
	rng := rand.New(rand.NewSource(17))
	for c := range missing {
		missing[c] = make([]bool, n)
	}
	for r := 0; r < n; r++ {
		if rng.Float64() < 0.25 {
			missing[rng.Intn(3)][r] = true
		}
	}
	m, err := Train(TrainConfig{
		Table:        "t",
		ColNames:     []string{"a", "b", "c"},
		Sample:       sample,
		Missing:      missing,
		Laplace:      0.1,
		EMIterations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := m.NewContext()
	// The strong a↔b dependence must survive EM: P(b=2 | a=2) >> P(b=2).
	pa2b2, _ := ctx.SelectivityConj([]expr.Constraint{eqConstraint("a", 2), eqConstraint("b", 2)})
	pa2, _ := ctx.SelectivityConj([]expr.Constraint{eqConstraint("a", 2)})
	pb2, _ := ctx.SelectivityConj([]expr.Constraint{eqConstraint("b", 2)})
	if pa2b2/pa2 < 2*pb2 {
		t.Errorf("EM lost correlation: P(b|a)=%g vs P(b)=%g", pa2b2/pa2, pb2)
	}
}

func TestTreeWalkerMatchesContext(t *testing.T) {
	m := trainCorrelated(t, 3000)
	ctx, _ := m.NewContext()
	tw, err := m.NewTreeWalker()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		weights := make([][]float64, len(m.Cols))
		for i := range weights {
			if rng.Intn(2) == 0 {
				continue
			}
			w := make([]float64, m.Cols[i].Bins())
			for b := range w {
				w[b] = rng.Float64()
			}
			weights[i] = w
		}
		a, b := ctx.Prob(weights), tw.Prob(weights)
		if math.Abs(a-b) > 1e-12*(1+a) {
			t.Fatalf("context %g vs tree walker %g", a, b)
		}
	}
}

func TestConcurrentInference(t *testing.T) {
	m := trainCorrelated(t, 3000)
	ctx, _ := m.NewContext()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				_, err := ctx.SelectivityConj([]expr.Constraint{eqConstraint("a", float64(k%4))})
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	m := trainCorrelated(t, 1000)
	// Introduce a cycle between two non-root nodes.
	root := m.Root()
	var a, b = -1, -1
	for i := range m.Parent {
		if i != root {
			if a < 0 {
				a = i
			} else {
				b = i
			}
		}
	}
	m.Parent[a], m.Parent[b] = b, a
	if err := m.Validate(); err == nil {
		t.Error("cycle must fail health detection")
	}
}

func TestValidateDetectsBadDistribution(t *testing.T) {
	m := trainCorrelated(t, 1000)
	m.Prior[0] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN prior must fail validation")
	}
	m = trainCorrelated(t, 1000)
	m.Prior[0] += 0.5
	if err := m.Validate(); err == nil {
		t.Error("unnormalized prior must fail validation")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := trainCorrelated(t, 2000)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, _ := m.NewContext()
	ctx2, _ := m2.NewContext()
	a, _ := ctx1.SelectivityConj([]expr.Constraint{eqConstraint("a", 1)})
	b, _ := ctx2.SelectivityConj([]expr.Constraint{eqConstraint("a", 1)})
	if a != b {
		t.Errorf("roundtrip changed inference: %g vs %g", a, b)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("junk")); err == nil {
		t.Error("garbage must fail")
	}
}

func TestSelectivityNodeInclusionExclusion(t *testing.T) {
	sample := sampleCorrelated(10000, 29)
	m, err := Train(TrainConfig{Table: "t", ColNames: []string{"a", "b", "c"}, Sample: sample, Laplace: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := m.NewContext()
	// P(a=1 OR b=2) via inclusion-exclusion vs empirical.
	tree := expr.Or(
		expr.Leaf(expr.Pred{Col: "a", Op: expr.OpEq, Val: types.Int(1)}),
		expr.Leaf(expr.Pred{Col: "b", Op: expr.OpEq, Val: types.Int(2)}),
	)
	enc := func(_ string, d types.Datum) (float64, bool) { return d.AsFloat(), true }
	got, err := ctx.SelectivityNode(tree, enc)
	if err != nil {
		t.Fatal(err)
	}
	var cnt float64
	for r := range sample[0] {
		if sample[0][r] == 1 || sample[1][r] == 2 {
			cnt++
		}
	}
	want := cnt / float64(len(sample[0]))
	if math.Abs(got-want) > 0.02 {
		t.Errorf("P(a=1 OR b=2) = %g, want %g", got, want)
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	m := trainCorrelated(t, 1000)
	ctx, _ := m.NewContext()
	if _, err := ctx.SelectivityConj([]expr.Constraint{eqConstraint("zz", 1)}); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := ctx.JointWithColumn(nil, "zz"); err == nil {
		t.Error("unknown key column must error")
	}
	if _, err := m.WeightsFor("zz", eqConstraint("zz", 1)); err == nil {
		t.Error("unknown column must error in WeightsFor")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(TrainConfig{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := Train(TrainConfig{ColNames: []string{"a"}, Sample: [][]float64{{}}}); err == nil {
		t.Error("empty sample must fail")
	}
	if _, err := Train(TrainConfig{ColNames: []string{"a", "b"}, Sample: [][]float64{{1, 2}, {1}}}); err == nil {
		t.Error("ragged sample must fail")
	}
}

func TestForcedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 5000
	cols := [][]float64{make([]float64, n)}
	for r := 0; r < n; r++ {
		cols[0][r] = float64(rng.Intn(1000))
	}
	bounds := []float64{0, 250, 500, 750, 1000}
	m, err := Train(TrainConfig{
		Table:        "t",
		ColNames:     []string{"k"},
		Sample:       cols,
		ForcedBounds: map[string][]float64{"k": bounds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols[0].Bins() != 4 {
		t.Errorf("bins = %d, want 4", m.Cols[0].Bins())
	}
	ctx, _ := m.NewContext()
	vec, err := ctx.JointWithColumn(nil, "k")
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range vec {
		if math.Abs(v-0.25) > 0.03 {
			t.Errorf("bucket %d probability %g, want ~0.25", b, v)
		}
	}
}

func TestColumnModelBinOf(t *testing.T) {
	cm := ColumnModel{Bounds: []float64{0, 10, 20, 30}}
	cases := map[float64]int{0: 0, 5: 0, 10: 1, 19: 1, 20: 2, 30: 2, -1: -1, 31: -1}
	for v, want := range cases {
		if got := cm.BinOf(v); got != want {
			t.Errorf("BinOf(%g) = %d, want %d", v, got, want)
		}
	}
	cat := ColumnModel{Categorical: true, Values: []float64{1, 3, 5}}
	if cat.BinOf(3) != 1 || cat.BinOf(4) != -1 {
		t.Error("categorical BinOf broken")
	}
}

func TestSingleColumnModel(t *testing.T) {
	cols := [][]float64{{1, 1, 2, 2, 2, 3}}
	m, err := Train(TrainConfig{Table: "t", ColNames: []string{"x"}, Sample: cols, Laplace: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := m.NewContext()
	got, _ := ctx.SelectivityConj([]expr.Constraint{eqConstraint("x", 2)})
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("P(x=2) = %g, want ~0.5", got)
	}
}
