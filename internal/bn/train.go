package bn

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"bytecard/internal/par"
)

// TrainConfig drives Train. Sample holds the training rows column-major:
// Sample[c][r] is the numeric image of row r in column c. Missing (optional,
// same shape) marks cells whose value is unknown; parameter learning then
// runs EM over the tree.
type TrainConfig struct {
	Table    string
	ColNames []string
	Sample   [][]float64
	Missing  [][]bool
	// Rows is the population size the sample represents (defaults to the
	// sample size).
	Rows float64
	// MaxBins bounds per-column domains (default DefaultMaxBins).
	MaxBins int
	// Laplace is the per-cell smoothing pseudo-count. Zero selects
	// adaptive smoothing (one pseudo-row per CPT row), which keeps wide
	// join-bucket CPTs from shrinking toward uniform.
	Laplace float64
	// EMIterations bounds EM sweeps when Missing is present (default 5).
	EMIterations int
	// ForcedBounds pins a column's discretization to explicit bin bounds
	// (FactorJoin aligns join-key columns with its join buckets this way).
	ForcedBounds map[string][]float64
	// ForcedBinNDV overrides the per-bin distinct counts of a
	// forced-bounds column with externally computed (exact) values.
	ForcedBinNDV map[string][]float64
	// Workers bounds structure-learning parallelism (the O(cols²) pairwise
	// MI matrix). Zero resolves via BYTECARD_TRAIN_WORKERS, then
	// GOMAXPROCS. The learned model is identical at any worker count: each
	// MI cell is an independent computation and the spanning tree, root
	// choice, and parameter learning stay serial.
	Workers int
}

// Train learns structure (Chow-Liu) and parameters (ML counts, or EM when
// values are missing) from the sample.
func Train(cfg TrainConfig) (*Model, error) {
	start := time.Now()
	nCols := len(cfg.Sample)
	if nCols == 0 || len(cfg.ColNames) != nCols {
		return nil, errors.New("bn: sample and column names must align and be non-empty")
	}
	nRows := len(cfg.Sample[0])
	if nRows == 0 {
		return nil, errors.New("bn: empty sample")
	}
	for c := range cfg.Sample {
		if len(cfg.Sample[c]) != nRows {
			return nil, fmt.Errorf("bn: column %d has %d rows, want %d", c, len(cfg.Sample[c]), nRows)
		}
		if cfg.Missing != nil && len(cfg.Missing[c]) != nRows {
			return nil, fmt.Errorf("bn: missing mask column %d misshaped", c)
		}
	}
	if cfg.MaxBins <= 0 {
		cfg.MaxBins = DefaultMaxBins
	}
	if cfg.Rows <= 0 {
		cfg.Rows = float64(nRows)
	}

	m := &Model{Table: cfg.Table, Rows: cfg.Rows}
	for c := 0; c < nCols; c++ {
		cm, err := buildColumnModel(cfg.ColNames[c], cfg.Sample[c], missingCol(cfg.Missing, c), cfg)
		if err != nil {
			return nil, err
		}
		m.Cols = append(m.Cols, cm)
	}

	// Discretize the sample once; -1 marks missing or out-of-domain.
	bins := make([][]int, nCols)
	hasMissing := false
	for c := 0; c < nCols; c++ {
		bins[c] = make([]int, nRows)
		miss := missingCol(cfg.Missing, c)
		for r := 0; r < nRows; r++ {
			if miss != nil && miss[r] {
				bins[c][r] = -1
				hasMissing = true
				continue
			}
			bins[c][r] = m.Cols[c].BinOf(cfg.Sample[c][r])
			if bins[c][r] < 0 {
				hasMissing = true
			}
		}
	}

	structStart := time.Now()
	m.Parent = chowLiu(m, bins, par.TrainWorkers(cfg.Workers))
	m.StructureSeconds = time.Since(structStart).Seconds()
	paramStart := time.Now()
	if err := learnParameters(m, bins, cfg, hasMissing); err != nil {
		return nil, err
	}
	m.ParamSeconds = time.Since(paramStart).Seconds()
	m.TrainSeconds = time.Since(start).Seconds()
	return m, m.Validate()
}

func missingCol(missing [][]bool, c int) []bool {
	if missing == nil {
		return nil
	}
	return missing[c]
}

// buildColumnModel chooses categorical or binned discretization.
func buildColumnModel(name string, values []float64, miss []bool, cfg TrainConfig) (ColumnModel, error) {
	cm := ColumnModel{Name: name}
	if forced, ok := cfg.ForcedBounds[name]; ok {
		if len(forced) < 2 || !sort.Float64sAreSorted(forced) {
			return cm, fmt.Errorf("bn: forced bounds for %s must be >=2 ascending values", name)
		}
		cm.Bounds = append([]float64(nil), forced...)
		if ndv, ok := cfg.ForcedBinNDV[name]; ok && len(ndv) == len(forced)-1 {
			cm.BinNDV = append([]float64(nil), ndv...)
		} else {
			cm.BinNDV = binNDVs(values, miss, cm.Bounds, cfg.Rows, float64(len(values)))
		}
		return cm, nil
	}
	counts := map[float64]int{}
	for r, v := range values {
		if miss != nil && miss[r] {
			continue
		}
		counts[v]++
	}
	if len(counts) == 0 {
		return cm, fmt.Errorf("bn: column %s has no observed values", name)
	}
	if len(counts) <= cfg.MaxBins {
		cm.Categorical = true
		for v := range counts {
			cm.Values = append(cm.Values, v)
		}
		sort.Float64s(cm.Values)
		return cm, nil
	}
	// Equi-height bounds over distinct values with strictly increasing
	// boundaries; bin i covers [Bounds[i], Bounds[i+1]), last bin closed.
	distinct := make([]float64, 0, len(counts))
	for v := range counts {
		distinct = append(distinct, v)
	}
	sort.Float64s(distinct)
	var observed float64
	for _, v := range distinct {
		observed += float64(counts[v])
	}
	target := observed / float64(cfg.MaxBins)
	bounds := []float64{distinct[0]}
	var acc float64
	for _, v := range distinct[:len(distinct)-1] {
		acc += float64(counts[v])
		if acc >= target {
			bounds = append(bounds, nextAfter(v))
			acc = 0
		}
	}
	bounds = append(bounds, distinct[len(distinct)-1])
	// Deduplicate any accidental equal boundaries.
	dedup := bounds[:1]
	for _, b := range bounds[1:] {
		if b > dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) < 2 {
		dedup = append(dedup, dedup[0]+1)
	}
	cm.Bounds = dedup
	cm.BinNDV = binNDVs(values, miss, cm.Bounds, cfg.Rows, observed)
	return cm, nil
}

func nextAfter(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }

// binNDVs estimates the population distinct count per bin from the sample
// using a GEE-style singleton scale-up.
func binNDVs(values []float64, miss []bool, bounds []float64, popRows, sampleRows float64) []float64 {
	nBins := len(bounds) - 1
	perBin := make([]map[float64]int, nBins)
	for i := range perBin {
		perBin[i] = map[float64]int{}
	}
	cm := ColumnModel{Bounds: bounds}
	for r, v := range values {
		if miss != nil && miss[r] {
			continue
		}
		if b := cm.BinOf(v); b >= 0 {
			perBin[b][v]++
		}
	}
	scale := 1.0
	if sampleRows > 0 && popRows > sampleRows {
		scale = math.Sqrt(popRows / sampleRows)
	}
	out := make([]float64, nBins)
	for i, counts := range perBin {
		var f1, rest int
		for _, c := range counts {
			if c == 1 {
				f1++
			} else {
				rest++
			}
		}
		est := scale*float64(f1) + float64(rest)
		if est < 1 {
			est = 1
		}
		out[i] = est
	}
	return out
}

// chowLiu learns the maximum-spanning tree over pairwise mutual
// information and returns the parent array (root has parent -1, chosen as
// the node with the largest total MI — the "root identification" step).
// The MI matrix — the O(cols²·rows) bulk of structure learning — fans out
// across workers; each cell is written by exactly one goroutine and read
// only after the pool drains, so the result is worker-count independent.
func chowLiu(m *Model, bins [][]int, workers int) []int {
	n := len(m.Cols)
	if n == 1 {
		return []int{-1}
	}
	mi := make([][]float64, n)
	for i := range mi {
		mi[i] = make([]float64, n)
	}
	type pairIdx struct{ i, j int }
	pairs := make([]pairIdx, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	par.Do(len(pairs), workers, func(k int) {
		p := pairs[k]
		v := mutualInformation(bins[p.i], bins[p.j], m.Cols[p.i].Bins(), m.Cols[p.j].Bins())
		mi[p.i][p.j], mi[p.j][p.i] = v, v
	})
	// Prim's algorithm for the maximum spanning tree.
	inTree := make([]bool, n)
	bestEdge := make([]int, n)
	bestW := make([]float64, n)
	for i := range bestW {
		bestW[i] = math.Inf(-1)
		bestEdge[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = mi[0][j]
		bestEdge[j] = 0
	}
	type edge struct{ a, b int }
	var edges []edge
	for len(edges) < n-1 {
		pick, w := -1, math.Inf(-1)
		for j := 0; j < n; j++ {
			if !inTree[j] && bestW[j] > w {
				pick, w = j, bestW[j]
			}
		}
		inTree[pick] = true
		edges = append(edges, edge{bestEdge[pick], pick})
		for j := 0; j < n; j++ {
			if !inTree[j] && mi[pick][j] > bestW[j] {
				bestW[j] = mi[pick][j]
				bestEdge[j] = pick
			}
		}
	}
	// Root: the node with maximum total MI, BFS to orient edges.
	root, best := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		var total float64
		for j := 0; j < n; j++ {
			total += mi[i][j]
		}
		if total > best {
			root, best = i, total
		}
	}
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if parent[nb] == -2 {
				parent[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	return parent
}

// mutualInformation computes MI over rows where both columns are observed.
func mutualInformation(a, b []int, binsA, binsB int) float64 {
	joint := make([]float64, binsA*binsB)
	pa := make([]float64, binsA)
	pb := make([]float64, binsB)
	var total float64
	for r := range a {
		if a[r] < 0 || b[r] < 0 {
			continue
		}
		joint[a[r]*binsB+b[r]]++
		pa[a[r]]++
		pb[b[r]]++
		total++
	}
	if total < 2 {
		return 0
	}
	var mi float64
	for i := 0; i < binsA; i++ {
		for j := 0; j < binsB; j++ {
			p := joint[i*binsB+j] / total
			if p == 0 {
				continue
			}
			mi += p * math.Log(p/((pa[i]/total)*(pb[j]/total)))
		}
	}
	return mi
}

// learnParameters estimates Prior and CPTs from complete rows (plus EM
// sweeps over incomplete rows when present).
func learnParameters(m *Model, bins [][]int, cfg TrainConfig, hasMissing bool) error {
	root := m.Root()
	nRows := len(bins[0])
	rootCnt := make([]float64, m.Cols[root].Bins())
	edgeCnt := make([][]float64, len(m.Cols))
	for i := range m.Cols {
		if i == root {
			continue
		}
		edgeCnt[i] = make([]float64, m.Cols[m.Parent[i]].Bins()*m.Cols[i].Bins())
	}
	accumulate := func(weight float64, row int) {
		if b := bins[root][row]; b >= 0 {
			rootCnt[b] += weight
		}
		for i := range m.Cols {
			if i == root {
				continue
			}
			pb, cb := bins[m.Parent[i]][row], bins[i][row]
			if pb >= 0 && cb >= 0 {
				edgeCnt[i][pb*m.Cols[i].Bins()+cb] += weight
			}
		}
	}
	for r := 0; r < nRows; r++ {
		accumulate(1, r)
	}
	normalize(m, rootCnt, edgeCnt, cfg.Laplace)

	if !hasMissing {
		return nil
	}
	iters := cfg.EMIterations
	if iters <= 0 {
		iters = 5
	}
	// EM: complete rows keep their hard counts; incomplete rows contribute
	// expected counts from tree belief propagation under the current
	// parameters.
	var incomplete []int
	for r := 0; r < nRows; r++ {
		for c := range bins {
			if bins[c][r] < 0 {
				incomplete = append(incomplete, r)
				break
			}
		}
	}
	if len(incomplete) == 0 {
		return nil
	}
	for it := 0; it < iters; it++ {
		ctx, err := m.NewContext()
		if err != nil {
			return err
		}
		rootE := make([]float64, len(rootCnt))
		edgeE := make([][]float64, len(edgeCnt))
		for i := range edgeCnt {
			if edgeCnt[i] != nil {
				edgeE[i] = make([]float64, len(edgeCnt[i]))
			}
		}
		// One weight buffer per column, re-filled per row, and one pooled
		// scratch for the whole sweep: the E-step reads sc.belief/sc.pair
		// directly between marginals calls instead of allocating fresh
		// tables per incomplete row.
		weights := make([][]float64, len(m.Cols))
		for c := range m.Cols {
			weights[c] = make([]float64, m.Cols[c].Bins())
		}
		sc := ctx.getScratch()
		for _, r := range incomplete {
			for c := range m.Cols {
				w := weights[c]
				if bins[c][r] >= 0 {
					clearFloats(w)
					w[bins[c][r]] = 1
				} else {
					for k := range w {
						w[k] = 1
					}
				}
			}
			pe := ctx.marginals(sc, weights)
			if pe <= 0 {
				continue
			}
			for b, v := range sc.belief[root] {
				rootE[b] += v / pe
			}
			for i := range m.Cols {
				if i == root || sc.pair[i] == nil {
					continue
				}
				for k, v := range sc.pair[i] {
					edgeE[i][k] += v / pe
				}
			}
		}
		ctx.putScratch(sc)
		// Recompute complete-row hard counts and merge expectations.
		for i := range rootCnt {
			rootCnt[i] = 0
		}
		for i := range edgeCnt {
			if edgeCnt[i] != nil {
				clearFloats(edgeCnt[i])
			}
		}
		for r := 0; r < nRows; r++ {
			accumulate(1, r)
		}
		for b := range rootCnt {
			rootCnt[b] += rootE[b]
		}
		for i := range edgeCnt {
			if edgeCnt[i] == nil {
				continue
			}
			for k := range edgeCnt[i] {
				edgeCnt[i][k] += edgeE[i][k]
			}
		}
		normalize(m, rootCnt, edgeCnt, cfg.Laplace)
	}
	return nil
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// normalize turns counts into smoothed distributions on the model.
func normalize(m *Model, rootCnt []float64, edgeCnt [][]float64, laplace float64) {
	root := m.Root()
	m.Prior = distFromCounts(rootCnt, laplace)
	m.CPT = make([][]float64, len(m.Cols))
	for i := range m.Cols {
		if i == root {
			continue
		}
		pb, cb := m.Cols[m.Parent[i]].Bins(), m.Cols[i].Bins()
		cpt := make([]float64, pb*cb)
		for a := 0; a < pb; a++ {
			row := distFromCounts(edgeCnt[i][a*cb:(a+1)*cb], laplace)
			copy(cpt[a*cb:(a+1)*cb], row)
		}
		m.CPT[i] = cpt
	}
}

func distFromCounts(cnt []float64, laplace float64) []float64 {
	if laplace <= 0 {
		// Adaptive smoothing: a fifth of a pseudo-row spread across the
		// domain — enough to avoid hard zeros, light enough that wide
		// CPTs (join-bucket parents) are not shrunk toward uniform and
		// high-fanout buckets do not accumulate phantom mass.
		laplace = 0.2 / float64(len(cnt))
	}
	out := make([]float64, len(cnt))
	var total float64
	for _, c := range cnt {
		total += c
	}
	denom := total + laplace*float64(len(cnt))
	for i, c := range cnt {
		out[i] = (c + laplace) / denom
	}
	return out
}
