package bn

import (
	"errors"
	"fmt"
	"sync"

	"bytecard/internal/expr"
)

// Context is the immutable inference state built by the paper's
// initContext step: nodes laid out in a topological array with flattened
// CPT access and precomputed child lists. A Context is safe for concurrent
// use — Estimate calls borrow preallocated scratch from a sync.Pool and
// never mutate shared state, so query threads never take a lock (the
// high-concurrency property the paper engineers for) and steady-state
// inference runs allocation-free.
type Context struct {
	m *Model
	// topo orders nodes parents-first; root is topo[0].
	topo []int
	// children lists each node's children.
	children [][]int
	bins     []int
	// maxBins is the widest per-node domain (sizes the excl scratch).
	maxBins int
	// scratchFloats is the flat float64 budget one scratch needs:
	// lambda+pi+belief (3·Σbins), excl (maxBins), and the pair tables
	// (Σ parentBins·bins over non-root nodes).
	scratchFloats int
	// pool recycles inference scratch across calls and goroutines.
	pool sync.Pool
}

// NewContext validates the model and builds the topological CPD index.
func (m *Model) NewContext() (*Context, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(m.Cols)
	ctx := &Context{m: m, children: make([][]int, n), bins: make([]int, n)}
	for i := range m.Cols {
		ctx.bins[i] = m.Cols[i].Bins()
		if ctx.bins[i] > ctx.maxBins {
			ctx.maxBins = ctx.bins[i]
		}
		if p := m.Parent[i]; p >= 0 {
			ctx.children[p] = append(ctx.children[p], i)
		}
	}
	root := m.Root()
	ctx.topo = append(ctx.topo, root)
	for qi := 0; qi < len(ctx.topo); qi++ {
		for _, c := range ctx.children[ctx.topo[qi]] {
			ctx.topo = append(ctx.topo, c)
		}
	}
	if len(ctx.topo) != n {
		return nil, errors.New("bn: tree does not reach every node")
	}
	var sum, pairTotal int
	for i, b := range ctx.bins {
		sum += b
		if p := m.Parent[i]; p >= 0 {
			pairTotal += ctx.bins[p] * b
		}
	}
	ctx.scratchFloats = 3*sum + ctx.maxBins + pairTotal
	ctx.pool.New = func() any { return newScratch(ctx) }
	return ctx, nil
}

// Model returns the underlying model.
func (c *Context) Model() *Model { return c.m }

// scratch is one belief-propagation pass's preallocated working state. All
// per-node message views share a single flat backing array, so acquiring a
// fresh scratch costs a handful of allocations and a recycled one costs
// none — the BayesCard-style compilation of the inference loop.
type scratch struct {
	// flat backs lambda/pi/belief/excl/pair below with one allocation.
	flat []float64
	// lambda holds the per-node upward λ messages.
	lambda [][]float64
	// pi holds the per-node downward π messages.
	pi [][]float64
	// belief holds the per-node unnormalized beliefs P(x_i=b, e).
	belief [][]float64
	// pair holds the per-node unnormalized pairwise tables (nil for root).
	pair [][]float64
	// excl is the child-excluded π product, sized to the widest domain.
	excl []float64
	// weights assembles per-call soft evidence for the constraint APIs.
	weights [][]float64
}

// newScratch carves every per-node view out of one flat array.
func newScratch(c *Context) *scratch {
	n := len(c.bins)
	sc := &scratch{
		flat:    make([]float64, c.scratchFloats),
		lambda:  make([][]float64, n),
		pi:      make([][]float64, n),
		belief:  make([][]float64, n),
		pair:    make([][]float64, n),
		weights: make([][]float64, n),
	}
	off := 0
	carve := func(size int) []float64 {
		v := sc.flat[off : off+size : off+size]
		off += size
		return v
	}
	for i, b := range c.bins {
		sc.lambda[i] = carve(b)
	}
	for i, b := range c.bins {
		sc.pi[i] = carve(b)
	}
	for i, b := range c.bins {
		sc.belief[i] = carve(b)
	}
	sc.excl = carve(c.maxBins)
	for i, b := range c.bins {
		if p := c.m.Parent[i]; p >= 0 {
			sc.pair[i] = carve(c.bins[p] * b)
		}
	}
	return sc
}

func (c *Context) getScratch() *scratch  { return c.pool.Get().(*scratch) }
func (c *Context) putScratch(s *scratch) { c.pool.Put(s) }

// Prob computes P(evidence) with an upward (variable-elimination) pass.
// weights[i] gives per-bin soft-evidence weights for node i, or nil for an
// unconstrained node. Steady-state calls are allocation-free.
func (c *Context) Prob(weights [][]float64) float64 {
	sc := c.getScratch()
	p := c.prob(sc, weights)
	c.putScratch(sc)
	return p
}

// prob runs the upward pass over sc and folds the root prior.
func (c *Context) prob(sc *scratch, weights [][]float64) float64 {
	c.upward(sc, weights)
	root := c.topo[0]
	lr := sc.lambda[root]
	var p float64
	for b, prior := range c.m.Prior {
		p += prior * lr[b]
	}
	return p
}

// upward computes λ messages bottom-up into sc.lambda:
// λ_i(b) = w_i(b)·∏_c Σ_b' P(b'|b)·λ_c(b').
func (c *Context) upward(sc *scratch, weights [][]float64) {
	for ti := len(c.topo) - 1; ti >= 0; ti-- {
		i := c.topo[ti]
		nb := c.bins[i]
		l := sc.lambda[i]
		w := weights[i]
		for b := 0; b < nb; b++ {
			if w != nil {
				l[b] = w[b]
			} else {
				l[b] = 1
			}
		}
		for _, ch := range c.children[i] {
			cb := c.bins[ch]
			cpt := c.m.CPT[ch]
			lc := sc.lambda[ch]
			for b := 0; b < nb; b++ {
				if l[b] == 0 {
					continue
				}
				var msg float64
				row := cpt[b*cb : (b+1)*cb]
				for j, p := range row {
					msg += p * lc[j]
				}
				l[b] *= msg
			}
		}
	}
}

// Marginals runs full belief propagation, returning P(evidence), the
// unnormalized node beliefs P(x_i=b, e), and the unnormalized pairwise
// tables P(x_parent=a, x_i=b, e) (nil for the root). EM's E-step and
// FactorJoin's per-bucket conditioning both consume this.
//
// The returned tables are freshly checked-out scratch the caller owns; the
// hot paths inside this package reuse pooled scratch via marginals instead.
func (c *Context) Marginals(weights [][]float64) (float64, [][]float64, [][]float64) {
	sc := c.getScratch() //bytecard:pool-ok belief/pair escape to the caller, which owns them; GC reclaims the scratch with the result
	pe := c.marginals(sc, weights)
	return pe, sc.belief, sc.pair
}

// marginals runs the full up-down pass into sc and returns P(evidence).
// sc.belief and sc.pair hold the results until the scratch is reused.
func (c *Context) marginals(sc *scratch, weights [][]float64) float64 {
	c.upward(sc, weights)
	root := c.topo[0]

	copy(sc.pi[root], c.m.Prior)

	var pe float64
	lr := sc.lambda[root]
	for b := range c.m.Prior {
		pe += c.m.Prior[b] * lr[b]
	}

	for _, i := range c.topo {
		nb := c.bins[i]
		bi := sc.belief[i]
		pii := sc.pi[i]
		li := sc.lambda[i]
		for b := 0; b < nb; b++ {
			bi[b] = pii[b] * li[b]
		}
		for _, ch := range c.children[i] {
			cb := c.bins[ch]
			cpt := c.m.CPT[ch]
			// π contribution to child ch excludes ch's own λ message:
			// exclMsg(b) = π_i(b)·w_i(b)·∏_{c'≠ch} m_{c'→i}(b)
			//            = belief_i(b) / m_{ch→i}(b) computed stably by
			// recomputing the product without ch.
			excl := sc.excl[:nb]
			w := weights[i]
			for b := 0; b < nb; b++ {
				v := pii[b]
				if w != nil {
					v *= w[b]
				}
				excl[b] = v
			}
			for _, other := range c.children[i] {
				if other == ch {
					continue
				}
				ob := c.bins[other]
				ocpt := c.m.CPT[other]
				ol := sc.lambda[other]
				for b := 0; b < nb; b++ {
					if excl[b] == 0 {
						continue
					}
					var msg float64
					row := ocpt[b*ob : (b+1)*ob]
					for j, p := range row {
						msg += p * ol[j]
					}
					excl[b] *= msg
				}
			}
			pich := sc.pi[ch]
			pairch := sc.pair[ch]
			clear(pich)
			clear(pairch)
			lch := sc.lambda[ch]
			for b := 0; b < nb; b++ {
				if excl[b] == 0 {
					continue
				}
				row := cpt[b*cb : (b+1)*cb]
				for j, p := range row {
					contrib := excl[b] * p
					pich[j] += contrib
					pairch[b*cb+j] = contrib * lch[j]
				}
			}
		}
	}
	return pe
}

// WeightsFor compiles a column constraint into the column's bin weights.
func (m *Model) WeightsFor(col string, cons expr.Constraint) ([]float64, error) {
	i := m.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("bn: model for %s has no column %q", m.Table, col)
	}
	return m.Cols[i].Weights(cons), nil
}

// buildWeights compiles constraints into sc.weights, multiplying repeated
// columns. The per-constraint weight vectors still allocate (they come from
// ColumnModel.Weights); the n-wide header array is pooled.
func (c *Context) buildWeights(sc *scratch, constraints []expr.Constraint) error {
	clear(sc.weights)
	for _, cons := range constraints {
		i := c.m.ColIndex(cons.Col)
		if i < 0 {
			return fmt.Errorf("bn: no column %q in model for %s", cons.Col, c.m.Table)
		}
		w := c.m.Cols[i].Weights(cons)
		if sc.weights[i] != nil {
			for b := range w {
				sc.weights[i][b] *= w[b]
			}
		} else {
			sc.weights[i] = w
		}
	}
	return nil
}

// SelectivityConj estimates P(∧ constraints). Constraints on columns the
// model does not cover yield an error (the caller falls back to a
// traditional estimator, as the Model Monitor prescribes).
func (c *Context) SelectivityConj(constraints []expr.Constraint) (float64, error) {
	sc := c.getScratch()
	defer c.putScratch(sc)
	if err := c.buildWeights(sc, constraints); err != nil {
		return 0, err
	}
	return c.prob(sc, sc.weights), nil
}

// SelectivityNode estimates the probability of a general filter tree via
// the inclusion–exclusion transformation (ByteCard's OR handling) with an
// encoder mapping literals to numeric images.
func (c *Context) SelectivityNode(filter *expr.Node, enc expr.Encoder) (float64, error) {
	if filter == nil {
		return 1, nil
	}
	terms, err := filter.InclusionExclusion()
	if err != nil {
		return 0, err
	}
	var sel float64
	for _, term := range terms {
		s, err := c.SelectivityConj(expr.BuildConstraints(term.Preds, enc))
		if err != nil {
			return 0, err
		}
		sel += term.Sign * s
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

// JointWithColumn returns P(filter-constraints ∧ col = bin b) for every bin
// of col in one belief-propagation pass — FactorJoin reads its per-bucket
// filtered counts through this. Only the returned vector escapes; the BP
// buffers come from the pooled scratch.
func (c *Context) JointWithColumn(constraints []expr.Constraint, col string) ([]float64, error) {
	i := c.m.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("bn: no column %q in model for %s", col, c.m.Table)
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	if err := c.buildWeights(sc, constraints); err != nil {
		return nil, err
	}
	c.marginals(sc, sc.weights)
	return append([]float64(nil), sc.belief[i]...), nil
}

// ProbNoScratch computes P(evidence) exactly like Prob but with fresh
// per-call buffer allocation — the pre-pooling behaviour, kept as the
// ablation baseline the estimation benchmarks and the scratch-parity tests
// compare against. It performs the same arithmetic in the same order as
// Prob, so results are bit-identical.
func (c *Context) ProbNoScratch(weights [][]float64) float64 {
	n := len(c.m.Cols)
	lambda := make([][]float64, n)
	for ti := len(c.topo) - 1; ti >= 0; ti-- {
		i := c.topo[ti]
		nb := c.bins[i]
		l := make([]float64, nb)
		w := weights[i]
		for b := 0; b < nb; b++ {
			if w != nil {
				l[b] = w[b]
			} else {
				l[b] = 1
			}
		}
		for _, ch := range c.children[i] {
			cb := c.bins[ch]
			cpt := c.m.CPT[ch]
			lc := lambda[ch]
			for b := 0; b < nb; b++ {
				if l[b] == 0 {
					continue
				}
				var msg float64
				row := cpt[b*cb : (b+1)*cb]
				for j, p := range row {
					msg += p * lc[j]
				}
				l[b] *= msg
			}
		}
		lambda[i] = l
	}
	root := c.topo[0]
	var p float64
	for b, prior := range c.m.Prior {
		p += prior * lambda[root][b]
	}
	return p
}

// treeNode is the pointer-linked representation used by the ablation
// baseline that walks the tree structure on every inference instead of the
// flattened topological arrays.
type treeNode struct {
	idx      int
	children []*treeNode
}

// TreeWalker is the non-indexed inference baseline for the CPD-indexing
// ablation (BenchmarkAblationCPDIndexing): mathematically identical to
// Context.Prob but re-traversing a pointer tree with per-node map lookups,
// the access pattern the paper's initContext optimization removes.
type TreeWalker struct {
	m     *Model
	root  *treeNode
	byIdx map[int]*treeNode
}

// NewTreeWalker builds the pointer-tree inference baseline.
func (m *Model) NewTreeWalker() (*TreeWalker, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	tw := &TreeWalker{m: m, byIdx: map[int]*treeNode{}}
	for i := range m.Cols {
		tw.byIdx[i] = &treeNode{idx: i}
	}
	for i, p := range m.Parent {
		if p < 0 {
			tw.root = tw.byIdx[i]
		} else {
			tw.byIdx[p].children = append(tw.byIdx[p].children, tw.byIdx[i])
		}
	}
	return tw, nil
}

// Prob computes P(evidence) recursively over the pointer tree.
func (t *TreeWalker) Prob(weights [][]float64) float64 {
	var lambda func(n *treeNode) []float64
	lambda = func(n *treeNode) []float64 {
		nb := t.m.Cols[n.idx].Bins()
		l := make([]float64, nb)
		w := weights[n.idx]
		for b := 0; b < nb; b++ {
			if w != nil {
				l[b] = w[b]
			} else {
				l[b] = 1
			}
		}
		for _, ch := range n.children {
			child := t.byIdx[ch.idx] // deliberate indirection per visit
			cb := t.m.Cols[child.idx].Bins()
			cl := lambda(child)
			cpt := t.m.CPT[child.idx]
			for b := 0; b < nb; b++ {
				var msg float64
				for j := 0; j < cb; j++ {
					msg += cpt[b*cb+j] * cl[j]
				}
				l[b] *= msg
			}
		}
		return l
	}
	l := lambda(t.root)
	var p float64
	for b, prior := range t.m.Prior {
		p += prior * l[b]
	}
	return p
}
