package bn

import (
	"errors"
	"fmt"

	"bytecard/internal/expr"
)

// Context is the immutable inference state built by the paper's
// initContext step: nodes laid out in a topological array with flattened
// CPT access and precomputed child lists. A Context is safe for concurrent
// use — Estimate calls allocate only local scratch, so query threads never
// take a lock (the high-concurrency property the paper engineers for).
type Context struct {
	m *Model
	// topo orders nodes parents-first; root is topo[0].
	topo []int
	// children lists each node's children.
	children [][]int
	bins     []int
}

// NewContext validates the model and builds the topological CPD index.
func (m *Model) NewContext() (*Context, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(m.Cols)
	ctx := &Context{m: m, children: make([][]int, n), bins: make([]int, n)}
	for i := range m.Cols {
		ctx.bins[i] = m.Cols[i].Bins()
		if p := m.Parent[i]; p >= 0 {
			ctx.children[p] = append(ctx.children[p], i)
		}
	}
	root := m.Root()
	ctx.topo = append(ctx.topo, root)
	for qi := 0; qi < len(ctx.topo); qi++ {
		for _, c := range ctx.children[ctx.topo[qi]] {
			ctx.topo = append(ctx.topo, c)
		}
	}
	if len(ctx.topo) != n {
		return nil, errors.New("bn: tree does not reach every node")
	}
	return ctx, nil
}

// Model returns the underlying model.
func (c *Context) Model() *Model { return c.m }

// Prob computes P(evidence) with an upward (variable-elimination) pass.
// weights[i] gives per-bin soft-evidence weights for node i, or nil for an
// unconstrained node.
func (c *Context) Prob(weights [][]float64) float64 {
	lambda := c.upward(weights)
	root := c.topo[0]
	var p float64
	for b, prior := range c.m.Prior {
		p += prior * lambda[root][b]
	}
	return p
}

// upward computes λ messages bottom-up: λ_i(b) = w_i(b)·∏_c Σ_b' P(b'|b)·λ_c(b').
func (c *Context) upward(weights [][]float64) [][]float64 {
	n := len(c.m.Cols)
	lambda := make([][]float64, n)
	for ti := len(c.topo) - 1; ti >= 0; ti-- {
		i := c.topo[ti]
		nb := c.bins[i]
		l := make([]float64, nb)
		w := weights[i]
		for b := 0; b < nb; b++ {
			if w != nil {
				l[b] = w[b]
			} else {
				l[b] = 1
			}
		}
		for _, ch := range c.children[i] {
			cb := c.bins[ch]
			cpt := c.m.CPT[ch]
			lc := lambda[ch]
			for b := 0; b < nb; b++ {
				if l[b] == 0 {
					continue
				}
				var msg float64
				row := cpt[b*cb : (b+1)*cb]
				for j, p := range row {
					msg += p * lc[j]
				}
				l[b] *= msg
			}
		}
		lambda[i] = l
	}
	return lambda
}

// Marginals runs full belief propagation, returning P(evidence), the
// unnormalized node beliefs P(x_i=b, e), and the unnormalized pairwise
// tables P(x_parent=a, x_i=b, e) (nil for the root). EM's E-step and
// FactorJoin's per-bucket conditioning both consume this.
func (c *Context) Marginals(weights [][]float64) (float64, [][]float64, [][]float64) {
	n := len(c.m.Cols)
	lambda := c.upward(weights)
	root := c.topo[0]

	// Downward π messages.
	pi := make([][]float64, n)
	pi[root] = append([]float64(nil), c.m.Prior...)
	belief := make([][]float64, n)
	pair := make([][]float64, n)

	var pe float64
	for b := range c.m.Prior {
		pe += c.m.Prior[b] * lambda[root][b]
	}

	for _, i := range c.topo {
		nb := c.bins[i]
		belief[i] = make([]float64, nb)
		for b := 0; b < nb; b++ {
			belief[i][b] = pi[i][b] * lambda[i][b]
		}
		for _, ch := range c.children[i] {
			cb := c.bins[ch]
			cpt := c.m.CPT[ch]
			// π contribution to child ch excludes ch's own λ message:
			// exclMsg(b) = π_i(b)·w_i(b)·∏_{c'≠ch} m_{c'→i}(b)
			//            = belief_i(b) / m_{ch→i}(b) computed stably by
			// recomputing the product without ch.
			excl := make([]float64, nb)
			w := weights[i]
			for b := 0; b < nb; b++ {
				v := pi[i][b]
				if w != nil {
					v *= w[b]
				}
				excl[b] = v
			}
			for _, other := range c.children[i] {
				if other == ch {
					continue
				}
				ob := c.bins[other]
				ocpt := c.m.CPT[other]
				ol := lambda[other]
				for b := 0; b < nb; b++ {
					if excl[b] == 0 {
						continue
					}
					var msg float64
					row := ocpt[b*ob : (b+1)*ob]
					for j, p := range row {
						msg += p * ol[j]
					}
					excl[b] *= msg
				}
			}
			pi[ch] = make([]float64, cb)
			pair[ch] = make([]float64, nb*cb)
			for b := 0; b < nb; b++ {
				if excl[b] == 0 {
					continue
				}
				row := cpt[b*cb : (b+1)*cb]
				for j, p := range row {
					contrib := excl[b] * p
					pi[ch][j] += contrib
					pair[ch][b*cb+j] = contrib * lambda[ch][j]
				}
			}
		}
	}
	return pe, belief, pair
}

// WeightsFor compiles a column constraint into the column's bin weights.
func (m *Model) WeightsFor(col string, cons expr.Constraint) ([]float64, error) {
	i := m.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("bn: model for %s has no column %q", m.Table, col)
	}
	return m.Cols[i].Weights(cons), nil
}

// SelectivityConj estimates P(∧ constraints). Constraints on columns the
// model does not cover yield an error (the caller falls back to a
// traditional estimator, as the Model Monitor prescribes).
func (c *Context) SelectivityConj(constraints []expr.Constraint) (float64, error) {
	weights := make([][]float64, len(c.m.Cols))
	for _, cons := range constraints {
		i := c.m.ColIndex(cons.Col)
		if i < 0 {
			return 0, fmt.Errorf("bn: no column %q in model for %s", cons.Col, c.m.Table)
		}
		w := c.m.Cols[i].Weights(cons)
		if weights[i] != nil {
			for b := range w {
				weights[i][b] *= w[b]
			}
		} else {
			weights[i] = w
		}
	}
	return c.Prob(weights), nil
}

// SelectivityNode estimates the probability of a general filter tree via
// the inclusion–exclusion transformation (ByteCard's OR handling) with an
// encoder mapping literals to numeric images.
func (c *Context) SelectivityNode(filter *expr.Node, enc expr.Encoder) (float64, error) {
	if filter == nil {
		return 1, nil
	}
	terms, err := filter.InclusionExclusion()
	if err != nil {
		return 0, err
	}
	var sel float64
	for _, term := range terms {
		s, err := c.SelectivityConj(expr.BuildConstraints(term.Preds, enc))
		if err != nil {
			return 0, err
		}
		sel += term.Sign * s
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

// JointWithColumn returns P(filter-constraints ∧ col = bin b) for every bin
// of col in one belief-propagation pass — FactorJoin reads its per-bucket
// filtered counts through this.
func (c *Context) JointWithColumn(constraints []expr.Constraint, col string) ([]float64, error) {
	i := c.m.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("bn: no column %q in model for %s", col, c.m.Table)
	}
	weights := make([][]float64, len(c.m.Cols))
	for _, cons := range constraints {
		j := c.m.ColIndex(cons.Col)
		if j < 0 {
			return nil, fmt.Errorf("bn: no column %q in model for %s", cons.Col, c.m.Table)
		}
		w := c.m.Cols[j].Weights(cons)
		if weights[j] != nil {
			for b := range w {
				weights[j][b] *= w[b]
			}
		} else {
			weights[j] = w
		}
	}
	_, belief, _ := c.Marginals(weights)
	return belief[i], nil
}

// treeNode is the pointer-linked representation used by the ablation
// baseline that walks the tree structure on every inference instead of the
// flattened topological arrays.
type treeNode struct {
	idx      int
	children []*treeNode
}

// TreeWalker is the non-indexed inference baseline for the CPD-indexing
// ablation (BenchmarkAblationCPDIndexing): mathematically identical to
// Context.Prob but re-traversing a pointer tree with per-node map lookups,
// the access pattern the paper's initContext optimization removes.
type TreeWalker struct {
	m     *Model
	root  *treeNode
	byIdx map[int]*treeNode
}

// NewTreeWalker builds the pointer-tree inference baseline.
func (m *Model) NewTreeWalker() (*TreeWalker, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	tw := &TreeWalker{m: m, byIdx: map[int]*treeNode{}}
	for i := range m.Cols {
		tw.byIdx[i] = &treeNode{idx: i}
	}
	for i, p := range m.Parent {
		if p < 0 {
			tw.root = tw.byIdx[i]
		} else {
			tw.byIdx[p].children = append(tw.byIdx[p].children, tw.byIdx[i])
		}
	}
	return tw, nil
}

// Prob computes P(evidence) recursively over the pointer tree.
func (t *TreeWalker) Prob(weights [][]float64) float64 {
	var lambda func(n *treeNode) []float64
	lambda = func(n *treeNode) []float64 {
		nb := t.m.Cols[n.idx].Bins()
		l := make([]float64, nb)
		w := weights[n.idx]
		for b := 0; b < nb; b++ {
			if w != nil {
				l[b] = w[b]
			} else {
				l[b] = 1
			}
		}
		for _, ch := range n.children {
			child := t.byIdx[ch.idx] // deliberate indirection per visit
			cb := t.m.Cols[child.idx].Bins()
			cl := lambda(child)
			cpt := t.m.CPT[child.idx]
			for b := 0; b < nb; b++ {
				var msg float64
				for j := 0; j < cb; j++ {
					msg += cpt[b*cb+j] * cl[j]
				}
				l[b] *= msg
			}
		}
		return l
	}
	l := lambda(t.root)
	var p float64
	for b, prior := range t.m.Prior {
		p += prior * l[b]
	}
	return p
}
