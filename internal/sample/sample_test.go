package sample

import (
	"math"
	"testing"
	"testing/quick"

	"bytecard/internal/types"
)

func TestReservoirUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Offer([]types.Datum{types.Int(int64(i))})
	}
	if len(r.Rows()) != 50 || r.Seen() != 50 {
		t.Fatalf("rows=%d seen=%d, want 50/50", len(r.Rows()), r.Seen())
	}
	if r.Rate() != 1 {
		t.Errorf("rate = %g, want 1", r.Rate())
	}
}

func TestReservoirCapacityBound(t *testing.T) {
	r := NewReservoir(64, 2)
	for i := 0; i < 10000; i++ {
		r.Offer([]types.Datum{types.Int(int64(i))})
	}
	if len(r.Rows()) != 64 {
		t.Fatalf("rows=%d, want 64", len(r.Rows()))
	}
	if math.Abs(r.Rate()-64.0/10000) > 1e-12 {
		t.Errorf("rate = %g", r.Rate())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Offer 0..999 into a 100-slot reservoir many times; the mean of the
	// sampled values should approximate the population mean.
	var sum, n float64
	for seed := int64(0); seed < 30; seed++ {
		r := NewReservoir(100, seed)
		for i := 0; i < 1000; i++ {
			r.Offer([]types.Datum{types.Int(int64(i))})
		}
		for _, row := range r.Rows() {
			sum += float64(row[0].I)
			n++
		}
	}
	mean := sum / n
	if math.Abs(mean-499.5) > 25 {
		t.Errorf("sample mean %g far from population mean 499.5", mean)
	}
}

func TestReservoirCopiesRows(t *testing.T) {
	r := NewReservoir(10, 3)
	row := []types.Datum{types.Int(1)}
	r.Offer(row)
	row[0] = types.Int(999)
	if r.Rows()[0][0].I != 1 {
		t.Error("reservoir must copy offered rows")
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir(0, 1)
}

func makeFrame(n int) *Frame {
	rows := make([][]types.Datum, n)
	for i := range rows {
		rows[i] = []types.Datum{types.Int(int64(i % 10)), types.Int(int64(i))}
	}
	return NewFrame([]string{"a", "b"}, rows, int64(n)*100)
}

func TestFrameBasics(t *testing.T) {
	f := makeFrame(50)
	if f.Len() != 50 || f.PopSize() != 5000 {
		t.Fatalf("len=%d pop=%d", f.Len(), f.PopSize())
	}
	if f.ColumnIndex("a") != 0 || f.ColumnIndex("b") != 1 || f.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex broken")
	}
	if len(f.Columns()) != 2 {
		t.Error("Columns broken")
	}
	if f.Row(3)[1].I != 3 {
		t.Error("Row access broken")
	}
}

func TestFrameFilterScalesPopulation(t *testing.T) {
	f := makeFrame(100)
	g := f.Filter(func(row []types.Datum) bool { return row[0].I < 5 })
	if g.Len() != 50 {
		t.Fatalf("filtered len=%d, want 50", g.Len())
	}
	if g.PopSize() != 5000 {
		t.Errorf("filtered pop=%d, want 5000 (half of 10000)", g.PopSize())
	}
}

func TestFrameFilterEmpty(t *testing.T) {
	f := makeFrame(10)
	g := f.Filter(func([]types.Datum) bool { return false })
	if g.Len() != 0 || g.PopSize() != 0 {
		t.Errorf("empty filter: len=%d pop=%d", g.Len(), g.PopSize())
	}
}

func TestProfileOfSingleColumn(t *testing.T) {
	// Column "a" cycles 0..9 over 100 rows: 10 distinct values, each 10x.
	f := makeFrame(100)
	p := f.ProfileOf("a")
	if p.SampleNDV != 10 {
		t.Errorf("SampleNDV = %g, want 10", p.SampleNDV)
	}
	if p.Freq[9] != 10 {
		t.Errorf("Freq[9] = %g, want 10 (all values appear 10 times)", p.Freq[9])
	}
	if p.SampleRows != 100 {
		t.Errorf("SampleRows = %g", p.SampleRows)
	}
}

func TestProfileOfCompositeKey(t *testing.T) {
	f := makeFrame(100)
	p := f.ProfileOf("a", "b")
	// b is unique per row, so every composite is unique.
	if p.SampleNDV != 100 || p.Freq[0] != 100 {
		t.Errorf("composite profile: NDV=%g f1=%g, want 100/100", p.SampleNDV, p.Freq[0])
	}
}

func TestProfileUnknownColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	makeFrame(5).ProfileOf("nope")
}

func TestProfileTailBucket(t *testing.T) {
	vals := make([]types.Datum, 0, 500)
	for i := 0; i < 500; i++ {
		vals = append(vals, types.Int(7)) // one value, multiplicity 500
	}
	p := ProfileOfValues(vals, 500)
	if p.Freq[ProfileLen-1] != 1 {
		t.Errorf("tail bucket = %g, want 1", p.Freq[ProfileLen-1])
	}
}

func TestGEEUniqueColumn(t *testing.T) {
	vals := make([]types.Datum, 1000)
	for i := range vals {
		vals[i] = types.Int(int64(i))
	}
	p := ProfileOfValues(vals, 100000)
	est := p.GEE()
	// All f1: GEE = sqrt(100000/1000)*1000 = 10000*sqrt(10)/... = 10*1000.
	want := math.Sqrt(100.0) * 1000
	if math.Abs(est-want)/want > 0.01 {
		t.Errorf("GEE = %g, want %g", est, want)
	}
}

func TestGEEBoundedByPopulation(t *testing.T) {
	vals := []types.Datum{types.Int(1), types.Int(2)}
	p := ProfileOfValues(vals, 3)
	if est := p.GEE(); est > 3 {
		t.Errorf("GEE = %g exceeds population 3", est)
	}
}

func TestGEEAtLeastSampleNDV(t *testing.T) {
	vals := make([]types.Datum, 0, 100)
	for i := 0; i < 50; i++ {
		vals = append(vals, types.Int(int64(i)), types.Int(int64(i)))
	}
	p := ProfileOfValues(vals, 1000)
	if est := p.GEE(); est < 50 {
		t.Errorf("GEE = %g below sample NDV 50", est)
	}
}

func TestGEEEmpty(t *testing.T) {
	p := ProfileOfValues(nil, 0)
	if p.GEE() != 0 {
		t.Error("empty profile GEE must be 0")
	}
}

// Property: profile frequencies always sum to the sample NDV and weighted
// multiplicities recover the row count (when nothing lands in the tail).
func TestQuickProfileInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]types.Datum, len(raw))
		for i, b := range raw {
			vals[i] = types.Int(int64(b % 16))
		}
		p := ProfileOfValues(vals, int64(len(vals)))
		var ndv, rows float64
		for j, c := range p.Freq {
			ndv += c
			rows += float64(j+1) * c
		}
		if ndv != p.SampleNDV {
			return false
		}
		// Row-count identity only exact when the tail bucket is empty.
		if len(raw) < ProfileLen && rows != p.SampleRows {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
