// Package sample provides reservoir sampling, the in-memory sample
// "DataFrame" the paper's Model Loader keeps per table for RBX
// featurization, frequency profiles, and the GEE sample-based NDV
// estimator used by the traditional baseline.
package sample

import (
	"math"
	"math/rand"

	"bytecard/internal/types"
)

// Reservoir maintains a uniform random sample of up to capacity rows using
// Vitter's algorithm R. It is deterministic for a given seed and insertion
// order.
type Reservoir struct {
	capacity int
	seen     int64
	rows     [][]types.Datum
	rng      *rand.Rand
}

// NewReservoir creates a reservoir holding at most capacity rows.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic("sample: capacity must be positive")
	}
	return &Reservoir{capacity: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Offer presents one row to the reservoir. The row is copied.
func (r *Reservoir) Offer(row []types.Datum) {
	r.seen++
	cp := make([]types.Datum, len(row))
	copy(cp, row)
	if len(r.rows) < r.capacity {
		r.rows = append(r.rows, cp)
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.capacity) {
		r.rows[j] = cp
	}
}

// Rows returns the sampled rows. The slice is owned by the reservoir.
func (r *Reservoir) Rows() [][]types.Datum { return r.rows }

// Seen returns the number of rows offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Rate returns the effective sampling rate len(rows)/seen.
func (r *Reservoir) Rate() float64 {
	if r.seen == 0 {
		return 0
	}
	return float64(len(r.rows)) / float64(r.seen)
}

// Frame is the mutable two-dimensional sample table the Model Loader keeps
// per base table: column-labelled, filterable in place, and the substrate
// for sample-profile computation. It corresponds to the paper's
// "DataFrame" built by a high-performance C++ library.
type Frame struct {
	cols    []string
	colIdx  map[string]int
	rows    [][]types.Datum
	popSize int64 // size of the population the sample was drawn from
}

// NewFrame builds a frame over the given rows (not copied) with popSize
// recording the size of the underlying population.
func NewFrame(cols []string, rows [][]types.Datum, popSize int64) *Frame {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[c] = i
	}
	return &Frame{cols: cols, colIdx: idx, rows: rows, popSize: popSize}
}

// Len returns the number of sample rows.
func (f *Frame) Len() int { return len(f.rows) }

// PopSize returns the population size the sample represents.
func (f *Frame) PopSize() int64 { return f.popSize }

// Columns returns the column labels.
func (f *Frame) Columns() []string { return f.cols }

// ColumnIndex returns the index of the named column, or -1.
func (f *Frame) ColumnIndex(name string) int {
	if i, ok := f.colIdx[name]; ok {
		return i
	}
	return -1
}

// Row returns row i.
func (f *Frame) Row(i int) []types.Datum { return f.rows[i] }

// Filter returns a new frame containing only rows where keep returns true.
// The population size is scaled by the surviving fraction so downstream NDV
// scaling stays consistent.
func (f *Frame) Filter(keep func(row []types.Datum) bool) *Frame {
	var out [][]types.Datum
	for _, row := range f.rows {
		if keep(row) {
			out = append(out, row)
		}
	}
	pop := f.popSize
	if len(f.rows) > 0 {
		pop = int64(math.Round(float64(f.popSize) * float64(len(out)) / float64(len(f.rows))))
	}
	return &Frame{cols: f.cols, colIdx: f.colIdx, rows: out, popSize: pop}
}

// Profile is a frequency profile: Freq[j-1] counts the distinct (composite)
// values that appear exactly j times in the sample, with the final entry
// accumulating everything at or above the cap. It is the key feature of the
// RBX NDV estimator.
type Profile struct {
	// Freq has ProfileLen entries: exact counts for multiplicities
	// 1..ProfileLen-1 and a tail bucket.
	Freq []float64
	// SampleRows is the number of rows profiled.
	SampleRows float64
	// SampleNDV is the number of distinct values in the sample.
	SampleNDV float64
	// PopRows is the population row count the sample represents.
	PopRows float64
}

// ProfileLen is the length of the frequency-profile vector (multiplicities
// 1..99 plus a 100+ tail).
const ProfileLen = 100

// ProfileOf computes the frequency profile of the composite key formed by
// the named columns over the frame's rows.
func (f *Frame) ProfileOf(cols ...string) Profile {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		j := f.ColumnIndex(c)
		if j < 0 {
			panic("sample: unknown column " + c)
		}
		idxs[i] = j
	}
	counts := make(map[uint64]int, len(f.rows))
	for _, row := range f.rows {
		var h uint64 = 1469598103934665603
		for _, j := range idxs {
			h = h*1099511628211 ^ row[j].Hash64()
		}
		counts[h]++
	}
	return profileFromCounts(counts, len(f.rows), f.popSize)
}

func profileFromCounts(counts map[uint64]int, rows int, pop int64) Profile {
	p := Profile{
		Freq:       make([]float64, ProfileLen),
		SampleRows: float64(rows),
		SampleNDV:  float64(len(counts)),
		PopRows:    float64(pop),
	}
	for _, c := range counts {
		if c >= ProfileLen {
			p.Freq[ProfileLen-1]++
		} else {
			p.Freq[c-1]++
		}
	}
	return p
}

// ProfileOfValues computes a frequency profile directly from a value slice,
// used when training RBX on synthetic columns.
func ProfileOfValues(values []types.Datum, popRows int64) Profile {
	counts := make(map[uint64]int, len(values))
	for _, v := range values {
		counts[v.Hash64()]++
	}
	return profileFromCounts(counts, len(values), popRows)
}

// GEE returns the Guaranteed-Error Estimator of the population NDV from the
// profile: sqrt(N/n)*f1 + sum_{j>=2} fj. It is the sample-based baseline's
// NDV estimator and is known to break down under skew — the behaviour
// Table 1 documents.
func (p Profile) GEE() float64 {
	if p.SampleRows == 0 {
		return 0
	}
	scale := math.Sqrt(p.PopRows / p.SampleRows)
	est := scale * p.Freq[0]
	for j := 1; j < len(p.Freq); j++ {
		est += p.Freq[j]
	}
	if est < p.SampleNDV {
		est = p.SampleNDV
	}
	if p.PopRows > 0 && est > p.PopRows {
		est = p.PopRows
	}
	return est
}
