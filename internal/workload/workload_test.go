package workload

import (
	"strings"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/sqlparse"
)

func TestJOBHybridShape(t *testing.T) {
	ds := datagen.IMDB(datagen.Config{Scale: 0.02, Seed: 1})
	w, err := JOBHybrid(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 100 {
		t.Fatalf("queries = %d, want 100", len(w.Queries))
	}
	for _, q := range w.Queries {
		if q.NumTables < 2 || q.NumTables > 5 {
			t.Errorf("query joins %d tables, want 2-5: %s", q.NumTables, q.SQL)
		}
		if q.Kind == KindAgg && (q.NumGroupKeys < 1 || q.NumGroupKeys > 2) {
			t.Errorf("agg query has %d group keys: %s", q.NumGroupKeys, q.SQL)
		}
	}
}

func TestSTATSHybridShape(t *testing.T) {
	ds := datagen.STATS(datagen.Config{Scale: 0.02, Seed: 1})
	w, err := STATSHybrid(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 200 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	maxTables := 0
	for _, q := range w.Queries {
		if q.NumTables > maxTables {
			maxTables = q.NumTables
		}
	}
	if maxTables < 5 {
		t.Errorf("max joined tables = %d, expected deep joins (up to 8)", maxTables)
	}
}

func TestAEOLUSOnlineShape(t *testing.T) {
	ds := datagen.AEOLUS(datagen.Config{Scale: 0.01, Seed: 1})
	w, err := AEOLUSOnline(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	aggCount := 0
	for _, q := range w.Queries {
		if q.Kind == KindAgg {
			aggCount++
			if q.NumGroupKeys < 2 || q.NumGroupKeys > 4 {
				t.Errorf("AEOLUS agg group keys = %d, want 2-4", q.NumGroupKeys)
			}
		}
	}
	if aggCount < 50 {
		t.Errorf("aggregation queries = %d, want aggregation-heavy workload", aggCount)
	}
}

// TestAllQueriesExecute is the critical validity test: every generated
// query must parse, analyze, and execute on its dataset.
func TestAllQueriesExecute(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 5})
	w, err := Generate(ds, GenConfig{
		Name: "toy", NumQueries: 40, MinTables: 1, MaxTables: 2,
		AggFraction: 0.5, MinGroupKeys: 1, MaxGroupKeys: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	for _, q := range w.Queries {
		if _, err := sqlparse.Parse(q.SQL); err != nil {
			t.Fatalf("unparseable: %s: %v", q.SQL, err)
		}
		if _, err := exec.Run(q.SQL); err != nil {
			t.Fatalf("unexecutable: %s: %v", q.SQL, err)
		}
	}
}

func TestHybridQueriesExecuteOnIMDB(t *testing.T) {
	ds := datagen.IMDB(datagen.Config{Scale: 0.01, Seed: 2})
	w, err := JOBHybrid(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	for _, q := range w.Queries[:25] {
		if _, err := exec.Run(q.SQL); err != nil {
			t.Fatalf("query failed: %s: %v", q.SQL, err)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 6})
	a, _ := Generate(ds, GenConfig{Name: "x", NumQueries: 10, MinTables: 1, MaxTables: 2, AggFraction: 0.5, MaxGroupKeys: 1, Seed: 9})
	b, _ := Generate(ds, GenConfig{Name: "x", NumQueries: 10, MinTables: 1, MaxTables: 2, AggFraction: 0.5, MaxGroupKeys: 1, Seed: 9})
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestCountProbes(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 7})
	w, err := CountProbes(ds, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 30 {
		t.Fatalf("probes = %d", len(w.Queries))
	}
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	var joins int
	for _, q := range w.Queries {
		if !strings.HasPrefix(q.SQL, "SELECT COUNT(*)") {
			t.Errorf("probe is not a COUNT: %s", q.SQL)
		}
		if q.NumTables > 1 {
			joins++
		}
		if _, err := exec.Run(q.SQL); err != nil {
			t.Fatalf("probe failed: %s: %v", q.SQL, err)
		}
	}
	if joins == 0 {
		t.Error("expected some join probes")
	}
}

func TestNDVProbes(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 8})
	w, err := NDVProbes(ds, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	for _, q := range w.Queries {
		if !strings.Contains(q.SQL, "COUNT(DISTINCT") {
			t.Errorf("probe is not COUNT DISTINCT: %s", q.SQL)
		}
		res, err := exec.Run(q.SQL)
		if err != nil {
			t.Fatalf("probe failed: %s: %v", q.SQL, err)
		}
		if _, err := res.ScalarInt(); err != nil {
			t.Errorf("probe result not scalar: %s", q.SQL)
		}
	}
}

func TestComputeStats(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 9})
	w, err := Generate(ds, GenConfig{
		Name: "toy", NumQueries: 20, MinTables: 2, MaxTables: 2,
		AggFraction: 0.5, MinGroupKeys: 1, MaxGroupKeys: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	exec := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	s, err := ComputeStats(w, exec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 20 || s.MinTables != 2 || s.MaxTables != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.JoinTemplates < 1 {
		t.Error("join templates missing")
	}
	if s.MaxCard < s.MinCard {
		t.Errorf("card range inverted: [%g, %g]", s.MinCard, s.MaxCard)
	}
	if s.HitMaxTables == 0 {
		t.Error("HitMaxTables must count queries at the maximum")
	}
}

func TestCountForm(t *testing.T) {
	in := "SELECT d.cat, COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id GROUP BY d.cat"
	want := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id"
	if got := CountForm(in); got != want {
		t.Errorf("CountForm = %q", got)
	}
	plain := "SELECT COUNT(*) FROM t WHERE a = 1"
	if CountForm(plain) != plain {
		t.Error("count queries must pass through")
	}
}

func TestByName(t *testing.T) {
	for _, mk := range []func(datagen.Config) *datagen.Dataset{datagen.Toy} {
		ds := mk(datagen.Config{Scale: 1, Seed: 10})
		w, err := ByName(ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Queries) == 0 {
			t.Error("empty workload")
		}
	}
}

// TestGeneratedSQLRoundtripsParser: every generated query must re-parse to
// an identical rendering (parser/printer consistency on realistic SQL).
func TestGeneratedSQLRoundtripsParser(t *testing.T) {
	ds := datagen.STATS(datagen.Config{Scale: 0.02, Seed: 11})
	w, err := STATSHybrid(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		stmt, err := sqlparse.Parse(q.SQL)
		if err != nil {
			t.Fatalf("parse %q: %v", q.SQL, err)
		}
		again, err := sqlparse.Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if stmt.String() != again.String() {
			t.Fatalf("unstable rendering:\n  %s\n  %s", stmt, again)
		}
	}
}

func TestFocusTableBias(t *testing.T) {
	ds := datagen.STATS(datagen.Config{Scale: 0.02, Seed: 12})
	w, err := Generate(ds, GenConfig{
		Name: "x", NumQueries: 60, MinTables: 2, MaxTables: 4,
		AggFraction: 0, MaxPreds: 4, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A healthy fraction of multi-predicate queries must put >= 2
	// predicates on one table (the pattern driving reader decisions).
	multi, focused := 0, 0
	for _, q := range w.Queries {
		if q.NumPreds < 2 {
			continue
		}
		multi++
		stmt := sqlparse.MustParse(q.SQL)
		perTable := map[string]int{}
		var count func(c *sqlparse.Cond)
		count = func(c *sqlparse.Cond) {
			if c == nil {
				return
			}
			if c.Kind == sqlparse.CondCmp {
				if !c.IsJoin() {
					perTable[c.Left.Qualifier]++
				}
				return
			}
			for _, ch := range c.Children {
				count(ch)
			}
		}
		count(stmt.Where)
		for _, n := range perTable {
			if n >= 2 {
				focused++
				break
			}
		}
	}
	if multi == 0 || focused*2 < multi {
		t.Errorf("focused %d of %d multi-pred queries; bias ineffective", focused, multi)
	}
}
