// Package workload generates the evaluation workloads: JOB-Hybrid over the
// IMDB-like dataset, STATS-Hybrid over the STATS-like dataset, and
// AEOLUS-Online over the business dataset — each a seeded mix of
// multi-join COUNT queries and aggregation queries whose published
// statistics (query counts, joined-table ranges, group-by key ranges) match
// the paper's Table 5 — plus the single-table COUNT and COUNT-DISTINCT
// probe workloads behind the Table 1/2 Q-error reports.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"bytecard/internal/catalog"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// Kind classifies generated queries.
type Kind int

// Query kinds.
const (
	// KindCount is a COUNT(*) select–project–join query.
	KindCount Kind = iota
	// KindAgg is a GROUP BY aggregation query.
	KindAgg
	// KindNDV is a COUNT(DISTINCT …) probe.
	KindNDV
)

// Query is one generated query.
type Query struct {
	SQL  string
	Kind Kind
	// NumTables counts joined tables; NumGroupKeys counts GROUP BY keys.
	NumTables    int
	NumGroupKeys int
	NumPreds     int
	// Template canonically identifies the table/join combination.
	Template string
}

// Workload is a named query set over one dataset.
type Workload struct {
	Name    string
	Dataset string
	Queries []Query
}

// GenConfig controls generation.
type GenConfig struct {
	Name         string
	NumQueries   int
	MinTables    int
	MaxTables    int
	AggFraction  float64
	MinGroupKeys int
	MaxGroupKeys int
	// MaxPreds bounds filter predicates per query (default 4).
	MaxPreds int
	Seed     int64
}

// joinEdge is one usable join relationship.
type joinEdge struct {
	a, b   string // table names
	ca, cb string
}

// columnProfile caches quick per-column statistics for generation choices.
type columnProfile struct {
	name string
	kind types.Kind
	ndv  int
}

type generator struct {
	ds    *datagen.Dataset
	rng   *rand.Rand
	edges []joinEdge
	adj   map[string][]joinEdge
	// predCols / groupCols list usable columns per table.
	predCols  map[string][]columnProfile
	groupCols map[string][]columnProfile
	aggCols   map[string][]columnProfile
}

func newGenerator(ds *datagen.Dataset, seed int64) (*generator, error) {
	g := &generator{
		ds:        ds,
		rng:       rand.New(rand.NewSource(seed)),
		adj:       map[string][]joinEdge{},
		predCols:  map[string][]columnProfile{},
		groupCols: map[string][]columnProfile{},
		aggCols:   map[string][]columnProfile{},
	}
	joinCols := map[catalog.ColumnRef]bool{}
	for _, p := range ds.Schema.JoinPatterns() {
		e := joinEdge{a: p.Left.Table, ca: p.Left.Column, b: p.Right.Table, cb: p.Right.Column}
		g.edges = append(g.edges, e)
		g.adj[e.a] = append(g.adj[e.a], e)
		g.adj[e.b] = append(g.adj[e.b], e)
		joinCols[p.Left] = true
		joinCols[p.Right] = true
	}
	for _, name := range ds.DB.TableNames() {
		t := ds.DB.Table(name)
		for i := 0; i < t.NumCols(); i++ {
			col := t.Col(i)
			if !col.Kind().Scalar() {
				continue
			}
			if joinCols[catalog.ColumnRef{Table: name, Column: col.Name()}] || col.Name() == "id" {
				continue // keys make degenerate filters and group keys
			}
			prof := columnProfile{name: col.Name(), kind: col.Kind(), ndv: quickNDV(t, col.Name(), 400)}
			g.predCols[name] = append(g.predCols[name], prof)
			if prof.ndv >= 2 {
				g.groupCols[name] = append(g.groupCols[name], prof)
			}
			if col.Kind() != types.KindString {
				g.aggCols[name] = append(g.aggCols[name], prof)
			}
		}
	}
	if len(g.predCols) == 0 {
		return nil, fmt.Errorf("workload: dataset %s has no usable predicate columns", ds.Name)
	}
	return g, nil
}

// quickNDV estimates a column's distinct count from a row prefix sample.
func quickNDV(t *storage.Table, col string, probe int) int {
	c := t.ColByName(col)
	n := t.NumRows()
	step := 1
	if n > probe {
		step = n / probe
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i += step {
		seen[c.Value(i).Hash64()] = true
	}
	return len(seen)
}

// randomSubtree grows a connected table set of the target size.
func (g *generator) randomSubtree(size int) ([]string, []joinEdge, bool) {
	tables := g.ds.DB.TableNames()
	start := tables[g.rng.Intn(len(tables))]
	inSet := map[string]bool{start: true}
	order := []string{start}
	var conds []joinEdge
	for len(order) < size {
		// Candidate edges extending the set by exactly one table.
		var candidates []joinEdge
		for t := range inSet {
			for _, e := range g.adj[t] {
				other := e.b
				if e.b == t {
					other = e.a
				}
				if !inSet[other] {
					candidates = append(candidates, e)
				}
			}
		}
		if len(candidates) == 0 {
			return nil, nil, false
		}
		e := candidates[g.rng.Intn(len(candidates))]
		other := e.b
		if inSet[e.b] {
			other = e.a
		}
		inSet[other] = true
		order = append(order, other)
		conds = append(conds, e)
	}
	return order, conds, true
}

// randomPred draws one predicate on a table with a literal sampled from
// live rows (so probes land in populated regions). Time-like columns are
// favoured, mirroring analytical workloads' date-range filters (and giving
// the clustered multi-stage reader blocks to skip).
func (g *generator) randomPred(table string) (string, bool) {
	cols := g.predCols[table]
	if len(cols) == 0 {
		return "", false
	}
	prof := cols[g.rng.Intn(len(cols))]
	if g.rng.Float64() < 0.4 {
		for _, c := range cols {
			if strings.Contains(c.name, "year") || strings.Contains(c.name, "date") {
				prof = c
				break
			}
		}
	}
	t := g.ds.DB.Table(table)
	val := t.ColByName(prof.name).Value(g.rng.Intn(t.NumRows()))
	var op string
	switch {
	case prof.kind == types.KindString:
		op = "="
	case prof.ndv <= 20:
		op = []string{"=", "=", "<=", ">="}[g.rng.Intn(4)]
	default:
		op = []string{"<", "<=", ">", ">=", "="}[g.rng.Intn(5)]
	}
	return fmt.Sprintf("%s.%s %s %s", table, prof.name, op, val), true
}

func template(tables []string, conds []joinEdge) string {
	ts := append([]string(nil), tables...)
	sort.Strings(ts)
	cs := make([]string, len(conds))
	for i, e := range conds {
		l, r := e.a+"."+e.ca, e.b+"."+e.cb
		if r < l {
			l, r = r, l
		}
		cs[i] = l + "=" + r
	}
	sort.Strings(cs)
	return strings.Join(ts, ",") + "|" + strings.Join(cs, "&")
}

// Generate builds a workload from the dataset's join graph.
func Generate(ds *datagen.Dataset, cfg GenConfig) (Workload, error) {
	g, err := newGenerator(ds, cfg.Seed)
	if err != nil {
		return Workload{}, err
	}
	if cfg.MaxPreds <= 0 {
		cfg.MaxPreds = 4
	}
	if cfg.MinTables < 1 {
		cfg.MinTables = 1
	}
	w := Workload{Name: cfg.Name, Dataset: ds.Name}
	for len(w.Queries) < cfg.NumQueries {
		size := cfg.MinTables + g.rng.Intn(cfg.MaxTables-cfg.MinTables+1)
		tables, conds, ok := g.randomSubtree(size)
		if !ok {
			continue
		}
		var where []string
		for _, e := range conds {
			where = append(where, fmt.Sprintf("%s.%s = %s.%s", e.a, e.ca, e.b, e.cb))
		}
		nPreds := 1 + g.rng.Intn(cfg.MaxPreds)
		added := 0
		// Focus-table bias: multi-predicate filters concentrate on one
		// table (the analytics pattern the multi-stage reader and the
		// BN's cross-column modelling exist for).
		focus := tables[g.rng.Intn(len(tables))]
		for i := 0; i < nPreds*2 && added < nPreds; i++ {
			table := focus
			if added >= 2 {
				table = tables[g.rng.Intn(len(tables))]
			}
			if p, ok := g.randomPred(table); ok {
				where = append(where, p)
				added++
			}
		}
		q := Query{
			NumTables: len(tables),
			NumPreds:  added,
			Template:  template(tables, conds),
		}
		if g.rng.Float64() < cfg.AggFraction {
			keys := g.pickGroupKeys(tables, cfg.MinGroupKeys, cfg.MaxGroupKeys)
			if len(keys) == 0 {
				continue
			}
			sel := append([]string(nil), keys...)
			sel = append(sel, "COUNT(*)")
			if agg, ok := g.randomAgg(tables); ok {
				sel = append(sel, agg)
			}
			q.Kind = KindAgg
			q.NumGroupKeys = len(keys)
			q.SQL = fmt.Sprintf("SELECT %s FROM %s WHERE %s GROUP BY %s",
				strings.Join(sel, ", "), strings.Join(tables, ", "),
				strings.Join(where, " AND "), strings.Join(keys, ", "))
		} else {
			q.Kind = KindCount
			q.SQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s",
				strings.Join(tables, ", "), strings.Join(where, " AND "))
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

func (g *generator) pickGroupKeys(tables []string, minKeys, maxKeys int) []string {
	if minKeys < 1 {
		minKeys = 1
	}
	if maxKeys < minKeys {
		maxKeys = minKeys
	}
	want := minKeys + g.rng.Intn(maxKeys-minKeys+1)
	var pool []string
	for _, t := range tables {
		for _, c := range g.groupCols[t] {
			pool = append(pool, t+"."+c.name)
		}
	}
	g.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if want > len(pool) {
		want = len(pool)
	}
	keys := append([]string(nil), pool[:want]...)
	sort.Strings(keys)
	return keys
}

func (g *generator) randomAgg(tables []string) (string, bool) {
	var pool []string
	for _, t := range tables {
		for _, c := range g.aggCols[t] {
			pool = append(pool, t+"."+c.name)
		}
	}
	if len(pool) == 0 {
		return "", false
	}
	col := pool[g.rng.Intn(len(pool))]
	fn := []string{"AVG", "SUM", "MIN", "MAX"}[g.rng.Intn(4)]
	return fn + "(" + col + ")", true
}

// JOBHybrid generates the JOB-Hybrid workload (Table 5: 100 queries, 2–5
// joined tables, 1–2 group-by keys).
func JOBHybrid(ds *datagen.Dataset, seed int64) (Workload, error) {
	return Generate(ds, GenConfig{
		Name: "JOB-Hybrid", NumQueries: 100,
		MinTables: 2, MaxTables: 5,
		AggFraction: 0.3, MinGroupKeys: 1, MaxGroupKeys: 2,
		Seed: seed,
	})
}

// STATSHybrid generates the STATS-Hybrid workload (Table 5: 200 queries,
// 2–8 joined tables, 1–2 group-by keys).
func STATSHybrid(ds *datagen.Dataset, seed int64) (Workload, error) {
	return Generate(ds, GenConfig{
		Name: "STATS-Hybrid", NumQueries: 200,
		MinTables: 2, MaxTables: 8,
		AggFraction: 0.3, MinGroupKeys: 1, MaxGroupKeys: 2,
		Seed: seed,
	})
}

// AEOLUSOnline generates the AEOLUS-Online workload (Table 5: 200 queries,
// 2–5 joined tables, 2–4 group-by keys, aggregation heavy).
func AEOLUSOnline(ds *datagen.Dataset, seed int64) (Workload, error) {
	return Generate(ds, GenConfig{
		Name: "AEOLUS-Online", NumQueries: 200,
		MinTables: 2, MaxTables: 5,
		AggFraction: 0.5, MinGroupKeys: 2, MaxGroupKeys: 4,
		Seed: seed,
	})
}

// TimeSeriesProbes generates the IoT-monitoring workload over the
// timeseries dataset: narrow time-range scans over the append-ordered
// readings fact (where zone maps skip nearly every block), tag-equality
// probes against the high-NDV host/sensor columns, and COUNT-DISTINCT
// probes over those tags — the tag-cardinality estimates dashboards ask
// for ("how many hosts reported metric 3 in this window?").
func TimeSeriesProbes(ds *datagen.Dataset, n int, seed int64) (Workload, error) {
	g, err := newGenerator(ds, seed^0x75)
	if err != nil {
		return Workload{}, err
	}
	readings := ds.DB.Table("readings")
	if readings == nil {
		return Workload{}, fmt.Errorf("workload: dataset %s has no readings table", ds.Name)
	}
	tsCol := readings.ColByName("ts")
	nRows := readings.NumRows()
	// Narrow time windows land in populated regions: both endpoints come
	// from live rows close together in ingestion order.
	window := func() (int64, int64) {
		at := g.rng.Intn(nRows)
		span := 1 + g.rng.Intn(nRows/50+1)
		end := at + span
		if end >= nRows {
			end = nRows - 1
		}
		return tsCol.Value(at).I, tsCol.Value(end).I
	}
	w := Workload{Name: "TimeSeries-Probes", Dataset: ds.Name}
	for len(w.Queries) < n {
		lo, hi := window()
		where := []string{
			fmt.Sprintf("readings.ts >= %d", lo),
			fmt.Sprintf("readings.ts <= %d", hi),
		}
		nPreds := 2
		if g.rng.Intn(2) == 0 {
			where = append(where, fmt.Sprintf("readings.metric = %d", g.rng.Intn(6)+1))
			nPreds++
		}
		q := Query{NumTables: 1, Template: "readings"}
		switch g.rng.Intn(4) {
		case 0: // tag-cardinality NDV probe in a window
			tag := []string{"host", "sensor", "device_id"}[g.rng.Intn(3)]
			q.Kind = KindNDV
			q.NumGroupKeys = 1
			q.SQL = fmt.Sprintf("SELECT COUNT(DISTINCT readings.%s) FROM readings WHERE %s",
				tag, strings.Join(where, " AND "))
		case 1: // tag-equality probe: point lookup on a high-NDV tag
			host := readings.ColByName("host").Value(g.rng.Intn(nRows)).S
			where = append(where, fmt.Sprintf("readings.host = '%s'", host))
			nPreds++
			q.Kind = KindCount
			q.SQL = fmt.Sprintf("SELECT COUNT(*) FROM readings WHERE %s", strings.Join(where, " AND "))
		default: // windowed COUNT — the pure zone-map-skipping shape
			q.Kind = KindCount
			q.SQL = fmt.Sprintf("SELECT COUNT(*) FROM readings WHERE %s", strings.Join(where, " AND "))
		}
		q.NumPreds = nPreds
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// ByName dispatches the hybrid workload matching a dataset name.
func ByName(ds *datagen.Dataset, seed int64) (Workload, error) {
	switch ds.Name {
	case "imdb":
		return JOBHybrid(ds, seed)
	case "stats":
		return STATSHybrid(ds, seed)
	case "aeolus":
		return AEOLUSOnline(ds, seed)
	case "timeseries":
		return TimeSeriesProbes(ds, 100, seed)
	default:
		return Generate(ds, GenConfig{
			Name: ds.Name, NumQueries: 50, MinTables: 1, MaxTables: 2,
			AggFraction: 0.3, MinGroupKeys: 1, MaxGroupKeys: 2, Seed: seed,
		})
	}
}

// CountProbes generates the COUNT estimation probes behind the Table 1/2
// Q-error reports: a mix of single-table conjunctions and joins.
func CountProbes(ds *datagen.Dataset, n int, seed int64) (Workload, error) {
	g, err := newGenerator(ds, seed^0xC0)
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: ds.Name + "-count-probes", Dataset: ds.Name}
	for len(w.Queries) < n {
		var tables []string
		var conds []joinEdge
		if g.rng.Float64() < 0.5 && len(g.edges) > 0 {
			var ok bool
			tables, conds, ok = g.randomSubtree(2 + g.rng.Intn(2))
			if !ok {
				continue
			}
		} else {
			names := g.ds.DB.TableNames()
			tables = []string{names[g.rng.Intn(len(names))]}
		}
		var where []string
		for _, e := range conds {
			where = append(where, fmt.Sprintf("%s.%s = %s.%s", e.a, e.ca, e.b, e.cb))
		}
		nPreds := 1 + g.rng.Intn(3)
		added := 0
		focus := tables[g.rng.Intn(len(tables))]
		for i := 0; i < nPreds*2 && added < nPreds; i++ {
			table := focus
			if added >= 2 {
				table = tables[g.rng.Intn(len(tables))]
			}
			if p, ok := g.randomPred(table); ok {
				where = append(where, p)
				added++
			}
		}
		if added == 0 {
			continue
		}
		w.Queries = append(w.Queries, Query{
			SQL: fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s",
				strings.Join(tables, ", "), strings.Join(where, " AND ")),
			Kind:      KindCount,
			NumTables: len(tables),
			NumPreds:  added,
			Template:  template(tables, conds),
		})
	}
	return w, nil
}

// NDVProbes generates single-table COUNT DISTINCT probes (the NDV rows of
// Tables 1/2): distinct counts over 1–2 columns under a filter.
func NDVProbes(ds *datagen.Dataset, n int, seed int64) (Workload, error) {
	g, err := newGenerator(ds, seed^0xD7)
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: ds.Name + "-ndv-probes", Dataset: ds.Name}
	names := ds.DB.TableNames()
	for len(w.Queries) < n {
		table := names[g.rng.Intn(len(names))]
		cols := g.groupCols[table]
		if len(cols) == 0 {
			continue
		}
		k := 1
		if len(cols) > 1 && g.rng.Intn(2) == 0 {
			k = 2
		}
		g.rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		var distinct []string
		for _, c := range cols[:k] {
			distinct = append(distinct, table+"."+c.name)
		}
		sql := fmt.Sprintf("SELECT COUNT(DISTINCT %s) FROM %s", strings.Join(distinct, ", "), table)
		if p, ok := g.randomPred(table); ok && g.rng.Intn(3) > 0 {
			sql += " WHERE " + p
		}
		w.Queries = append(w.Queries, Query{
			SQL: sql, Kind: KindNDV, NumTables: 1, NumGroupKeys: k, Template: table,
		})
	}
	return w, nil
}

// Stats are the Table 5 statistics of a workload.
type Stats struct {
	Queries         int
	JoinTemplates   int
	MinTables       int
	MaxTables       int
	MinGroupKeys    int
	MaxGroupKeys    int
	HitMaxTables    int
	HitMaxGroupKeys int
	// MinCard/MaxCard bound the true cardinalities (filled only when
	// computed with truth).
	MinCard, MaxCard float64
}

// ComputeStats derives the workload's Table 5 row. When exec is non-nil,
// each query's true cardinality (COUNT(*) form) is computed by execution.
func ComputeStats(w Workload, exec *engine.Engine) (Stats, error) {
	s := Stats{Queries: len(w.Queries), MinTables: 1 << 30, MinGroupKeys: 1 << 30}
	templates := map[string]bool{}
	for _, q := range w.Queries {
		if q.NumTables > 1 {
			templates[q.Template] = true
		}
		if q.NumTables < s.MinTables {
			s.MinTables = q.NumTables
		}
		if q.NumTables > s.MaxTables {
			s.MaxTables = q.NumTables
		}
		if q.Kind == KindAgg || q.Kind == KindNDV {
			if q.NumGroupKeys < s.MinGroupKeys {
				s.MinGroupKeys = q.NumGroupKeys
			}
			if q.NumGroupKeys > s.MaxGroupKeys {
				s.MaxGroupKeys = q.NumGroupKeys
			}
		}
	}
	for _, q := range w.Queries {
		if q.NumTables == s.MaxTables {
			s.HitMaxTables++
		}
		if (q.Kind == KindAgg || q.Kind == KindNDV) && q.NumGroupKeys == s.MaxGroupKeys {
			s.HitMaxGroupKeys++
		}
	}
	s.JoinTemplates = len(templates)
	if s.MinGroupKeys == 1<<30 {
		s.MinGroupKeys = 0
	}
	if exec != nil {
		s.MinCard = 1e308
		for _, q := range w.Queries {
			truth, err := exec.TrueCardinality(CountForm(q.SQL))
			if err != nil {
				return s, fmt.Errorf("workload: truth for %q: %w", q.SQL, err)
			}
			if truth < s.MinCard {
				s.MinCard = truth
			}
			if truth > s.MaxCard {
				s.MaxCard = truth
			}
		}
	}
	return s, nil
}

// CountForm rewrites a query into its COUNT(*) cardinality form: the same
// FROM/WHERE with the select list and grouping dropped.
func CountForm(sql string) string {
	upper := strings.ToUpper(sql)
	from := strings.Index(upper, " FROM ")
	if from < 0 {
		return sql
	}
	rest := sql[from:]
	if g := strings.Index(strings.ToUpper(rest), " GROUP BY "); g >= 0 {
		rest = rest[:g]
	}
	return "SELECT COUNT(*)" + rest
}
