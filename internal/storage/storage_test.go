package storage

import (
	"sync"
	"testing"

	"bytecard/internal/types"
)

func buildTestTable(t *testing.T, n int) *Table {
	t.Helper()
	b := NewBuilder("t", []ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "score", Kind: types.KindFloat64},
		{Name: "tag", Kind: types.KindString},
	})
	tags := []string{"zeta", "alpha", "mid"}
	for i := 0; i < n; i++ {
		b.Append([]types.Datum{
			types.Int(int64(i)),
			types.Float(float64(i) / 2),
			types.Str(tags[i%3]),
		})
	}
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	tab := buildTestTable(t, 10)
	if tab.Name() != "t" || tab.NumRows() != 10 || tab.NumCols() != 3 {
		t.Fatalf("basic metadata wrong: %s %d %d", tab.Name(), tab.NumRows(), tab.NumCols())
	}
	if tab.ColIndex("score") != 1 || tab.ColIndex("nope") != -1 {
		t.Error("ColIndex broken")
	}
	if tab.ColByName("tag") == nil || tab.ColByName("zz") != nil {
		t.Error("ColByName broken")
	}
	row := tab.Row(4)
	if row[0].I != 4 || row[1].F != 2 || row[2].S != "alpha" {
		t.Errorf("Row(4) = %v", row)
	}
	names := tab.ColumnNames()
	if len(names) != 3 || names[2] != "tag" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestDictionarySortedAfterBuild(t *testing.T) {
	tab := buildTestTable(t, 6)
	col := tab.ColByName("tag")
	// Insertion order was zeta, alpha, mid; sorted order alpha < mid < zeta.
	if col.Value(0).S != "zeta" {
		t.Fatalf("row 0 tag = %v", col.Value(0))
	}
	av, _ := col.EncodeDatum(types.Str("alpha"))
	mv, _ := col.EncodeDatum(types.Str("mid"))
	zv, _ := col.EncodeDatum(types.Str("zeta"))
	if !(av < mv && mv < zv) {
		t.Errorf("dictionary codes not sorted: alpha=%g mid=%g zeta=%g", av, mv, zv)
	}
	// Numeric image must agree with the code.
	if col.Numeric(0) != zv {
		t.Errorf("Numeric(0) = %g, want %g", col.Numeric(0), zv)
	}
}

func TestEncodeDatumMissingString(t *testing.T) {
	tab := buildTestTable(t, 3)
	col := tab.ColByName("tag")
	v, found := col.EncodeDatum(types.Str("beta")) // between alpha and mid
	if found {
		t.Error("beta must not be found")
	}
	av, _ := col.EncodeDatum(types.Str("alpha"))
	mv, _ := col.EncodeDatum(types.Str("mid"))
	if !(v > av && v < mv) {
		t.Errorf("missing-string code %g must fall between alpha %g and mid %g", v, av, mv)
	}
}

func TestBuilderKindMismatchPanics(t *testing.T) {
	b := NewBuilder("x", []ColumnSpec{{Name: "a", Kind: types.KindInt64}})
	defer func() {
		if recover() == nil {
			t.Error("appending string into int column must panic")
		}
	}()
	b.Append([]types.Datum{types.Str("oops")})
}

func TestBuilderWidthMismatchPanics(t *testing.T) {
	b := NewBuilder("x", []ColumnSpec{{Name: "a", Kind: types.KindInt64}})
	defer func() {
		if recover() == nil {
			t.Error("wrong row width must panic")
		}
	}()
	b.Append([]types.Datum{types.Int(1), types.Int(2)})
}

func TestIntAcceptedIntoFloatColumn(t *testing.T) {
	b := NewBuilder("x", []ColumnSpec{{Name: "f", Kind: types.KindFloat64}})
	b.Append([]types.Datum{types.Int(7)})
	tab := b.Build()
	if tab.Col(0).Value(0).F != 7 {
		t.Error("int must coerce into float column")
	}
}

func TestBlockAccounting(t *testing.T) {
	tab := buildTestTable(t, BlockSize*2+100) // 3 blocks
	col := tab.ColByName("id")
	if col.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", col.NumBlocks())
	}
	var io IOStats
	r := col.NewReader(&io)
	_ = r.Numeric(0)
	_ = r.Numeric(1) // same block: no extra I/O
	if io.BlocksRead() != 1 {
		t.Errorf("BlocksRead = %d, want 1", io.BlocksRead())
	}
	_ = r.Value(BlockSize) // second block
	if io.BlocksRead() != 2 {
		t.Errorf("BlocksRead = %d, want 2", io.BlocksRead())
	}
	if r.BlocksTouched() != 2 {
		t.Errorf("BlocksTouched = %d, want 2", r.BlocksTouched())
	}
	if io.BytesRead() != 2*BlockSize*8 {
		t.Errorf("BytesRead = %d, want %d", io.BytesRead(), 2*BlockSize*8)
	}
}

func TestLoadAllCountsEveryBlockOnce(t *testing.T) {
	tab := buildTestTable(t, BlockSize+1)
	col := tab.ColByName("score")
	var io IOStats
	r := col.NewReader(&io)
	r.LoadAll()
	r.LoadAll()
	if io.BlocksRead() != 2 {
		t.Errorf("BlocksRead = %d, want 2 (idempotent)", io.BlocksRead())
	}
	// Last block is partial: 1 value * 8 bytes.
	want := int64(BlockSize*8 + 8)
	if io.BytesRead() != want {
		t.Errorf("BytesRead = %d, want %d", io.BytesRead(), want)
	}
}

func TestSiblingSharesBlockCharges(t *testing.T) {
	tab := buildTestTable(t, BlockSize*3)
	col := tab.ColByName("id")
	var io IOStats
	r := col.NewReader(&io)
	_ = r.Value(0)
	sib := r.Sibling()
	_ = sib.Value(1) // same block already charged by r
	if io.BlocksRead() != 1 {
		t.Errorf("BlocksRead = %d, want 1 (sibling must not re-charge)", io.BlocksRead())
	}
	_ = sib.Value(BlockSize) // fresh block through the sibling
	_ = r.Value(BlockSize + 1)
	if io.BlocksRead() != 2 {
		t.Errorf("BlocksRead = %d, want 2", io.BlocksRead())
	}
	// An independent reader over the same column charges separately.
	r2 := col.NewReader(&io)
	_ = r2.Value(0)
	if io.BlocksRead() != 3 {
		t.Errorf("BlocksRead = %d, want 3 (independent reader has its own charges)", io.BlocksRead())
	}
}

func TestSiblingConcurrentChargesOnce(t *testing.T) {
	tab := buildTestTable(t, BlockSize*8)
	col := tab.ColByName("score")
	var io IOStats
	root := col.NewReader(&io)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r := root.Sibling()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping ranges from every worker: half LoadAll, half
			// row-range loads.
			if w%2 == 0 {
				r.LoadAll()
			} else {
				r.LoadRange(w*BlockSize/2, col.Len())
			}
		}(w)
	}
	wg.Wait()
	if got, want := io.BlocksRead(), int64(col.NumBlocks()); got != want {
		t.Errorf("BlocksRead = %d, want %d (each block charged exactly once)", got, want)
	}
}

func TestLoadRangeTouchesOverlappingBlocks(t *testing.T) {
	tab := buildTestTable(t, BlockSize*4)
	col := tab.ColByName("id")
	var io IOStats
	r := col.NewReader(&io)
	r.LoadRange(BlockSize-1, BlockSize+1) // straddles blocks 0 and 1
	if io.BlocksRead() != 2 {
		t.Errorf("BlocksRead = %d, want 2", io.BlocksRead())
	}
	r.LoadRange(0, 0) // empty range
	r.LoadRange(5, 3) // inverted range
	if io.BlocksRead() != 2 {
		t.Errorf("degenerate ranges must not charge: %d", io.BlocksRead())
	}
}

func TestNilIOStatsReader(t *testing.T) {
	tab := buildTestTable(t, 10)
	r := tab.ColByName("id").NewReader(nil)
	if r.Numeric(5) != 5 {
		t.Error("reader without accounting must still read")
	}
}

func TestIOStatsReset(t *testing.T) {
	var io IOStats
	io.AddBlock(100)
	io.Reset()
	if io.BlocksRead() != 0 || io.BytesRead() != 0 {
		t.Error("Reset must zero counters")
	}
}

func TestStringColumnWidth(t *testing.T) {
	tab := buildTestTable(t, BlockSize)
	var io IOStats
	r := tab.ColByName("tag").NewReader(&io)
	r.LoadAll()
	if io.BytesRead() != BlockSize*4 {
		t.Errorf("string column bytes = %d, want %d", io.BytesRead(), BlockSize*4)
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	db.Add(buildTestTable(t, 5))
	b := NewBuilder("u", []ColumnSpec{{Name: "a", Kind: types.KindInt64}})
	b.Append([]types.Datum{types.Int(1)})
	db.Add(b.Build())
	if db.Table("t") == nil || db.Table("u") == nil || db.Table("v") != nil {
		t.Error("Table lookup broken")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "t" || names[1] != "u" {
		t.Errorf("TableNames = %v", names)
	}
	if db.TotalRows() != 6 {
		t.Errorf("TotalRows = %d, want 6", db.TotalRows())
	}
	// Replacing keeps one entry.
	db.Add(buildTestTable(t, 7))
	if len(db.TableNames()) != 2 || db.Table("t").NumRows() != 7 {
		t.Error("replacement broken")
	}
}

func TestSizeBytes(t *testing.T) {
	tab := buildTestTable(t, 100)
	if tab.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestNumericAll(t *testing.T) {
	tab := buildTestTable(t, 8)
	vals := tab.ColByName("id").NumericAll()
	if len(vals) != 8 || vals[7] != 7 {
		t.Errorf("NumericAll = %v", vals)
	}
}

func TestBlockOf(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(BlockSize-1) != 0 || BlockOf(BlockSize) != 1 {
		t.Error("BlockOf broken")
	}
}
