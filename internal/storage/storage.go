// Package storage implements the warehouse's columnar storage layer:
// dictionary-encoded typed columns split into fixed-size blocks, block-level
// read accounting (the substrate for the paper's read-I/O experiments), and
// an in-memory database of tables.
package storage

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

// BlockSize is the number of values per column block. Readers fetch whole
// blocks, so I/O accounting happens at this granularity. (Production
// column stores use granules around 8192 values; the reproduction datasets
// are orders of magnitude smaller, so a proportionally smaller block keeps
// the block-skipping behaviour observable.)
const BlockSize = 2048

// IOStats accumulates block-read counters. It is safe for concurrent use.
type IOStats struct {
	blocksRead    atomic.Int64
	blocksSkipped atomic.Int64
	bytesRead     atomic.Int64
}

// AddBlock records one block read of the given total byte size (the
// block's value count times the column's per-value width).
func (s *IOStats) AddBlock(bytes int64) {
	s.blocksRead.Add(1)
	s.bytesRead.Add(bytes)
}

// AddSkipped records one block pruned by its zone map before any value was
// fetched — the read that never happened.
func (s *IOStats) AddSkipped() { s.blocksSkipped.Add(1) }

// BlocksRead returns the number of blocks fetched.
func (s *IOStats) BlocksRead() int64 { return s.blocksRead.Load() }

// BlocksSkipped returns the number of blocks pruned by zone maps.
func (s *IOStats) BlocksSkipped() int64 { return s.blocksSkipped.Load() }

// BytesRead returns the number of bytes fetched.
func (s *IOStats) BytesRead() int64 { return s.bytesRead.Load() }

// Reset zeroes the counters.
func (s *IOStats) Reset() {
	s.blocksRead.Store(0)
	s.blocksSkipped.Store(0)
	s.bytesRead.Store(0)
}

// ColumnSpec declares one column of a table under construction.
type ColumnSpec struct {
	Name string
	Kind types.Kind
}

// Column is one materialized column. Strings are dictionary encoded; after
// Build the dictionary is sorted so code order equals lexicographic order.
type Column struct {
	name   string
	kind   types.Kind
	ints   []int64
	floats []float64
	codes  []int32
	dict   []string
	// zoneLo/zoneHi are the per-block min/max of the numeric image,
	// computed at Build time. For strings these are dictionary codes, and
	// because the dictionary is sorted the code range is the string range.
	zoneLo []float64
	zoneHi []float64
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column's database type.
func (c *Column) Kind() types.Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.kind {
	case types.KindInt64:
		return len(c.ints)
	case types.KindFloat64:
		return len(c.floats)
	default:
		return len(c.codes)
	}
}

// valueWidth is the per-value width in bytes used for byte accounting.
func (c *Column) valueWidth() int64 {
	if c.kind == types.KindInt64 || c.kind == types.KindFloat64 {
		return 8
	}
	return 4
}

// NumBlocks returns the number of storage blocks in the column.
func (c *Column) NumBlocks() int { return (c.Len() + BlockSize - 1) / BlockSize }

// BlockOf returns the block index containing row i.
func BlockOf(i int) int { return i / BlockSize }

// Value returns the datum at row i.
func (c *Column) Value(i int) types.Datum {
	switch c.kind {
	case types.KindInt64:
		return types.Int(c.ints[i])
	case types.KindFloat64:
		return types.Float(c.floats[i])
	default:
		return types.Datum{K: c.kind, S: c.dict[c.codes[i]]}
	}
}

// Numeric returns the numeric image of row i: the value itself for numeric
// kinds and the dictionary code for strings. Because dictionaries are sorted
// at build time, code order equals string order, so histograms and bin
// boundaries built on Numeric respect the column's comparison semantics.
func (c *Column) Numeric(i int) float64 {
	switch c.kind {
	case types.KindInt64:
		return float64(c.ints[i])
	case types.KindFloat64:
		return c.floats[i]
	default:
		return float64(c.codes[i])
	}
}

// NumericAll materializes the numeric image of the whole column.
func (c *Column) NumericAll() []float64 {
	out := make([]float64, c.Len())
	for i := range out {
		out[i] = c.Numeric(i)
	}
	return out
}

// EncodeDatum converts a literal to the column's numeric image: numeric
// literals pass through; string literals map to their dictionary code, with
// non-member strings mapped to the insertion point minus 0.5 so range
// predicates remain correct. The boolean reports whether an exact member was
// found (relevant for equality predicates).
func (c *Column) EncodeDatum(d types.Datum) (float64, bool) {
	if c.kind != types.KindString {
		return d.AsFloat(), true
	}
	if d.K != types.KindString {
		return d.AsFloat(), false
	}
	i := sort.SearchStrings(c.dict, d.S)
	if i < len(c.dict) && c.dict[i] == d.S {
		return float64(i), true
	}
	return float64(i) - 0.5, false
}

// DictSize returns the dictionary length (0 for non-string columns).
func (c *Column) DictSize() int { return len(c.dict) }

// buildZones computes the per-block zone maps. Called once from Build,
// after string dictionaries are sorted and codes remapped.
func (c *Column) buildZones() {
	nb := c.NumBlocks()
	c.zoneLo = make([]float64, nb)
	c.zoneHi = make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo, hi := b*BlockSize, (b+1)*BlockSize
		if n := c.Len(); hi > n {
			hi = n
		}
		zlo, zhi := math.Inf(1), math.Inf(-1)
		switch c.kind {
		case types.KindInt64:
			for _, v := range c.ints[lo:hi] {
				f := float64(v)
				if f < zlo {
					zlo = f
				}
				if f > zhi {
					zhi = f
				}
			}
		case types.KindFloat64:
			for _, v := range c.floats[lo:hi] {
				if v < zlo {
					zlo = v
				}
				if v > zhi {
					zhi = v
				}
			}
		default:
			for _, v := range c.codes[lo:hi] {
				f := float64(v)
				if f < zlo {
					zlo = f
				}
				if f > zhi {
					zhi = f
				}
			}
		}
		c.zoneLo[b], c.zoneHi[b] = zlo, zhi
	}
}

// ZoneRange returns block b's [min, max] numeric-image range. Zone maps
// are metadata: consulting them charges nothing to any IOStats.
func (c *Column) ZoneRange(b int) (lo, hi float64) { return c.zoneLo[b], c.zoneHi[b] }

// ZoneSurvivors counts the blocks whose zone range overlaps cons — the
// exact number of blocks a pushed-down range stage on this column would
// read, computable at plan time from metadata alone.
func (c *Column) ZoneSurvivors(cons expr.Constraint) int {
	n := 0
	for b := range c.zoneLo {
		if cons.OverlapsRange(c.zoneLo[b], c.zoneHi[b]) {
			n++
		}
	}
	return n
}

// blockCharges is the cross-reader record of which blocks of one column
// have been charged to the query's IOStats. Sibling readers (one per
// worker goroutine) share one blockCharges, so a block read by several
// workers — or by a scan worker first and a later sequential operator
// after — is still charged exactly once per query. The skipped set mirrors
// it for zone-map prunes, keeping BlocksSkipped once-per-block too.
type blockCharges struct {
	charged []atomic.Bool
	skipped []atomic.Bool
}

// charge marks block b charged, reporting whether this call was the first.
func (c *blockCharges) charge(b int) bool { return !c.charged[b].Swap(true) }

// skip marks block b skipped, reporting whether this call was the first.
func (c *blockCharges) skip(b int) bool { return !c.skipped[b].Swap(true) }

// Reader provides block-accounted access to one column within one query.
// The first touch of each block registers a block read in the IOStats; a
// nil IOStats disables accounting. A single Reader is not safe for
// concurrent use — each worker owns its readers — but Sibling readers may
// be used from different goroutines concurrently: they share the charge
// state atomically, preserving the charge-each-block-once invariant.
type Reader struct {
	col *Column
	io  *IOStats
	// loaded is this reader's private fast path: once a block is known
	// charged, later touches skip the atomic.
	loaded  []bool
	charges *blockCharges
}

// NewReader creates a reader over col accounting into io (which may be nil).
func (c *Column) NewReader(io *IOStats) *Reader {
	nb := c.NumBlocks()
	return &Reader{
		col:     c,
		io:      io,
		loaded:  make([]bool, nb),
		charges: &blockCharges{charged: make([]atomic.Bool, nb), skipped: make([]atomic.Bool, nb)},
	}
}

// Sibling returns a new reader over the same column sharing this reader's
// charge state. The sibling is handed to another goroutine; each sibling is
// used single-threaded, and the shared atomic charge set guarantees every
// block is charged to the IOStats at most once across all siblings.
func (r *Reader) Sibling() *Reader {
	return &Reader{col: r.col, io: r.io, loaded: make([]bool, r.col.NumBlocks()), charges: r.charges}
}

// touch registers the block containing row i as read.
func (r *Reader) touch(i int) {
	b := BlockOf(i)
	if !r.loaded[b] {
		r.loaded[b] = true
		if r.charges.charge(b) && r.io != nil {
			n := BlockSize
			if start := b * BlockSize; start+n > r.col.Len() {
				n = r.col.Len() - start
			}
			r.io.AddBlock(int64(n) * r.col.valueWidth())
		}
	}
}

// Numeric returns the numeric image of row i, accounting the block read.
func (r *Reader) Numeric(i int) float64 {
	r.touch(i)
	return r.col.Numeric(i)
}

// Value returns the datum at row i, accounting the block read.
func (r *Reader) Value(i int) types.Datum {
	r.touch(i)
	return r.col.Value(i)
}

// LoadAll touches every block (the single-stage reader's behaviour).
func (r *Reader) LoadAll() {
	n := r.col.Len()
	for b := 0; b*BlockSize < n; b++ {
		r.touch(b * BlockSize)
	}
}

// LoadRange touches every block overlapping rows [lo, hi) — the
// single-stage behaviour restricted to one morsel.
func (r *Reader) LoadRange(lo, hi int) {
	if n := r.col.Len(); hi > n {
		hi = n
	}
	for b := BlockOf(lo); b*BlockSize < hi; b++ {
		r.touch(b * BlockSize)
	}
}

// BlocksTouched returns how many blocks this reader has loaded.
func (r *Reader) BlocksTouched() int {
	n := 0
	for _, l := range r.loaded {
		if l {
			n++
		}
	}
	return n
}

// BlocksCharged returns how many of the column's blocks have been charged
// to the IOStats across this reader and every sibling sharing its charge
// set — the per-(column, query) read count.
func (r *Reader) BlocksCharged() int {
	n := 0
	for i := range r.charges.charged {
		if r.charges.charged[i].Load() {
			n++
		}
	}
	return n
}

// BlocksSkipped returns how many blocks were zone-map pruned across this
// reader and every sibling sharing its charge set.
func (r *Reader) BlocksSkipped() int {
	n := 0
	for i := range r.charges.skipped {
		if r.charges.skipped[i].Load() {
			n++
		}
	}
	return n
}

// ZoneOverlaps reports whether block b's zone range can satisfy cons.
// Metadata only: nothing is charged.
func (r *Reader) ZoneOverlaps(b int, cons expr.Constraint) bool {
	return cons.OverlapsRange(r.col.zoneLo[b], r.col.zoneHi[b])
}

// MarkSkipped records block b as zone-map pruned, charging one skip to the
// IOStats the first time any sibling marks it. A pruned block holds no
// surviving row, so later operators never read it — the skip and read sets
// of one (column, query) pair stay disjoint.
func (r *Reader) MarkSkipped(b int) {
	if r.charges.skip(b) && r.io != nil {
		r.io.AddSkipped()
	}
}

// filterRange appends to dst the row ids in [lo, hi) whose values satisfy
// cons, reading the column storage directly in one typed pass (no Datum
// boxing). The caller guarantees [lo, hi) lies within a single block,
// which is charged before any value is examined.
func (r *Reader) filterRange(lo, hi int, cons expr.Constraint, dst []int32) []int32 {
	if lo >= hi {
		return dst
	}
	r.touch(lo)
	switch r.col.kind {
	case types.KindInt64:
		for i, v := range r.col.ints[lo:hi] {
			if cons.Contains(float64(v)) {
				dst = append(dst, int32(lo+i))
			}
		}
	case types.KindFloat64:
		for i, v := range r.col.floats[lo:hi] {
			if cons.Contains(v) {
				dst = append(dst, int32(lo+i))
			}
		}
	default:
		for i, v := range r.col.codes[lo:hi] {
			if cons.Contains(float64(v)) {
				dst = append(dst, int32(lo+i))
			}
		}
	}
	return dst
}

// filterRows filters a selection vector in place against cons, reading the
// column storage directly. The caller guarantees all rows lie within a
// single block, charged once up front.
func (r *Reader) filterRows(rows []int32, cons expr.Constraint) []int32 {
	if len(rows) == 0 {
		return rows
	}
	r.touch(int(rows[0]))
	kept := rows[:0]
	switch r.col.kind {
	case types.KindInt64:
		for _, i := range rows {
			if cons.Contains(float64(r.col.ints[i])) {
				kept = append(kept, i)
			}
		}
	case types.KindFloat64:
		for _, i := range rows {
			if cons.Contains(r.col.floats[i]) {
				kept = append(kept, i)
			}
		}
	default:
		for _, i := range rows {
			if cons.Contains(float64(r.col.codes[i])) {
				kept = append(kept, i)
			}
		}
	}
	return kept
}

// ScanOptions is the pushed-down scan contract: the engine compiles a
// conjunctive filter into per-column constraints (at most one per column,
// in staged evaluation order) and, for limit-bearing projections, the
// match count at which the scan may stop early. Projection pushdown is
// implicit — only the constrained columns are ever handed to BlockScan, so
// unreferenced columns are simply never read.
type ScanOptions struct {
	// Constraints are evaluated in order per block: the first runs as a
	// dense range stage over the whole block, the rest refine the
	// surviving selection vector.
	Constraints []expr.Constraint
	// Limit, when positive, stops the scan once that many rows matched.
	Limit int
}

// BlockScan is the blessed pushdown scan entry point: it evaluates opts
// over rows [lo, hi) of one table, appending matching row ids to dst.
// readers aligns with opts.Constraints (reader i serves constraint i's
// column). Per block, every constrained column's zone map is consulted
// first — one miss prunes the block for all constrained columns without
// charging a read — then survivors are refined stage by stage, vectorized
// per block. All decisions are block-local, so morsel-parallel callers
// scanning disjoint block-aligned ranges read and skip exactly the blocks
// the sequential scan would.
func BlockScan(readers []*Reader, opts ScanOptions, lo, hi int, dst []int32) []int32 {
	if len(readers) == 0 || len(readers) != len(opts.Constraints) {
		panic("storage: BlockScan needs one reader per constraint")
	}
	for _, cons := range opts.Constraints {
		if cons.Empty {
			return dst
		}
	}
	if n := readers[0].col.Len(); hi > n {
		hi = n
	}
	var sel []int32
	for b := BlockOf(lo); b*BlockSize < hi; b++ {
		blo, bhi := b*BlockSize, (b+1)*BlockSize
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		pruned := false
		for i := range readers {
			if !readers[i].ZoneOverlaps(b, opts.Constraints[i]) {
				pruned = true
				break
			}
		}
		if pruned {
			for _, r := range readers {
				r.MarkSkipped(b)
			}
			continue
		}
		sel = readers[0].filterRange(blo, bhi, opts.Constraints[0], sel[:0])
		for i := 1; i < len(readers) && len(sel) > 0; i++ {
			sel = readers[i].filterRows(sel, opts.Constraints[i])
		}
		dst = append(dst, sel...)
		if opts.Limit > 0 && len(dst) >= opts.Limit {
			return dst[:opts.Limit]
		}
	}
	return dst
}

// Table is an immutable columnar table.
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
	n      int
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns the i-th column.
func (t *Table) Col(i int) *Column { return t.cols[i] }

// ColByName returns the named column or nil.
func (t *Table) ColByName(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// ColIndex returns the index of the named column or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out
}

// Row materializes row i across all columns (used by tests and the naive
// reference executor; the real executors work columnar).
func (t *Table) Row(i int) []types.Datum {
	out := make([]types.Datum, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// SizeBytes approximates the table's in-memory footprint.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, c := range t.cols {
		total += int64(c.Len()) * c.valueWidth()
		for _, s := range c.dict {
			total += int64(len(s))
		}
	}
	return total
}

// Builder accumulates rows for a table.
type Builder struct {
	name    string
	specs   []ColumnSpec
	ints    [][]int64
	floats  [][]float64
	codes   [][]int32
	dicts   []map[string]int32
	dictArr [][]string
	n       int
}

// NewBuilder starts a table with the given column specs.
func NewBuilder(name string, specs []ColumnSpec) *Builder {
	b := &Builder{name: name, specs: specs}
	b.ints = make([][]int64, len(specs))
	b.floats = make([][]float64, len(specs))
	b.codes = make([][]int32, len(specs))
	b.dicts = make([]map[string]int32, len(specs))
	b.dictArr = make([][]string, len(specs))
	for i, s := range specs {
		if s.Kind != types.KindInt64 && s.Kind != types.KindFloat64 {
			b.dicts[i] = make(map[string]int32)
		}
	}
	return b
}

// Append adds one row. The datum kinds must match the specs (ints are
// accepted into float columns).
func (b *Builder) Append(row []types.Datum) {
	if len(row) != len(b.specs) {
		panic(fmt.Sprintf("storage: row width %d != %d columns", len(row), len(b.specs)))
	}
	for i, d := range row {
		switch b.specs[i].Kind {
		case types.KindInt64:
			if d.K != types.KindInt64 {
				panic(fmt.Sprintf("storage: column %s expects INT64, got %s", b.specs[i].Name, d.K))
			}
			b.ints[i] = append(b.ints[i], d.I)
		case types.KindFloat64:
			if !d.IsNumeric() {
				panic(fmt.Sprintf("storage: column %s expects FLOAT64, got %s", b.specs[i].Name, d.K))
			}
			b.floats[i] = append(b.floats[i], d.AsFloat())
		case types.KindString, types.KindArray, types.KindMap:
			if d.K != b.specs[i].Kind {
				panic(fmt.Sprintf("storage: column %s expects %s, got %s", b.specs[i].Name, b.specs[i].Kind, d.K))
			}
			code, ok := b.dicts[i][d.S]
			if !ok {
				code = int32(len(b.dictArr[i]))
				b.dicts[i][d.S] = code
				b.dictArr[i] = append(b.dictArr[i], d.S)
			}
			b.codes[i] = append(b.codes[i], code)
		default:
			panic("storage: unsupported column kind " + b.specs[i].Kind.String())
		}
	}
	b.n++
}

// Build finalizes the table: string dictionaries are sorted and codes
// remapped so code order equals lexicographic order.
func (b *Builder) Build() *Table {
	t := &Table{name: b.name, byName: make(map[string]int, len(b.specs)), n: b.n}
	for i, s := range b.specs {
		col := &Column{name: s.Name, kind: s.Kind}
		switch s.Kind {
		case types.KindInt64:
			col.ints = b.ints[i]
		case types.KindFloat64:
			col.floats = b.floats[i]
		case types.KindString, types.KindArray, types.KindMap:
			sorted := append([]string(nil), b.dictArr[i]...)
			sort.Strings(sorted)
			remap := make([]int32, len(sorted))
			newIdx := make(map[string]int32, len(sorted))
			for j, s := range sorted {
				newIdx[s] = int32(j)
			}
			for old, s := range b.dictArr[i] {
				remap[old] = newIdx[s]
			}
			codes := b.codes[i]
			for j, c := range codes {
				codes[j] = remap[c]
			}
			col.codes = codes
			col.dict = sorted
		}
		col.buildZones()
		t.byName[s.Name] = len(t.cols)
		t.cols = append(t.cols, col)
	}
	return t
}

// Database is a named collection of tables.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a table, replacing any previous table of the same name.
func (d *Database) Add(t *Table) {
	if _, ok := d.tables[t.Name()]; !ok {
		d.order = append(d.order, t.Name())
	}
	d.tables[t.Name()] = t
}

// Table returns the named table or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// TableNames returns table names in insertion order.
func (d *Database) TableNames() []string { return append([]string(nil), d.order...) }

// TotalRows sums row counts across tables.
func (d *Database) TotalRows() int64 {
	var n int64
	for _, name := range d.order {
		n += int64(d.tables[name].NumRows())
	}
	return n
}
