// Package storage implements the warehouse's columnar storage layer:
// dictionary-encoded typed columns split into fixed-size blocks, block-level
// read accounting (the substrate for the paper's read-I/O experiments), and
// an in-memory database of tables.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"bytecard/internal/types"
)

// BlockSize is the number of values per column block. Readers fetch whole
// blocks, so I/O accounting happens at this granularity. (Production
// column stores use granules around 8192 values; the reproduction datasets
// are orders of magnitude smaller, so a proportionally smaller block keeps
// the block-skipping behaviour observable.)
const BlockSize = 2048

// IOStats accumulates block-read counters. It is safe for concurrent use.
type IOStats struct {
	blocksRead atomic.Int64
	bytesRead  atomic.Int64
}

// AddBlock records one block read of width bytes per value over n values.
func (s *IOStats) AddBlock(bytes int64) {
	s.blocksRead.Add(1)
	s.bytesRead.Add(bytes)
}

// BlocksRead returns the number of blocks fetched.
func (s *IOStats) BlocksRead() int64 { return s.blocksRead.Load() }

// BytesRead returns the number of bytes fetched.
func (s *IOStats) BytesRead() int64 { return s.bytesRead.Load() }

// Reset zeroes the counters.
func (s *IOStats) Reset() {
	s.blocksRead.Store(0)
	s.bytesRead.Store(0)
}

// ColumnSpec declares one column of a table under construction.
type ColumnSpec struct {
	Name string
	Kind types.Kind
}

// Column is one materialized column. Strings are dictionary encoded; after
// Build the dictionary is sorted so code order equals lexicographic order.
type Column struct {
	name   string
	kind   types.Kind
	ints   []int64
	floats []float64
	codes  []int32
	dict   []string
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column's database type.
func (c *Column) Kind() types.Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.kind {
	case types.KindInt64:
		return len(c.ints)
	case types.KindFloat64:
		return len(c.floats)
	default:
		return len(c.codes)
	}
}

// valueWidth is the per-value width in bytes used for byte accounting.
func (c *Column) valueWidth() int64 {
	if c.kind == types.KindInt64 || c.kind == types.KindFloat64 {
		return 8
	}
	return 4
}

// NumBlocks returns the number of storage blocks in the column.
func (c *Column) NumBlocks() int { return (c.Len() + BlockSize - 1) / BlockSize }

// BlockOf returns the block index containing row i.
func BlockOf(i int) int { return i / BlockSize }

// Value returns the datum at row i.
func (c *Column) Value(i int) types.Datum {
	switch c.kind {
	case types.KindInt64:
		return types.Int(c.ints[i])
	case types.KindFloat64:
		return types.Float(c.floats[i])
	default:
		return types.Datum{K: c.kind, S: c.dict[c.codes[i]]}
	}
}

// Numeric returns the numeric image of row i: the value itself for numeric
// kinds and the dictionary code for strings. Because dictionaries are sorted
// at build time, code order equals string order, so histograms and bin
// boundaries built on Numeric respect the column's comparison semantics.
func (c *Column) Numeric(i int) float64 {
	switch c.kind {
	case types.KindInt64:
		return float64(c.ints[i])
	case types.KindFloat64:
		return c.floats[i]
	default:
		return float64(c.codes[i])
	}
}

// NumericAll materializes the numeric image of the whole column.
func (c *Column) NumericAll() []float64 {
	out := make([]float64, c.Len())
	for i := range out {
		out[i] = c.Numeric(i)
	}
	return out
}

// EncodeDatum converts a literal to the column's numeric image: numeric
// literals pass through; string literals map to their dictionary code, with
// non-member strings mapped to the insertion point minus 0.5 so range
// predicates remain correct. The boolean reports whether an exact member was
// found (relevant for equality predicates).
func (c *Column) EncodeDatum(d types.Datum) (float64, bool) {
	if c.kind != types.KindString {
		return d.AsFloat(), true
	}
	if d.K != types.KindString {
		return d.AsFloat(), false
	}
	i := sort.SearchStrings(c.dict, d.S)
	if i < len(c.dict) && c.dict[i] == d.S {
		return float64(i), true
	}
	return float64(i) - 0.5, false
}

// DictSize returns the dictionary length (0 for non-string columns).
func (c *Column) DictSize() int { return len(c.dict) }

// blockCharges is the cross-reader record of which blocks of one column
// have been charged to the query's IOStats. Sibling readers (one per
// worker goroutine) share one blockCharges, so a block read by several
// workers — or by a scan worker first and a later sequential operator
// after — is still charged exactly once per query.
type blockCharges struct {
	charged []atomic.Bool
}

// charge marks block b charged, reporting whether this call was the first.
func (c *blockCharges) charge(b int) bool { return !c.charged[b].Swap(true) }

// Reader provides block-accounted access to one column within one query.
// The first touch of each block registers a block read in the IOStats; a
// nil IOStats disables accounting. A single Reader is not safe for
// concurrent use — each worker owns its readers — but Sibling readers may
// be used from different goroutines concurrently: they share the charge
// state atomically, preserving the charge-each-block-once invariant.
type Reader struct {
	col *Column
	io  *IOStats
	// loaded is this reader's private fast path: once a block is known
	// charged, later touches skip the atomic.
	loaded  []bool
	charges *blockCharges
}

// NewReader creates a reader over col accounting into io (which may be nil).
func (c *Column) NewReader(io *IOStats) *Reader {
	return &Reader{
		col:     c,
		io:      io,
		loaded:  make([]bool, c.NumBlocks()),
		charges: &blockCharges{charged: make([]atomic.Bool, c.NumBlocks())},
	}
}

// Sibling returns a new reader over the same column sharing this reader's
// charge state. The sibling is handed to another goroutine; each sibling is
// used single-threaded, and the shared atomic charge set guarantees every
// block is charged to the IOStats at most once across all siblings.
func (r *Reader) Sibling() *Reader {
	return &Reader{col: r.col, io: r.io, loaded: make([]bool, r.col.NumBlocks()), charges: r.charges}
}

// touch registers the block containing row i as read.
func (r *Reader) touch(i int) {
	b := BlockOf(i)
	if !r.loaded[b] {
		r.loaded[b] = true
		if r.charges.charge(b) && r.io != nil {
			n := BlockSize
			if start := b * BlockSize; start+n > r.col.Len() {
				n = r.col.Len() - start
			}
			r.io.AddBlock(int64(n) * r.col.valueWidth())
		}
	}
}

// Numeric returns the numeric image of row i, accounting the block read.
func (r *Reader) Numeric(i int) float64 {
	r.touch(i)
	return r.col.Numeric(i)
}

// Value returns the datum at row i, accounting the block read.
func (r *Reader) Value(i int) types.Datum {
	r.touch(i)
	return r.col.Value(i)
}

// LoadAll touches every block (the single-stage reader's behaviour).
func (r *Reader) LoadAll() {
	n := r.col.Len()
	for b := 0; b*BlockSize < n; b++ {
		r.touch(b * BlockSize)
	}
}

// LoadRange touches every block overlapping rows [lo, hi) — the
// single-stage behaviour restricted to one morsel.
func (r *Reader) LoadRange(lo, hi int) {
	if n := r.col.Len(); hi > n {
		hi = n
	}
	for b := BlockOf(lo); b*BlockSize < hi; b++ {
		r.touch(b * BlockSize)
	}
}

// BlocksTouched returns how many blocks this reader has loaded.
func (r *Reader) BlocksTouched() int {
	n := 0
	for _, l := range r.loaded {
		if l {
			n++
		}
	}
	return n
}

// Table is an immutable columnar table.
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
	n      int
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns the i-th column.
func (t *Table) Col(i int) *Column { return t.cols[i] }

// ColByName returns the named column or nil.
func (t *Table) ColByName(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// ColIndex returns the index of the named column or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out
}

// Row materializes row i across all columns (used by tests and the naive
// reference executor; the real executors work columnar).
func (t *Table) Row(i int) []types.Datum {
	out := make([]types.Datum, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// SizeBytes approximates the table's in-memory footprint.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, c := range t.cols {
		total += int64(c.Len()) * c.valueWidth()
		for _, s := range c.dict {
			total += int64(len(s))
		}
	}
	return total
}

// Builder accumulates rows for a table.
type Builder struct {
	name    string
	specs   []ColumnSpec
	ints    [][]int64
	floats  [][]float64
	codes   [][]int32
	dicts   []map[string]int32
	dictArr [][]string
	n       int
}

// NewBuilder starts a table with the given column specs.
func NewBuilder(name string, specs []ColumnSpec) *Builder {
	b := &Builder{name: name, specs: specs}
	b.ints = make([][]int64, len(specs))
	b.floats = make([][]float64, len(specs))
	b.codes = make([][]int32, len(specs))
	b.dicts = make([]map[string]int32, len(specs))
	b.dictArr = make([][]string, len(specs))
	for i, s := range specs {
		if s.Kind != types.KindInt64 && s.Kind != types.KindFloat64 {
			b.dicts[i] = make(map[string]int32)
		}
	}
	return b
}

// Append adds one row. The datum kinds must match the specs (ints are
// accepted into float columns).
func (b *Builder) Append(row []types.Datum) {
	if len(row) != len(b.specs) {
		panic(fmt.Sprintf("storage: row width %d != %d columns", len(row), len(b.specs)))
	}
	for i, d := range row {
		switch b.specs[i].Kind {
		case types.KindInt64:
			if d.K != types.KindInt64 {
				panic(fmt.Sprintf("storage: column %s expects INT64, got %s", b.specs[i].Name, d.K))
			}
			b.ints[i] = append(b.ints[i], d.I)
		case types.KindFloat64:
			if !d.IsNumeric() {
				panic(fmt.Sprintf("storage: column %s expects FLOAT64, got %s", b.specs[i].Name, d.K))
			}
			b.floats[i] = append(b.floats[i], d.AsFloat())
		case types.KindString, types.KindArray, types.KindMap:
			if d.K != b.specs[i].Kind {
				panic(fmt.Sprintf("storage: column %s expects %s, got %s", b.specs[i].Name, b.specs[i].Kind, d.K))
			}
			code, ok := b.dicts[i][d.S]
			if !ok {
				code = int32(len(b.dictArr[i]))
				b.dicts[i][d.S] = code
				b.dictArr[i] = append(b.dictArr[i], d.S)
			}
			b.codes[i] = append(b.codes[i], code)
		default:
			panic("storage: unsupported column kind " + b.specs[i].Kind.String())
		}
	}
	b.n++
}

// Build finalizes the table: string dictionaries are sorted and codes
// remapped so code order equals lexicographic order.
func (b *Builder) Build() *Table {
	t := &Table{name: b.name, byName: make(map[string]int, len(b.specs)), n: b.n}
	for i, s := range b.specs {
		col := &Column{name: s.Name, kind: s.Kind}
		switch s.Kind {
		case types.KindInt64:
			col.ints = b.ints[i]
		case types.KindFloat64:
			col.floats = b.floats[i]
		case types.KindString, types.KindArray, types.KindMap:
			sorted := append([]string(nil), b.dictArr[i]...)
			sort.Strings(sorted)
			remap := make([]int32, len(sorted))
			newIdx := make(map[string]int32, len(sorted))
			for j, s := range sorted {
				newIdx[s] = int32(j)
			}
			for old, s := range b.dictArr[i] {
				remap[old] = newIdx[s]
			}
			codes := b.codes[i]
			for j, c := range codes {
				codes[j] = remap[c]
			}
			col.codes = codes
			col.dict = sorted
		}
		t.byName[s.Name] = len(t.cols)
		t.cols = append(t.cols, col)
	}
	return t
}

// Database is a named collection of tables.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a table, replacing any previous table of the same name.
func (d *Database) Add(t *Table) {
	if _, ok := d.tables[t.Name()]; !ok {
		d.order = append(d.order, t.Name())
	}
	d.tables[t.Name()] = t
}

// Table returns the named table or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// TableNames returns table names in insertion order.
func (d *Database) TableNames() []string { return append([]string(nil), d.order...) }

// TotalRows sums row counts across tables.
func (d *Database) TotalRows() int64 {
	var n int64
	for _, name := range d.order {
		n += int64(d.tables[name].NumRows())
	}
	return n
}
