package histogram

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func seq(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestBuildEquiHeightEmpty(t *testing.T) {
	h := BuildEquiHeight(nil, 10)
	if !h.Empty() || h.Buckets() != 0 {
		t.Fatal("empty build must yield empty histogram")
	}
	if h.SelEq(1) != 0 || h.SelRange(0, 10, true, true) != 0 {
		t.Error("empty histogram selectivities must be zero")
	}
}

func TestBuildEquiHeightPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nBuckets=0")
		}
	}()
	BuildEquiHeight(seq(10), 0)
}

func TestEquiHeightBasicStats(t *testing.T) {
	h := BuildEquiHeight(seq(1000), 10)
	if h.Total != 1000 {
		t.Errorf("Total = %g, want 1000", h.Total)
	}
	if h.NDV != 1000 {
		t.Errorf("NDV = %g, want 1000", h.NDV)
	}
	if h.Min != 0 || h.Max != 999 {
		t.Errorf("range [%g,%g], want [0,999]", h.Min, h.Max)
	}
	if h.Buckets() != 10 {
		t.Errorf("Buckets = %d, want 10", h.Buckets())
	}
}

func TestEquiHeightBucketsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	h := BuildEquiHeight(vals, 20)
	for i, c := range h.Counts {
		if c < 400 || c > 600 {
			t.Errorf("bucket %d count %g far from equi-height target 500", i, c)
		}
	}
}

func TestEquiHeightSelRangeUniform(t *testing.T) {
	h := BuildEquiHeight(seq(10000), 50)
	got := h.SelRange(2500, 7499, true, true)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("SelRange(2500,7499) = %g, want ~0.5", got)
	}
	if s := h.SelRange(-100, -1, true, true); s != 0 {
		t.Errorf("out-of-range selectivity = %g, want 0", s)
	}
	if s := h.SelRange(0, 9999, true, true); math.Abs(s-1) > 1e-9 {
		t.Errorf("full-range selectivity = %g, want 1", s)
	}
}

func TestEquiHeightSelEq(t *testing.T) {
	// 100 distinct values, each appearing 10 times.
	vals := make([]float64, 0, 1000)
	for v := 0; v < 100; v++ {
		for j := 0; j < 10; j++ {
			vals = append(vals, float64(v))
		}
	}
	h := BuildEquiHeight(vals, 10)
	got := h.SelEq(42)
	if math.Abs(got-0.01) > 0.003 {
		t.Errorf("SelEq(42) = %g, want ~0.01", got)
	}
	if h.SelEq(-5) != 0 || h.SelEq(1e9) != 0 {
		t.Error("values outside range must have zero selectivity")
	}
}

func TestEquiHeightHeavyDuplicatesNotSplit(t *testing.T) {
	// One value dominating: runs of equal values must stay in one bucket.
	vals := make([]float64, 0, 1100)
	for i := 0; i < 1000; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(100+i))
	}
	h := BuildEquiHeight(vals, 10)
	got := h.SelEq(7)
	want := 1000.0 / 1100.0
	if math.Abs(got-want) > 0.05 {
		t.Errorf("SelEq(7) = %g, want ~%g", got, want)
	}
}

func TestEquiHeightSelLessGreaterComplement(t *testing.T) {
	h := BuildEquiHeight(seq(1000), 16)
	for _, v := range []float64{100, 500, 900} {
		lt := h.SelLess(v, false)
		ge := h.SelGreater(v, true)
		if math.Abs(lt+ge-1) > 0.02 {
			t.Errorf("SelLess(%g)+SelGreaterEq(%g) = %g, want ~1", v, v, lt+ge)
		}
	}
}

func TestEquiHeightQuantile(t *testing.T) {
	h := BuildEquiHeight(seq(10000), 100)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
		got := h.Quantile(q)
		want := q * 10000
		if math.Abs(got-want) > 150 {
			t.Errorf("Quantile(%g) = %g, want ~%g", q, got, want)
		}
	}
	if h.Quantile(0) != h.Min || h.Quantile(1) != h.Max {
		t.Error("Quantile endpoints must be Min/Max")
	}
}

func TestEquiHeightSingleValue(t *testing.T) {
	vals := []float64{5, 5, 5, 5}
	h := BuildEquiHeight(vals, 4)
	if got := h.SelEq(5); math.Abs(got-1) > 1e-9 {
		t.Errorf("SelEq(5) = %g, want 1", got)
	}
	if got := h.SelRange(4, 6, true, true); math.Abs(got-1) > 1e-9 {
		t.Errorf("SelRange(4,6) = %g, want 1", got)
	}
	if got := h.SelRange(6, 8, true, true); got != 0 {
		t.Errorf("SelRange(6,8) = %g, want 0", got)
	}
}

func TestEquiWidth(t *testing.T) {
	h := BuildEquiWidth(seq(1000), 10)
	if got := h.SelRange(0, 499); math.Abs(got-0.5) > 0.02 {
		t.Errorf("SelRange(0,499) = %g, want ~0.5", got)
	}
	if got := h.SelRange(2000, 3000); got != 0 {
		t.Errorf("out-of-range = %g, want 0", got)
	}
}

func TestEquiWidthEmpty(t *testing.T) {
	h := BuildEquiWidth(nil, 5)
	if h.SelRange(0, 1) != 0 {
		t.Error("empty equi-width must return 0")
	}
}

func TestEquiWidthPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BuildEquiWidth(seq(5), -1)
}

// Property: selectivity of any range is within [0,1] and monotone in the
// range width.
func TestQuickSelRangeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 1000
	}
	h := BuildEquiHeight(vals, 32)
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		s := h.SelRange(lo, hi, true, true)
		wider := h.SelRange(lo-1, hi+1, true, true)
		return s >= 0 && s <= 1 && wider >= s-1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: estimated range selectivity is close to the true fraction for
// random data and random ranges.
func TestQuickSelRangeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	h := BuildEquiHeight(vals, 64)
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 1e6
		hi := lo + rng.Float64()*(1e6-lo)
		est := h.SelRange(lo, hi, true, true)
		truth := float64(sort.SearchFloat64s(sorted, hi)-sort.SearchFloat64s(sorted, lo)) / float64(len(sorted))
		if math.Abs(est-truth) > 0.03 {
			t.Errorf("range [%g,%g]: est %g vs truth %g", lo, hi, est, truth)
		}
	}
}

func TestEquiHeightStringer(t *testing.T) {
	h := BuildEquiHeight(seq(100), 4)
	if h.String() == "" {
		t.Error("String() must be non-empty")
	}
}
