// Package histogram implements the equi-height and equi-width histograms
// that back the warehouse's traditional sketch-based cardinality estimator
// and FactorJoin's join-bucket construction.
package histogram

import (
	"fmt"
	"math"
	"sort"
)

// EquiHeight is an equi-height (equi-depth) histogram over float64 values.
// Each bucket holds roughly the same number of rows; bucket boundaries are
// value quantiles. Buckets additionally track per-bucket distinct counts so
// equality selectivity can assume uniformity within a bucket.
type EquiHeight struct {
	// Bounds has len(Counts)+1 entries; bucket i covers
	// [Bounds[i], Bounds[i+1]) except the last, which is closed.
	Bounds []float64
	// Counts is the number of rows per bucket.
	Counts []float64
	// Distinct is the number of distinct values per bucket.
	Distinct []float64
	// Total is the number of rows summarized.
	Total float64
	// NDV is the total number of distinct values.
	NDV float64
	// Min and Max are the extreme values seen.
	Min, Max float64
}

// BuildEquiHeight constructs an equi-height histogram with up to nBuckets
// buckets from values. Values need not be sorted; the input slice is not
// modified. Building from an empty slice returns an empty histogram whose
// selectivities are all zero.
func BuildEquiHeight(values []float64, nBuckets int) *EquiHeight {
	if nBuckets <= 0 {
		panic("histogram: nBuckets must be positive")
	}
	h := &EquiHeight{}
	if len(values) == 0 {
		return h
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	h.Total = float64(len(sorted))
	h.Min = sorted[0]
	h.Max = sorted[len(sorted)-1]

	// Count global NDV in the same pass as bucket assembly.
	per := len(sorted) / nBuckets
	if per == 0 {
		per = 1
	}
	start := 0
	for start < len(sorted) {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		// Never split a run of equal values across buckets: extend the
		// bucket to cover the full run so Bounds stay strictly increasing.
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		cnt := float64(end - start)
		ndv := 1.0
		for i := start + 1; i < end; i++ {
			if sorted[i] != sorted[i-1] {
				ndv++
			}
		}
		if len(h.Bounds) == 0 {
			h.Bounds = append(h.Bounds, sorted[start])
		}
		h.Bounds = append(h.Bounds, sorted[end-1])
		h.Counts = append(h.Counts, cnt)
		h.Distinct = append(h.Distinct, ndv)
		h.NDV += ndv
		start = end
	}
	// Upper bounds recorded above are the last value *in* the bucket, so
	// every bucket is closed on both ends; make interior bounds exclusive
	// by convention in the selectivity math below.
	return h
}

// Buckets returns the number of buckets.
func (h *EquiHeight) Buckets() int { return len(h.Counts) }

// Empty reports whether the histogram summarizes no rows.
func (h *EquiHeight) Empty() bool { return h.Total == 0 }

// bucketRange returns the inclusive value range [lo, hi] of bucket i.
func (h *EquiHeight) bucketRange(i int) (lo, hi float64) {
	return h.Bounds[i], h.Bounds[i+1]
}

// fracOfBucket returns the fraction of bucket i's rows falling in
// [lo, hi] assuming uniform spread inside the bucket.
func (h *EquiHeight) fracOfBucket(i int, lo, hi float64, loIncl, hiIncl bool) float64 {
	blo, bhi := h.bucketRange(i)
	if hi < blo || lo > bhi {
		return 0
	}
	if !hiIncl && hi == blo && bhi > blo {
		return 0
	}
	if bhi == blo { // single-valued bucket
		v := blo
		inLo := v > lo || (loIncl && v == lo)
		inHi := v < hi || (hiIncl && v == hi)
		if inLo && inHi {
			return 1
		}
		return 0
	}
	clo := math.Max(lo, blo)
	chi := math.Min(hi, bhi)
	if chi < clo {
		return 0
	}
	return (chi - clo) / (bhi - blo)
}

// SelRange estimates the fraction of rows with value in the interval
// between lo and hi; inclusivity of each endpoint is controlled by loIncl
// and hiIncl. Pass -Inf/+Inf for open endpoints.
func (h *EquiHeight) SelRange(lo, hi float64, loIncl, hiIncl bool) float64 {
	if h.Empty() || lo > hi {
		return 0
	}
	var rows float64
	for i := range h.Counts {
		rows += h.Counts[i] * h.fracOfBucket(i, lo, hi, loIncl, hiIncl)
	}
	sel := rows / h.Total
	if sel > 1 {
		sel = 1
	}
	return sel
}

// SelEq estimates the fraction of rows equal to v, assuming each distinct
// value inside a bucket is equally frequent.
func (h *EquiHeight) SelEq(v float64) float64 {
	if h.Empty() || v < h.Min || v > h.Max {
		return 0
	}
	for i := range h.Counts {
		blo, bhi := h.bucketRange(i)
		if v >= blo && (v < bhi || (v == bhi && (i == len(h.Counts)-1 || v == blo))) {
			d := h.Distinct[i]
			if d < 1 {
				d = 1
			}
			return h.Counts[i] / d / h.Total
		}
	}
	// v falls between two buckets (a gap with no observed values).
	return 0
}

// SelLess estimates P(value < v) (or <= when incl).
func (h *EquiHeight) SelLess(v float64, incl bool) float64 {
	return h.SelRange(math.Inf(-1), v, false, incl)
}

// SelGreater estimates P(value > v) (or >= when incl).
func (h *EquiHeight) SelGreater(v float64, incl bool) float64 {
	return h.SelRange(v, math.Inf(1), incl, false)
}

// Quantile returns an approximation of the q-th quantile of the summarized
// values, q in [0,1].
func (h *EquiHeight) Quantile(q float64) float64 {
	if h.Empty() {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * h.Total
	var acc float64
	for i := range h.Counts {
		if acc+h.Counts[i] >= target {
			blo, bhi := h.bucketRange(i)
			frac := (target - acc) / h.Counts[i]
			return blo + frac*(bhi-blo)
		}
		acc += h.Counts[i]
	}
	return h.Max
}

// EquiWidth is an equi-width histogram: fixed-width buckets over [Min, Max].
// It is cheaper to build than EquiHeight and is used for quick data profiling
// in the preprocessor.
type EquiWidth struct {
	Min, Max float64
	Width    float64
	Counts   []float64
	Total    float64
}

// BuildEquiWidth constructs an equi-width histogram with nBuckets buckets.
func BuildEquiWidth(values []float64, nBuckets int) *EquiWidth {
	if nBuckets <= 0 {
		panic("histogram: nBuckets must be positive")
	}
	h := &EquiWidth{Counts: make([]float64, nBuckets)}
	if len(values) == 0 {
		return h
	}
	h.Min, h.Max = values[0], values[0]
	for _, v := range values {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	h.Width = (h.Max - h.Min) / float64(nBuckets)
	if h.Width == 0 {
		h.Width = 1
	}
	for _, v := range values {
		i := int((v - h.Min) / h.Width)
		if i >= nBuckets {
			i = nBuckets - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// SelRange estimates the fraction of rows in [lo, hi].
func (h *EquiWidth) SelRange(lo, hi float64) float64 {
	if h.Total == 0 || lo > hi {
		return 0
	}
	var rows float64
	for i := range h.Counts {
		blo := h.Min + float64(i)*h.Width
		bhi := blo + h.Width
		clo := math.Max(lo, blo)
		chi := math.Min(hi, bhi)
		if chi <= clo {
			continue
		}
		rows += h.Counts[i] * (chi - clo) / h.Width
	}
	sel := rows / h.Total
	if sel > 1 {
		sel = 1
	}
	return sel
}

// String summarizes the histogram for debugging.
func (h *EquiHeight) String() string {
	return fmt.Sprintf("EquiHeight{buckets=%d rows=%.0f ndv=%.0f range=[%g,%g]}",
		h.Buckets(), h.Total, h.NDV, h.Min, h.Max)
}
