// Package modelforge implements the paper's ModelForge Service: a
// standalone training service that samples table data, runs the
// preprocessor, trains the Bayesian networks (routinely) and RBX
// (once, plus occasional fine-tuning), builds FactorJoin's buckets, writes
// everything to the model store for the Model Loader, reacts to Data
// Ingestor signals by retraining affected tables, and supports
// shard-specialized training when a table declares a shard key. Training
// never touches the query path — the paper's isolation requirement.
package modelforge

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"bytecard/internal/bn"
	"bytecard/internal/catalog"
	"bytecard/internal/core"
	"bytecard/internal/costmodel"
	"bytecard/internal/modelstore"
	"bytecard/internal/obs"
	"bytecard/internal/par"
	"bytecard/internal/preproc"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
)

// Config controls training.
type Config struct {
	// SampleRows caps the per-table training sample (default 20000).
	SampleRows int
	// MaxBins bounds BN discretization (default 32).
	MaxBins int
	// BucketCount sizes join buckets (default 200).
	BucketCount int
	// Shards is the shard count for shard-specialized training (default 4).
	Shards int
	// RetrainRows is the ingested-row threshold triggering retraining
	// (default 100000).
	RetrainRows int64
	// RBX configures base NDV training.
	RBX rbx.TrainConfig
	// Seed drives sampling determinism.
	Seed int64
	// TrainWorkers bounds the worker pool parallelizing BN structure
	// learning and the FactorJoin build. Zero resolves through
	// BYTECARD_TRAIN_WORKERS, then GOMAXPROCS. Trained artifacts are
	// byte-identical for every worker count.
	TrainWorkers int
	// Now is the clock (tests inject a fake).
	Now func() time.Time
}

func (c *Config) fill() {
	if c.SampleRows <= 0 {
		c.SampleRows = 20000
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 32
	}
	if c.BucketCount <= 0 {
		c.BucketCount = 200
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.RetrainRows <= 0 {
		c.RetrainRows = 100000
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// RBXBaseName is the store key of the workload-independent base RBX model
// (shared across datasets — one offline training serves every workload).
const RBXBaseName = "rbx/base"

// ModelReport describes one trained artifact (Table 3 / Table 6 source).
type ModelReport struct {
	Name         string
	Kind         core.ModelKind
	Table        string
	SizeBytes    int64
	TrainSeconds float64
	// StructureSeconds and ParamSeconds break a BN's TrainSeconds into its
	// stages (zero for non-BN artifacts).
	StructureSeconds float64
	ParamSeconds     float64
}

// Report summarizes one TrainAll run.
type Report struct {
	Models       []ModelReport
	TotalSeconds float64
}

// Service trains and manages models for one dataset.
type Service struct {
	mu      sync.Mutex
	dataset string
	db      *storage.Database
	schema  *catalog.Schema
	store   *modelstore.Store
	cfg     Config
	pending map[string]int64
	pre     *preproc.Result
	// Retrained counts per-table retrains triggered by ingest signals.
	retrained map[string]int
	// obs records per-stage training timings (always non-nil).
	obs *obs.TrainMetrics
}

// New creates a service bound to one dataset's database, catalog, and
// artifact store.
func New(dataset string, db *storage.Database, schema *catalog.Schema, store *modelstore.Store, cfg Config) *Service {
	cfg.fill()
	return &Service{
		dataset:   dataset,
		db:        db,
		schema:    schema,
		store:     store,
		cfg:       cfg,
		pending:   map[string]int64{},
		retrained: map[string]int{},
		obs:       obs.NewTrainMetrics(),
	}
}

// Obs exposes the service's training metrics for system-wide snapshots.
func (s *Service) Obs() *obs.TrainMetrics { return s.obs }

// workers resolves the effective training worker count.
func (s *Service) workers() int { return par.TrainWorkers(s.cfg.TrainWorkers) }

// runPreprocLocked runs the Model Preprocessor (including the FactorJoin
// bucket build) and records its stage timing.
func (s *Service) runPreprocLocked() (*preproc.Result, error) {
	pre, err := preproc.Run(s.db, s.schema, preproc.Config{
		BucketCount: s.cfg.BucketCount,
		Workers:     s.workers(),
	})
	if err != nil {
		return nil, err
	}
	if pre.Buckets != nil {
		s.obs.FactorJoinSeconds.Observe(pre.Buckets.BuildSeconds)
	}
	return pre, nil
}

// aborted reports a cancelled or expired training context as a wrapped
// error — the checkpoint every long-running stage tests between units of
// work, so a hardened server's per-request deadline (or a dropped client)
// stops training at the next table/shard boundary instead of running on.
func aborted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("modelforge: training aborted: %w", err)
	}
	return nil
}

// compatContext is the single blessed root-context mint for the
// context-free compatibility wrappers (TrainAll, TrainTable, NotifyIngest,
// FineTuneRBX). Those entry points predate context threading and are kept
// for callers that have no deadline to impose — batch CLIs and tests;
// anything serving-path routes through the ...Context variants instead.
// Funneling every wrapper through here keeps the ctxflow exemption at
// exactly one annotated line.
func compatContext() context.Context {
	return context.Background() //bytecard:ctx-ok sole compatibility-wrapper root; deadline-bearing callers use the ...Context variants
}

// TrainAll runs the full pipeline: preprocess, build join buckets, train a
// BN per table (per shard where sharded), ensure the base RBX model
// exists, and store every artifact.
func (s *Service) TrainAll() (*Report, error) {
	return s.TrainAllContext(compatContext())
}

// TrainAllContext is TrainAll honoring a deadline/cancellation: the context
// is checked between tables (and shards), so an aborted run stops promptly
// and leaves only complete, committed artifacts behind.
func (s *Service) TrainAllContext(ctx context.Context) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	rep := &Report{}
	s.obs.Runs.Add(1)

	if err := aborted(ctx); err != nil {
		return nil, err
	}
	pre, err := s.runPreprocLocked()
	if err != nil {
		return nil, err
	}
	s.pre = pre

	if pre.Buckets != nil {
		data, err := pre.Buckets.Encode()
		if err != nil {
			return nil, err
		}
		name := s.dataset + "/factorjoin"
		if err := s.store.Put(core.Artifact{
			Name: name, Kind: core.KindFactorJoin, Timestamp: s.cfg.Now(), Data: data,
		}); err != nil {
			return nil, err
		}
		rep.Models = append(rep.Models, ModelReport{
			Name: name, Kind: core.KindFactorJoin,
			SizeBytes: pre.Buckets.SizeBytes(), TrainSeconds: pre.Buckets.BuildSeconds,
		})
	}

	for _, table := range s.db.TableNames() {
		reports, err := s.trainTableLocked(ctx, table)
		if err != nil {
			return nil, err
		}
		rep.Models = append(rep.Models, reports...)
	}

	if err := aborted(ctx); err != nil {
		return nil, err
	}
	rbxReports, err := s.ensureRBXLocked()
	if err != nil {
		return nil, err
	}
	rep.Models = append(rep.Models, rbxReports...)
	rep.TotalSeconds = time.Since(start).Seconds()
	return rep, nil
}

// TrainTableAt retrains one table stamping its artifacts with an explicit
// time — used for backfills and by tests that need deterministic version
// ordering.
func (s *Service) TrainTableAt(table string, at time.Time) ([]ModelReport, error) {
	s.mu.Lock()
	prev := s.cfg.Now
	s.cfg.Now = func() time.Time { return at }
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.cfg.Now = prev
		s.mu.Unlock()
	}()
	return s.TrainTable(table)
}

// TrainTable retrains one table's model(s) — the routine-training task.
func (s *Service) TrainTable(table string) ([]ModelReport, error) {
	return s.TrainTableContext(compatContext(), table)
}

// TrainTableContext is TrainTable honoring a deadline/cancellation.
func (s *Service) TrainTableContext(ctx context.Context, table string) ([]ModelReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pre == nil {
		pre, err := s.runPreprocLocked()
		if err != nil {
			return nil, err
		}
		s.pre = pre
	}
	return s.trainTableLocked(ctx, table)
}

func (s *Service) trainTableLocked(ctx context.Context, table string) ([]ModelReport, error) {
	if err := aborted(ctx); err != nil {
		return nil, err
	}
	t := s.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("modelforge: unknown table %q", table)
	}
	cols := s.pre.Selected[table]
	if len(cols) == 0 {
		return nil, fmt.Errorf("modelforge: table %s has no trainable columns", table)
	}
	forced := map[string][]float64{}
	forcedNDV := map[string][]float64{}
	if s.pre.Buckets != nil {
		for _, col := range cols {
			if bounds, ok := s.pre.Buckets.BoundsFor(table, col); ok {
				forced[col] = bounds
				if ndv, ok := s.pre.Buckets.NDVFor(table, col); ok {
					forcedNDV[col] = ndv
				}
			}
		}
	}
	meta := s.schema.Table(table)
	if meta != nil && meta.ShardKey != "" {
		return s.trainShardedLocked(ctx, table, t, meta, cols, forced, forcedNDV)
	}
	model, err := s.trainOne(table, t, cols, forced, forcedNDV, func(int) bool { return true }, t.NumRows())
	if err != nil {
		return nil, err
	}
	return s.putBN(table, -1, model)
}

// trainShardedLocked trains one model per shard of the shard key's hash
// space — the paper's shard-specialized training for tables whose
// distribution varies across shards.
func (s *Service) trainShardedLocked(ctx context.Context, table string, t *storage.Table, meta *catalog.TableMeta, cols []string, forced, forcedNDV map[string][]float64) ([]ModelReport, error) {
	keyCol := t.ColByName(meta.ShardKey)
	if keyCol == nil {
		return nil, fmt.Errorf("modelforge: shard key %s missing from %s", meta.ShardKey, table)
	}
	shardOf := func(row int) int {
		h := fnv.New64a()
		v := keyCol.Value(row)
		fmt.Fprintf(h, "%v", v)
		return int(h.Sum64() % uint64(s.cfg.Shards))
	}
	// Exact shard populations for correct model weighting.
	counts := make([]int, s.cfg.Shards)
	for r := 0; r < t.NumRows(); r++ {
		counts[shardOf(r)]++
	}
	var out []ModelReport
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if counts[shard] == 0 {
			continue
		}
		if err := aborted(ctx); err != nil {
			return nil, err
		}
		model, err := s.trainOne(table, t, cols, forced, forcedNDV, func(row int) bool { return shardOf(row) == shard }, counts[shard])
		if err != nil {
			return nil, err
		}
		reports, err := s.putBN(table, shard, model)
		if err != nil {
			return nil, err
		}
		out = append(out, reports...)
	}
	return out, nil
}

// trainOne samples matching rows and trains a BN.
func (s *Service) trainOne(table string, t *storage.Table, cols []string, forced, forcedNDV map[string][]float64, include func(row int) bool, population int) (*bn.Model, error) {
	// Reservoir sampling of row indices (the online sampling the paper
	// schedules during low-activity periods).
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(len(table))<<8 ^ int64(population)))
	var rows []int
	seen := 0
	for r := 0; r < t.NumRows(); r++ {
		if !include(r) {
			continue
		}
		seen++
		if len(rows) < s.cfg.SampleRows {
			rows = append(rows, r)
		} else if j := rng.Intn(seen); j < s.cfg.SampleRows {
			rows[j] = r
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("modelforge: no rows to train %s", table)
	}
	data := make([][]float64, len(cols))
	for ci, col := range cols {
		c := t.ColByName(col)
		data[ci] = make([]float64, len(rows))
		for ri, r := range rows {
			data[ci][ri] = c.Numeric(r)
		}
	}
	model, err := bn.Train(bn.TrainConfig{
		Table:        table,
		ColNames:     cols,
		Sample:       data,
		Rows:         float64(population),
		MaxBins:      s.cfg.MaxBins,
		ForcedBounds: forced,
		ForcedBinNDV: forcedNDV,
		Workers:      s.workers(),
	})
	if err != nil {
		return nil, err
	}
	s.obs.TablesTrained.Add(1)
	s.obs.StructureSeconds.Observe(model.StructureSeconds)
	s.obs.ParamSeconds.Observe(model.ParamSeconds)
	return model, nil
}

func (s *Service) putBN(table string, shard int, model *bn.Model) ([]ModelReport, error) {
	data, err := model.Encode()
	if err != nil {
		return nil, err
	}
	name := s.dataset + "/bn/" + table
	if shard >= 0 {
		name = fmt.Sprintf("%s#%d", name, shard)
	}
	if err := s.store.Put(core.Artifact{
		Name: name, Kind: core.KindBN, Table: table, Shard: shard,
		Timestamp: s.cfg.Now(), Data: data,
	}); err != nil {
		return nil, err
	}
	return []ModelReport{{
		Name: name, Kind: core.KindBN, Table: table,
		SizeBytes: int64(len(data)), TrainSeconds: model.TrainSeconds,
		StructureSeconds: model.StructureSeconds, ParamSeconds: model.ParamSeconds,
	}}, nil
}

// ensureRBXLocked trains the base RBX model only if the store lacks one
// (workload independence: one offline run serves all datasets).
func (s *Service) ensureRBXLocked() ([]ModelReport, error) {
	if _, err := s.store.Get(RBXBaseName); err == nil {
		return nil, nil
	}
	model, err := rbx.Train(s.cfg.RBX)
	if err != nil {
		return nil, err
	}
	data, err := model.Encode()
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(core.Artifact{
		Name: RBXBaseName, Kind: core.KindRBX, Timestamp: s.cfg.Now(), Data: data,
	}); err != nil {
		return nil, err
	}
	return []ModelReport{{
		Name: RBXBaseName, Kind: core.KindRBX,
		SizeBytes: int64(len(data)), TrainSeconds: model.TrainSeconds,
	}}, nil
}

// TrainCostModel trains the learned cost model from runtime traces (the
// query-driven path the paper plans for cost estimation: the warehouse
// logs plan features and latencies; ModelForge trains on demand) and
// stores the artifact for the loader.
func (s *Service) TrainCostModel(traces []costmodel.Trace, cfg costmodel.TrainConfig) (*ModelReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	model, err := costmodel.Train(traces, cfg)
	if err != nil {
		return nil, err
	}
	data, err := model.Encode()
	if err != nil {
		return nil, err
	}
	name := s.dataset + "/costmodel"
	if err := s.store.Put(core.Artifact{
		Name: name, Kind: core.KindCost, Timestamp: s.cfg.Now(), Data: data,
	}); err != nil {
		return nil, err
	}
	return &ModelReport{
		Name: name, Kind: core.KindCost,
		SizeBytes: int64(len(data)), TrainSeconds: model.TrainSeconds,
	}, nil
}

// NotifyIngest is the Data Ingestor signal: once enough rows accumulate
// for a table, the service retrains its model(s) from fresh samples.
func (s *Service) NotifyIngest(table string, rows int64) error {
	return s.NotifyIngestContext(compatContext(), table, rows)
}

// NotifyIngestContext is NotifyIngest honoring a deadline/cancellation on
// the retrain it may trigger.
func (s *Service) NotifyIngestContext(ctx context.Context, table string, rows int64) error {
	s.mu.Lock()
	s.pending[table] += rows
	due := s.pending[table] >= s.cfg.RetrainRows
	if due {
		s.pending[table] = 0
	}
	s.mu.Unlock()
	if !due {
		return nil
	}
	if _, err := s.TrainTableContext(ctx, table); err != nil {
		return err
	}
	s.mu.Lock()
	s.retrained[table]++
	s.mu.Unlock()
	return nil
}

// RetrainCount reports how many ingest-triggered retrains a table has had.
func (s *Service) RetrainCount(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retrained[table]
}

// FineTuneRBX runs the calibration protocol for one problem column: the
// base model is fine-tuned on observed profiles plus synthetic high-NDV
// augmentation and stored back with a fresh timestamp.
func (s *Service) FineTuneRBX(column string, profiles []sample.Profile, truths []float64, cfg rbx.FineTuneConfig) error {
	return s.FineTuneRBXContext(compatContext(), column, profiles, truths, cfg)
}

// FineTuneRBXContext is FineTuneRBX honoring a deadline/cancellation.
func (s *Service) FineTuneRBXContext(ctx context.Context, column string, profiles []sample.Profile, truths []float64, cfg rbx.FineTuneConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := aborted(ctx); err != nil {
		return err
	}
	art, err := s.store.Get(RBXBaseName)
	if err != nil {
		return fmt.Errorf("modelforge: base RBX missing: %w", err)
	}
	model, err := rbx.Decode(art.Data)
	if err != nil {
		return err
	}
	if err := model.FineTune(column, profiles, truths, cfg); err != nil {
		return err
	}
	data, err := model.Encode()
	if err != nil {
		return err
	}
	return s.store.Put(core.Artifact{
		Name: RBXBaseName, Kind: core.KindRBX, Timestamp: s.cfg.Now(), Data: data,
	})
}
