package modelforge

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bytecard/internal/obs"
)

// ServeConfig tunes the hardened HTTP tier around the ModelForge API: the
// socket-level timeouts, the per-request deadline propagated into training,
// and the admission-control limits that make the server shed load instead
// of queuing unboundedly.
type ServeConfig struct {
	// ReadTimeout bounds reading a request (headers and body); default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response; training replies are slow, so
	// the default is generous (15m).
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness; default 2m.
	IdleTimeout time.Duration
	// RequestTimeout is the per-request context deadline propagated into
	// train/ingest/fine-tune (default 10m; negative disables).
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess requests are
	// shed with 429 + Retry-After instead of queuing (default 8).
	MaxInFlight int
	// RetryAfter is the hint sent with 429/503 replies (default 1s).
	RetryAfter time.Duration
}

func (c *ServeConfig) fill() {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 15 * time.Minute
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Minute
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// ServeMetrics counts the hardened tier's interventions.
type ServeMetrics struct {
	// Requests counts admitted requests; Shed counts 429 rejections.
	Requests, Shed obs.Counter
	// Panics counts handler panics converted to 500s.
	Panics obs.Counter
	// NotReady counts requests refused while starting up or draining.
	NotReady obs.Counter
}

// Hardened wraps the ModelForge HTTP API (or any handler) with the
// serving-resilience layer: a bounded in-flight semaphore that sheds excess
// load with 429 + Retry-After, panic-recovery middleware, per-request
// context deadlines, /healthz and /readyz endpoints, and graceful shutdown
// that flips readiness before draining in-flight requests.
type Hardened struct {
	cfg      ServeConfig
	mux      *http.ServeMux
	srv      *http.Server
	ready    atomic.Bool
	inflight chan struct{}
	metrics  ServeMetrics
}

// NewHardened wraps a service's HTTP API with the resilience layer. The
// server starts not-ready; Serve/ListenAndServe flip readiness once the
// listener is accepting, and Shutdown flips it back before draining.
func NewHardened(svc *Service, cfg ServeConfig) *Hardened {
	return HardenHandler(NewServer(svc), cfg)
}

// HardenHandler wraps an arbitrary handler with the same resilience layer
// (tests harden stub handlers to probe shed/drain behavior in isolation).
func HardenHandler(inner http.Handler, cfg ServeConfig) *Hardened {
	cfg.fill()
	h := &Hardened{cfg: cfg, inflight: make(chan struct{}, cfg.MaxInFlight)}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /readyz", h.handleReadyz)
	h.mux.Handle("/", h.middleware(inner))
	h.srv = &http.Server{
		Handler:      h,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
		IdleTimeout:  cfg.IdleTimeout,
	}
	return h
}

// ServeHTTP implements http.Handler: health endpoints bypass admission
// control (a saturated server must still answer its probes).
func (h *Hardened) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Metrics exposes the tier's intervention counters.
func (h *Hardened) Metrics() *ServeMetrics { return &h.metrics }

// Ready reports whether the server is accepting work.
func (h *Hardened) Ready() bool { return h.ready.Load() }

// SetReady flips readiness by hand — used by startup sequences that want
// to finish store recovery or warmup before taking traffic.
func (h *Hardened) SetReady(ready bool) { h.ready.Store(ready) }

func (h *Hardened) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Hardened) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if h.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	h.setRetryAfter(w)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
}

func (h *Hardened) setRetryAfter(w http.ResponseWriter) {
	secs := int(h.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// middleware is the per-request resilience chain: panic recovery outermost,
// then the readiness gate, then bounded admission (shed with 429), then the
// context deadline handed to the service methods.
func (h *Hardened) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				h.metrics.Panics.Add(1)
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("modelforge: handler panic: %v", rec))
			}
		}()
		if !h.ready.Load() {
			h.metrics.NotReady.Add(1)
			h.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable,
				errors.New("modelforge: not ready (starting up or draining)"))
			return
		}
		select {
		case h.inflight <- struct{}{}:
			defer func() { <-h.inflight }()
		default:
			h.metrics.Shed.Add(1)
			h.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("modelforge: at capacity (%d requests in flight)", h.cfg.MaxInFlight))
			return
		}
		h.metrics.Requests.Add(1)
		ctx := r.Context()
		if h.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, h.cfg.RequestTimeout)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Serve accepts connections on l until Shutdown, flipping readiness on.
// It returns nil on graceful shutdown.
func (h *Hardened) Serve(l net.Listener) error {
	h.ready.Store(true)
	err := h.srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (h *Hardened) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return h.Serve(l)
}

// Shutdown drains gracefully: readiness flips off first (so load balancers
// and /readyz probes stop routing new work), then in-flight requests are
// allowed to finish within ctx's budget before the listener closes for
// good. Requests still running when ctx expires are abandoned by the
// underlying http.Server.
func (h *Hardened) Shutdown(ctx context.Context) error {
	h.ready.Store(false)
	return h.srv.Shutdown(ctx)
}
