package modelforge

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// blockingHandler parks every request until release is closed, reporting
// arrivals on started.
type blockingHandler struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		writeJSON(w, http.StatusOK, map[string]string{"status": "done"})
	case <-r.Context().Done():
		writeServiceError(w, r.Context().Err())
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHardenedShedsOverload pins the acceptance criterion: with MaxInFlight
// requests already being served, the next request is shed immediately with
// 429 + Retry-After instead of queuing, and the health endpoints keep
// answering from a saturated server.
func TestHardenedShedsOverload(t *testing.T) {
	stub := &blockingHandler{started: make(chan struct{}, 4), release: make(chan struct{})}
	h := HardenHandler(stub, ServeConfig{MaxInFlight: 2, RetryAfter: 3 * time.Second})
	h.SetReady(true)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/train-stub")
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	<-stub.started
	<-stub.started

	// The semaphore is full: the third request must be shed, not queued.
	resp, err := http.Get(ts.URL + "/train-stub")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Errorf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "3")
	}
	// Health probes bypass admission control.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz while saturated: %v, %v", hz, err)
	}
	hz.Body.Close()

	close(stub.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
	if got := h.Metrics().Shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := h.Metrics().Requests.Load(); got != 2 {
		t.Errorf("requests counter = %d, want 2", got)
	}
}

// TestHardenedGracefulDrain pins the shutdown ordering: readiness flips off
// (so /readyz reports 503 to load balancers) while the in-flight request is
// still draining, and that request then completes 200 before Shutdown
// returns.
func TestHardenedGracefulDrain(t *testing.T) {
	stub := &blockingHandler{started: make(chan struct{}, 1), release: make(chan struct{})}
	h := HardenHandler(stub, ServeConfig{MaxInFlight: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve(l) }()
	waitFor(t, "server ready", h.Ready)

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + l.Addr().String() + "/work")
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-stub.started

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr <- h.Shutdown(ctx)
	}()
	waitFor(t, "readiness to flip off", func() bool { return !h.Ready() })

	// Readiness is off while the request is still in flight: an existing
	// connection probing /readyz sees 503 + Retry-After before the drain
	// completes.
	select {
	case code := <-reqDone:
		t.Fatalf("request completed (%d) before readiness flipped", code)
	default:
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("readyz during drain missing Retry-After")
	}

	close(stub.release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("draining request finished with %d, want 200", code)
	}
	if err := <-shutErr; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve returned %v after graceful shutdown, want nil", err)
	}
}

// TestHardenedPanicRecovery pins that a panicking handler becomes a 500,
// is counted, and leaves the server serving.
func TestHardenedPanicRecovery(t *testing.T) {
	h := HardenHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("handler bug")
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}), ServeConfig{})
	h.SetReady(true)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic: status = %d, want 500", rec.Code)
	}
	if got := h.Metrics().Panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fine", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("request after panic: status = %d, want 200", rec.Code)
	}
}

// TestHardenedNotReady pins the readiness gate: before Serve (or after
// Shutdown) work is refused with 503 + Retry-After while /healthz stays 200.
func TestHardenedNotReady(t *testing.T) {
	h := HardenHandler(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}), ServeConfig{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/train", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("not-ready request: status = %d, Retry-After = %q; want 503 with hint",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	if got := h.Metrics().NotReady.Load(); got != 1 {
		t.Errorf("not-ready counter = %d, want 1", got)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz while not ready = %d, want 200", rec.Code)
	}
	h.SetReady(true)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/train", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("ready request: status = %d, want 200", rec.Code)
	}
}

// TestHardenedRequestDeadline pins deadline propagation: the per-request
// context expires inside the handler and surfaces as 503 + Retry-After
// (transient — the caller should back off and retry).
func TestHardenedRequestDeadline(t *testing.T) {
	stub := &blockingHandler{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(stub.release)
	h := HardenHandler(stub, ServeConfig{RequestTimeout: 20 * time.Millisecond})
	h.SetReady(true)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/train", nil))
		done <- rec
	}()
	<-stub.started
	rec := <-done
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded request: status = %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("deadline-exceeded reply missing Retry-After")
	}
}

// TestServiceAbortsOnCanceledContext pins that training observes its
// context between units of work: an already-canceled context aborts before
// any model trains.
func TestServiceAbortsOnCanceledContext(t *testing.T) {
	svc, store, _ := newForge(t, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.TrainAllContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("train with canceled ctx: %v, want context.Canceled", err)
	}
	if list, _ := store.List(); len(list) != 0 {
		t.Errorf("canceled training still persisted %d artifacts", len(list))
	}
	if _, err := svc.TrainTableContext(ctx, "fact"); !errors.Is(err, context.Canceled) {
		t.Fatalf("train table with canceled ctx: %v", err)
	}
	// Below the retrain threshold ingest only records the signal — no work
	// to cancel; at the threshold the triggered retrain observes the ctx.
	if err := svc.NotifyIngestContext(ctx, "fact", 1); err != nil {
		t.Fatalf("sub-threshold ingest with canceled ctx: %v", err)
	}
	if err := svc.NotifyIngestContext(ctx, "fact", 200); !errors.Is(err, context.Canceled) {
		t.Fatalf("retrain-triggering ingest with canceled ctx: %v", err)
	}
}

// flakyServer fails the first n requests per path with the given status,
// then delegates to ok.
type flakyServer struct {
	mu       sync.Mutex
	failures int
	status   int
	hits     map[string]int
	ok       http.Handler
}

func (f *flakyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits[r.URL.Path]++
	n := f.hits[r.URL.Path]
	f.mu.Unlock()
	if n <= f.failures {
		w.Header().Set("Retry-After", "0") // ignored: only positive hints count
		writeError(w, f.status, errors.New("transient"))
		return
	}
	f.ok.ServeHTTP(w, r)
}

func (f *flakyServer) count(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[path]
}

func newFlaky(failures, status int, ok http.Handler) *flakyServer {
	return &flakyServer{failures: failures, status: status, hits: map[string]int{}, ok: ok}
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 42}
}

// TestClientRetriesIdempotent pins the client's backoff: an idempotent call
// (Models) retries through shed replies and succeeds, while a non-idempotent
// call (Ingest) surfaces the first transient error untouched.
func TestClientRetriesIdempotent(t *testing.T) {
	okHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []any{})
	})
	flaky := newFlaky(2, http.StatusTooManyRequests, okHandler)
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	if _, err := c.Models(); err != nil {
		t.Fatalf("models through 2 shed replies: %v", err)
	}
	if got := flaky.count("/models"); got != 3 {
		t.Errorf("models attempts = %d, want 3", got)
	}

	if err := c.Ingest(IngestSignal{Table: "t", Rows: 1}); err == nil {
		t.Fatal("ingest against shedding server must fail without retry")
	} else if !IsRetryable(err) {
		t.Errorf("shed ingest error not classified retryable: %v", err)
	}
	if got := flaky.count("/ingest"); got != 1 {
		t.Errorf("ingest attempts = %d, want 1 (not idempotent)", got)
	}
}

// TestClientRetryExhaustion pins that retries stop at MaxAttempts and the
// final typed error carries status, path, and server message.
func TestClientRetryExhaustion(t *testing.T) {
	flaky := newFlaky(1000, http.StatusServiceUnavailable, nil)
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	_, err := c.TrainAll()
	if err == nil {
		t.Fatal("train against permanently shedding server must fail")
	}
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("error type = %T, want *HTTPError", err)
	}
	if he.Status != http.StatusServiceUnavailable || he.Path != "/train" || he.Message != "transient" {
		t.Errorf("typed error = %+v", he)
	}
	if !he.Retryable() {
		t.Error("503 must classify retryable")
	}
	if got := flaky.count("/train"); got != 3 {
		t.Errorf("train attempts = %d, want MaxAttempts", got)
	}
}

// TestClientDoesNotRetryPermanentErrors pins the classification boundary:
// 4xx logic errors are surfaced on the first attempt.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	flaky := newFlaky(1000, http.StatusBadRequest, nil)
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	_, err := c.TrainAll()
	var he *HTTPError
	if !errors.As(err, &he) || he.Retryable() || IsRetryable(err) {
		t.Fatalf("400 error = %v, must not classify retryable", err)
	}
	if got := flaky.count("/train"); got != 1 {
		t.Errorf("train attempts = %d, want 1", got)
	}
	if IsRetryable(nil) {
		t.Error("nil error must not be retryable")
	}
}

// TestClientHonorsRetryAfter pins that a server hint larger than the
// jittered schedule stretches the backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	c := NewClient("http://unused")
	c.Retry = RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7}
	if d := c.backoff(0, 3*time.Second); d != 3*time.Second {
		t.Errorf("backoff with 3s hint = %v, want the hint", d)
	}
	if d := c.backoff(0, 0); d <= 0 || d > 2*time.Millisecond {
		t.Errorf("backoff without hint = %v, want jittered (0, 2ms]", d)
	}
}

// TestClientDefaultTimeout pins satellite 1: NewClient must not ride on
// http.DefaultClient (unbounded), and the transport stays overridable.
func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://x")
	if c.HTTP == http.DefaultClient {
		t.Fatal("client uses http.DefaultClient")
	}
	if c.HTTP.Timeout != DefaultClientTimeout {
		t.Errorf("default timeout = %v, want %v", c.HTTP.Timeout, DefaultClientTimeout)
	}
	custom := &http.Client{Timeout: time.Second}
	c.HTTP = custom
	if c.httpClient() != custom {
		t.Error("HTTP override ignored")
	}
	if (&Client{}).httpClient().Timeout != DefaultClientTimeout {
		t.Error("zero-value client must fall back to a bounded transport")
	}
}

// TestHardenedEndToEnd exercises the full stack: a hardened real service
// behind a real listener serves /train and /models through the client with
// retries enabled.
func TestHardenedEndToEnd(t *testing.T) {
	svc, _, _ := newForge(t, 0.5)
	h := NewHardened(svc, ServeConfig{MaxInFlight: 4})
	ts := httptest.NewServer(h)
	defer ts.Close()
	h.SetReady(true)

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	rep, err := c.TrainAll()
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if rep == nil || len(rep.Models) == 0 {
		t.Fatalf("train report empty: %+v", rep)
	}
	models, err := c.Models()
	if err != nil || len(models) == 0 {
		t.Fatalf("models = %v, %v", models, err)
	}
	if models[0].SHA256 == "" {
		t.Errorf("served manifest missing checksum: %+v", models[0])
	}
	if !c.Ready() {
		t.Error("ready probe against serving stack = false")
	}
}
