package modelforge

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"bytecard/internal/bn"
	"bytecard/internal/core"
	"bytecard/internal/costmodel"
	"bytecard/internal/datagen"
	enginePkg "bytecard/internal/engine"
	"bytecard/internal/factorjoin"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
	"bytecard/internal/types"
)

func tinyRBX() rbx.TrainConfig {
	return rbx.TrainConfig{Columns: 60, Epochs: 3, MaxPop: 8000, Seed: 1}
}

func newForge(t *testing.T, scale float64) (*Service, *modelstore.Store, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: scale, Seed: 51})
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New("toy", ds.DB, ds.Schema, store, Config{
		SampleRows: 1000, BucketCount: 16, RBX: tinyRBX(), Seed: 1, RetrainRows: 100,
	})
	return svc, store, ds
}

func TestTrainAllProducesArtifacts(t *testing.T) {
	svc, store, _ := newForge(t, 1)
	rep, err := svc.TrainAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSeconds <= 0 {
		t.Error("total time missing")
	}
	manifests, _ := store.List()
	kinds := map[core.ModelKind]int{}
	for _, m := range manifests {
		kinds[m.Kind]++
	}
	if kinds[core.KindBN] != 2 {
		t.Errorf("BN artifacts = %d, want 2 (dim, fact)", kinds[core.KindBN])
	}
	if kinds[core.KindFactorJoin] != 1 || kinds[core.KindRBX] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	// Report entries cover every artifact.
	if len(rep.Models) != len(manifests) {
		t.Errorf("report has %d models, store has %d", len(rep.Models), len(manifests))
	}
	for _, m := range rep.Models {
		if m.SizeBytes <= 0 {
			t.Errorf("model %s reports zero size", m.Name)
		}
	}
}

func TestRBXTrainedOnlyOnce(t *testing.T) {
	svc, store, _ := newForge(t, 1)
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	art1, _ := store.Get(RBXBaseName)
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	art2, _ := store.Get(RBXBaseName)
	if !art1.Timestamp.Equal(art2.Timestamp) {
		t.Error("workload-independent RBX must not retrain when present")
	}
}

func TestTrainTableUnknown(t *testing.T) {
	svc, _, _ := newForge(t, 1)
	if _, err := svc.TrainTable("ghost"); err == nil {
		t.Error("unknown table must error")
	}
}

func TestShardSpecializedTraining(t *testing.T) {
	svc, store, ds := newForge(t, 2)
	ds.Schema.Table("fact").ShardKey = "dim_id"
	svc.cfg.Shards = 3
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	manifests, _ := store.List()
	shardArts := 0
	for _, m := range manifests {
		if m.Kind == core.KindBN && m.Table == "fact" {
			shardArts++
			if m.Shard < 0 {
				t.Error("sharded table must produce shard-numbered artifacts")
			}
		}
	}
	if shardArts < 2 {
		t.Errorf("shard artifacts = %d, want >= 2", shardArts)
	}
	// Shard populations must sum to the table size: decode and check.
	var totalRows float64
	for _, m := range manifests {
		if m.Kind == core.KindBN && m.Table == "fact" {
			art, _ := store.Get(m.Name)
			infer := core.NewInferenceEngine(core.Options{})
			if err := infer.LoadModel(art); err != nil {
				t.Fatal(err)
			}
			ctxs, _ := infer.BNContexts("fact")
			totalRows += ctxs[0].Model().Rows
		}
	}
	if int(totalRows) != ds.DB.Table("fact").NumRows() {
		t.Errorf("shard rows sum to %g, want %d", totalRows, ds.DB.Table("fact").NumRows())
	}
}

func TestNotifyIngestTriggersRetrain(t *testing.T) {
	svc, store, _ := newForge(t, 1)
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	before, _ := store.Get("toy/bn/fact")
	// Below threshold: no retrain.
	if err := svc.NotifyIngest("fact", 10); err != nil {
		t.Fatal(err)
	}
	if svc.RetrainCount("fact") != 0 {
		t.Error("premature retrain")
	}
	// Cross the threshold. Use a later clock so the timestamp advances.
	svc.cfg.Now = func() time.Time { return time.Now().Add(time.Hour) }
	if err := svc.NotifyIngest("fact", 200); err != nil {
		t.Fatal(err)
	}
	if svc.RetrainCount("fact") != 1 {
		t.Errorf("retrains = %d, want 1", svc.RetrainCount("fact"))
	}
	after, _ := store.Get("toy/bn/fact")
	if !after.Timestamp.After(before.Timestamp) {
		t.Error("retrain must store a newer artifact")
	}
}

func TestFineTuneRBXUpdatesStore(t *testing.T) {
	svc, store, _ := newForge(t, 1)
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	before, _ := store.Get(RBXBaseName)
	var profiles []sample.Profile
	var truths []float64
	vals := make([]types.Datum, 500)
	for i := range vals {
		vals[i] = types.Int(int64(i))
	}
	profiles = append(profiles, sample.ProfileOfValues(vals, 50000))
	truths = append(truths, 45000)
	svc.cfg.Now = func() time.Time { return time.Now().Add(time.Hour) }
	err := svc.FineTuneRBX("fact.session", profiles, truths, rbx.FineTuneConfig{
		Epochs: 3, HighNDVColumns: 30, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := store.Get(RBXBaseName)
	if !after.Timestamp.After(before.Timestamp) {
		t.Error("fine-tune must bump the artifact timestamp")
	}
	model, err := rbx.Decode(after.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := model.Calibrated["fact.session"]; !ok {
		t.Error("calibrated column missing from stored model")
	}
}

func TestFineTuneWithoutBaseFails(t *testing.T) {
	svc, _, _ := newForge(t, 1)
	if err := svc.FineTuneRBX("x", []sample.Profile{{}}, []float64{1}, rbx.FineTuneConfig{}); err == nil {
		t.Error("fine-tune without base model must fail")
	}
}

func TestHTTPRoundtrip(t *testing.T) {
	svc, _, _ := newForge(t, 1)
	srv := httptest.NewServer(NewServer(svc))
	defer srv.Close()
	client := NewClient(srv.URL)

	rep, err := client.TrainAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Models) == 0 {
		t.Error("remote train returned empty report")
	}
	if err := client.Ingest(IngestSignal{Table: "fact", Rows: 5, Source: "kafka"}); err != nil {
		t.Fatal(err)
	}
	if err := client.Ingest(IngestSignal{Table: "ghost", Rows: 500}); err == nil {
		t.Error("ingest crossing threshold for unknown table must fail")
	}
	vals := make([]types.Datum, 100)
	for i := range vals {
		vals[i] = types.Int(int64(i))
	}
	err = client.FineTune(FineTuneRequest{
		Column:   "fact.val",
		Profiles: []sample.Profile{sample.ProfileOfValues(vals, 1000)},
		Truths:   []float64{900},
		Config:   rbx.FineTuneConfig{Epochs: 2, HighNDVColumns: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrainCostModelStoresArtifact(t *testing.T) {
	svc, store, ds := newForge(t, 1)
	exec := enginePkg.New(ds.DB, ds.Schema, enginePkg.HeuristicEstimator{})
	var sqls []string
	for i := 0; i < 12; i++ {
		sqls = append(sqls, "SELECT COUNT(*) FROM fact WHERE val < 50")
	}
	traces, err := costmodel.CollectTraces(exec, sqls)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.TrainCostModel(traces, costmodel.TrainConfig{Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != core.KindCost || rep.SizeBytes <= 0 {
		t.Errorf("report = %+v", rep)
	}
	art, err := store.Get("toy/costmodel")
	if err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{})
	if err := infer.LoadModel(art); err != nil {
		t.Fatal(err)
	}
	if infer.CostModel() == nil {
		t.Error("cost model not loaded")
	}
	if infer.Timestamp("costmodel").IsZero() {
		t.Error("cost model timestamp missing")
	}
}

func TestTrainCostModelTooFewTraces(t *testing.T) {
	svc, _, _ := newForge(t, 1)
	if _, err := svc.TrainCostModel(nil, costmodel.TrainConfig{}); err == nil {
		t.Error("too few traces must fail")
	}
}

// TestTrainWorkersDeterministicArtifacts trains the same dataset with a
// single worker and with a pool, requiring identical trained models — the
// guarantee that lets BYTECARD_TRAIN_WORKERS be a pure speed knob.
// Comparison is structural (decoded models, wall-time fields normalized):
// gob serializes maps in random iteration order, so equal models need not
// share bytes.
func TestTrainWorkersDeterministicArtifacts(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	artifacts := func(workers int) map[string][]byte {
		ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 51})
		store, err := modelstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		svc := New("toy", ds.DB, ds.Schema, store, Config{
			SampleRows: 1000, BucketCount: 16, RBX: tinyRBX(), Seed: 1,
			TrainWorkers: workers,
			Now:          func() time.Time { return now },
		})
		if _, err := svc.TrainAll(); err != nil {
			t.Fatal(err)
		}
		manifests, err := store.List()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, m := range manifests {
			art, err := store.Get(m.Name)
			if err != nil {
				t.Fatal(err)
			}
			out[m.Name] = art.Data
		}
		return out
	}
	serial := artifacts(1)
	pooled := artifacts(4)
	if len(serial) != len(pooled) {
		t.Fatalf("artifact counts differ: %d vs %d", len(serial), len(pooled))
	}
	for name, want := range serial {
		got, ok := pooled[name]
		if !ok {
			t.Fatalf("artifact %s missing from pooled run", name)
		}
		switch name {
		case "toy/factorjoin":
			a, err := factorjoin.Decode(want)
			if err != nil {
				t.Fatal(err)
			}
			b, err := factorjoin.Decode(got)
			if err != nil {
				t.Fatal(err)
			}
			b.BuildSeconds = a.BuildSeconds
			if !reflect.DeepEqual(a, b) {
				t.Errorf("artifact %s differs between worker counts", name)
			}
		case "toy/bn/dim", "toy/bn/fact":
			a, err := bn.Decode(want)
			if err != nil {
				t.Fatal(err)
			}
			b, err := bn.Decode(got)
			if err != nil {
				t.Fatal(err)
			}
			b.TrainSeconds = a.TrainSeconds
			b.StructureSeconds = a.StructureSeconds
			b.ParamSeconds = a.ParamSeconds
			if !reflect.DeepEqual(a, b) {
				t.Errorf("artifact %s differs between worker counts", name)
			}
		default:
			// rbx/base does not depend on the table data or worker count;
			// its bytes embed wall-clock training time, so presence is
			// enough here.
		}
	}
}

// TestTrainMetricsRecorded checks the per-stage training timings surface
// through the service's obs block after a full pipeline.
func TestTrainMetricsRecorded(t *testing.T) {
	svc, _, _ := newForge(t, 1)
	if _, err := svc.TrainAll(); err != nil {
		t.Fatal(err)
	}
	snap := svc.Obs().Snapshot()
	if snap.Runs != 1 {
		t.Errorf("Runs = %d, want 1", snap.Runs)
	}
	if snap.TablesTrained != 2 {
		t.Errorf("TablesTrained = %d, want 2", snap.TablesTrained)
	}
	if snap.StructureSeconds.Count != 2 || snap.ParamSeconds.Count != 2 {
		t.Errorf("stage histogram counts = %d/%d, want 2/2",
			snap.StructureSeconds.Count, snap.ParamSeconds.Count)
	}
	if snap.FactorJoinSeconds.Count != 1 {
		t.Errorf("FactorJoinSeconds count = %d, want 1", snap.FactorJoinSeconds.Count)
	}
	if snap.StructureSeconds.Sum <= 0 || snap.ParamSeconds.Sum < 0 {
		t.Errorf("stage timings not recorded: %+v", snap)
	}
}
