package modelforge

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bytecard/internal/rbx"
	"bytecard/internal/sample"
)

// maxRequestBody caps request payloads. Fine-tune requests carry sample
// profiles and truth vectors, which stay well under a megabyte; anything
// larger is a malformed or abusive request, rejected with 413 before the
// decoder buffers it.
const maxRequestBody = 8 << 20

// Server exposes the service over HTTP — the standalone-deployment form
// the paper describes (training must not share a process with query
// execution in production; in-process use remains available for tests and
// single-binary setups).
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a service with the HTTP API.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /train", s.handleTrain)
	s.mux.HandleFunc("POST /train/{table}", s.handleTrainTable)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /finetune", s.handleFineTune)
	s.mux.HandleFunc("GET /models", s.handleModels)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body into v under the maxRequestBody
// limit, writing the appropriate error status (413 for oversized payloads,
// 400 for malformed JSON) and reporting whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return false
	}
	return true
}

func (s *Server) handleTrain(w http.ResponseWriter, _ *http.Request) {
	rep, err := s.svc.TrainAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleTrainTable(w http.ResponseWriter, r *http.Request) {
	reports, err := s.svc.TrainTable(r.PathValue("table"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, reports)
}

// IngestSignal is the Data Ingestor's consumption message (the paper's
// Hive/Kafka payload collapses to table identity and row volume here).
type IngestSignal struct {
	Table string `json:"table"`
	Rows  int64  `json:"rows"`
	// Source documents the upstream ("hive", "kafka").
	Source string `json:"source,omitempty"`
	// Location carries format/offset details for the record.
	Location string `json:"location,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var sig IngestSignal
	if !decodeBody(w, r, &sig) {
		return
	}
	if err := s.svc.NotifyIngest(sig.Table, sig.Rows); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// FineTuneRequest carries the monitor's calibration evidence.
type FineTuneRequest struct {
	Column   string             `json:"column"`
	Profiles []sample.Profile   `json:"profiles"`
	Truths   []float64          `json:"truths"`
	Config   rbx.FineTuneConfig `json:"config"`
}

func (s *Server) handleFineTune(w http.ResponseWriter, r *http.Request) {
	var req FineTuneRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.svc.FineTuneRBX(req.Column, req.Profiles, req.Truths, req.Config); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	manifests, err := s.svc.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, manifests)
}

// Client calls a remote ModelForge server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client with the default transport.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) post(path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("modelforge: %s: %s (%s)", path, resp.Status, e["error"])
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// TrainAll triggers full training remotely.
func (c *Client) TrainAll() (*Report, error) {
	var rep Report
	if err := c.post("/train", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Ingest sends a Data Ingestor signal.
func (c *Client) Ingest(sig IngestSignal) error {
	return c.post("/ingest", sig, nil)
}

// FineTune requests RBX calibration for a column.
func (c *Client) FineTune(req FineTuneRequest) error {
	return c.post("/finetune", req, nil)
}
