package modelforge

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
)

// maxRequestBody caps request payloads. Fine-tune requests carry sample
// profiles and truth vectors, which stay well under a megabyte; anything
// larger is a malformed or abusive request, rejected with 413 before the
// decoder buffers it.
const maxRequestBody = 8 << 20

// Server exposes the service over HTTP — the standalone-deployment form
// the paper describes (training must not share a process with query
// execution in production; in-process use remains available for tests and
// single-binary setups). Wrap it with NewHardened for timeouts, load
// shedding, and graceful shutdown.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a service with the HTTP API.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /train", s.handleTrain)
	s.mux.HandleFunc("POST /train/{table}", s.handleTrainTable)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /finetune", s.handleFineTune)
	s.mux.HandleFunc("GET /models", s.handleModels)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeServiceError maps a service failure to a status: deadline and
// cancellation failures become 503 + Retry-After (the request may succeed
// once the server is less loaded); everything else is a 500.
func writeServiceError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// decodeBody decodes a JSON request body into v under the maxRequestBody
// limit, writing the appropriate error status (413 for oversized payloads,
// 400 for malformed JSON) and reporting whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return false
	}
	return true
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	rep, err := s.svc.TrainAllContext(r.Context())
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleTrainTable(w http.ResponseWriter, r *http.Request) {
	reports, err := s.svc.TrainTableContext(r.Context(), r.PathValue("table"))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeServiceError(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, reports)
}

// IngestSignal is the Data Ingestor's consumption message (the paper's
// Hive/Kafka payload collapses to table identity and row volume here).
type IngestSignal struct {
	Table string `json:"table"`
	Rows  int64  `json:"rows"`
	// Source documents the upstream ("hive", "kafka").
	Source string `json:"source,omitempty"`
	// Location carries format/offset details for the record.
	Location string `json:"location,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var sig IngestSignal
	if !decodeBody(w, r, &sig) {
		return
	}
	if err := s.svc.NotifyIngestContext(r.Context(), sig.Table, sig.Rows); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// FineTuneRequest carries the monitor's calibration evidence.
type FineTuneRequest struct {
	Column   string             `json:"column"`
	Profiles []sample.Profile   `json:"profiles"`
	Truths   []float64          `json:"truths"`
	Config   rbx.FineTuneConfig `json:"config"`
}

func (s *Server) handleFineTune(w http.ResponseWriter, r *http.Request) {
	var req FineTuneRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.svc.FineTuneRBXContext(r.Context(), req.Column, req.Profiles, req.Truths, req.Config); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	manifests, err := s.svc.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, manifests)
}

// DefaultClientTimeout bounds every client round-trip so a stuck server
// cannot hang the caller indefinitely.
const DefaultClientTimeout = 30 * time.Second

// HTTPError is a typed non-2xx reply from a ModelForge server.
type HTTPError struct {
	// Status is the HTTP status code.
	Status int
	// Path is the request path.
	Path string
	// Message is the server's error body (when parseable).
	Message string
	// RetryAfter is the server's backoff hint (zero when absent).
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("modelforge: %s: HTTP %d (%s)", e.Path, e.Status, e.Message)
}

// Retryable reports whether the status indicates a transient condition —
// load shedding (429), a draining or overloaded server (503), or a gateway
// hiccup (502/504) — worth retrying on an idempotent call.
func (e *HTTPError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// IsRetryable reports whether an error from a Client call is transient:
// a retryable HTTPError or a transport-level failure (connection refused,
// timeout). Malformed-request and server-logic errors are not retryable.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retryable()
	}
	// Anything that never produced an HTTP status is a transport failure.
	return true
}

// RetryPolicy is the client's jittered exponential backoff for idempotent
// calls. The zero value takes the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total try count including the first (default 3;
	// negative disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); the delay
	// doubles per retry up to MaxDelay (default 2s), with half the span
	// jittered to decorrelate retry storms.
	BaseDelay, MaxDelay time.Duration
	// Seed drives the jitter deterministically (default 1) so failing runs
	// replay exactly.
	Seed int64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 0 {
		return 1
	}
	if p.MaxAttempts == 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

// Client calls a remote ModelForge server with bounded timeouts and, on
// idempotent calls, jittered exponential-backoff retries.
type Client struct {
	BaseURL string
	// HTTP is the transport; NewClient installs one with
	// DefaultClientTimeout, and callers may override it (a nil HTTP uses a
	// shared default-timeout client rather than hanging forever).
	HTTP *http.Client
	// Retry tunes the backoff on idempotent calls (TrainAll, Models).
	Retry RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// defaultHTTPClient serves Clients constructed as bare literals.
var defaultHTTPClient = &http.Client{Timeout: DefaultClientTimeout}

// NewClient creates a client with a default-timeout transport and the
// default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: DefaultClientTimeout}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// backoff returns the jittered delay before retry number n (0-based).
func (c *Client) backoff(n int, hint time.Duration) time.Duration {
	d := c.Retry.base() << uint(n)
	if m := c.Retry.max(); d > m {
		d = m
	}
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if hint > jittered {
		return hint // the server's Retry-After outranks our own schedule
	}
	return jittered
}

// once performs a single round-trip, returning a typed *HTTPError for
// non-200 replies.
func (c *Client) once(method, path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, c.BaseURL+path, &buf)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		he := &HTTPError{Status: resp.StatusCode, Path: path}
		var e map[string]string
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil {
			he.Message = e["error"]
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
		return he
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// do performs the call, retrying transient failures when idempotent.
func (c *Client) do(method, path string, body, out any, idempotent bool) error {
	attempts := 1
	if idempotent {
		attempts = c.Retry.attempts()
	}
	var err error
	for n := 0; n < attempts; n++ {
		if err = c.once(method, path, body, out); err == nil || !IsRetryable(err) {
			return err
		}
		if n == attempts-1 {
			break
		}
		var hint time.Duration
		var he *HTTPError
		if errors.As(err, &he) {
			hint = he.RetryAfter
		}
		time.Sleep(c.backoff(n, hint))
	}
	return err
}

// TrainAll triggers full training remotely. Training the same dataset
// twice converges to the same artifacts, so the call is retried on
// transient failures.
func (c *Client) TrainAll() (*Report, error) {
	var rep Report
	if err := c.do(http.MethodPost, "/train", nil, &rep, true); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Ingest sends a Data Ingestor signal. Ingest accumulates row counts, so
// it is not idempotent and is never retried automatically.
func (c *Client) Ingest(sig IngestSignal) error {
	return c.do(http.MethodPost, "/ingest", sig, nil, false)
}

// FineTune requests RBX calibration for a column (not idempotent: each run
// fine-tunes from the then-current base model).
func (c *Client) FineTune(req FineTuneRequest) error {
	return c.do(http.MethodPost, "/finetune", req, nil, false)
}

// Models lists the store's manifests (idempotent, retried).
func (c *Client) Models() ([]modelstore.Manifest, error) {
	var out []modelstore.Manifest
	if err := c.do(http.MethodGet, "/models", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Ready probes /readyz once (no retries — health checks poll).
func (c *Client) Ready() bool {
	return c.once(http.MethodGet, "/readyz", nil, nil) == nil
}
