package modelforge

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newHTTPServer wires a server over a tiny forge without training — the
// handler-robustness tests below never reach the training paths.
func newHTTPServer(t *testing.T) *Server {
	t.Helper()
	svc, _, _ := newForge(t, 0.5)
	return NewServer(svc)
}

func TestHTTPRequestValidation(t *testing.T) {
	srv := newHTTPServer(t)
	oversized := `{"table":"fact","source":"` + strings.Repeat("x", maxRequestBody+1) + `"}`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"ingest ok", http.MethodPost, "/ingest", `{"table":"fact","rows":10}`, http.StatusOK},
		{"ingest bad json", http.MethodPost, "/ingest", `{"table":`, http.StatusBadRequest},
		{"ingest unknown table", http.MethodPost, "/ingest", `{"table":"nope","rows":500}`, http.StatusInternalServerError},
		{"ingest oversized", http.MethodPost, "/ingest", oversized, http.StatusRequestEntityTooLarge},
		{"ingest wrong method", http.MethodGet, "/ingest", "", http.StatusMethodNotAllowed},
		{"finetune bad json", http.MethodPost, "/finetune", `not json`, http.StatusBadRequest},
		{"finetune oversized", http.MethodPost, "/finetune", oversized, http.StatusRequestEntityTooLarge},
		{"finetune wrong method", http.MethodDelete, "/finetune", "", http.StatusMethodNotAllowed},
		{"train wrong method", http.MethodGet, "/train", "", http.StatusMethodNotAllowed},
		{"models ok", http.MethodGet, "/models", "", http.StatusOK},
		{"models wrong method", http.MethodPost, "/models", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Errorf("%s %s: status = %d, want %d (body %q)",
					tc.method, tc.path, rec.Code, tc.wantStatus, rec.Body.String())
			}
		})
	}
}

// TestHTTPOversizedBodyStopsEarly pins down that the limit applies to what
// the decoder consumes, not just to fully buffered bodies: a valid JSON
// prefix under the limit inside a body over the limit still decodes, while
// a single value spanning past the limit is rejected with 413.
func TestHTTPOversizedBodyStopsEarly(t *testing.T) {
	srv := newHTTPServer(t)
	body := `{"table":"fact","rows":3}` + strings.Repeat(" ", maxRequestBody)
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("valid prefix under limit: status = %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
}
