package monitor

import (
	"math/rand"
	"strings"
	"testing"

	"bytecard/internal/engine"
	"bytecard/internal/residual"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// TestEqualLengthTableNamesGetDistinctProbes pins the probe-seed fix: the
// old scheme derived each table's probe RNG seed from len(name), so any
// two equal-length names shared one RNG stream and their probe predicates
// were perfectly correlated — probe coverage silently collapsed. The
// FNV-1a derivation must give equal-length names distinct streams.
func TestEqualLengthTableNamesGetDistinctProbes(t *testing.T) {
	db := storage.NewDatabase()
	// Identical contents under equal-length names: any probe divergence
	// can only come from the seeds.
	for _, name := range []string{"alpha", "gamma"} {
		b := storage.NewBuilder(name, []storage.ColumnSpec{
			{Name: "a", Kind: types.KindInt64},
			{Name: "b", Kind: types.KindInt64},
		})
		for i := 0; i < 64; i++ {
			b.Append([]types.Datum{types.Int(int64(i)), types.Int(int64(i % 7))})
		}
		db.Add(b.Build())
	}
	m := &Monitor{Exec: &engine.Engine{DB: db}, Seed: 5}
	probeSet := func(table string) []string {
		et, err := m.buildEngineTable(table)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(probeSeed(m.Seed, table)))
		var out []string
		for i := 0; i < 8; i++ {
			// Strip the table name so only the predicate stream compares.
			out = append(out, strings.ReplaceAll(predsToSQL(table, probePreds(et, rng), nil), table, "T"))
		}
		return out
	}
	a, g := probeSet("alpha"), probeSet("gamma")
	identical := 0
	for i := range a {
		if a[i] == g[i] {
			identical++
		}
	}
	if identical == len(a) {
		t.Fatal("equal-length table names produced identical probe streams")
	}

	// The derivation itself: distinct across names, deterministic per name.
	if probeSeed(5, "alpha") == probeSeed(5, "gamma") {
		t.Error("probeSeed collides for equal-length names")
	}
	if probeSeed(5, "alpha") != probeSeed(5, "alpha") {
		t.Error("probeSeed is not deterministic")
	}
	// CheckNDV's column streams must separate too (same length, same table).
	if probeSeed(5, "alpha\x00aa") == probeSeed(5, "alpha\x00bb") {
		t.Error("probeSeed collides for equal-length column keys")
	}
}

// TestCheckResidualDrift wires the Monitor's sweep into the corrector's
// drift signal: no corrector or no drift -> no refit; sustained drift ->
// exactly one refit that resets the signal.
func TestCheckResidualDrift(t *testing.T) {
	m := &Monitor{}
	if m.CheckResidualDrift() {
		t.Fatal("monitor without a corrector reported a refit")
	}
	corr := residual.New(residual.Config{DriftMinObservations: 8}, nil)
	m.Residual = corr
	for i := 0; i < 20; i++ {
		corr.Observe("good", []string{"t"}, 1000, 1000)
	}
	if m.CheckResidualDrift() {
		t.Fatal("accurate workload triggered a refit")
	}
	for i := 0; i < 10; i++ {
		corr.Observe("bad", []string{"t"}, 1000, 64000)
	}
	if !m.CheckResidualDrift() {
		t.Fatal("sustained drift did not trigger a refit")
	}
	if m.CheckResidualDrift() {
		t.Error("refit did not reset the drift signal")
	}
}
