// Package monitor implements the Model Monitor: it generates probe queries
// with multiple predicates, executes them on the warehouse for true
// cardinalities, compares against the models' estimates, and — when
// Q-errors breach the threshold — disables the offending model (falling
// back to traditional estimation) and triggers retraining or RBX
// fine-tuning in the ModelForge service. Per the paper, only single-table
// COUNT models are probed directly; FactorJoin inherits its health from
// the single-table models it consumes.
package monitor

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/residual"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// Monitor checks model quality against live query results.
type Monitor struct {
	// Exec executes probe queries for ground truth.
	Exec *engine.Engine
	// Est is the ByteCard estimator under evaluation.
	Est *core.Estimator
	// Feat featurizes probe SQL.
	Feat *core.Featurizer
	// Infer is the registry whose models get disabled on breach.
	Infer *core.InferenceEngine

	// Threshold is the maximum tolerated probe Q-error (default 100).
	Threshold float64
	// Probes is the number of probe queries per check (default 20).
	Probes int
	// Seed drives probe generation.
	Seed int64

	// RetrainTable is called when a table's COUNT model breaches (wired
	// to ModelForge.TrainTable).
	RetrainTable func(table string) error
	// FineTuneNDV is called with calibration evidence when RBX breaches
	// on a column (wired to ModelForge.FineTuneRBX).
	FineTuneNDV func(column string, profiles []sample.Profile, truths []float64) error

	// Residual, when non-nil, is the online residual corrector whose
	// rolling-q-error drift signal the Monitor turns into refits (see
	// CheckResidualDrift).
	Residual *residual.Corrector
}

// probeSeed derives a per-name probe RNG seed by folding an FNV-1a hash
// of the name into the Monitor's base seed. Deriving from len(name) (the
// old scheme) gave any two equal-length names an identical RNG stream, so
// their probe predicates were perfectly correlated and probe coverage
// silently collapsed; the hash gives every distinct name its own stream
// while staying deterministic for a fixed (Seed, name).
func probeSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64())
}

// CheckResidualDrift asks the residual corrector whether its rolling
// recent q-error has pulled away from the baseline and, if so, triggers a
// refit (bucket confidence halved so the corrector re-learns the shifted
// distribution quickly). Reports whether a refit ran; a Monitor without a
// corrector reports false.
func (m *Monitor) CheckResidualDrift() bool {
	if m.Residual == nil || !m.Residual.Drifted() {
		return false
	}
	m.Residual.Refit()
	return true
}

func (m *Monitor) threshold() float64 {
	if m.Threshold > 0 {
		return m.Threshold
	}
	return 100
}

func (m *Monitor) probes() int {
	if m.Probes > 0 {
		return m.Probes
	}
	return 20
}

// observeQError feeds one probe q-error into the estimator's shared
// q-error histogram, making Monitor sweeps visible in System.Metrics.
func (m *Monitor) observeQError(q float64) {
	if m.Est != nil && m.Est.Metrics != nil {
		m.Est.Metrics.QError.Observe(q)
	}
}

// TableReport summarizes one COUNT-model check.
type TableReport struct {
	Table    string
	QErrors  []float64
	Worst    float64
	Breached bool
	// Err records why this table's check could not complete (CheckAll
	// keeps sweeping the remaining tables).
	Err error
}

// probePreds draws 1..3 random predicates over a table's scalar columns
// with literals sampled from actual rows (so probes hit populated regions).
func probePreds(t *engineTable, rng *rand.Rand) []expr.Pred {
	n := 1 + rng.Intn(3)
	var preds []expr.Pred
	for i := 0; i < n; i++ {
		col := t.cols[rng.Intn(len(t.cols))]
		row := rng.Intn(t.tab.NumRows())
		val := t.tab.ColByName(col).Value(row)
		var op expr.CmpOp
		if val.K == types.KindString {
			op = expr.OpEq
		} else {
			op = []expr.CmpOp{expr.OpEq, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}[rng.Intn(5)]
		}
		preds = append(preds, expr.Pred{Table: t.name, Col: col, Op: op, Val: val})
	}
	return preds
}

type engineTable struct {
	name string
	tab  *storage.Table
	cols []string
}

// buildEngineTable adapts a storage table for probe generation, keeping
// only scalar columns.
func (m *Monitor) buildEngineTable(table string) (*engineTable, error) {
	t := m.Exec.DB.Table(table)
	if t == nil {
		return nil, fmt.Errorf("monitor: unknown table %q", table)
	}
	et := &engineTable{name: table, tab: t}
	for i := 0; i < t.NumCols(); i++ {
		if t.Col(i).Kind().Scalar() {
			et.cols = append(et.cols, t.Col(i).Name())
		}
	}
	if len(et.cols) == 0 {
		return nil, fmt.Errorf("monitor: table %q has no scalar columns", table)
	}
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("monitor: table %q is empty", table)
	}
	return et, nil
}

// predsToSQL renders probe predicates as a COUNT query.
func predsToSQL(table string, preds []expr.Pred, distinctCols []string) string {
	sql := "SELECT COUNT(*)"
	if len(distinctCols) > 0 {
		sql = "SELECT COUNT(DISTINCT "
		for i, c := range distinctCols {
			if i > 0 {
				sql += ", "
			}
			sql += table + "." + c
		}
		sql += ")"
	}
	sql += " FROM " + table
	for i, p := range preds {
		if i == 0 {
			sql += " WHERE "
		} else {
			sql += " AND "
		}
		sql += p.String()
	}
	return sql
}

// CheckTable probes one table's COUNT model. On breach the model is
// disabled and retraining is triggered.
func (m *Monitor) CheckTable(table string) (TableReport, error) {
	et, err := m.buildEngineTable(table)
	if err != nil {
		return TableReport{}, err
	}
	rng := rand.New(rand.NewSource(probeSeed(m.Seed, table)))
	rep := TableReport{Table: table}
	for i := 0; i < m.probes(); i++ {
		preds := probePreds(et, rng)
		sql := predsToSQL(table, preds, nil)
		truth, err := m.Exec.TrueCardinality(sql)
		if err != nil {
			return rep, fmt.Errorf("monitor: probe %q: %w", sql, err)
		}
		fv, err := m.Feat.FeaturizeSQLQuery(sql)
		if err != nil {
			return rep, err
		}
		est, err := m.Est.Estimate(fv)
		if err != nil {
			// A model that cannot even estimate is unhealthy.
			rep.Breached = true
			break
		}
		q := cardinal.QError(est, truth)
		m.observeQError(q)
		rep.QErrors = append(rep.QErrors, q)
		if q > rep.Worst {
			rep.Worst = q
		}
	}
	if rep.Worst > m.threshold() {
		rep.Breached = true
	}
	if rep.Breached {
		m.Infer.Admin().Disable("bn:" + table)
		if m.RetrainTable != nil {
			if err := m.RetrainTable(table); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// CheckAll probes every table's single-table COUNT model. One table's
// probe failure must not leave the rest of the fleet unmonitored: the
// sweep continues past errors, records each in its table's report, and
// returns them joined. When a residual corrector is wired, the sweep also
// checks its rolling-q-error drift signal and refits on breach.
func (m *Monitor) CheckAll() ([]TableReport, error) {
	m.CheckResidualDrift()
	var out []TableReport
	var errs []error
	// Sweep in name order, not insertion order, so reports (and the joined
	// error) are stable across runs regardless of how the catalog was built.
	tables := m.Exec.DB.TableNames()
	sort.Strings(tables)
	for _, table := range tables {
		rep, err := m.CheckTable(table)
		if err != nil {
			rep.Table = table
			rep.Err = err
			errs = append(errs, fmt.Errorf("monitor: table %s: %w", table, err))
		}
		out = append(out, rep)
	}
	return out, errors.Join(errs...)
}

// NDVReport summarizes one COUNT-DISTINCT check.
type NDVReport struct {
	Table, Column string
	QErrors       []float64
	Worst         float64
	Breached      bool
}

// CheckNDV probes RBX on one column (optionally under random filters). On
// breach the column is disabled for RBX and the calibration protocol is
// triggered with the collected (profile, truth) evidence.
func (m *Monitor) CheckNDV(table, column string) (NDVReport, error) {
	et, err := m.buildEngineTable(table)
	if err != nil {
		return NDVReport{}, err
	}
	rng := rand.New(rand.NewSource(probeSeed(m.Seed, table+"\x00"+column)))
	rep := NDVReport{Table: table, Column: column}
	key := table + "." + column
	frame := m.Est.Samples[table]
	var profiles []sample.Profile
	var truths []float64
	for i := 0; i < m.probes(); i++ {
		var preds []expr.Pred
		if i > 0 { // first probe is unfiltered
			preds = probePreds(et, rng)[:1]
		}
		sql := predsToSQL(table, preds, []string{column})
		res, err := m.Exec.Run(sql)
		if err != nil {
			return rep, fmt.Errorf("monitor: probe %q: %w", sql, err)
		}
		truth, err := res.ScalarInt()
		if err != nil {
			return rep, err
		}
		fv, err := m.Feat.FeaturizeSQLQuery(sql)
		if err != nil {
			return rep, err
		}
		est, err := m.Est.EstimateNDV(fv)
		if err != nil {
			rep.Breached = true
			break
		}
		q := cardinal.QError(est, float64(truth))
		m.observeQError(q)
		rep.QErrors = append(rep.QErrors, q)
		if q > rep.Worst {
			rep.Worst = q
		}
		if frame != nil {
			filtered := frame
			if len(preds) > 0 {
				node := expr.Leaf(preds[0])
				idx := map[string]int{}
				for ci, c := range frame.Columns() {
					idx[c] = ci
				}
				filtered = frame.Filter(func(row []types.Datum) bool {
					return node.Eval(func(_, col string) types.Datum { return row[idx[col]] })
				})
			}
			if filtered.Len() > 0 {
				profiles = append(profiles, filtered.ProfileOf(column))
				truths = append(truths, float64(truth))
			}
		}
	}
	if rep.Worst > m.threshold() {
		rep.Breached = true
	}
	if rep.Breached {
		m.Infer.Admin().Disable("rbx:" + key)
		if m.FineTuneNDV != nil && len(profiles) > 0 {
			if err := m.FineTuneNDV(key, profiles, truths); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// RevalidateNDV re-probes a disabled column and re-enables RBX for it when
// the calibrated parameters pass — the paper's "only integrate once the
// Model Monitor has validated the new parameters".
func (m *Monitor) RevalidateNDV(table, column string) (NDVReport, error) {
	key := table + "." + column
	m.Infer.Admin().Enable("rbx:" + key) // probe with the new parameters
	rep, err := m.CheckNDV(table, column)
	if err != nil {
		m.Infer.Admin().Disable("rbx:" + key)
		return rep, err
	}
	if rep.Breached {
		m.Infer.Admin().Disable("rbx:" + key)
	}
	return rep, nil
}
