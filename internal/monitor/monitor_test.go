package monitor

import (
	"testing"
	"time"

	"bytecard/internal/cardinal"
	"bytecard/internal/core"
	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/loader"
	"bytecard/internal/modelforge"
	"bytecard/internal/modelstore"
	"bytecard/internal/rbx"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

type fixture struct {
	mon   *Monitor
	infer *core.InferenceEngine
	forge *modelforge.Service
	ld    *loader.Loader
	ds    *datagen.Dataset
}

func setup(t *testing.T) *fixture {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 2, Seed: 71})
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forge := modelforge.New("toy", ds.DB, ds.Schema, store, modelforge.Config{
		SampleRows: 2000, BucketCount: 16,
		RBX:  rbx.TrainConfig{Columns: 120, Epochs: 6, MaxPop: 10000, Seed: 1},
		Seed: 1,
	})
	if _, err := forge.TrainAll(); err != nil {
		t.Fatal(err)
	}
	infer := core.NewInferenceEngine(core.Options{})
	ld := loader.New(store, infer)
	if _, err := ld.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator(infer, cardinal.NewSketchEstimator(ds.DB, 32))
	loader.LoadSamples(ds.DB, est, 2000, 3)
	exec := engine.New(ds.DB, ds.Schema, est)
	mon := &Monitor{
		Exec:  exec,
		Est:   est,
		Feat:  core.NewFeaturizer(ds.DB, ds.Schema),
		Infer: infer,
		Seed:  5,
	}
	return &fixture{mon: mon, infer: infer, forge: forge, ld: ld, ds: ds}
}

func TestHealthyModelPasses(t *testing.T) {
	f := setup(t)
	f.mon.Threshold = 50
	f.mon.Probes = 12
	rep, err := f.mon.CheckTable("fact")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Errorf("healthy model breached (worst q=%g)", rep.Worst)
	}
	if len(rep.QErrors) != 12 {
		t.Errorf("probes run = %d", len(rep.QErrors))
	}
	if f.infer.Disabled("bn:fact") {
		t.Error("healthy model must stay enabled")
	}
}

func TestCheckAllCoversEveryTable(t *testing.T) {
	f := setup(t)
	f.mon.Threshold = 1e9
	f.mon.Probes = 4
	reports, err := f.mon.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Errorf("reports = %d, want 2", len(reports))
	}
}

func TestCheckAllContinuesPastErrors(t *testing.T) {
	f := setup(t)
	// An empty table makes its probe generation fail; the sweep must
	// still cover the healthy tables and report the failure.
	f.ds.DB.Add(storage.NewBuilder("hollow", []storage.ColumnSpec{{Name: "x", Kind: types.KindInt64}}).Build())
	f.mon.Threshold = 1e9
	f.mon.Probes = 3
	reports, err := f.mon.CheckAll()
	if err == nil {
		t.Fatal("sweep must surface the empty table's error")
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3 (error tables included)", len(reports))
	}
	probed := 0
	for _, rep := range reports {
		if rep.Table == "hollow" {
			if rep.Err == nil {
				t.Error("hollow report must carry its error")
			}
			continue
		}
		if rep.Err != nil {
			t.Errorf("table %s unexpectedly errored: %v", rep.Table, rep.Err)
		}
		if len(rep.QErrors) == 3 {
			probed++
		}
	}
	if probed != 2 {
		t.Errorf("healthy tables fully probed = %d, want 2", probed)
	}
}

func TestBreachDisablesAndRetrains(t *testing.T) {
	f := setup(t)
	// An impossible threshold forces a breach.
	f.mon.Threshold = 1.0000001
	f.mon.Probes = 8
	retrained := ""
	f.mon.RetrainTable = func(table string) error {
		retrained = table
		_, err := f.forge.TrainTableAt(table, time.Now().Add(time.Hour))
		return err
	}
	rep, err := f.mon.CheckTable("fact")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Fatal("expected breach at threshold ~1")
	}
	if !f.infer.Disabled("bn:fact") {
		t.Error("breached model must be disabled")
	}
	if retrained != "fact" {
		t.Error("retrain hook not invoked")
	}
	// After reloading the retrained model, re-enabling restores service.
	if _, err := f.ld.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	f.infer.Enable("bn:fact")
	f.mon.Threshold = 100
	rep, err = f.mon.CheckTable("fact")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Errorf("retrained model still breaches (worst %g)", rep.Worst)
	}
}

func TestCheckNDVHealthy(t *testing.T) {
	f := setup(t)
	f.mon.Threshold = 100
	f.mon.Probes = 6
	rep, err := f.mon.CheckNDV("fact", "val")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Errorf("NDV check breached (worst %g, qerrors %v)", rep.Worst, rep.QErrors)
	}
}

func TestNDVBreachTriggersCalibration(t *testing.T) {
	f := setup(t)
	// Below the metric's floor of 1: every probe breaches, even when the
	// estimator is exact (the toy sample covers the whole population).
	f.mon.Threshold = 0.99
	f.mon.Probes = 5
	var gotColumn string
	var gotProfiles []sample.Profile
	f.mon.FineTuneNDV = func(column string, profiles []sample.Profile, truths []float64) error {
		gotColumn = column
		gotProfiles = profiles
		return f.forge.FineTuneRBX(column, profiles, truths, rbx.FineTuneConfig{
			Epochs: 2, HighNDVColumns: 20, Seed: 3,
		})
	}
	rep, err := f.mon.CheckNDV("fact", "val")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Fatal("expected NDV breach")
	}
	if !f.infer.Disabled("rbx:fact.val") {
		t.Error("breached column must be disabled for RBX")
	}
	if gotColumn != "fact.val" || len(gotProfiles) == 0 {
		t.Errorf("calibration evidence missing: col=%q profiles=%d", gotColumn, len(gotProfiles))
	}
	// Revalidation with a sane threshold re-enables the column.
	if _, err := f.ld.RefreshOnce(); err != nil {
		t.Fatal(err)
	}
	f.mon.Threshold = 1000
	rep, err = f.mon.RevalidateNDV("fact", "val")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Errorf("revalidation failed (worst %g)", rep.Worst)
	}
	if f.infer.Disabled("rbx:fact.val") {
		t.Error("revalidated column must be re-enabled")
	}
}

func TestCheckUnknownTable(t *testing.T) {
	f := setup(t)
	if _, err := f.mon.CheckTable("ghost"); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := f.mon.CheckNDV("ghost", "x"); err == nil {
		t.Error("unknown table must error for NDV checks")
	}
}
