package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Estimator operations a Span can describe.
const (
	OpFilter    = "filter"     // single-table filtered cardinality
	OpConj      = "conj"       // conjunction selectivity (column ordering)
	OpJoin      = "join"       // join-size estimation over a table subset
	OpJoinBatch = "join_batch" // one DP rank of join subsets in a batch
	OpGroupNDV  = "groupndv"   // group-key NDV estimation
	OpVector    = "vec"        // FactorJoin bucket-vector fetch (BN joint)
	OpCost      = "cost"       // learned cost-model prediction
	OpResidual  = "residual"   // residual correction applied to an estimate
)

// Planning-phase operations a Span can describe (recorded by the query
// engine's planner rather than an estimator).
const (
	OpPlanCache = "plan_cache" // template plan-cache hit replayed cached decisions
)

// Execution-phase operations a Span can describe (recorded by the query
// engine's executor rather than an estimator; Workers carries the
// morsel-driven parallelism the phase ran with).
const (
	OpExecScan     = "exec_scan"     // base-table scan (filter + materialization)
	OpExecJoin     = "exec_join"     // one hash-join step (build + probe)
	OpExecAgg      = "exec_agg"      // final aggregation (accumulate + merge)
	OpScanPushdown = "scan_pushdown" // pushed-down scan detail (Value = blocks zone-map skipped)
)

// Span outcomes. OutcomeOK and OutcomeClamped are successes; everything
// else names the guard or breaker verdict that forced the failure.
const (
	OutcomeOK          = "ok"
	OutcomeClamped     = "clamped"      // finite estimate pulled into bounds
	OutcomePanic       = "panic"        // model panicked, recovered by guard
	OutcomeTimeout     = "timeout"      // exceeded the guard latency budget
	OutcomeInvalid     = "invalid"      // NaN/Inf/negative estimate rejected
	OutcomeBreakerOpen = "breaker_open" // circuit breaker refused admission
	OutcomeDisabled    = "disabled"     // Model Monitor disabled the key
	OutcomeMissing     = "missing"      // no model loaded for the key
	OutcomeError       = "error"        // any other model failure
)

// Span is one step of an estimation trace: a guarded model call, a cache
// hit, or a fallback to the traditional estimator.
type Span struct {
	// Op is the estimator operation (Op* constants).
	Op string `json:"op"`
	// Tables lists the table bindings the operation covers.
	Tables []string `json:"tables,omitempty"`
	// Key is the model key consulted ("bn:<table>", "factorjoin", "rbx",
	// "costmodel"); empty for fallback spans.
	Key string `json:"key,omitempty"`
	// Source names what produced the value: "bn", "factorjoin", "rbx",
	// "costmodel", or the fallback estimator's name ("sketch", ...).
	Source string `json:"source"`
	// Outcome classifies the call (Outcome* constants).
	Outcome string `json:"outcome"`
	// Fallback marks spans served by the traditional estimator after a
	// model failure.
	Fallback bool `json:"fallback,omitempty"`
	// CacheHit marks join-vector cache hits.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Workers is the parallelism an execution-phase or batch span ran with
	// (0 for single-call estimator spans).
	Workers int `json:"workers,omitempty"`
	// Sources lists the per-item answer source of a batch span (aligned
	// with the batch's items), replacing the per-call Source attribution a
	// sequential span would carry.
	Sources []string `json:"sources,omitempty"`
	// Value is the produced estimate (selectivity, rows, or NDV depending
	// on Op); zero for failed spans.
	Value float64 `json:"value"`
	// Err is the failure message for non-ok outcomes.
	Err string `json:"err,omitempty"`
	// Duration is the wall time of this step.
	Duration time.Duration `json:"duration_ns"`
}

// String renders one span compactly for logs and EXPLAIN output.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", s.Op, strings.Join(s.Tables, ","))
	fmt.Fprintf(&b, " source=%s outcome=%s", s.Source, s.Outcome)
	if s.Fallback {
		b.WriteString(" fallback")
	}
	if s.CacheHit {
		b.WriteString(" cache-hit")
	}
	if s.Workers > 0 {
		fmt.Fprintf(&b, " workers=%d", s.Workers)
	}
	if len(s.Sources) > 0 {
		fmt.Fprintf(&b, " sources=[%s]", strings.Join(s.Sources, ","))
	}
	fmt.Fprintf(&b, " value=%g dur=%s", s.Value, s.Duration)
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	return b.String()
}

// Trace collects the spans of one estimation request or one planning pass.
// All methods are safe on a nil receiver — a nil *Trace is the disabled
// collector, so estimator code records unconditionally and production
// paths that never asked for a trace pay only a nil check.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty, active trace.
func NewTrace() *Trace { return &Trace{} }

// Active reports whether spans are being collected (false on nil).
func (t *Trace) Active() bool { return t != nil }

// Add appends one span; no-op on a nil trace.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the collected spans in record order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len returns the span count.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Fallback reports whether any span was served by the traditional
// estimator.
func (t *Trace) Fallback() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Fallback {
			return true
		}
	}
	return false
}

// Source returns the source of the last value-producing span, skipping
// interior helper spans (bucket-vector fetches and failed attempts). Empty
// when nothing succeeded.
func (t *Trace) Source() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		s := t.spans[i]
		if s.Op == OpVector {
			continue
		}
		if s.Outcome == OutcomeOK || s.Outcome == OutcomeClamped {
			return s.Source
		}
	}
	return ""
}

// Outcomes returns the set of non-ok outcomes observed (sorted, deduped) —
// the guard verdicts behind any fallback.
func (t *Trace) Outcomes() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, s := range t.spans {
		if s.Outcome == OutcomeOK || seen[s.Outcome] {
			continue
		}
		seen[s.Outcome] = true
		out = append(out, s.Outcome)
	}
	sort.Strings(out)
	return out
}
