// Package obs is ByteCard's estimation-observability layer: lock-free
// counters and log-bucketed histograms for steady-state metrics, and
// per-query Traces recording how each cardinality estimate was produced —
// which model answered, what the guard and circuit breakers did, and how
// long inference took. The ModelForge/Monitor loop of the paper only works
// in production because every estimate is attributable and every q-error
// measurable; this package is that substrate.
//
// Everything here is allocation-light and safe for concurrent use: query
// threads update counters with single atomic adds, and a nil *Trace is a
// valid no-op collector so the hot path pays nothing when tracing is off.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (resident cache bytes, entry
// counts) — unlike Counter it moves in both directions.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative n decrements).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// QError is the standard cardinality-estimation error metric:
// max(est/true, true/est) with both quantities floored at one row, so its
// theoretical lower bound is 1. It mirrors cardinal.QError; obs keeps its
// own copy because the engine (which cardinal depends on) records q-errors
// too, and the metric definition must not move for an import edge.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// histBuckets is the histogram resolution: bucket 0 holds values in [0, 1],
// bucket i>0 holds (2^(i-1), 2^i]. 64 buckets cover every finite positive
// value a latency (nanoseconds) or q-error can take.
const histBuckets = 64

// Histogram is a concurrent log2-bucketed histogram of positive values.
// Observe is wait-free on the bucket array; Sum and Max use short CAS
// loops. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// bucketIndex maps v to its log2 bucket (values ≤ 1 land in bucket 0).
func bucketIndex(v float64) int {
	if v <= 1 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets - 1
	}
	e := math.Ilogb(v) // floor(log2 v), ≥ 0 here
	idx := e
	if v > math.Exp2(float64(e)) {
		idx = e + 1 // interior of (2^e, 2^(e+1)]
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one value. Negative and NaN observations are counted in
// bucket 0 rather than dropped, so Count always equals the observation
// count.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Mean returns the running mean of all observations (0 when empty). It
// reads two atomics — cheap enough for per-batch decisions on the hot
// path, unlike Snapshot which walks every bucket for quantiles.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// HistogramSnapshot is a serializable point-in-time digest of a Histogram.
// Quantiles are upper bounds of the log2 bucket containing the rank, i.e.
// accurate to a factor of two — enough to spot drift, cheap enough for the
// hot path to feed.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Exp2(float64(i))
}

// Snapshot digests the histogram. Concurrent Observe calls may tear
// Count/Sum slightly; the digest is monitoring-grade, not transactional.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	quantile := func(q float64) float64 {
		rank := int64(math.Ceil(q * float64(s.Count)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += h.buckets[i].Load()
			if cum >= rank {
				return bucketBound(i)
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	return s
}

// LabeledCounter is a small dynamic counter family keyed by string label
// (e.g. estimate source: "bn", "factorjoin", "rbx", "sketch"). It takes a
// mutex per update; labels are few and updates are per-estimate, not
// per-row, so contention is negligible.
type LabeledCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments label by n.
func (c *LabeledCounter) Add(label string, n int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[label] += n
	c.mu.Unlock()
}

// Snapshot returns a copy of the counts.
func (c *LabeledCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Labels returns the sorted label set (test and report helper).
func (c *LabeledCounter) Labels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
