package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{100, 100, 1},
		{200, 100, 2},
		{100, 200, 2},
		{0, 100, 100},  // estimate floored at 1
		{100, 0, 100},  // truth floored at 1
		{0.5, 0.25, 1}, // both floored
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); got != c.want {
			t.Errorf("QError(%g, %g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-5, 0},
		{1, 0},
		{1.5, 1},
		{2, 1},
		{2.1, 2},
		{4, 2},
		{1024, 10},
		{1025, 11},
		{math.NaN(), 0},
		{math.Inf(1), histBuckets - 1},
		{math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 15 {
		t.Errorf("sum = %g, want 15", s.Sum)
	}
	if s.Mean != 3.75 {
		t.Errorf("mean = %g, want 3.75", s.Mean)
	}
	if s.Max != 8 {
		t.Errorf("max = %g, want 8", s.Max)
	}
	// Quantiles are bucket upper bounds: rank 2 of 4 lands in bucket 1
	// (value 2), rank 4 in bucket 3 (value 8).
	if s.P50 != 2 {
		t.Errorf("p50 = %g, want 2", s.P50)
	}
	if s.P99 != 8 {
		t.Errorf("p99 = %g, want 8", s.P99)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot not serializable: %v", err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Errorf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Max != 99 {
		t.Errorf("max = %g, want 99", s.Max)
	}
}

func TestLabeledCounter(t *testing.T) {
	var c LabeledCounter
	c.Add("bn", 2)
	c.Add("sketch", 1)
	c.Add("bn", 1)
	snap := c.Snapshot()
	if snap["bn"] != 3 || snap["sketch"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "bn" || labels[1] != "sketch" {
		t.Errorf("labels = %v", labels)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Active() {
		t.Error("nil trace reports active")
	}
	tr.Add(Span{Op: OpFilter}) // must not panic
	if tr.Len() != 0 || tr.Spans() != nil || tr.Fallback() || tr.Source() != "" || tr.Outcomes() != nil {
		t.Error("nil trace leaked state")
	}
}

func TestTraceSourceAndOutcomes(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Op: OpVector, Source: "bn", Outcome: OutcomeOK, CacheHit: true})
	tr.Add(Span{Op: OpFilter, Source: "bn", Outcome: OutcomePanic, Err: "boom"})
	tr.Add(Span{Op: OpFilter, Source: "sketch", Outcome: OutcomeOK, Fallback: true, Value: 42})
	if got := tr.Source(); got != "sketch" {
		t.Errorf("Source() = %q, want sketch", got)
	}
	if !tr.Fallback() {
		t.Error("Fallback() = false with a fallback span")
	}
	out := tr.Outcomes()
	if len(out) != 1 || out[0] != OutcomePanic {
		t.Errorf("Outcomes() = %v, want [panic]", out)
	}

	// Vector spans are interior: they never claim Source even when last.
	tr2 := NewTrace()
	tr2.Add(Span{Op: OpJoin, Source: "factorjoin", Outcome: OutcomeClamped, Value: 10})
	tr2.Add(Span{Op: OpVector, Source: "bn", Outcome: OutcomeOK})
	if got := tr2.Source(); got != "factorjoin" {
		t.Errorf("Source() = %q, want factorjoin (clamped counts as success)", got)
	}

	// Nothing succeeded: no source.
	tr3 := NewTrace()
	tr3.Add(Span{Op: OpFilter, Source: "bn", Outcome: OutcomeTimeout})
	if got := tr3.Source(); got != "" {
		t.Errorf("Source() = %q, want empty", got)
	}
}
