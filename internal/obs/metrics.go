package obs

// EstimatorMetrics is the shared counter block of one core.Estimator and
// every traced/strict view derived from it. Query threads update it with
// atomic adds; Snapshot serializes it for System.Metrics.
type EstimatorMetrics struct {
	// Calls counts estimate requests; Fallbacks counts requests served by
	// the traditional estimator after a model failure.
	Calls, Fallbacks Counter
	// ModelCalls counts guarded model invocations (several per request);
	// ModelFailures counts the ones the guard or breaker rejected.
	ModelCalls, ModelFailures Counter
	// CacheHits/CacheMisses/CacheEvictions cover the join-vector cache.
	CacheHits, CacheMisses, CacheEvictions Counter
	// ModelLatency is the guarded model-call latency in nanoseconds.
	ModelLatency Histogram
	// QError holds observed q-errors wherever ground truth is available
	// (Model Monitor probes, executed plans).
	QError Histogram
	// Sources counts value-producing estimates by source ("bn",
	// "factorjoin", "rbx", "costmodel", fallback estimator names).
	Sources LabeledCounter
}

// NewEstimatorMetrics returns a zeroed metrics block.
func NewEstimatorMetrics() *EstimatorMetrics { return &EstimatorMetrics{} }

// EstimatorSnapshot is the serializable digest of EstimatorMetrics.
type EstimatorSnapshot struct {
	Calls          int64             `json:"calls"`
	Fallbacks      int64             `json:"fallbacks"`
	ModelCalls     int64             `json:"model_calls"`
	ModelFailures  int64             `json:"model_failures"`
	CacheHits      int64             `json:"cache_hits"`
	CacheMisses    int64             `json:"cache_misses"`
	CacheEvictions int64             `json:"cache_evictions"`
	ModelLatencyNs HistogramSnapshot `json:"model_latency_ns"`
	QError         HistogramSnapshot `json:"q_error"`
	Sources        map[string]int64  `json:"sources"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *EstimatorMetrics) Snapshot() EstimatorSnapshot {
	if m == nil {
		return EstimatorSnapshot{Sources: map[string]int64{}}
	}
	return EstimatorSnapshot{
		Calls:          m.Calls.Load(),
		Fallbacks:      m.Fallbacks.Load(),
		ModelCalls:     m.ModelCalls.Load(),
		ModelFailures:  m.ModelFailures.Load(),
		CacheHits:      m.CacheHits.Load(),
		CacheMisses:    m.CacheMisses.Load(),
		CacheEvictions: m.CacheEvictions.Load(),
		ModelLatencyNs: m.ModelLatency.Snapshot(),
		QError:         m.QError.Snapshot(),
		Sources:        m.Sources.Snapshot(),
	}
}

// CacheMetrics is the uniform counter block for ByteCard's derived
// caches — the template-keyed plan cache and the join-vector cache. Both
// hold values derived from loaded model state, so alongside the usual
// hit/miss/eviction counters they count Invalidations: entries dropped
// because a model retrain/ingest made them stale, the event that
// distinguishes "cache too small" (evictions) from "models churning"
// (invalidations). Bytes and Entries are gauges tracking residency
// against the byte bound.
type CacheMetrics struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses Counter
	// Evictions counts entries dropped for capacity (LRU order);
	// Invalidations counts entries dropped because model state changed.
	Evictions, Invalidations Counter
	// Bytes and Entries track current residency.
	Bytes, Entries Gauge
}

// CacheSnapshot is the serializable digest of CacheMetrics.
type CacheSnapshot struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Bytes         int64 `json:"bytes"`
	Entries       int64 `json:"entries"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *CacheMetrics) Snapshot() CacheSnapshot {
	if m == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		Hits:          m.Hits.Load(),
		Misses:        m.Misses.Load(),
		Evictions:     m.Evictions.Load(),
		Invalidations: m.Invalidations.Load(),
		Bytes:         m.Bytes.Load(),
		Entries:       m.Entries.Load(),
	}
}

// TrainMetrics aggregates ModelForge training observability: how many
// pipelines and per-table trainings ran, and where each training's wall
// time went stage by stage — BN structure learning (the pairwise-MI matrix
// plus the Chow-Liu spanning tree), BN parameter learning (CPT counting
// plus the EM sweeps), and the FactorJoin bucket build. Per-stage timings
// are what make training regressions attributable: a slow retrain shows up
// as one histogram moving, not just a bigger total.
type TrainMetrics struct {
	// Runs counts full TrainAll pipelines; TablesTrained counts BN models
	// trained (one per table, or per shard where sharded), including
	// ingest-triggered retrains.
	Runs, TablesTrained Counter
	// StructureSeconds and ParamSeconds are per-BN stage wall times.
	StructureSeconds, ParamSeconds Histogram
	// FactorJoinSeconds is the join-bucket build wall time per preprocessor
	// run.
	FactorJoinSeconds Histogram
}

// NewTrainMetrics returns a zeroed metrics block.
func NewTrainMetrics() *TrainMetrics { return &TrainMetrics{} }

// TrainSnapshot is the serializable digest of TrainMetrics.
type TrainSnapshot struct {
	Runs              int64             `json:"runs"`
	TablesTrained     int64             `json:"tables_trained"`
	StructureSeconds  HistogramSnapshot `json:"structure_seconds"`
	ParamSeconds      HistogramSnapshot `json:"param_seconds"`
	FactorJoinSeconds HistogramSnapshot `json:"factorjoin_seconds"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *TrainMetrics) Snapshot() TrainSnapshot {
	if m == nil {
		return TrainSnapshot{}
	}
	return TrainSnapshot{
		Runs:              m.Runs.Load(),
		TablesTrained:     m.TablesTrained.Load(),
		StructureSeconds:  m.StructureSeconds.Snapshot(),
		ParamSeconds:      m.ParamSeconds.Snapshot(),
		FactorJoinSeconds: m.FactorJoinSeconds.Snapshot(),
	}
}

// StoreMetrics aggregates model-store durability observability: how often
// artifacts were written and read, and every corruption event the store's
// checksum layer caught. A store that is quarantining generations and
// serving last-known-good fallbacks still works — but it is running on
// stale models, and these counters are how the Monitor sees that.
type StoreMetrics struct {
	// Puts counts committed artifact writes; Gets counts artifact reads.
	Puts, Gets Counter
	// Corruptions counts generations that failed verification on read
	// (checksum mismatch, truncation, or an unreadable payload file).
	Corruptions Counter
	// Quarantines counts generations moved aside after failing
	// verification (one corruption may quarantine several generations).
	Quarantines Counter
	// Fallbacks counts Gets served by an older generation because a newer
	// one was quarantined — the store running on stale models.
	Fallbacks Counter
	// BadManifests counts manifests that could not be parsed and were
	// quarantined during a directory scan.
	BadManifests Counter
}

// NewStoreMetrics returns a zeroed metrics block.
func NewStoreMetrics() *StoreMetrics { return &StoreMetrics{} }

// StoreSnapshot is the serializable digest of StoreMetrics.
type StoreSnapshot struct {
	Puts         int64 `json:"puts"`
	Gets         int64 `json:"gets"`
	Corruptions  int64 `json:"corruptions"`
	Quarantines  int64 `json:"quarantines"`
	Fallbacks    int64 `json:"fallbacks"`
	BadManifests int64 `json:"bad_manifests"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *StoreMetrics) Snapshot() StoreSnapshot {
	if m == nil {
		return StoreSnapshot{}
	}
	return StoreSnapshot{
		Puts:         m.Puts.Load(),
		Gets:         m.Gets.Load(),
		Corruptions:  m.Corruptions.Load(),
		Quarantines:  m.Quarantines.Load(),
		Fallbacks:    m.Fallbacks.Load(),
		BadManifests: m.BadManifests.Load(),
	}
}

// ResidualMetrics aggregates residual-corrector observability: how often a
// learned correction was applied versus skipped (no confident bucket yet),
// how many executed-truth tuples the corrector has absorbed, how many
// drift-triggered refits the Monitor ran, the magnitude of applied
// correction factors, and the q-error of the raw estimate against truth
// (PreQError) next to the q-error of the corrected estimate the planner
// actually used (PostQError) — the pair that shows whether the corrector
// is helping.
type ResidualMetrics struct {
	// Applications counts estimates multiplied by a learned factor;
	// Skipped counts lookups answered without correction (bucket missing
	// or below the observation floor).
	Applications, Skipped Counter
	// Observations counts (estimate, executed truth) tuples absorbed.
	Observations Counter
	// Refits counts drift-triggered refits (bucket confidence halved).
	Refits Counter
	// FactorMagnitude holds max(f, 1/f) of each applied correction factor
	// (the histogram's log buckets collapse everything <= 1 into bucket 0,
	// so shrink factors are folded onto the same magnitude axis as growth
	// factors).
	FactorMagnitude Histogram
	// PreQError and PostQError compare the uncorrected and corrected
	// estimate against the same executed truth.
	PreQError, PostQError Histogram
}

// NewResidualMetrics returns a zeroed metrics block.
func NewResidualMetrics() *ResidualMetrics { return &ResidualMetrics{} }

// ResidualSnapshot is the serializable digest of ResidualMetrics.
type ResidualSnapshot struct {
	Applications    int64             `json:"applications"`
	Skipped         int64             `json:"skipped"`
	Observations    int64             `json:"observations"`
	Refits          int64             `json:"refits"`
	FactorMagnitude HistogramSnapshot `json:"factor_magnitude"`
	PreQError       HistogramSnapshot `json:"pre_q_error"`
	PostQError      HistogramSnapshot `json:"post_q_error"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *ResidualMetrics) Snapshot() ResidualSnapshot {
	if m == nil {
		return ResidualSnapshot{}
	}
	return ResidualSnapshot{
		Applications:    m.Applications.Load(),
		Skipped:         m.Skipped.Load(),
		Observations:    m.Observations.Load(),
		Refits:          m.Refits.Load(),
		FactorMagnitude: m.FactorMagnitude.Snapshot(),
		PreQError:       m.PreQError.Snapshot(),
		PostQError:      m.PostQError.Snapshot(),
	}
}

// EngineMetrics aggregates query-engine observability: volumes, planning
// and execution latency, and the q-error of the optimizer's final-plan
// cardinality against the executed truth.
type EngineMetrics struct {
	// Queries counts executed statements.
	Queries Counter
	// PlanLatency and ExecLatency are per-query nanosecond histograms.
	PlanLatency, ExecLatency Histogram
	// PlanQError compares each plan's estimated final cardinality with the
	// exact joined cardinality the executor observed.
	PlanQError Histogram
	// BlocksRead and BlocksSkipped accumulate per-query block I/O: blocks
	// charged by scans versus blocks zone-map pruning skipped without
	// reading (the pushdown scan contract's headline observable).
	BlocksRead, BlocksSkipped Counter
}

// NewEngineMetrics returns a zeroed metrics block.
func NewEngineMetrics() *EngineMetrics { return &EngineMetrics{} }

// EngineSnapshot is the serializable digest of EngineMetrics.
type EngineSnapshot struct {
	Queries       int64             `json:"queries"`
	PlanLatencyNs HistogramSnapshot `json:"plan_latency_ns"`
	ExecLatencyNs HistogramSnapshot `json:"exec_latency_ns"`
	PlanQError    HistogramSnapshot `json:"plan_q_error"`
	BlocksRead    int64             `json:"blocks_read"`
	BlocksSkipped int64             `json:"blocks_skipped"`
}

// Snapshot digests the metrics block (nil-safe: returns zeroes).
func (m *EngineMetrics) Snapshot() EngineSnapshot {
	if m == nil {
		return EngineSnapshot{}
	}
	return EngineSnapshot{
		Queries:       m.Queries.Load(),
		PlanLatencyNs: m.PlanLatency.Snapshot(),
		ExecLatencyNs: m.ExecLatency.Snapshot(),
		PlanQError:    m.PlanQError.Snapshot(),
		BlocksRead:    m.BlocksRead.Load(),
		BlocksSkipped: m.BlocksSkipped.Load(),
	}
}
