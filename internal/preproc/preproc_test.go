package preproc

import (
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/types"
)

func TestRunExcludesComplexTypes(t *testing.T) {
	ds := datagen.AEOLUS(datagen.Config{Scale: 0.01, Seed: 1})
	res, err := Run(ds.DB, ds.Schema, Config{BucketCount: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range res.Selected["ads"] {
		if col == "audience_tags" {
			t.Error("array column must be excluded from training")
		}
	}
	var foundExcluded bool
	for _, info := range res.Info {
		if info.Table == "ads" && info.Column == "audience_tags" {
			foundExcluded = true
			if info.Selected || info.MLType != types.MLUnsupported {
				t.Errorf("audience_tags info = %+v", info)
			}
		}
	}
	if !foundExcluded {
		t.Error("model_preprocessor_info must record the excluded column")
	}
	if meta := ds.Schema.Table("ads").Column("audience_tags"); meta == nil || !meta.Excluded {
		t.Error("catalog must mark the column excluded")
	}
}

func TestRunTypeMapping(t *testing.T) {
	ds := datagen.AEOLUS(datagen.Config{Scale: 0.02, Seed: 2})
	if _, err := Run(ds.DB, ds.Schema, Config{BucketCount: 20}); err != nil {
		t.Fatal(err)
	}
	// target_platform has 5 distinct values → categorical.
	if got := ds.Schema.Table("ads").Column("target_platform").MLType; got != types.MLCategorical {
		t.Errorf("target_platform mapped to %s, want Categorical", got)
	}
	// ad_events.session_id is near-unique → continuous.
	if got := ds.Schema.Table("ad_events").Column("session_id").MLType; got != types.MLContinuous {
		t.Errorf("session_id mapped to %s, want Continuous", got)
	}
	// NDV must be profiled.
	if ndv := ds.Schema.Table("ads").Column("target_platform").NDV; ndv < 3 || ndv > 8 {
		t.Errorf("target_platform NDV = %d, want ~5", ndv)
	}
}

func TestRunBuildsJoinBuckets(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 3})
	res, err := Run(ds.DB, ds.Schema, Config{BucketCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets == nil {
		t.Fatal("join buckets must be built from collected patterns")
	}
	if _, ok := res.Buckets.BoundsFor("fact", "dim_id"); !ok {
		t.Error("fact.dim_id must have bucket bounds")
	}
	if err := res.Buckets.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunSystemTable(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 4})
	if _, err := Run(ds.DB, ds.Schema, Config{BucketCount: 8}); err != nil {
		t.Fatal(err)
	}
	rows := ds.Schema.PreprocInfoRows()
	// Toy has 2+4 = 6 scalar columns.
	if len(rows) != 6 {
		t.Errorf("model_preprocessor_info rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Selected {
			t.Errorf("column %s.%s unexpectedly excluded", r.Table, r.Column)
		}
	}
}

func TestRunNilSchema(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 5})
	if _, err := Run(ds.DB, nil, Config{}); err == nil {
		t.Error("nil schema must error")
	}
}
