// Package preproc implements the Model Preprocessor: column selection
// (excluding complex types the CardEst models cannot consume), the
// preliminary type mapping recorded in the model_preprocessor_info system
// table, join-pattern-driven join-bucket construction for FactorJoin, and
// the per-column NDV profiling type mapping depends on.
package preproc

import (
	"fmt"

	"bytecard/internal/catalog"
	"bytecard/internal/factorjoin"
	"bytecard/internal/hll"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// Result is the preprocessor's output: the updated catalog rows, the
// per-table training column lists, and the FactorJoin bucket model.
type Result struct {
	// Selected maps table → trainable column names, in declaration order.
	Selected map[string][]string
	// Buckets is the constructed join-bucket model (nil when the schema
	// records no join patterns).
	Buckets *factorjoin.Model
	// Info mirrors the model_preprocessor_info system table rows.
	Info []catalog.PreprocInfo
}

// Config controls preprocessing.
type Config struct {
	// BucketCount sizes FactorJoin's join buckets (default 200).
	BucketCount int
	// Workers bounds the FactorJoin build's worker pool (default 1). The
	// built model is byte-identical for every worker count.
	Workers int
}

// Run profiles every table, fills the model_preprocessor_info system
// table, and constructs join buckets from the schema's collected join
// patterns.
func Run(db *storage.Database, schema *catalog.Schema, cfg Config) (*Result, error) {
	if schema == nil {
		return nil, fmt.Errorf("preproc: nil schema")
	}
	res := &Result{Selected: map[string][]string{}}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		meta := schema.Table(name)
		if meta == nil {
			return nil, fmt.Errorf("preproc: table %s missing from catalog", name)
		}
		for i := 0; i < t.NumCols(); i++ {
			col := t.Col(i)
			info := catalog.PreprocInfo{Table: name, Column: col.Name(), DBType: col.Kind()}
			if !col.Kind().Scalar() {
				info.MLType = types.MLUnsupported
				info.Selected = false
				res.Info = append(res.Info, info)
				markColumn(meta, col.Name(), info.MLType, true, 0)
				continue
			}
			ndv := profileNDV(col)
			info.MLType = types.MapToML(col.Kind(), ndv)
			info.Selected = true
			res.Info = append(res.Info, info)
			res.Selected[name] = append(res.Selected[name], col.Name())
			markColumn(meta, col.Name(), info.MLType, false, ndv)
		}
	}
	schema.SetPreprocInfo(res.Info)

	// Join-bucket construction from the collected join patterns.
	classes := schema.JoinClasses()
	if len(classes) > 0 {
		buckets, err := factorjoin.BuildWorkers(db, classes, cfg.BucketCount, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("preproc: join-bucket construction: %w", err)
		}
		res.Buckets = buckets
	}
	return res, nil
}

// profileNDV estimates a column's distinct count with HyperLogLog.
func profileNDV(col *storage.Column) int64 {
	sk := hll.MustNew(12)
	for i := 0; i < col.Len(); i++ {
		sk.Add(col.Value(i).Hash64())
	}
	return int64(sk.Estimate())
}

func markColumn(meta *catalog.TableMeta, name string, ml types.MLType, excluded bool, ndv int64) {
	if c := meta.Column(name); c != nil {
		c.MLType = ml
		c.Excluded = excluded
		c.NDV = ndv
	}
}
