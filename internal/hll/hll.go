// Package hll implements HyperLogLog, the sketch-based distinct-count
// estimator used by the warehouse's traditional NDV path. It follows the
// standard construction (Flajolet et al.) with linear-counting correction in
// the small range, the regime the paper criticizes for sampled and rapidly
// updated data.
package hll

import (
	"errors"
	"math"
)

// Sketch is a HyperLogLog sketch with 2^precision registers.
type Sketch struct {
	precision uint8
	registers []uint8
}

// MinPrecision and MaxPrecision bound the register-count exponent.
const (
	MinPrecision = 4
	MaxPrecision = 18
)

// New creates a sketch with 2^precision registers. Precision 14 (16384
// registers, ~0.8% standard error) is a common production default.
func New(precision uint8) (*Sketch, error) {
	if precision < MinPrecision || precision > MaxPrecision {
		return nil, errors.New("hll: precision out of range [4,18]")
	}
	return &Sketch{precision: precision, registers: make([]uint8, 1<<precision)}, nil
}

// MustNew is New for known-good precisions; it panics on error.
func MustNew(precision uint8) *Sketch {
	s, err := New(precision)
	if err != nil {
		panic(err)
	}
	return s
}

// Add registers a 64-bit hash of one element.
func (s *Sketch) Add(hash uint64) {
	idx := hash >> (64 - s.precision)
	rest := hash<<s.precision | 1<<(s.precision-1) // sentinel bit avoids rho(0)
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > s.registers[idx] {
		s.registers[idx] = rho
	}
}

// alpha returns the bias-correction constant for m registers.
func alpha(m float64) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/m)
	}
}

// Estimate returns the estimated number of distinct elements added.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.registers))
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / math.Pow(2, float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(m) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting for the small range.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into s. Both sketches must share a precision.
func (s *Sketch) Merge(other *Sketch) error {
	if other.precision != s.precision {
		return errors.New("hll: precision mismatch")
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// SizeBytes reports the in-memory size of the register array.
func (s *Sketch) SizeBytes() int { return len(s.registers) }

// Reset clears all registers.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}
