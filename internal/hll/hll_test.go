package hll

import (
	"math"
	"testing"

	"bytecard/internal/types"
)

func TestNewPrecisionBounds(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("precision 3 must be rejected")
	}
	if _, err := New(19); err == nil {
		t.Error("precision 19 must be rejected")
	}
	if _, err := New(14); err != nil {
		t.Errorf("precision 14 rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) must panic")
		}
	}()
	MustNew(0)
}

func TestEstimateAccuracyLarge(t *testing.T) {
	s := MustNew(14)
	const n = 200000
	for i := 0; i < n; i++ {
		s.Add(types.Int(int64(i)).Hash64())
	}
	est := s.Estimate()
	relErr := math.Abs(est-n) / n
	if relErr > 0.03 {
		t.Errorf("estimate %g for %d distinct, rel err %g > 3%%", est, n, relErr)
	}
}

func TestEstimateAccuracySmall(t *testing.T) {
	s := MustNew(14)
	for i := 0; i < 100; i++ {
		s.Add(types.Int(int64(i)).Hash64())
	}
	est := s.Estimate()
	if math.Abs(est-100) > 5 {
		t.Errorf("small-range estimate %g, want ~100 (linear counting)", est)
	}
}

func TestEstimateDuplicatesIgnored(t *testing.T) {
	s := MustNew(12)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 1000; i++ {
			s.Add(types.Int(int64(i)).Hash64())
		}
	}
	est := s.Estimate()
	if math.Abs(est-1000)/1000 > 0.05 {
		t.Errorf("estimate %g, want ~1000 despite duplicates", est)
	}
}

func TestEmptySketch(t *testing.T) {
	s := MustNew(10)
	if est := s.Estimate(); est != 0 {
		t.Errorf("empty sketch estimate %g, want 0", est)
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(12), MustNew(12)
	for i := 0; i < 5000; i++ {
		a.Add(types.Int(int64(i)).Hash64())
	}
	for i := 2500; i < 10000; i++ {
		b.Add(types.Int(int64(i)).Hash64())
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := a.Estimate()
	if math.Abs(est-10000)/10000 > 0.05 {
		t.Errorf("merged estimate %g, want ~10000", est)
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := MustNew(10), MustNew(12)
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched precisions must fail")
	}
}

func TestReset(t *testing.T) {
	s := MustNew(10)
	for i := 0; i < 1000; i++ {
		s.Add(types.Int(int64(i)).Hash64())
	}
	s.Reset()
	if s.Estimate() != 0 {
		t.Error("reset sketch must estimate 0")
	}
}

func TestSizeBytes(t *testing.T) {
	if MustNew(10).SizeBytes() != 1024 {
		t.Error("precision 10 must use 1024 registers")
	}
}
