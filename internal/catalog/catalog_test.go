package catalog

import (
	"testing"

	"bytecard/internal/types"
)

func twoTableSchema() *Schema {
	s := NewSchema()
	s.AddTable(&TableMeta{
		Name: "orders",
		Columns: []ColumnMeta{
			{Name: "id", Kind: types.KindInt64},
			{Name: "user_id", Kind: types.KindInt64},
			{Name: "tags", Kind: types.KindArray},
		},
		RowCount: 1000,
	})
	s.AddTable(&TableMeta{
		Name: "users",
		Columns: []ColumnMeta{
			{Name: "id", Kind: types.KindInt64},
			{Name: "name", Kind: types.KindString},
		},
		RowCount: 100,
	})
	return s
}

func TestSchemaTables(t *testing.T) {
	s := twoTableSchema()
	if s.Table("orders") == nil || s.Table("nope") != nil {
		t.Error("Table lookup broken")
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "orders" {
		t.Errorf("TableNames = %v", names)
	}
	if s.Table("users").Column("name") == nil || s.Table("users").Column("zz") != nil {
		t.Error("Column lookup broken")
	}
}

func TestAddTableReplaces(t *testing.T) {
	s := twoTableSchema()
	s.AddTable(&TableMeta{Name: "users", RowCount: 5})
	if len(s.TableNames()) != 2 || s.Table("users").RowCount != 5 {
		t.Error("replacement broken")
	}
}

func TestJoinPatternDedup(t *testing.T) {
	s := twoTableSchema()
	p := JoinPattern{
		Left:  ColumnRef{Table: "orders", Column: "user_id"},
		Right: ColumnRef{Table: "users", Column: "id"},
	}
	s.AddJoinPattern(p)
	s.AddJoinPattern(p)
	s.AddJoinPattern(JoinPattern{Left: p.Right, Right: p.Left}) // reversed
	if got := len(s.JoinPatterns()); got != 1 {
		t.Errorf("join patterns = %d, want 1 after dedup", got)
	}
}

func TestJoinClassesTransitive(t *testing.T) {
	s := NewSchema()
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		s.AddTable(&TableMeta{Name: name, Columns: []ColumnMeta{{Name: "k", Kind: types.KindInt64}, {Name: "j", Kind: types.KindInt64}}})
	}
	ref := func(t, c string) ColumnRef { return ColumnRef{Table: t, Column: c} }
	// a.k = b.k, b.k = c.k → one class {a.k, b.k, c.k}
	s.AddJoinPattern(JoinPattern{Left: ref("a", "k"), Right: ref("b", "k")})
	s.AddJoinPattern(JoinPattern{Left: ref("b", "k"), Right: ref("c", "k")})
	// d.j = e.j → separate class
	s.AddJoinPattern(JoinPattern{Left: ref("d", "j"), Right: ref("e", "j")})
	classes := s.JoinClasses()
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	var big JoinClass
	for _, c := range classes {
		if len(c.Members) == 3 {
			big = c
		}
	}
	for _, m := range []ColumnRef{ref("a", "k"), ref("b", "k"), ref("c", "k")} {
		if !big.Contains(m) {
			t.Errorf("class missing %s", m)
		}
	}
	if big.Contains(ref("d", "j")) {
		t.Error("class must not contain d.j")
	}
}

func TestJoinClassesDeterministic(t *testing.T) {
	build := func() []JoinClass {
		s := NewSchema()
		ref := func(t, c string) ColumnRef { return ColumnRef{Table: t, Column: c} }
		s.AddJoinPattern(JoinPattern{Left: ref("x", "a"), Right: ref("y", "b")})
		s.AddJoinPattern(JoinPattern{Left: ref("p", "q"), Right: ref("r", "s")})
		return s.JoinClasses()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic class count")
	}
	for i := range a {
		if len(a[i].Members) != len(b[i].Members) || a[i].Members[0] != b[i].Members[0] {
			t.Error("nondeterministic class ordering")
		}
	}
}

func TestValidate(t *testing.T) {
	s := twoTableSchema()
	s.AddJoinPattern(JoinPattern{
		Left:  ColumnRef{Table: "orders", Column: "user_id"},
		Right: ColumnRef{Table: "users", Column: "id"},
	})
	if err := s.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	s.AddJoinPattern(JoinPattern{
		Left:  ColumnRef{Table: "orders", Column: "id"},
		Right: ColumnRef{Table: "ghost", Column: "id"},
	})
	if err := s.Validate(); err == nil {
		t.Error("unknown table must fail validation")
	}
}

func TestValidateUnknownColumn(t *testing.T) {
	s := twoTableSchema()
	s.AddJoinPattern(JoinPattern{
		Left:  ColumnRef{Table: "orders", Column: "ghost"},
		Right: ColumnRef{Table: "users", Column: "id"},
	})
	if err := s.Validate(); err == nil {
		t.Error("unknown column must fail validation")
	}
}

func TestPreprocInfoRoundtrip(t *testing.T) {
	s := twoTableSchema()
	rows := []PreprocInfo{
		{Table: "orders", Column: "tags", DBType: types.KindArray, MLType: types.MLUnsupported, Selected: false},
		{Table: "orders", Column: "id", DBType: types.KindInt64, MLType: types.MLContinuous, Selected: true},
	}
	s.SetPreprocInfo(rows)
	got := s.PreprocInfoRows()
	if len(got) != 2 || got[0].Column != "tags" || got[1].Selected != true {
		t.Errorf("preproc info roundtrip broken: %v", got)
	}
}

func TestColumnRefString(t *testing.T) {
	r := ColumnRef{Table: "a", Column: "b"}
	if r.String() != "a.b" {
		t.Errorf("String = %q", r.String())
	}
	p := JoinPattern{Left: r, Right: ColumnRef{Table: "c", Column: "d"}}
	if p.String() != "a.b = c.d" {
		t.Errorf("pattern String = %q", p.String())
	}
}
