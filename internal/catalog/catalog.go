// Package catalog holds schema metadata: tables, columns, their ML type
// mapping, declared join patterns (collected by the analyzer rather than
// PK–FK constraints, matching the paper's warehouse where customers do not
// declare keys), and the model_preprocessor_info system table the
// preprocessor fills for the ModelForge service.
package catalog

import (
	"fmt"
	"sort"

	"bytecard/internal/types"
)

// ColumnMeta describes one column.
type ColumnMeta struct {
	Name string
	Kind types.Kind
	// MLType is filled by the preprocessor's preliminary type mapping.
	MLType types.MLType
	// Excluded marks columns the preprocessor removed from training
	// (complex types).
	Excluded bool
	// NDV is the (approximate) distinct count recorded during
	// preprocessing; zero until profiled.
	NDV int64
}

// TableMeta describes one table.
type TableMeta struct {
	Name     string
	Columns  []ColumnMeta
	RowCount int64
	// ShardKey names the column used for shard-specialized training, or
	// is empty for unsharded tables.
	ShardKey string
}

// Column returns the named column's metadata, or nil.
func (t *TableMeta) Column(name string) *ColumnMeta {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnRef identifies a column of a table.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference as table.column.
func (r ColumnRef) String() string { return r.Table + "." + r.Column }

// JoinPattern records one equi-join relationship observed by the analyzer.
type JoinPattern struct {
	Left  ColumnRef
	Right ColumnRef
}

// String renders the pattern as an equality.
func (p JoinPattern) String() string { return p.Left.String() + " = " + p.Right.String() }

// PreprocInfo is one row of the model_preprocessor_info system table.
type PreprocInfo struct {
	Table    string
	Column   string
	DBType   types.Kind
	MLType   types.MLType
	Selected bool
}

// Schema is the catalog for one database.
type Schema struct {
	tables  map[string]*TableMeta
	order   []string
	joins   []JoinPattern
	preproc []PreprocInfo
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: make(map[string]*TableMeta)}
}

// AddTable registers table metadata, replacing a previous entry.
func (s *Schema) AddTable(t *TableMeta) {
	if _, ok := s.tables[t.Name]; !ok {
		s.order = append(s.order, t.Name)
	}
	s.tables[t.Name] = t
}

// Table returns the named table's metadata or nil.
func (s *Schema) Table(name string) *TableMeta { return s.tables[name] }

// TableNames returns table names in registration order.
func (s *Schema) TableNames() []string { return append([]string(nil), s.order...) }

// AddJoinPattern records an observed join relationship. Duplicate patterns
// (in either orientation) are ignored.
func (s *Schema) AddJoinPattern(p JoinPattern) {
	for _, q := range s.joins {
		if q == p || (q.Left == p.Right && q.Right == p.Left) {
			return
		}
	}
	s.joins = append(s.joins, p)
}

// JoinPatterns returns the recorded join patterns.
func (s *Schema) JoinPatterns() []JoinPattern { return append([]JoinPattern(nil), s.joins...) }

// SetPreprocInfo replaces the model_preprocessor_info system table.
func (s *Schema) SetPreprocInfo(rows []PreprocInfo) { s.preproc = rows }

// PreprocInfoRows returns the model_preprocessor_info system table.
func (s *Schema) PreprocInfoRows() []PreprocInfo { return append([]PreprocInfo(nil), s.preproc...) }

// JoinClass is one equivalence class of join columns: every member column
// is transitively joined with every other. FactorJoin assigns one bucket
// layout per class.
type JoinClass struct {
	// Members are sorted for determinism.
	Members []ColumnRef
}

// Contains reports whether the class includes ref.
func (c JoinClass) Contains(ref ColumnRef) bool {
	for _, m := range c.Members {
		if m == ref {
			return true
		}
	}
	return false
}

// JoinClasses partitions all columns that appear in join patterns into
// equivalence classes using union–find over the recorded patterns.
func (s *Schema) JoinClasses() []JoinClass {
	parent := make(map[ColumnRef]ColumnRef)
	var find func(ColumnRef) ColumnRef
	find = func(x ColumnRef) ColumnRef {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b ColumnRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range s.joins {
		union(p.Left, p.Right)
	}
	groups := make(map[ColumnRef][]ColumnRef)
	for ref := range parent {
		root := find(ref)
		groups[root] = append(groups[root], ref)
	}
	classes := make([]JoinClass, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Table != members[j].Table {
				return members[i].Table < members[j].Table
			}
			return members[i].Column < members[j].Column
		})
		classes = append(classes, JoinClass{Members: members})
	}
	sort.Slice(classes, func(i, j int) bool {
		return classes[i].Members[0].String() < classes[j].Members[0].String()
	})
	return classes
}

// Validate checks internal consistency: join patterns must reference known
// tables and columns.
func (s *Schema) Validate() error {
	for _, p := range s.joins {
		for _, ref := range []ColumnRef{p.Left, p.Right} {
			t := s.Table(ref.Table)
			if t == nil {
				return fmt.Errorf("catalog: join pattern %s references unknown table %s", p, ref.Table)
			}
			if t.Column(ref.Column) == nil {
				return fmt.Errorf("catalog: join pattern %s references unknown column %s", p, ref)
			}
		}
	}
	return nil
}
