// Package types defines the value model shared by the storage layer, the
// query engine, and every cardinality estimator: column kinds, runtime
// datums, and the preliminary type mapping from database types to the
// machine-learning types used during model training.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the database type of a column.
type Kind int

const (
	// KindInt64 is a signed 64-bit integer column.
	KindInt64 Kind = iota
	// KindFloat64 is a double-precision floating point column.
	KindFloat64
	// KindString is a variable-length string column (dictionary encoded
	// by the storage layer).
	KindString
	// KindArray is a nested array column. Arrays are stored but excluded
	// from model training by the preprocessor.
	KindArray
	// KindMap is a nested map column, likewise excluded from training.
	KindMap
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "INT64"
	case KindFloat64:
		return "FLOAT64"
	case KindString:
		return "STRING"
	case KindArray:
		return "ARRAY"
	case KindMap:
		return "MAP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scalar reports whether columns of this kind hold scalar values that the
// CardEst models can consume.
func (k Kind) Scalar() bool {
	return k == KindInt64 || k == KindFloat64 || k == KindString
}

// MLType is the machine-learning type a column is mapped to before model
// training (the paper's "preliminary type-mapping" step).
type MLType int

const (
	// MLUnsupported marks columns excluded from training (nested types).
	MLUnsupported MLType = iota
	// MLBinary marks two-valued columns.
	MLBinary
	// MLCategorical marks low-cardinality discrete columns.
	MLCategorical
	// MLContinuous marks numeric columns with wide domains that must be
	// discretized into bins before they enter a Bayesian network.
	MLContinuous
)

// String returns the name of the ML type.
func (t MLType) String() string {
	switch t {
	case MLBinary:
		return "Binary"
	case MLCategorical:
		return "Categorical"
	case MLContinuous:
		return "Continuous"
	default:
		return "Unsupported"
	}
}

// CategoricalThreshold is the distinct-count boundary between categorical
// and continuous treatment during type mapping.
const CategoricalThreshold = 256

// MapToML implements the preliminary type mapping: nested kinds are
// unsupported, two-valued columns are binary, strings and narrow numeric
// domains are categorical, and everything else is continuous.
func MapToML(k Kind, distinct int64) MLType {
	if !k.Scalar() {
		return MLUnsupported
	}
	switch {
	case distinct == 2:
		return MLBinary
	case k == KindString || distinct <= CategoricalThreshold:
		return MLCategorical
	default:
		return MLContinuous
	}
}

// Datum is a runtime value: one cell of one row. The zero value is the
// int64 zero.
type Datum struct {
	K Kind
	I int64
	F float64
	S string
}

// Int returns an int64 datum.
func Int(v int64) Datum { return Datum{K: KindInt64, I: v} }

// Float returns a float64 datum.
func Float(v float64) Datum { return Datum{K: KindFloat64, F: v} }

// Str returns a string datum.
func Str(v string) Datum { return Datum{K: KindString, S: v} }

// Arr returns an array datum holding a serialized payload. Nested values
// are stored opaquely; models never consume them (the preprocessor excludes
// nested kinds from training).
func Arr(payload string) Datum { return Datum{K: KindArray, S: payload} }

// MapVal returns a map datum holding a serialized payload.
func MapVal(payload string) Datum { return Datum{K: KindMap, S: payload} }

// IsNumeric reports whether the datum holds an int64 or float64.
func (d Datum) IsNumeric() bool { return d.K == KindInt64 || d.K == KindFloat64 }

// AsFloat converts a numeric datum to float64. String datums return NaN.
func (d Datum) AsFloat() float64 {
	switch d.K {
	case KindInt64:
		return float64(d.I)
	case KindFloat64:
		return d.F
	default:
		return math.NaN()
	}
}

// Compare orders two datums: -1 if d < o, 0 if equal, +1 if d > o.
// Numeric kinds compare by value with int/float coercion; strings compare
// lexicographically. Comparing a string with a numeric datum panics — the
// analyzer rejects such predicates before execution.
func (d Datum) Compare(o Datum) int {
	if !d.IsNumeric() || !o.IsNumeric() {
		if d.K != o.K {
			panic(fmt.Sprintf("types: cannot compare %s with %s", d.K, o.K))
		}
		switch {
		case d.S < o.S:
			return -1
		case d.S > o.S:
			return 1
		default:
			return 0
		}
	}
	if d.K == KindInt64 && o.K == KindInt64 {
		switch {
		case d.I < o.I:
			return -1
		case d.I > o.I:
			return 1
		default:
			return 0
		}
	}
	a, b := d.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two datums compare equal.
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

// Less reports whether d orders strictly before o.
func (d Datum) Less(o Datum) bool { return d.Compare(o) < 0 }

// Hash64 returns a 64-bit hash of the datum, suitable for hash joins,
// aggregation tables, and HyperLogLog registration. Int64 and float64
// datums holding the same integral value hash identically.
func (d Datum) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch d.K {
	case KindString, KindArray, KindMap:
		buf[0] = 's'
		h.Write(buf[:1])
		h.Write([]byte(d.S))
	default:
		f := d.AsFloat()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Normalize integral values so Int(3) and Float(3.0)
			// land in the same hash bucket.
			buf[0] = 'i'
			h.Write(buf[:1])
			putUint64(&buf, uint64(int64(f)))
		} else {
			buf[0] = 'f'
			h.Write(buf[:1])
			putUint64(&buf, math.Float64bits(f))
		}
		h.Write(buf[:])
	}
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer; FNV-1a alone mixes high bits poorly on
// short sequential inputs, which skews HyperLogLog register selection.
func fmix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// String renders the datum as a SQL literal.
func (d Datum) String() string {
	switch d.K {
	case KindInt64:
		return strconv.FormatInt(d.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindString:
		// Escape embedded quotes SQL-style so the literal re-parses
		// (the round-trip guarantee sqlparse.SelectStmt.String documents).
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	default:
		return fmt.Sprintf("<%s>", d.K)
	}
}
