package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt64:   "INT64",
		KindFloat64: "FLOAT64",
		KindString:  "STRING",
		KindArray:   "ARRAY",
		KindMap:     "MAP",
		Kind(99):    "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindScalar(t *testing.T) {
	if !KindInt64.Scalar() || !KindFloat64.Scalar() || !KindString.Scalar() {
		t.Error("scalar kinds must report Scalar() = true")
	}
	if KindArray.Scalar() || KindMap.Scalar() {
		t.Error("nested kinds must report Scalar() = false")
	}
}

func TestMapToML(t *testing.T) {
	cases := []struct {
		kind     Kind
		distinct int64
		want     MLType
	}{
		{KindArray, 10, MLUnsupported},
		{KindMap, 10, MLUnsupported},
		{KindInt64, 2, MLBinary},
		{KindString, 2, MLBinary},
		{KindString, 100000, MLCategorical},
		{KindInt64, 100, MLCategorical},
		{KindInt64, CategoricalThreshold, MLCategorical},
		{KindInt64, CategoricalThreshold + 1, MLContinuous},
		{KindFloat64, 1000000, MLContinuous},
	}
	for _, c := range cases {
		if got := MapToML(c.kind, c.distinct); got != c.want {
			t.Errorf("MapToML(%s, %d) = %s, want %s", c.kind, c.distinct, got, c.want)
		}
	}
}

func TestMLTypeString(t *testing.T) {
	if MLBinary.String() != "Binary" || MLCategorical.String() != "Categorical" ||
		MLContinuous.String() != "Continuous" || MLUnsupported.String() != "Unsupported" {
		t.Error("MLType.String() mismatch")
	}
}

func TestDatumCompareInts(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(5).Compare(Int(5)) != 0 {
		t.Error("int comparison broken")
	}
}

func TestDatumCompareMixedNumeric(t *testing.T) {
	if Int(3).Compare(Float(3.0)) != 0 {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("Int(3) should be less than Float(3.5)")
	}
	if Float(4.5).Compare(Int(4)) != 1 {
		t.Error("Float(4.5) should be greater than Int(4)")
	}
}

func TestDatumCompareStrings(t *testing.T) {
	if Str("a").Compare(Str("b")) != -1 || Str("b").Compare(Str("a")) != 1 || Str("x").Compare(Str("x")) != 0 {
		t.Error("string comparison broken")
	}
}

func TestDatumCompareStringNumericPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comparing string with int must panic")
		}
	}()
	Str("a").Compare(Int(1))
}

func TestDatumEqualLess(t *testing.T) {
	if !Int(7).Equal(Int(7)) || Int(7).Equal(Int(8)) {
		t.Error("Equal broken")
	}
	if !Int(7).Less(Int(8)) || Int(8).Less(Int(7)) {
		t.Error("Less broken")
	}
}

func TestDatumAsFloat(t *testing.T) {
	if Int(42).AsFloat() != 42 {
		t.Error("Int AsFloat")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float AsFloat")
	}
	if !math.IsNaN(Str("x").AsFloat()) {
		t.Error("string AsFloat must be NaN")
	}
}

func TestDatumIsNumeric(t *testing.T) {
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("1").IsNumeric() {
		t.Error("IsNumeric broken")
	}
}

func TestDatumHashIntFloatAgree(t *testing.T) {
	if Int(123).Hash64() != Float(123).Hash64() {
		t.Error("Int(123) and Float(123.0) must hash identically")
	}
	if Int(123).Hash64() == Int(124).Hash64() {
		t.Error("adjacent ints should not collide")
	}
}

func TestDatumHashStringDistinctFromNumeric(t *testing.T) {
	if Str("123").Hash64() == Int(123).Hash64() {
		t.Error("string '123' must not hash as the number 123")
	}
}

func TestDatumString(t *testing.T) {
	if Int(-5).String() != "-5" {
		t.Errorf("Int(-5).String() = %q", Int(-5).String())
	}
	if Float(2.5).String() != "2.5" {
		t.Errorf("Float(2.5).String() = %q", Float(2.5).String())
	}
	if Str("hi").String() != "'hi'" {
		t.Errorf("Str(hi).String() = %q", Str("hi").String())
	}
	if Str("O'Brien").String() != "'O''Brien'" {
		t.Errorf("Str(O'Brien).String() = %q; embedded quotes must escape SQL-style", Str("O'Brien").String())
	}
}

// Property: Compare is antisymmetric and Equal is reflexive for ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hash is deterministic.
func TestQuickHashDeterministic(t *testing.T) {
	f := func(a int64) bool {
		return Int(a).Hash64() == Int(a).Hash64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string ordering matches Go's native ordering.
func TestQuickStringOrder(t *testing.T) {
	f := func(a, b string) bool {
		got := Str(a).Compare(Str(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
