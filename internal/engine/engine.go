package engine

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"bytecard/internal/catalog"
	"bytecard/internal/obs"
	"bytecard/internal/sqlparse"
	"bytecard/internal/storage"
)

// Default tuning knobs.
const (
	// DefaultReaderThreshold is the overall-selectivity fraction below
	// which the optimizer picks the multi-stage reader (selective
	// predicates benefit from staged, late materialization; non-selective
	// ones would re-read most blocks per stage).
	DefaultReaderThreshold = 0.15
	// DefaultAggCapacity is the cold-start aggregation hash-table
	// capacity used when NDV presizing is disabled.
	DefaultAggCapacity = 16
	// DefaultColOrderEarlyStop stops predicate-order enumeration once the
	// running conjunction selectivity exceeds this fraction (the paper's
	// constraint easing the enumeration overhead).
	DefaultColOrderEarlyStop = 0.5
	// MaxIntermediateRows aborts runaway joins.
	MaxIntermediateRows = 50_000_000
	// DefaultBatchThreshold is the smallest DP rank worth batching: a
	// one-subset rank amortizes nothing, so the floor is 2. Estimators do
	// their own fan-out break-even below this gate (see
	// core.Estimator.fanOutWorkers), which keeps the planner-side constant
	// deterministic — plans never depend on a timing measurement.
	DefaultBatchThreshold = 2
)

// Engine executes SQL over a storage database, taking every
// cardinality-driven optimization decision from its CardEstimator.
type Engine struct {
	DB     *storage.Database
	Schema *catalog.Schema
	Est    CardEstimator

	// ReaderThreshold overrides DefaultReaderThreshold when positive.
	ReaderThreshold float64
	// AggCapacity overrides DefaultAggCapacity when positive.
	AggCapacity int
	// DisableNDVPresize forces cold-start aggregation tables (the
	// "without ByteCard" configuration of Figure 6b).
	DisableNDVPresize bool
	// ForceReader pins the materialization strategy for every scan:
	// "single-stage" or "multi-stage" (ablation hook); empty selects
	// dynamically.
	ForceReader string
	// DisableSIP turns off sideways information passing (ablation hook).
	DisableSIP bool
	// Parallelism is the executor's worker count for morsel-driven scans,
	// hash-join probes, and aggregation. Zero takes the BYTECARD_PARALLELISM
	// environment variable if set, else runtime.GOMAXPROCS(0); 1 forces the
	// sequential path.
	Parallelism int
	// BatchThreshold is the minimum join-order DP rank size (newly
	// reachable subsets) for which the planner hands the rank to a
	// BatchCardEstimator as one batch; smaller ranks go through sequential
	// EstimateJoin calls, whose per-call overhead is below the batch
	// machinery's. Zero takes BYTECARD_BATCH_THRESHOLD if set, else
	// DefaultBatchThreshold; negative disables batching entirely.
	BatchThreshold int
	// Pushdown selects the pushed-down scan path (zone-map block skipping,
	// vectorized predicate evaluation, projection/limit pushdown). Zero
	// takes BYTECARD_PUSHDOWN if set, else on; positive forces on;
	// negative forces off (the legacy readers, byte-identical to pre-
	// pushdown behavior). ForceReader pins the legacy readers regardless,
	// so strategy-ablation comparisons stay meaningful.
	Pushdown int
	// Obs, when set, accumulates query volume, planning/execution latency,
	// and the q-error of each plan's final cardinality estimate against
	// the executed truth.
	Obs *obs.EngineMetrics
	// PlanCache, when set, memoizes optimizer decisions by normalized
	// query template (see PlanCache). Nil disables template caching; the
	// owner is responsible for registering the cache with the inference
	// registry so model churn invalidates it.
	PlanCache *PlanCache
	// OnTruth, when set, receives each executed statement's template
	// identity (TemplateKey), deduped sorted physical-table list,
	// final-plan cardinality estimate, and exact executed cardinality —
	// the executed-truth feedback hook the residual corrector learns
	// from. Called synchronously after execution, on cache-hit and
	// cache-miss plans alike.
	OnTruth func(templateKey string, tables []string, est float64, actual int64)
}

// New creates an engine. Schema may be nil (join-pattern collection is then
// skipped).
func New(db *storage.Database, schema *catalog.Schema, est CardEstimator) *Engine {
	return &Engine{DB: db, Schema: schema, Est: est}
}

func (e *Engine) readerThreshold() float64 {
	if e.ReaderThreshold > 0 {
		return e.ReaderThreshold
	}
	return DefaultReaderThreshold
}

func (e *Engine) defaultAggCapacity() int {
	if e.AggCapacity > 0 {
		return e.AggCapacity
	}
	return DefaultAggCapacity
}

// envParallelism reads BYTECARD_PARALLELISM once — the hook CI uses to
// force the parallel executor paths under the race detector even on
// engines that never set Parallelism explicitly.
var envParallelism = sync.OnceValue(func() int {
	if s := os.Getenv("BYTECARD_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 0
})

// envBatchThreshold reads BYTECARD_BATCH_THRESHOLD once (any integer;
// negative disables batching, the knob for machines where even large
// ranks plan faster sequentially).
var envBatchThreshold = sync.OnceValue(func() (v int) {
	if s := os.Getenv("BYTECARD_BATCH_THRESHOLD"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n != 0 {
			return n
		}
	}
	return 0
})

// envPushdown reads BYTECARD_PUSHDOWN once: "0"/"false"/"off" disables,
// "1"/"true"/"on" enables, anything else (or unset) leaves the default.
var envPushdown = sync.OnceValue(func() int {
	switch os.Getenv("BYTECARD_PUSHDOWN") {
	case "0", "false", "off":
		return -1
	case "1", "true", "on":
		return 1
	}
	return 0
})

// pushdownOn resolves whether scans take the pushed-down path (default on).
func (e *Engine) pushdownOn() bool {
	v := e.Pushdown
	if v == 0 {
		v = envPushdown()
	}
	return v >= 0
}

// batchThreshold resolves the minimum batched rank size.
func (e *Engine) batchThreshold() int {
	if e.BatchThreshold != 0 {
		return e.BatchThreshold
	}
	if v := envBatchThreshold(); v != 0 {
		return v
	}
	return DefaultBatchThreshold
}

// workers resolves the executor worker count for one query.
func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	if v := envParallelism(); v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// Run parses, analyzes, optimizes, and executes sql.
func (e *Engine) Run(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.RunStmt(stmt)
}

// RunStmt analyzes, optimizes, and executes a parsed statement.
func (e *Engine) RunStmt(stmt *sqlparse.SelectStmt) (*Result, error) {
	return e.RunStmtTraced(stmt, nil)
}

// RunTraced runs sql recording every estimation step of planning and every
// execution phase (scan, join, aggregate — with worker counts) into tr. A
// nil tr disables recording.
func (e *Engine) RunTraced(sql string, tr *obs.Trace) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.RunStmtTraced(stmt, tr)
}

// RunStmtTraced analyzes, optimizes, and executes a parsed statement,
// recording planning estimates and execution-phase spans into tr (nil
// disables recording).
func (e *Engine) RunStmtTraced(stmt *sqlparse.SelectStmt, tr *obs.Trace) (*Result, error) {
	q, err := e.Analyze(stmt)
	if err != nil {
		return nil, err
	}
	planStart := time.Now()
	p, err := e.planForRun(q, tr)
	if err != nil {
		return nil, err
	}
	planDur := time.Since(planStart)
	res, err := e.ExecuteTraced(p, tr)
	if err != nil {
		return nil, err
	}
	res.Metrics.PlanDuration = planDur
	res.Metrics.PlanCacheHit = p.CacheHit
	if e.Obs != nil {
		e.Obs.Queries.Add(1)
		e.Obs.PlanLatency.Observe(float64(planDur.Nanoseconds()))
		e.Obs.ExecLatency.Observe(float64(res.Metrics.ExecDuration.Nanoseconds()))
		e.Obs.PlanQError.Observe(obs.QError(res.Metrics.EstFinalRows, float64(res.Metrics.ActualFinalRows)))
		e.Obs.BlocksRead.Add(res.Metrics.IO.BlocksRead())
		e.Obs.BlocksSkipped.Add(res.Metrics.IO.BlocksSkipped())
	}
	if e.OnTruth != nil {
		e.OnTruth(TemplateKey(q.Tables, q.Joins), physicalTables(q), res.Metrics.EstFinalRows, res.Metrics.ActualFinalRows)
	}
	return res, nil
}

// planForRun plans one statement for execution, consulting the shared plan
// cache on the traced and untraced paths alike. Traced planning substitutes
// a tracing estimator view but keeps the cache: the view returns values
// identical to the engine's own estimator (tracing is pure observation), so
// publishing its decisions is safe — and a template hit, which skips every
// estimator call, records one plan_cache span carrying the cache-hit flag
// in place of the estimator spans the skipped planning would have produced.
// (EXPLAIN's PlanWith stays cache-free by design: its point is showing the
// estimator's calls.)
func (e *Engine) planForRun(q *Query, tr *obs.Trace) (*Plan, error) {
	if !tr.Active() {
		return e.Plan(q)
	}
	start := time.Now()
	view := *e
	view.Est = TraceEstimator(e.Est, tr)
	p, err := view.Plan(q)
	if err == nil && p.CacheHit {
		tr.Add(obs.Span{
			Op: obs.OpPlanCache, Tables: queryBindings(q), Source: "plan_cache",
			Outcome: obs.OutcomeOK, CacheHit: true, Value: p.EstFinalRows,
			Duration: time.Since(start),
		})
	}
	return p, err
}

// queryBindings lists the query's table bindings in FROM order.
func queryBindings(q *Query) []string {
	out := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		out[i] = t.Binding
	}
	return out
}

// physicalTables lists the query's deduped physical table names, sorted.
func physicalTables(q *Query) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range q.Tables {
		if !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// PlanWith optimizes q with est driving every decision instead of the
// engine's configured estimator — the hook EXPLAIN uses to plan under a
// tracing view without perturbing concurrent queries.
func (e *Engine) PlanWith(q *Query, est CardEstimator) (*Plan, error) {
	view := *e
	view.Est = est
	// The substituted estimator must actually run (EXPLAIN's whole point
	// is showing its calls) and its decisions must not leak into the
	// shared cache, so the view plans cache-free.
	view.PlanCache = nil
	return view.Plan(q)
}

func joinPattern(lt, lc, rt, rc string) catalog.JoinPattern {
	return catalog.JoinPattern{
		Left:  catalog.ColumnRef{Table: lt, Column: lc},
		Right: catalog.ColumnRef{Table: rt, Column: rc},
	}
}

// TrueCardinality executes SELECT COUNT(*) semantics for the query and
// returns the exact row count of the filtered join — the ground truth used
// by Q-error experiments and by the Model Monitor's probe evaluation.
func (e *Engine) TrueCardinality(sql string) (float64, error) {
	res, err := e.Run(sql)
	if err != nil {
		return 0, err
	}
	n, err := res.ScalarInt()
	if err != nil {
		return 0, fmt.Errorf("engine: true-cardinality query must be a bare COUNT(*): %w", err)
	}
	return float64(n), nil
}
