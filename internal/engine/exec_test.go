package engine

import (
	"strings"
	"testing"

	"bytecard/internal/catalog"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// buildWide builds a table large enough to span many blocks, with col "t"
// clustered by row order (time-like) and "v" uniform.
func buildWide(n int) *storage.Database {
	b := storage.NewBuilder("wide", []storage.ColumnSpec{
		{Name: "t", Kind: types.KindInt64},
		{Name: "v", Kind: types.KindInt64},
		{Name: "s", Kind: types.KindString},
	})
	for i := 0; i < n; i++ {
		b.Append([]types.Datum{
			types.Int(int64(i * 100 / n)), // clustered 0..99
			types.Int(int64(i % 977)),
			types.Str([]string{"red", "green", "blue"}[i%3]),
		})
	}
	db := storage.NewDatabase()
	db.Add(b.Build())
	return db
}

func TestMultiStageSkipsClusteredBlocks(t *testing.T) {
	db := buildWide(storage.BlockSize * 10)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	sql := "SELECT COUNT(*) FROM wide WHERE t >= 90 AND v < 500"
	e.ForceReader = "multi-stage"
	multi, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.ForceReader = "single-stage"
	single, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := multi.ScalarInt()
	b, _ := single.ScalarInt()
	if a != b {
		t.Fatalf("results differ: %d vs %d", a, b)
	}
	if multi.Metrics.IO.BlocksRead() >= single.Metrics.IO.BlocksRead() {
		t.Errorf("multi-stage %d blocks !< single-stage %d on clustered predicate",
			multi.Metrics.IO.BlocksRead(), single.Metrics.IO.BlocksRead())
	}
}

func TestStringPredicatesThroughBothReaders(t *testing.T) {
	db := buildWide(storage.BlockSize * 2)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	for _, sql := range []string{
		"SELECT COUNT(*) FROM wide WHERE s = 'green' AND v < 100",
		"SELECT COUNT(*) FROM wide WHERE s <> 'red' AND t >= 50",
		"SELECT COUNT(*) FROM wide WHERE s > 'blue' AND s < 'red'", // only green
	} {
		e.ForceReader = "multi-stage"
		multi, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		e.ForceReader = "single-stage"
		single, err := e.Run(sql)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := multi.ScalarInt()
		b, _ := single.ScalarInt()
		if a != b || a == 0 {
			t.Errorf("%s: multi %d vs single %d", sql, a, b)
		}
	}
}

func TestMissingStringLiteralSemantics(t *testing.T) {
	db := buildWide(1000)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	// 'purple' is not in the dictionary: equality matches nothing, the
	// inequality matches everything, ranges follow lexicographic order.
	n := func(sql string) int64 {
		res, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		v, _ := res.ScalarInt()
		return v
	}
	if got := n("SELECT COUNT(*) FROM wide WHERE s = 'purple'"); got != 0 {
		t.Errorf("eq missing literal = %d, want 0", got)
	}
	if got := n("SELECT COUNT(*) FROM wide WHERE s <> 'purple'"); got != 1000 {
		t.Errorf("ne missing literal = %d, want 1000", got)
	}
	// 'm' sits between 'green' and 'red': s < 'm' keeps blue+green.
	if got := n("SELECT COUNT(*) FROM wide WHERE s < 'm'"); got != 666 {
		t.Errorf("range over missing literal = %d, want 666", got)
	}
}

func TestCompressionPreservesAggregates(t *testing.T) {
	// Build a join big enough to trigger compression (> compressThreshold
	// intermediate tuples) and verify SUM/AVG against the naive executor.
	dimB := storage.NewBuilder("d2", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "grp", Kind: types.KindInt64},
	})
	for i := 1; i <= 40; i++ {
		dimB.Append([]types.Datum{types.Int(int64(i)), types.Int(int64(i % 4))})
	}
	factB := storage.NewBuilder("f2", []storage.ColumnSpec{
		{Name: "d_id", Kind: types.KindInt64},
		{Name: "val", Kind: types.KindInt64},
	})
	for i := 0; i < 3000; i++ {
		factB.Append([]types.Datum{types.Int(int64(i%40 + 1)), types.Int(int64(i % 7))})
	}
	db := storage.NewDatabase()
	db.Add(dimB.Build())
	db.Add(factB.Build())
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	sql := "SELECT d2.grp, COUNT(*), SUM(f2.val), AVG(f2.val) FROM f2, d2 WHERE f2.d_id = d2.id GROUP BY d2.grp"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("groups: %d vs %d", len(fast.Rows), len(slow.Rows))
	}
	for i := range fast.Rows {
		for j := range fast.Rows[i] {
			a, b := fast.Rows[i][j].AsFloat(), slow.Rows[i][j].AsFloat()
			if d := a - b; d > 1e-9 || d < -1e-9 {
				t.Errorf("cell [%d][%d]: %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestHugeCountViaCompression(t *testing.T) {
	// A 3-way star join whose logical cardinality far exceeds any
	// materializable intermediate: multiplicity counting must still be
	// exact. hub(1 row) joined by two facts with k rows each → k*k rows.
	hub := storage.NewBuilder("hub", []storage.ColumnSpec{{Name: "id", Kind: types.KindInt64}})
	hub.Append([]types.Datum{types.Int(1)})
	db := storage.NewDatabase()
	db.Add(hub.Build())
	mkFact := func(name string, k int) {
		b := storage.NewBuilder(name, []storage.ColumnSpec{{Name: "hid", Kind: types.KindInt64}})
		for i := 0; i < k; i++ {
			b.Append([]types.Datum{types.Int(1)})
		}
		db.Add(b.Build())
	}
	mkFact("fa", 30000)
	mkFact("fb", 30000)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	res, err := e.Run("SELECT COUNT(*) FROM hub, fa, fb WHERE fa.hid = hub.id AND fb.hid = hub.id")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.ScalarInt()
	if n != 30000*30000 {
		t.Errorf("count = %d, want %d", n, int64(30000)*30000)
	}
	if res.Metrics.RowsMaterialized > 200000 {
		t.Errorf("materialized %d tuples; compression should keep it tiny", res.Metrics.RowsMaterialized)
	}
}

func TestColumnOrderInfluencesIO(t *testing.T) {
	// Order [t first] should touch fewer v-blocks than [v first] because t
	// is clustered. Use the optimizer's ColOrder override via estimator:
	// simulate by comparing plans from estimators that order differently.
	db := buildWide(storage.BlockSize * 8)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	e.ForceReader = "multi-stage"
	res, err := e.Run("SELECT COUNT(*) FROM wide WHERE t >= 95 AND v < 488")
	if err != nil {
		t.Fatal(err)
	}
	// t>=95 keeps ~5% clustered at the tail; v<488 keeps ~50% everywhere.
	// Whatever order the heuristic picked, both are equality-free ranges
	// with sel 0.33 heuristics; just assert correct result and that some
	// blocks were skipped relative to full single-stage.
	e.ForceReader = "single-stage"
	full, err := e.Run("SELECT COUNT(*) FROM wide WHERE t >= 95 AND v < 488")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.ScalarInt()
	b, _ := full.ScalarInt()
	if a != b {
		t.Fatalf("results differ: %d vs %d", a, b)
	}
}

func TestScalarIntErrors(t *testing.T) {
	r := &Result{Columns: []string{"a", "b"}, Rows: [][]types.Datum{{types.Int(1), types.Int(2)}}}
	if _, err := r.ScalarInt(); err == nil {
		t.Error("two-column result must not be scalar")
	}
	r = &Result{Columns: []string{"a"}, Rows: [][]types.Datum{{types.Float(1.5)}}}
	if _, err := r.ScalarInt(); err == nil {
		t.Error("float result must not be scalar int")
	}
}

func TestJoinCondString(t *testing.T) {
	j := JoinCond{LeftTab: "a", LeftCol: "x", RightTab: "b", RightCol: "y"}
	if j.String() != "a.x = b.y" {
		t.Errorf("String = %q", j.String())
	}
	c := ColRef{Tab: "a", Col: "x"}
	if c.String() != "a.x" {
		t.Errorf("ColRef = %q", c.String())
	}
}

func TestTrueCardinalityRejectsNonScalar(t *testing.T) {
	db := buildWide(100)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	if _, err := e.TrueCardinality("SELECT s, COUNT(*) FROM wide GROUP BY s"); err == nil {
		t.Error("grouped query must be rejected as truth probe")
	}
	if !strings.Contains("x", "x") {
		t.Fatal("unreachable")
	}
}

func TestSIPPrunesAndPreservesResults(t *testing.T) {
	ds := buildWide(storage.BlockSize * 4)
	// Second table joins a tiny slice of wide's t-domain.
	b := storage.NewBuilder("small", []storage.ColumnSpec{
		{Name: "t_ref", Kind: types.KindInt64},
		{Name: "w", Kind: types.KindInt64},
	})
	for i := 0; i < 200; i++ {
		b.Append([]types.Datum{types.Int(int64(i % 3)), types.Int(int64(i))})
	}
	ds.Add(b.Build())
	e := New(ds, catalog.NewSchema(), HeuristicEstimator{})
	sql := "SELECT COUNT(*) FROM small, wide WHERE wide.t = small.t_ref AND wide.v < 400 AND small.w < 150"

	withSIP, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.DisableSIP = true
	without, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := withSIP.ScalarInt()
	bb, _ := without.ScalarInt()
	if a != bb {
		t.Fatalf("SIP changed results: %d vs %d", a, bb)
	}
	if withSIP.Metrics.SIPPruned == 0 {
		t.Error("SIP pruned nothing on a highly selective join")
	}
	if withSIP.Metrics.IO.BlocksRead() > without.Metrics.IO.BlocksRead() {
		t.Errorf("SIP read more blocks: %d vs %d",
			withSIP.Metrics.IO.BlocksRead(), without.Metrics.IO.BlocksRead())
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := slow.ScalarInt()
	if a != c {
		t.Fatalf("SIP result %d != naive %d", a, c)
	}
}
