package engine

import (
	"reflect"
	"strconv"
	"testing"

	"bytecard/internal/catalog"
	"bytecard/internal/datagen"
	"bytecard/internal/obs"
	"bytecard/internal/sqlparse"
	"bytecard/internal/storage"
)

// tsEngine builds an engine over the timeseries dataset — the
// append-ordered workload the pushdown scan contract was built for.
func tsEngine(t *testing.T, scale float64) (*Engine, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.ByName("timeseries", datagen.Config{Scale: scale, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.DB, ds.Schema, HeuristicEstimator{})
	return e, ds
}

// tsWindow returns the ts values at two fractions of the readings stream,
// bounding a populated window.
func tsWindow(ds *datagen.Dataset, loFrac, hiFrac float64) (int64, int64) {
	c := ds.DB.Table("readings").ColByName("ts")
	n := ds.DB.Table("readings").NumRows()
	return c.Value(int(loFrac * float64(n-1))).I, c.Value(int(hiFrac * float64(n-1))).I
}

// pushdownParityQueries covers every shape the contract routes differently:
// zone-skippable windows, equality on strings, disjunctions (ineligible for
// pushdown), grouped aggregation, projection, LIMIT, and joins.
func pushdownParityQueries(t *testing.T, ds *datagen.Dataset) []string {
	t.Helper()
	lo, hi := tsWindow(ds, 0.40, 0.42)
	lo2, hi2 := tsWindow(ds, 0.85, 0.86)
	host := ds.DB.Table("readings").ColByName("host").Value(7).S
	return []string{
		"SELECT COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi),
		"SELECT COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo2) + " AND readings.ts <= " + itoa(hi2) + " AND readings.metric = 2",
		"SELECT COUNT(*) FROM readings WHERE readings.host = '" + host + "'",
		"SELECT COUNT(*) FROM readings WHERE readings.metric = 1 OR readings.metric = 4",
		"SELECT readings.metric, COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi) + " GROUP BY readings.metric",
		"SELECT host FROM readings WHERE readings.ts >= " + itoa(lo2) + " AND readings.ts <= " + itoa(hi2) + " LIMIT 40",
		"SELECT COUNT(*) FROM readings r, devices d WHERE r.device_id = d.id AND d.fleet = 1 AND r.ts >= " + itoa(lo) + " AND r.ts <= " + itoa(hi),
		"SELECT COUNT(DISTINCT readings.host) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi),
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// sameResult compares two results byte for byte.
func sameResult(a, b *Result) bool {
	return reflect.DeepEqual(a.Columns, b.Columns) && reflect.DeepEqual(a.Rows, b.Rows)
}

// TestPushdownOnOffParity is the contract's correctness gate: with the
// knob on and off, every query shape must produce byte-identical results.
func TestPushdownOnOffParity(t *testing.T) {
	e, ds := tsEngine(t, 0.05)
	for _, sql := range pushdownParityQueries(t, ds) {
		e.Pushdown = 1
		on, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s (pushdown on): %v", sql, err)
		}
		e.Pushdown = -1
		off, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s (pushdown off): %v", sql, err)
		}
		if !sameResult(on, off) {
			t.Errorf("%s: pushdown-on result diverges from pushdown-off", sql)
		}
	}
}

// TestPushdownWorkerParity asserts byte-identical results AND identical
// block-I/O accounting (read and skipped, total and per binding) at 1
// worker vs 4: pushdown decisions are block-local, so parallelism must not
// change what is charged.
func TestPushdownWorkerParity(t *testing.T) {
	e, ds := tsEngine(t, 0.05)
	e.Pushdown = 1
	for _, sql := range pushdownParityQueries(t, ds) {
		e.Parallelism = 1
		seq, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s (1 worker): %v", sql, err)
		}
		e.Parallelism = 4
		par, err := e.Run(sql)
		if err != nil {
			t.Fatalf("%s (4 workers): %v", sql, err)
		}
		if !sameResult(seq, par) {
			t.Errorf("%s: 4-worker result diverges from sequential", sql)
		}
		if sr, pr := seq.Metrics.IO.BlocksRead(), par.Metrics.IO.BlocksRead(); sr != pr {
			t.Errorf("%s: blocks read %d sequential vs %d parallel", sql, sr, pr)
		}
		if ss, ps := seq.Metrics.IO.BlocksSkipped(), par.Metrics.IO.BlocksSkipped(); ss != ps {
			t.Errorf("%s: blocks skipped %d sequential vs %d parallel", sql, ss, ps)
		}
		if !reflect.DeepEqual(seq.Metrics.ScanBlocks, par.Metrics.ScanBlocks) {
			t.Errorf("%s: per-scan block stats diverge: %v vs %v",
				sql, seq.Metrics.ScanBlocks, par.Metrics.ScanBlocks)
		}
	}
}

// TestPushdownSkipsWindowBlocks pins the headline win: a narrow time
// window over the append-ordered readings stream must read a small
// fraction of the blocks the unpushed scan reads, skip the rest via zone
// maps, and record the skips in a scan_pushdown span.
func TestPushdownSkipsWindowBlocks(t *testing.T) {
	e, ds := tsEngine(t, 0.1)
	lo, hi := tsWindow(ds, 0.50, 0.51)
	sql := "SELECT COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi)

	e.Pushdown = 1
	tr := obs.NewTrace()
	on, err := e.RunTraced(sql, tr)
	if err != nil {
		t.Fatal(err)
	}
	e.Pushdown = -1
	off, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	onRead, offRead := on.Metrics.IO.BlocksRead(), off.Metrics.IO.BlocksRead()
	if onRead*3 > offRead {
		t.Errorf("narrow window: pushdown read %d blocks, off path %d (< 3x reduction)", onRead, offRead)
	}
	if on.Metrics.IO.BlocksSkipped() == 0 {
		t.Error("narrow window skipped no blocks")
	}
	var span *obs.Span
	for _, s := range tr.Spans() {
		if s.Op == obs.OpScanPushdown {
			span = &s
			break
		}
	}
	if span == nil {
		t.Fatal("no scan_pushdown span recorded")
	}
	if int64(span.Value) != on.Metrics.IO.BlocksSkipped() {
		t.Errorf("span skipped %v != metrics skipped %d", span.Value, on.Metrics.IO.BlocksSkipped())
	}
}

// TestProjectionAndLimit validates the projection/limit pushdown shape
// against a directly computed expectation, and that the limit actually
// stops the scan early (fewer blocks than the unlimited scan).
func TestProjectionAndLimit(t *testing.T) {
	db := buildWide(storage.BlockSize * 8)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	e.Pushdown = 1

	res, err := e.Run("SELECT s, v FROM wide WHERE t >= 20 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("LIMIT 10 returned %d rows", len(res.Rows))
	}
	if !reflect.DeepEqual(res.Columns, []string{"s", "v"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Expected: first 10 matching rows in row order.
	tab := db.Table("wide")
	sCol, vCol, tCol := tab.ColByName("s"), tab.ColByName("v"), tab.ColByName("t")
	want := 0
	for i := 0; i < tab.NumRows() && want < 10; i++ {
		if tCol.Value(i).I >= 20 {
			if res.Rows[want][0] != sCol.Value(i) || res.Rows[want][1] != vCol.Value(i) {
				t.Fatalf("row %d = %v, want [%v %v]", want, res.Rows[want], sCol.Value(i), vCol.Value(i))
			}
			want++
		}
	}
	if want != 10 {
		t.Fatalf("only matched %d of 10 expected rows", want)
	}

	unlimited, err := e.Run("SELECT s, v FROM wide WHERE t >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if lim, unlim := res.Metrics.IO.BlocksRead(), unlimited.Metrics.IO.BlocksRead(); lim >= unlim {
		t.Errorf("LIMIT read %d blocks, unlimited read %d — limit did not stop early", lim, unlim)
	}

	// Grouped aggregation with LIMIT truncates after the sorted output.
	full, err := e.Run("SELECT s, COUNT(*) FROM wide GROUP BY s")
	if err != nil {
		t.Fatal(err)
	}
	lim2, err := e.Run("SELECT s, COUNT(*) FROM wide GROUP BY s LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(lim2.Rows) != 2 || !reflect.DeepEqual(full.Rows[:2], lim2.Rows) {
		t.Errorf("grouped LIMIT 2 = %v, want prefix of %v", lim2.Rows, full.Rows)
	}
}

// TestPlanCacheReplaysPushdown: a cached template replays its pushdown
// decision, but live gates (knob off, ForceReader ablation) override the
// replayed value on every hit.
func TestPlanCacheReplaysPushdown(t *testing.T) {
	e, ds := tsEngine(t, 0.02)
	e.Pushdown = 1
	e.PlanCache = NewPlanCache(0)
	lo, hi := tsWindow(ds, 0.3, 0.4)
	sql := "SELECT COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi)

	plan := func() *Plan {
		t.Helper()
		p, err := e.Plan(analyze(t, e, sql))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !plan().Scans[0].Pushdown {
		t.Fatal("cold plan did not push down a conjunctive range scan")
	}
	if !plan().Scans[0].Pushdown {
		t.Error("warm cache hit lost the pushdown decision")
	}
	e.Pushdown = -1
	if plan().Scans[0].Pushdown {
		t.Error("knob off, but warm hit replayed pushdown anyway")
	}
	e.Pushdown = 1
	e.ForceReader = "single-stage"
	if plan().Scans[0].Pushdown {
		t.Error("ForceReader ablation, but warm hit replayed pushdown anyway")
	}
}

func analyze(t *testing.T, e *Engine, sql string) *Query {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Analyze(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestExplainPredictedVsActualBlocks: Explain predicts a pushed-down
// scan's block reads from zone maps; AnnotateExecution fills the executed
// count, and prediction must upper-bound reality.
func TestExplainPredictedVsActualBlocks(t *testing.T) {
	e, ds := tsEngine(t, 0.05)
	e.Pushdown = 1
	lo, hi := tsWindow(ds, 0.60, 0.62)
	sql := "SELECT COUNT(*) FROM readings WHERE readings.ts >= " + itoa(lo) + " AND readings.ts <= " + itoa(hi) + " AND readings.metric = 3"

	ex, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	var scan *ExplainNode
	for i := range ex.Nodes {
		if ex.Nodes[i].Kind == "scan" {
			scan = &ex.Nodes[i]
		}
	}
	if scan == nil || !scan.Pushdown {
		t.Fatalf("no pushdown scan node in %+v", ex.Nodes)
	}
	if scan.PredictedBlocks == 0 {
		t.Fatal("no block prediction for a constrained pushdown scan")
	}
	res, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	ex.AnnotateExecution(&res.Metrics)
	if scan.ActualBlocks == 0 {
		t.Fatal("AnnotateExecution left ActualBlocks empty")
	}
	if scan.ActualBlocks > scan.PredictedBlocks {
		t.Errorf("actual %d blocks exceeds zone-map prediction %d", scan.ActualBlocks, scan.PredictedBlocks)
	}
	if sb := res.Metrics.ScanBlocks["readings"]; scan.ActualBlocks != sb.Read {
		t.Errorf("annotated %d != metrics %d", scan.ActualBlocks, sb.Read)
	}
}
