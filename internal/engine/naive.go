package engine

import (
	"fmt"

	"bytecard/internal/sqlparse"
	"bytecard/internal/types"
)

// RunNaive executes the query with a deliberately simple row-at-a-time
// nested-loop interpreter: no optimizer, no hash joins, no columnar
// readers. It exists purely as a reference oracle — integration tests
// cross-check every optimized execution against it on small datasets.
func (e *Engine) RunNaive(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	q, err := e.Analyze(stmt)
	if err != nil {
		return nil, err
	}

	// Enumerate the filtered cross product, checking join conditions.
	var match [][]int32
	var rec func(level int, tuple []int32)
	rec = func(level int, tuple []int32) {
		if level == len(q.Tables) {
			cp := make([]int32, len(tuple))
			copy(cp, tuple)
			match = append(match, cp)
			return
		}
		t := q.Tables[level]
		for i := 0; i < t.Table.NumRows(); i++ {
			row := int32(i)
			if t.Filter != nil {
				ok := t.Filter.Eval(func(_, col string) types.Datum {
					//bytecard:rawscan-ok brute-force oracle verifies results, not I/O accounting
					return t.Table.ColByName(col).Value(int(row))
				})
				if !ok {
					continue
				}
			}
			joinsOK := true
			for _, j := range q.Joins {
				li, ri := bindingIndex(q, j.LeftTab), bindingIndex(q, j.RightTab)
				if li > level || ri > level || (li != level && ri != level) {
					continue
				}
				var lv, rv types.Datum
				if li == level {
					lv = valueAt(q, li, row, j.LeftCol)
				} else {
					lv = valueAt(q, li, tuple[li], j.LeftCol)
				}
				if ri == level {
					rv = valueAt(q, ri, row, j.RightCol)
				} else {
					rv = valueAt(q, ri, tuple[ri], j.RightCol)
				}
				if !lv.Equal(rv) {
					joinsOK = false
					break
				}
			}
			if !joinsOK {
				continue
			}
			rec(level+1, append(tuple, row))
		}
	}
	rec(0, nil)

	// Aggregate with plain maps.
	fetch := func(ref ColRef, tuple []int32) types.Datum {
		i := bindingIndex(q, ref.Tab)
		return valueAt(q, i, tuple[i], ref.Col)
	}
	res := &Result{}
	for _, item := range q.Stmt.Items {
		res.Columns = append(res.Columns, item.String())
	}
	if len(q.GroupBy) == 0 {
		accs := newAccs(q.Aggs)
		for _, tuple := range match {
			updateAccs(accs, q.Aggs, fetch, tuple, 1)
		}
		res.Rows = [][]types.Datum{buildOutputRow(q, nil, accs)}
		return res, nil
	}
	type group struct {
		key  []types.Datum
		accs []aggAcc
	}
	groups := map[uint64]*group{}
	for _, tuple := range match {
		key := make([]types.Datum, len(q.GroupBy))
		for i, g := range q.GroupBy {
			key[i] = fetch(g, tuple)
		}
		h := hashKey(key)
		g, ok := groups[h]
		if !ok {
			g = &group{key: key, accs: newAccs(q.Aggs)}
			groups[h] = g
		}
		updateAccs(g.accs, q.Aggs, fetch, tuple, 1)
	}
	for _, g := range groups {
		res.Rows = append(res.Rows, buildOutputRow(q, g.key, g.accs))
	}
	sortRows(res.Rows)
	return res, nil
}

func bindingIndex(q *Query, binding string) int {
	for i, t := range q.Tables {
		if t.Binding == binding {
			return i
		}
	}
	panic(fmt.Sprintf("engine: unknown binding %s", binding))
}

func valueAt(q *Query, tableIdx int, row int32, col string) types.Datum {
	//bytecard:rawscan-ok brute-force oracle verifies results, not I/O accounting
	return q.Tables[tableIdx].Table.ColByName(col).Value(int(row))
}
