// Package engine implements the analytical query engine ByteCard plugs
// into: semantic analysis, a cost-based optimizer whose decisions —
// materialization strategy, predicate column order, join order, and
// aggregation hash-table sizing — are all driven by a pluggable cardinality
// estimator, and columnar executors with block-level I/O accounting and
// hash-table resize counting. It is the reproduction substrate for the
// paper's end-to-end experiments.
package engine

import (
	"fmt"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/sqlparse"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// QueryTable is one resolved FROM entry.
type QueryTable struct {
	// Binding is the name the query uses (alias or table name).
	Binding string
	// Name is the physical table name.
	Name string
	// Table is the storage handle.
	Table *storage.Table
	// Filter is the table-local filter tree (leaf Table fields hold the
	// binding), or nil.
	Filter *expr.Node
}

// JoinCond is one equi-join condition between two resolved tables,
// referencing bindings.
type JoinCond struct {
	LeftTab, LeftCol   string
	RightTab, RightCol string
}

// String renders the condition.
func (j JoinCond) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftTab, j.LeftCol, j.RightTab, j.RightCol)
}

// ColRef references a column of a bound table.
type ColRef struct {
	Tab string // binding
	Col string
}

// String renders the reference.
func (c ColRef) String() string { return c.Tab + "." + c.Col }

// AggKind identifies an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggCountStar AggKind = iota
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate of the select list.
type AggSpec struct {
	Kind AggKind
	// Cols holds the aggregated columns (several for COUNT DISTINCT).
	Cols []ColRef
}

// Query is the analyzed form of a select statement.
type Query struct {
	Stmt    *sqlparse.SelectStmt
	Tables  []*QueryTable
	Joins   []JoinCond
	GroupBy []ColRef
	Aggs    []AggSpec
	// Select lists the projected columns of a projection (non-aggregate)
	// query, in select-list order; empty for aggregate queries. Projection
	// queries preserve scan/join row order and skip intermediate
	// compression (which reorders tuples).
	Select []ColRef
	// Limit caps the result row count (0 = unlimited). For single-table
	// projection queries it is pushed into the scan so reading stops at
	// the Limit-th match.
	Limit int
	// OutCols mirrors the select list: group columns and aggregates in
	// select-list order; -1 entries index Aggs, >=0 entries index GroupBy.
	outPlan []outputItem
}

type outputItem struct {
	// isAgg selects between aggIdx and groupIdx.
	isAgg    bool
	aggIdx   int
	groupIdx int
}

// TableByBinding returns the table bound to name, or nil.
func (q *Query) TableByBinding(name string) *QueryTable {
	for _, t := range q.Tables {
		if t.Binding == name {
			return t
		}
	}
	return nil
}

// ScanBlockStats is one scanned binding's block accounting: blocks charged
// to IOStats versus blocks zone-map pruning skipped without reading,
// summed over the binding's columns.
type ScanBlockStats struct {
	Read    int
	Skipped int
}

// Metrics records the observable cost of one query execution — the
// quantities the paper's Figure 6 experiments chart.
type Metrics struct {
	// IO accumulates block reads across all scans of the query.
	IO *storage.IOStats
	// HashResizes counts aggregation hash-table growth events.
	HashResizes int64
	// RowsMaterialized counts tuples constructed across operators.
	RowsMaterialized int64
	// SIPPruned counts rows dropped by sideways information passing
	// before their predicate columns were read.
	SIPPruned int64
	// InitialAggCapacity is the presized aggregation capacity (0 when the
	// query has no aggregation).
	InitialAggCapacity int
	// ReaderStrategy maps each scanned binding to "single-stage" or
	// "multi-stage".
	ReaderStrategy map[string]string
	// ScanBlocks maps each scanned binding to its block read/skip counts
	// (the per-scan-node actuals EXPLAIN annotation compares against the
	// zone-map prediction).
	ScanBlocks map[string]ScanBlockStats
	// EstFinalRows is the optimizer's cardinality estimate for the
	// filtered join, copied from the plan so estimate and truth travel
	// together.
	EstFinalRows float64
	// ActualFinalRows is the exact logical cardinality of the filtered
	// join the executor observed (multiplicity-aware, unaffected by
	// intermediate compression) — the per-plan ground truth q-error
	// monitoring compares EstFinalRows against.
	ActualFinalRows int64
	// ParallelWorkers is the morsel-driven worker count the executor ran
	// with (1 means the sequential path).
	ParallelWorkers int
	// PlanCacheHit marks runs whose plan was rebuilt from the template
	// plan cache rather than planned fresh.
	PlanCacheHit bool
	// PlanDuration includes all estimator calls made during optimization.
	PlanDuration time.Duration
	// ExecDuration is pure execution time.
	ExecDuration time.Duration
}

// Result is a query result: column labels and materialized rows.
type Result struct {
	Columns []string
	Rows    [][]types.Datum
	Metrics Metrics
}

// ScalarInt returns the single int64 cell of a one-row one-column result
// (the shape of COUNT(*) queries).
func (r *Result) ScalarInt() (int64, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return 0, fmt.Errorf("engine: result is %dx%d, not scalar", len(r.Rows), len(r.Columns))
	}
	d := r.Rows[0][0]
	if d.K != types.KindInt64 {
		return 0, fmt.Errorf("engine: scalar result is %s, not INT64", d.K)
	}
	return d.I, nil
}

// CardEstimator is the estimation interface the optimizer consumes. The
// three implementations compared in the paper — sketch-based, sample-based,
// and ByteCard — all satisfy it.
type CardEstimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// EstimateFilter returns the estimated number of rows of t surviving
	// its filter (t.Filter may be nil).
	EstimateFilter(t *QueryTable) float64
	// EstimateConj returns the estimated selectivity fraction of a
	// conjunction of predicates over t, used for predicate column
	// ordering in the multi-stage reader.
	EstimateConj(t *QueryTable, preds []expr.Pred) float64
	// EstimateJoin returns the estimated row count of joining the given
	// tables (with their filters) under the given conditions. tables has
	// at least two entries and the conditions connect them.
	// Implementations must not retain the tables/joins slices past the
	// call — the planner reuses the backing arrays between requests.
	EstimateJoin(tables []*QueryTable, joins []JoinCond) float64
	// EstimateGroupNDV returns the estimated number of distinct group
	// keys of the query (the aggregation hash-table sizing input).
	EstimateGroupNDV(q *Query) float64
}

// JoinBatchItem is one join-size request within a batch: a connected table
// subset with the join conditions internal to it (the same arguments one
// EstimateJoin call would receive).
type JoinBatchItem struct {
	Tables []*QueryTable
	Conds  []JoinCond
	// Key, when non-empty, is the caller's canonical identity for this
	// subset: two items anywhere (across ranks, across Plan calls) carry
	// the same Key only if their tables, filters (constants included),
	// and join conditions are semantically identical, so the estimate of
	// one is valid for the other. Estimators may memoize results by Key;
	// a deterministic estimator returns the identical value either way,
	// so memoization preserves the byte-identity contract below. An empty
	// Key opts the item out of memoization.
	Key string
}

// BatchCardEstimator is optionally implemented by estimators that can
// answer many join-size requests in one call. The planner's join-order DP
// hands over a whole frontier rank at once, letting the estimator amortize
// per-call guard/trace overhead into one span and fan the independent items
// across workers. Results align with items and every entry must be filled —
// per-item failures take the same fallback value EstimateJoin would return.
// Item results must not depend on batch composition or worker count: the
// planner requires batched planning to be byte-identical to the sequential
// path. The planner itself calls EstimateJoinBatch serially; whatever
// concurrency the implementation uses internally is its own to make safe.
type BatchCardEstimator interface {
	CardEstimator
	// EstimateJoinBatch estimates every item, using at most parallelism
	// concurrent workers, and returns one estimate per item.
	EstimateJoinBatch(items []JoinBatchItem, parallelism int) []float64
}
