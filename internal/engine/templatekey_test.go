package engine

import (
	"testing"

	"bytecard/internal/expr"
	"bytecard/internal/types"
)

func tkLeaf(tab, col string, op expr.CmpOp, v int64) *expr.Node {
	return expr.Leaf(expr.Pred{Table: tab, Col: col, Op: op, Val: types.Int(v)})
}

func tkTable(binding, name string, filter *expr.Node) *QueryTable {
	return &QueryTable{Binding: binding, Name: name, Filter: filter}
}

func TestTemplateKeyStripsConstants(t *testing.T) {
	a := TemplateKey([]*QueryTable{tkTable("f", "fact", tkLeaf("f", "val", expr.OpLt, 10))}, nil)
	b := TemplateKey([]*QueryTable{tkTable("f", "fact", tkLeaf("f", "val", expr.OpLt, 9000))}, nil)
	if a != b {
		t.Errorf("literal change split the template:\n%q\n%q", a, b)
	}
	// Operator and column are part of the shape.
	c := TemplateKey([]*QueryTable{tkTable("f", "fact", tkLeaf("f", "val", expr.OpGt, 10))}, nil)
	if a == c {
		t.Error("operator change did not split the template")
	}
	d := TemplateKey([]*QueryTable{tkTable("f", "fact", tkLeaf("f", "flag", expr.OpLt, 10))}, nil)
	if a == d {
		t.Error("column change did not split the template")
	}
}

func TestTemplateKeyCanonicalOrdering(t *testing.T) {
	f := tkTable("f", "fact", tkLeaf("f", "val", expr.OpLt, 10))
	d := tkTable("d", "dim", tkLeaf("d", "cat", expr.OpEq, 3))
	j := JoinCond{LeftTab: "f", LeftCol: "dim_id", RightTab: "d", RightCol: "id"}
	jSwap := JoinCond{LeftTab: "d", LeftCol: "id", RightTab: "f", RightCol: "dim_id"}

	a := TemplateKey([]*QueryTable{f, d}, []JoinCond{j})
	b := TemplateKey([]*QueryTable{d, f}, []JoinCond{jSwap})
	if a != b {
		t.Errorf("table/join-side order split the template:\n%q\n%q", a, b)
	}
}

func TestTemplateKeyFilterShapeCanonicalization(t *testing.T) {
	p1 := tkLeaf("f", "val", expr.OpLt, 10)
	p2 := tkLeaf("f", "flag", expr.OpEq, 1)
	a := TemplateKey([]*QueryTable{tkTable("f", "fact", expr.And(p1, p2))}, nil)
	b := TemplateKey([]*QueryTable{tkTable("f", "fact", expr.And(p2, p1))}, nil)
	if a != b {
		t.Error("AND operand order split the template")
	}
	c := TemplateKey([]*QueryTable{tkTable("f", "fact", expr.Or(p1, p2))}, nil)
	if a == c {
		t.Error("AND and OR shapes share a template")
	}
	// A missing filter is its own shape.
	d := TemplateKey([]*QueryTable{tkTable("f", "fact", nil)}, nil)
	if a == d {
		t.Error("unfiltered scan shares a template with a filtered one")
	}
}

func TestTemplateKeyDistinguishesBindings(t *testing.T) {
	// Self-join: same physical table under two bindings must not collapse
	// into the single-scan template.
	one := TemplateKey([]*QueryTable{tkTable("a", "fact", nil)}, nil)
	two := TemplateKey([]*QueryTable{
		tkTable("a", "fact", nil), tkTable("b", "fact", nil),
	}, []JoinCond{{LeftTab: "a", LeftCol: "id", RightTab: "b", RightCol: "id"}})
	if one == two {
		t.Error("self-join shares a template with the single scan")
	}
}
