package engine

import (
	"fmt"
	"reflect"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/types"
)

// TestParallelMatchesSequential is the tentpole invariant: for every query
// shape the executor supports, the morsel-driven parallel path must produce
// byte-identical result rows and charge exactly the same block I/O as the
// sequential path.
func TestParallelMatchesSequential(t *testing.T) {
	datasets := map[string]*datagen.Dataset{
		"imdb":  datagen.IMDB(datagen.Config{Scale: 0.2, Seed: 31}),
		"stats": datagen.STATS(datagen.Config{Scale: 0.1, Seed: 32}),
	}
	queries := map[string][]string{
		"imdb": {
			"SELECT COUNT(*) FROM title",
			"SELECT COUNT(*) FROM title WHERE title.production_year > 2005",
			"SELECT COUNT(*), SUM(ci.person_id), MIN(ci.person_id), MAX(ci.person_id), AVG(ci.person_id) FROM cast_info ci WHERE ci.role_id < 4",
			"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year > 1995",
			"SELECT t.kind_id, COUNT(*), SUM(t.production_year) FROM title t GROUP BY t.kind_id",
			"SELECT COUNT(DISTINCT ci.person_id) FROM cast_info ci WHERE ci.role_id = 1",
			"SELECT t.kind_id, COUNT(*), COUNT(DISTINCT ci.role_id) FROM title t, cast_info ci WHERE ci.movie_id = t.id GROUP BY t.kind_id",
		},
		"stats": {
			"SELECT COUNT(*) FROM votes WHERE votes.vote_type = 2 OR votes.creation_year > 2012",
			"SELECT COUNT(*) FROM posts p, users u WHERE p.owner_user_id = u.id AND u.reputation > 50",
			"SELECT c.creation_year, COUNT(*), SUM(c.score), MIN(c.score), MAX(c.score) FROM comments c GROUP BY c.creation_year",
			"SELECT COUNT(*) FROM posts p, comments c, users u WHERE c.post_id = p.id AND p.owner_user_id = u.id AND u.reputation > 100",
		},
	}
	for name, ds := range datasets {
		for _, sql := range queries[name] {
			t.Run(name+"/"+sql, func(t *testing.T) {
				seq := New(ds.DB, ds.Schema, HeuristicEstimator{})
				seq.Parallelism = 1
				par := New(ds.DB, ds.Schema, HeuristicEstimator{})
				par.Parallelism = 4

				rs, err := seq.Run(sql)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := par.Run(sql)
				if err != nil {
					t.Fatal(err)
				}
				if rs.Metrics.ParallelWorkers != 1 || rp.Metrics.ParallelWorkers != 4 {
					t.Errorf("ParallelWorkers = %d/%d, want 1/4",
						rs.Metrics.ParallelWorkers, rp.Metrics.ParallelWorkers)
				}
				if !reflect.DeepEqual(rs.Rows, rp.Rows) {
					t.Fatalf("rows diverge:\nseq: %v\npar: %v", rs.Rows, rp.Rows)
				}
				if a, b := rs.Metrics.IO.BlocksRead(), rp.Metrics.IO.BlocksRead(); a != b {
					t.Errorf("BlocksRead diverge: seq %d, par %d", a, b)
				}
				if rs.Metrics.ActualFinalRows != rp.Metrics.ActualFinalRows {
					t.Errorf("ActualFinalRows diverge: %d vs %d",
						rs.Metrics.ActualFinalRows, rp.Metrics.ActualFinalRows)
				}
			})
		}
	}
}

// TestParallelForcedReaders re-runs a filter query under both pinned reader
// strategies so the parallel single-stage and multi-stage scan paths are
// each exercised explicitly.
func TestParallelForcedReaders(t *testing.T) {
	ds := datagen.IMDB(datagen.Config{Scale: 0.2, Seed: 33})
	sql := "SELECT COUNT(*) FROM cast_info ci WHERE ci.role_id = 2 AND ci.person_id < 500"
	for _, strategy := range []string{"single-stage", "multi-stage"} {
		seq := New(ds.DB, ds.Schema, HeuristicEstimator{})
		seq.Parallelism = 1
		seq.ForceReader = strategy
		par := New(ds.DB, ds.Schema, HeuristicEstimator{})
		par.Parallelism = 4
		par.ForceReader = strategy
		rs, err := seq.Run(sql)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.Run(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs.Rows, rp.Rows) {
			t.Errorf("%s: rows diverge: %v vs %v", strategy, rs.Rows, rp.Rows)
		}
		if a, b := rs.Metrics.IO.BlocksRead(), rp.Metrics.IO.BlocksRead(); a != b {
			t.Errorf("%s: BlocksRead diverge: seq %d, par %d", strategy, a, b)
		}
	}
}

func TestKeysEqualRaggedLengths(t *testing.T) {
	a := []types.Datum{types.Int(1), types.Int(2)}
	b := []types.Datum{types.Int(1)}
	if keysEqual(a, b) || keysEqual(b, a) {
		t.Error("ragged key tuples must compare unequal")
	}
	if keysEqual(a, []types.Datum{types.Int(1), types.Int(3)}) {
		t.Error("differing tuples must compare unequal")
	}
	if !keysEqual(a, []types.Datum{types.Int(1), types.Int(2)}) {
		t.Error("equal tuples must compare equal")
	}
	if !keysEqual(nil, []types.Datum{}) {
		t.Error("empty tuples are equal regardless of nil-ness")
	}
}

// TestDistinctSetCollisions is the regression test for the COUNT DISTINCT
// accumulator: two different key tuples forced onto the same 64-bit hash
// must count as two distinct values, and re-adding either must not.
func TestDistinctSetCollisions(t *testing.T) {
	s := newDistinctSet()
	const h = uint64(0xdeadbeef)
	s.add(h, []types.Datum{types.Int(1)})
	s.add(h, []types.Datum{types.Int(2)}) // colliding hash, different datum
	s.add(h, []types.Datum{types.Int(1)}) // duplicate
	s.add(h, []types.Datum{types.Str("1")})
	if s.n != 3 {
		t.Errorf("distinct count = %d, want 3 (collisions must not dedup different datums)", s.n)
	}
	// The inserted keys must be copies: mutating the caller's buffer must
	// not corrupt the set.
	buf := []types.Datum{types.Int(7)}
	s.add(h, buf)
	buf[0] = types.Int(8)
	s.add(h, buf)
	if s.n != 5 {
		t.Errorf("distinct count = %d, want 5 (keys must be copied on insert)", s.n)
	}
}

func TestDistinctSetMerge(t *testing.T) {
	a, b := newDistinctSet(), newDistinctSet()
	a.add(1, []types.Datum{types.Int(10)})
	a.add(2, []types.Datum{types.Int(20)})
	b.add(2, []types.Datum{types.Int(20)}) // shared member
	b.add(2, []types.Datum{types.Int(21)}) // colliding with it
	b.add(3, []types.Datum{types.Int(30)})
	a.merge(b)
	if a.n != 4 {
		t.Errorf("merged distinct count = %d, want 4", a.n)
	}
}

// TestAggTableAllCollidingHashes drives the aggregation table with every
// key hashed to the same value, across enough inserts to force several
// resizes — lookups must still resolve each key to its own group.
func TestAggTableAllCollidingHashes(t *testing.T) {
	tab := newAggTable(1)
	aggs := []AggSpec{{Kind: AggCountStar}}
	const n = 200
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			key := []types.Datum{types.Int(int64(i))}
			accs := tab.lookupHash(0, key, func() []aggAcc { return newAccs(aggs) })
			accs[0].count++
		}
	}
	if tab.used != n {
		t.Fatalf("groups = %d, want %d", tab.used, n)
	}
	if tab.resizes == 0 {
		t.Error("expected resizes growing 200 groups from capacity 16")
	}
	for i := range tab.slots {
		s := &tab.slots[i]
		if s.used && s.accs[0].count != 3 {
			t.Errorf("group %v count = %d, want 3", s.key, s.accs[0].count)
		}
	}
}

// TestAggTableDuplicateKeysAcrossResizes interleaves re-used keys with
// fresh ones so lookups must keep finding existing groups while the table
// rehashes underneath them.
func TestAggTableDuplicateKeysAcrossResizes(t *testing.T) {
	tab := newAggTable(1)
	aggs := []AggSpec{{Kind: AggCountStar}}
	const n = 500
	for i := 0; i < n; i++ {
		for _, k := range []int64{int64(i), int64(i % 7)} {
			key := []types.Datum{types.Int(k), types.Str(fmt.Sprint(k % 3))}
			accs := tab.lookup(key, func() []aggAcc { return newAccs(aggs) })
			accs[0].count++
		}
	}
	if tab.used != n {
		t.Fatalf("groups = %d, want %d", tab.used, n)
	}
	var total int64
	for i := range tab.slots {
		if tab.slots[i].used {
			total += tab.slots[i].accs[0].count
		}
	}
	if total != 2*n {
		t.Errorf("total count = %d, want %d", total, 2*n)
	}
	// Keys 0..6 absorbed the duplicate stream: n/7-ish extra counts each.
	key0 := []types.Datum{types.Int(0), types.Str("0")}
	if got := tab.lookup(key0, func() []aggAcc { return newAccs(aggs) })[0].count; got != 1+(n+6)/7 {
		t.Errorf("key 0 count = %d, want %d", got, 1+(n+6)/7)
	}
}

func TestAggTableAbsorb(t *testing.T) {
	aggs := []AggSpec{{Kind: AggCountStar}, {Kind: AggSum}}
	mk := func() []aggAcc { return newAccs(aggs) }
	a, b := newAggTable(4), newAggTable(4)
	for i := 0; i < 10; i++ {
		accs := a.lookup([]types.Datum{types.Int(int64(i % 4))}, mk)
		accs[0].count++
		accs[1].sum += float64(i)
	}
	for i := 0; i < 10; i++ {
		accs := b.lookup([]types.Datum{types.Int(int64(i % 5))}, mk)
		accs[0].count++
		accs[1].sum += float64(i)
	}
	a.absorb(b, aggs)
	if a.used != 5 {
		t.Fatalf("merged groups = %d, want 5", a.used)
	}
	var count int64
	var sum float64
	for i := range a.slots {
		if a.slots[i].used {
			count += a.slots[i].accs[0].count
			sum += a.slots[i].accs[1].sum
		}
	}
	if count != 20 || sum != 90 {
		t.Errorf("merged totals = (%d, %g), want (20, 90)", count, sum)
	}
}

func TestMergeAccs(t *testing.T) {
	aggs := []AggSpec{
		{Kind: AggCountStar},
		{Kind: AggCountDistinct},
		{Kind: AggSum},
		{Kind: AggAvg},
		{Kind: AggMin},
		{Kind: AggMax},
	}
	dst, src := newAccs(aggs), newAccs(aggs)
	dst[0].count = 3
	src[0].count = 4
	dst[1].distinct.add(1, []types.Datum{types.Int(1)})
	src[1].distinct.add(1, []types.Datum{types.Int(1)})
	src[1].distinct.add(2, []types.Datum{types.Int(2)})
	dst[2].sum = 1.5
	src[2].sum = 2.5
	dst[3].sum, dst[3].count = 10, 2
	src[3].sum, src[3].count = 20, 3
	dst[4].min, dst[4].max, dst[4].seen = types.Int(5), types.Int(5), true
	src[4].min, src[4].max, src[4].seen = types.Int(3), types.Int(9), true
	// dst[5] never saw a value; src[5] did — the merge must adopt it.
	src[5].min, src[5].max, src[5].seen = types.Int(7), types.Int(7), true

	mergeAccs(dst, src, aggs)
	if dst[0].count != 7 {
		t.Errorf("count = %d, want 7", dst[0].count)
	}
	if dst[1].distinct.n != 2 {
		t.Errorf("distinct = %d, want 2", dst[1].distinct.n)
	}
	if dst[2].sum != 4 {
		t.Errorf("sum = %g, want 4", dst[2].sum)
	}
	if dst[3].sum != 30 || dst[3].count != 5 {
		t.Errorf("avg state = (%g, %d), want (30, 5)", dst[3].sum, dst[3].count)
	}
	if !dst[4].seen || dst[4].min.I != 3 || dst[4].max.I != 9 {
		t.Errorf("min/max = (%v, %v), want (3, 9)", dst[4].min, dst[4].max)
	}
	if !dst[5].seen || dst[5].min.I != 7 || dst[5].max.I != 7 {
		t.Errorf("unseen dst must adopt src: (%v, %v)", dst[5].min, dst[5].max)
	}
}

// TestSortRowsMixedKinds pins down the cross-kind ordering: datums of
// different, non-comparable kinds order by kind instead of panicking in
// Datum.Compare, numerics of different kinds still compare by value, and
// the order is deterministic across shuffles.
func TestSortRowsMixedKinds(t *testing.T) {
	mk := func() [][]types.Datum {
		return [][]types.Datum{
			{types.Str("b"), types.Int(1)},
			{types.Int(2), types.Int(2)},
			{types.Float(1.5), types.Int(3)},
			{types.Str("a"), types.Int(4)},
			{types.Int(1), types.Int(5)},
		}
	}
	a, b := mk(), mk()
	// Reverse b before sorting: both orders must converge.
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	sortRows(a)
	sortRows(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sortRows not deterministic:\n%v\n%v", a, b)
	}
	// Numerics (int and float mixed) precede strings, ordered by value.
	wantFirst := []int64{5, 3, 2} // values 1, 1.5, 2
	for i, id := range wantFirst {
		if a[i][1].I != id {
			t.Fatalf("row %d = %v, want second cell %d (full order %v)", i, a[i], id, a)
		}
	}
	if a[3][0].S != "a" || a[4][0].S != "b" {
		t.Errorf("string rows out of order: %v", a)
	}
}
