package engine

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"bytecard/internal/expr"
)

// ScanPlan records the optimizer's materialization decision for one table.
type ScanPlan struct {
	TableIdx int
	// Strategy is "single-stage" or "multi-stage".
	Strategy string
	// ColOrder is the predicate-column order for the multi-stage reader.
	ColOrder []string
	// EstRows is the estimated filtered row count.
	EstRows float64
}

// Plan is a fully optimized physical plan.
type Plan struct {
	Query *Query
	Scans []*ScanPlan
	// JoinOrder lists table indices in left-deep join sequence; the first
	// entry is the leftmost base table.
	JoinOrder []int
	// JoinEstRows holds the estimated cardinality after each join step,
	// aligned with JoinOrder[1:] (empty for single-table queries).
	JoinEstRows []float64
	// EstFinalRows is the estimated cardinality of the joined, filtered
	// relation.
	EstFinalRows float64
	// AggCapacity is the presized aggregation hash-table capacity.
	AggCapacity int
}

// Plan optimizes the analyzed query: per-scan materialization strategy and
// column order, join order via dynamic programming over connected subsets,
// and aggregation hash-table presizing — each decision driven by the
// engine's estimator, which is exactly where ByteCard plugs in.
func (e *Engine) Plan(q *Query) (*Plan, error) {
	p := &Plan{Query: q}
	for i := range q.Tables {
		p.Scans = append(p.Scans, e.planScan(q, i))
	}
	if err := e.planJoinOrder(p); err != nil {
		return nil, err
	}
	e.planAggregation(p)
	return p, nil
}

// planScan chooses the reader strategy and predicate column order.
func (e *Engine) planScan(q *Query, idx int) *ScanPlan {
	t := q.Tables[idx]
	sp := &ScanPlan{TableIdx: idx, Strategy: "single-stage"}
	n := float64(t.Table.NumRows())
	sp.EstRows = e.Est.EstimateFilter(t)
	if sp.EstRows < 0 {
		sp.EstRows = 0
	}
	if sp.EstRows > n {
		sp.EstRows = n
	}
	preds, isConj := t.Filter.Conjunction()
	predCols := distinctCols(preds)
	switch {
	case e.ForceReader != "":
		sp.Strategy = e.ForceReader
	case !isConj || len(predCols) < 2:
		// OR trees and zero/one-column filters gain nothing from staging.
		sp.Strategy = "single-stage"
	case n > 0 && sp.EstRows/n < e.readerThreshold():
		sp.Strategy = "multi-stage"
	}
	if sp.Strategy == "multi-stage" {
		switch {
		case !isConj:
			// The staged reader only decomposes conjunctions; downgrade
			// even when forced.
			sp.Strategy = "single-stage"
		case len(predCols) >= 2:
			sp.ColOrder = e.orderPredColumns(t, preds, predCols)
		default:
			sp.ColOrder = predCols
		}
	}
	return sp
}

func distinctCols(preds []expr.Pred) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// orderPredColumns greedily orders predicate columns by conditional
// selectivity: each step adds the column whose predicates shrink the
// running conjunction the most, letting the estimator's cross-column
// modelling (the BN joint distribution) pay off. Enumeration early-stops
// once the running selectivity exceeds a threshold; remaining columns are
// appended by single-column selectivity.
func (e *Engine) orderPredColumns(t *QueryTable, preds []expr.Pred, cols []string) []string {
	predsOf := func(col string) []expr.Pred {
		var out []expr.Pred
		for _, p := range preds {
			if p.Col == col {
				out = append(out, p)
			}
		}
		return out
	}
	remaining := append([]string(nil), cols...)
	var order []string
	var chosen []expr.Pred
	runningSel := 1.0
	for len(remaining) > 0 {
		if runningSel > DefaultColOrderEarlyStop && len(order) > 0 {
			// Early stop: order the tail by single-column selectivity.
			sort.SliceStable(remaining, func(i, j int) bool {
				return e.Est.EstimateConj(t, predsOf(remaining[i])) < e.Est.EstimateConj(t, predsOf(remaining[j]))
			})
			order = append(order, remaining...)
			break
		}
		best, bestSel := -1, math.Inf(1)
		for i, col := range remaining {
			sel := e.Est.EstimateConj(t, append(append([]expr.Pred(nil), chosen...), predsOf(col)...))
			if sel < bestSel {
				best, bestSel = i, sel
			}
		}
		col := remaining[best]
		order = append(order, col)
		chosen = append(chosen, predsOf(col)...)
		runningSel = bestSel
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return order
}

// planJoinOrder runs left-deep dynamic programming over connected table
// subsets, costing each plan by the sum of intermediate cardinalities
// (C_out) from the estimator.
func (e *Engine) planJoinOrder(p *Plan) error {
	q := p.Query
	n := len(q.Tables)
	if n == 1 {
		p.JoinOrder = []int{0}
		p.EstFinalRows = p.Scans[0].EstRows
		return nil
	}
	if n > 12 {
		return fmt.Errorf("engine: join of %d tables exceeds the optimizer's limit", n)
	}
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	// connected[a] = bitmask of tables joined to a by some condition.
	connected := make([]uint32, n)
	for _, j := range q.Joins {
		a, b := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
		connected[a] |= 1 << b
		connected[b] |= 1 << a
	}

	card := make(map[uint32]float64) // estimated rows of each subset
	for i := range q.Tables {
		card[1<<i] = p.Scans[i].EstRows
	}
	subsetCard := func(mask uint32) float64 {
		if c, ok := card[mask]; ok {
			return c
		}
		var tabs []*QueryTable
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				tabs = append(tabs, q.Tables[i])
			}
		}
		var conds []JoinCond
		for _, j := range q.Joins {
			if mask&(1<<bindingIdx[j.LeftTab]) != 0 && mask&(1<<bindingIdx[j.RightTab]) != 0 {
				conds = append(conds, j)
			}
		}
		c := e.Est.EstimateJoin(tabs, conds)
		if c < 1 || math.IsNaN(c) {
			c = 1
		}
		card[mask] = c
		return c
	}

	type dpEntry struct {
		cost  float64
		order []int
	}
	dp := map[uint32]dpEntry{}
	for i := 0; i < n; i++ {
		dp[1<<i] = dpEntry{cost: 0, order: []int{i}}
	}
	full := uint32(1<<n) - 1
	// Enumerate subsets by population count so extensions see their bases.
	var masks []uint32
	for m := uint32(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return bits.OnesCount32(masks[i]) < bits.OnesCount32(masks[j]) })
	for _, m := range masks {
		base, ok := dp[m]
		if !ok {
			continue
		}
		// Extend with any table connected to the subset.
		for i := 0; i < n; i++ {
			bit := uint32(1 << i)
			if m&bit != 0 {
				continue
			}
			joinedTo := false
			for j := 0; j < n; j++ {
				if m&(1<<j) != 0 && connected[j]&bit != 0 {
					joinedTo = true
					break
				}
			}
			if !joinedTo {
				continue
			}
			next := m | bit
			cost := base.cost + subsetCard(next)
			if cur, ok := dp[next]; !ok || cost < cur.cost {
				order := append(append([]int(nil), base.order...), i)
				dp[next] = dpEntry{cost: cost, order: order}
			}
		}
	}
	best, ok := dp[full]
	if !ok {
		return fmt.Errorf("engine: join graph is not connected")
	}
	p.JoinOrder = best.order
	// Record the estimated cardinality of each left-deep prefix (cached in
	// the DP's card map, so this re-walks without re-estimating) — the
	// per-node annotations EXPLAIN reports.
	prefix := uint32(1) << best.order[0]
	for _, idx := range best.order[1:] {
		prefix |= 1 << idx
		p.JoinEstRows = append(p.JoinEstRows, subsetCard(prefix))
	}
	p.EstFinalRows = subsetCard(full)
	return nil
}

// planAggregation presizes the aggregation hash table from the estimator's
// group-NDV estimate (the Figure 6b mechanism). Without grouping no hash
// table is needed.
func (e *Engine) planAggregation(p *Plan) {
	q := p.Query
	if len(q.GroupBy) == 0 {
		p.AggCapacity = 0
		return
	}
	if e.DisableNDVPresize {
		p.AggCapacity = e.defaultAggCapacity()
		return
	}
	ndv := e.Est.EstimateGroupNDV(q)
	if ndv < 1 || math.IsNaN(ndv) || math.IsInf(ndv, 0) {
		ndv = float64(e.defaultAggCapacity())
	}
	if p.EstFinalRows > 0 && ndv > p.EstFinalRows {
		ndv = p.EstFinalRows
	}
	p.AggCapacity = int(ndv)
}
