package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bytecard/internal/expr"
	"bytecard/internal/sqlparse"
)

// ScanPlan records the optimizer's materialization decision for one table.
type ScanPlan struct {
	TableIdx int
	// Strategy is "single-stage" or "multi-stage".
	Strategy string
	// ColOrder is the predicate-column order for the multi-stage reader.
	ColOrder []string
	// EstRows is the estimated filtered row count.
	EstRows float64
	// Pushdown routes the scan through the storage.BlockScan contract
	// (zone-map skipping, vectorized per-block filtering, late
	// materialization). It is orthogonal to Strategy: the strategy label
	// still records what the legacy readers would have chosen, and is what
	// executes when Pushdown is false. Set only for conjunctive (or empty)
	// filters when the engine's Pushdown knob is on and no ForceReader
	// ablation pins the legacy readers.
	Pushdown bool
}

// Plan is a fully optimized physical plan.
type Plan struct {
	Query *Query
	Scans []*ScanPlan
	// JoinOrder lists table indices in left-deep join sequence; the first
	// entry is the leftmost base table.
	JoinOrder []int
	// JoinEstRows holds the estimated cardinality after each join step,
	// aligned with JoinOrder[1:] (empty for single-table queries).
	JoinEstRows []float64
	// EstFinalRows is the estimated cardinality of the joined, filtered
	// relation.
	EstFinalRows float64
	// AggCapacity is the presized aggregation hash-table capacity.
	AggCapacity int
	// CacheHit marks plans rebuilt from the template plan cache rather
	// than planned fresh.
	CacheHit bool
}

// Plan optimizes the analyzed query: per-scan materialization strategy and
// column order, join order via dynamic programming over connected subsets,
// and aggregation hash-table presizing — each decision driven by the
// engine's estimator, which is exactly where ByteCard plugs in.
//
// With a PlanCache wired, the query's normalized template is consulted
// first: a hit replays the template's cached decisions onto q without a
// single estimator call, and a miss publishes the freshly planned
// decisions for the template's next sibling. Queries without an attached
// statement (no template identity) always plan fresh.
func (e *Engine) Plan(q *Query) (*Plan, error) {
	var key string
	if e.PlanCache != nil && q.Stmt != nil {
		key = sqlparse.Normalize(q.Stmt)
		if d, ok := e.PlanCache.Get(key); ok && len(d.scans) == len(q.Tables) {
			p := d.apply(q)
			// The cached bool carries the template's structural eligibility
			// (conjunctive filter); the engine-local knob and ForceReader
			// ablation re-gate it so a knob flip never replays a stale
			// routing decision.
			if e.ForceReader != "" || !e.pushdownOn() {
				for _, sp := range p.Scans {
					sp.Pushdown = false
				}
			}
			p.CacheHit = true
			return p, nil
		}
	}
	p := &Plan{Query: q}
	for i := range q.Tables {
		p.Scans = append(p.Scans, e.planScan(q, i))
	}
	if err := e.planJoinOrder(p); err != nil {
		return nil, err
	}
	e.planAggregation(p)
	if key != "" {
		e.PlanCache.Put(key, decisionsOf(p))
	}
	return p, nil
}

// planScan chooses the reader strategy and predicate column order.
func (e *Engine) planScan(q *Query, idx int) *ScanPlan {
	t := q.Tables[idx]
	sp := &ScanPlan{TableIdx: idx, Strategy: "single-stage"}
	n := float64(t.Table.NumRows())
	sp.EstRows = e.Est.EstimateFilter(t)
	if sp.EstRows < 0 {
		sp.EstRows = 0
	}
	if sp.EstRows > n {
		sp.EstRows = n
	}
	preds, isConj := t.Filter.Conjunction()
	predCols := distinctCols(preds)
	switch {
	case e.ForceReader != "":
		sp.Strategy = e.ForceReader
	case !isConj || len(predCols) < 2:
		// OR trees and zero/one-column filters gain nothing from staging.
		sp.Strategy = "single-stage"
	case n > 0 && sp.EstRows/n < e.readerThreshold():
		sp.Strategy = "multi-stage"
	}
	if sp.Strategy == "multi-stage" {
		switch {
		case !isConj:
			// The staged reader only decomposes conjunctions; downgrade
			// even when forced.
			sp.Strategy = "single-stage"
		case len(predCols) >= 2:
			sp.ColOrder = e.orderPredColumns(t, preds, predCols)
		default:
			sp.ColOrder = predCols
		}
	}
	sp.Pushdown = isConj && e.ForceReader == "" && e.pushdownOn()
	return sp
}

func distinctCols(preds []expr.Pred) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// orderPredColumns greedily orders predicate columns by conditional
// selectivity: each step adds the column whose predicates shrink the
// running conjunction the most, letting the estimator's cross-column
// modelling (the BN joint distribution) pay off. Enumeration early-stops
// once the running selectivity exceeds a threshold; remaining columns are
// appended by single-column selectivity.
func (e *Engine) orderPredColumns(t *QueryTable, preds []expr.Pred, cols []string) []string {
	predsOf := func(col string) []expr.Pred {
		var out []expr.Pred
		for _, p := range preds {
			if p.Col == col {
				out = append(out, p)
			}
		}
		return out
	}
	remaining := append([]string(nil), cols...)
	var order []string
	var chosen []expr.Pred
	runningSel := 1.0
	for len(remaining) > 0 {
		if runningSel > DefaultColOrderEarlyStop && len(order) > 0 {
			// Early stop: order the tail by single-column selectivity.
			sort.SliceStable(remaining, func(i, j int) bool {
				return e.Est.EstimateConj(t, predsOf(remaining[i])) < e.Est.EstimateConj(t, predsOf(remaining[j]))
			})
			order = append(order, remaining...)
			break
		}
		best, bestSel := -1, math.Inf(1)
		for i, col := range remaining {
			sel := e.Est.EstimateConj(t, append(append([]expr.Pred(nil), chosen...), predsOf(col)...))
			if sel < bestSel {
				best, bestSel = i, sel
			}
		}
		col := remaining[best]
		order = append(order, col)
		chosen = append(chosen, predsOf(col)...)
		runningSel = bestSel
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return order
}

// planJoinOrder runs left-deep dynamic programming over connected table
// subsets, costing each plan by the sum of intermediate cardinalities
// (C_out) from the estimator.
//
// The DP walks the reachable frontier rank by rank (subsets of k tables,
// then k+1) instead of materializing and sorting all 2^n−1 masks, so a
// 2-table join touches 3 subsets, not 4095. Each rank's newly reachable
// subsets are estimated before any dp update: when the estimator implements
// BatchCardEstimator they go out as one batch (fanned across
// Engine.Parallelism workers by the estimator), otherwise as sequential
// EstimateJoin calls over reused tabs/conds scratch. Because the card memo
// is fully populated before the rank's cost comparisons run — and those
// comparisons always process base masks in ascending numeric order — the
// batched and sequential paths produce byte-identical plans.
func (e *Engine) planJoinOrder(p *Plan) error {
	q := p.Query
	n := len(q.Tables)
	if n == 1 {
		p.JoinOrder = []int{0}
		p.EstFinalRows = p.Scans[0].EstRows
		return nil
	}
	if n > 12 {
		return fmt.Errorf("engine: join of %d tables exceeds the optimizer's limit", n)
	}
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	// connected[a] = bitmask of tables joined to a by some condition.
	connected := make([]uint32, n)
	for _, j := range q.Joins {
		a, b := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
		connected[a] |= 1 << b
		connected[b] |= 1 << a
	}
	// extensions returns the tables joined to subset m but outside it.
	extensions := func(m uint32) uint32 {
		var reach uint32
		for j := 0; j < n; j++ {
			if m&(1<<j) != 0 {
				reach |= connected[j]
			}
		}
		return reach &^ m
	}

	card := make(map[uint32]float64) // estimated rows of each subset
	for i := range q.Tables {
		card[1<<i] = p.Scans[i].EstRows
	}
	sanitize := func(c float64) float64 {
		if c < 1 || math.IsNaN(c) {
			return 1
		}
		return c
	}
	// fillSubset appends the subset's tables and internal join conditions.
	fillSubset := func(mask uint32, tabs []*QueryTable, conds []JoinCond) ([]*QueryTable, []JoinCond) {
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				tabs = append(tabs, q.Tables[i])
			}
		}
		for _, j := range q.Joins {
			if mask&(1<<bindingIdx[j.LeftTab]) != 0 && mask&(1<<bindingIdx[j.RightTab]) != 0 {
				conds = append(conds, j)
			}
		}
		return tabs, conds
	}
	batchEst, batching := e.Est.(BatchCardEstimator)
	threshold := e.batchThreshold()
	// Sequential scratch, reused across estimates (the CardEstimator
	// contract forbids retaining the slices).
	tabs := make([]*QueryTable, 0, n)
	conds := make([]JoinCond, 0, len(q.Joins))
	// Canonical per-table and per-condition tokens for JoinBatchItem.Key,
	// built lazily on the first batched rank: a subset's key is its table
	// tokens (binding, physical name, and full filter text — constants
	// included, so only byte-identical filters share a key) plus its
	// internal join conditions, both in q's deterministic order. Two Plan
	// calls over semantically identical subsets produce identical keys, so
	// a memoizing estimator can reuse sizes across ranks and across
	// queries.
	var tabTokens, condTokens []string
	subsetKey := func(mask uint32) string {
		if tabTokens == nil {
			tabTokens = make([]string, n)
			for i, t := range q.Tables {
				filter := ""
				if t.Filter != nil {
					filter = t.Filter.String()
				}
				tabTokens[i] = t.Binding + "\x1f" + t.Name + "\x1f" + filter
			}
			condTokens = make([]string, len(q.Joins))
			for i, j := range q.Joins {
				condTokens[i] = j.String()
			}
		}
		var b strings.Builder
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				b.WriteString(tabTokens[i])
				b.WriteByte('\x1e')
			}
		}
		b.WriteByte('\x1d')
		for i, j := range q.Joins {
			if mask&(1<<bindingIdx[j.LeftTab]) != 0 && mask&(1<<bindingIdx[j.RightTab]) != 0 {
				b.WriteString(condTokens[i])
				b.WriteByte('\x1e')
			}
		}
		return b.String()
	}
	// estimateAll fills card for every listed mask (all absent from card).
	estimateAll := func(masks []uint32) {
		if batching && threshold > 0 && len(masks) >= threshold {
			items := make([]JoinBatchItem, len(masks))
			for k, mask := range masks {
				items[k].Tables, items[k].Conds = fillSubset(mask, nil, nil)
				items[k].Key = subsetKey(mask)
			}
			for k, c := range batchEst.EstimateJoinBatch(items, e.workers()) {
				card[masks[k]] = sanitize(c)
			}
			return
		}
		for _, mask := range masks {
			tabs, conds = fillSubset(mask, tabs[:0], conds[:0])
			card[mask] = sanitize(e.Est.EstimateJoin(tabs, conds))
		}
	}
	subsetCard := func(mask uint32) float64 {
		if c, ok := card[mask]; ok {
			return c
		}
		tabs, conds = fillSubset(mask, tabs[:0], conds[:0])
		c := sanitize(e.Est.EstimateJoin(tabs, conds))
		card[mask] = c
		return c
	}

	type dpEntry struct {
		cost  float64
		order []int
	}
	dp := map[uint32]dpEntry{}
	frontier := make([]uint32, 0, n) // rank-k dp keys, ascending
	for i := 0; i < n; i++ {
		dp[1<<i] = dpEntry{cost: 0, order: []int{i}}
		frontier = append(frontier, 1<<i)
	}
	full := uint32(1<<n) - 1
	for rank := 1; rank < n && len(frontier) > 0; rank++ {
		// Discover the next rank's reachable connected subsets and
		// estimate the whole frontier before any cost comparison.
		seen := map[uint32]bool{}
		next := make([]uint32, 0, len(frontier))
		for _, m := range frontier {
			ext := extensions(m)
			for i := 0; i < n; i++ {
				if ext&(1<<i) == 0 {
					continue
				}
				nm := m | 1<<i
				if !seen[nm] {
					seen[nm] = true
					next = append(next, nm)
				}
			}
		}
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		estimateAll(next)
		// Cost updates in deterministic ascending base-mask order; strict
		// < keeps the first (lowest-mask) winner on cost ties.
		for _, m := range frontier {
			base := dp[m]
			ext := extensions(m)
			for i := 0; i < n; i++ {
				if ext&(1<<i) == 0 {
					continue
				}
				nm := m | 1<<i
				cost := base.cost + card[nm]
				if cur, ok := dp[nm]; !ok || cost < cur.cost {
					order := append(append([]int(nil), base.order...), i)
					dp[nm] = dpEntry{cost: cost, order: order}
				}
			}
		}
		frontier = next
	}
	best, ok := dp[full]
	if !ok {
		return fmt.Errorf("engine: join graph is not connected")
	}
	p.JoinOrder = best.order
	// Record the estimated cardinality of each left-deep prefix (cached in
	// the DP's card map, so this re-walks without re-estimating) — the
	// per-node annotations EXPLAIN reports.
	prefix := uint32(1) << best.order[0]
	for _, idx := range best.order[1:] {
		prefix |= 1 << idx
		p.JoinEstRows = append(p.JoinEstRows, subsetCard(prefix))
	}
	p.EstFinalRows = subsetCard(full)
	return nil
}

// planAggregation presizes the aggregation hash table from the estimator's
// group-NDV estimate (the Figure 6b mechanism). Without grouping no hash
// table is needed.
func (e *Engine) planAggregation(p *Plan) {
	q := p.Query
	if len(q.GroupBy) == 0 {
		p.AggCapacity = 0
		return
	}
	if e.DisableNDVPresize {
		p.AggCapacity = e.defaultAggCapacity()
		return
	}
	ndv := e.Est.EstimateGroupNDV(q)
	if ndv < 1 || math.IsNaN(ndv) || math.IsInf(ndv, 0) {
		ndv = float64(e.defaultAggCapacity())
	}
	if p.EstFinalRows > 0 && ndv > p.EstFinalRows {
		ndv = p.EstFinalRows
	}
	p.AggCapacity = int(ndv)
}
