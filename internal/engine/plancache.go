package engine

import (
	"container/list"
	"sync"

	"bytecard/internal/obs"
)

// DefaultPlanCacheBytes bounds the plan cache when no explicit budget is
// configured: a few thousand templates at typical decision sizes —
// warehouse workloads repeat a small set of templates with varying
// constants, so this covers the hot set with headroom.
const DefaultPlanCacheBytes = 4 << 20

// planCacheEntryOverhead approximates the fixed per-entry footprint (map
// cell, LRU element, entry and decision headers) for the byte gauge.
const planCacheEntryOverhead = 160

// scanDecision is one table's cached materialization decision.
type scanDecision struct {
	strategy string
	colOrder []string
	estRows  float64
	// pushdown replays the template's structural pushdown eligibility;
	// Plan re-gates it against the engine's live knob on every hit.
	pushdown bool
}

// planDecisions is one query template's complete set of optimizer
// decisions — everything Plan computes that does not reference the
// analyzed Query's own structures. Applying them to a fresh Query of the
// same template rebuilds the Plan without a single estimator call; the
// fresh Query carries the new constants, so execution filters with the
// caller's actual values while strategy, column order, join order, and
// presizing replay the template's decisions (estimates included — reusing
// a sibling's estimates is the documented template-cache tradeoff).
type planDecisions struct {
	scans        []scanDecision
	joinOrder    []int
	joinEstRows  []float64
	estFinalRows float64
	aggCapacity  int
	// tables is the deduped physical-table list the decisions were
	// estimated against, for table-scoped invalidation.
	tables []string
	size   int64
}

// decisionsOf extracts the cacheable decisions from a freshly built plan.
func decisionsOf(p *Plan) *planDecisions {
	d := &planDecisions{
		scans:        make([]scanDecision, len(p.Scans)),
		joinOrder:    append([]int(nil), p.JoinOrder...),
		joinEstRows:  append([]float64(nil), p.JoinEstRows...),
		estFinalRows: p.EstFinalRows,
		aggCapacity:  p.AggCapacity,
	}
	size := int64(planCacheEntryOverhead)
	for i, sp := range p.Scans {
		d.scans[i] = scanDecision{
			strategy: sp.Strategy,
			colOrder: append([]string(nil), sp.ColOrder...),
			estRows:  sp.EstRows,
			pushdown: sp.Pushdown,
		}
		size += int64(len(sp.Strategy)) + 24
		for _, c := range sp.ColOrder {
			size += int64(len(c)) + 16
		}
	}
	seen := map[string]bool{}
	for _, t := range p.Query.Tables {
		if !seen[t.Name] {
			seen[t.Name] = true
			d.tables = append(d.tables, t.Name)
			size += int64(len(t.Name)) + 16
		}
	}
	size += int64(8*len(d.joinOrder) + 8*len(d.joinEstRows))
	d.size = size
	return d
}

// apply rebuilds a Plan for a fresh Query of the same template. Slices
// are copied so no two plans — and never the cache — share mutable
// backing arrays.
func (d *planDecisions) apply(q *Query) *Plan {
	p := &Plan{
		Query:        q,
		JoinOrder:    append([]int(nil), d.joinOrder...),
		JoinEstRows:  append([]float64(nil), d.joinEstRows...),
		EstFinalRows: d.estFinalRows,
		AggCapacity:  d.aggCapacity,
	}
	for i, sd := range d.scans {
		p.Scans = append(p.Scans, &ScanPlan{
			TableIdx: i,
			Strategy: sd.strategy,
			ColOrder: append([]string(nil), sd.colOrder...),
			EstRows:  sd.estRows,
			Pushdown: sd.pushdown,
		})
	}
	return p
}

// PlanCache memoizes optimizer decisions by normalized query template
// (sqlparse.Normalize — constants stripped), bounded by resident bytes
// with LRU eviction. A hit skips analysis-independent planning entirely:
// every estimator call, the join-order DP, and aggregation presizing.
// Entries hold decisions, not Plans, and are re-applied to each fresh
// Query, so cached templates execute with the caller's actual constants.
//
// The cache implements core's DerivedCache contract: the inference
// registry invalidates it on model load (table-scoped via the per-entry
// physical-table list) and flushes it on enable/disable, so no plan ever
// replays decisions estimated by a replaced model. Safe for concurrent
// use.
type PlanCache struct {
	mu      sync.Mutex
	limit   int64
	entries map[string]*list.Element
	lru     *list.List // of *planCacheEntry; front = most recent
	bytes   int64
	cm      obs.CacheMetrics
}

type planCacheEntry struct {
	key string
	d   *planDecisions
}

// NewPlanCache creates a plan cache bounded to limit resident bytes
// (DefaultPlanCacheBytes when limit <= 0).
func NewPlanCache(limit int64) *PlanCache {
	if limit <= 0 {
		limit = DefaultPlanCacheBytes
	}
	return &PlanCache{
		limit:   limit,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Get returns the cached decisions for a template key and marks the entry
// recently used.
func (c *PlanCache) Get(key string) (*planDecisions, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.cm.Misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(elem)
	c.cm.Hits.Add(1)
	return elem.Value.(*planCacheEntry).d, true
}

// Put publishes one template's decisions, evicting from the cold end past
// the byte budget. Put is the cache's only publication path — entries
// enter carrying their invalidation table list, which is what keeps every
// resident plan reachable by InvalidateTables (enforced by the cacheput
// lint check).
func (c *PlanCache) Put(key string, d *planDecisions) {
	size := d.size + int64(len(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.limit {
		return // a single oversized template must not wipe the cache
	}
	if elem, ok := c.entries[key]; ok {
		prev := elem.Value.(*planCacheEntry)
		c.bytes += size - (prev.d.size + int64(len(key)))
		c.cm.Bytes.Add(size - (prev.d.size + int64(len(key))))
		prev.d = d
		c.lru.MoveToFront(elem)
		return
	}
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, d: d})
	c.bytes += size
	c.cm.Bytes.Add(size)
	c.cm.Entries.Add(1)
	for c.bytes > c.limit && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
		c.cm.Evictions.Add(1)
	}
}

// removeLocked unlinks one entry and settles the gauges (c.mu held).
func (c *PlanCache) removeLocked(elem *list.Element) {
	e := elem.Value.(*planCacheEntry)
	delete(c.entries, e.key)
	c.lru.Remove(elem)
	size := e.d.size + int64(len(e.key))
	c.bytes -= size
	c.cm.Bytes.Add(-size)
	c.cm.Entries.Add(-1)
}

// Len returns the resident template count.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// InvalidateTables drops every template whose decisions were estimated
// against any of the named physical tables, returning how many were
// dropped. The scan is linear in resident templates — invalidation is
// model-churn-rate, not query-rate.
func (c *PlanCache) InvalidateTables(tables ...string) int {
	victim := map[string]bool{}
	for _, t := range tables {
		victim[t] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for elem := c.lru.Front(); elem != nil; elem = next {
		next = elem.Next()
		for _, t := range elem.Value.(*planCacheEntry).d.tables {
			if victim[t] {
				c.removeLocked(elem)
				n++
				break
			}
		}
	}
	c.cm.Invalidations.Add(int64(n))
	return n
}

// Flush drops every template, returning how many were resident.
func (c *PlanCache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	for elem := c.lru.Front(); elem != nil; elem = c.lru.Front() {
		c.removeLocked(elem)
	}
	c.cm.Invalidations.Add(int64(n))
	return n
}

// Stats returns the cache's uniform counter snapshot.
func (c *PlanCache) Stats() obs.CacheSnapshot {
	return c.cm.Snapshot()
}
