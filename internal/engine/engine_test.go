package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"bytecard/internal/catalog"
	"bytecard/internal/datagen"
	"bytecard/internal/expr"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

func toyEngine(t *testing.T) *Engine {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 11})
	return New(ds.DB, ds.Schema, HeuristicEstimator{})
}

func TestCountStarNoFilter(t *testing.T) {
	e := toyEngine(t)
	res, err := e.Run("SELECT COUNT(*) FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	n, err := res.ScalarInt()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(e.DB.Table("fact").NumRows()) {
		t.Errorf("COUNT(*) = %d, want %d", n, e.DB.Table("fact").NumRows())
	}
}

func TestCountWithFilterMatchesBruteForce(t *testing.T) {
	e := toyEngine(t)
	res, err := e.Run("SELECT COUNT(*) FROM fact WHERE fact.val >= 50")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.ScalarInt()
	tab := e.DB.Table("fact")
	col := tab.ColByName("val")
	var want int64
	for i := 0; i < tab.NumRows(); i++ {
		if col.Value(i).I >= 50 {
			want++
		}
	}
	if n != want {
		t.Errorf("filtered count = %d, want %d", n, want)
	}
}

func TestJoinCountMatchesNaive(t *testing.T) {
	e := toyEngine(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat = 3"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fast.ScalarInt()
	b, _ := slow.ScalarInt()
	if a != b {
		t.Errorf("optimized %d != naive %d", a, b)
	}
	if a == 0 {
		t.Error("expected non-empty join")
	}
}

func TestGroupByMatchesNaive(t *testing.T) {
	e := toyEngine(t)
	sql := "SELECT d.cat, COUNT(*), SUM(f.val), MIN(f.val), MAX(f.val), AVG(f.val) FROM fact f, dim d WHERE f.dim_id = d.id GROUP BY d.cat"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, fast, slow)
}

func TestCountDistinctMatchesNaive(t *testing.T) {
	e := toyEngine(t)
	sql := "SELECT COUNT(DISTINCT f.dim_id, f.flag) FROM fact f WHERE f.val > 20"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, fast, slow)
}

func TestOrFilterMatchesNaive(t *testing.T) {
	e := toyEngine(t)
	sql := "SELECT COUNT(*) FROM fact WHERE val < 10 OR (val > 90 AND flag = 1)"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, fast, slow)
}

func assertResultsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("row %d width differs", i)
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.K == types.KindFloat64 || bv.K == types.KindFloat64 {
				if d := av.AsFloat() - bv.AsFloat(); d > 1e-6 || d < -1e-6 {
					t.Errorf("row %d col %d: %v vs %v", i, j, av, bv)
				}
			} else if !av.Equal(bv) {
				t.Errorf("row %d col %d: %v vs %v", i, j, av, bv)
			}
		}
	}
}

// TestRandomQueriesMatchNaive is the central executor-correctness test:
// random SPJ+aggregation queries over the toy dataset must agree exactly
// with the nested-loop oracle.
func TestRandomQueriesMatchNaive(t *testing.T) {
	e := toyEngine(t)
	rng := rand.New(rand.NewSource(99))
	ops := []string{"=", "<", "<=", ">", ">=", "<>"}
	for trial := 0; trial < 40; trial++ {
		var sql string
		switch trial % 4 {
		case 0: // single table, conjunctive
			sql = fmt.Sprintf("SELECT COUNT(*) FROM fact WHERE val %s %d AND flag = %d",
				ops[rng.Intn(len(ops))], rng.Intn(100), rng.Intn(2))
		case 1: // single table, disjunctive
			sql = fmt.Sprintf("SELECT COUNT(*) FROM fact WHERE val %s %d OR dim_id %s %d",
				ops[rng.Intn(len(ops))], rng.Intn(100), ops[rng.Intn(len(ops))], 1+rng.Intn(50))
		case 2: // join with filters
			sql = fmt.Sprintf("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat %s %d AND f.val %s %d",
				ops[rng.Intn(len(ops))], 1+rng.Intn(5), ops[rng.Intn(len(ops))], rng.Intn(100))
		case 3: // grouped join
			sql = fmt.Sprintf("SELECT d.cat, COUNT(*), COUNT(DISTINCT f.flag) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < %d GROUP BY d.cat",
				10+rng.Intn(90))
		}
		fast, err := e.Run(sql)
		if err != nil {
			t.Fatalf("query %q: %v", sql, err)
		}
		slow, err := e.RunNaive(sql)
		if err != nil {
			t.Fatalf("naive %q: %v", sql, err)
		}
		if len(fast.Rows) != len(slow.Rows) {
			t.Fatalf("query %q: %d vs %d rows", sql, len(fast.Rows), len(slow.Rows))
		}
		assertResultsEqual(t, fast, slow)
	}
}

func TestThreeWayJoinMatchesNaive(t *testing.T) {
	// Build a small 3-table chain a–b–c by hand.
	db := storage.NewDatabase()
	mk := func(name string, cols []string, rows [][]int64) {
		specs := make([]storage.ColumnSpec, len(cols))
		for i, c := range cols {
			specs[i] = storage.ColumnSpec{Name: c, Kind: types.KindInt64}
		}
		b := storage.NewBuilder(name, specs)
		for _, r := range rows {
			d := make([]types.Datum, len(r))
			for i, v := range r {
				d[i] = types.Int(v)
			}
			b.Append(d)
		}
		db.Add(b.Build())
	}
	rng := rand.New(rand.NewSource(5))
	var aRows, bRows, cRows [][]int64
	for i := 1; i <= 30; i++ {
		aRows = append(aRows, []int64{int64(i), int64(rng.Intn(5))})
	}
	for i := 1; i <= 100; i++ {
		bRows = append(bRows, []int64{int64(i), int64(1 + rng.Intn(30)), int64(rng.Intn(10))})
	}
	for i := 1; i <= 80; i++ {
		cRows = append(cRows, []int64{int64(i), int64(1 + rng.Intn(100)), int64(rng.Intn(3))})
	}
	mk("a", []string{"id", "x"}, aRows)
	mk("b", []string{"id", "a_id", "y"}, bRows)
	mk("c", []string{"id", "b_id", "z"}, cRows)
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})
	sql := "SELECT COUNT(*) FROM a, b, c WHERE b.a_id = a.id AND c.b_id = b.id AND a.x < 3 AND c.z = 1"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, fast, slow)
}

func TestAnalyzeErrors(t *testing.T) {
	e := toyEngine(t)
	bad := []string{
		"SELECT COUNT(*) FROM ghost",
		"SELECT COUNT(*) FROM fact, fact",                                       // duplicate binding
		"SELECT COUNT(*) FROM fact WHERE nope = 1",                              // unknown column
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND id = 1",   // ambiguous
		"SELECT COUNT(*) FROM fact f, dim d",                                    // cross product
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id < d.id",              // non-equi join
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id OR f.val = 1", // join under OR
		"SELECT val, COUNT(*) FROM fact",                                        // non-grouped column beside aggregate
		"SELECT * FROM fact",                                                    // star
		"SELECT val FROM fact WHERE val = 'x'",                                  // type mismatch
		"SELECT SUM(val) FROM fact WHERE val = 1 AND val2 = 2",                  // unknown col in filter
	}
	for _, sql := range bad {
		if _, err := e.Run(sql); err == nil {
			t.Errorf("query %q succeeded, want error", sql)
		}
	}
}

func TestSelfJoinAliases(t *testing.T) {
	e := toyEngine(t)
	sql := "SELECT COUNT(*) FROM fact f1, fact f2 WHERE f1.dim_id = f2.dim_id AND f1.val < 5 AND f2.val > 95"
	fast, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.RunNaive(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, fast, slow)
}

func TestJoinPatternCollection(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 11})
	schema := catalog.NewSchema()
	for _, name := range ds.DB.TableNames() {
		schema.AddTable(ds.Schema.Table(name))
	}
	e := New(ds.DB, schema, HeuristicEstimator{})
	if _, err := e.Run("SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id"); err != nil {
		t.Fatal(err)
	}
	pats := schema.JoinPatterns()
	if len(pats) != 1 {
		t.Fatalf("patterns = %v", pats)
	}
	want := joinPattern("fact", "dim_id", "dim", "id")
	if pats[0] != want && pats[0] != (catalog.JoinPattern{Left: want.Right, Right: want.Left}) {
		t.Errorf("pattern = %v", pats[0])
	}
}

func TestReaderStrategySelection(t *testing.T) {
	e := toyEngine(t)
	// Highly selective two-column conjunction → multi-stage.
	res, err := e.Run("SELECT COUNT(*) FROM fact WHERE val = 3 AND flag = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReaderStrategy["fact"] != "multi-stage" {
		t.Errorf("selective conj strategy = %s, want multi-stage", res.Metrics.ReaderStrategy["fact"])
	}
	// No filter → single-stage.
	res, err = e.Run("SELECT COUNT(*) FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReaderStrategy["fact"] != "single-stage" {
		t.Errorf("no-filter strategy = %s, want single-stage", res.Metrics.ReaderStrategy["fact"])
	}
	// OR filter → single-stage.
	res, err = e.Run("SELECT COUNT(*) FROM fact WHERE val = 3 OR flag = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReaderStrategy["fact"] != "single-stage" {
		t.Errorf("OR strategy = %s, want single-stage", res.Metrics.ReaderStrategy["fact"])
	}
}

func TestForceReaderOverride(t *testing.T) {
	e := toyEngine(t)
	e.ForceReader = "single-stage"
	res, err := e.Run("SELECT COUNT(*) FROM fact WHERE val = 3 AND flag = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ReaderStrategy["fact"] != "single-stage" {
		t.Error("ForceReader must pin the strategy")
	}
}

func TestMultiStageReadsFewerBlocks(t *testing.T) {
	// A big table where a selective first column should spare the second
	// column's blocks.
	b := storage.NewBuilder("big", []storage.ColumnSpec{
		{Name: "a", Kind: types.KindInt64},
		{Name: "b", Kind: types.KindInt64},
	})
	n := storage.BlockSize * 8
	for i := 0; i < n; i++ {
		a := int64(0)
		if i < 100 { // all matches live in the first block
			a = 1
		}
		b.Append([]types.Datum{types.Int(a), types.Int(int64(i % 97))})
	}
	db := storage.NewDatabase()
	db.Add(b.Build())
	e := New(db, catalog.NewSchema(), HeuristicEstimator{})

	sql := "SELECT COUNT(*) FROM big WHERE a = 1 AND b < 50"
	e.ForceReader = "multi-stage"
	multi, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.ForceReader = "single-stage"
	single, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, multi, single)
	if multi.Metrics.IO.BlocksRead() >= single.Metrics.IO.BlocksRead() {
		t.Errorf("multi-stage blocks %d !< single-stage blocks %d",
			multi.Metrics.IO.BlocksRead(), single.Metrics.IO.BlocksRead())
	}
}

func TestAggPresizeAvoidsResizes(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 4, Seed: 7})
	// goodEst returns the exact group NDV; contrast with cold start.
	e := New(ds.DB, ds.Schema, exactNDVEstimator{inner: HeuristicEstimator{}, ndv: 5})
	sql := "SELECT cat, COUNT(*) FROM dim GROUP BY cat"
	warm, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.DisableNDVPresize = true
	e.AggCapacity = 1
	cold, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, warm, cold)
	if warm.Metrics.HashResizes > 0 {
		t.Errorf("presized run resized %d times", warm.Metrics.HashResizes)
	}
	if cold.Metrics.HashResizes == 0 {
		t.Skip("cold run needed no resizes at this scale")
	}
}

// exactNDVEstimator overrides only group-NDV estimation.
type exactNDVEstimator struct {
	inner CardEstimator
	ndv   float64
}

func (x exactNDVEstimator) Name() string                         { return "exact-ndv" }
func (x exactNDVEstimator) EstimateFilter(t *QueryTable) float64 { return x.inner.EstimateFilter(t) }
func (x exactNDVEstimator) EstimateConj(t *QueryTable, p []expr.Pred) float64 {
	return x.inner.EstimateConj(t, p)
}
func (x exactNDVEstimator) EstimateJoin(ts []*QueryTable, js []JoinCond) float64 {
	return x.inner.EstimateJoin(ts, js)
}
func (x exactNDVEstimator) EstimateGroupNDV(*Query) float64 { return x.ndv }
