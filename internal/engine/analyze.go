package engine

import (
	"fmt"

	"bytecard/internal/expr"
	"bytecard/internal/sqlparse"
	"bytecard/internal/types"
)

// Analyze resolves a parsed statement against the database: binds tables,
// qualifies columns, separates join conditions from table-local filters,
// records join patterns into the catalog (the preprocessor's join-pattern
// collection hook), and validates the aggregate/grouping shape.
func (e *Engine) Analyze(stmt *sqlparse.SelectStmt) (*Query, error) {
	q := &Query{Stmt: stmt}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("engine: query has no FROM clause")
	}
	seen := map[string]bool{}
	for _, ref := range stmt.From {
		tab := e.DB.Table(ref.Name)
		if tab == nil {
			return nil, fmt.Errorf("engine: unknown table %q", ref.Name)
		}
		binding := ref.Binding()
		if seen[binding] {
			return nil, fmt.Errorf("engine: duplicate table binding %q", binding)
		}
		seen[binding] = true
		q.Tables = append(q.Tables, &QueryTable{Binding: binding, Name: ref.Name, Table: tab})
	}

	if stmt.Where != nil {
		if err := e.analyzeWhere(q, stmt.Where); err != nil {
			return nil, err
		}
	}
	if err := e.analyzeSelect(q, stmt); err != nil {
		return nil, err
	}
	if len(q.Tables) > 1 {
		if err := q.checkConnected(); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// resolveCol finds the binding for a column reference.
func (q *Query) resolveCol(ref sqlparse.ColRef) (ColRef, error) {
	if ref.Qualifier != "" {
		t := q.TableByBinding(ref.Qualifier)
		if t == nil {
			return ColRef{}, fmt.Errorf("engine: unknown table binding %q", ref.Qualifier)
		}
		if t.Table.ColIndex(ref.Name) < 0 {
			return ColRef{}, fmt.Errorf("engine: table %s has no column %q", t.Name, ref.Name)
		}
		return ColRef{Tab: ref.Qualifier, Col: ref.Name}, nil
	}
	var found *QueryTable
	for _, t := range q.Tables {
		if t.Table.ColIndex(ref.Name) >= 0 {
			if found != nil {
				return ColRef{}, fmt.Errorf("engine: ambiguous column %q (in %s and %s)", ref.Name, found.Binding, t.Binding)
			}
			found = t
		}
	}
	if found == nil {
		return ColRef{}, fmt.Errorf("engine: unknown column %q", ref.Name)
	}
	return ColRef{Tab: found.Binding, Col: ref.Name}, nil
}

// analyzeWhere splits the condition tree into equi-join conditions and
// per-table filters. Join conditions must be top-level conjuncts; OR
// subtrees must reference a single table.
func (e *Engine) analyzeWhere(q *Query, cond *sqlparse.Cond) error {
	conjuncts := flattenAnd(cond)
	perTable := map[string][]*expr.Node{}
	for _, c := range conjuncts {
		if c.Kind == sqlparse.CondCmp && c.IsJoin() {
			if c.Op != expr.OpEq {
				return fmt.Errorf("engine: only equi-joins are supported, got %s", c)
			}
			l, err := q.resolveCol(c.Left)
			if err != nil {
				return err
			}
			r, err := q.resolveCol(*c.RightCol)
			if err != nil {
				return err
			}
			if l.Tab == r.Tab {
				return fmt.Errorf("engine: same-table column equality %s is not supported", c)
			}
			q.Joins = append(q.Joins, JoinCond{LeftTab: l.Tab, LeftCol: l.Col, RightTab: r.Tab, RightCol: r.Col})
			e.recordJoinPattern(q, l, r)
			continue
		}
		node, tab, err := q.buildFilterNode(c)
		if err != nil {
			return err
		}
		perTable[tab] = append(perTable[tab], node)
	}
	//bytecard:unordered-ok each binding's filter is assigned exactly once; bindings are disjoint and nodes keep parse order
	for tab, nodes := range perTable {
		q.TableByBinding(tab).Filter = expr.And(nodes...)
	}
	return nil
}

func flattenAnd(c *sqlparse.Cond) []*sqlparse.Cond {
	if c.Kind != sqlparse.CondAnd {
		return []*sqlparse.Cond{c}
	}
	var out []*sqlparse.Cond
	for _, ch := range c.Children {
		out = append(out, flattenAnd(ch)...)
	}
	return out
}

// buildFilterNode converts a condition subtree (no join comparisons) to an
// expr tree, verifying all leaves reference one table and literal types are
// comparable with their columns.
func (q *Query) buildFilterNode(c *sqlparse.Cond) (*expr.Node, string, error) {
	switch c.Kind {
	case sqlparse.CondCmp:
		if c.IsJoin() {
			return nil, "", fmt.Errorf("engine: join condition %s must be a top-level conjunct", c)
		}
		ref, err := q.resolveCol(c.Left)
		if err != nil {
			return nil, "", err
		}
		t := q.TableByBinding(ref.Tab)
		colKind := t.Table.ColByName(ref.Col).Kind()
		if (colKind == types.KindString) != (c.RightVal.K == types.KindString) {
			return nil, "", fmt.Errorf("engine: predicate %s compares %s column with %s literal", c, colKind, c.RightVal.K)
		}
		return expr.Leaf(expr.Pred{Table: ref.Tab, Col: ref.Col, Op: c.Op, Val: c.RightVal}), ref.Tab, nil
	case sqlparse.CondAnd, sqlparse.CondOr:
		var (
			nodes []*expr.Node
			tab   string
		)
		for _, ch := range c.Children {
			node, chTab, err := q.buildFilterNode(ch)
			if err != nil {
				return nil, "", err
			}
			if tab == "" {
				tab = chTab
			} else if tab != chTab {
				return nil, "", fmt.Errorf("engine: filter subtree %s mixes tables %s and %s", c, tab, chTab)
			}
			nodes = append(nodes, node)
		}
		if c.Kind == sqlparse.CondAnd {
			return expr.And(nodes...), tab, nil
		}
		return expr.Or(nodes...), tab, nil
	default:
		return nil, "", fmt.Errorf("engine: unknown condition kind")
	}
}

// recordJoinPattern feeds the catalog's join-pattern collection using
// physical table names.
func (e *Engine) recordJoinPattern(q *Query, l, r ColRef) {
	if e.Schema == nil {
		return
	}
	lt, rt := q.TableByBinding(l.Tab), q.TableByBinding(r.Tab)
	e.Schema.AddJoinPattern(joinPattern(lt.Name, l.Col, rt.Name, r.Col))
}

func (e *Engine) analyzeSelect(q *Query, stmt *sqlparse.SelectStmt) error {
	for _, g := range stmt.GroupBy {
		ref, err := q.resolveCol(g)
		if err != nil {
			return err
		}
		q.GroupBy = append(q.GroupBy, ref)
	}
	groupIdx := func(ref ColRef) int {
		for i, g := range q.GroupBy {
			if g == ref {
				return i
			}
		}
		return -1
	}
	// A select list of plain columns with no GROUP BY is a projection
	// query: rows come back in scan/join order (with LIMIT honored), the
	// shape the pushdown scan contract's limit pushdown serves. Any
	// aggregate or grouping keeps the aggregate-query rules below.
	projection := len(stmt.GroupBy) == 0
	for _, item := range stmt.Items {
		if item.Kind != sqlparse.ItemColumn {
			projection = false
			break
		}
	}
	if projection && len(stmt.Items) > 0 {
		for _, item := range stmt.Items {
			ref, err := q.resolveCol(item.Cols[0])
			if err != nil {
				return err
			}
			q.Select = append(q.Select, ref)
		}
		q.Limit = stmt.Limit
		return nil
	}
	for _, item := range stmt.Items {
		switch item.Kind {
		case sqlparse.ItemStar:
			return fmt.Errorf("engine: SELECT * is not supported; name columns or aggregates")
		case sqlparse.ItemColumn:
			ref, err := q.resolveCol(item.Cols[0])
			if err != nil {
				return err
			}
			gi := groupIdx(ref)
			if gi < 0 {
				return fmt.Errorf("engine: column %s must appear in GROUP BY", ref)
			}
			q.outPlan = append(q.outPlan, outputItem{groupIdx: gi})
		case sqlparse.ItemCountStar:
			q.Aggs = append(q.Aggs, AggSpec{Kind: AggCountStar})
			q.outPlan = append(q.outPlan, outputItem{isAgg: true, aggIdx: len(q.Aggs) - 1})
		case sqlparse.ItemCountDistinct:
			spec := AggSpec{Kind: AggCountDistinct}
			for _, c := range item.Cols {
				ref, err := q.resolveCol(c)
				if err != nil {
					return err
				}
				spec.Cols = append(spec.Cols, ref)
			}
			q.Aggs = append(q.Aggs, spec)
			q.outPlan = append(q.outPlan, outputItem{isAgg: true, aggIdx: len(q.Aggs) - 1})
		case sqlparse.ItemAgg:
			ref, err := q.resolveCol(item.Cols[0])
			if err != nil {
				return err
			}
			t := q.TableByBinding(ref.Tab)
			if t.Table.ColByName(ref.Col).Kind() == types.KindString && item.Agg != "MIN" && item.Agg != "MAX" {
				return fmt.Errorf("engine: %s over string column %s", item.Agg, ref)
			}
			var kind AggKind
			switch item.Agg {
			case "SUM":
				kind = AggSum
			case "AVG":
				kind = AggAvg
			case "MIN":
				kind = AggMin
			case "MAX":
				kind = AggMax
			case "COUNT":
				kind = AggCountStar // COUNT(col) without NULLs equals COUNT(*)
			default:
				return fmt.Errorf("engine: unknown aggregate %s", item.Agg)
			}
			q.Aggs = append(q.Aggs, AggSpec{Kind: kind, Cols: []ColRef{ref}})
			q.outPlan = append(q.outPlan, outputItem{isAgg: true, aggIdx: len(q.Aggs) - 1})
		}
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("engine: query must contain at least one aggregate")
	}
	q.Limit = stmt.Limit
	return nil
}

// checkConnected verifies the join graph connects every table (the engine
// rejects cross products).
func (q *Query) checkConnected() error {
	adj := map[string][]string{}
	for _, j := range q.Joins {
		adj[j.LeftTab] = append(adj[j.LeftTab], j.RightTab)
		adj[j.RightTab] = append(adj[j.RightTab], j.LeftTab)
	}
	visited := map[string]bool{q.Tables[0].Binding: true}
	stack := []string{q.Tables[0].Binding}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !visited[nb] {
				visited[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, t := range q.Tables {
		if !visited[t.Binding] {
			return fmt.Errorf("engine: table %s is not connected by join conditions (cross products unsupported)", t.Binding)
		}
	}
	return nil
}
