package engine

import (
	"fmt"
	"sort"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// scanState is the runtime image of one scanned table: the surviving row
// ids and lazily created block-accounted column readers shared by later
// operators (late materialization reads land on the same readers, so every
// block is charged at most once per query).
type scanState struct {
	t       *QueryTable
	rows    []int32
	readers map[string]*storage.Reader
	io      *storage.IOStats
}

func (s *scanState) reader(col string) *storage.Reader {
	if r, ok := s.readers[col]; ok {
		return r
	}
	c := s.t.Table.ColByName(col)
	if c == nil {
		panic(fmt.Sprintf("engine: table %s has no column %s", s.t.Name, col))
	}
	r := c.NewReader(s.io)
	s.readers[col] = r
	return r
}

func (s *scanState) value(col string, row int32) types.Datum {
	return s.reader(col).Value(int(row))
}

// Execute runs a physical plan.
func (e *Engine) Execute(p *Plan) (*Result, error) {
	start := time.Now()
	q := p.Query
	m := Metrics{IO: &storage.IOStats{}, ReaderStrategy: map[string]string{}}

	// Only the leftmost table is scanned eagerly; later tables are scanned
	// at their join step so sideways information passing can prune them
	// with the intermediate's key set before their predicate columns are
	// read.
	states := make([]*scanState, len(q.Tables))
	first := p.JoinOrder[0]
	st, err := e.executeScan(q, p.Scans[first], &m)
	if err != nil {
		return nil, err
	}
	states[first] = st
	m.ReaderStrategy[q.Tables[first].Binding] = p.Scans[first].Strategy

	inter, err := e.executeJoins(q, p, states, &m)
	if err != nil {
		return nil, err
	}
	m.EstFinalRows = p.EstFinalRows
	for _, c := range inter.counts {
		m.ActualFinalRows += c
	}

	res, err := e.executeAggregation(q, p, states, inter, &m)
	if err != nil {
		return nil, err
	}
	m.ExecDuration = time.Since(start)
	res.Metrics = m
	return res, nil
}

// neededColumns lists the columns of table idx the query touches beyond the
// filter: join keys, group keys, and aggregate inputs.
func neededColumns(q *Query, idx int) []string {
	t := q.Tables[idx]
	seen := map[string]bool{}
	var out []string
	add := func(col string) {
		if !seen[col] {
			seen[col] = true
			out = append(out, col)
		}
	}
	for _, j := range q.Joins {
		if j.LeftTab == t.Binding {
			add(j.LeftCol)
		}
		if j.RightTab == t.Binding {
			add(j.RightCol)
		}
	}
	for _, g := range q.GroupBy {
		if g.Tab == t.Binding {
			add(g.Col)
		}
	}
	for _, a := range q.Aggs {
		for _, c := range a.Cols {
			if c.Tab == t.Binding {
				add(c.Col)
			}
		}
	}
	return out
}

// executeScan applies the table filter with the planned reader strategy.
func (e *Engine) executeScan(q *Query, sp *ScanPlan, m *Metrics) (*scanState, error) {
	t := q.Tables[sp.TableIdx]
	st := &scanState{t: t, readers: map[string]*storage.Reader{}, io: m.IO}
	n := t.Table.NumRows()

	if sp.Strategy == "multi-stage" {
		if err := e.multiStageScan(st, sp, n); err != nil {
			return nil, err
		}
	} else {
		e.singleStageScan(q, st, sp, n)
	}
	m.RowsMaterialized += int64(len(st.rows))
	return st, nil
}

// singleStageScan loads every block of every touched column up front (early
// materialization) and evaluates the full filter tree row-at-a-time.
func (e *Engine) singleStageScan(q *Query, st *scanState, sp *ScanPlan, n int) {
	filter := st.t.Filter
	// Touch predicate columns plus downstream columns: the one-pass reader
	// constructs complete tuples immediately.
	cols := map[string]bool{}
	if filter != nil {
		for _, p := range filter.Leaves() {
			cols[p.Col] = true
		}
	}
	for _, c := range neededColumns(q, sp.TableIdx) {
		cols[c] = true
	}
	for c := range cols {
		st.reader(c).LoadAll()
	}
	if filter == nil {
		st.rows = allRows(n)
		return
	}
	rows := make([]int32, 0, n/4+1)
	for i := 0; i < n; i++ {
		ii := int32(i)
		ok := filter.Eval(func(_, col string) types.Datum { return st.value(col, ii) })
		if ok {
			rows = append(rows, ii)
		}
	}
	st.rows = rows
}

// multiStageScan filters column by column in the planned order, touching
// later columns only for candidate rows (the staged reader whose I/O wins
// Figure 6a measures).
func (e *Engine) multiStageScan(st *scanState, sp *ScanPlan, n int) error {
	preds, ok := st.t.Filter.Conjunction()
	if !ok {
		return fmt.Errorf("engine: multi-stage reader requires a conjunctive filter")
	}
	col := st.t.Table.ColByName // shorthand
	constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
		return col(c).EncodeDatum(d)
	})
	byCol := map[string]expr.Constraint{}
	for _, c := range constraints {
		byCol[c.Col] = c
	}
	rows := allRows(n)
	for _, c := range sp.ColOrder {
		cons, ok := byCol[c]
		if !ok {
			continue
		}
		if cons.Empty {
			rows = nil
			break
		}
		r := st.reader(c)
		kept := rows[:0]
		for _, row := range rows {
			if cons.Contains(r.Numeric(int(row))) {
				kept = append(kept, row)
			}
		}
		rows = kept
		if len(rows) == 0 {
			break
		}
	}
	st.rows = rows
	return nil
}

func allRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// intermediate is a joined relation: tuples of row ids, one per table,
// each carrying a multiplicity count. Compression merges tuples that agree
// on every column the rest of the plan can still observe (remaining join
// keys, group keys, aggregate inputs), summing their multiplicities — the
// groupjoin-style optimization that keeps COUNT-heavy star joins bounded
// even when their logical cardinality reaches the paper's 10^12 range.
type intermediate struct {
	// tabs lists query-table indices; pos inverts it.
	tabs []int
	pos  map[int]int
	// tuples[i][k] is the row id in table tabs[k].
	tuples [][]int32
	// counts[i] is the logical multiplicity of tuple i.
	counts []int64
}

// executeJoins folds the scans together in the planned left-deep order.
func (e *Engine) executeJoins(q *Query, p *Plan, states []*scanState, m *Metrics) (*intermediate, error) {
	first := p.JoinOrder[0]
	inter := &intermediate{tabs: []int{first}, pos: map[int]int{first: 0}}
	inter.tuples = make([][]int32, len(states[first].rows))
	inter.counts = make([]int64, len(states[first].rows))
	for i, r := range states[first].rows {
		inter.tuples[i] = []int32{r}
		inter.counts[i] = 1
	}
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	inter = compress(q, inter, states, p.JoinOrder[1:])
	for step, next := range p.JoinOrder[1:] {
		var conds []JoinCond
		for _, j := range q.Joins {
			l, r := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
			if _, in := inter.pos[l]; in && r == next {
				conds = append(conds, j)
			} else if _, in := inter.pos[r]; in && l == next {
				// Normalize so Left references the intermediate side.
				conds = append(conds, JoinCond{LeftTab: j.RightTab, LeftCol: j.RightCol, RightTab: j.LeftTab, RightCol: j.LeftCol})
			}
		}
		if len(conds) == 0 {
			return nil, fmt.Errorf("engine: table %s joins nothing in the current prefix", q.Tables[next].Binding)
		}
		// Sideways information passing: the intermediate's key set prunes
		// the next table's scan before its predicate columns are read.
		var sip map[uint64]bool
		if !e.DisableSIP {
			sip = make(map[uint64]bool, len(inter.tuples))
			key := make([]types.Datum, len(conds))
			for _, tuple := range inter.tuples {
				for k, c := range conds {
					lt := bindingIdx[c.LeftTab]
					key[k] = states[lt].value(c.LeftCol, tuple[inter.pos[lt]])
				}
				sip[hashKey(key)] = true
			}
		}
		if err := e.scanForJoin(q, p, states, next, conds, sip, m); err != nil {
			return nil, err
		}
		out, err := hashJoin(q, inter, states, next, conds, bindingIdx, m)
		if err != nil {
			return nil, err
		}
		inter = compress(q, out, states, p.JoinOrder[2+step:])
	}
	return inter, nil
}

// sipFirstFraction bounds when SIP runs before the table filter: a key set
// smaller than this fraction of the table is worth probing first.
const sipFirstFraction = 0.25

// scanForJoin scans the next join table, applying sideways information
// passing when the intermediate's key set is selective enough: the key
// columns are read first, non-joining rows are dropped, and only then are
// the table's predicate columns read for the survivors — so a join order
// that keeps intermediates small (good estimates) directly reduces block
// I/O.
func (e *Engine) scanForJoin(q *Query, p *Plan, states []*scanState, next int, conds []JoinCond, sip map[uint64]bool, m *Metrics) error {
	sp := p.Scans[next]
	t := q.Tables[next]
	n := t.Table.NumRows()
	sipFirst := sip != nil && float64(len(sip)) < sipFirstFraction*float64(n)
	if !sipFirst {
		st, err := e.executeScan(q, sp, m)
		if err != nil {
			return err
		}
		states[next] = st
		m.ReaderStrategy[t.Binding] = sp.Strategy
		return nil
	}
	st := &scanState{t: t, readers: map[string]*storage.Reader{}, io: m.IO}
	states[next] = st
	m.ReaderStrategy[t.Binding] = "sip+" + sp.Strategy

	// Stage 0: key-membership probe over the whole key column(s).
	keyReaders := make([]*storage.Reader, len(conds))
	for k, c := range conds {
		keyReaders[k] = st.reader(c.RightCol)
	}
	key := make([]types.Datum, len(conds))
	candidates := make([]int32, 0, len(sip))
	for i := 0; i < n; i++ {
		for k := range conds {
			key[k] = keyReaders[k].Value(i)
		}
		if sip[hashKey(key)] {
			candidates = append(candidates, int32(i))
		}
	}
	m.SIPPruned += int64(n - len(candidates))

	// Stage 1..k: the table's own filter over the surviving candidates,
	// touching predicate-column blocks only where candidates remain.
	filter := t.Filter
	if filter == nil || len(candidates) == 0 {
		st.rows = candidates
		m.RowsMaterialized += int64(len(st.rows))
		return nil
	}
	if preds, ok := filter.Conjunction(); ok {
		col := t.Table.ColByName
		constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
			return col(c).EncodeDatum(d)
		})
		order := sp.ColOrder
		if len(order) == 0 {
			order = distinctCols(preds)
		}
		byCol := map[string]expr.Constraint{}
		for _, c := range constraints {
			byCol[c.Col] = c
		}
		rows := candidates
		for _, c := range order {
			cons, ok := byCol[c]
			if !ok {
				continue
			}
			if cons.Empty {
				rows = nil
				break
			}
			r := st.reader(c)
			kept := rows[:0]
			for _, row := range rows {
				if cons.Contains(r.Numeric(int(row))) {
					kept = append(kept, row)
				}
			}
			rows = kept
			if len(rows) == 0 {
				break
			}
		}
		st.rows = rows
	} else {
		kept := candidates[:0]
		for _, row := range candidates {
			if filter.Eval(func(_, col string) types.Datum { return st.value(col, row) }) {
				kept = append(kept, row)
			}
		}
		st.rows = kept
	}
	m.RowsMaterialized += int64(len(st.rows))
	return nil
}

// liveColumns lists, per joined table, the columns later plan stages can
// still observe: keys of join conditions involving tables outside the
// current set, group keys, and aggregate inputs.
func liveColumns(q *Query, inter *intermediate, remaining []int) map[int][]string {
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	pending := map[int]bool{}
	for _, idx := range remaining {
		pending[idx] = true
	}
	live := map[int]map[string]bool{}
	add := func(binding, col string) {
		i := bindingIdx[binding]
		if _, in := inter.pos[i]; !in {
			return
		}
		if live[i] == nil {
			live[i] = map[string]bool{}
		}
		live[i][col] = true
	}
	for _, j := range q.Joins {
		l, r := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
		if pending[l] || pending[r] {
			add(j.LeftTab, j.LeftCol)
			add(j.RightTab, j.RightCol)
		}
	}
	for _, g := range q.GroupBy {
		add(g.Tab, g.Col)
	}
	for _, a := range q.Aggs {
		for _, c := range a.Cols {
			add(c.Tab, c.Col)
		}
	}
	out := map[int][]string{}
	for i, cols := range live {
		for c := range cols {
			out[i] = append(out[i], c)
		}
		sort.Strings(out[i])
	}
	return out
}

// compressThreshold skips compression for small intermediates.
const compressThreshold = 1024

// compress merges tuples that agree on every live column, summing their
// multiplicities.
func compress(q *Query, inter *intermediate, states []*scanState, remaining []int) *intermediate {
	if len(inter.tuples) < compressThreshold {
		return inter
	}
	live := liveColumns(q, inter, remaining)
	var width int
	for _, cols := range live {
		width += len(cols)
	}
	type slot struct {
		sig []types.Datum
		idx int
	}
	merged := make(map[uint64][]slot, len(inter.tuples)/4)
	out := &intermediate{tabs: inter.tabs, pos: inter.pos}
	sig := make([]types.Datum, 0, width)
	for ti, tuple := range inter.tuples {
		sig = sig[:0]
		for _, tabIdx := range inter.tabs {
			for _, col := range live[tabIdx] {
				sig = append(sig, states[tabIdx].value(col, tuple[inter.pos[tabIdx]]))
			}
		}
		h := hashKey(sig)
		found := false
		for _, s := range merged[h] {
			if keysEqual(s.sig, sig) {
				out.counts[s.idx] += inter.counts[ti]
				found = true
				break
			}
		}
		if !found {
			cp := make([]types.Datum, len(sig))
			copy(cp, sig)
			merged[h] = append(merged[h], slot{sig: cp, idx: len(out.tuples)})
			out.tuples = append(out.tuples, tuple)
			out.counts = append(out.counts, inter.counts[ti])
		}
	}
	return out
}

// hashJoin joins the intermediate with one new table over the given
// conditions (Left side = intermediate, Right side = new table).
func hashJoin(q *Query, inter *intermediate, states []*scanState, next int, conds []JoinCond, bindingIdx map[string]int, m *Metrics) (*intermediate, error) {
	st := states[next]

	// Build side: the new table's surviving rows (hash build), probe with
	// intermediate tuples. Entries keep key datums for exact matching.
	type entry struct {
		key []types.Datum
		row int32
	}
	build := make(map[uint64][]entry, len(st.rows))
	for _, row := range st.rows {
		key := make([]types.Datum, len(conds))
		for k, c := range conds {
			key[k] = st.value(c.RightCol, row)
		}
		h := hashKey(key)
		build[h] = append(build[h], entry{key: key, row: row})
	}

	out := &intermediate{tabs: append(append([]int(nil), inter.tabs...), next), pos: map[int]int{}}
	for i, t := range out.tabs {
		out.pos[t] = i
	}
	probeKey := make([]types.Datum, len(conds))
	for ti, tuple := range inter.tuples {
		for k, c := range conds {
			lt := bindingIdx[c.LeftTab]
			probeKey[k] = states[lt].value(c.LeftCol, tuple[inter.pos[lt]])
		}
		h := hashKey(probeKey)
		for _, ent := range build[h] {
			if !keysEqual(ent.key, probeKey) {
				continue
			}
			combined := make([]int32, len(tuple)+1)
			copy(combined, tuple)
			combined[len(tuple)] = ent.row
			out.tuples = append(out.tuples, combined)
			out.counts = append(out.counts, inter.counts[ti])
			if int64(len(out.tuples)) > MaxIntermediateRows {
				return nil, fmt.Errorf("engine: join intermediate exceeds %d rows", int64(MaxIntermediateRows))
			}
		}
	}
	m.RowsMaterialized += int64(len(out.tuples))
	return out, nil
}

func hashKey(key []types.Datum) uint64 {
	var h uint64 = 1469598103934665603
	for _, d := range key {
		h = h*1099511628211 ^ d.Hash64()
	}
	return h
}

func keysEqual(a, b []types.Datum) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// executeAggregation folds the joined relation through the aggregation
// hash table (or a single accumulator when there is no GROUP BY).
func (e *Engine) executeAggregation(q *Query, p *Plan, states []*scanState, inter *intermediate, m *Metrics) (*Result, error) {
	res := &Result{}
	for _, item := range q.Stmt.Items {
		res.Columns = append(res.Columns, item.String())
	}

	fetch := func(ref ColRef, tuple []int32) types.Datum {
		for k, ti := range inter.tabs {
			if q.Tables[ti].Binding == ref.Tab {
				return states[ti].value(ref.Col, tuple[k])
			}
		}
		panic("engine: unresolved column " + ref.String())
	}

	if len(q.GroupBy) == 0 {
		accs := newAccs(q.Aggs)
		for ti, tuple := range inter.tuples {
			updateAccs(accs, q.Aggs, fetch, tuple, inter.counts[ti])
		}
		res.Rows = [][]types.Datum{buildOutputRow(q, nil, accs)}
		m.InitialAggCapacity = 0
		return res, nil
	}

	table := newAggTable(p.AggCapacity)
	m.InitialAggCapacity = p.AggCapacity
	key := make([]types.Datum, len(q.GroupBy))
	for ti, tuple := range inter.tuples {
		for i, g := range q.GroupBy {
			key[i] = fetch(g, tuple)
		}
		accs := table.lookup(key, func() []aggAcc { return newAccs(q.Aggs) })
		updateAccs(accs, q.Aggs, fetch, tuple, inter.counts[ti])
	}
	m.HashResizes += int64(table.resizes)

	for _, slot := range table.slots {
		if slot.used {
			res.Rows = append(res.Rows, buildOutputRow(q, slot.key, slot.accs))
		}
	}
	sortRows(res.Rows)
	return res, nil
}

func buildOutputRow(q *Query, key []types.Datum, accs []aggAcc) []types.Datum {
	row := make([]types.Datum, len(q.outPlan))
	for i, item := range q.outPlan {
		if item.isAgg {
			row[i] = accs[item.aggIdx].result(q.Aggs[item.aggIdx].Kind)
		} else {
			row[i] = key[item.groupIdx]
		}
	}
	return row
}

func sortRows(rows [][]types.Datum) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k].K == types.KindString && b[k].K != types.KindString ||
				a[k].K != types.KindString && b[k].K == types.KindString {
				return a[k].K < b[k].K
			}
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	count    int64
	sum      float64
	min, max types.Datum
	seen     bool
	distinct map[uint64]struct{}
}

func newAccs(aggs []AggSpec) []aggAcc {
	accs := make([]aggAcc, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCountDistinct {
			accs[i].distinct = make(map[uint64]struct{})
		}
	}
	return accs
}

func updateAccs(accs []aggAcc, aggs []AggSpec, fetch func(ColRef, []int32) types.Datum, tuple []int32, mult int64) {
	for i := range aggs {
		acc := &accs[i]
		switch aggs[i].Kind {
		case AggCountStar:
			acc.count += mult
		case AggCountDistinct:
			var h uint64 = 1469598103934665603
			for _, c := range aggs[i].Cols {
				h = h*1099511628211 ^ fetch(c, tuple).Hash64()
			}
			acc.distinct[h] = struct{}{}
		case AggSum, AggAvg:
			v := fetch(aggs[i].Cols[0], tuple)
			acc.sum += v.AsFloat() * float64(mult)
			acc.count += mult
		case AggMin, AggMax:
			v := fetch(aggs[i].Cols[0], tuple)
			if !acc.seen {
				acc.min, acc.max, acc.seen = v, v, true
			} else {
				if v.Less(acc.min) {
					acc.min = v
				}
				if acc.max.Less(v) {
					acc.max = v
				}
			}
		}
	}
}

func (a *aggAcc) result(kind AggKind) types.Datum {
	switch kind {
	case AggCountStar:
		return types.Int(a.count)
	case AggCountDistinct:
		return types.Int(int64(len(a.distinct)))
	case AggSum:
		return types.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return types.Float(0)
		}
		return types.Float(a.sum / float64(a.count))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	default:
		panic("engine: unknown aggregate kind")
	}
}

// aggTable is an open-addressing hash table with linear probing that counts
// its resize events — the observable the paper's aggregation optimization
// reduces by presizing from RBX's NDV estimate.
type aggTable struct {
	slots   []aggSlot
	used    int
	resizes int
}

type aggSlot struct {
	h    uint64
	key  []types.Datum
	accs []aggAcc
	used bool
}

// aggLoadFactor triggers growth.
const aggLoadFactor = 0.7

func newAggTable(expectedGroups int) *aggTable {
	if expectedGroups < 1 {
		expectedGroups = 1
	}
	n := nextPow2(int(float64(expectedGroups)/aggLoadFactor) + 1)
	if n < 16 {
		n = 16
	}
	return &aggTable{slots: make([]aggSlot, n)}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// lookup finds or inserts the group for key, copying the key on insert.
func (t *aggTable) lookup(key []types.Datum, mk func() []aggAcc) []aggAcc {
	if float64(t.used+1) > aggLoadFactor*float64(len(t.slots)) {
		t.grow()
	}
	h := hashKey(key)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for {
		s := &t.slots[i]
		if !s.used {
			kc := make([]types.Datum, len(key))
			copy(kc, key)
			*s = aggSlot{h: h, key: kc, accs: mk(), used: true}
			t.used++
			return s.accs
		}
		if s.h == h && keysEqual(s.key, key) {
			return s.accs
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table and rehashes every entry — the resize cost the
// presizing optimization avoids.
func (t *aggTable) grow() {
	t.resizes++
	old := t.slots
	t.slots = make([]aggSlot, len(old)*2)
	t.used = 0
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if !s.used {
			continue
		}
		i := s.h & mask
		for t.slots[i].used {
			i = (i + 1) & mask
		}
		t.slots[i] = s
		t.used++
	}
}
