package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/obs"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// scanState is the runtime image of one scanned table: the surviving row
// ids and lazily created block-accounted column readers shared by later
// operators (late materialization reads land on the same readers — or on
// sibling readers sharing their charge sets — so every block is charged at
// most once per query).
type scanState struct {
	t       *QueryTable
	rows    []int32
	readers map[string]*storage.Reader
	io      *storage.IOStats
	// mu guards readers during parallel phases; sequential code (which
	// never overlaps a parallel phase) uses reader/value lock-free.
	mu sync.Mutex
}

func (s *scanState) reader(col string) *storage.Reader {
	if r, ok := s.readers[col]; ok {
		return r
	}
	c := s.t.Table.ColByName(col)
	if c == nil {
		panic(fmt.Sprintf("engine: table %s has no column %s", s.t.Name, col))
	}
	r := c.NewReader(s.io)
	s.readers[col] = r
	return r
}

// sibling returns a worker-private reader sharing the canonical reader's
// block-charge set. Safe to call from concurrent workers.
func (s *scanState) sibling(col string) *storage.Reader {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reader(col).Sibling()
}

func (s *scanState) value(col string, row int32) types.Datum {
	return s.reader(col).Value(int(row))
}

// Execute runs a physical plan.
func (e *Engine) Execute(p *Plan) (*Result, error) { return e.ExecuteTraced(p, nil) }

// ExecuteTraced runs a physical plan, recording one span per execution
// phase (scan, join step, aggregation) into tr; a nil tr disables
// recording.
func (e *Engine) ExecuteTraced(p *Plan, tr *obs.Trace) (*Result, error) {
	start := time.Now()
	q := p.Query
	m := Metrics{IO: &storage.IOStats{}, ReaderStrategy: map[string]string{}}
	ex := &execCtx{workers: e.workers(), tr: tr}
	m.ParallelWorkers = ex.workers

	// Only the leftmost table is scanned eagerly; later tables are scanned
	// at their join step so sideways information passing can prune them
	// with the intermediate's key set before their predicate columns are
	// read.
	states := make([]*scanState, len(q.Tables))
	first := p.JoinOrder[0]
	// Limit pushdown: a single-table projection query may stop its scan at
	// the Limit-th match — the only shape where the scan's output is the
	// query's output row-for-row.
	scanLimit := 0
	if len(q.Select) > 0 && len(q.Tables) == 1 {
		scanLimit = q.Limit
	}
	scanStart := time.Now()
	st, err := e.executeScan(q, p.Scans[first], &m, ex, scanLimit)
	if err != nil {
		return nil, err
	}
	states[first] = st
	m.ReaderStrategy[q.Tables[first].Binding] = p.Scans[first].Strategy
	ex.span(obs.OpExecScan, []string{q.Tables[first].Binding}, ex.workers, int64(len(st.rows)), time.Since(scanStart))

	inter, err := e.executeJoins(q, p, states, &m, ex)
	if err != nil {
		return nil, err
	}
	m.EstFinalRows = p.EstFinalRows
	for _, c := range inter.counts {
		m.ActualFinalRows += c
	}

	var res *Result
	if len(q.Select) > 0 {
		res = e.executeProjection(q, states, inter)
	} else {
		aggStart := time.Now()
		res, err = e.executeAggregation(q, p, states, inter, &m, ex)
		if err != nil {
			return nil, err
		}
		ex.span(obs.OpExecAgg, nil, ex.workers, int64(len(res.Rows)), time.Since(aggStart))
	}
	m.ScanBlocks = map[string]ScanBlockStats{}
	for i, st := range states {
		if st == nil {
			continue
		}
		var sb ScanBlockStats
		//bytecard:unordered-ok commutative integer sums over the binding's readers
		for _, r := range st.readers {
			sb.Read += r.BlocksCharged()
			sb.Skipped += r.BlocksSkipped()
		}
		m.ScanBlocks[q.Tables[i].Binding] = sb
	}
	m.ExecDuration = time.Since(start)
	res.Metrics = m
	return res, nil
}

// neededColumns lists the columns of table idx the query touches beyond the
// filter: join keys, group keys, and aggregate inputs.
func neededColumns(q *Query, idx int) []string {
	t := q.Tables[idx]
	seen := map[string]bool{}
	var out []string
	add := func(col string) {
		if !seen[col] {
			seen[col] = true
			out = append(out, col)
		}
	}
	for _, j := range q.Joins {
		if j.LeftTab == t.Binding {
			add(j.LeftCol)
		}
		if j.RightTab == t.Binding {
			add(j.RightCol)
		}
	}
	for _, g := range q.GroupBy {
		if g.Tab == t.Binding {
			add(g.Col)
		}
	}
	for _, a := range q.Aggs {
		for _, c := range a.Cols {
			if c.Tab == t.Binding {
				add(c.Col)
			}
		}
	}
	for _, s := range q.Select {
		if s.Tab == t.Binding {
			add(s.Col)
		}
	}
	return out
}

// executeScan applies the table filter with the planned reader strategy.
// limit, when positive, lets a pushed-down scan stop after that many
// matches (single-table projection queries only — the caller guarantees
// the scan's output is the query's output).
func (e *Engine) executeScan(q *Query, sp *ScanPlan, m *Metrics, ex *execCtx, limit int) (*scanState, error) {
	t := q.Tables[sp.TableIdx]
	st := &scanState{t: t, readers: map[string]*storage.Reader{}, io: m.IO}
	n := t.Table.NumRows()

	switch {
	case sp.Pushdown:
		start := time.Now()
		e.pushdownScan(st, sp, n, limit, ex)
		if ex.tr.Active() {
			skipped := 0
			//bytecard:unordered-ok commutative integer sum over the scan's readers
			for _, r := range st.readers {
				skipped += r.BlocksSkipped()
			}
			ex.tr.Add(obs.Span{
				Op: obs.OpScanPushdown, Tables: []string{t.Binding},
				Source: "engine", Outcome: obs.OutcomeOK,
				Workers: ex.workers, Value: float64(skipped),
				Duration: time.Since(start),
			})
		}
	case sp.Strategy == "multi-stage":
		if err := e.multiStageScan(st, sp, n, ex); err != nil {
			return nil, err
		}
	default:
		e.singleStageScan(q, st, sp, n, ex)
	}
	m.RowsMaterialized += int64(len(st.rows))
	return st, nil
}

// pushdownScan routes one table scan through the storage.BlockScan
// contract. Only the constrained columns are handed to storage (projection
// pushdown: unreferenced columns are never read here), zone maps prune
// whole blocks before any charge, and survivors come back as a selection
// vector — downstream operators materialize lazily through the shared-
// charge readers. Block decisions are block-local, so the morsel-parallel
// form reads and skips exactly the blocks the sequential form does.
func (e *Engine) pushdownScan(st *scanState, sp *ScanPlan, n, limit int, ex *execCtx) {
	preds, _ := st.t.Filter.Conjunction() // planScan sets Pushdown only for conjunctions
	if len(preds) == 0 {
		if limit > 0 && limit < n {
			n = limit
		}
		st.rows = allRows(n)
		return
	}
	col := st.t.Table.ColByName
	constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
		return col(c).EncodeDatum(d)
	})
	byCol := map[string]expr.Constraint{}
	for _, c := range constraints {
		byCol[c.Col] = c
	}
	order := sp.ColOrder
	if len(order) == 0 {
		order = distinctCols(preds)
	}
	opts := storage.ScanOptions{Limit: limit}
	cols := make([]string, 0, len(order))
	for _, c := range order {
		cons, ok := byCol[c]
		if !ok {
			continue
		}
		opts.Constraints = append(opts.Constraints, cons)
		cols = append(cols, c)
	}
	if limit == 0 && ex.parallelFor(n, morselRows) {
		st.rows = parallelPushdownScan(st, opts, cols, n, ex.workers)
		return
	}
	readers := make([]*storage.Reader, len(cols))
	for i, c := range cols {
		readers[i] = st.reader(c)
	}
	st.rows = storage.BlockScan(readers, opts, 0, n, nil)
}

// singleStageScan loads every block of every touched column up front (early
// materialization) and evaluates the full filter tree row-at-a-time,
// splitting the row space into block-aligned morsels when the executor
// runs parallel.
func (e *Engine) singleStageScan(q *Query, st *scanState, sp *ScanPlan, n int, ex *execCtx) {
	filter := st.t.Filter
	// Touch predicate columns plus downstream columns: the one-pass reader
	// constructs complete tuples immediately.
	seen := map[string]bool{}
	var cols []string
	if filter != nil {
		for _, p := range filter.Leaves() {
			if !seen[p.Col] {
				seen[p.Col] = true
				cols = append(cols, p.Col)
			}
		}
	}
	for _, c := range neededColumns(q, sp.TableIdx) {
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	if filter == nil {
		for _, c := range cols {
			st.reader(c).LoadAll()
		}
		st.rows = allRows(n)
		return
	}
	if ex.parallelFor(n, morselRows) {
		st.rows = parallelSingleStage(st, cols, n, ex.workers)
		return
	}
	for _, c := range cols {
		st.reader(c).LoadAll()
	}
	rows := make([]int32, 0, n/4+1)
	for i := 0; i < n; i++ {
		ii := int32(i)
		ok := filter.Eval(func(_, col string) types.Datum { return st.value(col, ii) })
		if ok {
			rows = append(rows, ii)
		}
	}
	st.rows = rows
}

// multiStageScan filters column by column in the planned order, touching
// later columns only for candidate rows (the staged reader whose I/O wins
// Figure 6a measures). Under parallel execution each worker runs the full
// column order within its block-aligned morsel.
func (e *Engine) multiStageScan(st *scanState, sp *ScanPlan, n int, ex *execCtx) error {
	preds, ok := st.t.Filter.Conjunction()
	if !ok {
		return fmt.Errorf("engine: multi-stage reader requires a conjunctive filter")
	}
	col := st.t.Table.ColByName // shorthand
	constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
		return col(c).EncodeDatum(d)
	})
	byCol := map[string]expr.Constraint{}
	for _, c := range constraints {
		byCol[c.Col] = c
	}
	if ex.parallelFor(n, morselRows) {
		st.rows = parallelMultiStage(st, sp.ColOrder, byCol, n, ex.workers)
		return nil
	}
	st.rows = stageFilter(st.reader, sp.ColOrder, byCol, allRows(n))
	return nil
}

func allRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// intermediate is a joined relation: tuples of row ids, one per table,
// each carrying a multiplicity count. Compression merges tuples that agree
// on every column the rest of the plan can still observe (remaining join
// keys, group keys, aggregate inputs), summing their multiplicities — the
// groupjoin-style optimization that keeps COUNT-heavy star joins bounded
// even when their logical cardinality reaches the paper's 10^12 range.
type intermediate struct {
	// tabs lists query-table indices; pos inverts it.
	tabs []int
	pos  map[int]int
	// tuples[i][k] is the row id in table tabs[k].
	tuples [][]int32
	// counts[i] is the logical multiplicity of tuple i.
	counts []int64
}

// executeJoins folds the scans together in the planned left-deep order.
func (e *Engine) executeJoins(q *Query, p *Plan, states []*scanState, m *Metrics, ex *execCtx) (*intermediate, error) {
	first := p.JoinOrder[0]
	inter := &intermediate{tabs: []int{first}, pos: map[int]int{first: 0}}
	inter.tuples = make([][]int32, len(states[first].rows))
	inter.counts = make([]int64, len(states[first].rows))
	for i, r := range states[first].rows {
		inter.tuples[i] = []int32{r}
		inter.counts[i] = 1
	}
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	inter = compress(q, inter, states, p.JoinOrder[1:])
	for step, next := range p.JoinOrder[1:] {
		var conds []JoinCond
		for _, j := range q.Joins {
			l, r := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
			if _, in := inter.pos[l]; in && r == next {
				conds = append(conds, j)
			} else if _, in := inter.pos[r]; in && l == next {
				// Normalize so Left references the intermediate side.
				conds = append(conds, JoinCond{LeftTab: j.RightTab, LeftCol: j.RightCol, RightTab: j.LeftTab, RightCol: j.LeftCol})
			}
		}
		if len(conds) == 0 {
			return nil, fmt.Errorf("engine: table %s joins nothing in the current prefix", q.Tables[next].Binding)
		}
		// Sideways information passing: the intermediate's key set prunes
		// the next table's scan before its predicate columns are read.
		var sip map[uint64]bool
		if !e.DisableSIP {
			sip = make(map[uint64]bool, len(inter.tuples))
			key := make([]types.Datum, len(conds))
			for _, tuple := range inter.tuples {
				for k, c := range conds {
					lt := bindingIdx[c.LeftTab]
					key[k] = states[lt].value(c.LeftCol, tuple[inter.pos[lt]])
				}
				sip[hashKey(key)] = true
			}
		}
		stepStart := time.Now()
		if err := e.scanForJoin(q, p, states, next, conds, sip, m, ex); err != nil {
			return nil, err
		}
		out, err := hashJoin(q, inter, states, next, conds, bindingIdx, m, ex)
		if err != nil {
			return nil, err
		}
		inter = compress(q, out, states, p.JoinOrder[2+step:])
		if ex.tr.Active() {
			var prefix []string
			for _, ti := range inter.tabs {
				prefix = append(prefix, q.Tables[ti].Binding)
			}
			ex.span(obs.OpExecJoin, prefix, ex.workers, int64(len(inter.tuples)), time.Since(stepStart))
		}
	}
	return inter, nil
}

// sipFirstFraction bounds when SIP runs before the table filter: a key set
// smaller than this fraction of the table is worth probing first.
const sipFirstFraction = 0.25

// scanForJoin scans the next join table, applying sideways information
// passing when the intermediate's key set is selective enough: the key
// columns are read first, non-joining rows are dropped, and only then are
// the table's predicate columns read for the survivors — so a join order
// that keeps intermediates small (good estimates) directly reduces block
// I/O.
func (e *Engine) scanForJoin(q *Query, p *Plan, states []*scanState, next int, conds []JoinCond, sip map[uint64]bool, m *Metrics, ex *execCtx) error {
	sp := p.Scans[next]
	t := q.Tables[next]
	n := t.Table.NumRows()
	sipFirst := sip != nil && float64(len(sip)) < sipFirstFraction*float64(n)
	if !sipFirst {
		st, err := e.executeScan(q, sp, m, ex, 0)
		if err != nil {
			return err
		}
		states[next] = st
		m.ReaderStrategy[t.Binding] = sp.Strategy
		return nil
	}
	st := &scanState{t: t, readers: map[string]*storage.Reader{}, io: m.IO}
	states[next] = st
	m.ReaderStrategy[t.Binding] = "sip+" + sp.Strategy

	// Stage 0: key-membership probe over the whole key column(s), morsel
	// parallel when the table is large enough.
	var candidates []int32
	if ex.parallelFor(n, morselRows) {
		candidates = parallelSIPProbe(st, conds, sip, n, ex.workers)
	} else {
		keyReaders := make([]*storage.Reader, len(conds))
		for k, c := range conds {
			keyReaders[k] = st.reader(c.RightCol)
		}
		key := make([]types.Datum, len(conds))
		candidates = make([]int32, 0, len(sip))
		for i := 0; i < n; i++ {
			for k := range conds {
				key[k] = keyReaders[k].Value(i)
			}
			if sip[hashKey(key)] {
				candidates = append(candidates, int32(i))
			}
		}
	}
	m.SIPPruned += int64(n - len(candidates))

	// Stage 1..k: the table's own filter over the surviving candidates,
	// touching predicate-column blocks only where candidates remain.
	filter := t.Filter
	if filter == nil || len(candidates) == 0 {
		st.rows = candidates
		m.RowsMaterialized += int64(len(st.rows))
		return nil
	}
	if preds, ok := filter.Conjunction(); ok {
		col := t.Table.ColByName
		constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
			return col(c).EncodeDatum(d)
		})
		order := sp.ColOrder
		if len(order) == 0 {
			order = distinctCols(preds)
		}
		byCol := map[string]expr.Constraint{}
		for _, c := range constraints {
			byCol[c.Col] = c
		}
		if ex.parallelFor(len(candidates), tupleChunk) {
			st.rows = parallelStageFilterRows(st, order, byCol, candidates, ex.workers)
		} else {
			st.rows = stageFilter(st.reader, order, byCol, candidates)
		}
	} else {
		if ex.parallelFor(len(candidates), tupleChunk) {
			st.rows = parallelEvalFilterRows(st, filter, candidates, ex.workers)
		} else {
			kept := candidates[:0]
			for _, row := range candidates {
				if filter.Eval(func(_, col string) types.Datum { return st.value(col, row) }) {
					kept = append(kept, row)
				}
			}
			st.rows = kept
		}
	}
	m.RowsMaterialized += int64(len(st.rows))
	return nil
}

// liveColumns lists, per joined table, the columns later plan stages can
// still observe: keys of join conditions involving tables outside the
// current set, group keys, and aggregate inputs.
func liveColumns(q *Query, inter *intermediate, remaining []int) map[int][]string {
	bindingIdx := map[string]int{}
	for i, t := range q.Tables {
		bindingIdx[t.Binding] = i
	}
	pending := map[int]bool{}
	for _, idx := range remaining {
		pending[idx] = true
	}
	live := map[int]map[string]bool{}
	add := func(binding, col string) {
		i := bindingIdx[binding]
		if _, in := inter.pos[i]; !in {
			return
		}
		if live[i] == nil {
			live[i] = map[string]bool{}
		}
		live[i][col] = true
	}
	for _, j := range q.Joins {
		l, r := bindingIdx[j.LeftTab], bindingIdx[j.RightTab]
		if pending[l] || pending[r] {
			add(j.LeftTab, j.LeftCol)
			add(j.RightTab, j.RightCol)
		}
	}
	for _, g := range q.GroupBy {
		add(g.Tab, g.Col)
	}
	for _, a := range q.Aggs {
		for _, c := range a.Cols {
			add(c.Tab, c.Col)
		}
	}
	out := map[int][]string{}
	//bytecard:unordered-ok keyed transform: each out[i] is built from its own cols set and sorted before use
	for i, cols := range live {
		for c := range cols {
			out[i] = append(out[i], c)
		}
		sort.Strings(out[i])
	}
	return out
}

// compressThreshold skips compression for small intermediates.
const compressThreshold = 1024

// compress merges tuples that agree on every live column, summing their
// multiplicities. Projection queries are exempt: merging reorders tuples,
// and their output is defined by scan/join row order.
func compress(q *Query, inter *intermediate, states []*scanState, remaining []int) *intermediate {
	if len(q.Select) > 0 || len(inter.tuples) < compressThreshold {
		return inter
	}
	live := liveColumns(q, inter, remaining)
	var width int
	for _, cols := range live {
		width += len(cols)
	}
	type slot struct {
		sig []types.Datum
		idx int
	}
	merged := make(map[uint64][]slot, len(inter.tuples)/4)
	out := &intermediate{tabs: inter.tabs, pos: inter.pos}
	sig := make([]types.Datum, 0, width)
	for ti, tuple := range inter.tuples {
		sig = sig[:0]
		for _, tabIdx := range inter.tabs {
			for _, col := range live[tabIdx] {
				sig = append(sig, states[tabIdx].value(col, tuple[inter.pos[tabIdx]]))
			}
		}
		h := hashKey(sig)
		found := false
		for _, s := range merged[h] {
			if keysEqual(s.sig, sig) {
				out.counts[s.idx] += inter.counts[ti]
				found = true
				break
			}
		}
		if !found {
			cp := make([]types.Datum, len(sig))
			copy(cp, sig)
			merged[h] = append(merged[h], slot{sig: cp, idx: len(out.tuples)})
			out.tuples = append(out.tuples, tuple)
			out.counts = append(out.counts, inter.counts[ti])
		}
	}
	return out
}

// joinEntry is one build-side row of a hash join; it keeps the key datums
// for exact matching so hash collisions never join unequal keys.
type joinEntry struct {
	key []types.Datum
	row int32
}

// hashJoin joins the intermediate with one new table over the given
// conditions (Left side = intermediate, Right side = new table). The build
// side is constructed sequentially; the probe runs over tuple chunks in
// parallel, with per-chunk output partitions concatenated in chunk order —
// byte-identical to the sequential probe.
func hashJoin(q *Query, inter *intermediate, states []*scanState, next int, conds []JoinCond, bindingIdx map[string]int, m *Metrics, ex *execCtx) (*intermediate, error) {
	st := states[next]

	build := make(map[uint64][]joinEntry, len(st.rows))
	for _, row := range st.rows {
		key := make([]types.Datum, len(conds))
		for k, c := range conds {
			key[k] = st.value(c.RightCol, row)
		}
		h := hashKey(key)
		build[h] = append(build[h], joinEntry{key: key, row: row})
	}

	out := &intermediate{tabs: append(append([]int(nil), inter.tabs...), next), pos: map[int]int{}}
	for i, t := range out.tabs {
		out.pos[t] = i
	}
	if ex.parallelFor(len(inter.tuples), tupleChunk) {
		tuples, counts, ok := parallelProbe(inter, states, build, conds, bindingIdx, ex.workers)
		if !ok {
			return nil, fmt.Errorf("engine: join intermediate exceeds %d rows", int64(MaxIntermediateRows))
		}
		out.tuples, out.counts = tuples, counts
		m.RowsMaterialized += int64(len(out.tuples))
		return out, nil
	}
	probeKey := make([]types.Datum, len(conds))
	for ti, tuple := range inter.tuples {
		for k, c := range conds {
			lt := bindingIdx[c.LeftTab]
			probeKey[k] = states[lt].value(c.LeftCol, tuple[inter.pos[lt]])
		}
		h := hashKey(probeKey)
		for _, ent := range build[h] {
			if !keysEqual(ent.key, probeKey) {
				continue
			}
			combined := make([]int32, len(tuple)+1)
			copy(combined, tuple)
			combined[len(tuple)] = ent.row
			out.tuples = append(out.tuples, combined)
			out.counts = append(out.counts, inter.counts[ti])
			if int64(len(out.tuples)) > MaxIntermediateRows {
				return nil, fmt.Errorf("engine: join intermediate exceeds %d rows", int64(MaxIntermediateRows))
			}
		}
	}
	m.RowsMaterialized += int64(len(out.tuples))
	return out, nil
}

func hashKey(key []types.Datum) uint64 {
	var h uint64 = 1469598103934665603
	for _, d := range key {
		h = h*1099511628211 ^ d.Hash64()
	}
	return h
}

// keysEqual reports whether two key tuples are equal. Ragged lengths and
// non-comparable kind pairs compare unequal instead of panicking (or
// silently misjudging when a is a prefix of b).
func keysEqual(a, b []types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K && !(a[i].IsNumeric() && b[i].IsNumeric()) {
			return false
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// executeAggregation folds the joined relation through the aggregation
// hash table (or a single accumulator when there is no GROUP BY). When the
// executor runs parallel, workers accumulate into per-worker tables sized
// from the NDV estimate divided by the worker count, then merge.
func (e *Engine) executeAggregation(q *Query, p *Plan, states []*scanState, inter *intermediate, m *Metrics, ex *execCtx) (*Result, error) {
	res := &Result{}
	for _, item := range q.Stmt.Items {
		res.Columns = append(res.Columns, item.String())
	}

	fetch := func(ref ColRef, tuple []int32) types.Datum {
		for k, ti := range inter.tabs {
			if q.Tables[ti].Binding == ref.Tab {
				return states[ti].value(ref.Col, tuple[k])
			}
		}
		panic("engine: unresolved column " + ref.String())
	}

	if len(q.GroupBy) == 0 {
		m.InitialAggCapacity = 0
		var accs []aggAcc
		if ex.parallelFor(len(inter.tuples), tupleChunk) {
			accs = parallelGlobalAgg(q, states, inter, ex.workers)
		} else {
			accs = newAccs(q.Aggs)
			for ti, tuple := range inter.tuples {
				updateAccs(accs, q.Aggs, fetch, tuple, inter.counts[ti])
			}
		}
		res.Rows = [][]types.Datum{buildOutputRow(q, nil, accs)}
		return res, nil
	}

	m.InitialAggCapacity = p.AggCapacity
	var table *aggTable
	if ex.parallelFor(len(inter.tuples), tupleChunk) {
		var resizes int64
		table, resizes = parallelGroupedAgg(q, p, states, inter, ex.workers)
		m.HashResizes += resizes
	} else {
		table = newAggTable(p.AggCapacity)
		key := make([]types.Datum, len(q.GroupBy))
		for ti, tuple := range inter.tuples {
			for i, g := range q.GroupBy {
				key[i] = fetch(g, tuple)
			}
			accs := table.lookup(key, func() []aggAcc { return newAccs(q.Aggs) })
			updateAccs(accs, q.Aggs, fetch, tuple, inter.counts[ti])
		}
		m.HashResizes += int64(table.resizes)
	}

	for _, slot := range table.slots {
		if slot.used {
			res.Rows = append(res.Rows, buildOutputRow(q, slot.key, slot.accs))
		}
	}
	sortRows(res.Rows)
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// executeProjection materializes the projected columns of the surviving
// tuples — the late-materialization endpoint: selection vectors become
// output rows only here. Rows come back in scan/join order (scans emit
// ascending row ids; join partitions concatenate in chunk order), which is
// deterministic at any worker count, so no sort runs; LIMIT truncates.
func (e *Engine) executeProjection(q *Query, states []*scanState, inter *intermediate) *Result {
	res := &Result{}
	for _, item := range q.Stmt.Items {
		res.Columns = append(res.Columns, item.String())
	}
	bound := make([]boundCol, len(q.Select))
	for i, ref := range q.Select {
		found := false
		for k, tabIdx := range inter.tabs {
			if q.Tables[tabIdx].Binding == ref.Tab {
				bound[i] = boundCol{pos: k, tab: tabIdx, col: ref.Col}
				found = true
				break
			}
		}
		if !found {
			panic("engine: unresolved column " + ref.String())
		}
	}
	for ti, tuple := range inter.tuples {
		for c := inter.counts[ti]; c > 0; c-- {
			row := make([]types.Datum, len(bound))
			for i, bc := range bound {
				row[i] = states[bc.tab].value(bc.col, tuple[bc.pos])
			}
			res.Rows = append(res.Rows, row)
			if q.Limit > 0 && len(res.Rows) >= q.Limit {
				return res
			}
		}
	}
	return res
}

func buildOutputRow(q *Query, key []types.Datum, accs []aggAcc) []types.Datum {
	row := make([]types.Datum, len(q.outPlan))
	for i, item := range q.outPlan {
		if item.isAgg {
			row[i] = accs[item.aggIdx].result(q.Aggs[item.aggIdx].Kind)
		} else {
			row[i] = key[item.groupIdx]
		}
	}
	return row
}

// sortRows orders result rows deterministically. Cells of incomparable
// kinds (string vs numeric, or distinct nested kinds) order by kind rather
// than panicking in Datum.Compare, so mixed-kind result sets still sort
// the same way every run.
func sortRows(rows [][]types.Datum) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k].K != b[k].K && !(a[k].IsNumeric() && b[k].IsNumeric()) {
				return a[k].K < b[k].K
			}
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// distinctSet is an exact COUNT DISTINCT accumulator: keys are grouped by
// 64-bit hash but the actual datums are chained and compared on collision,
// so colliding datums never silently undercount the exact answer.
type distinctSet struct {
	groups map[uint64][][]types.Datum
	n      int
}

func newDistinctSet() *distinctSet {
	return &distinctSet{groups: map[uint64][][]types.Datum{}}
}

// add inserts key (copied) under hash h if no equal key is chained there.
func (s *distinctSet) add(h uint64, key []types.Datum) {
	for _, k := range s.groups[h] {
		if keysEqual(k, key) {
			return
		}
	}
	cp := make([]types.Datum, len(key))
	copy(cp, key)
	s.groups[h] = append(s.groups[h], cp)
	s.n++
}

// merge folds another set's members into s.
func (s *distinctSet) merge(o *distinctSet) {
	//bytecard:unordered-ok groups are keyed by hash; each hash chain merges independently and set semantics ignore insertion order
	for h, chain := range o.groups {
		for _, k := range chain {
			s.add(h, k)
		}
	}
}

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	count    int64
	sum      float64
	min, max types.Datum
	seen     bool
	distinct *distinctSet
}

func newAccs(aggs []AggSpec) []aggAcc {
	accs := make([]aggAcc, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCountDistinct {
			accs[i].distinct = newDistinctSet()
		}
	}
	return accs
}

func updateAccs(accs []aggAcc, aggs []AggSpec, fetch func(ColRef, []int32) types.Datum, tuple []int32, mult int64) {
	for i := range aggs {
		acc := &accs[i]
		switch aggs[i].Kind {
		case AggCountStar:
			acc.count += mult
		case AggCountDistinct:
			key := make([]types.Datum, len(aggs[i].Cols))
			var h uint64 = 1469598103934665603
			for k, c := range aggs[i].Cols {
				key[k] = fetch(c, tuple)
				h = h*1099511628211 ^ key[k].Hash64()
			}
			acc.distinct.add(h, key)
		case AggSum, AggAvg:
			v := fetch(aggs[i].Cols[0], tuple)
			acc.sum += v.AsFloat() * float64(mult)
			acc.count += mult
		case AggMin, AggMax:
			v := fetch(aggs[i].Cols[0], tuple)
			if !acc.seen {
				acc.min, acc.max, acc.seen = v, v, true
			} else {
				if v.Less(acc.min) {
					acc.min = v
				}
				if acc.max.Less(v) {
					acc.max = v
				}
			}
		}
	}
}

func (a *aggAcc) result(kind AggKind) types.Datum {
	switch kind {
	case AggCountStar:
		return types.Int(a.count)
	case AggCountDistinct:
		return types.Int(int64(a.distinct.n))
	case AggSum:
		return types.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return types.Float(0)
		}
		return types.Float(a.sum / float64(a.count))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	default:
		panic("engine: unknown aggregate kind")
	}
}

// aggTable is an open-addressing hash table with linear probing that counts
// its resize events — the observable the paper's aggregation optimization
// reduces by presizing from RBX's NDV estimate.
type aggTable struct {
	slots   []aggSlot
	used    int
	resizes int
}

type aggSlot struct {
	h    uint64
	key  []types.Datum
	accs []aggAcc
	used bool
}

// aggLoadFactor triggers growth.
const aggLoadFactor = 0.7

func newAggTable(expectedGroups int) *aggTable {
	if expectedGroups < 1 {
		expectedGroups = 1
	}
	n := nextPow2(int(float64(expectedGroups)/aggLoadFactor) + 1)
	if n < 16 {
		n = 16
	}
	return &aggTable{slots: make([]aggSlot, n)}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// lookup finds or inserts the group for key, copying the key on insert.
func (t *aggTable) lookup(key []types.Datum, mk func() []aggAcc) []aggAcc {
	return t.lookupHash(hashKey(key), key, mk)
}

// lookupHash is lookup with a caller-supplied hash — the merge phase
// reuses stored slot hashes, and tests inject colliding hashes to exercise
// chain behaviour.
func (t *aggTable) lookupHash(h uint64, key []types.Datum, mk func() []aggAcc) []aggAcc {
	if float64(t.used+1) > aggLoadFactor*float64(len(t.slots)) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for {
		s := &t.slots[i]
		if !s.used {
			kc := make([]types.Datum, len(key))
			copy(kc, key)
			*s = aggSlot{h: h, key: kc, accs: mk(), used: true}
			t.used++
			return s.accs
		}
		if s.h == h && keysEqual(s.key, key) {
			return s.accs
		}
		i = (i + 1) & mask
	}
}

// absorb merges another table's groups into t (the parallel aggregation's
// merge phase), combining accumulators group by group.
func (t *aggTable) absorb(o *aggTable, aggs []AggSpec) {
	for i := range o.slots {
		s := &o.slots[i]
		if !s.used {
			continue
		}
		accs := t.lookupHash(s.h, s.key, func() []aggAcc { return newAccs(aggs) })
		mergeAccs(accs, s.accs, aggs)
	}
}

// mergeAccs combines src's accumulators into dst (dst may be freshly
// zeroed, in which case the merge equals a copy).
func mergeAccs(dst, src []aggAcc, aggs []AggSpec) {
	for i := range aggs {
		d, s := &dst[i], &src[i]
		switch aggs[i].Kind {
		case AggCountStar:
			d.count += s.count
		case AggCountDistinct:
			d.distinct.merge(s.distinct)
		case AggSum, AggAvg:
			d.sum += s.sum
			d.count += s.count
		case AggMin, AggMax:
			if !s.seen {
				continue
			}
			if !d.seen {
				d.min, d.max, d.seen = s.min, s.max, true
				continue
			}
			if s.min.Less(d.min) {
				d.min = s.min
			}
			if d.max.Less(s.max) {
				d.max = s.max
			}
		}
	}
}

// grow doubles the table and rehashes every entry — the resize cost the
// presizing optimization avoids.
func (t *aggTable) grow() {
	t.resizes++
	old := t.slots
	t.slots = make([]aggSlot, len(old)*2)
	t.used = 0
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if !s.used {
			continue
		}
		i := s.h & mask
		for t.slots[i].used {
			i = (i + 1) & mask
		}
		t.slots[i] = s
		t.used++
	}
}
