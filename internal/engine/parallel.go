// Morsel-driven parallel execution: each scan's row space is split into
// block-aligned morsels dispatched to a worker pool, hash-join probes run
// over tuple chunks with per-chunk output partitions concatenated in chunk
// order, and aggregation accumulates into per-worker hash tables merged in
// worker order. Workers read through sibling storage.Readers that share an
// atomic block-charge set, so IOStats.BlocksRead is identical to the
// sequential path; chunk-indexed outputs make Result rows byte-identical.
package engine

import (
	"sync/atomic"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/obs"
	"bytecard/internal/par"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// MorselBlocks is the number of storage blocks per scan morsel. Morsel
// boundaries are block aligned so that, during a scan, each block belongs
// to exactly one worker; the shared charge set extends the
// charge-each-block-once invariant to later phases that revisit blocks.
const MorselBlocks = 2

// morselRows is the row span of one scan morsel.
const morselRows = MorselBlocks * storage.BlockSize

// tupleChunk is the unit of parallel work over intermediate tuples (join
// probe and aggregation input).
const tupleChunk = 2048

// execCtx carries per-query execution context: the resolved worker count
// and an optional trace receiving one span per execution phase.
type execCtx struct {
	workers int
	tr      *obs.Trace
}

// span records one execution phase: which tables it covered, how many
// workers ran it, and how many rows it produced.
func (ex *execCtx) span(op string, tables []string, workers int, rows int64, d time.Duration) {
	if ex == nil || !ex.tr.Active() {
		return
	}
	ex.tr.Add(obs.Span{
		Op: op, Tables: tables, Source: "engine", Outcome: obs.OutcomeOK,
		Workers: workers, Value: float64(rows), Duration: d,
	})
}

// parallelFor reports whether a phase over n items should run parallel.
func (ex *execCtx) parallelFor(n, chunk int) bool {
	return ex != nil && ex.workers > 1 && n > chunk
}

// Chunk dispatch lives in internal/par (par.Chunks dynamic, par.Strided
// static): the pool package is the repo's one goroutine source, so worker
// accounting and scheduling determinism stay centralized there.

// chunkBounds returns the [lo, hi) item range of chunk c.
func chunkBounds(n, size, c int) (int, int) {
	lo := c * size
	hi := lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

func numChunks(n, size int) int { return (n + size - 1) / size }

// concatRows concatenates chunk-indexed row lists in chunk order.
func concatRows(parts [][]int32) []int32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// workerView is one worker's private window onto a scanState: sibling
// readers (created under the state's lock, used lock-free afterwards) that
// share the canonical readers' block-charge sets.
type workerView struct {
	st      *scanState
	readers map[string]*storage.Reader
}

func newWorkerView(st *scanState) *workerView {
	return &workerView{st: st, readers: map[string]*storage.Reader{}}
}

func (w *workerView) reader(col string) *storage.Reader {
	if r, ok := w.readers[col]; ok {
		return r
	}
	r := w.st.sibling(col)
	w.readers[col] = r
	return r
}

func (w *workerView) value(col string, row int32) types.Datum {
	return w.reader(col).Value(int(row))
}

// multiView is one worker's window across every scanned table — the probe
// and aggregation phases read several tables per tuple.
type multiView struct {
	states []*scanState
	views  []*workerView
}

func newMultiView(states []*scanState) *multiView {
	return &multiView{states: states, views: make([]*workerView, len(states))}
}

func (v *multiView) value(tab int, col string, row int32) types.Datum {
	w := v.views[tab]
	if w == nil {
		w = newWorkerView(v.states[tab])
		v.views[tab] = w
	}
	return w.value(col, row)
}

// stageFilter applies the staged (multi-stage reader) constraint order to
// rows, filtering in place and touching each column's blocks only where
// candidates remain. reader supplies the column readers — the canonical
// scanState readers sequentially, a workerView's siblings in parallel.
func stageFilter(reader func(string) *storage.Reader, order []string, byCol map[string]expr.Constraint, rows []int32) []int32 {
	for _, c := range order {
		cons, ok := byCol[c]
		if !ok {
			continue
		}
		if cons.Empty {
			return nil
		}
		r := reader(c)
		kept := rows[:0]
		for _, row := range rows {
			if cons.Contains(r.Numeric(int(row))) {
				kept = append(kept, row)
			}
		}
		rows = kept
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// parallelSingleStage is singleStageScan's morsel-parallel form: every
// worker loads the blocks of its morsel for each touched column (the union
// across morsels equals LoadAll) and evaluates the filter row-at-a-time.
func parallelSingleStage(st *scanState, cols []string, n, workers int) []int32 {
	filter := st.t.Filter
	chunks := numChunks(n, morselRows)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, morselRows, c)
		view := newWorkerView(st)
		for _, col := range cols {
			view.reader(col).LoadRange(lo, hi)
		}
		rows := make([]int32, 0, (hi-lo)/4+1)
		for i := lo; i < hi; i++ {
			ii := int32(i)
			if filter.Eval(func(_, col string) types.Datum { return view.value(col, ii) }) {
				rows = append(rows, ii)
			}
		}
		parts[c] = rows
	})
	return concatRows(parts)
}

// parallelMultiStage is multiStageScan's morsel-parallel form: each worker
// runs the full staged column order within its morsel. Filters are
// row-local, so the surviving set — and the set of blocks holding
// survivors, which is what later stages touch — is identical to the
// sequential pass.
func parallelMultiStage(st *scanState, order []string, byCol map[string]expr.Constraint, n, workers int) []int32 {
	chunks := numChunks(n, morselRows)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, morselRows, c)
		rows := make([]int32, hi-lo)
		for i := range rows {
			rows[i] = int32(lo + i)
		}
		view := newWorkerView(st)
		parts[c] = stageFilter(view.reader, order, byCol, rows)
	})
	return concatRows(parts)
}

// parallelPushdownScan is pushdownScan's morsel-parallel form: each worker
// runs storage.BlockScan over its block-aligned morsel through sibling
// readers. Zone-map and charge decisions are block-local and the shared
// charge/skip sets count each (column, block) once, so blocks read and
// skipped — and the surviving rows, concatenated in chunk order — are
// identical to the sequential scan at any worker count.
func parallelPushdownScan(st *scanState, opts storage.ScanOptions, cols []string, n, workers int) []int32 {
	chunks := numChunks(n, morselRows)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, morselRows, c)
		view := newWorkerView(st)
		readers := make([]*storage.Reader, len(cols))
		for i, col := range cols {
			readers[i] = view.reader(col)
		}
		parts[c] = storage.BlockScan(readers, opts, lo, hi, nil)
	})
	return concatRows(parts)
}

// parallelSIPProbe is the morsel-parallel key-membership stage of a
// SIP-first scan: workers probe the shared read-only key set over their
// morsels and emit surviving candidates in row order.
func parallelSIPProbe(st *scanState, conds []JoinCond, sip map[uint64]bool, n, workers int) []int32 {
	chunks := numChunks(n, morselRows)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, morselRows, c)
		view := newWorkerView(st)
		keyReaders := make([]*storage.Reader, len(conds))
		for k, cond := range conds {
			keyReaders[k] = view.reader(cond.RightCol)
		}
		key := make([]types.Datum, len(conds))
		var rows []int32
		for i := lo; i < hi; i++ {
			for k := range conds {
				key[k] = keyReaders[k].Value(i)
			}
			if sip[hashKey(key)] {
				rows = append(rows, int32(i))
			}
		}
		parts[c] = rows
	})
	return concatRows(parts)
}

// parallelStageFilterRows runs stageFilter over disjoint chunks of an
// arbitrary candidate list (the SIP-first scan's later stages; candidates
// are ascending but not block aligned — exactly-once charging is carried
// by the shared charge sets).
func parallelStageFilterRows(st *scanState, order []string, byCol map[string]expr.Constraint, candidates []int32, workers int) []int32 {
	n := len(candidates)
	chunks := numChunks(n, tupleChunk)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, tupleChunk, c)
		view := newWorkerView(st)
		parts[c] = stageFilter(view.reader, order, byCol, candidates[lo:hi])
	})
	return concatRows(parts)
}

// parallelEvalFilterRows evaluates an arbitrary filter tree over disjoint
// chunks of a candidate list (the SIP-first scan's non-conjunctive tail).
func parallelEvalFilterRows(st *scanState, filter *expr.Node, candidates []int32, workers int) []int32 {
	n := len(candidates)
	chunks := numChunks(n, tupleChunk)
	parts := make([][]int32, chunks)
	par.Chunks(workers, chunks, func(_, c int) {
		lo, hi := chunkBounds(n, tupleChunk, c)
		view := newWorkerView(st)
		kept := candidates[lo:lo]
		for _, row := range candidates[lo:hi] {
			if filter.Eval(func(_, col string) types.Datum { return view.value(col, row) }) {
				kept = append(kept, row)
			}
		}
		parts[c] = kept
	})
	return concatRows(parts)
}

// probePart is one chunk's hash-join output partition.
type probePart struct {
	tuples [][]int32
	counts []int64
}

// parallelProbe probes the shared read-only build table over chunks of the
// intermediate's tuples. Per-chunk partitions concatenated in chunk order
// reproduce exactly the sequential probe's output order (the build side is
// built sequentially, so per-key match order is identical too).
func parallelProbe(inter *intermediate, states []*scanState, build map[uint64][]joinEntry, conds []JoinCond, bindingIdx map[string]int, workers int) ([][]int32, []int64, bool) {
	n := len(inter.tuples)
	chunks := numChunks(n, tupleChunk)
	parts := make([]probePart, chunks)
	var total atomic.Int64
	var overflow atomic.Bool
	par.Chunks(workers, chunks, func(_, c int) {
		if overflow.Load() {
			return
		}
		lo, hi := chunkBounds(n, tupleChunk, c)
		view := newMultiView(states)
		probeKey := make([]types.Datum, len(conds))
		var part probePart
		for ti := lo; ti < hi; ti++ {
			tuple := inter.tuples[ti]
			for k, cond := range conds {
				lt := bindingIdx[cond.LeftTab]
				probeKey[k] = view.value(lt, cond.LeftCol, tuple[inter.pos[lt]])
			}
			h := hashKey(probeKey)
			matched := int64(0)
			for _, ent := range build[h] {
				if !keysEqual(ent.key, probeKey) {
					continue
				}
				combined := make([]int32, len(tuple)+1)
				copy(combined, tuple)
				combined[len(tuple)] = ent.row
				part.tuples = append(part.tuples, combined)
				part.counts = append(part.counts, inter.counts[ti])
				matched++
			}
			if matched > 0 && total.Add(matched) > MaxIntermediateRows {
				overflow.Store(true)
				return
			}
		}
		parts[c] = part
	})
	if overflow.Load() {
		return nil, nil, false
	}
	outN := 0
	for i := range parts {
		outN += len(parts[i].tuples)
	}
	tuples := make([][]int32, 0, outN)
	counts := make([]int64, 0, outN)
	for i := range parts {
		tuples = append(tuples, parts[i].tuples...)
		counts = append(counts, parts[i].counts...)
	}
	return tuples, counts, true
}

// parallelGroupedAgg accumulates the joined relation into per-worker
// aggregation tables — each presized to the NDV estimate divided by the
// worker count — then merges them in worker order. The per-table resize
// counters (own growth plus merge-phase growth) sum into
// Metrics.HashResizes, keeping the presizing experiment meaningful under
// parallelism.
func parallelGroupedAgg(q *Query, p *Plan, states []*scanState, inter *intermediate, workers int) (*aggTable, int64) {
	n := len(inter.tuples)
	chunks := numChunks(n, tupleChunk)
	if workers > chunks {
		workers = chunks
	}
	perWorkerCap := p.AggCapacity / workers
	bound := bindColumns(q, inter)
	tables := make([]*aggTable, workers)
	views := make([]*multiView, workers)
	keys := make([][]types.Datum, workers)
	par.Strided(workers, chunks, func(w, c int) {
		if tables[w] == nil {
			tables[w] = newAggTable(perWorkerCap)
			views[w] = newMultiView(states)
			keys[w] = make([]types.Datum, len(q.GroupBy))
		}
		table, view, key := tables[w], views[w], keys[w]
		fetch := func(ref ColRef, tuple []int32) types.Datum {
			bc := bound[ref]
			return view.value(bc.tab, bc.col, tuple[bc.pos])
		}
		lo, hi := chunkBounds(n, tupleChunk, c)
		for ti := lo; ti < hi; ti++ {
			tuple := inter.tuples[ti]
			for i, g := range q.GroupBy {
				key[i] = fetch(g, tuple)
			}
			accs := table.lookup(key, func() []aggAcc { return newAccs(q.Aggs) })
			updateAccs(accs, q.Aggs, fetch, tuple, inter.counts[ti])
		}
	})
	var final *aggTable
	var resizes int64
	for _, t := range tables {
		if t == nil {
			continue
		}
		if final == nil {
			final = t
			continue
		}
		resizes += int64(t.resizes)
		final.absorb(t, q.Aggs)
	}
	if final == nil {
		final = newAggTable(p.AggCapacity)
	}
	return final, resizes + int64(final.resizes)
}

// parallelGlobalAgg accumulates the no-GROUP-BY aggregates into per-worker
// accumulator blocks merged in worker order.
func parallelGlobalAgg(q *Query, states []*scanState, inter *intermediate, workers int) []aggAcc {
	n := len(inter.tuples)
	chunks := numChunks(n, tupleChunk)
	if workers > chunks {
		workers = chunks
	}
	bound := bindColumns(q, inter)
	blocks := make([][]aggAcc, workers)
	views := make([]*multiView, workers)
	par.Strided(workers, chunks, func(w, c int) {
		if blocks[w] == nil {
			blocks[w] = newAccs(q.Aggs)
			views[w] = newMultiView(states)
		}
		accs, view := blocks[w], views[w]
		fetch := func(ref ColRef, tuple []int32) types.Datum {
			bc := bound[ref]
			return view.value(bc.tab, bc.col, tuple[bc.pos])
		}
		lo, hi := chunkBounds(n, tupleChunk, c)
		for ti := lo; ti < hi; ti++ {
			updateAccs(accs, q.Aggs, fetch, inter.tuples[ti], inter.counts[ti])
		}
	})
	out := newAccs(q.Aggs)
	for _, accs := range blocks {
		if accs != nil {
			mergeAccs(out, accs, q.Aggs)
		}
	}
	return out
}

// boundCol is a ColRef resolved against an intermediate: which tuple
// position and table index to read, so parallel workers skip the per-row
// binding search.
type boundCol struct {
	pos int
	tab int
	col string
}

// bindColumns resolves every group key and aggregate input against the
// intermediate's tuple layout.
func bindColumns(q *Query, inter *intermediate) map[ColRef]boundCol {
	bound := map[ColRef]boundCol{}
	resolve := func(ref ColRef) {
		if _, ok := bound[ref]; ok {
			return
		}
		for k, ti := range inter.tabs {
			if q.Tables[ti].Binding == ref.Tab {
				bound[ref] = boundCol{pos: k, tab: ti, col: ref.Col}
				return
			}
		}
		panic("engine: unresolved column " + ref.String())
	}
	for _, g := range q.GroupBy {
		resolve(g)
	}
	for _, a := range q.Aggs {
		for _, c := range a.Cols {
			resolve(c)
		}
	}
	return bound
}
