package engine

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/expr"
	"bytecard/internal/sqlparse"
)

// hashCardEstimator answers every join-size request with a deterministic
// pseudo-random value derived from the subset's sorted bindings, so any
// enumeration-order or batching bug shows up as a changed plan.
type hashCardEstimator struct {
	joinCalls  atomic.Int64
	batchCalls atomic.Int64
}

func (h *hashCardEstimator) Name() string                       { return "hash" }
func (h *hashCardEstimator) EstimateFilter(*QueryTable) float64 { return 1000 }
func (h *hashCardEstimator) EstimateConj(*QueryTable, []expr.Pred) float64 {
	return 0.5
}
func (h *hashCardEstimator) EstimateGroupNDV(*Query) float64 { return 10 }

func (h *hashCardEstimator) estimate(tables []*QueryTable) float64 {
	names := make([]string, len(tables))
	for i, t := range tables {
		names[i] = t.Binding
	}
	sort.Strings(names)
	f := fnv.New64a()
	f.Write([]byte(strings.Join(names, ",")))
	return float64(1 + f.Sum64()%1_000_000)
}

func (h *hashCardEstimator) EstimateJoin(tables []*QueryTable, joins []JoinCond) float64 {
	h.joinCalls.Add(1)
	return h.estimate(tables)
}

// batchHashEstimator adds a concurrent EstimateJoinBatch over the same
// per-subset function.
type batchHashEstimator struct{ hashCardEstimator }

func (h *batchHashEstimator) EstimateJoinBatch(items []JoinBatchItem, parallelism int) []float64 {
	h.batchCalls.Add(1)
	out := make([]float64, len(items))
	var wg sync.WaitGroup
	var cursor atomic.Int64
	if parallelism > len(items) {
		parallelism = len(items)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(items) {
					return
				}
				out[k] = h.estimate(items[k].Tables)
			}
		}()
	}
	wg.Wait()
	return out
}

// noBatch hides an estimator's EstimateJoinBatch method, forcing the
// planner down the sequential path.
type noBatch struct{ CardEstimator }

func planJoinQuery(t *testing.T, e *Engine, sql string) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Analyze(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var imdbJoinQueries = []string{
	"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id",
	"SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk WHERE ci.movie_id = t.id AND mk.movie_id = t.id",
	"SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk, movie_info mi WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND mi.movie_id = t.id AND t.production_year >= 1990",
	"SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk, movie_info mi, movie_companies mc, movie_info_idx mii " +
		"WHERE ci.movie_id = t.id AND mk.movie_id = t.id AND mi.movie_id = t.id AND mc.movie_id = t.id AND mii.movie_id = t.id",
	// n=10 via alias self-joins: every fact table twice around title.
	"SELECT COUNT(*) FROM title t, cast_info c1, cast_info c2, movie_keyword k1, movie_keyword k2, movie_info i1, movie_info i2, movie_companies m1, movie_companies m2, movie_info_idx x1 " +
		"WHERE c1.movie_id = t.id AND c2.movie_id = t.id AND k1.movie_id = t.id AND k2.movie_id = t.id AND i1.movie_id = t.id AND i2.movie_id = t.id AND m1.movie_id = t.id AND m2.movie_id = t.id AND x1.movie_id = t.id",
}

// TestBatchedPlanningMatchesSequential is the ISSUE's parity gate: the
// batched parallel DP must produce byte-identical JoinOrder, JoinEstRows,
// and EstFinalRows to the sequential path.
func TestBatchedPlanningMatchesSequential(t *testing.T) {
	ds, err := datagen.ByName("imdb", datagen.Config{Scale: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range imdbJoinQueries {
		batched := &batchHashEstimator{}
		eb := New(ds.DB, ds.Schema, batched)
		eb.Parallelism = 4
		pb := planJoinQuery(t, eb, sql)

		sequential := &hashCardEstimator{}
		es := New(ds.DB, ds.Schema, noBatch{sequential})
		es.Parallelism = 4
		ps := planJoinQuery(t, es, sql)

		if len(pb.JoinOrder) > 2 && batched.batchCalls.Load() == 0 {
			t.Errorf("%s: batch estimator never invoked", sql)
		}
		if sequential.joinCalls.Load() == 0 {
			t.Errorf("%s: sequential estimator never invoked", sql)
		}
		if len(pb.JoinOrder) != len(ps.JoinOrder) {
			t.Fatalf("%s: order lengths differ: %v vs %v", sql, pb.JoinOrder, ps.JoinOrder)
		}
		for i := range pb.JoinOrder {
			if pb.JoinOrder[i] != ps.JoinOrder[i] {
				t.Fatalf("%s: JoinOrder differs: %v vs %v", sql, pb.JoinOrder, ps.JoinOrder)
			}
		}
		if len(pb.JoinEstRows) != len(ps.JoinEstRows) {
			t.Fatalf("%s: JoinEstRows lengths differ", sql)
		}
		for i := range pb.JoinEstRows {
			if pb.JoinEstRows[i] != ps.JoinEstRows[i] {
				t.Fatalf("%s: JoinEstRows[%d] = %v vs %v", sql, i, pb.JoinEstRows[i], ps.JoinEstRows[i])
			}
		}
		if pb.EstFinalRows != ps.EstFinalRows {
			t.Fatalf("%s: EstFinalRows %v vs %v", sql, pb.EstFinalRows, ps.EstFinalRows)
		}
	}
}

// TestJoinDPEstimateCount guards the subset-enumeration satellite: the DP
// must only estimate reachable connected subsets — for a 2-table join
// exactly one EstimateJoin call, never anything near the 2^n frontier.
func TestJoinDPEstimateCount(t *testing.T) {
	ds, err := datagen.ByName("imdb", datagen.Config{Scale: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sql      string
		maxCalls int64
	}{
		// 2 tables: one subset (the pair) to estimate.
		{imdbJoinQueries[0], 1},
		// Star with 6 tables: every connected subset contains the hub, so
		// there are 2^5−1 = 31 multi-table connected subsets.
		{imdbJoinQueries[3], 31},
	}
	for _, tc := range cases {
		est := &hashCardEstimator{}
		e := New(ds.DB, ds.Schema, noBatch{est})
		planJoinQuery(t, e, tc.sql)
		if got := est.joinCalls.Load(); got > tc.maxCalls {
			t.Errorf("%s: %d EstimateJoin calls, want <= %d", tc.sql, got, tc.maxCalls)
		}
	}
}
