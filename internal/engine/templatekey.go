package engine

import (
	"sort"
	"strings"

	"bytecard/internal/expr"
)

// TemplateKey returns the constant-stripped template identity of one
// estimation target: the set of (binding, physical table, filter shape)
// entries plus the set of join conditions, both canonically ordered. Two
// targets share a key exactly when they scan the same tables under
// filters of the same shape (columns and operators — literal values
// stripped) and join them the same way. This is the residual corrector's
// grouping key: queries of one template tend to share the same estimation
// residual even as their constants vary.
//
// Distinct from the join-DP's subset keys (which include constants, so a
// memoized estimate replays only for byte-identical filters) and from
// sqlparse.Normalize (which keys whole statements): TemplateKey is
// computable for any (tables, joins) estimation target, including the
// single-table case with joins == nil.
func TemplateKey(tables []*QueryTable, joins []JoinCond) string {
	tabTokens := make([]string, len(tables))
	for i, t := range tables {
		var b strings.Builder
		b.WriteString(t.Binding)
		b.WriteByte(':')
		b.WriteString(t.Name)
		b.WriteByte('(')
		b.WriteString(filterShape(t.Filter))
		b.WriteByte(')')
		tabTokens[i] = b.String()
	}
	sort.Strings(tabTokens)
	condTokens := make([]string, len(joins))
	for i, j := range joins {
		l := j.LeftTab + "." + j.LeftCol
		r := j.RightTab + "." + j.RightCol
		if r < l {
			l, r = r, l
		}
		condTokens[i] = l + "=" + r
	}
	sort.Strings(condTokens)
	return strings.Join(tabTokens, "\x1e") + "\x1d" + strings.Join(condTokens, "\x1e")
}

// filterShape renders a filter tree with literal values stripped:
// leaves become "binding.col op", interior nodes sort their children's
// shapes so AND/OR operand order never splits a template.
func filterShape(n *expr.Node) string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case expr.KindLeaf:
		return n.Pred.Table + "." + n.Pred.Col + n.Pred.Op.String()
	case expr.KindAnd, expr.KindOr:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = filterShape(c)
		}
		sort.Strings(parts)
		op := "&"
		if n.Kind == expr.KindOr {
			op = "|"
		}
		return "(" + strings.Join(parts, op) + ")"
	default:
		return "?"
	}
}
