package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bytecard/internal/expr"
	"bytecard/internal/obs"
	"bytecard/internal/sqlparse"
	"bytecard/internal/types"
)

// TraceableEstimator is satisfied by estimators that can derive a
// trace-recording view of themselves (the ByteCard estimator). Estimators
// without native tracing are wrapped generically by TraceEstimator.
type TraceableEstimator interface {
	CardEstimator
	WithTrace(tr *obs.Trace) CardEstimator
}

// TraceEstimator returns a view of est that records every estimate into
// tr: natively for TraceableEstimators (model keys, guard outcomes, cache
// hits), generically otherwise (operation, tables, value, timing).
func TraceEstimator(est CardEstimator, tr *obs.Trace) CardEstimator {
	if te, ok := est.(TraceableEstimator); ok {
		return te.WithTrace(tr)
	}
	return &spanningEstimator{inner: est, tr: tr}
}

// spanningEstimator wraps any CardEstimator with generic span recording.
type spanningEstimator struct {
	inner CardEstimator
	tr    *obs.Trace
}

func (s *spanningEstimator) Name() string { return s.inner.Name() }

func (s *spanningEstimator) record(op string, tables []string, start time.Time, v float64) float64 {
	s.tr.Add(obs.Span{
		Op: op, Tables: tables, Source: s.inner.Name(),
		Outcome: obs.OutcomeOK, Value: v, Duration: time.Since(start),
	})
	return v
}

func (s *spanningEstimator) EstimateFilter(t *QueryTable) float64 {
	start := time.Now()
	return s.record(obs.OpFilter, []string{t.Binding}, start, s.inner.EstimateFilter(t))
}

func (s *spanningEstimator) EstimateConj(t *QueryTable, preds []expr.Pred) float64 {
	start := time.Now()
	return s.record(obs.OpConj, []string{t.Binding}, start, s.inner.EstimateConj(t, preds))
}

func (s *spanningEstimator) EstimateJoin(tables []*QueryTable, joins []JoinCond) float64 {
	start := time.Now()
	names := make([]string, len(tables))
	for i, t := range tables {
		names[i] = t.Binding
	}
	return s.record(obs.OpJoin, names, start, s.inner.EstimateJoin(tables, joins))
}

func (s *spanningEstimator) EstimateGroupNDV(q *Query) float64 {
	start := time.Now()
	seen := map[string]bool{}
	var names []string
	for _, g := range q.GroupBy {
		if !seen[g.Tab] {
			seen[g.Tab] = true
			names = append(names, g.Tab)
		}
	}
	return s.record(obs.OpGroupNDV, names, start, s.inner.EstimateGroupNDV(q))
}

// ExplainNode is one annotated node of an explained plan.
type ExplainNode struct {
	// Kind is "scan", "join", or "aggregate".
	Kind string `json:"kind"`
	// Tables lists the bindings the node covers: one for scans, the
	// left-deep prefix for joins, the grouped bindings for aggregates.
	Tables []string `json:"tables"`
	// Strategy is the scan materialization strategy ("single-stage" or
	// "multi-stage"); empty for non-scan nodes.
	Strategy string `json:"strategy,omitempty"`
	// ColOrder is the multi-stage reader's predicate column order.
	ColOrder []string `json:"col_order,omitempty"`
	// EstRows is the node's estimated cardinality (estimated group count
	// for aggregate nodes).
	EstRows float64 `json:"est_rows"`
	// Source names the estimator that produced EstRows ("bn",
	// "factorjoin", "rbx", "sketch", "heuristic", ...); empty when no
	// estimate was requested for the node.
	Source string `json:"source,omitempty"`
	// Fallback marks nodes whose estimate came from the traditional
	// estimator after a model failure.
	Fallback bool `json:"fallback,omitempty"`
	// Pushdown marks scan nodes routed through the storage BlockScan
	// contract (zone-map skipping, vectorized filtering).
	Pushdown bool `json:"pushdown,omitempty"`
	// PredictedBlocks is the zone-map prediction of per-column blocks a
	// pushed-down scan will charge: blocks whose zone ranges survive every
	// constraint, times the constrained-column count (an upper bound —
	// staged filtering reads later columns only where survivors remain).
	// Zero for non-pushdown scans and unconstrained filters.
	PredictedBlocks int `json:"predicted_blocks,omitempty"`
	// ActualBlocks is the executed block-read count for the node's
	// binding, filled by AnnotateExecution from a run's Metrics.
	ActualBlocks int `json:"actual_blocks,omitempty"`
}

// ExplainResult is the product of Engine.Explain: the chosen plan with
// per-node estimates, estimator sources, and the full estimation trace.
type ExplainResult struct {
	// SQL is the explained statement.
	SQL string `json:"sql"`
	// Estimator is the engine's configured estimator name.
	Estimator string `json:"estimator"`
	// Nodes lists plan nodes bottom-up: scans in join order, then join
	// steps, then the aggregate (if any).
	Nodes []ExplainNode `json:"nodes"`
	// EstFinalRows is the estimated cardinality of the full filtered join.
	EstFinalRows float64 `json:"est_final_rows"`
	// AggCapacity is the presized aggregation hash-table capacity (0
	// without grouping).
	AggCapacity int `json:"agg_capacity"`
	// PlanDuration is the optimization wall time, estimator calls
	// included.
	PlanDuration time.Duration `json:"plan_duration_ns"`
	// Trace is every estimation step planning took, in order.
	Trace []obs.Span `json:"trace"`
}

// spanKey canonicalizes (op, tables) for node→span attribution.
func spanKey(op string, tables []string) string {
	s := append([]string(nil), tables...)
	sort.Strings(s)
	return op + "|" + strings.Join(s, ",")
}

// Explain parses and plans sql without executing it, returning the chosen
// plan annotated with each node's estimate, the estimator source that
// produced it, and the full per-call trace. Planning runs under a tracing
// view of the engine's estimator; the engine itself is not perturbed.
func (e *Engine) Explain(sql string) (*ExplainResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExplainStmt(sql, stmt)
}

// ExplainStmt explains an already-parsed statement.
func (e *Engine) ExplainStmt(sql string, stmt *sqlparse.SelectStmt) (*ExplainResult, error) {
	q, err := e.Analyze(stmt)
	if err != nil {
		return nil, err
	}
	tr := obs.NewTrace()
	start := time.Now()
	p, err := e.PlanWith(q, TraceEstimator(e.Est, tr))
	if err != nil {
		return nil, err
	}
	res := &ExplainResult{
		SQL:          sql,
		Estimator:    e.Est.Name(),
		EstFinalRows: p.EstFinalRows,
		AggCapacity:  p.AggCapacity,
		PlanDuration: time.Since(start),
		Trace:        tr.Spans(),
	}

	// Attribute each node to the span that produced its estimate: the last
	// value-producing span for the node's (op, tables). Failed model spans
	// for the same key precede their fallback span, so "last wins" lands
	// on whatever actually answered.
	type attribution struct {
		source   string
		fallback bool
	}
	attr := map[string]attribution{}
	for _, s := range res.Trace {
		if s.Outcome != obs.OutcomeOK && s.Outcome != obs.OutcomeClamped {
			continue
		}
		if s.Op == obs.OpVector || s.Op == obs.OpConj || s.Op == obs.OpCost {
			continue
		}
		attr[spanKey(s.Op, s.Tables)] = attribution{source: s.Source, fallback: s.Fallback}
	}

	for _, idx := range p.JoinOrder {
		sp := p.Scans[idx]
		t := q.Tables[sp.TableIdx]
		node := ExplainNode{
			Kind:            "scan",
			Tables:          []string{t.Binding},
			Strategy:        sp.Strategy,
			ColOrder:        sp.ColOrder,
			EstRows:         sp.EstRows,
			Pushdown:        sp.Pushdown,
			PredictedBlocks: predictedScanBlocks(t, sp),
		}
		if a, ok := attr[spanKey(obs.OpFilter, node.Tables)]; ok {
			node.Source, node.Fallback = a.source, a.fallback
		}
		res.Nodes = append(res.Nodes, node)
	}
	prefix := []string{q.Tables[p.JoinOrder[0]].Binding}
	for step, idx := range p.JoinOrder[1:] {
		prefix = append(prefix, q.Tables[idx].Binding)
		node := ExplainNode{
			Kind:   "join",
			Tables: append([]string(nil), prefix...),
		}
		if step < len(p.JoinEstRows) {
			node.EstRows = p.JoinEstRows[step]
		}
		if a, ok := attr[spanKey(obs.OpJoin, node.Tables)]; ok {
			node.Source, node.Fallback = a.source, a.fallback
		}
		res.Nodes = append(res.Nodes, node)
	}
	if len(q.GroupBy) > 0 {
		seen := map[string]bool{}
		var grouped []string
		for _, g := range q.GroupBy {
			if !seen[g.Tab] {
				seen[g.Tab] = true
				grouped = append(grouped, g.Tab)
			}
		}
		node := ExplainNode{
			Kind:    "aggregate",
			Tables:  grouped,
			EstRows: float64(p.AggCapacity),
		}
		// The per-table RBX spans share the aggregate's op; any grouped
		// binding attributes the node (they all answer from one source or
		// the whole estimate fell back as one).
		for _, b := range grouped {
			if a, ok := attr[spanKey(obs.OpGroupNDV, []string{b})]; ok {
				node.Source, node.Fallback = a.source, a.fallback
				break
			}
		}
		if node.Source == "" {
			if a, ok := attr[spanKey(obs.OpGroupNDV, grouped)]; ok {
				node.Source, node.Fallback = a.source, a.fallback
			}
		}
		res.Nodes = append(res.Nodes, node)
	}
	return res, nil
}

// predictedScanBlocks evaluates the scan's constraints against the zone
// maps at plan time: the number of blocks whose zone ranges every
// constraint overlaps, times the constrained-column count — the blocks a
// pushed-down scan will charge at most. Metadata only; nothing is read.
func predictedScanBlocks(t *QueryTable, sp *ScanPlan) int {
	if !sp.Pushdown {
		return 0
	}
	preds, ok := t.Filter.Conjunction()
	if !ok || len(preds) == 0 {
		return 0
	}
	col := t.Table.ColByName
	constraints := expr.BuildConstraints(preds, func(c string, d types.Datum) (float64, bool) {
		return col(c).EncodeDatum(d)
	})
	if len(constraints) == 0 {
		return 0
	}
	nb := col(constraints[0].Col).NumBlocks()
	surviving := 0
	for b := 0; b < nb; b++ {
		live := true
		for _, cons := range constraints {
			lo, hi := col(cons.Col).ZoneRange(b)
			if !cons.OverlapsRange(lo, hi) {
				live = false
				break
			}
		}
		if live {
			surviving++
		}
	}
	return surviving * len(constraints)
}

// AnnotateExecution fills each scan node's ActualBlocks from an executed
// run's metrics (Metrics.ScanBlocks, keyed by binding) — the predicted-
// versus-actual pair the CLI prints after running an explained query.
func (r *ExplainResult) AnnotateExecution(m *Metrics) {
	if m == nil || m.ScanBlocks == nil {
		return
	}
	for i := range r.Nodes {
		n := &r.Nodes[i]
		if n.Kind != "scan" || len(n.Tables) != 1 {
			continue
		}
		if sb, ok := m.ScanBlocks[n.Tables[0]]; ok {
			n.ActualBlocks = sb.Read
		}
	}
}

// String renders the explained plan as an indented tree for CLI output.
func (r *ExplainResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan estimator=%s est_final_rows=%.1f plan_time=%s\n", r.Estimator, r.EstFinalRows, r.PlanDuration)
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "  %-9s [%s]", n.Kind, strings.Join(n.Tables, " ⋈ "))
		if n.Strategy != "" {
			fmt.Fprintf(&b, " strategy=%s", n.Strategy)
		}
		if len(n.ColOrder) > 0 {
			fmt.Fprintf(&b, " col_order=%s", strings.Join(n.ColOrder, ","))
		}
		fmt.Fprintf(&b, " est_rows=%.1f", n.EstRows)
		if n.Pushdown {
			b.WriteString(" pushdown")
		}
		if n.PredictedBlocks > 0 {
			fmt.Fprintf(&b, " pred_blocks=%d", n.PredictedBlocks)
		}
		if n.ActualBlocks > 0 {
			fmt.Fprintf(&b, " actual_blocks=%d", n.ActualBlocks)
		}
		if n.Source != "" {
			fmt.Fprintf(&b, " source=%s", n.Source)
		}
		if n.Fallback {
			b.WriteString(" (fallback)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
