package engine

import (
	"reflect"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/obs"
)

// Truth-recording on the plan-cache hit path: a template hit skips
// planning, but the executed statement must still observe its plan
// q-error, record estimate/truth metrics, fire the OnTruth hook, and —
// when traced — carry the cache-hit flag. These are the tentpole's feedback
// inputs; a silent gap here would starve the residual corrector of exactly
// the repeated-template queries it learns fastest from.

func truthPathEngine(t *testing.T) *Engine {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 11})
	e := New(ds.DB, ds.Schema, HeuristicEstimator{})
	e.PlanCache = NewPlanCache(1 << 20)
	e.Obs = obs.NewEngineMetrics()
	return e
}

func TestCacheHitRecordsTruthLikeMiss(t *testing.T) {
	e := truthPathEngine(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40"

	miss, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Metrics.PlanCacheHit {
		t.Error("first run flagged as a cache hit")
	}
	if !hit.Metrics.PlanCacheHit {
		t.Fatal("second run of the same template did not hit the plan cache")
	}
	if hit.Metrics.EstFinalRows != miss.Metrics.EstFinalRows {
		t.Errorf("cache hit carries estimate %g, miss carried %g",
			hit.Metrics.EstFinalRows, miss.Metrics.EstFinalRows)
	}
	if hit.Metrics.ActualFinalRows != miss.Metrics.ActualFinalRows || hit.Metrics.ActualFinalRows == 0 {
		t.Errorf("cache hit recorded truth %d, miss recorded %d",
			hit.Metrics.ActualFinalRows, miss.Metrics.ActualFinalRows)
	}
	// Both runs observed a plan q-error — the hit path must not skip it.
	if n := e.Obs.PlanQError.Snapshot().Count; n != 2 {
		t.Errorf("PlanQError observed %d times, want 2 (miss and hit)", n)
	}
	if n := e.Obs.Queries.Load(); n != 2 {
		t.Errorf("Queries counted %d, want 2", n)
	}
}

func TestOnTruthFiresOnHitAndMiss(t *testing.T) {
	e := truthPathEngine(t)
	type call struct {
		key    string
		tables []string
		est    float64
		actual int64
	}
	var calls []call
	e.OnTruth = func(key string, tables []string, est float64, actual int64) {
		calls = append(calls, call{key, tables, est, actual})
	}
	// Two constants of one template (cache miss then hit), plus a third
	// query of a different template.
	sqls := []string{
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40",
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 90",
		"SELECT COUNT(*) FROM fact WHERE fact.flag = 1",
	}
	for _, sql := range sqls {
		if _, err := e.Run(sql); err != nil {
			t.Fatal(err)
		}
	}
	if len(calls) != 3 {
		t.Fatalf("OnTruth fired %d times, want 3", len(calls))
	}
	if calls[0].key != calls[1].key {
		t.Error("template siblings (differing literals) got different truth keys")
	}
	if calls[0].key == calls[2].key {
		t.Error("distinct templates share a truth key")
	}
	if want := []string{"dim", "fact"}; !reflect.DeepEqual(calls[0].tables, want) {
		t.Errorf("truth tables = %v, want sorted deduped %v", calls[0].tables, want)
	}
	for i, c := range calls {
		if c.actual < 1 || c.est <= 0 {
			t.Errorf("call %d carried est=%g actual=%d", i, c.est, c.actual)
		}
	}
}

func TestTracedRunKeepsPlanCacheAndFlagsHit(t *testing.T) {
	e := truthPathEngine(t)
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 40"

	// Warm the template through an untraced run.
	warm, err := e.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	hits := e.PlanCache.Stats().Hits

	tr := obs.NewTrace()
	res, err := e.RunTraced(sql, tr)
	if err != nil {
		t.Fatal(err)
	}
	if e.PlanCache.Stats().Hits != hits+1 {
		t.Fatal("traced run bypassed the shared plan cache")
	}
	if !res.Metrics.PlanCacheHit {
		t.Error("traced cache hit not flagged in metrics")
	}
	if res.Metrics.EstFinalRows != warm.Metrics.EstFinalRows ||
		res.Metrics.ActualFinalRows != warm.Metrics.ActualFinalRows {
		t.Error("traced hit diverged from the untraced run's estimate/truth")
	}
	var cacheSpans int
	for _, s := range tr.Spans() {
		if s.Op == obs.OpPlanCache {
			cacheSpans++
			if !s.CacheHit {
				t.Error("plan_cache span missing the cache-hit flag")
			}
			if s.Value != warm.Metrics.EstFinalRows {
				t.Errorf("plan_cache span value %g, want replayed estimate %g", s.Value, warm.Metrics.EstFinalRows)
			}
		}
	}
	if cacheSpans != 1 {
		t.Errorf("trace carries %d plan_cache spans, want 1", cacheSpans)
	}

	// A traced cold miss records estimator spans, not a plan_cache span.
	e.PlanCache.Flush()
	tr2 := obs.NewTrace()
	res2, err := e.RunTraced(sql, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.PlanCacheHit {
		t.Error("cold traced run flagged as a cache hit")
	}
	for _, s := range tr2.Spans() {
		if s.Op == obs.OpPlanCache {
			t.Error("cold traced run recorded a plan_cache span")
		}
	}
	if tr2.Len() == 0 {
		t.Error("cold traced run recorded no estimator spans")
	}
}
