package engine

import (
	"reflect"
	"strings"
	"testing"

	"bytecard/internal/datagen"
	"bytecard/internal/sqlparse"
)

func planCacheEngine(t *testing.T, est CardEstimator, cacheBytes int64) *Engine {
	t.Helper()
	ds, err := datagen.ByName("imdb", datagen.Config{Scale: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.DB, ds.Schema, est)
	e.Parallelism = 4
	e.PlanCache = NewPlanCache(cacheBytes)
	return e
}

// TestPlanCacheHitReplaysIdenticalPlan is the cache's core parity gate: a
// warm hit must replay exactly the plan the fresh DP would build — same
// scans, join order, estimates, and presizing — without invoking the
// estimator at all.
func TestPlanCacheHitReplaysIdenticalPlan(t *testing.T) {
	for _, sql := range imdbJoinQueries {
		est := &hashCardEstimator{}
		e := planCacheEngine(t, noBatch{est}, 0)

		cold := planJoinQuery(t, e, sql) // miss: plans fresh, publishes
		callsAfterCold := est.joinCalls.Load()
		warm := planJoinQuery(t, e, sql) // hit: replays decisions
		if got := est.joinCalls.Load(); got != callsAfterCold {
			t.Errorf("%s: cache hit still made %d estimator calls", sql, got-callsAfterCold)
		}

		// A cache-free engine view over the same estimator state is the
		// ground truth both plans must match.
		view := *e
		view.PlanCache = nil
		fresh := planJoinQuery(t, &view, sql)

		for name, p := range map[string]*Plan{"cold": cold, "warm": warm} {
			if !reflect.DeepEqual(p.Scans, fresh.Scans) {
				t.Errorf("%s: %s Scans diverge from fresh plan", sql, name)
			}
			if !reflect.DeepEqual(p.JoinOrder, fresh.JoinOrder) {
				t.Errorf("%s: %s JoinOrder = %v, fresh = %v", sql, name, p.JoinOrder, fresh.JoinOrder)
			}
			if !reflect.DeepEqual(p.JoinEstRows, fresh.JoinEstRows) {
				t.Errorf("%s: %s JoinEstRows = %v, fresh = %v", sql, name, p.JoinEstRows, fresh.JoinEstRows)
			}
			if p.EstFinalRows != fresh.EstFinalRows || p.AggCapacity != fresh.AggCapacity {
				t.Errorf("%s: %s final rows/capacity (%v, %d) vs fresh (%v, %d)",
					sql, name, p.EstFinalRows, p.AggCapacity, fresh.EstFinalRows, fresh.AggCapacity)
			}
		}
		s := e.PlanCache.Stats()
		if s.Hits != 1 || s.Misses != 1 {
			t.Errorf("%s: stats hits=%d misses=%d, want 1/1", sql, s.Hits, s.Misses)
		}
	}
}

// TestPlanCacheTemplateSiblings checks constants are stripped from the
// key: the same statement shape with different literals shares one entry,
// and the replayed plan carries the sibling's fresh Query (its constants)
// while reusing the template's decisions.
func TestPlanCacheTemplateSiblings(t *testing.T) {
	est := &hashCardEstimator{}
	e := planCacheEngine(t, noBatch{est}, 0)
	a := planJoinQuery(t, e, "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year >= 1990")
	b := planJoinQuery(t, e, "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id AND t.production_year >= 2005")
	s := e.PlanCache.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("template siblings did not share an entry: hits=%d misses=%d", s.Hits, s.Misses)
	}
	if !reflect.DeepEqual(a.JoinOrder, b.JoinOrder) || a.EstFinalRows != b.EstFinalRows {
		t.Errorf("sibling decisions diverge: %v/%v vs %v/%v", a.JoinOrder, a.EstFinalRows, b.JoinOrder, b.EstFinalRows)
	}
	if a.Query == b.Query {
		t.Error("plans share a Query — cached plans must bind the caller's fresh query")
	}
	if b.Query.Tables[0].Filter == nil {
		t.Error("sibling lost its own filter constants")
	}
	// Different structure must miss.
	planJoinQuery(t, e, "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id")
	if s := e.PlanCache.Stats(); s.Misses != 2 {
		t.Errorf("different template should miss: misses=%d", s.Misses)
	}
}

// TestPlanCacheInvalidateTables checks targeted invalidation: templates
// touching a retrained table drop, unrelated templates survive.
func TestPlanCacheInvalidateTables(t *testing.T) {
	e := planCacheEngine(t, noBatch{&hashCardEstimator{}}, 0)
	planJoinQuery(t, e, "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id")
	planJoinQuery(t, e, "SELECT COUNT(*) FROM movie_keyword mk, movie_info mi, title t2 WHERE mk.movie_id = t2.id AND mi.movie_id = t2.id")
	planJoinQuery(t, e, "SELECT COUNT(*) FROM movie_companies mc, movie_info_idx mii, title t3 WHERE mc.movie_id = t3.id AND mii.movie_id = t3.id")
	if n := e.PlanCache.Len(); n != 3 {
		t.Fatalf("cache holds %d templates, want 3", n)
	}
	if n := e.PlanCache.InvalidateTables("cast_info", "movie_keyword"); n != 2 {
		t.Errorf("InvalidateTables dropped %d, want 2", n)
	}
	if n := e.PlanCache.Len(); n != 1 {
		t.Errorf("cache holds %d templates after invalidation, want 1", n)
	}
	if n := e.PlanCache.InvalidateTables("absent_table"); n != 0 {
		t.Errorf("invalidating an untouched table dropped %d entries", n)
	}
	if n := e.PlanCache.Flush(); n != 1 {
		t.Errorf("Flush dropped %d, want 1", n)
	}
	s := e.PlanCache.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("flushed cache still reports entries=%d bytes=%d", s.Entries, s.Bytes)
	}
	if s.Invalidations != 3 {
		t.Errorf("invalidations=%d, want 3", s.Invalidations)
	}
}

// TestPlanCacheEvictionBounded checks the byte budget holds: resident
// bytes never exceed the limit, cold templates evict, and an entry larger
// than the whole budget is refused without wiping the cache.
func TestPlanCacheEvictionBounded(t *testing.T) {
	est := &hashCardEstimator{}
	e := planCacheEngine(t, noBatch{est}, 2048)
	for i := 0; i < 12; i++ {
		// Each i repeats the year predicate a different number of times —
		// distinct statement structure, so every query is its own template.
		sql := "SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id = t.id" +
			strings.Repeat(" AND t.production_year >= 1990", i+1)
		planJoinQuery(t, e, sql)
	}
	s := e.PlanCache.Stats()
	if s.Misses != 12 {
		t.Fatalf("expected 12 distinct templates, got %d misses", s.Misses)
	}
	if s.Bytes > 2048 {
		t.Errorf("resident bytes %d exceed the 2048 limit", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Error("no evictions under a tight byte budget")
	}
	if s.Entries <= 0 {
		t.Error("eviction emptied the cache entirely")
	}
	oversized := NewPlanCache(64)
	oversized.Put("k", &planDecisions{size: 4096})
	if oversized.Len() != 0 {
		t.Error("oversized entry was admitted")
	}
}

// TestPlanWithBypassesCache checks the EXPLAIN path neither reads nor
// publishes cache entries: substituted estimators must actually run, and
// their decisions must not leak to other callers.
func TestPlanWithBypassesCache(t *testing.T) {
	est := &hashCardEstimator{}
	e := planCacheEngine(t, noBatch{est}, 0)
	sql := imdbJoinQueries[1]
	planJoinQuery(t, e, sql) // publish the template
	probe := &hashCardEstimator{}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Analyze(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PlanWith(q, noBatch{probe}); err != nil {
		t.Fatal(err)
	}
	if probe.joinCalls.Load() == 0 {
		t.Error("PlanWith served the substituted estimator from the cache")
	}
	s := e.PlanCache.Stats()
	if s.Hits != 0 {
		t.Errorf("PlanWith hit the cache %d times", s.Hits)
	}
	if s.Misses != 1 {
		t.Errorf("PlanWith recorded a cache miss: misses=%d, want only Plan's 1", s.Misses)
	}
}
