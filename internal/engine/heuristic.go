package engine

import (
	"math"

	"bytecard/internal/expr"
)

// HeuristicEstimator is the statistics-free fallback estimator: fixed magic
// selectivities per operator kind and join-uniformity with a guessed key
// domain. It is what the engine runs on before any sketches or models are
// built, and the floor every real estimator is compared against.
type HeuristicEstimator struct{}

// Magic selectivity constants (the classic System R defaults).
const (
	heuristicEqSel    = 0.05
	heuristicRangeSel = 0.33
	heuristicNeSel    = 0.95
)

// Name implements CardEstimator.
func (HeuristicEstimator) Name() string { return "heuristic" }

func heuristicNodeSel(n *expr.Node) float64 {
	if n == nil {
		return 1
	}
	switch n.Kind {
	case expr.KindLeaf:
		switch n.Pred.Op {
		case expr.OpEq:
			return heuristicEqSel
		case expr.OpNe:
			return heuristicNeSel
		default:
			return heuristicRangeSel
		}
	case expr.KindAnd:
		s := 1.0
		for _, c := range n.Children {
			s *= heuristicNodeSel(c)
		}
		return s
	default: // KindOr
		s := 0.0
		for _, c := range n.Children {
			s += heuristicNodeSel(c)
		}
		return math.Min(s, 1)
	}
}

// EstimateFilter implements CardEstimator.
func (HeuristicEstimator) EstimateFilter(t *QueryTable) float64 {
	return float64(t.Table.NumRows()) * heuristicNodeSel(t.Filter)
}

// EstimateConj implements CardEstimator.
func (HeuristicEstimator) EstimateConj(_ *QueryTable, preds []expr.Pred) float64 {
	s := 1.0
	for _, p := range preds {
		s *= heuristicNodeSel(expr.Leaf(p))
	}
	return s
}

// EstimateJoin implements CardEstimator with join uniformity over a guessed
// key domain of max(|L|,|R|).
func (h HeuristicEstimator) EstimateJoin(tables []*QueryTable, joins []JoinCond) float64 {
	rows := 1.0
	var maxRows float64
	for _, t := range tables {
		r := h.EstimateFilter(t)
		if r < 1 {
			r = 1
		}
		rows *= r
		if n := float64(t.Table.NumRows()); n > maxRows {
			maxRows = n
		}
	}
	for range joins {
		rows /= math.Max(maxRows, 1)
	}
	return math.Max(rows, 1)
}

// EstimateGroupNDV implements CardEstimator with a fixed fraction of the
// smallest grouped table.
func (h HeuristicEstimator) EstimateGroupNDV(q *Query) float64 {
	ndv := 1.0
	for _, g := range q.GroupBy {
		t := q.TableByBinding(g.Tab)
		ndv *= math.Max(float64(t.Table.NumRows())*0.1, 1)
	}
	return ndv
}
