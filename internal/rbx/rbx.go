// Package rbx implements the workload-independent learned NDV estimator
// ByteCard adopts for COUNT-DISTINCT: a seven-layer neural network over the
// "frequency profile" of a sample (how many distinct values occur exactly
// j times), trained once on a synthetic corpus spanning many distribution
// families and reused across workloads. A calibration path fine-tunes
// per-column copies with a reduced learning rate and an asymmetric penalty
// against underestimation — the paper's remedy for exceptionally high-NDV
// columns.
package rbx

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"bytecard/internal/nn"
	"bytecard/internal/sample"
)

// FeatureDim is the network input width: the 100-entry frequency profile
// plus log sample size, log population size, and log inverse sampling rate.
const FeatureDim = sample.ProfileLen + 3

// Layers is the hidden architecture: seven weight layers end to end.
var Layers = []int{FeatureDim, 128, 128, 64, 64, 32, 16, 1}

// Features encodes a frequency profile for the network.
func Features(p sample.Profile) []float64 {
	x := make([]float64, FeatureDim)
	for i, f := range p.Freq {
		x[i] = math.Log1p(f)
	}
	x[sample.ProfileLen] = math.Log1p(p.SampleRows)
	x[sample.ProfileLen+1] = math.Log1p(p.PopRows)
	ratio := 1.0
	if p.SampleRows > 0 {
		ratio = p.PopRows / p.SampleRows
	}
	x[sample.ProfileLen+2] = math.Log(math.Max(ratio, 1))
	return x
}

// target is the regression target: the log ratio of population NDV to
// sample NDV.
func target(trueNDV, sampleNDV float64) float64 {
	return math.Log((trueNDV + 1) / (sampleNDV + 1))
}

// Model is a trained RBX estimator with optional per-column calibrations.
type Model struct {
	Net *nn.Network
	// Calibrated maps "table.column" to a fine-tuned copy used only for
	// that column.
	Calibrated map[string]*nn.Network
	// TrainSeconds records base training time.
	TrainSeconds float64
}

// TrainConfig controls base training.
type TrainConfig struct {
	// Columns is the synthetic corpus size (default 1200).
	Columns int
	// Epochs, LR, BatchSize configure optimization (defaults 30, 1e-3, 64).
	Epochs    int
	LR        float64
	BatchSize int
	Seed      int64
	// MaxPop bounds synthetic population sizes (default 100000).
	MaxPop int
}

func (c *TrainConfig) fill() {
	if c.Columns <= 0 {
		c.Columns = 1200
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxPop <= 0 {
		c.MaxPop = 100000
	}
}

// Train builds the synthetic corpus and fits the base network.
func Train(cfg TrainConfig) (*Model, error) {
	cfg.fill()
	start := time.Now()
	x, y := SyntheticCorpus(cfg.Columns, cfg.MaxPop, cfg.Seed)
	net := nn.NewNetwork(cfg.Seed+1, Layers...)
	if _, err := net.Train(x, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		LR:        cfg.LR,
		Seed:      cfg.Seed + 2,
	}); err != nil {
		return nil, err
	}
	return &Model{
		Net:          net,
		Calibrated:   map[string]*nn.Network{},
		TrainSeconds: time.Since(start).Seconds(),
	}, nil
}

// SyntheticCorpus generates (features, targets) from columns drawn across
// distribution families — uniform, Zipf of varying skew, near-unique
// identifiers, heavy-hitter mixtures, and few-distinct categoricals — at
// varying population sizes and sampling rates. Workload independence comes
// from this breadth: no real queries or tables are involved.
func SyntheticCorpus(columns, maxPop int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var xs [][]float64
	var ys []float64
	for i := 0; i < columns; i++ {
		pop := int(math.Exp(rng.Float64()*math.Log(float64(maxPop)/1000) + math.Log(1000)))
		prof, trueNDV := simulateColumn(rng, pop)
		xs = append(xs, Features(prof))
		ys = append(ys, target(trueNDV, prof.SampleNDV))
	}
	return xs, ys
}

// simulateColumn draws a population frequency vector from a random family,
// then binomially subsamples it into a frequency profile.
func simulateColumn(rng *rand.Rand, pop int) (sample.Profile, float64) {
	rate := math.Exp(rng.Float64()*math.Log(100) - math.Log(500)) // ~[0.002, 0.2]
	if rate > 0.5 {
		rate = 0.5
	}
	family := rng.Intn(5)
	var freqs []int
	switch family {
	case 0: // uniform over D distinct values
		d := 1 + rng.Intn(pop)
		freqs = uniformFreqs(pop, d)
	case 1: // zipf
		d := 10 + rng.Intn(pop/2+1)
		freqs = zipfFreqs(rng, pop, d, 1.05+rng.Float64()*1.5)
	case 2: // near-unique identifiers
		freqs = uniformFreqs(pop, pop-rng.Intn(pop/20+1))
	case 3: // heavy hitters + long tail
		heavy := 1 + rng.Intn(5)
		freqs = heavyHitterFreqs(rng, pop, heavy)
	default: // few distinct values
		d := 1 + rng.Intn(200)
		freqs = zipfFreqs(rng, pop, d, 1.0+rng.Float64())
	}
	counts := map[uint64]int{}
	var sampled int
	var id uint64
	for _, f := range freqs {
		s := binomial(rng, f, rate)
		if s > 0 {
			counts[id] = s
			sampled += s
		}
		id++
	}
	prof := profileFromCounts(counts, sampled, pop)
	return prof, float64(len(freqs))
}

func uniformFreqs(pop, d int) []int {
	if d > pop {
		d = pop
	}
	if d < 1 {
		d = 1
	}
	base := pop / d
	rem := pop % d
	freqs := make([]int, d)
	for i := range freqs {
		freqs[i] = base
		if i < rem {
			freqs[i]++
		}
	}
	return freqs
}

func zipfFreqs(rng *rand.Rand, pop, d int, s float64) []int {
	if d < 1 {
		d = 1
	}
	weights := make([]float64, d)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	freqs := make([]int, 0, d)
	assigned := 0
	for i := range weights {
		f := int(math.Round(weights[i] / total * float64(pop)))
		if f < 1 {
			f = 1
		}
		if assigned+f > pop {
			f = pop - assigned
		}
		if f <= 0 {
			break
		}
		freqs = append(freqs, f)
		assigned += f
	}
	_ = rng
	return freqs
}

func heavyHitterFreqs(rng *rand.Rand, pop, heavy int) []int {
	var freqs []int
	remaining := pop
	for i := 0; i < heavy && remaining > 10; i++ {
		f := remaining / (2 + rng.Intn(3))
		freqs = append(freqs, f)
		remaining -= f
	}
	// Long tail of near-singletons.
	for remaining > 0 {
		f := 1 + rng.Intn(3)
		if f > remaining {
			f = remaining
		}
		freqs = append(freqs, f)
		remaining -= f
	}
	return freqs
}

// binomial draws Binomial(n, p) with a normal approximation for large n.
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 32 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	std := math.Sqrt(mean * (1 - p))
	k := int(math.Round(rng.NormFloat64()*std + mean))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

func profileFromCounts(counts map[uint64]int, rows, pop int) sample.Profile {
	p := sample.Profile{
		Freq:       make([]float64, sample.ProfileLen),
		SampleRows: float64(rows),
		SampleNDV:  float64(len(counts)),
		PopRows:    float64(pop),
	}
	for _, c := range counts {
		if c >= sample.ProfileLen {
			p.Freq[sample.ProfileLen-1]++
		} else {
			p.Freq[c-1]++
		}
	}
	return p
}

// EstimateNDV predicts the population NDV from a sample profile, clamped to
// [sample NDV, population rows].
func (m *Model) EstimateNDV(p sample.Profile) float64 {
	return m.estimateWith(m.Net, p)
}

// EstimateNDVForColumn uses the column's calibrated network when one
// exists (the paper's per-column calibration protocol), otherwise the base
// network.
func (m *Model) EstimateNDVForColumn(column string, p sample.Profile) float64 {
	if net, ok := m.Calibrated[column]; ok {
		return m.estimateWith(net, p)
	}
	return m.estimateWith(m.Net, p)
}

func (m *Model) estimateWith(net *nn.Network, p sample.Profile) float64 {
	if p.SampleRows == 0 {
		return 0
	}
	if p.PopRows <= p.SampleRows*1.05 {
		// The sample covers (nearly) the whole population: the sample NDV
		// is the answer; no learned extrapolation is needed.
		return p.SampleNDV
	}
	y := net.Forward(Features(p))[0]
	est := math.Exp(y)*(p.SampleNDV+1) - 1
	if est < p.SampleNDV {
		est = p.SampleNDV
	}
	if p.PopRows > 0 && est > p.PopRows {
		est = p.PopRows
	}
	return est
}

// FineTuneConfig controls per-column calibration.
type FineTuneConfig struct {
	// Epochs and LR default to 40 and 1e-4 (the reduced rate the paper
	// prescribes for calibration).
	Epochs int
	LR     float64
	// UnderPenalty weights underestimation (default 6).
	UnderPenalty float64
	// HighNDVColumns is the number of synthetic high-NDV columns mixed in
	// (default 300).
	HighNDVColumns int
	Seed           int64
}

// FineTune calibrates a copy of the base network for one problematic
// column. profiles/truths are sampled observations of that column (the
// Model Monitor gathers them); the training set is augmented with
// synthetic high-NDV columns and optimization restarts from the trained
// checkpoint with a reduced learning rate and an asymmetric penalty for
// underestimation.
func (m *Model) FineTune(column string, profiles []sample.Profile, truths []float64, cfg FineTuneConfig) error {
	if len(profiles) == 0 || len(profiles) != len(truths) {
		return errors.New("rbx: profiles and truths must align and be non-empty")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-4
	}
	if cfg.UnderPenalty <= 0 {
		cfg.UnderPenalty = 6
	}
	if cfg.HighNDVColumns <= 0 {
		cfg.HighNDVColumns = 300
	}
	var xs [][]float64
	var ys []float64
	// Repeat the observed column so it is not drowned out by the
	// synthetic augmentation.
	repeat := cfg.HighNDVColumns/len(profiles) + 1
	for rep := 0; rep < repeat; rep++ {
		for i, p := range profiles {
			xs = append(xs, Features(p))
			ys = append(ys, target(truths[i], p.SampleNDV))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for i := 0; i < cfg.HighNDVColumns; i++ {
		pop := 20000 + rng.Intn(80000)
		// High-NDV regime: at least 60% of rows are distinct.
		d := pop*3/5 + rng.Intn(pop*2/5)
		prof, trueNDV := subsampleUniform(rng, pop, d)
		xs = append(xs, Features(prof))
		ys = append(ys, target(trueNDV, prof.SampleNDV))
	}
	net := m.Net.Clone()
	if _, err := net.Train(xs, ys, nn.TrainConfig{
		Epochs:       cfg.Epochs,
		BatchSize:    64,
		LR:           cfg.LR,
		UnderPenalty: cfg.UnderPenalty,
		Seed:         cfg.Seed + 8,
	}); err != nil {
		return err
	}
	if m.Calibrated == nil {
		m.Calibrated = map[string]*nn.Network{}
	}
	m.Calibrated[column] = net
	return nil
}

func subsampleUniform(rng *rand.Rand, pop, d int) (sample.Profile, float64) {
	rate := 0.005 + rng.Float64()*0.05
	freqs := uniformFreqs(pop, d)
	counts := map[uint64]int{}
	var sampled int
	for id, f := range freqs {
		s := binomial(rng, f, rate)
		if s > 0 {
			counts[uint64(id)] = s
			sampled += s
		}
	}
	return profileFromCounts(counts, sampled, pop), float64(len(freqs))
}

// SizeBytes reports the model footprint (base plus calibrations).
func (m *Model) SizeBytes() int64 {
	total := m.Net.SizeBytes()
	for _, net := range m.Calibrated {
		total += net.SizeBytes()
	}
	return total
}

// Validate checks network health (shape chain, finite weights).
func (m *Model) Validate() error {
	if m.Net == nil {
		return errors.New("rbx: missing base network")
	}
	if err := m.Net.Validate(); err != nil {
		return fmt.Errorf("rbx: base network: %w", err)
	}
	if m.Net.InputDim() != FeatureDim {
		return fmt.Errorf("rbx: network input %d, want %d", m.Net.InputDim(), FeatureDim)
	}
	for col, net := range m.Calibrated {
		if err := net.Validate(); err != nil {
			return fmt.Errorf("rbx: calibration for %s: %w", col, err)
		}
	}
	return nil
}

// Encode serializes the model with gob.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes and validates a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
