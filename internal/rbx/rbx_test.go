package rbx

import (
	"math"
	"math/rand"
	"testing"

	"bytecard/internal/sample"
	"bytecard/internal/types"
)

// trainSmall trains a reduced model once for the whole test file.
var testModel *Model

func getModel(t *testing.T) *Model {
	t.Helper()
	if testModel == nil {
		m, err := Train(TrainConfig{Columns: 500, Epochs: 25, Seed: 1, MaxPop: 50000})
		if err != nil {
			t.Fatal(err)
		}
		testModel = m
	}
	return testModel
}

// profileOf samples a concrete value slice at the given rate.
func profileOf(rng *rand.Rand, values []int64, rate float64) sample.Profile {
	var sampled []types.Datum
	for _, v := range values {
		if rng.Float64() < rate {
			sampled = append(sampled, types.Int(v))
		}
	}
	return sample.ProfileOfValues(sampled, int64(len(values)))
}

func trueNDV(values []int64) float64 {
	seen := map[int64]bool{}
	for _, v := range values {
		seen[v] = true
	}
	return float64(len(seen))
}

func qerr(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	return math.Max(est/truth, truth/est)
}

func TestFeatureShape(t *testing.T) {
	p := sample.ProfileOfValues([]types.Datum{types.Int(1), types.Int(1), types.Int(2)}, 100)
	x := Features(p)
	if len(x) != FeatureDim {
		t.Fatalf("feature dim %d, want %d", len(x), FeatureDim)
	}
	if x[0] != math.Log1p(1) { // one singleton (value 2)
		t.Errorf("f1 feature = %g", x[0])
	}
	if x[1] != math.Log1p(1) { // one doubleton (value 1)
		t.Errorf("f2 feature = %g", x[1])
	}
}

func TestSevenLayerArchitecture(t *testing.T) {
	m := getModel(t)
	if got := len(m.Net.Layers); got != 7 {
		t.Errorf("layers = %d, want 7 (the paper's seven-layer network)", got)
	}
	if m.Net.InputDim() != FeatureDim {
		t.Errorf("input dim = %d", m.Net.InputDim())
	}
	if m.TrainSeconds <= 0 {
		t.Error("training time not recorded")
	}
}

func TestEstimateUniformColumn(t *testing.T) {
	m := getModel(t)
	rng := rand.New(rand.NewSource(2))
	// 40000 rows over 5000 distinct values, 2% sample.
	values := make([]int64, 40000)
	for i := range values {
		values[i] = int64(rng.Intn(5000))
	}
	p := profileOf(rng, values, 0.02)
	est := m.EstimateNDV(p)
	if q := qerr(est, trueNDV(values)); q > 2.5 {
		t.Errorf("uniform NDV est %g vs truth %g (q=%g)", est, trueNDV(values), q)
	}
}

func TestEstimateZipfColumn(t *testing.T) {
	m := getModel(t)
	rng := rand.New(rand.NewSource(3))
	z := rand.NewZipf(rng, 1.4, 1, 9999)
	values := make([]int64, 40000)
	for i := range values {
		values[i] = int64(z.Uint64())
	}
	p := profileOf(rng, values, 0.02)
	est := m.EstimateNDV(p)
	if q := qerr(est, trueNDV(values)); q > 3.5 {
		t.Errorf("zipf NDV est %g vs truth %g (q=%g)", est, trueNDV(values), q)
	}
}

func TestEstimateBeatsGEEOnSkew(t *testing.T) {
	// Aggregate Q-error across several skewed columns: the learned
	// estimator should beat GEE overall (the reason the paper picked it).
	m := getModel(t)
	rng := rand.New(rand.NewSource(4))
	var rbxTotal, geeTotal float64
	for trial := 0; trial < 6; trial++ {
		z := rand.NewZipf(rng, 1.2+rng.Float64(), 1, uint64(2000+rng.Intn(20000)))
		values := make([]int64, 30000)
		for i := range values {
			values[i] = int64(z.Uint64())
		}
		p := profileOf(rng, values, 0.02)
		truth := trueNDV(values)
		rbxTotal += math.Log(qerr(m.EstimateNDV(p), truth))
		geeTotal += math.Log(qerr(p.GEE(), truth))
	}
	if rbxTotal > geeTotal*1.1 {
		t.Errorf("RBX mean log q-error %g worse than GEE %g", rbxTotal/6, geeTotal/6)
	}
}

func TestEstimateClamps(t *testing.T) {
	m := getModel(t)
	// Tiny sample: estimate must stay within [sampleNDV, popRows].
	vals := []types.Datum{types.Int(1), types.Int(2), types.Int(3)}
	p := sample.ProfileOfValues(vals, 50)
	est := m.EstimateNDV(p)
	if est < 3 || est > 50 {
		t.Errorf("estimate %g outside [3,50]", est)
	}
	if m.EstimateNDV(sample.Profile{Freq: make([]float64, sample.ProfileLen)}) != 0 {
		t.Error("empty profile must estimate 0")
	}
}

func TestFineTuneReducesUnderestimation(t *testing.T) {
	m := getModel(t)
	rng := rand.New(rand.NewSource(5))
	// High-NDV column: 90% of rows distinct, very low sampling rate — the
	// regime where the base model underestimates.
	makeCol := func() ([]int64, sample.Profile) {
		n := 50000
		values := make([]int64, n)
		for i := range values {
			if rng.Float64() < 0.9 {
				values[i] = int64(i) + 1000000
			} else {
				values[i] = int64(rng.Intn(100))
			}
		}
		return values, profileOf(rng, values, 0.01)
	}
	var profiles []sample.Profile
	var truths []float64
	for i := 0; i < 5; i++ {
		v, p := makeCol()
		profiles = append(profiles, p)
		truths = append(truths, trueNDV(v))
	}
	testV, testP := makeCol()
	before := m.EstimateNDVForColumn("t.session", testP)
	if err := m.FineTune("t.session", profiles, truths, FineTuneConfig{Epochs: 30, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	after := m.EstimateNDVForColumn("t.session", testP)
	truth := trueNDV(testV)
	if qerr(after, truth) > qerr(before, truth)*1.05 {
		t.Errorf("fine-tune did not help: before %g after %g truth %g", before, after, truth)
	}
	// Other columns still use the base network.
	base := m.EstimateNDV(testP)
	other := m.EstimateNDVForColumn("t.other", testP)
	if base != other {
		t.Error("non-calibrated columns must use the base network")
	}
	delete(m.Calibrated, "t.session") // restore shared model
}

func TestFineTuneErrors(t *testing.T) {
	m := getModel(t)
	if err := m.FineTune("c", nil, nil, FineTuneConfig{}); err == nil {
		t.Error("empty fine-tune set must fail")
	}
	if err := m.FineTune("c", []sample.Profile{{}}, []float64{1, 2}, FineTuneConfig{}); err == nil {
		t.Error("mismatched shapes must fail")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := getModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	p := sample.ProfileOfValues([]types.Datum{types.Int(1), types.Int(2)}, 100)
	if m.EstimateNDV(p) != m2.EstimateNDV(p) {
		t.Error("roundtrip changed estimates")
	}
}

func TestValidate(t *testing.T) {
	m := getModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Model{}
	if err := bad.Validate(); err == nil {
		t.Error("missing network must fail")
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage must fail decode")
	}
}

func TestBinomial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if binomial(rng, 0, 0.5) != 0 || binomial(rng, 10, 0) != 0 || binomial(rng, 10, 1) != 10 {
		t.Error("binomial edge cases broken")
	}
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		sum += float64(binomial(rng, 1000, 0.3))
	}
	mean := sum / trials
	if math.Abs(mean-300) > 5 {
		t.Errorf("binomial mean %g, want ~300", mean)
	}
}

func TestSyntheticCorpusShapes(t *testing.T) {
	xs, ys := SyntheticCorpus(50, 20000, 3)
	if len(xs) != 50 || len(ys) != 50 {
		t.Fatalf("corpus sizes %d/%d", len(xs), len(ys))
	}
	for i := range xs {
		if len(xs[i]) != FeatureDim {
			t.Fatalf("row %d dim %d", i, len(xs[i]))
		}
		if math.IsNaN(ys[i]) || ys[i] < -1e-9 {
			t.Fatalf("target %d = %g (log ratio must be >= 0)", i, ys[i])
		}
	}
}
