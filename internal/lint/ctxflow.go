package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation through the serving and training
// tiers.
//
// Two rules. First, a function that already receives a context.Context
// must thread it: minting context.Background()/TODO() inside such a
// function silently detaches every downstream deadline and cancellation —
// the hardened server's per-request timeout stops at that line. The same
// applies when the function calls a callee that has a ...Context variant:
// calling the plain variant discards the context one hop later. Second,
// library packages (everything but package main) may not call
// context.Background() at all outside annotated compatibility wrappers:
// roots belong in main functions and tests, and each blessed wrapper
// (modelforge's compatContext) carries a //bytecard:ctx-ok <reason>
// documenting why a context-free API is kept alive.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "enforce context.Context threading; forbid context.Background() in libraries\n\n" +
		"A ctx-receiving function must pass its context to every callee that\n" +
		"accepts one (including ...Context variants); library packages may not\n" +
		"mint root contexts outside wrappers annotated\n" +
		"//bytecard:ctx-ok <reason>.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			ctxWalk(pass, fd.Body, funcHasCtxParam(pass.TypesInfo, fd.Type))
		}
	}
	return nil
}

// ctxWalk inspects one body knowing whether a context is in scope; nested
// function literals inherit the enclosing scope's context (closures can
// capture it) and may introduce their own.
func ctxWalk(pass *Pass, n ast.Node, ctxInScope bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ctxWalk(pass, n.Body, ctxInScope || funcHasCtxParam(pass.TypesInfo, n.Type))
			return false
		case *ast.CallExpr:
			checkCtxCall(pass, n, ctxInScope)
		}
		return true
	})
}

func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxInScope bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if pkgPathOf(fn) == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		if pass.MissingReason("ctx", call.Pos()) {
			pass.Reportf(call.Pos(), "ctxflow: //bytecard:ctx-ok annotation needs a reason explaining why this wrapper may mint a root context")
			return
		}
		if pass.Suppressed("ctx", call.Pos()) {
			return
		}
		if ctxInScope {
			pass.Reportf(call.Pos(), "ctxflow: context.%s() discards the context.Context already in scope; thread the incoming ctx instead", fn.Name())
			return
		}
		pass.Reportf(call.Pos(), "ctxflow: context.%s() in a library package detaches callees from cancellation and deadlines; accept a context.Context parameter, or annotate a compatibility wrapper with //bytecard:ctx-ok <reason>", fn.Name())
		return
	}
	// A ctx-holding caller invoking the context-free variant of an API that
	// has one: the context dies at this call even though the callee family
	// accepts it.
	if !ctxInScope || signatureHasCtx(fn) {
		return
	}
	if variant := contextVariant(fn); variant != "" {
		if pass.MissingReason("ctx", call.Pos()) {
			pass.Reportf(call.Pos(), "ctxflow: //bytecard:ctx-ok annotation needs a reason explaining why the context is dropped here")
			return
		}
		if pass.Suppressed("ctx", call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "ctxflow: %s drops the in-scope context; call %s with it instead (or annotate with //bytecard:ctx-ok <reason>)", fn.Name(), variant)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcHasCtxParam reports whether a declared parameter is a context.Context.
func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// signatureHasCtx reports whether fn accepts a context.Context parameter.
func signatureHasCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// contextVariant returns the qualified name of fn's ...Context sibling
// (same receiver or package, name+"Context", accepting a context.Context),
// or "" when none exists.
func contextVariant(fn *types.Func) string {
	want := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	var sibling types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		sibling = obj
	} else if fn.Pkg() != nil {
		sibling = fn.Pkg().Scope().Lookup(want)
	}
	m, ok := sibling.(*types.Func)
	if !ok || !signatureHasCtx(m) {
		return ""
	}
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + want
	}
	return want
}
