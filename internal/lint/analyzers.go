package lint

// All returns the full project analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{AtomicField, AtomicWrite, CachePut, CtxFlow, EstClamp, GoroutineSrc, GuardCall, LockSafe, MapIter, PoolHygiene, RandSource, ScanRead}
}
