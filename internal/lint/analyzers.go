package lint

// All returns the full project analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{AtomicWrite, CachePut, EstClamp, GuardCall, MapIter, PoolHygiene, RandSource, ScanRead}
}
