package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Finding is one diagnostic in driver-neutral form: analyzer identity, a
// repo-relative file path, position, and the rendered message. It is the
// currency of the SARIF writer and the baseline — both need a stable
// identity that survives unrelated edits, which positions alone do not
// (a line number shifts with every insertion above it).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Fingerprint is the finding's stable identity: a hash of analyzer, file,
// and message — not line/column, so reformatting or code motion within a
// file does not churn the baseline. Two identical messages in one file
// collapse to one fingerprint, which is the right call for suppression
// (fixing one instance should resurface the other only if its message
// differs).
func (f Finding) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", f.Analyzer, f.File, f.Message)
	return hex.EncodeToString(h.Sum(nil))
}

// Baseline is the accepted-findings ledger committed at the repo root
// (lint-baseline.json). The repo's contract is that it stays empty — every
// finding is fixed or annotated in the PR that introduces it — but the
// mechanism exists so adopting a future analyzer with pre-existing debt
// does not require a flag day. CI separately enforces that the file never
// grows.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry records one accepted finding. The fingerprint is the key;
// the rest is human context for reviewing the ledger.
type BaselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Message     string `json:"message"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so the flag can point at the conventional path unconditionally.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Contains reports whether a finding is suppressed by the baseline.
func (b *Baseline) Contains(f Finding) bool {
	fp := f.Fingerprint()
	for _, e := range b.Findings {
		if e.Fingerprint == fp {
			return true
		}
	}
	return false
}

// WriteBaseline writes the findings as a baseline ledger, sorted by file
// then analyzer then message so regeneration is deterministic.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Version: 1, Findings: make([]BaselineEntry, 0, len(findings))}
	seen := map[string]bool{}
	for _, f := range findings {
		fp := f.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		b.Findings = append(b.Findings, BaselineEntry{
			Fingerprint: fp,
			Analyzer:    f.Analyzer,
			File:        f.File,
			Message:     f.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath renders a source filename relative to the working directory for
// stable fingerprints and portable SARIF URIs; absolute paths outside the
// tree (GOROOT, module cache) pass through unchanged.
func relPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator) {
		return filename
	}
	return filepath.ToSlash(rel)
}
