package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe enforces ByteCard's lock discipline along two invariants.
//
// Release on all paths: every mu.Lock()/mu.RLock() must be provably
// released — either a matching defer, or an explicit unlock on every path
// that leaves the function (returns, fall-off-the-end, and bare panics).
// A leaked registry or cache lock wedges every concurrent query thread
// behind it, and the panic-recovering guard layer means a panic does NOT
// reliably kill the process, so "the crash will clean it up" is not an out.
//
// No I/O while locked (engine, core, modelstore only): while one of the
// serving tier's locks is held, no path may reach a storage block read, a
// guarded model call, or outbound HTTP — found interprocedurally over the
// package call graph, so a lock-holding method that calls a helper that
// calls storage.Reader.Value is caught two hops away. These are the locks
// on the planner's critical path; an I/O stall under one of them becomes a
// stall of every estimate in flight. modelstore's own file writes are
// governed by the atomicwrite protocol instead: "storage I/O" here means
// the internal/storage charging surface, not os file calls.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "enforce lock release on all paths and forbid I/O under serving-tier locks\n\n" +
		"Every Lock/RLock needs a defer or a provable unlock before each return\n" +
		"and panic. In engine/core/modelstore, code holding a lock must not\n" +
		"reach storage block reads, guarded model calls, or outbound HTTP —\n" +
		"checked through the package call graph. Annotate deliberate holds with\n" +
		"//bytecard:lock-ok <reason>.",
	Run: runLockSafe,
}

// lockCriticalPkgs names the packages whose locks sit on the estimation
// critical path; only they get the I/O-under-lock check.
var lockCriticalPkgs = map[string]bool{
	"engine":     true,
	"core":       true,
	"modelstore": true,
}

func runLockSafe(pass *Pass) error {
	var graph *CallGraph
	var ioFinder *Finder
	if lockCriticalPkgs[pass.Pkg.Name()] {
		graph = NewCallGraph(pass)
		ioFinder = graph.NewFinder(classifyLockedIO)
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkLockDiscipline(pass, fd, ioFinder)
		}
	}
	return nil
}

// lockCall classifies one call as a lock-tracking event. mode pairs
// Lock/Unlock and RLock/RUnlock so a mismatched release never clears the
// obligation; key is the canonical receiver expression ("s.mu").
type lockCall struct {
	key     string
	acquire bool
}

// matchLockCall recognizes sync mutex operations (including methods
// promoted from embedded mutexes, which still resolve to package sync).
func matchLockCall(info *types.Info, call *ast.CallExpr) (lockCall, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || pkgPathOf(fn) != "sync" {
		return lockCall{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	recv := exprString(sel.X)
	if recv == "" {
		return lockCall{}, false
	}
	switch fn.Name() {
	case "Lock":
		return lockCall{key: "mu:" + recv, acquire: true}, true
	case "Unlock":
		return lockCall{key: "mu:" + recv}, true
	case "RLock":
		return lockCall{key: "r:" + recv, acquire: true}, true
	case "RUnlock":
		return lockCall{key: "r:" + recv}, true
	}
	return lockCall{}, false
}

// lockKeyName renders a fact key back to source form for diagnostics.
func lockKeyName(key string) string {
	if k, ok := strings.CutPrefix(key, "mu:"); ok {
		return k
	}
	return strings.TrimPrefix(key, "r:")
}

// checkLockDiscipline runs the forward dataflow walk over one function.
func checkLockDiscipline(pass *Pass, fd *ast.FuncDecl, ioFinder *Finder) {
	// deferred collects lock keys released by defer statements anywhere in
	// the body: their obligations are met on every exit path. This is
	// deliberately flow-insensitive — a defer nearly always directly
	// follows its Lock — and only suppresses leak reports, never the
	// I/O-under-lock check.
	deferred := map[string]bool{}

	reportLeak := func(facts flowFacts, escape token.Pos) {
		for key, pos := range facts {
			if deferred[key] {
				continue
			}
			if pass.MissingReason("lock", pos) {
				pass.Reportf(pos, "locksafe: //bytecard:lock-ok annotation needs a reason explaining the unlock protocol")
				continue
			}
			if pass.Suppressed("lock", pos) {
				continue
			}
			pass.Reportf(pos, "locksafe: %s.%s acquired here is not released on the path leaving the function at line %d; defer the unlock or release before every return",
				lockKeyName(key), lockVerb(key), pass.Fset.Position(escape).Line)
		}
	}

	stmt := func(s ast.Stmt, facts flowFacts) {
		switch s := s.(type) {
		case *ast.DeferStmt:
			for _, key := range deferredReleases(pass.TypesInfo, s) {
				deferred[key] = true
			}
			// Deferred work other than the unlock itself runs before the
			// LIFO-stacked unlock fires, i.e. with the lock held.
			checkCallsLocked(pass, s, facts, ioFinder)
		case *ast.GoStmt:
			// A spawned goroutine runs on its own stack; the spawner's
			// locks are not held there (sharing them would be a different
			// bug this analyzer cannot see).
		case *ast.ExprStmt:
			if isPanicCall(s.X) && len(facts) > 0 {
				reportLeak(facts, s.Pos())
				return
			}
			applyLockEvents(pass, s, facts)
			checkCallsLocked(pass, s, facts, ioFinder)
		default:
			applyLockEvents(pass, s, facts)
			checkCallsLocked(pass, s, facts, ioFinder)
		}
	}

	forwardWalk(fd.Body, flowHooks{
		stmt: stmt,
		ret: func(r *ast.ReturnStmt, facts flowFacts) {
			// A call in a return expression still executes under the lock.
			checkCallsLocked(pass, r, facts, ioFinder)
			reportLeak(facts, r.Pos())
		},
		end: func(facts flowFacts) {
			if len(facts) > 0 {
				reportLeak(facts, fd.Body.Rbrace)
			}
		},
	})
}

func lockVerb(key string) string {
	if strings.HasPrefix(key, "r:") {
		return "RLock"
	}
	return "Lock"
}

// applyLockEvents updates the held-lock facts with every mutex operation
// in one simple statement (function-literal bodies excluded: they run on
// their own schedule).
func applyLockEvents(pass *Pass, s ast.Stmt, facts flowFacts) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc, ok := matchLockCall(pass.TypesInfo, call); ok {
			if lc.acquire {
				facts[lc.key] = call.Pos()
			} else {
				delete(facts, lc.key)
			}
		}
		return true
	})
}

// deferredReleases returns the lock keys a defer statement provably
// releases: either the deferred call is the unlock itself, or it defers a
// function literal whose body performs a net release (an unlock of a key
// the literal did not itself acquire).
func deferredReleases(info *types.Info, d *ast.DeferStmt) []string {
	if lc, ok := matchLockCall(info, d.Call); ok && !lc.acquire {
		return []string{lc.key}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	acquired := map[string]bool{}
	var released []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc, ok := matchLockCall(info, call); ok {
			if lc.acquire {
				acquired[lc.key] = true
			} else if !acquired[lc.key] {
				released = append(released, lc.key)
			}
		}
		return true
	})
	return released
}

// checkCallsLocked reports calls that reach I/O while any lock is held —
// the interprocedural half: a call into a same-package helper is followed
// through the call graph.
func checkCallsLocked(pass *Pass, s ast.Stmt, facts flowFacts, ioFinder *Finder) {
	if ioFinder == nil || len(facts) == 0 {
		return
	}
	held := heldSummary(pass, facts)
	ast.Inspect(s, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok && g != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if _, isLock := matchLockCall(pass.TypesInfo, call); isLock {
			return true
		}
		hit, found := ioFinder.Find(fn)
		if !found {
			return true
		}
		if pass.MissingReason("lock", call.Pos()) {
			pass.Reportf(call.Pos(), "locksafe: //bytecard:lock-ok annotation needs a reason explaining why I/O under this lock is safe")
			return true
		}
		if pass.Suppressed("lock", call.Pos()) {
			return true
		}
		via := ""
		if len(hit.Chain) > 0 {
			via = " via " + strings.Join(hit.Chain, " → ")
		}
		pass.Reportf(call.Pos(), "locksafe: %s reachable%s while holding %s; release the lock before I/O or annotate with //bytecard:lock-ok <reason>",
			hit.Desc, via, held)
		return true
	})
}

// heldSummary renders the held-lock set for a diagnostic, sorted for
// deterministic multi-lock messages.
func heldSummary(pass *Pass, facts flowFacts) string {
	var names []string
	for key, pos := range facts {
		names = append(names, fmt.Sprintf("%s (line %d)", lockKeyName(key), pass.Fset.Position(pos).Line))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// classifyLockedIO judges one callee as I/O forbidden under a serving-tier
// lock. Three classes, mirroring the deployment contract: the storage
// layer's block-charging read surface, the guarded model-inference ladder
// (and its raw entry points), and outbound HTTP (net/http directly or the
// modelforge client that wraps it).
func classifyLockedIO(fn *types.Func) (string, bool) {
	path := pkgPathOf(fn)
	recv := recvTypeName(fn)
	name := fn.Name()
	switch {
	case pathHasSuffix(path, "internal/storage"):
		switch {
		case recv == "Reader" && (name == "Value" || name == "Numeric" || name == "LoadAll" || name == "LoadRange"),
			recv == "Column" && (name == "Value" || name == "Numeric" || name == "NumericAll"),
			recv == "" && name == "BlockScan":
			return "storage block read (storage." + callName(recv, name) + ")", true
		}
	case pathHasSuffix(path, "internal/core") && recv == "Guard" && name == "Do":
		return "guarded model call (core.Guard.Do)", true
	case path == "net/http":
		switch {
		case recv == "Client" && (name == "Do" || name == "Get" || name == "Head" || name == "Post" || name == "PostForm"),
			recv == "" && (name == "Get" || name == "Head" || name == "Post" || name == "PostForm"):
			return "outbound HTTP (http." + callName(recv, name) + ")", true
		}
	case pathHasSuffix(path, "internal/modelforge") && recv == "Client":
		return "outbound HTTP (modelforge.Client." + name + ")", true
	}
	if ep, ok := matchEntryPoint(fn); ok {
		return "model inference (" + ep.recv + "." + ep.name + ")", true
	}
	return "", false
}

func callName(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}
