package lint

import (
	"go/ast"
	"go/types"
)

// CachePut forbids publishing or unlinking plan-cache entries outside the
// cache's own invalidation-aware methods.
//
// The plan cache's correctness under model churn rests on one invariant:
// every resident entry is reachable by InvalidateTables, which requires
// that entries enter through Put (which stores the decision's physical
// table list and settles the byte/entry gauges) and leave through
// removeLocked (which settles the same gauges). A direct write into the
// entries map or a raw lru push publishes a plan that a retrain can never
// evict — a stale-plan bug that only shows up as wrong strategies long
// after the model changed. All mutation must flow through the blessed
// PlanCache methods; everything else in the engine package is flagged.
var CachePut = &Analyzer{
	Name: "cacheput",
	Doc: "forbid raw plan-cache entry publication\n\n" +
		"Writing PlanCache.entries or mutating PlanCache.lru outside the\n" +
		"cache's own methods bypasses the table-list bookkeeping that keeps\n" +
		"every resident plan reachable by InvalidateTables. Publish entries\n" +
		"only through the invalidation-aware Put helper (and unlink through\n" +
		"removeLocked), or annotate with //bytecard:cacheput-ok <reason>.",
	Run: runCachePut,
}

// cachePutPackages lists package *names* under the plan-cache publication
// contract (name matching covers the testdata fixtures, same as mapiter).
var cachePutPackages = map[string]bool{
	"engine": true,
}

// cachePutBlessed are the PlanCache methods (plus its constructor) that
// implement the bookkeeping and may touch the raw containers.
var cachePutBlessed = map[string]bool{
	"NewPlanCache":     true,
	"Get":              true,
	"Put":              true,
	"removeLocked":     true,
	"InvalidateTables": true,
	"Flush":            true,
}

// listMutators are the container/list methods that insert, move, or unlink
// elements — every one changes what Put/removeLocked account for.
var listMutators = map[string]bool{
	"PushFront":     true,
	"PushBack":      true,
	"PushFrontList": true,
	"PushBackList":  true,
	"InsertBefore":  true,
	"InsertAfter":   true,
	"MoveToFront":   true,
	"MoveToBack":    true,
	"MoveBefore":    true,
	"MoveAfter":     true,
	"Remove":        true,
	"Init":          true,
}

// isPlanCacheField reports whether e is a selector of the named field on a
// (possibly pointer-to) PlanCache value.
func isPlanCacheField(info *types.Info, e ast.Expr, field string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "PlanCache"
}

func runCachePut(pass *Pass) error {
	if !cachePutPackages[pass.Pkg.Name()] {
		return nil
	}
	report := func(pos ast.Node, what string) {
		p := pos.Pos()
		if pass.InTestFile(p) {
			return
		}
		if pass.MissingReason("cacheput", p) {
			pass.Reportf(p, "cacheput: //bytecard:cacheput-ok annotation needs a reason explaining why bypassing the plan cache's invalidation bookkeeping is acceptable")
			return
		}
		if pass.Suppressed("cacheput", p) {
			return
		}
		pass.Reportf(p, "cacheput: %s bypasses the plan cache's invalidation bookkeeping; publish entries only through the invalidation-aware Put helper (or unlink through removeLocked), or annotate with //bytecard:cacheput-ok <reason>", what)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if cachePutBlessed[fd.Name.Name] &&
				(fd.Recv == nil || recvNameOf(fd) == "PlanCache") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok &&
							isPlanCacheField(pass.TypesInfo, idx.X, "entries") {
							report(n, "assigning PlanCache.entries")
							// One diagnostic per publication statement: the
							// paired lru push on the RHS is the same violation.
							return false
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
						if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
							isPlanCacheField(pass.TypesInfo, n.Args[0], "entries") {
							report(n, "delete on PlanCache.entries")
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && listMutators[sel.Sel.Name] &&
						isPlanCacheField(pass.TypesInfo, sel.X, "lru") {
						report(n, "PlanCache.lru."+sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// recvNameOf returns the bare receiver type name of a method declaration.
func recvNameOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
