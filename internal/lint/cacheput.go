package lint

import (
	"go/ast"
	"go/types"
)

// CachePut forbids publishing or unlinking derived-cache entries outside
// the cache's own invalidation-aware methods.
//
// Every derived cache registered with the inference registry (the plan
// cache, the residual corrector) shares one correctness invariant under
// model churn: every resident entry is reachable by InvalidateTables,
// which requires that entries enter through the blessed publication path
// (which stores the entry's physical table list and settles the
// byte/entry gauges) and leave through the blessed unlink path (which
// settles the same gauges). A direct write into the entries map or a raw
// lru push publishes state that a retrain can never evict — a staleness
// bug that only shows up long after the model changed. All mutation must
// flow through the blessed methods; everything else in the owning package
// is flagged.
var CachePut = &Analyzer{
	Name: "cacheput",
	Doc: "forbid raw derived-cache entry publication\n\n" +
		"Writing a derived cache's entries map or mutating its lru list\n" +
		"outside the cache's own methods bypasses the table-list bookkeeping\n" +
		"that keeps every resident entry reachable by InvalidateTables.\n" +
		"Covered contracts: engine.PlanCache (publish via Put, unlink via\n" +
		"removeLocked) and residual.Corrector (publish via Observe/Decode,\n" +
		"unlink via removeLocked). Annotate deliberate bypasses with\n" +
		"//bytecard:cacheput-ok <reason>.",
	Run: runCachePut,
}

// cachePutContract describes one cache type under the publication
// contract: the raw containers live in `entries` (map) and `lru`
// (container/list), and only the blessed methods may touch them.
// Packages are matched by *name* (covering the testdata fixtures, same
// as mapiter).
type cachePutContract struct {
	pkg     string          // package name owning the cache type
	typ     string          // cache type name
	publish string          // blessed publication entry point, for diagnostics
	unlink  string          // blessed unlink entry point, for diagnostics
	blessed map[string]bool // methods (plus constructor) that may touch the raw containers
}

var cachePutContracts = []cachePutContract{
	{
		pkg: "engine", typ: "PlanCache", publish: "Put", unlink: "removeLocked",
		blessed: map[string]bool{
			"NewPlanCache":     true,
			"Get":              true,
			"Put":              true,
			"removeLocked":     true,
			"InvalidateTables": true,
			"Flush":            true,
		},
	},
	{
		pkg: "residual", typ: "Corrector", publish: "Observe", unlink: "removeLocked",
		blessed: map[string]bool{
			"New":              true,
			"Correct":          true,
			"Observe":          true,
			"insertLocked":     true,
			"removeLocked":     true,
			"InvalidateTables": true,
			"Flush":            true,
			"Decode":           true,
		},
	},
}

// listMutators are the container/list methods that insert, move, or unlink
// elements — every one changes what the blessed paths account for.
var listMutators = map[string]bool{
	"PushFront":     true,
	"PushBack":      true,
	"PushFrontList": true,
	"PushBackList":  true,
	"InsertBefore":  true,
	"InsertAfter":   true,
	"MoveToFront":   true,
	"MoveToBack":    true,
	"MoveBefore":    true,
	"MoveAfter":     true,
	"Remove":        true,
	"Init":          true,
}

// isCacheField reports whether e is a selector of the named field on a
// (possibly pointer-to) value of the contract's cache type.
func isCacheField(info *types.Info, c cachePutContract, e ast.Expr, field string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == c.typ
}

func runCachePut(pass *Pass) error {
	var contracts []cachePutContract
	for _, c := range cachePutContracts {
		if c.pkg == pass.Pkg.Name() {
			contracts = append(contracts, c)
		}
	}
	if len(contracts) == 0 {
		return nil
	}
	report := func(pos ast.Node, c cachePutContract, what string) {
		p := pos.Pos()
		if pass.InTestFile(p) {
			return
		}
		if pass.MissingReason("cacheput", p) {
			pass.Reportf(p, "cacheput: //bytecard:cacheput-ok annotation needs a reason explaining why bypassing %s's invalidation bookkeeping is acceptable", c.typ)
			return
		}
		if pass.Suppressed("cacheput", p) {
			return
		}
		pass.Reportf(p, "cacheput: %s bypasses %s's invalidation bookkeeping; publish entries only through the invalidation-aware %s helper (or unlink through %s), or annotate with //bytecard:cacheput-ok <reason>", what, c.typ, c.publish, c.unlink)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A contract's blessed methods (and free-function constructor)
			// may touch its own containers; they remain checked against any
			// other contract in the same package.
			active := contracts[:0:0]
			for _, c := range contracts {
				if c.blessed[fd.Name.Name] &&
					(fd.Recv == nil || recvNameOf(fd) == c.typ) {
					continue
				}
				active = append(active, c)
			}
			if len(active) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
						if !ok {
							continue
						}
						for _, c := range active {
							if isCacheField(pass.TypesInfo, c, idx.X, "entries") {
								report(n, c, "assigning "+c.typ+".entries")
								// One diagnostic per publication statement: the
								// paired lru push on the RHS is the same violation.
								return false
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
						if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
							for _, c := range active {
								if isCacheField(pass.TypesInfo, c, n.Args[0], "entries") {
									report(n, c, "delete on "+c.typ+".entries")
								}
							}
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && listMutators[sel.Sel.Name] {
						for _, c := range active {
							if isCacheField(pass.TypesInfo, c, sel.X, "lru") {
								report(n, c, c.typ+".lru."+sel.Sel.Name)
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// recvNameOf returns the bare receiver type name of a method declaration.
func recvNameOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
