package lint

import (
	"go/ast"
)

// AtomicWrite forbids raw file-creating writes in the model store.
//
// The store's crash-safety contract rests on one protocol: every byte that
// reaches the store directory goes through write-temp → fsync → rename →
// fsync-dir, with the manifest rename as the single publish point. A raw
// os.WriteFile or os.Create in that package can tear on crash, publish a
// half-written artifact, or skip the fsync that makes the rename durable —
// and the damage only shows up as silent corruption much later. All writes
// must flow through the blessed atomicWrite helper; everything else in a
// package named modelstore is flagged. Sites with a genuine reason to
// bypass the protocol (none are known) would carry
// //bytecard:atomicwrite-ok <reason>.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc: "forbid raw file creation in the model store\n\n" +
		"os.WriteFile / os.Create / os.OpenFile outside the blessed\n" +
		"atomicWrite helper bypasses the temp-fsync-rename protocol that\n" +
		"makes the store crash-safe. Route the write through atomicWrite,\n" +
		"or annotate with //bytecard:atomicwrite-ok <reason>.",
	Run: runAtomicWrite,
}

// atomicWritePackages lists package *names* under the atomic-write contract
// (name matching covers the testdata fixtures, same as mapiter).
var atomicWritePackages = map[string]bool{
	"modelstore": true,
}

// rawWriteFuncs are the os entry points that create or truncate files.
// os.Open and os.ReadFile are read-only and stay allowed; os.Rename and
// file.Sync are the protocol's own building blocks.
var rawWriteFuncs = map[string]bool{
	"WriteFile": true,
	"Create":    true,
	"OpenFile":  true,
}

// atomicWriteBlessed are the functions allowed to touch the raw entry
// points: the protocol implementation itself.
var atomicWriteBlessed = map[string]bool{
	"atomicWrite": true,
}

func runAtomicWrite(pass *Pass) error {
	if !atomicWritePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if atomicWriteBlessed[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || pkgPathOf(fn) != "os" || !rawWriteFuncs[fn.Name()] {
					return true
				}
				if pass.InTestFile(call.Pos()) {
					return true
				}
				if pass.MissingReason("atomicwrite", call.Pos()) {
					pass.Reportf(call.Pos(), "atomicwrite: //bytecard:atomicwrite-ok annotation needs a reason explaining why bypassing the crash-safe write protocol is acceptable")
					return true
				}
				if pass.Suppressed("atomicwrite", call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(), "atomicwrite: os.%s bypasses the crash-safe write protocol (temp-fsync-rename); route the write through atomicWrite or annotate with //bytecard:atomicwrite-ok <reason>", fn.Name())
				return true
			})
		}
	}
	return nil
}
