package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression invokes,
// returning nil for calls through function-typed values, built-ins, and
// type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// recvTypeName returns the bare type name of fn's receiver ("Context" for
// func (c *Context) ...), or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if iface, ok := t.Underlying().(*types.Interface); ok && iface != nil {
		// Interface method via embedded lookup: fall back to the object name
		// of the declared receiver when available.
		return ""
	}
	return ""
}

// pkgPathOf returns fn's defining package path ("" for builtins/universe).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathHasSuffix reports whether a package path equals suffix or ends with
// "/"+suffix — how the analyzers match bytecard packages without hardcoding
// the module name (testdata packages use short synthetic paths).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isIntegerExpr reports whether e has integer type (commutative-accumulation
// whitelist: float accumulation is order-sensitive, integer is not).
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// exprString renders a side-effect-free expression (identifiers, selector
// chains, index expressions) to a comparable string; returns "" for
// expressions it cannot canonically render.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.IndexExpr:
		x, i := exprString(e.X), exprString(e.Index)
		if x == "" || i == "" {
			return ""
		}
		return x + "[" + i + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}

// containsCall reports whether the expression tree contains any call that is
// not a type conversion or a pure builtin (len, cap) — used to keep
// "order-insensitive loop body" judgments honest about hidden side effects.
func containsCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion, keep walking operand
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					return true
				}
			}
			found = true
			return false
		}
		return !found
	})
	return found
}

// funcBodyReturns collects the return statements belonging to fn's own body,
// excluding returns inside nested function literals.
func funcBodyReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}
