package lint

import (
	"go/ast"
	"go/token"
)

// flowFacts is the state a forward dataflow walk threads through a function
// body: analyzer-defined keys (a held lock's receiver expression, say) to
// the position that established each fact.
type flowFacts map[string]token.Pos

func (f flowFacts) clone() flowFacts {
	out := make(flowFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// mergeFacts unions two post-branch states, keeping the earlier position
// for facts present in both. Union is the conservative join for
// must-release tracking: a fact that survives any arm survives the merge.
func mergeFacts(a, b flowFacts) flowFacts {
	out := a.clone()
	for k, v := range b {
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

// flowHooks receive a forward walk's events. stmt sees every simple
// statement in approximate execution order and may mutate the facts; ret
// fires at each return belonging to the function's own body; end fires
// once if control can fall off the end of the body.
type flowHooks struct {
	stmt func(ast.Stmt, flowFacts)
	ret  func(*ast.ReturnStmt, flowFacts)
	end  func(flowFacts)
}

// forwardWalk interprets body in source order, approximating control flow
// without building a CFG: branch arms are walked with cloned facts and
// merged by union, loop bodies are walked once (a body that balances its
// own facts contributes nothing to the merge), and nested function
// literals are not entered — they execute on their own schedule, so their
// statements belong to no path of the enclosing body. An arm whose last
// reachable statement is a return or a panic call terminates and is
// excluded from the merge.
func forwardWalk(body *ast.BlockStmt, hooks flowHooks) {
	facts, terminated := walkStmts(body.List, flowFacts{}, hooks)
	if !terminated && hooks.end != nil {
		hooks.end(facts)
	}
}

// walkStmts walks one statement list, returning the post state and whether
// the list provably terminates (every path returns or panics).
func walkStmts(list []ast.Stmt, facts flowFacts, hooks flowHooks) (flowFacts, bool) {
	for _, s := range list {
		var terminated bool
		facts, terminated = walkStmt(s, facts, hooks)
		if terminated {
			return facts, true
		}
	}
	return facts, false
}

func walkStmt(s ast.Stmt, facts flowFacts, hooks flowHooks) (flowFacts, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return walkStmts(s.List, facts, hooks)
	case *ast.LabeledStmt:
		return walkStmt(s.Stmt, facts, hooks)
	case *ast.IfStmt:
		if s.Init != nil {
			facts, _ = walkStmt(s.Init, facts, hooks)
		}
		thenOut, thenTerm := walkStmts(s.Body.List, facts.clone(), hooks)
		elseOut, elseTerm := facts, false
		if s.Else != nil {
			elseOut, elseTerm = walkStmt(s.Else, facts.clone(), hooks)
		}
		switch {
		case thenTerm && elseTerm:
			return facts, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		}
		return mergeFacts(thenOut, elseOut), false
	case *ast.ForStmt:
		if s.Init != nil {
			facts, _ = walkStmt(s.Init, facts, hooks)
		}
		bodyOut, _ := walkStmts(s.Body.List, facts.clone(), hooks)
		if s.Post != nil {
			bodyOut, _ = walkStmt(s.Post, bodyOut, hooks)
		}
		return mergeFacts(facts, bodyOut), false
	case *ast.RangeStmt:
		bodyOut, _ := walkStmts(s.Body.List, facts.clone(), hooks)
		return mergeFacts(facts, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			facts, _ = walkStmt(s.Init, facts, hooks)
		}
		return walkCases(s.Body, facts, hooks)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			facts, _ = walkStmt(s.Init, facts, hooks)
		}
		return walkCases(s.Body, facts, hooks)
	case *ast.SelectStmt:
		return walkCases(s.Body, facts, hooks)
	case *ast.ReturnStmt:
		if hooks.ret != nil {
			hooks.ret(s, facts)
		}
		return facts, true
	case *ast.ExprStmt:
		if hooks.stmt != nil {
			hooks.stmt(s, facts)
		}
		return facts, isPanicCall(s.X)
	default:
		// Defer, go, assignments, declarations, sends, inc/dec, branch
		// statements: simple statements the hook inspects; break/continue
		// /goto conservatively fall through into the merge.
		if hooks.stmt != nil {
			hooks.stmt(s, facts)
		}
		return facts, false
	}
}

// walkCases handles the shared arm structure of switch/type-switch/select:
// every clause runs on a cloned state; outputs of non-terminating clauses
// merge, plus the no-clause-taken path when the statement has no default
// (select always blocks until some clause runs, but the distinction only
// matters for termination, which union already handles conservatively).
func walkCases(body *ast.BlockStmt, facts flowFacts, hooks flowHooks) (flowFacts, bool) {
	hasDefault := false
	var merged flowFacts
	allTerm := true
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				facts, _ = walkStmt(c.Comm, facts, hooks)
			}
			list = c.Body
		default:
			continue
		}
		out, term := walkStmts(list, facts.clone(), hooks)
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = out
		} else {
			merged = mergeFacts(merged, out)
		}
	}
	if !hasDefault {
		allTerm = false
		if merged == nil {
			merged = facts
		} else {
			merged = mergeFacts(merged, facts)
		}
	}
	if allTerm && len(body.List) > 0 {
		return facts, true
	}
	if merged == nil {
		merged = facts
	}
	return merged, false
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
