package lint

import (
	"go/ast"
)

// RandSource flags top-level math/rand functions in non-test code.
//
// Package-level rand.Intn / rand.Float64 / rand.Shuffle draw from the global
// source, which Go seeds randomly at process start: two runs of the same
// training job produce different models, and the determinism guarantees of
// modelforge and the monitor's synthetic probes evaporate. Production code
// must thread an explicit *rand.Rand built with rand.New(rand.NewSource(seed))
// so every stochastic path is replayable from its logged seed. Constructor
// functions (New, NewSource, NewZipf, NewPCG, NewChaCha8) are allowed — they
// are exactly how seeded generators are made. Rare legitimate uses of ambient
// randomness (e.g. jitter where replay is meaningless) carry
// //bytecard:rand-ok <reason>.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc: "flag global math/rand functions in non-test code\n\n" +
		"The global source is seeded randomly at startup, breaking replayable\n" +
		"training and probing. Use a seeded *rand.Rand, or annotate with\n" +
		"//bytecard:rand-ok <reason>.",
	Run: runRandSource,
}

// randConstructors are the math/rand{,/v2} package-level functions that do
// NOT touch global state; every other package-level function there does.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runRandSource(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			path := pkgPathOf(fn)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if recvTypeName(fn) != "" || randConstructors[fn.Name()] {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if pass.MissingReason("rand", call.Pos()) {
				pass.Reportf(call.Pos(), "randsource: //bytecard:rand-ok annotation needs a reason explaining why unseeded randomness is acceptable")
				return true
			}
			if pass.Suppressed("rand", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "randsource: rand.%s uses the process-global source, seeded randomly at startup; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) or annotate with //bytecard:rand-ok <reason>", fn.Name())
			return true
		})
	}
	return nil
}
