package lint

import "go/ast"

// GoroutineSrc enforces goroutine provenance: library packages do not
// spawn bare goroutines. Every fan-out routes through internal/par
// (par.Do and the deterministic chunk schedulers), which is the one
// audited place where worker counts are clamped to effective parallelism
// and scheduling stays deterministic — a stray `go func()` elsewhere is
// invisible to that accounting and to any future centralized panic
// recovery. The rare legitimate direct spawn (the guard's latency-budget
// watcher, which exists precisely to abandon a stalled call) carries a
// //bytecard:goroutine-ok <reason> naming why it cannot be a pool job.
var GoroutineSrc = &Analyzer{
	Name: "goroutinesrc",
	Doc: "flag bare go statements outside internal/par\n\n" +
		"Library fan-out must route through par.Do/par.Chunks/par.Strided so\n" +
		"worker clamping and scheduling determinism stay centralized; annotate\n" +
		"deliberate direct spawns with //bytecard:goroutine-ok <reason>.",
	Run: runGoroutineSrc,
}

func runGoroutineSrc(pass *Pass) error {
	// main packages own their process lifecycle, and par is the blessed
	// spawner itself.
	if name := pass.Pkg.Name(); name == "main" || name == "par" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(g.Pos()) {
				return true
			}
			if pass.MissingReason("goroutine", g.Pos()) {
				pass.Reportf(g.Pos(), "goroutinesrc: //bytecard:goroutine-ok annotation needs a reason explaining why this spawn bypasses internal/par")
				return true
			}
			if pass.Suppressed("goroutine", g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutinesrc: bare go statement in a library package; route the fan-out through internal/par (Do/Chunks/Strided) so worker accounting stays centralized, or annotate with //bytecard:goroutine-ok <reason>")
			return true
		})
	}
	return nil
}
