// Package residual (fixture) exercises cacheput's second contract: the
// residual corrector's buckets may only be published through the
// invalidation-aware Observe/insertLocked path and unlinked through
// removeLocked; raw map writes and lru pushes are flagged everywhere
// outside the blessed methods.
package residual

import (
	"container/list"
	"sync"
)

type bucket struct {
	key    string
	tables []string
	logF   float64
	n      int64
}

type Corrector struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List
}

// New is blessed: constructing the containers is not publication.
func New() *Corrector {
	return &Corrector{entries: map[string]*list.Element{}, lru: list.New()}
}

// Observe is the blessed publication path.
func (c *Corrector) Observe(key string, tables []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		elem = c.insertLocked(key, tables)
	}
	c.lru.MoveToFront(elem)
	elem.Value.(*bucket).n++
}

// insertLocked is blessed: it records the table list InvalidateTables
// needs and settles the gauges.
func (c *Corrector) insertLocked(key string, tables []string) *list.Element {
	elem := c.lru.PushFront(&bucket{key: key, tables: tables})
	c.entries[key] = elem
	return elem
}

// removeLocked is the blessed unlink path.
func (c *Corrector) removeLocked(elem *list.Element) {
	b := elem.Value.(*bucket)
	delete(c.entries, b.key)
	c.lru.Remove(elem)
}

// BadPublish bypasses insertLocked: the bucket enters with no table list,
// so a retrain of its tables can never invalidate it.
func (c *Corrector) BadPublish(key string) {
	c.entries[key] = c.lru.PushFront(&bucket{key: key}) // want `only through the invalidation-aware Observe helper`
}

// BadUnlink bypasses removeLocked: gauges drift.
func (c *Corrector) BadUnlink(key string) {
	if elem, ok := c.entries[key]; ok {
		delete(c.entries, key) // want `only through the invalidation-aware Observe helper`
		c.lru.Remove(elem)     // want `only through the invalidation-aware Observe helper`
	}
}

// BadRecency shows list moves outside the blessed set are flagged too.
func badFreeFunc(c *Corrector) {
	if elem, ok := c.entries["k"]; ok {
		c.lru.MoveToFront(elem) // want `only through the invalidation-aware Observe helper`
	}
}

// annotated shows the suppression escape hatch.
func annotated(c *Corrector) {
	c.lru.Init() //bytecard:cacheput-ok fixture: tearing down a corrector that was never published to
}

// goodReads stay allowed: lookups, iteration, and length checks are not
// publication.
func goodReads(c *Corrector) (int, bool) {
	_, ok := c.entries["k"]
	n := 0
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		n++
	}
	return n, ok
}
