// Package util is NOT on the determinism-critical list, so mapiter ignores
// even clearly order-sensitive loops here.
package util

func FloatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
