// Package counters exercises atomicfield: mixed function-style
// atomic/plain access to the same field or package variable, and
// sync/atomic typed values copied by value.
package counters

import "sync/atomic"

var hits int64

type stats struct {
	n     int64
	count atomic.Int64
}

// Bump accesses n atomically — this is what puts n in the tracked set.
func Bump(s *stats) {
	atomic.AddInt64(&s.n, 1)
}

// PlainInc races Bump: one plain increment against atomic adds.
func PlainInc(s *stats) {
	s.n++ // want `n is accessed via sync/atomic at line \d+ but plainly here`
}

// Record accesses the package counter atomically.
func Record() {
	atomic.AddInt64(&hits, 1)
}

// Snapshot reads it plainly; undefined under the memory model.
func Snapshot() int64 {
	return hits // want `hits is accessed via sync/atomic .* but plainly here`
}

// AnnotatedInit documents a constructor-private write that cannot race.
func AnnotatedInit() *stats {
	s := &stats{}
	s.n = 0 //bytecard:atomic-ok fixture: no other goroutine holds s before return
	return s
}

// NoReason has the annotation without a justification.
func NoReason(s *stats) int64 {
	//bytecard:atomic-ok
	return s.n // want `annotation needs a reason`
}

// CopyArg passes a typed atomic by value: the callee gets a detached
// counter.
func CopyArg(s *stats) int64 {
	return drain(s.count) // want `value copied`
}

func drain(c atomic.Int64) int64 {
	return c.Load()
}

// CopyAssign detaches by assignment.
func CopyAssign(s *stats) int64 {
	cp := s.count // want `value copied`
	return cp.Load()
}

// PointerUse is the correct shape; clean.
func PointerUse(s *stats) int64 {
	p := &s.count
	p.Add(1)
	return s.count.Load()
}
