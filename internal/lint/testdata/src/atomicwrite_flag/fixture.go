// Package modelstore (fixture) exercises atomicwrite: raw file-creating os
// calls are flagged everywhere except inside the blessed atomicWrite helper.
package modelstore

import "os"

func BadWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `bypasses the crash-safe write protocol`
}

func BadCreate(path string) error {
	f, err := os.Create(path) // want `bypasses the crash-safe write protocol`
	if err != nil {
		return err
	}
	return f.Close()
}

type store struct{}

func (s *store) badMethod(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want `bypasses the crash-safe write protocol`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// atomicWrite is the blessed protocol implementation: the raw entry point
// is allowed here, and only here.
func atomicWrite(path string, data []byte) error {
	f, err := os.OpenFile(path+".tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// goodReads stay allowed: the contract covers creation, not consumption.
func goodReads(path string) ([]byte, error) {
	if f, err := os.Open(path); err == nil {
		f.Close()
	}
	return os.ReadFile(path)
}

// goodUsesHelper routes its write through the protocol.
func goodUsesHelper(path string, data []byte) error {
	return atomicWrite(path, data)
}

// Annotated documents a deliberate bypass.
func Annotated(path string) error {
	return os.WriteFile(path, nil, 0o644) //bytecard:atomicwrite-ok fixture: scratch file outside the store directory
}

// NoReason has the annotation but no justification.
func NoReason(path string) error {
	//bytecard:atomicwrite-ok
	return os.WriteFile(path, nil, 0o644) // want `annotation needs a reason`
}
