// Package engine exercises both locksafe invariants: release on all paths
// and no I/O under a serving-tier lock. The package is named engine so the
// I/O-under-lock check (gated to engine/core/modelstore) is active.
package engine

import (
	"sync"

	"bytecard/internal/storage"
)

type guardedScan struct {
	mu sync.RWMutex
	r  *storage.Reader
}

// Leaky acquires and forgets on the early-return path.
func Leaky(s *guardedScan, b bool) {
	s.mu.Lock() // want `s.mu.Lock acquired here is not released`
	if b {
		return
	}
	s.mu.Unlock()
}

// RLeaky leaks a read lock straight through a return.
func RLeaky(s *guardedScan) int {
	s.mu.RLock() // want `s.mu.RLock acquired here is not released`
	return 1
}

// PanicLeak holds the lock into a bare panic; the guard layer recovers
// panics, so the lock stays wedged.
func PanicLeak(s *guardedScan) {
	s.mu.Lock() // want `s.mu.Lock acquired here is not released`
	panic("boom")
}

// Balanced releases on every path and is clean.
func Balanced(s *guardedScan, b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// Deferred is the canonical clean shape.
func Deferred(s *guardedScan) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// ReadLocked reaches a storage block read directly under the lock.
func ReadLocked(s *guardedScan) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Numeric(0) // want `storage block read .* while holding s.mu`
}

// cold is a same-package helper whose body touches storage.
func cold(r *storage.Reader) float64 {
	return r.Numeric(0)
}

// Indirect reaches storage two hops away, through the call graph.
func Indirect(s *guardedScan) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := cold(s.r) // want `storage block read .* reachable via cold while holding s.mu`
	return v
}

// Unlocked performs the same read with no lock held; clean.
func Unlocked(s *guardedScan) float64 {
	return cold(s.r)
}

// AnnotatedHold documents why the read under the lock is acceptable.
func AnnotatedHold(s *guardedScan) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cold(s.r) //bytecard:lock-ok fixture: reader is memory-resident in this path
}

// NoReason has the annotation but no justification.
func NoReason(s *guardedScan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//bytecard:lock-ok
	cold(s.r) // want `annotation needs a reason`
}

// Spawned goroutine bodies run on their own stack; the spawner's lock set
// does not apply inside them.
func SpawnClean(s *guardedScan, done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { //bytecard:goroutine-ok fixture: provenance is goroutinesrc's concern, not locksafe's
		cold(s.r)
		close(done)
	}()
}
