// Package bn is a mapiter fixture: its name puts it on the
// determinism-critical list, so every map range below is policed.
package bn

import "sort"

func sink(string) {}

// SortedCollect is the blessed collect-then-sort idiom: append-accumulation
// is order-insensitive and passes without annotation.
func SortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IntCount accumulates integers, which commutes exactly.
func IntCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// KeyedCopy writes each key independently.
func KeyedCopy(dst, src map[string]int) {
	for k := range src {
		dst[k] = src[k]
	}
}

// KeyedDelete removes the visited key, which is order-independent.
func KeyedDelete(m map[string]int) {
	for k := range m {
		if m[k] == 0 {
			delete(m, k)
			continue
		}
		m[k]--
	}
}

// FloatSum is order-sensitive: float rounding depends on summation order.
func FloatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

// Calls may observe intermediate state, so the loop is not provably
// order-insensitive.
func Calls(m map[string]string) {
	for k := range m { // want `map iteration order is nondeterministic`
		sink(k)
	}
}

// Annotated documents why order cannot matter and is suppressed.
func Annotated(m map[string]float64) float64 {
	var s float64
	//bytecard:unordered-ok fixture: downstream consumer tolerates ulp-level drift
	for _, v := range m {
		s += v
	}
	return s
}

// NoReason carries an annotation without a justification, which is itself a
// finding.
func NoReason(m map[string]float64) float64 {
	var s float64
	//bytecard:unordered-ok
	for _, v := range m { // want `annotation needs a reason`
		s += v
	}
	return s
}
