// Package pipeline exercises goroutinesrc: bare go statements in library
// packages must route through internal/par or carry an annotated reason.
package pipeline

import "bytecard/internal/par"

// BareSpawn fans out directly; invisible to par's worker accounting.
func BareSpawn(done chan struct{}) {
	go func() { // want `bare go statement in a library package`
		close(done)
	}()
}

// BareCall spawns a named function; same violation.
func BareCall(f func()) {
	go f() // want `bare go statement in a library package`
}

// PooledFanOut is the blessed shape.
func PooledFanOut(n, workers int, f func(int)) {
	par.Do(n, workers, f)
}

// Watcher documents why it cannot be a pool job.
func Watcher(stalled <-chan struct{}, abandon func()) {
	go func() { //bytecard:goroutine-ok fixture: watchdog must outlive the pooled call it abandons
		<-stalled
		abandon()
	}()
}

// NoReason has the annotation without a justification.
func NoReason(f func()) {
	//bytecard:goroutine-ok
	go f() // want `annotation needs a reason`
}
