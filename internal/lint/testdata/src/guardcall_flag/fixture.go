// Package client calls model inference entry points from outside the
// guarded ladder, which guardcall reports.
package client

import (
	"bytecard/internal/bn"
	"bytecard/internal/costmodel"
)

func Direct(c *bn.Context, w [][]float64) float64 {
	return c.Prob(w) // want `bypasses core.Estimator's guarded ladder`
}

func DirectConj(c *bn.Context) (float64, error) {
	return c.SelectivityConj(nil) // want `bypasses core.Estimator's guarded ladder`
}

func DirectCost(m *costmodel.Model, f []float64) float64 {
	return m.PredictMillis(f) // want `bypasses core.Estimator's guarded ladder`
}

// Annotated raw calls document why the ladder is skipped.
func Annotated(c *bn.Context, w [][]float64) float64 {
	return c.Prob(w) //bytecard:directcall-ok fixture: calibration harness measures the raw model
}

// NoReason has an annotation but no justification.
func NoReason(c *bn.Context, w [][]float64) float64 {
	//bytecard:directcall-ok
	return c.Prob(w) // want `annotation needs a reason`
}

// Train-and-encode surfaces are not entry points; touching them is fine.
func Housekeeping(m *costmodel.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	_, err := m.Encode()
	return err
}
