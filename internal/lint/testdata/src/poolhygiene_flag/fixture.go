// Package pool exercises poolhygiene: every sync.Pool.Get must be matched by
// a Put (direct, wrapped, or deferred) on every return path, transferred to
// the caller, or annotated.
package pool

import "sync"

type scratch struct{ buf []float64 }

var p = sync.Pool{New: func() any { return new(scratch) }}

func use(s *scratch) float64 { return float64(len(s.buf)) }

// get is a getter wrapper (returns Pool.Get directly); put is a putter
// wrapper (forwards its parameter to Pool.Put). Both are tracked like the
// underlying pool operations.
func get() *scratch  { return p.Get().(*scratch) }
func put(s *scratch) { p.Put(s) }

// Linear is the canonical get → use → put shape.
func Linear() float64 {
	s := p.Get().(*scratch)
	v := use(s)
	p.Put(s)
	return v
}

// Deferred releases on every path via defer.
func Deferred() float64 {
	s := p.Get().(*scratch)
	defer p.Put(s)
	return use(s)
}

// ViaWrappers acquires and releases through the package wrappers.
func ViaWrappers() float64 {
	s := get()
	defer put(s)
	return use(s)
}

// Transfer returns the pooled value itself: ownership moves to the caller
// (this is exactly what a getter wrapper does).
func Transfer() *scratch {
	s := get()
	s.buf = s.buf[:0]
	return s
}

// ClosureRelease hands the release to the caller as a cleanup function.
func ClosureRelease() (*scratch, func()) {
	s := get()
	return s, func() { put(s) }
}

// EarlyReturnLeak misses the Put on the early path.
func EarlyReturnLeak(cond bool) float64 {
	s := p.Get().(*scratch) // want `may escape without a matching Put`
	if cond {
		return 0
	}
	v := use(s)
	p.Put(s)
	return v
}

// WrapperLeak leaks through the getter wrapper: interior state escapes and
// the scratch never goes back.
func WrapperLeak() []float64 {
	s := get() // want `may escape without a matching Put`
	return s.buf
}

// Annotated documents a deliberate leak (interior pointers escape with the
// result, as bn.Marginals does).
func Annotated() []float64 {
	s := get() //bytecard:pool-ok fixture: buf escapes with the result; GC reclaims the scratch
	return s.buf
}

// NoReason carries the annotation without a justification.
func NoReason() []float64 {
	//bytecard:pool-ok
	s := get() // want `annotation needs a reason`
	return s.buf
}
