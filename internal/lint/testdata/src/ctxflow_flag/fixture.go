// Package forge exercises ctxflow: root contexts minted in library code,
// contexts discarded while one is in scope, and plain-variant calls that
// drop the context an API family accepts.
package forge

import "context"

type client struct{}

func (c *client) Fetch() error                           { return nil }
func (c *client) FetchContext(ctx context.Context) error { _ = ctx; return nil }

func Ping() error                           { return nil }
func PingContext(ctx context.Context) error { _ = ctx; return nil }

// RootInLibrary mints a root context with no context in scope: library
// packages must accept one instead.
func RootInLibrary(c *client) error {
	ctx := context.Background() // want `context.Background\(\) in a library package`
	return c.FetchContext(ctx)
}

// TodoInLibrary is the same violation via TODO.
func TodoInLibrary(c *client) error {
	return c.FetchContext(context.TODO()) // want `context.TODO\(\) in a library package`
}

// DiscardsScope already has a context and mints a fresh root anyway.
func DiscardsScope(ctx context.Context, c *client) error {
	return c.FetchContext(context.Background()) // want `discards the context.Context already in scope`
}

// ClosureInherits: the enclosing context is visible inside the literal.
func ClosureInherits(ctx context.Context, c *client) func() error {
	return func() error {
		return c.FetchContext(context.Background()) // want `discards the context.Context already in scope`
	}
}

// DropsVariant calls the plain method while holding a context, when a
// ...Context sibling exists.
func DropsVariant(ctx context.Context, c *client) error {
	return c.Fetch() // want `Fetch drops the in-scope context; call client.FetchContext`
}

// DropsFuncVariant is the package-function flavor.
func DropsFuncVariant(ctx context.Context) error {
	return Ping() // want `Ping drops the in-scope context; call PingContext`
}

// Threads is the clean shape.
func Threads(ctx context.Context, c *client) error {
	if err := c.FetchContext(ctx); err != nil {
		return err
	}
	return PingContext(ctx)
}

// PlainNoCtx calls the plain variant with no context in scope; nothing to
// drop, so it is clean.
func PlainNoCtx(c *client) error {
	return c.Fetch()
}

// compatBridge is the blessed compatibility-wrapper shape.
func compatBridge(c *client) error {
	ctx := context.Background() //bytecard:ctx-ok fixture: compatibility wrapper for context-free callers
	return c.FetchContext(ctx)
}

// NoReason has the annotation without a justification.
func NoReason(c *client) error {
	//bytecard:ctx-ok
	return c.FetchContext(context.Background()) // want `annotation needs a reason`
}
