// Package engine mimics the query engine reading columns directly, which
// scanread reports: engine reads must flow through storage.Reader or
// storage.BlockScan so blocks are charged to IOStats exactly once.
package engine

import (
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

func Direct(c *storage.Column, i int) types.Datum {
	return c.Value(i) // want `bypasses the charge-once scan contract`
}

func DirectNumeric(c *storage.Column, i int) float64 {
	return c.Numeric(i) // want `bypasses the charge-once scan contract`
}

func DirectAll(c *storage.Column) []float64 {
	return c.NumericAll() // want `bypasses the charge-once scan contract`
}

// Annotated raw reads document why accounting is skipped.
func Annotated(c *storage.Column, i int) types.Datum {
	return c.Value(i) //bytecard:rawscan-ok fixture: reference executor verifies results, not I/O
}

// NoReason has an annotation but no justification.
func NoReason(c *storage.Column, i int) types.Datum {
	//bytecard:rawscan-ok
	return c.Value(i) // want `annotation needs a reason`
}

// Metadata accessors and accounted Reader access are the blessed surface.
func Blessed(c *storage.Column, io *storage.IOStats, i int) (types.Datum, int, int) {
	r := c.NewReader(io)
	return r.Value(i), c.Len(), c.NumBlocks()
}
