// Package other (fixture) proves atomicwrite scopes to the store: raw
// writes in packages outside the crash-safety contract are not flagged.
package other

import "os"

func PlainWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func PlainCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
