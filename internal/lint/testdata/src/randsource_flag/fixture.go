// Package jitter exercises randsource: global math/rand functions are
// flagged, seeded generators and constructors are not.
package jitter

import "math/rand"

func Bad() int {
	return rand.Intn(10) // want `uses the process-global source`
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `uses the process-global source`
}

// Good threads a seeded generator; methods on *rand.Rand are fine, and the
// New/NewSource constructors are exactly how such generators are made.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Annotated ambient randomness documents why replay is meaningless.
func Annotated() float64 {
	return rand.Float64() //bytecard:rand-ok fixture: backoff jitter is never replayed
}

// NoReason has the annotation but no justification.
func NoReason() float64 {
	//bytecard:rand-ok
	return rand.Float64() // want `annotation needs a reason`
}
