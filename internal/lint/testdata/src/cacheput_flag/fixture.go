// Package engine (fixture) exercises cacheput: plan-cache entries may only
// be published through the invalidation-aware Put helper; raw map writes
// and lru pushes are flagged everywhere outside the blessed methods.
package engine

import (
	"container/list"
	"sync"
)

type planDecisions struct {
	tables []string
	size   int64
}

type planCacheEntry struct {
	key string
	d   *planDecisions
}

type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List
	bytes   int64
}

// NewPlanCache is blessed: constructing the containers is not publication.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[string]*list.Element{}, lru: list.New()}
}

// Put is the blessed publication path.
func (c *PlanCache) Put(key string, d *planDecisions) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, d: d})
	c.bytes += d.size
}

// Get is blessed: recency moves are part of the cache's own bookkeeping.
func (c *PlanCache) Get(key string) (*planDecisions, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(elem)
	return elem.Value.(*planCacheEntry).d, true
}

// removeLocked is the blessed unlink path.
func (c *PlanCache) removeLocked(elem *list.Element) {
	e := elem.Value.(*planCacheEntry)
	delete(c.entries, e.key)
	c.lru.Remove(elem)
	c.bytes -= e.d.size
}

// BadPublish bypasses Put: the entry enters with no byte accounting and no
// table list for invalidation.
func (c *PlanCache) BadPublish(key string, d *planDecisions) {
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, d: d}) // want `only through the invalidation-aware Put helper`
}

// BadUnlink bypasses removeLocked: gauges drift.
func (c *PlanCache) BadUnlink(key string) {
	if elem, ok := c.entries[key]; ok {
		delete(c.entries, key) // want `only through the invalidation-aware Put helper`
		c.lru.Remove(elem)     // want `only through the invalidation-aware Put helper`
	}
}

// badFreeFunc shows the check is not limited to methods.
func badFreeFunc(c *PlanCache) {
	c.lru.Init() // want `only through the invalidation-aware Put helper`
}

// goodReads stay allowed: lookups and length checks are not publication.
func goodReads(c *PlanCache, key string) int {
	if _, ok := c.entries[key]; ok {
		return c.lru.Len()
	}
	return len(c.entries)
}

// goodUsesHelper routes publication through the blessed path.
func goodUsesHelper(c *PlanCache, key string, d *planDecisions) {
	c.Put(key, d)
}

// Annotated documents a deliberate bypass.
func Annotated(c *PlanCache) {
	c.lru.Init() //bytecard:cacheput-ok fixture: tearing down a cache that was never published to
}

// NoReason has the annotation but no justification.
func NoReason(c *PlanCache, key string) {
	//bytecard:cacheput-ok
	delete(c.entries, key) // want `annotation needs a reason`
}

// otherList proves the check is scoped to PlanCache: unrelated lists with
// the same method names stay allowed.
type otherList struct {
	lru     *list.List
	entries map[string]int
}

func goodOtherContainers(o *otherList) {
	o.lru.Init()
	o.entries["k"] = 1
	delete(o.entries, "k")
}
