// Package core mirrors the real core package's shape: estclamp only runs in
// a package named core, over methods of a type named Estimator whose first
// result is float64.
package core

import "math"

// Guard stands in for core.Guard; Sanitize is a recognized clamp source.
type Guard struct{}

func (g *Guard) Sanitize(key string, v, lo, hi float64) (float64, error) {
	return math.Min(hi, math.Max(lo, v)), nil
}

// Estimator stands in for core.Estimator.
type Estimator struct {
	Guard *Guard
}

// clampEst is the package clamp helper the analyzer recognizes by the clamp*
// naming convention.
func clampEst(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// Raw returns bare arithmetic: nothing bounds the product.
func (e *Estimator) Raw(sel, rows float64) float64 {
	return sel * rows // want `without a guard clamp`
}

// ViaVar launders the arithmetic through a local; provenance still traces it.
func (e *Estimator) ViaVar(sel, rows float64) float64 {
	v := sel * rows
	return v // want `without a guard clamp`
}

// Clamped uses the package clamp helper.
func (e *Estimator) Clamped(sel, rows float64) float64 {
	return clampEst(sel*rows, 0, rows)
}

// Bounded applies explicit math.Max / math.Min bounds.
func (e *Estimator) Bounded(sel, rows float64) float64 {
	return math.Max(1, math.Min(sel*rows, rows))
}

// Sanitized flows through Guard.Sanitize.
func (e *Estimator) Sanitized(sel, rows float64) float64 {
	v, err := e.Guard.Sanitize("k", sel*rows, 0, rows)
	if err != nil {
		return 0
	}
	return v
}

// Delegates returns another Estimator method's result, which is checked at
// its own definition.
func (e *Estimator) Delegates(sel, rows float64) float64 {
	return e.Clamped(sel, rows)
}

// ViaClosure returns through a local closure whose returns are all clamped.
func (e *Estimator) ViaClosure(sel, rows float64) float64 {
	f := func() float64 { return clampEst(sel*rows, 0, rows) }
	return f()
}

// Annotated documents why the raw expression cannot leave range.
func (e *Estimator) Annotated(sel, rows float64) float64 {
	//bytecard:clamp-ok fixture: both factors are sanitized upstream and rows bounds the product
	return sel * rows
}

// NoReason carries the annotation without a justification.
func (e *Estimator) NoReason(sel, rows float64) float64 {
	//bytecard:clamp-ok
	return sel * rows // want `annotation needs a reason`
}

// helper is not an Estimator method, so its raw return is out of scope.
func helper(sel, rows float64) float64 {
	return sel * rows
}
