// Package core is an allowed caller: it hosts the guarded ladder, so its raw
// entry-point calls are the mechanism, not a violation.
package core

import "bytecard/internal/bn"

func Ladder(c *bn.Context, w [][]float64) float64 {
	return c.Prob(w)
}
