// Package par is the negative fixture: the real internal/par is the one
// blessed spawner, so a package named par may use bare go statements.
package par

// Fan mirrors the worker-spawn shape internal/par itself uses.
func Fan(workers int, f func(int)) {
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer func() { done <- struct{}{} }()
			f(worker)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
