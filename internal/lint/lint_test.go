package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader builds one export-data loader over the whole module: both the
// fixture suites (which type-check testdata against real bytecard packages)
// and the repo-wide integration test read from it.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = LoadPackages(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("loading module packages: %v", loaderErr)
	}
	return loaderVal
}

// wantRe matches the analysistest-style expectation comment: a trailing
// "// want `regexp`" on the line a diagnostic should land on.
var wantRe = regexp.MustCompile("want `([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// collectWants scans fixture comments for expectations, keyed by line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					out = append(out, &expectation{re: re, line: fset.Position(c.Pos()).Line})
				}
			}
		}
	}
	return out
}

// runFixture type-checks one testdata package and asserts the analyzer's
// diagnostics exactly match its want comments.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	loader := sharedLoader(t)
	files, pkg, info, err := loader.CheckDir(dir)
	if err != nil {
		t.Fatalf("checking %s: %v", dir, err)
	}
	results, err := runAnalyzers([]*Analyzer{a}, loader.Fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, loader.Fset, files)
	for _, res := range results {
		for _, d := range res.Diags {
			pos := loader.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if !w.matched && w.line == pos.Line && w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
			}
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic at line %d matching %q, got none", w.line, w.re)
		}
	}
}

// TestAnalyzerFixtures runs every analyzer over its positive and negative
// testdata packages. Each positive fixture proves the analyzer fires; each
// negative fixture proves the idioms and annotations it must accept.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixtures []string
	}{
		{MapIter, []string{"mapiter_flag", "mapiter_other"}},
		{AtomicWrite, []string{"atomicwrite_flag", "atomicwrite_other"}},
		{CachePut, []string{"cacheput_flag", "cacheput_residual"}},
		{GuardCall, []string{"guardcall_flag", "guardcall_core"}},
		{RandSource, []string{"randsource_flag"}},
		{PoolHygiene, []string{"poolhygiene_flag"}},
		{EstClamp, []string{"estclamp_flag"}},
		{ScanRead, []string{"scanread_flag"}},
		{LockSafe, []string{"locksafe_flag"}},
		{AtomicField, []string{"atomicfield_flag"}},
		{CtxFlow, []string{"ctxflow_flag"}},
		{GoroutineSrc, []string{"goroutinesrc_flag", "goroutinesrc_par"}},
	}
	for _, tc := range cases {
		for _, fixture := range tc.fixtures {
			t.Run(tc.analyzer.Name+"/"+fixture, func(t *testing.T) {
				runFixture(t, tc.analyzer, filepath.Join("testdata", "src", fixture))
			})
		}
	}
}

// TestRepoIsClean is the integration bar: the full analyzer suite must run
// over every package of this repository without a single diagnostic. New
// violations either get fixed or get an annotated reason; they never land
// silently.
func TestRepoIsClean(t *testing.T) {
	loader := sharedLoader(t)
	for _, pkgPath := range loader.Packages() {
		results, err := loader.Run(pkgPath, All())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkgPath, err)
		}
		for _, res := range results {
			for _, d := range res.Diags {
				t.Errorf("%s: %s: %s", res.Analyzer, loader.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}

// TestVetToolProtocol builds the multichecker binary and runs it under
// `go vet -vettool=` — the full driver handshake (-V=full, -flags, per
// package .cfg) against a real package.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("building the vettool binary is slow; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "bytecard-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/bytecard-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/bn/...", "./internal/core/...", "./internal/engine/...",
		"./internal/modelstore/...", "./internal/modelforge/...", "./internal/par/...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestParseAnnotation pins the annotation grammar.
func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		comment    string
		wantOK     bool
		wantName   string
		wantReason string
	}{
		{"//bytecard:unordered-ok keys sorted downstream", true, "unordered", "keys sorted downstream"},
		{"//bytecard:pool-ok", true, "pool", ""},
		{"//bytecard:rand-ok   spaced   reason", true, "rand", "spaced   reason"},
		{"// ordinary comment", false, "", ""},
		{"//bytecard:unordered", false, "", ""},
		{"//bytecard:-ok no name", false, "", ""},
	}
	for _, tc := range cases {
		a, ok := parseAnnotation(&ast.Comment{Text: tc.comment})
		if ok != tc.wantOK {
			t.Errorf("parseAnnotation(%q) ok = %v, want %v", tc.comment, ok, tc.wantOK)
			continue
		}
		if ok && (a.name != tc.wantName || a.reason != tc.wantReason) {
			t.Errorf("parseAnnotation(%q) = (%q, %q), want (%q, %q)", tc.comment, a.name, a.reason, tc.wantName, tc.wantReason)
		}
	}
}

// TestSuppressionPlacement verifies same-line and line-above placement, and
// that an empty reason does not suppress.
func TestSuppressionPlacement(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //bytecard:demo-ok same line
	//bytecard:demo-ok line above
	_ = 2
	//bytecard:demo-ok
	_ = 3
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{file}, annotations: indexAnnotations(fset, []*ast.File{file})}
	posOnLine := func(line int) token.Pos {
		tf := fset.File(file.Pos())
		return tf.LineStart(line)
	}
	if !pass.Suppressed("demo", posOnLine(4)) {
		t.Error("same-line annotation should suppress")
	}
	if !pass.Suppressed("demo", posOnLine(6)) {
		t.Error("line-above annotation should suppress")
	}
	if pass.Suppressed("demo", posOnLine(8)) {
		t.Error("reasonless annotation must not suppress")
	}
	if !pass.MissingReason("demo", posOnLine(8)) {
		t.Error("reasonless annotation should report MissingReason")
	}
	if pass.Suppressed("other", posOnLine(4)) {
		t.Error("annotation key must match the analyzer key")
	}
}

// TestDiagnosticFormat pins the file:line:col rendering the drivers print,
// which CI greps and editors parse.
func TestDiagnosticFormat(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("demo.go", -1, 100)
	f.SetLines([]int{0, 10, 20})
	pos := f.Pos(12)
	got := fmt.Sprintf("%s: %s", fset.Position(pos), "mapiter: message")
	want := "demo.go:2:3: mapiter: message"
	if got != want {
		t.Errorf("diagnostic format = %q, want %q", got, want)
	}
}

// TestSelectAnalyzers pins the vet flag-selection semantics.
func TestSelectAnalyzers(t *testing.T) {
	all := All()
	names := func(as []*Analyzer) string {
		var n []string
		for _, a := range as {
			n = append(n, a.Name)
		}
		return strings.Join(n, ",")
	}
	run := func(args ...string) string {
		fs, enabled := newFlagParsing(all)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return names(selectAnalyzers(fs, all, enabled))
	}
	if got := run(); got != names(all) {
		t.Errorf("no flags: got %q, want all", got)
	}
	if got := run("-mapiter"); got != "mapiter" {
		t.Errorf("-mapiter: got %q", got)
	}
	if got := run("-mapiter", "-randsource"); got != "mapiter,randsource" {
		t.Errorf("two positive flags: got %q", got)
	}
	if got := run("-mapiter=false"); got != "atomicfield,atomicwrite,cacheput,ctxflow,estclamp,goroutinesrc,guardcall,locksafe,poolhygiene,randsource,scanread" {
		t.Errorf("-mapiter=false: got %q", got)
	}
}
