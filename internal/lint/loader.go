package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Loader type-checks module packages from source, resolving every import
// through compiler export data produced by `go list -export`. It needs the
// go toolchain but no network and no third-party packages — the same
// contract as the rest of this repository.
type Loader struct {
	Fset *token.FileSet
	// pkgs holds the module's own packages in `go list` order.
	pkgs []*listPackage
	// exportFile maps import path → export data file for the full -deps
	// closure (standard library included).
	exportFile map[string]string
	imp        types.Importer
}

// LoadPackages runs `go list -json -export -deps patterns` in dir and
// prepares a loader over the module packages it reports.
func LoadPackages(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{Fset: token.NewFileSet(), exportFile: map[string]string{}}
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exportFile[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			cp := p
			l.pkgs = append(l.pkgs, &cp)
		}
	}
	l.imp = l.newImporter()
	return l, nil
}

// newImporter builds a gc-export-data importer over the recorded files.
func (l *Loader) newImporter() types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exportFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(l.Fset, "gc", lookup)
}

// Packages returns the import paths of the loaded module packages.
func (l *Loader) Packages() []string {
	out := make([]string, len(l.pkgs))
	for i, p := range l.pkgs {
		out[i] = p.ImportPath
	}
	return out
}

// Check parses and type-checks one loaded package from source. Only
// GoFiles are analyzed: _test.go files are exempt from every project
// analyzer, and the vet driver presents them through its own config when
// running under `go vet`.
func (l *Loader) Check(pkgPath string) ([]*ast.File, *types.Package, *types.Info, error) {
	var lp *listPackage
	for _, p := range l.pkgs {
		if p.ImportPath == pkgPath {
			lp = p
			break
		}
	}
	if lp == nil {
		return nil, nil, nil, fmt.Errorf("lint: package %q not loaded", pkgPath)
	}
	if len(lp.CgoFiles) > 0 {
		return nil, nil, nil, fmt.Errorf("lint: package %q uses cgo (unsupported)", pkgPath)
	}
	var names []string
	for _, f := range lp.GoFiles {
		names = append(names, filepath.Join(lp.Dir, f))
	}
	return l.checkFiles(pkgPath, names)
}

// CheckDir parses every .go file in dir as a single package and
// type-checks it against the loader's export data — the analysistest path:
// testdata packages may import the standard library and bytecard packages
// alike, as long as each import appears in the module's dependency closure.
func (l *Loader) CheckDir(dir string) ([]*ast.File, *types.Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.checkFiles("test/"+filepath.Base(dir), names)
}

func (l *Loader) checkFiles(pkgPath string, names []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return files, pkg, info, nil
}

// Run type-checks one package and applies the analyzers.
func (l *Loader) Run(pkgPath string, analyzers []*Analyzer) ([]PackageResult, error) {
	files, pkg, info, err := l.Check(pkgPath)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(analyzers, l.Fset, files, pkg, info)
}
