package lint

import (
	"go/ast"
)

// ScanRead flags direct storage.Column data access from the query engine.
//
// Under the pushdown scan contract every block the executor touches must be
// charged to the query's IOStats exactly once — that accounting is what the
// scan_pushdown bench floor, the 1-vs-N-worker parity tests, and EXPLAIN's
// predicted-vs-actual block annotations all measure. storage.Column.Value,
// Numeric, and NumericAll read block data without charging anything, so a
// call from internal/engine silently under-reports I/O and can diverge
// between worker counts. Engine code must read through the blessed scan
// entry points that share per-column charge state: storage.Reader
// (Value/Numeric/LoadAll/LoadRange) or storage.BlockScan. The brute-force
// reference executor deliberately bypasses accounting (it is the
// correctness oracle, not a measured path) and carries
// //bytecard:rawscan-ok annotations.
var ScanRead = &Analyzer{
	Name: "scanread",
	Doc: "flag direct storage.Column data access from the query engine\n\n" +
		"Engine reads must flow through storage.Reader or storage.BlockScan so\n" +
		"every block is charged to IOStats exactly once. Read through a Reader,\n" +
		"or annotate deliberate unaccounted reads with\n" +
		"//bytecard:rawscan-ok <reason>.",
	Run: runScanRead,
}

// scanReadMethods is the unaccounted data-reading surface of storage.Column.
// Metadata accessors (Name, Kind, Len, NumBlocks, ZoneRange, DictSize) read
// no block data and stay free.
var scanReadMethods = map[string]bool{
	"Value":      true,
	"Numeric":    true,
	"NumericAll": true,
}

func runScanRead(pass *Pass) error {
	// Only the engine package carries the charge-once invariant; storage
	// itself, model training, and workload generation read columns freely.
	if pass.Pkg.Name() != "engine" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !scanReadMethods[fn.Name()] {
				return true
			}
			if recvTypeName(fn) != "Column" || !pathHasSuffix(pkgPathOf(fn), "internal/storage") {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if pass.MissingReason("rawscan", call.Pos()) {
				pass.Reportf(call.Pos(), "scanread: //bytecard:rawscan-ok annotation needs a reason explaining why this read skips I/O accounting")
				return true
			}
			if pass.Suppressed("rawscan", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "scanread: direct storage.Column.%s bypasses the charge-once scan contract (no IOStats charge, no zone-map consultation); read through storage.Reader or storage.BlockScan, or annotate with //bytecard:rawscan-ok <reason>", fn.Name())
			return true
		})
	}
	return nil
}
