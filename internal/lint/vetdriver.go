package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON config `go vet` writes for each package when
// driving an external tool via -vettool (cmd/go's vetConfig). Only the
// fields this driver consumes are declared; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements the -V=full handshake `go vet` performs to derive
// a build ID for caching: a single line naming the executable and a content
// hash, in the exact shape cmd/go's toolID parser accepts.
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(progname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
}

// jsonFlag is the -flags handshake item `go vet` uses to learn which flags
// the tool accepts.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// printFlags implements the -flags handshake.
func printFlags(analyzers []*Analyzer) {
	flags := []jsonFlag{{Name: "V", Bool: true, Usage: "print version and exit"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable only the " + a.Name + " analysis"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	os.Exit(0)
}

// runVetConfig analyzes the single package described by a vet .cfg file and
// exits with go vet's expected status: 0 clean, 1 findings or failure.
func runVetConfig(cfgFile string, analyzers []*Analyzer) {
	blob, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}

	// This tool exports no analysis facts, but go vet expects the vetx
	// output file of every package it schedules; write it first so even a
	// diagnostic-bearing run leaves the protocol satisfied.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency package scheduled only for facts: nothing to do.
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return gcImp.Import(importPath)
	})

	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	results, err := runAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fatalf("%v", err)
	}
	exit := 0
	for _, res := range results {
		for _, d := range res.Diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bytecard-lint: "+format+"\n", args...)
	os.Exit(1)
}
