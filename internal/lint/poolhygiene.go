package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolHygiene flags sync.Pool.Get results that can leave a function without a
// matching Put on every return path.
//
// The BN scratch-buffer pool (and any future pool) only amortizes allocation
// if gotten values reliably come back: a return path that skips Put silently
// degrades the pool to a per-call allocator, which shows up as GC pressure
// under estimation load, not as a test failure. The analyzer tracks three
// release shapes — a direct Pool.Put, a call to a putter wrapper (a function
// in the same package that forwards a parameter to Pool.Put), and a deferred
// form of either — and two transfer shapes that end responsibility: returning
// the pooled value itself (getter wrappers), and handing the value to a
// function literal it cannot see through. Anything else that reaches a return
// statement while a gotten value is live is reported at the Get site.
// Deliberate leaks (values whose interior pointers escape) carry
// //bytecard:pool-ok <reason>.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc: "flag sync.Pool.Get without Put on every return path\n\n" +
		"A missed Put turns the pool into a per-call allocator. Release the\n" +
		"value (directly, via a putter wrapper, or deferred) before every\n" +
		"return, return it to transfer ownership, or annotate the Get with\n" +
		"//bytecard:pool-ok <reason>.",
	Run: runPoolHygiene,
}

func runPoolHygiene(pass *Pass) error {
	getters, putters := classifyPoolWrappers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			w := &poolWalker{pass: pass, getters: getters, putters: putters}
			w.walkStmts(fd.Body.List)
			w.atExit()
		}
	}
	return nil
}

// isPoolMethod reports whether call invokes (*sync.Pool).name.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || pkgPathOf(fn) != "sync" {
		return false
	}
	return recvTypeName(fn) == "Pool"
}

// classifyPoolWrappers finds the package's getter wrappers (functions that
// return a Pool.Get result directly) and putter wrappers (functions that
// forward a parameter to Pool.Put), so call sites through them are tracked
// like the underlying pool operations.
func classifyPoolWrappers(pass *Pass) (getters, putters map[*types.Func]bool) {
	getters = map[*types.Func]bool{}
	putters = map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			params := map[types.Object]bool{}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if def := pass.TypesInfo.Defs[name]; def != nil {
							params[def] = true
						}
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPoolMethod(pass.TypesInfo, call, "Put") && len(call.Args) == 1 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
						putters[obj] = true
					}
				}
				return true
			})
			for _, ret := range funcBodyReturns(fd.Body) {
				for _, res := range ret.Results {
					if call, ok := stripToCall(res); ok && isPoolMethod(pass.TypesInfo, call, "Get") {
						getters[obj] = true
					}
				}
			}
		}
	}
	return getters, putters
}

// stripToCall unwraps parens and type assertions down to a call expression.
func stripToCall(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		case *ast.CallExpr:
			return t, true
		default:
			return nil, false
		}
	}
}

// acquisition tracks one live pooled value inside a function body.
type acquisition struct {
	pos      token.Pos
	obj      types.Object // local variable holding the value
	released bool         // Put (or transfer) observed before the current point
	deferred bool         // a deferred Put covers every later return
	reported bool
}

// poolWalker performs a positional (source-order) walk of one function body.
// It is deliberately flow-insensitive across branches: a Put inside an if
// counts as a release for everything after it. That trades a little soundness
// for zero false positives on the codebase's linear get→use→put shape.
type poolWalker struct {
	pass    *Pass
	getters map[*types.Func]bool
	putters map[*types.Func]bool
	live    []*acquisition
}

// isAcquire reports whether e acquires a pooled value (Pool.Get or a getter
// wrapper call, possibly behind parens/type assertion).
func (w *poolWalker) isAcquire(e ast.Expr) bool {
	call, ok := stripToCall(e)
	if !ok {
		return false
	}
	if isPoolMethod(w.pass.TypesInfo, call, "Get") {
		return true
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	return fn != nil && w.getters[fn]
}

// releaseTarget returns the object released by a Put / putter call, if any.
func (w *poolWalker) releaseTarget(call *ast.CallExpr) types.Object {
	isPut := isPoolMethod(w.pass.TypesInfo, call, "Put")
	if !isPut {
		fn := calleeFunc(w.pass.TypesInfo, call)
		if fn == nil || !w.putters[fn] {
			return nil
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func (w *poolWalker) find(obj types.Object) *acquisition {
	if obj == nil {
		return nil
	}
	for _, a := range w.live {
		if a.obj == obj {
			return a
		}
	}
	return nil
}

func (w *poolWalker) markReleased(obj types.Object) {
	if a := w.find(obj); a != nil {
		a.released = true
	}
}

func (w *poolWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *poolWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if !w.isAcquire(rhs) {
				continue
			}
			var lhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				lhs = s.Lhs[i]
			} else if len(s.Lhs) > 0 {
				lhs = s.Lhs[0]
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				w.report(rhs.Pos(), "poolhygiene: sync.Pool.Get result is not bound to a local variable; its Put cannot be verified")
				continue
			}
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = w.pass.TypesInfo.Uses[id]
			}
			w.live = append(w.live, &acquisition{pos: rhs.Pos(), obj: obj})
		}
		w.scanFuncLits(s)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if obj := w.releaseTarget(call); obj != nil {
				w.markReleased(obj)
				return
			}
		}
		w.scanFuncLits(s)
	case *ast.DeferStmt:
		if obj := w.releaseTarget(s.Call); obj != nil {
			if a := w.find(obj); a != nil {
				a.deferred = true
			}
			return
		}
		// defer func() { ... putScratch(sc) ... }(): scan the literal body
		// for releases of tracked values.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := w.releaseTarget(call); obj != nil {
						if a := w.find(obj); a != nil {
							a.deferred = true
						}
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		w.atReturn(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmts(s.Body.List)
	case *ast.RangeStmt:
		w.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		w.scanFuncLits(s)
	default:
		w.scanFuncLits(s)
	}
}

// scanFuncLits handles two jobs for any statement: analyze nested function
// literals as independent bodies, and treat a tracked value captured by a
// literal as transferred (the walker cannot see when the closure runs).
func (w *poolWalker) scanFuncLits(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := &poolWalker{pass: w.pass, getters: w.getters, putters: w.putters}
		inner.walkStmts(lit.Body.List)
		inner.atExit()
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if a := w.find(w.pass.TypesInfo.Uses[id]); a != nil {
					a.released = true // ownership escapes into the closure
				}
			}
			return true
		})
		return false
	})
}

// atReturn reports live acquisitions at a return statement. Returning the
// pooled value itself transfers ownership to the caller (the getter-wrapper
// pattern) and ends tracking.
func (w *poolWalker) atReturn(ret *ast.ReturnStmt) {
	// A closure in the results may carry the release with it (the caller
	// invokes it later); scanFuncLits marks its captures as transferred.
	w.scanFuncLits(ret)
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			w.markReleased(w.pass.TypesInfo.Uses[id])
		}
	}
	for _, a := range w.live {
		if a.released || a.deferred || a.reported {
			continue
		}
		a.reported = true
		w.reportAt(a)
	}
}

// atExit treats falling off the end of the body like a return.
func (w *poolWalker) atExit() {
	for _, a := range w.live {
		if a.released || a.deferred || a.reported {
			continue
		}
		a.reported = true
		w.reportAt(a)
	}
}

func (w *poolWalker) reportAt(a *acquisition) {
	w.report(a.pos, "poolhygiene: sync.Pool value may escape without a matching Put on some return path; release it before every return, return it to transfer ownership, or annotate with //bytecard:pool-ok <reason>")
}

func (w *poolWalker) report(pos token.Pos, msg string) {
	if w.pass.MissingReason("pool", pos) {
		w.pass.Reportf(pos, "poolhygiene: //bytecard:pool-ok annotation needs a reason explaining why the value is not returned to the pool")
		return
	}
	if w.pass.Suppressed("pool", pos) {
		return
	}
	w.pass.Reportf(pos, "%s", msg)
}
