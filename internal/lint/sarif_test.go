package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFShape pins the SARIF 2.1.0 surface CI uploads: schema pointer,
// version, driver identity, one rule per analyzer, and results carrying
// rule IDs, physical locations, and stable fingerprints.
func TestSARIFShape(t *testing.T) {
	findings := []Finding{
		{Analyzer: "locksafe", File: "internal/core/engine.go", Line: 42, Column: 2, Message: "locksafe: demo"},
		{Analyzer: "ctxflow", File: "internal/modelforge/modelforge.go", Line: 7, Column: 9, Message: "ctxflow: demo"},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, All(), findings); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema is empty")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bytecard-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(All()); got != want {
		t.Errorf("rules = %d, want one per analyzer (%d)", got, want)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %q missing id or shortDescription", r.ID)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(findings))
	}
	res := run.Results[0]
	if res.RuleID != "locksafe" || res.Level != "error" || res.Message.Text != "locksafe: demo" {
		t.Errorf("result 0 = %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/engine.go" || loc.Region.StartLine != 42 || loc.Region.StartColumn != 2 {
		t.Errorf("location = %+v", loc)
	}
	if res.PartialFingerprints["bytecardFingerprint/v1"] != findings[0].Fingerprint() {
		t.Error("partialFingerprints does not carry the baseline fingerprint")
	}
}

// TestFingerprintStability pins the suppression identity: analyzer, file,
// and message participate; line and column do not, so code motion within a
// file does not churn the baseline.
func TestFingerprintStability(t *testing.T) {
	a := Finding{Analyzer: "locksafe", File: "a.go", Line: 10, Column: 3, Message: "m"}
	b := Finding{Analyzer: "locksafe", File: "a.go", Line: 99, Column: 1, Message: "m"}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint must ignore position")
	}
	for _, diff := range []Finding{
		{Analyzer: "ctxflow", File: "a.go", Message: "m"},
		{Analyzer: "locksafe", File: "b.go", Message: "m"},
		{Analyzer: "locksafe", File: "a.go", Message: "other"},
	} {
		if a.Fingerprint() == diff.Fingerprint() {
			t.Errorf("fingerprint collision with %+v", diff)
		}
	}
}

// TestBaselineRoundTrip exercises write → load → match.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	known := Finding{Analyzer: "goroutinesrc", File: "internal/engine/exec.go", Line: 5, Message: "goroutinesrc: demo"}
	if err := WriteBaseline(path, []Finding{known, known}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 {
		t.Errorf("duplicate fingerprints must collapse: got %d entries", len(b.Findings))
	}
	if !b.Contains(known) {
		t.Error("baseline must contain the written finding")
	}
	moved := known
	moved.Line = 500
	if !b.Contains(moved) {
		t.Error("baseline match must survive line motion")
	}
	other := known
	other.Message = "goroutinesrc: different"
	if b.Contains(other) {
		t.Error("baseline must not match a different message")
	}
}

// TestBaselineMissingFile pins the missing-file convention: an absent
// baseline is an empty one, so -baseline can always point at the
// conventional path.
func TestBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 || b.Version != 1 {
		t.Errorf("missing baseline = %+v, want empty v1", b)
	}
}

// TestCommittedBaselineIsEmpty enforces the repo contract: every finding
// is fixed or annotated in the PR that introduces it; the committed ledger
// stays empty. CI additionally diffs the file against this empty state.
func TestCommittedBaselineIsEmpty(t *testing.T) {
	path := filepath.Join("..", "..", "lint-baseline.json")
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("lint-baseline.json must be committed at the repo root: %v", err)
	}
	for _, e := range b.Findings {
		t.Errorf("baselined finding must be fixed or annotated, not suppressed: %s %s: %s", e.Analyzer, e.File, e.Message)
	}
}
