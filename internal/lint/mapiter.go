package lint

import (
	"go/ast"
	"go/token"
)

// MapIter flags `for range` over maps in determinism-critical packages.
//
// ByteCard's estimates must be reproducible: the same workload trained and
// queried twice has to produce byte-identical models and identical plans, or
// regression diffing, the model-staleness monitor, and A/B accounting all
// break. Go randomizes map iteration order on purpose, so any map range in a
// package on the determinism-critical list (bn, factorjoin, modelforge,
// engine, modelstore) is suspect unless either
//
//   - the loop body is provably order-insensitive (pure collection into a
//     slice that is sorted elsewhere, commutative integer accumulation,
//     keyed copies/deletes), or
//   - the site carries a //bytecard:unordered-ok <reason> annotation.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration in determinism-critical packages\n\n" +
		"Map range order is randomized by the runtime; in packages that train\n" +
		"models, serialize artifacts, or plan queries it silently breaks\n" +
		"reproducibility. Sort the keys first, or annotate the loop with\n" +
		"//bytecard:unordered-ok <reason> when order provably cannot matter.",
	Run: runMapIter,
}

// mapiterPackages lists package *names* on the determinism-critical list.
// Matching by name (not full path) lets the analyzer cover the testdata
// fixture packages in its own test suite with the same code path.
var mapiterPackages = map[string]bool{
	"bn":         true,
	"factorjoin": true,
	"modelforge": true,
	"engine":     true,
	"modelstore": true,
}

func runMapIter(pass *Pass) error {
	if !mapiterPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			if pass.InTestFile(rs.Pos()) {
				return true
			}
			if pass.MissingReason("unordered", rs.Pos()) {
				pass.Reportf(rs.Pos(), "mapiter: //bytecard:unordered-ok annotation needs a reason explaining why iteration order cannot matter")
				return true
			}
			if pass.Suppressed("unordered", rs.Pos()) {
				return true
			}
			if orderInsensitiveLoop(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(), "mapiter: map iteration order is nondeterministic in determinism-critical package %q; sort the keys first or annotate with //bytecard:unordered-ok <reason>", pass.Pkg.Name())
			return true
		})
	}
	return nil
}

// orderInsensitiveLoop reports whether every statement in the loop body is in
// the conservative order-insensitive grammar: append-accumulation, integer
// commutative op-assign, keyed map writes/deletes using the loop key,
// continue, and if/else composed of only those. Anything else — float
// accumulation, I/O, channel sends, early returns, calls — disqualifies the
// loop and the site must sort or annotate.
func orderInsensitiveLoop(pass *Pass, rs *ast.RangeStmt) bool {
	keyName := ""
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	return orderInsensitiveStmts(pass, rs.Body.List, keyName)
}

func orderInsensitiveStmts(pass *Pass, stmts []ast.Stmt, keyName string) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, s, keyName) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt, keyName string) bool {
	info := pass.TypesInfo
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			// x = append(x, ...): collecting into a slice is order-insensitive
			// here because every such slice must be sorted before use (the
			// collect-then-sort idiom); the appended elements may reference
			// the loop variables freely.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" && len(call.Args) >= 2 {
					if ls := exprString(lhs); ls != "" && ls == exprString(call.Args[0]) {
						return true
					}
				}
			}
			// dst[k] = ...: keyed write through the loop key visits each key
			// exactly once regardless of order, provided the value expression
			// has no calls (calls may observe intermediate state).
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyName != "" {
				if exprString(idx.Index) == keyName && !containsCall(info, rhs) {
					return true
				}
			}
			return false
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (rounding depends on summation order).
			return isIntegerExpr(info, lhs) && !containsCall(info, rhs)
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerExpr(info, s.X)
	case *ast.ExprStmt:
		// delete(m, k) keyed by the loop key.
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok || keyName == "" {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "delete" || len(call.Args) != 2 {
			return false
		}
		return exprString(call.Args[1]) == keyName
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil || containsCall(info, s.Cond) {
			return false
		}
		if !orderInsensitiveStmts(pass, s.Body.List, keyName) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveStmts(pass, e.List, keyName)
		case *ast.IfStmt:
			return orderInsensitiveStmt(pass, e, keyName)
		}
		return false
	case *ast.BlockStmt:
		return orderInsensitiveStmts(pass, s.List, keyName)
	}
	return false
}
