package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EstClamp flags float estimates that reach the engine without passing
// through a guard clamp.
//
// core.Estimator is the boundary between learned models and the query
// planner: every float64 it hands to the engine must be finite and inside the
// [lo, hi] bounds of the quantity being estimated, or join ordering silently
// degrades on a NaN/Inf/negative cardinality. The guarded() ladder and
// Guard.Sanitize enforce that for model outputs, but arithmetic performed
// *after* the ladder (selectivity × rowcount, products over join conditions)
// can reintroduce out-of-range values. The analyzer checks every Estimator
// method whose first result is float64 and requires each returned expression
// to have clamped provenance: produced by guarded()/Sanitize/a clamp* helper/
// math.Max/math.Min, delegated to another Estimator method or the fallback
// estimator, or a literal. Raw arithmetic must be wrapped (clampEst) or
// annotated with //bytecard:clamp-ok <reason>.
var EstClamp = &Analyzer{
	Name: "estclamp",
	Doc: "flag unclamped float estimates returned by core.Estimator\n\n" +
		"Estimates returned to the engine must flow through guarded()/Sanitize\n" +
		"or an explicit clamp helper so NaN/Inf/negative values can never reach\n" +
		"the planner. Wrap raw arithmetic in clampEst(v, lo, hi) or annotate\n" +
		"with //bytecard:clamp-ok <reason>.",
	Run: runEstClamp,
}

func runEstClamp(pass *Pass) error {
	if pass.Pkg.Name() != "core" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !isEstimatorFloatMethod(pass.TypesInfo, fd) {
				continue
			}
			checkEstimatorMethod(pass, fd)
		}
	}
	return nil
}

// isEstimatorFloatMethod reports whether fd is a method on Estimator whose
// first result is float64 — the shape through which estimates leave core.
func isEstimatorFloatMethod(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok || recvTypeName(fn) != "Estimator" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// checkEstimatorMethod verifies clamped provenance of the first result of
// every return in fd's own body (returns inside closures feed the guarded
// ladder and are sanitized there).
func checkEstimatorMethod(pass *Pass, fd *ast.FuncDecl) {
	prov := collectProvenance(pass, fd)
	for _, ret := range funcBodyReturns(fd.Body) {
		if len(ret.Results) == 0 {
			continue // bare return with named results: out of scope
		}
		res := ret.Results[0]
		if prov.allowed(res, map[types.Object]bool{}) {
			continue
		}
		if pass.MissingReason("clamp", ret.Pos()) {
			pass.Reportf(ret.Pos(), "estclamp: //bytecard:clamp-ok annotation needs a reason explaining why the estimate cannot leave [lo, hi]")
			continue
		}
		if pass.Suppressed("clamp", ret.Pos()) {
			continue
		}
		pass.Reportf(ret.Pos(), "estclamp: estimate returned to the engine without a guard clamp; wrap it in clampEst(v, lo, hi) (or guarded()/Sanitize/math.Max bounds) or annotate with //bytecard:clamp-ok <reason>")
	}
}

// provenance resolves whether an expression's value is already clamped.
type provenance struct {
	pass *Pass
	// defs maps each local variable to every expression assigned to it.
	defs map[types.Object][]ast.Expr
	// closures maps local function variables to their literals.
	closures map[types.Object]*ast.FuncLit
}

// collectProvenance indexes fd's local assignments so variable returns can be
// traced back to their defining expressions.
func collectProvenance(pass *Pass, fd *ast.FuncDecl) *provenance {
	p := &provenance{pass: pass, defs: map[types.Object][]ast.Expr{}, closures: map[types.Object]*ast.FuncLit{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 && i == 0 {
				rhs = as.Rhs[0] // v, err := call()
			} else {
				continue
			}
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
				p.closures[obj] = lit
				continue
			}
			p.defs[obj] = append(p.defs[obj], rhs)
		}
		return true
	})
	return p
}

// allowed reports whether e has clamped provenance. visiting breaks cycles
// between mutually-assigned variables.
func (p *provenance) allowed(e ast.Expr, visiting map[types.Object]bool) bool {
	info := p.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.UnaryExpr:
		// Negated literals (e.g. the -1 error sentinel) are deliberate.
		if _, ok := ast.Unparen(e.X).(*ast.BasicLit); ok {
			return true
		}
		return false
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true
		}
		exprs, ok := p.defs[obj]
		if !ok || visiting[obj] {
			return false
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		for _, def := range exprs {
			if !p.allowed(def, visiting) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		return p.allowedCall(e, visiting)
	}
	return false
}

// allowedCall reports whether a call produces a clamped value.
func (p *provenance) allowedCall(call *ast.CallExpr, visiting map[types.Object]bool) bool {
	info := p.pass.TypesInfo
	// float64(n) over an integer is an exact count, already in range.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return isIntegerExpr(info, call.Args[0])
	}
	// A call through a local closure variable: clamped iff every return of
	// the closure body is.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if lit, ok := p.closures[info.Uses[id]]; ok {
			for _, ret := range funcBodyReturns(lit.Body) {
				if len(ret.Results) == 0 || !p.allowed(ret.Results[0], visiting) {
					return false
				}
			}
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	path, recv := pkgPathOf(fn), recvTypeName(fn)
	switch {
	case path == "math" && (fn.Name() == "Max" || fn.Name() == "Min"):
		// Explicit bound application — the caller chose lo/hi.
		return true
	case recv == "Estimator":
		// Delegation to another Estimator method; that method is checked on
		// its own.
		return true
	case recv == "Guard" && fn.Name() == "Sanitize":
		return true
	case recv == "CardEstimator" || recv == "NDVEstimator":
		// The engine's own fallback estimators produce engine-safe numbers by
		// construction.
		return true
	case fn.Pkg() == p.pass.Pkg && recv == "" && hasClampName(fn.Name()):
		// Project convention: package-level clamp* helpers in core are the
		// blessed clamp primitives.
		return true
	}
	return false
}

// hasClampName reports the clamp-helper naming convention.
func hasClampName(name string) bool {
	return len(name) >= 5 && name[:5] == "clamp"
}
