package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is a lightweight static call graph over one package: nodes are
// the package's declared functions and methods, edges are static call sites
// (direct calls, method calls on concrete receivers, and method calls
// through interfaces resolved against the package's own method sets). It is
// built straight from the type-checked AST — no SSA — which is enough for
// the forward-reachability questions the interprocedural analyzers ask:
// can this lock-holding region reach storage I/O, a guarded model call, or
// outbound HTTP through any chain of same-package helpers?
//
// Cross-package callees are leaves: the graph records the edge (so a
// classifier can judge the callee by identity — package path, receiver,
// name) but never descends into bodies it has not parsed. That keeps the
// graph buildable per package under both drivers, standalone and
// `go vet -vettool=`, which present one package's sources at a time.
type CallGraph struct {
	pass *Pass
	// decls maps each function/method declared in the package to its body.
	decls map[*types.Func]*ast.FuncDecl
	// edges maps each declared function to its static call sites in source
	// order. Function-literal bodies nested in a declaration contribute to
	// the declaration's edge list: a closure invoked by a helper (par.Do,
	// sort.Slice) runs on the caller's stack often enough that treating its
	// calls as the enclosing function's is the conservative choice.
	edges map[*types.Func][]CallSite
	// implCache memoizes interface-method → same-package implementations.
	implCache map[*types.Func][]*types.Func
}

// CallSite is one static call edge.
type CallSite struct {
	// Callee is the invoked function (possibly from another package).
	Callee *types.Func
	// Pos is the call expression's position.
	Pos token.Pos
}

// NewCallGraph builds the package's call graph.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		edges:     map[*types.Func][]CallSite{},
		implCache: map[*types.Func][]*types.Func{},
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			g.edges[fn] = append(g.edges[fn], CallSite{Callee: callee, Pos: call.Pos()})
			for _, impl := range g.implementations(callee) {
				g.edges[fn] = append(g.edges[fn], CallSite{Callee: impl, Pos: call.Pos()})
			}
			return true
		})
	}
	return g
}

// Decl returns the body declaration of a function declared in this package
// (nil for external functions and function literals).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns fn's static call sites in source order.
func (g *CallGraph) Callees(fn *types.Func) []CallSite { return g.edges[fn] }

// implementations resolves an interface method to the concrete methods of
// this package's named types that satisfy the interface — the method-set
// half of edge construction. Methods of external types are out of reach
// (their bodies are not loaded), so only same-package implementations
// produce edges; external concrete callees are still classified by
// identity at the call site.
func (g *CallGraph) implementations(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if impls, ok := g.implCache[fn]; ok {
		return impls
	}
	var impls []*types.Func
	scope := g.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, g.pass.Pkg, fn.Name())
		if m, ok := obj.(*types.Func); ok && g.decls[m] != nil {
			impls = append(impls, m)
		}
	}
	g.implCache[fn] = impls
	return impls
}

// ReachedCall describes one match found by a Finder: the classification of
// the matched callee and the call chain (function names, caller first) that
// reaches it from the starting callee.
type ReachedCall struct {
	// Desc is the classifier's description of the matched call.
	Desc string
	// Chain lists the same-package functions traversed to reach the match,
	// outermost first; empty when the starting callee matched directly.
	Chain []string
}

// Finder answers forward-reachability queries over a call graph against one
// classifier, memoizing per function so a repo-wide sweep stays linear in
// the number of edges.
type Finder struct {
	g *CallGraph
	// classify judges one callee by identity; ok=true means the call itself
	// is a match (the walk does not descend into matches).
	classify func(*types.Func) (string, bool)
	memo     map[*types.Func]*ReachedCall // nil value = proven clean
	visiting map[*types.Func]bool
}

// NewFinder creates a reachability finder over g for one classifier.
func (g *CallGraph) NewFinder(classify func(*types.Func) (string, bool)) *Finder {
	return &Finder{g: g, classify: classify, memo: map[*types.Func]*ReachedCall{}, visiting: map[*types.Func]bool{}}
}

// Find reports whether calling fn can reach a classified call: either fn
// itself matches, or (when fn is declared in this package) some chain of
// same-package calls from its body reaches one.
func (f *Finder) Find(fn *types.Func) (ReachedCall, bool) {
	if desc, ok := f.classify(fn); ok {
		return ReachedCall{Desc: desc}, true
	}
	if hit := f.findInBody(fn); hit != nil {
		return *hit, true
	}
	return ReachedCall{}, false
}

// findInBody walks fn's same-package body edges looking for a match.
func (f *Finder) findInBody(fn *types.Func) *ReachedCall {
	if f.g.decls[fn] == nil || f.visiting[fn] {
		return nil
	}
	if hit, done := f.memo[fn]; done {
		return hit
	}
	f.visiting[fn] = true
	defer delete(f.visiting, fn)
	var found *ReachedCall
	for _, site := range f.g.edges[fn] {
		if desc, ok := f.classify(site.Callee); ok {
			found = &ReachedCall{Desc: desc, Chain: []string{fn.Name()}}
			break
		}
		if hit := f.findInBody(site.Callee); hit != nil {
			found = &ReachedCall{Desc: hit.Desc, Chain: append([]string{fn.Name()}, hit.Chain...)}
			break
		}
	}
	f.memo[fn] = found
	return found
}
