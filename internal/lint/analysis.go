// Package lint is ByteCard's domain-specific static-analysis layer: five
// project analyzers (mapiter, guardcall, randsource, poolhygiene, estclamp)
// that turn the codebase's determinism, guard-discipline, and pool-hygiene
// conventions into machine-checked invariants, plus the driver machinery to
// run them — standalone over `go list` output, or under `go vet -vettool=`
// via the vet config protocol.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) so analyzers port verbatim if the
// dependency ever becomes available; it is built on the standard library
// only (go/ast, go/types, go/importer) because this module vendors nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (also its diagnostic prefix
// and its enable flag on the multichecker), user-facing documentation, and
// the function that inspects one package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and annotations.
	Name string
	// Doc is the help text shown by the multichecker.
	Doc string
	// Run inspects one type-checked package, reporting findings through
	// pass.Report. The error return is for operational failures (analysis
	// could not run), not findings.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state through one
// analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files holds the package's parsed sources (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking facts.
	TypesInfo *types.Info
	// Report receives each diagnostic.
	Report func(Diagnostic)

	// annotations indexes //bytecard:*-ok suppression comments per file.
	annotations map[*ast.File]fileAnnotations
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The project
// analyzers police production invariants; tests legitimately iterate maps,
// call models directly, and use ambient randomness.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// fileForPos returns the *ast.File containing pos.
func (p *Pass) fileForPos(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// PackageResult is one package's accumulated diagnostics.
type PackageResult struct {
	// PkgPath is the package under analysis.
	PkgPath string
	// Analyzer names the check that produced Diags.
	Analyzer string
	// Diags is position-sorted.
	Diags []Diagnostic
}

// runAnalyzers executes every analyzer over one type-checked package,
// returning per-analyzer position-sorted diagnostics. Analyzer errors are
// returned as a joined operational failure.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]PackageResult, error) {
	var out []PackageResult
	var errs []string
	ann := indexAnnotations(fset, files)
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:    a,
			Fset:        fset,
			Files:       files,
			Pkg:         pkg,
			TypesInfo:   info,
			annotations: ann,
			Report:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.Name, err))
			continue
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		out = append(out, PackageResult{PkgPath: pkg.Path(), Analyzer: a.Name, Diags: diags})
	}
	if len(errs) > 0 {
		return out, fmt.Errorf("lint: %s", strings.Join(errs, "; "))
	}
	return out, nil
}

// newTypesInfo allocates the full fact set the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
