package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation escape hatch: a finding is suppressed by a comment of the form
//
//	//bytecard:<name>-ok <reason>
//
// on the offending line or the line directly above it, where <name> is the
// analyzer's annotation key (e.g. unordered, directcall, rand, pool, clamp).
// The reason is mandatory: an annotation without one is itself reported, so
// every suppression in the tree documents why the invariant may be waived.
const annotationPrefix = "//bytecard:"

// annotation is one parsed suppression comment.
type annotation struct {
	name   string // e.g. "unordered"
	reason string
	pos    token.Pos
}

// fileAnnotations maps line number → annotations ending on that line.
type fileAnnotations map[int][]annotation

// parseAnnotation parses one comment, returning ok=false for ordinary
// comments. Accepted shape: "//bytecard:<name>-ok[ reason]".
func parseAnnotation(c *ast.Comment) (annotation, bool) {
	text := c.Text
	if !strings.HasPrefix(text, annotationPrefix) {
		return annotation{}, false
	}
	rest := strings.TrimPrefix(text, annotationPrefix)
	body, reason, _ := strings.Cut(rest, " ")
	name, isOK := strings.CutSuffix(strings.TrimSpace(body), "-ok")
	if !isOK || name == "" {
		return annotation{}, false
	}
	return annotation{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()}, true
}

// indexAnnotations scans every comment of every file once, building the
// per-file line index the suppression check reads.
func indexAnnotations(fset *token.FileSet, files []*ast.File) map[*ast.File]fileAnnotations {
	out := make(map[*ast.File]fileAnnotations, len(files))
	for _, f := range files {
		fa := fileAnnotations{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAnnotation(c)
				if !ok {
					continue
				}
				line := fset.Position(c.End()).Line
				fa[line] = append(fa[line], a)
			}
		}
		if len(fa) > 0 {
			out[f] = fa
		}
	}
	return out
}

// Suppressed reports whether a finding of the given annotation key at pos is
// waived by a //bytecard:<name>-ok annotation on the same line or the line
// above. An annotation with an empty reason does not suppress; instead the
// analyzer should let the finding stand so the missing justification is
// visible. MissingReason reports that case.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	a, ok := p.annotationFor(name, pos)
	return ok && a.reason != ""
}

// MissingReason reports whether pos carries a matching annotation whose
// reason text is empty (annotation present but undocumented).
func (p *Pass) MissingReason(name string, pos token.Pos) bool {
	a, ok := p.annotationFor(name, pos)
	return ok && a.reason == ""
}

func (p *Pass) annotationFor(name string, pos token.Pos) (annotation, bool) {
	f := p.fileForPos(pos)
	if f == nil {
		return annotation{}, false
	}
	fa := p.annotations[f]
	if fa == nil {
		return annotation{}, false
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, a := range fa[l] {
			if a.name == name {
				return a, true
			}
		}
	}
	return annotation{}, false
}
