package lint

import (
	"go/ast"
	"go/types"
)

// GuardCall flags direct calls to model inference entry points from outside
// the guarded estimation ladder.
//
// Every learned-model inference in ByteCard is supposed to flow through
// core.Estimator's guarded() path, which layers circuit-breaker admission,
// panic recovery, a latency budget, and output sanitization around the raw
// model call. A direct call to bn.Context.Prob or costmodel.Model.PredictPlan
// from, say, the engine bypasses all four protections: one NaN or panic in a
// model reaches query execution. The analyzer knows the inference entry
// points of each model package and the packages allowed to touch them — the
// model package itself, core (the ladder), and bench (which measures raw
// model latency on purpose). Test files are exempt. Intentional raw calls
// (demos, calibration) carry //bytecard:directcall-ok <reason>.
var GuardCall = &Analyzer{
	Name: "guardcall",
	Doc: "flag unguarded calls to model inference entry points\n\n" +
		"Inference must go through core.Estimator's guarded() ladder (breaker\n" +
		"admission, panic recovery, latency budget, sanitization). Call the\n" +
		"estimator API instead, or annotate deliberate raw calls with\n" +
		"//bytecard:directcall-ok <reason>.",
	Run: runGuardCall,
}

// guardedEntryPoint identifies one inference method: defining package path
// suffix, receiver type name, method name.
type guardedEntryPoint struct {
	pkgSuffix string
	recv      string
	name      string
}

// guardedEntryPoints is the inference surface of the model packages. Training,
// encoding, and validation functions are deliberately absent — only calls
// that produce estimates at query time need the ladder.
var guardedEntryPoints = []guardedEntryPoint{
	{"internal/bn", "Context", "Prob"},
	{"internal/bn", "Context", "ProbNoScratch"},
	{"internal/bn", "Context", "Marginals"},
	{"internal/bn", "Context", "SelectivityConj"},
	{"internal/bn", "Context", "SelectivityNode"},
	{"internal/bn", "Context", "JointWithColumn"},
	{"internal/bn", "TreeWalker", "Prob"},
	{"internal/factorjoin", "Model", "Estimate"},
	{"internal/rbx", "Model", "EstimateNDV"},
	{"internal/rbx", "Model", "EstimateNDVForColumn"},
	{"internal/costmodel", "Model", "PredictMillis"},
	{"internal/costmodel", "Model", "PredictPlan"},
}

// guardcallAllowedCallers lists package names permitted to call entry points
// directly: core hosts the guarded ladder itself, bench measures raw model
// latency to calibrate the ladder's budget.
var guardcallAllowedCallers = map[string]bool{
	"core":  true,
	"bench": true,
}

func runGuardCall(pass *Pass) error {
	if guardcallAllowedCallers[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			ep, ok := matchEntryPoint(fn)
			if !ok {
				return true
			}
			// The model package may orchestrate its own internals.
			if fn.Pkg() == pass.Pkg || pathHasSuffix(pass.Pkg.Path(), ep.pkgSuffix) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if pass.MissingReason("directcall", call.Pos()) {
				pass.Reportf(call.Pos(), "guardcall: //bytecard:directcall-ok annotation needs a reason explaining why the guarded ladder is bypassed")
				return true
			}
			if pass.Suppressed("directcall", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "guardcall: direct call to %s.%s.%s bypasses core.Estimator's guarded ladder (breakers, panic recovery, latency budget, sanitization); call the estimator API or annotate with //bytecard:directcall-ok <reason>", fn.Pkg().Name(), ep.recv, ep.name)
			return true
		})
	}
	return nil
}

// matchEntryPoint reports whether fn is a registered inference entry point.
func matchEntryPoint(fn *types.Func) (guardedEntryPoint, bool) {
	path := pkgPathOf(fn)
	if path == "" {
		return guardedEntryPoint{}, false
	}
	recv := recvTypeName(fn)
	for _, ep := range guardedEntryPoints {
		if fn.Name() == ep.name && recv == ep.recv && pathHasSuffix(path, ep.pkgSuffix) {
			return ep, true
		}
	}
	return guardedEntryPoint{}, false
}
