package lint

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Main is the multichecker entry point shared by cmd/bytecard-lint. It
// speaks both driver protocols:
//
//   - `go vet -vettool=bytecard-lint ./...` — cmd/go performs the -V=full
//     and -flags handshakes, then invokes the tool once per package with a
//     JSON .cfg file (runVetConfig).
//   - `bytecard-lint [flags] [packages]` — standalone mode loads packages
//     itself via `go list -export` and analyzes them all in-process.
//
// Analyzer name flags select a subset (vet semantics): naming any analyzer
// runs only the named ones; -name=false excludes from the default full set.
func Main(analyzers ...*Analyzer) {
	fs, enabled := newFlagParsing(analyzers)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bytecard-lint [-flags] [-V=full] [analyzer flags] [package pattern...]\n")
		fmt.Fprintf(os.Stderr, "       (or via go vet -vettool=$(which bytecard-lint) ./...)\n\nRegistered analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "    %-12s %s\n", a.Name, docLine(a))
		}
		fmt.Fprintln(os.Stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol; only -V=full is supported)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	dirFlag := fs.String("C", ".", "change to `dir` before loading packages (standalone mode)")
	sarifFlag := fs.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (\"-\" for stdout; standalone mode)")
	baselineFlag := fs.String("baseline", "", "suppress findings fingerprinted in the baseline `file` (standalone mode)")
	writeBaselineFlag := fs.String("write-baseline", "", "write current findings as a new baseline `file` and exit 0 (standalone mode)")
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		if *versionFlag != "full" {
			fatalf("unsupported flag value: -V=%s", *versionFlag)
		}
		printVersion()
	}
	if *flagsFlag {
		printFlags(analyzers)
	}

	selected := selectAnalyzers(fs, analyzers, enabled)
	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetConfig(args[0], selected)
		return
	}
	os.Exit(runStandalone(*dirFlag, args, selected, standaloneOutput{
		sarifPath:     *sarifFlag,
		baselinePath:  *baselineFlag,
		writeBaseline: *writeBaselineFlag,
	}))
}

// newFlagParsing builds the multichecker flag set: one boolean enable flag
// per analyzer, plus the protocol flags registered by Main.
func newFlagParsing(analyzers []*Analyzer) (*flag.FlagSet, map[string]*bool) {
	fs := flag.NewFlagSet("bytecard-lint", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analysis: "+docLine(a))
	}
	return fs, enabled
}

// docLine returns the first line of an analyzer's documentation.
func docLine(a *Analyzer) string {
	doc := a.Doc
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return doc
}

// selectAnalyzers applies vet's flag semantics to the full analyzer set.
func selectAnalyzers(fs *flag.FlagSet, analyzers []*Analyzer, enabled map[string]*bool) []*Analyzer {
	set := map[string]bool{}
	anyTrue := false
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			set[f.Name] = f.Value.String() == "true"
			anyTrue = anyTrue || set[f.Name]
		}
	})
	var out []*Analyzer
	for _, a := range analyzers {
		explicit, wasSet := set[a.Name]
		switch {
		case anyTrue && (!wasSet || !explicit):
			continue
		case wasSet && !explicit:
			continue
		}
		out = append(out, a)
	}
	return out
}

// standaloneOutput carries the reporting options of a standalone run.
type standaloneOutput struct {
	sarifPath     string
	baselinePath  string
	writeBaseline string
}

// runStandalone loads, checks, and analyzes the given package patterns,
// printing unbaselined findings to stderr and optionally emitting SARIF or
// regenerating the baseline. Returns the process exit code.
func runStandalone(dir string, patterns []string, analyzers []*Analyzer, out standaloneOutput) int {
	loader, err := LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	var findings []Finding
	for _, pkgPath := range loader.Packages() {
		results, err := loader.Run(pkgPath, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		for _, res := range results {
			for _, d := range res.Diags {
				pos := loader.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: res.Analyzer,
					File:     relPath(dir, pos.Filename),
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  d.Message,
				})
			}
		}
	}

	if out.writeBaseline != "" {
		if err := WriteBaseline(out.writeBaseline, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bytecard-lint: wrote %d finding(s) to %s\n", len(findings), out.writeBaseline)
		return exit
	}

	if out.baselinePath != "" {
		baseline, err := LoadBaseline(out.baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		kept := findings[:0]
		for _, f := range findings {
			if !baseline.Contains(f) {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", f.File, f.Line, f.Column, f.Message)
		exit = 1
	}

	if out.sarifPath != "" {
		w := os.Stdout
		if out.sarifPath != "-" {
			f, err := os.Create(out.sarifPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := writeSARIF(w, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return exit
}
