package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces atomic-access consistency: a struct field (or
// package-level variable) that is accessed through the sync/atomic
// function API anywhere in a package must be accessed atomically
// everywhere in that package. One plain read racing one atomic write is
// undefined under the memory model even when the plain side "only reads a
// counter" — exactly the silent-corruption shape that would skew breaker
// counters, IOStats block charges, or morsel cursors without ever failing
// a query. The analyzer also flags sync/atomic typed values (atomic.Int64
// and friends) copied by value into arguments, returns, assignments, or
// composite literals: a copy carries a detached counter that updates
// nobody.
//
// ByteCard's own convention is the typed API (atomic.Int64 fields), which
// this analyzer cannot see misused except by copy — the function-style
// checks exist so a refactor toward atomic.AddInt64(&s.n, 1) can never
// leave a bare s.n++ behind in the same package.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flag mixed atomic/plain access to the same field\n\n" +
		"A field touched via sync/atomic anywhere must be touched atomically\n" +
		"everywhere in the package, and atomic.* typed values must never be\n" +
		"copied. Annotate deliberate mixes (e.g. constructor-private writes)\n" +
		"with //bytecard:atomic-ok <reason>.",
	Run: runAtomicField,
}

// atomicFuncVerbs are the sync/atomic function-API prefixes that take an
// address as their first argument.
var atomicFuncVerbs = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFunc(fn *types.Func) bool {
	if pkgPathOf(fn) != "sync/atomic" || recvTypeName(fn) != "" {
		return false
	}
	for _, v := range atomicFuncVerbs {
		if strings.HasPrefix(fn.Name(), v) {
			return true
		}
	}
	return false
}

// atomicOperand extracts the variable a sync/atomic call operates on: the
// object under the leading &arg. Only fields and package-level variables
// are tracked; locals belong to one goroutine unless captured, which the
// race detector covers better than a package-scoped analyzer can.
func atomicOperand(info *types.Info, call *ast.CallExpr) (*types.Var, ast.Expr) {
	if len(call.Args) == 0 {
		return nil, nil
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil, nil
	}
	target := ast.Unparen(unary.X)
	var obj types.Object
	switch t := target.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[t.Sel]
		if sel, ok := info.Selections[t]; ok {
			obj = sel.Obj()
		}
	case *ast.Ident:
		obj = info.Uses[t]
	default:
		return nil, nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, nil
	}
	if !v.IsField() && (v.Pkg() == nil || v.Parent() != v.Pkg().Scope()) {
		return nil, nil
	}
	return v, target
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect the atomically-accessed variable set and the exact
	// operand nodes blessed by appearing under & in an atomic call.
	atomicVars := map[*types.Var]token.Pos{}
	blessed := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isAtomicFunc(fn) {
				return true
			}
			v, operand := atomicOperand(pass.TypesInfo, call)
			if v == nil {
				return true
			}
			blessed[operand] = true
			if _, seen := atomicVars[v]; !seen && !pass.InTestFile(call.Pos()) {
				atomicVars[v] = call.Pos()
			}
			return true
		})
	}

	// Pass 2: every other use of an atomically-accessed variable is a
	// plain (racy) access.
	if len(atomicVars) > 0 {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				v, reportPos := usedVar(pass.TypesInfo, n)
				if v == nil || blessed[n] {
					return true
				}
				firstAtomic, tracked := atomicVars[v]
				if !tracked || pass.InTestFile(reportPos) {
					return true
				}
				if pass.MissingReason("atomic", reportPos) {
					pass.Reportf(reportPos, "atomicfield: //bytecard:atomic-ok annotation needs a reason explaining why this plain access cannot race")
					return true
				}
				if pass.Suppressed("atomic", reportPos) {
					return true
				}
				pass.Reportf(reportPos, "atomicfield: %s is accessed via sync/atomic at line %d but plainly here; mixed access races — use atomic operations everywhere or annotate with //bytecard:atomic-ok <reason>",
					v.Name(), pass.Fset.Position(firstAtomic).Line)
				return true
			})
		}
	}

	// Pass 3: typed atomics copied by value.
	for _, file := range pass.Files {
		checkAtomicCopies(pass, file)
	}
	return nil
}

// usedVar resolves a selector or identifier node to the tracked variable
// it reads or writes; nil for everything else. The selector case reports
// at the selector so annotations sit on the access line.
func usedVar(info *types.Info, n ast.Node) (*types.Var, token.Pos) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[n]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v, n.Pos()
			}
		}
		if v, ok := info.Uses[n.Sel].(*types.Var); ok {
			return v, n.Pos()
		}
	case *ast.Ident:
		if v, ok := info.Uses[n].(*types.Var); ok && !v.IsField() {
			return v, n.Pos()
		}
	}
	return nil, token.NoPos
}

// isAtomicTyped reports whether t is one of sync/atomic's typed values.
func isAtomicTyped(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkAtomicCopies flags atomic.* values appearing in copy positions:
// call arguments, assignment and declaration right-hand sides, returns,
// and composite-literal elements.
func checkAtomicCopies(pass *Pass, file *ast.File) {
	flag := func(e ast.Expr) {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil || !isAtomicTyped(t) || pass.InTestFile(e.Pos()) {
			return
		}
		if pass.MissingReason("atomic", e.Pos()) {
			pass.Reportf(e.Pos(), "atomicfield: //bytecard:atomic-ok annotation needs a reason explaining why copying this atomic is safe")
			return
		}
		if pass.Suppressed("atomic", e.Pos()) {
			return
		}
		pass.Reportf(e.Pos(), "atomicfield: %s value copied; a copied atomic is a detached counter — pass a pointer or keep the access on the original", t.String())
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, a := range n.Args {
				flag(a)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				flag(r)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				flag(v)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flag(r)
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					flag(kv.Value)
				} else {
					flag(e)
				}
			}
		}
		return true
	})
}
