package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output. The shapes below are the minimal static-analysis
// subset of the OASIS schema — a single run, one rule per analyzer, one
// result per diagnostic with a physical location and a stable
// partial fingerprint — so CI can upload the log as a code-scanning
// artifact without any translation step.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings as one SARIF 2.1.0 run. Every registered
// analyzer appears as a rule even when it produced no findings, so the log
// documents what was checked, not just what fired. Baselined findings are
// expected to be filtered out before this call.
func writeSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: docLine(a)},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
			PartialFingerprints: map[string]string{"bytecardFingerprint/v1": f.Fingerprint()},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bytecard-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
