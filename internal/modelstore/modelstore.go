// Package modelstore is the directory-backed stand-in for the cloud object
// store the paper's ModelForge service writes trained models into and the
// Model Loader reads them from: artifacts with JSON manifests, timestamp
// ordering, and age-based purging of training residue.
//
// Persistence is crash-safe: every file is published with write-temp →
// fsync → atomic-rename → fsync-dir, each artifact keeps its last few
// generations with a SHA-256 checksum recorded in a versioned manifest, and
// the manifest commit is the single atomic publish point. On read the store
// verifies the checksum, quarantines corrupt generations, and falls back to
// the last-known-good one — a bad write or bit rot degrades to stale
// models, visible in Health() and obs counters, never to a torn artifact.
package modelstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/obs"
)

// manifestVersion is the current manifest schema. Version 0/1 manifests
// (the pre-generational single-file layout) are still readable.
const manifestVersion = 2

// DefaultKeepGenerations is how many generations of each artifact the store
// retains (the newest plus fallback history).
const DefaultKeepGenerations = 3

// quarantineDir is the subdirectory corrupt files are moved into. Nothing
// under it is ever served; it exists for post-mortems.
const quarantineDir = "quarantine"

// Generation is one retained version of an artifact's payload.
type Generation struct {
	// Gen is the monotonically increasing generation number.
	Gen int `json:"gen"`
	// File is the payload file name within the store directory.
	File string `json:"file"`
	// SizeBytes is the exact payload length (truncation detector).
	SizeBytes int64 `json:"size_bytes"`
	// SHA256 is the hex checksum of the payload (bit-rot detector); empty
	// on generations migrated from pre-checksum manifests.
	SHA256 string `json:"sha256,omitempty"`
	// Timestamp is the artifact timestamp this generation was stored with.
	Timestamp time.Time `json:"timestamp"`
}

// Manifest describes one stored artifact. The top-level File/SizeBytes/
// SHA256 mirror the newest generation for compatibility with pre-v2
// readers; Generations carries the fallback history, newest first.
type Manifest struct {
	Version   int            `json:"version"`
	Name      string         `json:"name"`
	Kind      core.ModelKind `json:"kind"`
	Table     string         `json:"table,omitempty"`
	Shard     int            `json:"shard"`
	Timestamp time.Time      `json:"timestamp"`
	SizeBytes int64          `json:"size_bytes"`
	File      string         `json:"file"`
	SHA256    string         `json:"sha256,omitempty"`
	// Generations lists retained payload versions, newest first.
	Generations []Generation `json:"generations,omitempty"`
}

// generations returns the manifest's history, synthesizing a single
// checksum-less generation for legacy (pre-v2) manifests.
func (m *Manifest) generations() []Generation {
	if len(m.Generations) > 0 {
		return m.Generations
	}
	return []Generation{{Gen: 1, File: m.File, SizeBytes: m.SizeBytes, SHA256: m.SHA256, Timestamp: m.Timestamp}}
}

// Store is a single-directory artifact store. It is safe for concurrent
// use within one process.
type Store struct {
	mu   sync.Mutex
	dir  string
	keep int
	hook WriteHook
	// degraded tracks artifact names currently served by a non-newest
	// generation (the newest was quarantined); cleared by the next Put.
	degraded map[string]bool
	metrics  *obs.StoreMetrics
}

// Option configures Open.
type Option func(*Store)

// WithKeepGenerations sets how many generations of each artifact to retain
// (minimum 1; default DefaultKeepGenerations).
func WithKeepGenerations(n int) Option {
	return func(s *Store) {
		if n >= 1 {
			s.keep = n
		}
	}
}

// Open creates (if needed) and opens a store directory, sweeping temp files
// a crashed writer may have left.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	sweepTempFiles(dir)
	s := &Store{
		dir:      dir,
		keep:     DefaultKeepGenerations,
		degraded: map[string]bool{},
		metrics:  obs.NewStoreMetrics(),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// SetHook installs (or, with nil, removes) the write-path fault hook —
// chaos testing only.
func (s *Store) SetHook(h WriteHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// Obs exposes the store's durability counters.
func (s *Store) Obs() *obs.StoreMetrics { return s.metrics }

// HealthSnapshot is the store's serializable operational state.
type HealthSnapshot struct {
	// Degraded lists artifact names currently served by an older
	// generation because a newer one was quarantined (sorted).
	Degraded []string `json:"degraded,omitempty"`
	// Quarantines / Corruptions / BadManifests mirror the obs counters.
	Quarantines  int64 `json:"quarantines"`
	Corruptions  int64 `json:"corruptions"`
	BadManifests int64 `json:"bad_manifests"`
}

// Health reports whether the store is serving stale (fallback) models and
// how much corruption it has absorbed.
func (s *Store) Health() HealthSnapshot {
	s.mu.Lock()
	degraded := make([]string, 0, len(s.degraded))
	for name := range s.degraded {
		degraded = append(degraded, name)
	}
	s.mu.Unlock()
	sort.Strings(degraded)
	return HealthSnapshot{
		Degraded:     degraded,
		Quarantines:  s.metrics.Quarantines.Load(),
		Corruptions:  s.metrics.Corruptions.Load(),
		BadManifests: s.metrics.BadManifests.Load(),
	}
}

// fileSafe converts an artifact name to a file stem.
func fileSafe(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", ":", "_", "#", "_", " ", "_")
	return r.Replace(name)
}

// checksum is the store's payload checksum (hex SHA-256).
func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// genFile names a generation's payload file.
func genFile(stem string, gen int) string {
	return fmt.Sprintf("%s.g%d.bin", stem, gen)
}

// readManifestLocked loads and parses one stem's manifest. A missing
// manifest returns (nil, nil); an unparseable one is quarantined and
// reported as absent, so a fresh Put can repair the key.
func (s *Store) readManifestLocked(stem string) (*Manifest, error) {
	path := filepath.Join(s.dir, stem+".json")
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		s.metrics.BadManifests.Add(1)
		s.quarantineFileLocked(stem + ".json")
		return nil, nil
	}
	return &m, nil
}

// writeManifestLocked atomically publishes a manifest — the single commit
// point of every Put.
func (s *Store) writeManifestLocked(stem string, m *Manifest, label string) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return s.atomicWrite(stem+".json", blob, label)
}

// quarantineFileLocked moves a corrupt file into the quarantine directory
// (best-effort: a failed move falls back to deletion so the bad bytes can
// never be served again).
func (s *Store) quarantineFileLocked(name string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		_ = os.Remove(filepath.Join(s.dir, name))
		return
	}
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		_ = os.Remove(filepath.Join(s.dir, name))
	}
}

// Put stores a new generation of an artifact and prunes history beyond the
// retention limit. The write protocol is: payload file (temp → fsync →
// rename → dir fsync), then manifest commit through the same primitive —
// the manifest rename is the single atomic publish point; a crash anywhere
// before it leaves the previous generation served, a crash anywhere after
// it leaves the new generation served.
func (s *Store) Put(a core.Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.at("put:begin"); err != nil {
		return err
	}
	stem := fileSafe(a.Name)
	prev, err := s.readManifestLocked(stem)
	if err != nil {
		return err
	}
	nextGen := 1
	var history []Generation
	if prev != nil {
		history = prev.generations()
		nextGen = history[0].Gen + 1
	}
	dataFile := genFile(stem, nextGen)
	if err := s.atomicWrite(dataFile, a.Data, "put:data"); err != nil {
		return err
	}
	gens := append([]Generation{{
		Gen:       nextGen,
		File:      dataFile,
		SizeBytes: int64(len(a.Data)),
		SHA256:    checksum(a.Data),
		Timestamp: a.Timestamp,
	}}, history...)
	pruned := []Generation(nil)
	if len(gens) > s.keep {
		pruned = gens[s.keep:]
		gens = gens[:s.keep]
	}
	m := &Manifest{
		Version:     manifestVersion,
		Name:        a.Name,
		Kind:        a.Kind,
		Table:       a.Table,
		Shard:       a.Shard,
		Timestamp:   a.Timestamp,
		SizeBytes:   gens[0].SizeBytes,
		File:        gens[0].File,
		SHA256:      gens[0].SHA256,
		Generations: gens,
	}
	if err := s.writeManifestLocked(stem, m, "put:manifest"); err != nil {
		return err
	}
	// The new generation is durably published; retention cleanup after the
	// commit point can crash harmlessly (orphan files are reclaimed by the
	// next Put's overwrite or by Purge).
	for _, g := range pruned {
		_ = os.Remove(filepath.Join(s.dir, g.File))
	}
	if err := s.at("put:pruned"); err != nil {
		return err
	}
	delete(s.degraded, a.Name)
	s.metrics.Puts.Add(1)
	return nil
}

// List returns all manifests sorted by name. Unparseable manifests are
// quarantined and skipped (counted in obs) rather than failing the sweep.
func (s *Store) List() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			s.metrics.BadManifests.Add(1)
			s.quarantineFileLocked(e.Name())
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// verifyGen reads and verifies one generation's payload against its
// recorded size and checksum, reporting why it failed.
func (s *Store) verifyGen(g Generation) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, g.File))
	if err != nil {
		return nil, fmt.Errorf("unreadable payload: %w", err)
	}
	if int64(len(data)) != g.SizeBytes {
		return nil, fmt.Errorf("truncated payload: %d bytes, manifest records %d", len(data), g.SizeBytes)
	}
	if g.SHA256 != "" && checksum(data) != g.SHA256 {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return data, nil
}

// Get loads one artifact by name, serving the newest generation that
// verifies. Corrupt generations (truncated, garbled, unreadable) are
// quarantined and dropped from the manifest; if an older generation
// survives, it is served as last-known-good and the artifact is marked
// degraded in Health().
func (s *Store) Get(name string) (core.Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stem := fileSafe(name)
	m, err := s.readManifestLocked(stem)
	if err != nil {
		return core.Artifact{}, err
	}
	if m == nil {
		return core.Artifact{}, fmt.Errorf("modelstore: artifact %q: %w", name, os.ErrNotExist)
	}
	gens := m.generations()
	var good []Generation
	var data []byte
	var firstErr error
	serveIdx := -1
	for i, g := range gens {
		payload, err := s.verifyGen(g)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("modelstore: artifact %q gen %d: %w", name, g.Gen, err)
			}
			s.metrics.Corruptions.Add(1)
			s.metrics.Quarantines.Add(1)
			s.quarantineFileLocked(g.File)
			continue
		}
		serveIdx = i
		data = payload
		// Older generations behind the serving one are kept unverified;
		// they are only checked if a later read has to fall back to them.
		good = append(good, gens[i:]...)
		break
	}
	quarantined := len(gens) - len(good)
	if quarantined > 0 {
		// Drop the quarantined generations from the durable manifest so the
		// store self-heals (and never retries known-bad files). With no
		// surviving generation the manifest itself is quarantined: the key
		// reads as absent until the next Put repairs it.
		if len(good) == 0 {
			s.quarantineFileLocked(stem + ".json")
		} else {
			m2 := *m
			m2.Version = manifestVersion
			m2.Generations = good
			m2.File = good[0].File
			m2.SizeBytes = good[0].SizeBytes
			m2.SHA256 = good[0].SHA256
			m2.Timestamp = good[0].Timestamp
			if err := s.writeManifestLocked(stem, &m2, "quarantine:manifest"); err != nil {
				return core.Artifact{}, err
			}
		}
	}
	if data == nil {
		return core.Artifact{}, fmt.Errorf("modelstore: artifact %q: no generation passed verification: %w", name, firstErr)
	}
	serving := good[0]
	if serveIdx > 0 {
		// A newer generation existed but was corrupt: we are serving stale.
		s.metrics.Fallbacks.Add(1)
		s.degraded[name] = true
	}
	s.metrics.Gets.Add(1)
	return core.Artifact{
		Name:      m.Name,
		Kind:      m.Kind,
		Table:     m.Table,
		Shard:     m.Shard,
		Timestamp: serving.Timestamp,
		Data:      data,
	}, nil
}

// stemGenFiles returns the on-disk generation files belonging to one stem
// (used by Purge to reclaim orphans left by crashed writers).
func (s *Store) stemGenFiles(stem string) []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	prefix := stem + ".g"
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".bin") {
			continue
		}
		if _, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".bin")); err != nil {
			continue
		}
		out = append(out, name)
	}
	return out
}

// Purge removes artifacts older than the cutoff, returning how many were
// deleted (the paper's automatic training-data cleanup). The manifest is
// removed first — unpublishing the artifact — so a crash mid-purge leaves
// only orphan payload files, never a manifest pointing at deleted data.
func (s *Store) Purge(olderThan time.Time) (int, error) {
	manifests, err := s.List()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, m := range manifests {
		if m.Timestamp.Before(olderThan) {
			stem := fileSafe(m.Name)
			if err := os.Remove(filepath.Join(s.dir, stem+".json")); err != nil {
				return removed, err
			}
			for _, f := range s.stemGenFiles(stem) {
				if err := os.Remove(filepath.Join(s.dir, f)); err != nil && !os.IsNotExist(err) {
					return removed, err
				}
			}
			delete(s.degraded, m.Name)
			removed++
		}
	}
	return removed, nil
}
