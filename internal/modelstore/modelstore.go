// Package modelstore is the directory-backed stand-in for the cloud object
// store the paper's ModelForge service writes trained models into and the
// Model Loader reads them from: artifacts with JSON manifests, timestamp
// ordering, and age-based purging of training residue.
package modelstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bytecard/internal/core"
)

// Manifest describes one stored artifact.
type Manifest struct {
	Name      string         `json:"name"`
	Kind      core.ModelKind `json:"kind"`
	Table     string         `json:"table,omitempty"`
	Shard     int            `json:"shard"`
	Timestamp time.Time      `json:"timestamp"`
	SizeBytes int64          `json:"size_bytes"`
	File      string         `json:"file"`
}

// Store is a single-directory artifact store. It is safe for concurrent
// use within one process.
type Store struct {
	mu  sync.Mutex
	dir string
}

// Open creates (if needed) and opens a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// fileSafe converts an artifact name to a file stem.
func fileSafe(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", ":", "_", "#", "_", " ", "_")
	return r.Replace(name)
}

// Put stores an artifact, replacing any previous version of the same name.
func (s *Store) Put(a core.Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stem := fileSafe(a.Name)
	dataFile := stem + ".bin"
	if err := os.WriteFile(filepath.Join(s.dir, dataFile), a.Data, 0o644); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	m := Manifest{
		Name:      a.Name,
		Kind:      a.Kind,
		Table:     a.Table,
		Shard:     a.Shard,
		Timestamp: a.Timestamp,
		SizeBytes: int64(len(a.Data)),
		File:      dataFile,
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(s.dir, stem+".json"), blob, 0o644); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

// List returns all manifests sorted by name.
func (s *Store) List() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return nil, fmt.Errorf("modelstore: manifest %s: %w", e.Name(), err)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Get loads one artifact by name.
func (s *Store) Get(name string) (core.Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stem := fileSafe(name)
	blob, err := os.ReadFile(filepath.Join(s.dir, stem+".json"))
	if err != nil {
		return core.Artifact{}, fmt.Errorf("modelstore: artifact %q: %w", name, err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return core.Artifact{}, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, m.File))
	if err != nil {
		return core.Artifact{}, err
	}
	return core.Artifact{
		Name:      m.Name,
		Kind:      m.Kind,
		Table:     m.Table,
		Shard:     m.Shard,
		Timestamp: m.Timestamp,
		Data:      data,
	}, nil
}

// Purge removes artifacts older than the cutoff, returning how many were
// deleted (the paper's automatic training-data cleanup).
func (s *Store) Purge(olderThan time.Time) (int, error) {
	manifests, err := s.List()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, m := range manifests {
		if m.Timestamp.Before(olderThan) {
			stem := fileSafe(m.Name)
			if err := os.Remove(filepath.Join(s.dir, stem+".json")); err != nil {
				return removed, err
			}
			if err := os.Remove(filepath.Join(s.dir, m.File)); err != nil && !os.IsNotExist(err) {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}
