package modelstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteHook intercepts named barriers in the store's write path. It exists
// for crash-point chaos testing only (faultinject.StoreHook): production
// stores keep the hook nil. At is called with a stable point name between
// every pair of durable steps; returning an error aborts the operation with
// that error (injected write failure), and panicking emulates a process
// crash at exactly that barrier.
type WriteHook interface {
	At(point string) error
}

// at fires the store's write hook at a named barrier (nil-safe).
func (s *Store) at(point string) error {
	if s.hook == nil {
		return nil
	}
	return s.hook.At(point)
}

// tmpSuffix marks in-flight temp files; Open sweeps leftovers from crashes.
const tmpSuffix = ".tmp"

// atomicWrite is the blessed persistence primitive: every byte the store
// publishes goes through write-temp → fsync → atomic-rename → fsync-dir, so
// a reader never observes a torn file and a crash at any point leaves
// either the old content or the new content, never a mix. label prefixes
// the crash-point names ("put:data", "put:manifest", "quarantine:manifest").
func (s *Store) atomicWrite(name string, data []byte, label string) error {
	path := filepath.Join(s.dir, name)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	// Close is idempotent; the defer covers hook panics (emulated crashes)
	// so the sweep does not leak descriptors.
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := s.at(label + ":temp-written"); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := s.at(label + ":temp-synced"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := s.at(label + ":renamed"); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.at(label + ":committed")
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("modelstore: sync %s: %w", dir, err)
	}
	return nil
}

// sweepTempFiles removes in-flight temp files a crashed writer left behind.
// They were never published (publication is the rename), so deleting them
// cannot lose committed data.
func sweepTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
