package modelstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bytecard/internal/core"
)

// corruptOnDisk overwrites a generation's payload file in place, bypassing
// the store (bit rot / torn upload emulation).
func corruptOnDisk(t *testing.T, dir, file string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustPut(t *testing.T, s *Store, name, payload string, ts time.Time) {
	t.Helper()
	if err := s.Put(core.Artifact{Name: name, Kind: core.KindRBX, Shard: -1, Timestamp: ts, Data: []byte(payload)}); err != nil {
		t.Fatal(err)
	}
}

func TestGetFallsBackToLastKnownGood(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().Truncate(time.Second)
	mustPut(t, s, "m", "old-good", now)
	mustPut(t, s, "m", "new-bad", now.Add(time.Hour))
	corruptOnDisk(t, dir, genFile("m", 2), []byte("garbled!"))

	got, err := s.Get("m")
	if err != nil {
		t.Fatalf("get with corrupt newest gen: %v", err)
	}
	if string(got.Data) != "old-good" {
		t.Fatalf("get = %q, want last-known-good", got.Data)
	}
	if !got.Timestamp.Equal(now) {
		t.Errorf("fallback timestamp = %v, want the old generation's %v", got.Timestamp, now)
	}
	snap := s.Obs().Snapshot()
	if snap.Corruptions != 1 || snap.Quarantines != 1 || snap.Fallbacks != 1 {
		t.Errorf("obs = %+v, want one corruption/quarantine/fallback", snap)
	}
	h := s.Health()
	if len(h.Degraded) != 1 || h.Degraded[0] != "m" {
		t.Errorf("health degraded = %v, want [m]", h.Degraded)
	}
	// The bad generation is moved aside, not deleted.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, genFile("m", 2))); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	// The manifest self-healed: a second Get serves the survivor without
	// re-detecting corruption.
	if _, err := s.Get("m"); err != nil {
		t.Fatal(err)
	}
	if snap := s.Obs().Snapshot(); snap.Corruptions != 1 {
		t.Errorf("second get re-detected corruption: %+v", snap)
	}
	// A fresh Put clears the degraded mark.
	mustPut(t, s, "m", "repaired", now.Add(2*time.Hour))
	if h := s.Health(); len(h.Degraded) != 0 {
		t.Errorf("health degraded after repair = %v, want none", h.Degraded)
	}
}

func TestGetTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	now := time.Now()
	mustPut(t, s, "m", "version-one", now)
	mustPut(t, s, "m", "version-two-longer", now.Add(time.Hour))
	full, err := os.ReadFile(filepath.Join(dir, genFile("m", 2)))
	if err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, dir, genFile("m", 2), full[:len(full)/2])
	got, err := s.Get("m")
	if err != nil || string(got.Data) != "version-one" {
		t.Fatalf("truncated newest gen: get = %q, %v; want version-one", got.Data, err)
	}
}

func TestGetAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	now := time.Now()
	mustPut(t, s, "m", "v1", now)
	mustPut(t, s, "m", "v2", now.Add(time.Hour))
	corruptOnDisk(t, dir, genFile("m", 1), []byte("xx"))
	corruptOnDisk(t, dir, genFile("m", 2), []byte("yy"))
	if _, err := s.Get("m"); err == nil {
		t.Fatal("get with every generation corrupt must error")
	} else if !strings.Contains(err.Error(), "no generation passed verification") {
		t.Fatalf("error = %v", err)
	}
	// The key reads as absent (manifest quarantined) and is repairable.
	if _, err := s.Get("m"); !os.IsNotExist(unwrapAll(err)) {
		t.Fatalf("after full corruption, get = %v, want not-exist", err)
	}
	mustPut(t, s, "m", "fresh", now.Add(2*time.Hour))
	if got, err := s.Get("m"); err != nil || string(got.Data) != "fresh" {
		t.Fatalf("repair put: get = %q, %v", got.Data, err)
	}
}

// unwrapAll walks to the innermost error for os.IsNotExist classification.
func unwrapAll(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok || u.Unwrap() == nil {
			return err
		}
		err = u.Unwrap()
	}
}

func TestGenerationRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithKeepGenerations(2))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i, payload := range []string{"v1", "v2", "v3", "v4"} {
		mustPut(t, s, "m", payload, now.Add(time.Duration(i)*time.Hour))
	}
	// Only the two newest generation files remain.
	for gen, want := range map[int]bool{1: false, 2: false, 3: true, 4: true} {
		_, err := os.Stat(filepath.Join(dir, genFile("m", gen)))
		if exists := err == nil; exists != want {
			t.Errorf("gen %d file exists = %v, want %v", gen, exists, want)
		}
	}
	got, err := s.Get("m")
	if err != nil || string(got.Data) != "v4" {
		t.Fatalf("get = %q, %v", got.Data, err)
	}
}

func TestListQuarantinesBadManifest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	now := time.Now()
	mustPut(t, s, "good", "g", now)
	if err := os.WriteFile(filepath.Join(dir, "rotten.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil {
		t.Fatalf("list with a rotten manifest must keep sweeping: %v", err)
	}
	if len(list) != 1 || list[0].Name != "good" {
		t.Errorf("list = %+v", list)
	}
	if snap := s.Obs().Snapshot(); snap.BadManifests != 1 {
		t.Errorf("bad manifest not counted: %+v", snap)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "rotten.json")); err != nil {
		t.Errorf("rotten manifest not quarantined: %v", err)
	}
}

// TestLegacyManifestReadable pins the migration path: a v1 manifest (single
// file, no generations, no checksum) written by the pre-generational store
// still loads, and the next Put upgrades it in place.
func TestLegacyManifestReadable(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().Truncate(time.Second).UTC()
	if err := os.WriteFile(filepath.Join(dir, "legacy_m.bin"), []byte("legacy-data"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `{"name":"legacy/m","kind":"rbx","shard":-1,"timestamp":"` +
		now.Format(time.RFC3339) + `","size_bytes":11,"file":"legacy_m.bin"}`
	if err := os.WriteFile(filepath.Join(dir, "legacy_m.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("legacy/m")
	if err != nil || string(got.Data) != "legacy-data" {
		t.Fatalf("legacy get = %q, %v", got.Data, err)
	}
	mustPut(t, s, "legacy/m", "upgraded", now.Add(time.Hour))
	got, err = s.Get("legacy/m")
	if err != nil || string(got.Data) != "upgraded" {
		t.Fatalf("post-upgrade get = %q, %v", got.Data, err)
	}
	// And the legacy payload remains the fallback generation.
	corruptOnDisk(t, dir, genFile("legacy_m", 2), []byte("bad"))
	got, err = s.Get("legacy/m")
	if err != nil || string(got.Data) != "legacy-data" {
		t.Fatalf("fallback to legacy gen = %q, %v", got.Data, err)
	}
}
