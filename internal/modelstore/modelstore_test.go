package modelstore

import (
	"bytes"
	"testing"
	"time"

	"bytecard/internal/core"
)

func art(name string, kind core.ModelKind, table string, ts time.Time, data string) core.Artifact {
	return core.Artifact{Name: name, Kind: kind, Table: table, Shard: -1, Timestamp: ts, Data: []byte(data)}
}

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().Truncate(time.Second)
	a := art("ds/bn/title", core.KindBN, "title", now, "payload")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ds/bn/title")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != a.Name || got.Kind != a.Kind || got.Table != a.Table || !bytes.Equal(got.Data, a.Data) {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	if !got.Timestamp.Equal(now) {
		t.Errorf("timestamp %v != %v", got.Timestamp, now)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.Get("nope"); err == nil {
		t.Error("missing artifact must error")
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put(core.Artifact{}); err == nil {
		t.Error("invalid artifact must be rejected")
	}
}

func TestListSorted(t *testing.T) {
	s, _ := Open(t.TempDir())
	now := time.Now()
	for _, name := range []string{"z/model", "a/model", "m/model"} {
		if err := s.Put(art(name, core.KindRBX, "", now, "x")); err != nil {
			t.Fatal(err)
		}
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].Name != "a/model" || list[2].Name != "z/model" {
		t.Errorf("list = %v", list)
	}
	if list[0].SizeBytes != 1 {
		t.Errorf("size = %d", list[0].SizeBytes)
	}
}

func TestReplaceKeepsOneEntry(t *testing.T) {
	s, _ := Open(t.TempDir())
	now := time.Now()
	_ = s.Put(art("ds/bn/t", core.KindBN, "t", now, "v1"))
	_ = s.Put(art("ds/bn/t", core.KindBN, "t", now.Add(time.Hour), "v2"))
	list, _ := s.List()
	if len(list) != 1 {
		t.Fatalf("entries = %d, want 1", len(list))
	}
	got, _ := s.Get("ds/bn/t")
	if string(got.Data) != "v2" {
		t.Errorf("data = %q, want v2", got.Data)
	}
}

func TestPurge(t *testing.T) {
	s, _ := Open(t.TempDir())
	old := time.Now().Add(-48 * time.Hour)
	now := time.Now()
	_ = s.Put(art("old/model", core.KindRBX, "", old, "x"))
	_ = s.Put(art("new/model", core.KindRBX, "", now, "y"))
	removed, err := s.Purge(now.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if _, err := s.Get("old/model"); err == nil {
		t.Error("purged artifact must be gone")
	}
	if _, err := s.Get("new/model"); err != nil {
		t.Error("recent artifact must remain")
	}
}

func TestNameSanitization(t *testing.T) {
	s, _ := Open(t.TempDir())
	name := "ds/bn/weird table#3"
	if err := s.Put(art(name, core.KindBN, "weird table", time.Now(), "x")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != name {
		t.Errorf("name = %q", got.Name)
	}
}
