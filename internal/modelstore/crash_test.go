package modelstore_test

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"bytecard/internal/core"
	"bytecard/internal/faultinject"
	"bytecard/internal/modelstore"
)

const crashArtifact = "ds/bn/title"

func putVersion(t *testing.T, s *modelstore.Store, payload string, ts time.Time) {
	t.Helper()
	err := s.Put(core.Artifact{
		Name: crashArtifact, Kind: core.KindBN, Table: "title", Shard: -1,
		Timestamp: ts, Data: []byte(payload),
	})
	if err != nil {
		t.Fatalf("put %q: %v", payload, err)
	}
}

// discoverCrashPoints runs one clean Put against a recording hook and
// returns the write barriers in traversal order — the sweep enumerates the
// write protocol instead of hardcoding it.
func discoverCrashPoints(t *testing.T) []string {
	t.Helper()
	s, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hook := faultinject.NewStoreHook()
	s.SetHook(hook)
	putVersion(t, s, "v1", time.Now())
	points := hook.Visited()
	if len(points) < 8 {
		t.Fatalf("expected a barrier between every durable step, recorded only %v", points)
	}
	return points
}

// crashingPut runs one Put that is armed to crash, returning the barrier
// the emulated crash fired at ("" if the put completed).
func crashingPut(t *testing.T, s *modelstore.Store, payload string, ts time.Time) (fired string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			point, ok := faultinject.IsCrash(r)
			if !ok {
				panic(r) // a real bug, not the emulated crash
			}
			fired = point
		}
	}()
	putVersion(t, s, payload, ts)
	return ""
}

// TestCrashPointSweep is the chaos harness: for every barrier in the store
// write path, a Put of v2 over a committed v1 crashes at exactly that
// barrier; reopening the store must then serve a consistent artifact —
// byte-identical v1 or byte-identical v2, selected by whether the crash
// happened before or after the manifest rename (the single publish point) —
// and the store must remain fully writable afterwards.
func TestCrashPointSweep(t *testing.T) {
	points := discoverCrashPoints(t)
	publishIdx := slices.Index(points, "put:manifest:renamed")
	if publishIdx < 0 {
		t.Fatalf("write protocol lost its publish barrier: %v", points)
	}
	base := time.Now().Truncate(time.Second)
	for i, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s, err := modelstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			putVersion(t, s, "v1", base)
			hook := faultinject.NewStoreHook()
			hook.ArmCrash(point)
			s.SetHook(hook)
			if fired := crashingPut(t, s, "v2", base.Add(time.Hour)); fired != point {
				t.Fatalf("crash fired at %q, armed %q", fired, point)
			}

			// "Reboot": a fresh store over the same directory, no hook.
			s2, err := modelstore.Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			got, err := s2.Get(crashArtifact)
			if err != nil {
				t.Fatalf("get after crash at %s: %v", point, err)
			}
			want := "v1"
			if i >= publishIdx {
				want = "v2" // the manifest rename had completed: v2 is published
			}
			if string(got.Data) != want {
				t.Errorf("crash at %s: recovered %q, want %q", point, got.Data, want)
			}
			if list, err := s2.List(); err != nil || len(list) != 1 {
				t.Errorf("crash at %s: list = %v, %v", point, list, err)
			}
			if h := s2.Health(); h.Corruptions != 0 {
				t.Errorf("crash at %s: recovery flagged corruption: %+v", point, h)
			}

			// The store must stay writable: a clean v3 supersedes whatever
			// survived the crash.
			putVersion(t, s2, "v3", base.Add(2*time.Hour))
			got, err = s2.Get(crashArtifact)
			if err != nil || string(got.Data) != "v3" {
				t.Errorf("crash at %s: post-recovery put = %q, %v", point, got.Data, err)
			}
		})
	}
}

// TestPutFailureLeavesOldGeneration is the regression test for the old
// two-file write: when the manifest write (the second file) fails, the
// store must keep serving the previous version — the manifest commit is the
// single publish point, so a failed Put is a no-op, not an inconsistency.
func TestPutFailureLeavesOldGeneration(t *testing.T) {
	for _, point := range []string{"put:data:temp-written", "put:manifest:temp-written"} {
		t.Run(point, func(t *testing.T) {
			s, err := modelstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			now := time.Now().Truncate(time.Second)
			putVersion(t, s, "v1", now)
			hook := faultinject.NewStoreHook()
			injected := errors.New("injected: disk full")
			hook.ArmFail(point, injected)
			s.SetHook(hook)
			err = s.Put(core.Artifact{
				Name: crashArtifact, Kind: core.KindBN, Table: "title", Shard: -1,
				Timestamp: now.Add(time.Hour), Data: []byte("v2"),
			})
			if !errors.Is(err, injected) {
				t.Fatalf("put error = %v, want injected failure", err)
			}
			got, err := s.Get(crashArtifact)
			if err != nil || string(got.Data) != "v1" {
				t.Fatalf("after failed put: get = %q, %v; want v1", got.Data, err)
			}
			if !got.Timestamp.Equal(now) {
				t.Errorf("after failed put: timestamp %v, want %v", got.Timestamp, now)
			}
			// Healing the fault restores writability.
			hook.DisarmStore()
			putVersion(t, s, "v2", now.Add(2*time.Hour))
			if got, _ := s.Get(crashArtifact); string(got.Data) != "v2" {
				t.Errorf("after heal: get = %q, want v2", got.Data)
			}
		})
	}
}

// TestOpenSweepsTempFiles pins that leftover temp files from a crashed
// writer are removed on open and never shadow committed data.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	putVersion(t, s, "v1", time.Now())
	stray := filepath.Join(dir, "ds_bn_title.json.tmp")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("temp file survived reopen: %v", err)
	}
	if got, err := s2.Get(crashArtifact); err != nil || string(got.Data) != "v1" {
		t.Errorf("get after temp sweep = %q, %v", got.Data, err)
	}
}
