package datagen

import (
	"math"
	"testing"

	"bytecard/internal/types"
)

func TestIMDBShape(t *testing.T) {
	ds := IMDB(Config{Scale: 0.05, Seed: 1})
	wantTables := []string{"title", "cast_info", "movie_keyword", "movie_info", "movie_companies", "movie_info_idx"}
	for _, name := range wantTables {
		if ds.DB.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
		if ds.Schema.Table(name) == nil {
			t.Errorf("missing schema for %s", name)
		}
	}
	if got := len(ds.DB.TableNames()); got != 6 {
		t.Errorf("tables = %d, want 6", got)
	}
	if err := ds.Schema.Validate(); err != nil {
		t.Errorf("schema invalid: %v", err)
	}
	// All five fact tables join to title.id → one join class.
	classes := ds.Schema.JoinClasses()
	if len(classes) != 1 || len(classes[0].Members) != 6 {
		t.Errorf("join classes = %v", classes)
	}
}

func TestIMDBForeignKeysInRange(t *testing.T) {
	ds := IMDB(Config{Scale: 0.03, Seed: 2})
	nTitle := ds.DB.Table("title").NumRows()
	ci := ds.DB.Table("cast_info")
	col := ci.ColByName("movie_id")
	for i := 0; i < ci.NumRows(); i++ {
		v := col.Value(i).I
		if v < 1 || v > int64(nTitle) {
			t.Fatalf("cast_info.movie_id[%d] = %d out of [1,%d]", i, v, nTitle)
		}
	}
}

func TestIMDBKindYearCorrelation(t *testing.T) {
	ds := IMDB(Config{Scale: 0.2, Seed: 3})
	title := ds.DB.Table("title")
	kind := title.ColByName("kind_id")
	year := title.ColByName("production_year")
	var sumTV, nTV, sumOther, nOther float64
	for i := 0; i < title.NumRows(); i++ {
		if kind.Value(i).I == 2 {
			sumTV += float64(year.Value(i).I)
			nTV++
		} else {
			sumOther += float64(year.Value(i).I)
			nOther++
		}
	}
	if nTV == 0 || nOther == 0 {
		t.Fatal("degenerate kind distribution")
	}
	if sumTV/nTV-sumOther/nOther < 5 {
		t.Errorf("TV series must skew later: tv=%.1f other=%.1f", sumTV/nTV, sumOther/nOther)
	}
}

func TestSTATSShape(t *testing.T) {
	ds := STATS(Config{Scale: 0.05, Seed: 1})
	if got := len(ds.DB.TableNames()); got != 8 {
		t.Errorf("tables = %d, want 8", got)
	}
	if err := ds.Schema.Validate(); err != nil {
		t.Errorf("schema invalid: %v", err)
	}
	// Two hub keys: users.id and posts.id — postLinks.related_post_id also
	// joins posts.id, so everything reachable stays in two classes.
	classes := ds.Schema.JoinClasses()
	if len(classes) != 2 {
		t.Errorf("join classes = %d, want 2", len(classes))
	}
}

func TestSTATSReputationUpvoteCorrelation(t *testing.T) {
	ds := STATS(Config{Scale: 0.1, Seed: 5})
	users := ds.DB.Table("users")
	rep := users.ColByName("reputation")
	up := users.ColByName("up_votes")
	// Pearson correlation should be strongly positive.
	n := float64(users.NumRows())
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < users.NumRows(); i++ {
		x, y := float64(rep.Value(i).I), float64(up.Value(i).I)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	corr := (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
	if corr < 0.8 {
		t.Errorf("reputation/up_votes correlation = %g, want > 0.8", corr)
	}
}

func TestAEOLUSShape(t *testing.T) {
	ds := AEOLUS(Config{Scale: 0.02, Seed: 1})
	if got := len(ds.DB.TableNames()); got != 5 {
		t.Errorf("tables = %d, want 5", got)
	}
	if err := ds.Schema.Validate(); err != nil {
		t.Errorf("schema invalid: %v", err)
	}
}

func TestAEOLUSPlatformContentCorrelation(t *testing.T) {
	ds := AEOLUS(Config{Scale: 0.05, Seed: 2})
	ads := ds.DB.Table("ads")
	plat := ads.ColByName("target_platform")
	content := ads.ColByName("content_type")
	// P(content=1 | platform=1) must far exceed P(content=1 | platform=2).
	var c1p1, p1, c1p2, p2 float64
	for i := 0; i < ads.NumRows(); i++ {
		switch plat.Value(i).I {
		case 1:
			p1++
			if content.Value(i).I == 1 {
				c1p1++
			}
		case 2:
			p2++
			if content.Value(i).I == 1 {
				c1p2++
			}
		}
	}
	if p1 == 0 || p2 == 0 {
		t.Fatal("degenerate platform distribution")
	}
	if c1p1/p1 < 2*(c1p2/p2) {
		t.Errorf("content|platform correlation too weak: %g vs %g", c1p1/p1, c1p2/p2)
	}
}

func TestAEOLUSHighNDVColumn(t *testing.T) {
	ds := AEOLUS(Config{Scale: 0.02, Seed: 3})
	ev := ds.DB.Table("ad_events")
	col := ev.ColByName("session_id")
	seen := map[int64]bool{}
	for i := 0; i < ev.NumRows(); i++ {
		seen[col.Value(i).I] = true
	}
	ratio := float64(len(seen)) / float64(ev.NumRows())
	if ratio < 0.95 {
		t.Errorf("session_id NDV ratio = %g, want near-unique", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a := Toy(Config{Scale: 1, Seed: 9})
	b := Toy(Config{Scale: 1, Seed: 9})
	ta, tb := a.DB.Table("fact"), b.DB.Table("fact")
	if ta.NumRows() != tb.NumRows() {
		t.Fatal("row counts differ across identical seeds")
	}
	for i := 0; i < ta.NumRows(); i++ {
		for j := 0; j < ta.NumCols(); j++ {
			if !ta.Col(j).Value(i).Equal(tb.Col(j).Value(i)) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	c := Toy(Config{Scale: 1, Seed: 10})
	if c.DB.Table("fact").Col(2).Value(0).Equal(ta.Col(2).Value(0)) &&
		c.DB.Table("fact").Col(2).Value(1).Equal(ta.Col(2).Value(1)) &&
		c.DB.Table("fact").Col(2).Value(2).Equal(ta.Col(2).Value(2)) {
		t.Error("different seeds produced identical prefixes")
	}
}

func TestScaleControlsRowCounts(t *testing.T) {
	small := IMDB(Config{Scale: 0.01, Seed: 1})
	big := IMDB(Config{Scale: 0.02, Seed: 1})
	ns, nb := small.DB.Table("title").NumRows(), big.DB.Table("title").NumRows()
	if nb < ns*3/2 {
		t.Errorf("scale 0.02 (%d rows) should be ~2x scale 0.01 (%d rows)", nb, ns)
	}
}

func TestToyFlagDeterminedByVal(t *testing.T) {
	ds := Toy(Config{Scale: 1, Seed: 4})
	fact := ds.DB.Table("fact")
	val, flag := fact.ColByName("val"), fact.ColByName("flag")
	for i := 0; i < fact.NumRows(); i++ {
		want := int64(0)
		if val.Value(i).I >= 50 {
			want = 1
		}
		if flag.Value(i).I != want {
			t.Fatalf("row %d: flag %d inconsistent with val %d", i, flag.Value(i).I, val.Value(i).I)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, Config{Scale: 0.01, Seed: 1})
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if ds.Name != name {
			t.Errorf("dataset name = %s, want %s", ds.Name, name)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestMetadataRowCountsMatch(t *testing.T) {
	ds := STATS(Config{Scale: 0.02, Seed: 8})
	for _, name := range ds.DB.TableNames() {
		meta := ds.Schema.Table(name)
		if meta.RowCount != int64(ds.DB.Table(name).NumRows()) {
			t.Errorf("%s: catalog rows %d != storage rows %d", name, meta.RowCount, ds.DB.Table(name).NumRows())
		}
	}
}

func TestGenHelpers(t *testing.T) {
	g := newGen(1)
	for i := 0; i < 100; i++ {
		if v := g.uniform(5, 10); v < 5 || v > 10 {
			t.Fatalf("uniform out of range: %d", v)
		}
		if v := g.zipf(1.5, 100); v < 1 || v > 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		if v := g.normalClamped(0, 100, -10, 10); v < -10 || v > 10 {
			t.Fatalf("normalClamped out of range: %d", v)
		}
	}
	if g.zipf(1.5, 1) != 1 {
		t.Error("zipf with max 1 must return 1")
	}
	if g.uniform(5, 5) != 5 {
		t.Error("uniform degenerate range")
	}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[g.pick([]float64{0.8, 0.15, 0.05})]++
	}
	if counts[0] < 2000 || counts[2] > 400 {
		t.Errorf("pick distribution off: %v", counts)
	}
}

func TestZipfSkew(t *testing.T) {
	g := newGen(2)
	s := g.zipfSampler(1.5, 10000)
	counts := map[int64]int{}
	for i := 0; i < 50000; i++ {
		counts[s()]++
	}
	// Value 1 must dominate under Zipf.
	if counts[1] < 10000 {
		t.Errorf("zipf head count = %d, want heavy head", counts[1])
	}
}

func TestZipfDegenerateParams(t *testing.T) {
	g := newGen(7)
	// Skew s <= 1 makes rand.NewZipf return nil; the guard must fall back
	// to a uniform draw over the domain instead of panicking on first use.
	for _, s := range []float64{1.0, 0.5, 0} {
		for i := 0; i < 200; i++ {
			if v := g.zipf(s, 100); v < 1 || v > 100 {
				t.Fatalf("zipf(s=%g) out of range: %d", s, v)
			}
		}
		draw := g.zipfSampler(s, 100)
		for i := 0; i < 200; i++ {
			if v := draw(); v < 1 || v > 100 {
				t.Fatalf("zipfSampler(s=%g) out of range: %d", s, v)
			}
		}
	}
	// Degenerate domains collapse to the single value 1.
	for _, maxVal := range []int64{1, 0, -5} {
		if v := g.zipf(1.5, maxVal); v != 1 {
			t.Errorf("zipf(max=%d) = %d, want 1", maxVal, v)
		}
		if v := g.zipfSampler(1.5, maxVal)(); v != 1 {
			t.Errorf("zipfSampler(max=%d) = %d, want 1", maxVal, v)
		}
	}
	// s=1 fallback is uniform, not a constant: over 2000 draws of a
	// 100-value domain, the head must not dominate.
	head := 0
	draw := g.zipfSampler(1, 100)
	for i := 0; i < 2000; i++ {
		if draw() == 1 {
			head++
		}
	}
	if head > 200 {
		t.Errorf("s=1 fallback skews to head: %d/2000 ones", head)
	}
}

var _ = types.Int // keep import if assertions change
