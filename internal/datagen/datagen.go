// Package datagen builds the synthetic datasets the evaluation runs on.
// The paper evaluates on IMDB (JOB-light), STATS (STATS-CEB), and AEOLUS,
// an internal ByteDance business dataset; none of the raw data ships with
// this repository, so each generator reproduces the published *shape* of
// its dataset — table counts, primary-key/foreign-key fan-outs, Zipfian
// skew, cross-column correlation, and high-NDV columns — at a configurable
// scale factor. Q-error behaviour of the estimators depends on those shape
// properties, not on the literal bytes.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bytecard/internal/catalog"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// Dataset couples the materialized tables with their catalog metadata.
type Dataset struct {
	Name   string
	DB     *storage.Database
	Schema *catalog.Schema
}

// Config controls dataset generation.
type Config struct {
	// Scale multiplies every base row count; 1.0 is the default bench
	// scale. Values below ~0.01 still generate at least a handful of rows
	// per table.
	Scale float64
	// Seed drives the deterministic generator.
	Seed int64
	// Drift, when true, shifts the generated distribution partway through
	// each table's row stream — foreign-key Zipf skew and cross-column
	// correlations change for rows past DriftPoint — reproducing the
	// workload drift that makes models trained on the clean stream stale.
	// Toy and IMDB model the shift; the other generators currently ignore
	// the knob. Drift off is byte-identical to a Config without the field.
	Drift bool
	// DriftPoint is the fraction (0..1) of each row stream generated
	// before the shift; zero or out-of-range defaults to 0.5.
	DriftPoint float64
}

// driftAt reports whether zero-based row i of an n-row stream falls after
// the drift point (always false when drift is disabled).
func (c Config) driftAt(i, n int) bool {
	if !c.Drift {
		return false
	}
	p := c.DriftPoint
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	return float64(i) >= p*float64(n)
}

func (c Config) scale(base int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(math.Round(float64(base) * s))
	if n < 8 {
		n = 8
	}
	return n
}

// gen wraps a seeded RNG with the distribution helpers the generators use.
type gen struct {
	rng *rand.Rand
}

func newGen(seed int64) *gen { return &gen{rng: rand.New(rand.NewSource(seed))} }

// zipf returns a value in [1, maxVal] with Zipf skew s (>1 skews harder).
// Degenerate parameters degrade instead of panicking: a domain of one value
// always returns 1, and s <= 1 (where rand.NewZipf returns nil) falls back
// to a uniform draw over the domain.
func (g *gen) zipf(s float64, maxVal int64) int64 {
	if maxVal <= 1 {
		return 1
	}
	if s <= 1 {
		return g.uniform(1, maxVal)
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(maxVal-1))
	return int64(z.Uint64()) + 1
}

// zipfSampler returns a reusable sampler (much faster than re-creating the
// Zipf state per draw), with the same degenerate-parameter guards as zipf.
func (g *gen) zipfSampler(s float64, maxVal int64) func() int64 {
	if maxVal <= 1 {
		return func() int64 { return 1 }
	}
	if s <= 1 {
		return func() int64 { return g.uniform(1, maxVal) }
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(maxVal-1))
	return func() int64 { return int64(z.Uint64()) + 1 }
}

// uniform returns a value in [lo, hi].
func (g *gen) uniform(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Int63n(hi-lo+1)
}

// normalClamped samples a rounded normal with the given mean/stddev clamped
// to [lo, hi].
func (g *gen) normalClamped(mean, std float64, lo, hi int64) int64 {
	v := int64(math.Round(g.rng.NormFloat64()*std + mean))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// pick returns one of the options with the given cumulative weights.
func (g *gen) pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := g.rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// sortRowsBy orders rows by a time-like column and applies local
// shuffling, so marginal distributions and within-row correlations are
// preserved while the column correlates with row order — the natural
// clustering of append-only warehouses (rows arrive roughly
// chronologically). This clustering is what makes block skipping by the
// multi-stage reader effective.
func (g *gen) sortRowsBy(rows [][]types.Datum, colIdx int) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][colIdx].I < rows[j][colIdx].I })
	window := len(rows) / 50
	if window < 2 {
		return
	}
	for i := range rows {
		j := i + g.rng.Intn(window)
		if j < len(rows) {
			rows[i], rows[j] = rows[j], rows[i]
		}
	}
}

// tableSpec couples a builder with its catalog registration.
type tableSpec struct {
	b     *storage.Builder
	specs []storage.ColumnSpec
}

func newTable(name string, specs []storage.ColumnSpec) *tableSpec {
	return &tableSpec{b: storage.NewBuilder(name, specs), specs: specs}
}

func (t *tableSpec) finish(ds *Dataset) *storage.Table {
	tab := t.b.Build()
	ds.DB.Add(tab)
	meta := &catalog.TableMeta{Name: tab.Name(), RowCount: int64(tab.NumRows())}
	for _, s := range t.specs {
		meta.Columns = append(meta.Columns, catalog.ColumnMeta{Name: s.Name, Kind: s.Kind})
	}
	ds.Schema.AddTable(meta)
	return tab
}

func newDataset(name string) *Dataset {
	return &Dataset{Name: name, DB: storage.NewDatabase(), Schema: catalog.NewSchema()}
}

func join(ds *Dataset, lt, lc, rt, rc string) {
	ds.Schema.AddJoinPattern(catalog.JoinPattern{
		Left:  catalog.ColumnRef{Table: lt, Column: lc},
		Right: catalog.ColumnRef{Table: rt, Column: rc},
	})
}

// IMDB generates the IMDB-like dataset backing the JOB-light workload: a
// title dimension with five fact tables hanging off title.id, Zipfian
// movie popularity (a few titles account for most cast/keyword entries),
// and production_year correlated with kind_id.
func IMDB(cfg Config) *Dataset {
	g := newGen(cfg.Seed ^ 0x1347)
	ds := newDataset("imdb")

	nTitle := cfg.scale(40000)
	title := newTable("title", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "kind_id", Kind: types.KindInt64},
		{Name: "production_year", Kind: types.KindInt64},
		{Name: "season_nr", Kind: types.KindInt64},
	})
	titleRows := make([][]types.Datum, 0, nTitle)
	for i := 1; i <= nTitle; i++ {
		kind := int64(g.pick([]float64{0.35, 0.3, 0.12, 0.1, 0.06, 0.04, 0.03})) + 1
		// TV series (kind 2) skew later; movies (kind 1) spread wide —
		// the cross-column correlation traditional estimators miss.
		var year int64
		if kind == 2 {
			year = g.normalClamped(2010, 6, 1950, 2019)
		} else {
			year = g.normalClamped(1995, 18, 1880, 2019)
		}
		season := int64(0)
		if kind == 2 {
			season = g.uniform(1, 25)
		}
		titleRows = append(titleRows, []types.Datum{
			types.Int(int64(i)), types.Int(kind), types.Int(year), types.Int(season),
		})
	}
	// Titles are ingested roughly in production order: ids reassigned after
	// time-clustering so auto-increment ids track years, as in real feeds.
	g.sortRowsBy(titleRows, 2)
	for i, row := range titleRows {
		row[0] = types.Int(int64(i + 1))
		title.b.Append(row)
	}
	title.finish(ds)

	factSizes := map[string]int{
		"cast_info":       140000,
		"movie_keyword":   90000,
		"movie_info":      60000,
		"movie_companies": 50000,
		"movie_info_idx":  30000,
	}

	movieFK := g.zipfSampler(1.3, int64(nTitle))
	// Post-drift fact rows reference a much hotter popularity head —
	// the skew shift that invalidates join-bucket statistics trained on
	// the clean prefix. (Building the sampler consumes no RNG state, so
	// the drift-off stream is unchanged.)
	movieFKDrift := g.zipfSampler(2.0, int64(nTitle))
	movieRef := func(i, n int) int64 {
		if cfg.driftAt(i, n) {
			return movieFKDrift()
		}
		return movieFK()
	}

	ci := newTable("cast_info", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "movie_id", Kind: types.KindInt64},
		{Name: "person_id", Kind: types.KindInt64},
		{Name: "role_id", Kind: types.KindInt64},
	})
	nCast := cfg.scale(factSizes["cast_info"])
	personMax := int64(cfg.scale(80000))
	personFK := g.zipfSampler(1.2, personMax)
	for i := 1; i <= nCast; i++ {
		person := personFK()
		// Prolific people (low ids under Zipf) cluster in acting roles —
		// until the drift point, after which the role mix decorrelates.
		var role int64
		if person < personMax/10 && !cfg.driftAt(i-1, nCast) {
			role = int64(g.pick([]float64{0.45, 0.35, 0.05, 0.05, 0.04, 0.02, 0.01, 0.01, 0.01, 0.005, 0.005})) + 1
		} else {
			role = g.uniform(1, 11)
		}
		ci.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(movieRef(i-1, nCast)), types.Int(person), types.Int(role),
		})
	}
	ci.finish(ds)

	mk := newTable("movie_keyword", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "movie_id", Kind: types.KindInt64},
		{Name: "keyword_id", Kind: types.KindInt64},
	})
	nKw := cfg.scale(factSizes["movie_keyword"])
	kwFK := g.zipfSampler(1.4, int64(cfg.scale(30000)))
	for i := 1; i <= nKw; i++ {
		mk.b.Append([]types.Datum{types.Int(int64(i)), types.Int(movieRef(i-1, nKw)), types.Int(kwFK())})
	}
	mk.finish(ds)

	mi := newTable("movie_info", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "movie_id", Kind: types.KindInt64},
		{Name: "info_type_id", Kind: types.KindInt64},
	})
	nMi := cfg.scale(factSizes["movie_info"])
	for i := 1; i <= nMi; i++ {
		mi.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(movieRef(i-1, nMi)), types.Int(g.zipf(1.5, 110)),
		})
	}
	mi.finish(ds)

	mc := newTable("movie_companies", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "movie_id", Kind: types.KindInt64},
		{Name: "company_id", Kind: types.KindInt64},
		{Name: "company_type_id", Kind: types.KindInt64},
	})
	nMc := cfg.scale(factSizes["movie_companies"])
	companyFK := g.zipfSampler(1.5, int64(cfg.scale(20000)))
	for i := 1; i <= nMc; i++ {
		mc.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(movieRef(i-1, nMc)), types.Int(companyFK()),
			types.Int(g.uniform(1, 2)),
		})
	}
	mc.finish(ds)

	mii := newTable("movie_info_idx", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "movie_id", Kind: types.KindInt64},
		{Name: "info_type_id", Kind: types.KindInt64},
	})
	nMii := cfg.scale(factSizes["movie_info_idx"])
	for i := 1; i <= nMii; i++ {
		mii.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(movieRef(i-1, nMii)), types.Int(g.uniform(99, 113)),
		})
	}
	mii.finish(ds)

	for _, fact := range []string{"cast_info", "movie_keyword", "movie_info", "movie_companies", "movie_info_idx"} {
		join(ds, fact, "movie_id", "title", "id")
	}
	return ds
}

// STATS generates the STATS-like dataset (Stack Exchange shape) backing the
// STATS-CEB workload: eight tables, two hub keys (users.id and posts.id),
// strong score/view correlations, and heavier tails than IMDB — the
// distribution complexity the paper credits for STATS's larger wins.
func STATS(cfg Config) *Dataset {
	g := newGen(cfg.Seed ^ 0x57A75)
	ds := newDataset("stats")

	nUsers := cfg.scale(8000)
	users := newTable("users", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "reputation", Kind: types.KindInt64},
		{Name: "creation_year", Kind: types.KindInt64},
		{Name: "up_votes", Kind: types.KindInt64},
		{Name: "down_votes", Kind: types.KindInt64},
	})
	for i := 1; i <= nUsers; i++ {
		rep := g.zipf(1.2, 100000)
		up := int64(float64(rep)*0.6) + g.uniform(0, 20) // strongly correlated
		down := g.zipf(1.8, rep/10+2)
		users.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(rep), types.Int(g.uniform(2008, 2014)),
			types.Int(up), types.Int(down),
		})
	}
	users.finish(ds)

	nPosts := cfg.scale(45000)
	posts := newTable("posts", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "owner_user_id", Kind: types.KindInt64},
		{Name: "post_type", Kind: types.KindInt64},
		{Name: "score", Kind: types.KindInt64},
		{Name: "view_count", Kind: types.KindInt64},
		{Name: "answer_count", Kind: types.KindInt64},
		{Name: "creation_year", Kind: types.KindInt64},
	})
	ownerFK := g.zipfSampler(1.25, int64(nUsers))
	postRows := make([][]types.Datum, 0, nPosts)
	for i := 1; i <= nPosts; i++ {
		score := g.zipf(1.6, 500) - 3 // mostly small, occasionally negative
		views := score*g.uniform(20, 60) + g.zipf(1.3, 2000)
		if views < 0 {
			views = 0
		}
		postType := int64(g.pick([]float64{0.45, 0.5, 0.05})) + 1
		answers := int64(0)
		if postType == 1 {
			answers = g.zipf(1.8, 30) - 1
		}
		postRows = append(postRows, []types.Datum{
			types.Int(int64(i)), types.Int(ownerFK()), types.Int(postType),
			types.Int(score), types.Int(views), types.Int(answers),
			types.Int(g.uniform(2009, 2014)),
		})
	}
	g.sortRowsBy(postRows, 6) // chronological ingestion
	for i, row := range postRows {
		row[0] = types.Int(int64(i + 1))
		posts.b.Append(row)
	}
	posts.finish(ds)

	postFK := g.zipfSampler(1.35, int64(nPosts))
	userFK := g.zipfSampler(1.25, int64(nUsers))

	comments := newTable("comments", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "post_id", Kind: types.KindInt64},
		{Name: "user_id", Kind: types.KindInt64},
		{Name: "score", Kind: types.KindInt64},
		{Name: "creation_year", Kind: types.KindInt64},
	})
	nComments := cfg.scale(70000)
	commentRows := make([][]types.Datum, 0, nComments)
	for i := 1; i <= nComments; i++ {
		commentRows = append(commentRows, []types.Datum{
			types.Int(int64(i)), types.Int(postFK()), types.Int(userFK()),
			types.Int(g.zipf(2.0, 60) - 1), types.Int(g.uniform(2009, 2014)),
		})
	}
	g.sortRowsBy(commentRows, 4)
	for _, row := range commentRows {
		comments.b.Append(row)
	}
	comments.finish(ds)

	badges := newTable("badges", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "user_id", Kind: types.KindInt64},
		{Name: "badge_class", Kind: types.KindInt64},
		{Name: "grant_year", Kind: types.KindInt64},
	})
	nBadges := cfg.scale(30000)
	for i := 1; i <= nBadges; i++ {
		badges.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(userFK()), types.Int(g.zipf(1.9, 3)),
			types.Int(g.uniform(2009, 2014)),
		})
	}
	badges.finish(ds)

	votes := newTable("votes", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "post_id", Kind: types.KindInt64},
		{Name: "user_id", Kind: types.KindInt64},
		{Name: "vote_type", Kind: types.KindInt64},
		{Name: "creation_year", Kind: types.KindInt64},
	})
	nVotes := cfg.scale(90000)
	voteRows := make([][]types.Datum, 0, nVotes)
	for i := 1; i <= nVotes; i++ {
		voteRows = append(voteRows, []types.Datum{
			types.Int(int64(i)), types.Int(postFK()), types.Int(userFK()),
			types.Int(g.zipf(1.7, 15)), types.Int(g.uniform(2009, 2014)),
		})
	}
	g.sortRowsBy(voteRows, 4)
	for _, row := range voteRows {
		votes.b.Append(row)
	}
	votes.finish(ds)

	ph := newTable("postHistory", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "post_id", Kind: types.KindInt64},
		{Name: "user_id", Kind: types.KindInt64},
		{Name: "history_type", Kind: types.KindInt64},
	})
	nPH := cfg.scale(60000)
	for i := 1; i <= nPH; i++ {
		ph.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(postFK()), types.Int(userFK()),
			types.Int(g.zipf(1.5, 38)),
		})
	}
	ph.finish(ds)

	pl := newTable("postLinks", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "post_id", Kind: types.KindInt64},
		{Name: "related_post_id", Kind: types.KindInt64},
		{Name: "link_type", Kind: types.KindInt64},
	})
	nPL := cfg.scale(6000)
	for i := 1; i <= nPL; i++ {
		pl.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(postFK()), types.Int(postFK()),
			types.Int(g.zipf(2.5, 3)),
		})
	}
	pl.finish(ds)

	tags := newTable("tags", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "excerpt_post_id", Kind: types.KindInt64},
		{Name: "tag_count", Kind: types.KindInt64},
	})
	nTags := cfg.scale(1000)
	for i := 1; i <= nTags; i++ {
		tags.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(postFK()), types.Int(g.zipf(1.3, 20000)),
		})
	}
	tags.finish(ds)

	join(ds, "posts", "owner_user_id", "users", "id")
	join(ds, "comments", "post_id", "posts", "id")
	join(ds, "comments", "user_id", "users", "id")
	join(ds, "badges", "user_id", "users", "id")
	join(ds, "votes", "post_id", "posts", "id")
	join(ds, "votes", "user_id", "users", "id")
	join(ds, "postHistory", "post_id", "posts", "id")
	join(ds, "postHistory", "user_id", "users", "id")
	join(ds, "postLinks", "post_id", "posts", "id")
	join(ds, "tags", "excerpt_post_id", "posts", "id")
	return ds
}

// AEOLUS generates the AEOLUS-like dataset: five business tables around an
// advertising-events fact table, matching the paper's description of its
// internal workload — heavy skew, categorical dimensions with strong
// correlations (the BN figure in the paper is an advertising-placement
// table), and exceptionally high-NDV columns (the regime where RBX needs
// calibration).
func AEOLUS(cfg Config) *Dataset {
	g := newGen(cfg.Seed ^ 0xAE0105)
	ds := newDataset("aeolus")

	nAdvertisers := cfg.scale(2000)
	adv := newTable("advertisers", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "industry", Kind: types.KindInt64},
		{Name: "region", Kind: types.KindInt64},
	})
	for i := 1; i <= nAdvertisers; i++ {
		industry := g.zipf(1.4, 40)
		// Region correlates with industry (industries cluster regionally).
		region := (industry*7+g.zipf(1.8, 5))%20 + 1
		adv.b.Append([]types.Datum{types.Int(int64(i)), types.Int(industry), types.Int(region)})
	}
	adv.finish(ds)

	nCampaigns := cfg.scale(10000)
	camp := newTable("campaigns", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "advertiser_id", Kind: types.KindInt64},
		{Name: "budget", Kind: types.KindInt64},
		{Name: "category", Kind: types.KindInt64},
	})
	advFK := g.zipfSampler(1.3, int64(nAdvertisers))
	for i := 1; i <= nCampaigns; i++ {
		camp.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(advFK()), types.Int(g.zipf(1.2, 1000000)),
			types.Int(g.zipf(1.5, 30)),
		})
	}
	camp.finish(ds)

	nAds := cfg.scale(40000)
	ads := newTable("ads", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "campaign_id", Kind: types.KindInt64},
		{Name: "target_platform", Kind: types.KindInt64},
		{Name: "content_type", Kind: types.KindInt64},
		{Name: "bid", Kind: types.KindInt64},
		// audience_tags is a nested column: stored, but excluded from
		// model training by the preprocessor's column selection.
		{Name: "audience_tags", Kind: types.KindArray},
	})
	campFK := g.zipfSampler(1.3, int64(nCampaigns))
	for i := 1; i <= nAds; i++ {
		platform := int64(g.pick([]float64{0.45, 0.25, 0.15, 0.1, 0.05})) + 1
		// Content type strongly depends on platform — the BN edge the
		// paper's Figure 4 illustrates.
		var content int64
		switch platform {
		case 1:
			content = int64(g.pick([]float64{0.7, 0.2, 0.1})) + 1
		case 2:
			content = int64(g.pick([]float64{0.1, 0.8, 0.1})) + 1
		default:
			content = int64(g.pick([]float64{0.2, 0.2, 0.6})) + 1
		}
		ads.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(campFK()), types.Int(platform),
			types.Int(content), types.Int(g.zipf(1.4, 5000)),
			types.Arr(fmt.Sprintf(`["seg%d","seg%d"]`, g.zipf(1.5, 40), g.zipf(1.5, 40))),
		})
	}
	ads.finish(ds)

	nUsers := cfg.scale(30000)
	ud := newTable("users_dim", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "age_group", Kind: types.KindInt64},
		{Name: "region", Kind: types.KindInt64},
		{Name: "device", Kind: types.KindInt64},
	})
	for i := 1; i <= nUsers; i++ {
		age := int64(g.pick([]float64{0.15, 0.35, 0.25, 0.15, 0.1})) + 1
		device := (age+g.zipf(2.0, 3))%4 + 1 // device correlates with age
		ud.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(age), types.Int(g.zipf(1.5, 20)),
			types.Int(device),
		})
	}
	ud.finish(ds)

	nEvents := cfg.scale(300000)
	ev := newTable("ad_events", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "ad_id", Kind: types.KindInt64},
		{Name: "user_id", Kind: types.KindInt64},
		{Name: "event_type", Kind: types.KindInt64},
		{Name: "duration", Kind: types.KindInt64},
		{Name: "cost", Kind: types.KindInt64},
		{Name: "event_date", Kind: types.KindInt64},
		{Name: "session_id", Kind: types.KindInt64},
	})
	adFK := g.zipfSampler(1.35, int64(nAds))
	userFK := g.zipfSampler(1.1, int64(nUsers))
	eventRows := make([][]types.Datum, 0, nEvents)
	for i := 1; i <= nEvents; i++ {
		etype := int64(g.pick([]float64{0.7, 0.2, 0.07, 0.03})) + 1
		dur := g.zipf(1.5, 600)
		if etype == 1 { // impressions are short
			dur = g.zipf(2.2, 30)
		}
		// session_id is the exceptionally-high-NDV column: nearly unique.
		session := int64(i)*7 + g.uniform(0, 5)
		eventRows = append(eventRows, []types.Datum{
			types.Int(int64(i)), types.Int(adFK()), types.Int(userFK()),
			types.Int(etype), types.Int(dur), types.Int(dur * g.uniform(1, 9)),
			types.Int(g.uniform(20230101, 20230190)), types.Int(session),
		})
	}
	g.sortRowsBy(eventRows, 6) // event logs arrive in time order
	for i, row := range eventRows {
		row[0] = types.Int(int64(i + 1))
		ev.b.Append(row)
	}
	ev.finish(ds)

	join(ds, "ad_events", "ad_id", "ads", "id")
	join(ds, "ad_events", "user_id", "users_dim", "id")
	join(ds, "ads", "campaign_id", "campaigns", "id")
	join(ds, "campaigns", "advertiser_id", "advertisers", "id")
	return ds
}

// Toy generates a deterministic two-table dataset small enough for exact
// brute-force verification in tests: dim(id, cat) and fact(id, dim_id, val,
// flag) with a known correlation between val and flag.
func Toy(cfg Config) *Dataset {
	g := newGen(cfg.Seed ^ 0x70)
	ds := newDataset("toy")

	nDim := cfg.scale(50)
	dim := newTable("dim", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "cat", Kind: types.KindInt64},
	})
	for i := 1; i <= nDim; i++ {
		dim.b.Append([]types.Datum{types.Int(int64(i)), types.Int(g.uniform(1, 5))})
	}
	dim.finish(ds)

	nFact := cfg.scale(400)
	fact := newTable("fact", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "dim_id", Kind: types.KindInt64},
		{Name: "val", Kind: types.KindInt64},
		{Name: "flag", Kind: types.KindInt64},
	})
	fk := g.zipfSampler(1.4, int64(nDim))
	// The post-drift regime concentrates the foreign key on a hotter head
	// (sampler construction consumes no RNG state, keeping the drift-off
	// stream byte-identical).
	fkDrift := g.zipfSampler(2.4, int64(nDim))
	for i := 1; i <= nFact; i++ {
		val := g.uniform(0, 99)
		flag := int64(0)
		if val >= 50 { // flag fully determined by val: maximal correlation
			flag = 1
		}
		dimID := fk()
		if cfg.driftAt(i-1, nFact) {
			// After the drift point the val↔flag correlation inverts, the
			// value range narrows, and the key skew sharpens — stale models
			// trained on the clean prefix mispredict all three.
			flag = 1 - flag
			val = g.uniform(0, 49)
			dimID = fkDrift()
		}
		fact.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(dimID), types.Int(val), types.Int(flag),
		})
	}
	fact.finish(ds)

	join(ds, "fact", "dim_id", "dim", "id")
	return ds
}

// TimeSeries generates an IoT/metrics dataset in the shape ByteDance's
// observability warehouses ingest: a device dimension and one append-only
// readings fact with few measurement kinds, many high-NDV tag columns
// (host, sensor serial, trace id — the regime the RBX NDV estimator
// exists for), and a strictly append-ordered timestamp. Because the
// timestamp is monotone in row order, per-block zone maps partition its
// domain perfectly — a time-range predicate overlaps only the blocks that
// actually hold the window, so the pushdown scan contract skips nearly
// the whole table on narrow windows.
func TimeSeries(cfg Config) *Dataset {
	g := newGen(cfg.Seed ^ 0x715E)
	ds := newDataset("timeseries")

	nDevices := cfg.scale(3000)
	dev := newTable("devices", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "fleet", Kind: types.KindInt64},
		{Name: "model", Kind: types.KindString},
		{Name: "site", Kind: types.KindString},
	})
	for i := 1; i <= nDevices; i++ {
		// Fleets are few; models and sites are moderately wide tags.
		fleet := g.zipf(1.5, 12)
		dev.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(fleet),
			types.Str(fmt.Sprintf("model-%02d", g.zipf(1.3, 40))),
			types.Str(fmt.Sprintf("site-%03d", g.zipf(1.2, int64(nDevices/20+2)))),
		})
	}
	dev.finish(ds)

	nReadings := cfg.scale(240000)
	rd := newTable("readings", []storage.ColumnSpec{
		{Name: "id", Kind: types.KindInt64},
		{Name: "device_id", Kind: types.KindInt64},
		{Name: "ts", Kind: types.KindInt64},
		{Name: "metric", Kind: types.KindInt64},
		{Name: "value", Kind: types.KindFloat64},
		{Name: "host", Kind: types.KindString},
		{Name: "sensor", Kind: types.KindString},
		{Name: "trace_id", Kind: types.KindInt64},
	})
	deviceFK := g.zipfSampler(1.25, int64(nDevices))
	// Append-ordered ingestion: ts advances monotonically (a few readings
	// share a tick), never looking back — the property that makes the
	// timestamp's zone maps disjoint across blocks.
	ts := int64(1_700_000_000)
	nHosts := int64(nReadings/40 + 2) // high-NDV: one host per ~40 rows
	for i := 1; i <= nReadings; i++ {
		ts += g.uniform(0, 3)
		// Few measurement kinds, skewed toward the hot ones.
		metric := g.zipf(1.6, 6)
		val := float64(g.zipf(1.4, 10000)) / 10
		if metric == 1 { // cpu-style gauge: bounded
			val = float64(g.uniform(0, 1000)) / 10
		}
		host := g.zipf(1.1, nHosts)
		rd.b.Append([]types.Datum{
			types.Int(int64(i)), types.Int(deviceFK()), types.Int(ts),
			types.Int(metric), types.Float(val),
			types.Str(fmt.Sprintf("host-%06d", host)),
			// sensor serials are near-unique per (host, metric): the
			// exceptionally-high-NDV tag column.
			types.Str(fmt.Sprintf("sn-%06d-%d", host*7+metric, g.uniform(0, 9))),
			types.Int(int64(i)*13 + g.uniform(0, 11)), // trace_id: nearly unique
		})
	}
	rd.finish(ds)

	join(ds, "readings", "device_id", "devices", "id")
	return ds
}

// ByName dispatches to a generator by dataset name.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "imdb":
		return IMDB(cfg), nil
	case "stats":
		return STATS(cfg), nil
	case "aeolus":
		return AEOLUS(cfg), nil
	case "timeseries":
		return TimeSeries(cfg), nil
	case "toy":
		return Toy(cfg), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// Names lists the available datasets.
func Names() []string { return []string{"imdb", "stats", "aeolus", "timeseries", "toy"} }
