package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bytecard/internal/types"
)

func pred(col string, op CmpOp, v int64) Pred {
	return Pred{Table: "t", Col: col, Op: op, Val: types.Int(v)}
}

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{OpEq, 0, true}, {OpEq, 1, false},
		{OpNe, 0, false}, {OpNe, -1, true},
		{OpLt, -1, true}, {OpLt, 0, false},
		{OpLe, 0, true}, {OpLe, 1, false},
		{OpGt, 1, true}, {OpGt, 0, false},
		{OpGe, 0, true}, {OpGe, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.cmp); got != c.want {
			t.Errorf("%s.Apply(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestPredEvalAndString(t *testing.T) {
	p := pred("a", OpGe, 10)
	if !p.Eval(types.Int(10)) || p.Eval(types.Int(9)) {
		t.Error("Pred.Eval broken")
	}
	if p.String() != "t.a >= 10" {
		t.Errorf("String = %q", p.String())
	}
}

func TestAndOrFlatten(t *testing.T) {
	a, b, c := Leaf(pred("a", OpEq, 1)), Leaf(pred("b", OpEq, 2)), Leaf(pred("c", OpEq, 3))
	n := And(And(a, b), c)
	if n.Kind != KindAnd || len(n.Children) != 3 {
		t.Errorf("nested AND must flatten: kind=%v children=%d", n.Kind, len(n.Children))
	}
	m := Or(a, Or(b, c))
	if m.Kind != KindOr || len(m.Children) != 3 {
		t.Error("nested OR must flatten")
	}
	if And() != nil {
		t.Error("empty And must be nil")
	}
	if And(a) != a {
		t.Error("single-child And must collapse")
	}
	if And(nil, a) != a {
		t.Error("nil children must be dropped")
	}
}

func TestNodeEval(t *testing.T) {
	n := And(
		Leaf(pred("a", OpGt, 5)),
		Or(Leaf(pred("b", OpEq, 1)), Leaf(pred("b", OpEq, 2))),
	)
	get := func(vals map[string]int64) func(string, string) types.Datum {
		return func(_, col string) types.Datum { return types.Int(vals[col]) }
	}
	if !n.Eval(get(map[string]int64{"a": 6, "b": 2})) {
		t.Error("expected true")
	}
	if n.Eval(get(map[string]int64{"a": 6, "b": 3})) {
		t.Error("expected false (b not in {1,2})")
	}
	if n.Eval(get(map[string]int64{"a": 5, "b": 1})) {
		t.Error("expected false (a not > 5)")
	}
	if !(*Node)(nil).Eval(get(nil)) {
		t.Error("nil node must be true")
	}
}

func TestLeavesAndTables(t *testing.T) {
	n := And(
		Leaf(Pred{Table: "x", Col: "a", Op: OpEq, Val: types.Int(1)}),
		Leaf(Pred{Table: "y", Col: "b", Op: OpEq, Val: types.Int(2)}),
		Leaf(Pred{Table: "x", Col: "c", Op: OpEq, Val: types.Int(3)}),
	)
	if got := len(n.Leaves()); got != 3 {
		t.Errorf("Leaves = %d, want 3", got)
	}
	tabs := n.Tables()
	if len(tabs) != 2 || tabs[0] != "x" || tabs[1] != "y" {
		t.Errorf("Tables = %v", tabs)
	}
}

func TestConjunction(t *testing.T) {
	n := And(Leaf(pred("a", OpEq, 1)), Leaf(pred("b", OpGt, 2)))
	preds, ok := n.Conjunction()
	if !ok || len(preds) != 2 {
		t.Error("pure AND must extract")
	}
	m := Or(Leaf(pred("a", OpEq, 1)), Leaf(pred("b", OpGt, 2)))
	if _, ok := m.Conjunction(); ok {
		t.Error("OR must not be a conjunction")
	}
	if preds, ok := (*Node)(nil).Conjunction(); !ok || preds != nil {
		t.Error("nil conjunction broken")
	}
	if _, ok := And(Leaf(pred("a", OpEq, 1)), m).Conjunction(); ok {
		t.Error("AND with OR child is not a pure conjunction")
	}
}

func TestDNF(t *testing.T) {
	// (a=1 OR a=2) AND b=3 → [a=1,b=3], [a=2,b=3]
	n := And(
		Or(Leaf(pred("a", OpEq, 1)), Leaf(pred("a", OpEq, 2))),
		Leaf(pred("b", OpEq, 3)),
	)
	dnf, err := n.DNF()
	if err != nil {
		t.Fatal(err)
	}
	if len(dnf) != 2 || len(dnf[0]) != 2 || len(dnf[1]) != 2 {
		t.Fatalf("DNF = %v", dnf)
	}
}

func TestDNFExplosionRejected(t *testing.T) {
	// AND of 5 binary ORs → 32 DNF terms > MaxDNFTerms.
	var ors []*Node
	for i := 0; i < 5; i++ {
		ors = append(ors, Or(Leaf(pred("a", OpEq, int64(i))), Leaf(pred("b", OpEq, int64(i)))))
	}
	if _, err := And(ors...).DNF(); err == nil {
		t.Error("expected DNF explosion error")
	}
}

func TestInclusionExclusionSigns(t *testing.T) {
	n := Or(Leaf(pred("a", OpEq, 1)), Leaf(pred("b", OpEq, 2)))
	terms, err := n.InclusionExclusion()
	if err != nil {
		t.Fatal(err)
	}
	// Three terms: +P(a), +P(b), -P(a∧b).
	if len(terms) != 3 {
		t.Fatalf("terms = %d, want 3", len(terms))
	}
	var sum float64
	for _, tm := range terms {
		sum += tm.Sign
	}
	if sum != 1 {
		t.Errorf("signs sum to %g, want 1 (|A∪B| identity)", sum)
	}
}

// Property: inclusion–exclusion over random boolean trees matches direct
// evaluation when "probability" is computed by brute force over a small
// domain.
func TestQuickInclusionExclusionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	domain := []int64{0, 1, 2, 3, 4}
	randTree := func(depth int) *Node {
		var gen func(d int) *Node
		gen = func(d int) *Node {
			if d == 0 || rng.Intn(3) == 0 {
				return Leaf(pred([]string{"a", "b", "c"}[rng.Intn(3)],
					[]CmpOp{OpEq, OpLt, OpGe, OpNe}[rng.Intn(4)], int64(rng.Intn(5))))
			}
			kids := []*Node{gen(d - 1), gen(d - 1)}
			if rng.Intn(2) == 0 {
				return And(kids...)
			}
			return Or(kids...)
		}
		return gen(depth)
	}
	evalConj := func(preds []Pred, a, b, c int64) bool {
		vals := map[string]int64{"a": a, "b": b, "c": c}
		for _, p := range preds {
			if !p.Eval(types.Int(vals[p.Col])) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 60; trial++ {
		n := randTree(2)
		terms, err := n.InclusionExclusion()
		if err != nil {
			continue // oversize expansion is allowed to be rejected
		}
		var direct, viaIE float64
		for _, a := range domain {
			for _, b := range domain {
				for _, c := range domain {
					get := func(_, col string) types.Datum {
						return types.Int(map[string]int64{"a": a, "b": b, "c": c}[col])
					}
					if n.Eval(get) {
						direct++
					}
					for _, tm := range terms {
						if evalConj(tm.Preds, a, b, c) {
							viaIE += tm.Sign
						}
					}
				}
			}
		}
		if math.Abs(direct-viaIE) > 1e-9 {
			t.Fatalf("tree %s: direct %g vs inclusion-exclusion %g", n, direct, viaIE)
		}
	}
}

func TestNodeString(t *testing.T) {
	n := And(Leaf(pred("a", OpEq, 1)), Or(Leaf(pred("b", OpLt, 2)), Leaf(pred("c", OpGt, 3))))
	want := "t.a = 1 AND (t.b < 2 OR t.c > 3)"
	if n.String() != want {
		t.Errorf("String = %q, want %q", n.String(), want)
	}
	if (*Node)(nil).String() != "TRUE" {
		t.Error("nil node string")
	}
}

func identityEnc(_ string, d types.Datum) (float64, bool) { return d.AsFloat(), true }

func TestBuildConstraintsMergesRanges(t *testing.T) {
	preds := []Pred{
		pred("a", OpGe, 10),
		pred("a", OpLt, 20),
		pred("b", OpEq, 5),
	}
	cs := BuildConstraints(preds, identityEnc)
	if len(cs) != 2 {
		t.Fatalf("constraints = %d, want 2", len(cs))
	}
	a := cs[0]
	if a.Lo != 10 || !a.LoIncl || a.Hi != 20 || a.HiIncl {
		t.Errorf("a constraint = %+v", a)
	}
	if !a.Contains(10) || !a.Contains(19) || a.Contains(20) || a.Contains(9) {
		t.Error("Contains broken for range")
	}
	b := cs[1]
	if !b.HasEq || b.Lo != 5 || b.Hi != 5 {
		t.Errorf("b constraint = %+v", b)
	}
}

func TestBuildConstraintsContradiction(t *testing.T) {
	cs := BuildConstraints([]Pred{pred("a", OpEq, 1), pred("a", OpEq, 2)}, identityEnc)
	if !cs[0].Empty {
		t.Error("a=1 AND a=2 must be empty")
	}
	cs = BuildConstraints([]Pred{pred("a", OpGt, 10), pred("a", OpLt, 5)}, identityEnc)
	if !cs[0].Empty {
		t.Error("a>10 AND a<5 must be empty")
	}
	cs = BuildConstraints([]Pred{pred("a", OpEq, 3), pred("a", OpNe, 3)}, identityEnc)
	if !cs[0].Empty {
		t.Error("a=3 AND a<>3 must be empty")
	}
}

func TestBuildConstraintsNonMemberEquality(t *testing.T) {
	enc := func(_ string, d types.Datum) (float64, bool) { return d.AsFloat(), false }
	cs := BuildConstraints([]Pred{pred("a", OpEq, 7)}, enc)
	if !cs[0].Empty {
		t.Error("equality against a non-member must be empty")
	}
	// <> against a non-member excludes nothing.
	cs = BuildConstraints([]Pred{pred("a", OpNe, 7)}, enc)
	if !cs[0].Unconstrained() {
		t.Error("<> non-member must leave the column unconstrained")
	}
}

func TestConstraintNe(t *testing.T) {
	cs := BuildConstraints([]Pred{pred("a", OpNe, 4)}, identityEnc)
	if cs[0].Contains(4) || !cs[0].Contains(5) {
		t.Error("Ne handling broken")
	}
}

func TestConstraintBoundaryTightening(t *testing.T) {
	cs := BuildConstraints([]Pred{pred("a", OpGe, 5), pred("a", OpGt, 5)}, identityEnc)
	if cs[0].LoIncl {
		t.Error("a>=5 AND a>5 must tighten to exclusive bound")
	}
	if cs[0].Contains(5) || !cs[0].Contains(6) {
		t.Error("tightened bound broken")
	}
}

// Property: a value satisfies the compiled constraints iff it satisfies
// every predicate directly.
func TestQuickConstraintsAgreeWithDirectEval(t *testing.T) {
	f := func(rawOps []uint8, rawVals []int8, probe int8) bool {
		n := len(rawOps)
		if n > 6 {
			n = 6
		}
		var preds []Pred
		for i := 0; i < n && i < len(rawVals); i++ {
			preds = append(preds, pred("a", CmpOp(rawOps[i]%6), int64(rawVals[i]%10)))
		}
		cs := BuildConstraints(preds, identityEnc)
		direct := true
		for _, p := range preds {
			if !p.Eval(types.Int(int64(probe))) {
				direct = false
			}
		}
		via := true
		if len(cs) == 1 {
			via = cs[0].Contains(float64(probe))
		}
		return direct == via
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
