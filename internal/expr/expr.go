// Package expr represents filter predicates: leaf comparisons against
// literals, boolean AND/OR trees over them, DNF expansion, the
// inclusion–exclusion transformation ByteCard applies to OR-ed queries
// before estimating (the paper's models natively handle AND-ed
// conjunctions), and per-column constraint compilation used by every
// estimator.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bytecard/internal/types"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Apply evaluates the operator given a three-way comparison result
// (as returned by types.Datum.Compare).
func (op CmpOp) Apply(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		panic("expr: unknown operator")
	}
}

// Pred is a leaf predicate: <table>.<column> <op> <literal>.
type Pred struct {
	Table string
	Col   string
	Op    CmpOp
	Val   types.Datum
}

// Eval applies the predicate to a cell value.
func (p Pred) Eval(v types.Datum) bool { return p.Op.Apply(v.Compare(p.Val)) }

// String renders the predicate in SQL form.
func (p Pred) String() string {
	name := p.Col
	if p.Table != "" {
		name = p.Table + "." + p.Col
	}
	return fmt.Sprintf("%s %s %s", name, p.Op, p.Val)
}

// NodeKind discriminates boolean-tree nodes.
type NodeKind int

// Boolean-tree node kinds.
const (
	KindLeaf NodeKind = iota
	KindAnd
	KindOr
)

// Node is a boolean expression tree. Leaves hold a Pred; interior nodes
// hold two or more children.
type Node struct {
	Kind     NodeKind
	Pred     Pred
	Children []*Node
}

// Leaf wraps a predicate.
func Leaf(p Pred) *Node { return &Node{Kind: KindLeaf, Pred: p} }

// And conjoins nodes, flattening nested ANDs. And() returns nil (true).
func And(children ...*Node) *Node { return combine(KindAnd, children) }

// Or disjoins nodes, flattening nested ORs.
func Or(children ...*Node) *Node { return combine(KindOr, children) }

func combine(kind NodeKind, children []*Node) *Node {
	var flat []*Node
	for _, c := range children {
		if c == nil {
			continue
		}
		if c.Kind == kind {
			flat = append(flat, c.Children...)
		} else {
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &Node{Kind: kind, Children: flat}
	}
}

// Eval evaluates the tree given a cell lookup. A nil node is true.
func (n *Node) Eval(get func(table, col string) types.Datum) bool {
	if n == nil {
		return true
	}
	switch n.Kind {
	case KindLeaf:
		return n.Pred.Eval(get(n.Pred.Table, n.Pred.Col))
	case KindAnd:
		for _, c := range n.Children {
			if !c.Eval(get) {
				return false
			}
		}
		return true
	case KindOr:
		for _, c := range n.Children {
			if c.Eval(get) {
				return true
			}
		}
		return false
	default:
		panic("expr: unknown node kind")
	}
}

// Leaves returns every leaf predicate in the tree.
func (n *Node) Leaves() []Pred {
	var out []Pred
	n.walk(func(p Pred) { out = append(out, p) })
	return out
}

func (n *Node) walk(f func(Pred)) {
	if n == nil {
		return
	}
	if n.Kind == KindLeaf {
		f(n.Pred)
		return
	}
	for _, c := range n.Children {
		c.walk(f)
	}
}

// Tables returns the sorted set of table names referenced by the tree.
func (n *Node) Tables() []string {
	seen := map[string]bool{}
	n.walk(func(p Pred) { seen[p.Table] = true })
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Conjunction returns the leaf predicates if the tree is a pure AND of
// leaves (or a single leaf, or nil), and ok=false otherwise.
func (n *Node) Conjunction() (preds []Pred, ok bool) {
	if n == nil {
		return nil, true
	}
	if n.Kind == KindLeaf {
		return []Pred{n.Pred}, true
	}
	if n.Kind != KindAnd {
		return nil, false
	}
	for _, c := range n.Children {
		if c.Kind != KindLeaf {
			return nil, false
		}
		preds = append(preds, c.Pred)
	}
	return preds, true
}

// MaxDNFTerms bounds DNF expansion; queries with wider OR fan-out are
// rejected rather than silently exploding.
const MaxDNFTerms = 16

// DNF expands the tree into disjunctive normal form: a list of
// conjunctions, each a list of leaf predicates.
func (n *Node) DNF() ([][]Pred, error) {
	if n == nil {
		return [][]Pred{nil}, nil
	}
	switch n.Kind {
	case KindLeaf:
		return [][]Pred{{n.Pred}}, nil
	case KindOr:
		var out [][]Pred
		for _, c := range n.Children {
			sub, err := c.DNF()
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > MaxDNFTerms {
				return nil, fmt.Errorf("expr: DNF exceeds %d terms", MaxDNFTerms)
			}
		}
		return out, nil
	case KindAnd:
		out := [][]Pred{nil}
		for _, c := range n.Children {
			sub, err := c.DNF()
			if err != nil {
				return nil, err
			}
			var next [][]Pred
			for _, a := range out {
				for _, b := range sub {
					term := make([]Pred, 0, len(a)+len(b))
					term = append(term, a...)
					term = append(term, b...)
					next = append(next, term)
				}
			}
			if len(next) > MaxDNFTerms {
				return nil, fmt.Errorf("expr: DNF exceeds %d terms", MaxDNFTerms)
			}
			out = next
		}
		return out, nil
	default:
		panic("expr: unknown node kind")
	}
}

// IETerm is one signed conjunction of the inclusion–exclusion expansion:
// P(D1 ∨ … ∨ Dk) = Σ_{∅≠S⊆{1..k}} (-1)^(|S|+1) P(∧_{i∈S} Di).
type IETerm struct {
	Sign  float64
	Preds []Pred
}

// MaxIEDisjuncts bounds the number of DNF disjuncts accepted by
// InclusionExclusion (the expansion has 2^k-1 terms).
const MaxIEDisjuncts = 6

// InclusionExclusion expands the tree into signed conjunctions whose signed
// probabilities sum to the probability of the whole tree. This is the
// transformation ByteCard applies so that conjunctive-only models (the
// Bayesian network) can estimate OR-ed filters.
func (n *Node) InclusionExclusion() ([]IETerm, error) {
	dnf, err := n.DNF()
	if err != nil {
		return nil, err
	}
	if len(dnf) == 1 {
		return []IETerm{{Sign: 1, Preds: dnf[0]}}, nil
	}
	if len(dnf) > MaxIEDisjuncts {
		return nil, fmt.Errorf("expr: inclusion-exclusion over %d disjuncts exceeds %d", len(dnf), MaxIEDisjuncts)
	}
	var out []IETerm
	for mask := 1; mask < 1<<len(dnf); mask++ {
		var preds []Pred
		bits := 0
		for i, term := range dnf {
			if mask&(1<<i) != 0 {
				bits++
				preds = append(preds, term...)
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		out = append(out, IETerm{Sign: sign, Preds: preds})
	}
	return out, nil
}

// String renders the tree in SQL form.
func (n *Node) String() string {
	if n == nil {
		return "TRUE"
	}
	switch n.Kind {
	case KindLeaf:
		return n.Pred.String()
	case KindAnd, KindOr:
		op := " AND "
		if n.Kind == KindOr {
			op = " OR "
		}
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			if c.Kind == KindLeaf {
				parts[i] = c.String()
			} else {
				parts[i] = "(" + c.String() + ")"
			}
		}
		return strings.Join(parts, op)
	default:
		panic("expr: unknown node kind")
	}
}

// Encoder converts a literal for a named column to the column's numeric
// image. The boolean reports whether the literal is an exact domain member
// (false e.g. for a string absent from the dictionary).
type Encoder func(col string, d types.Datum) (float64, bool)

// Constraint is the compiled form of all conjunctive predicates on one
// column: an interval, optional exact-equality emptiness, and a list of
// excluded points.
type Constraint struct {
	Col    string
	Lo, Hi float64 // closed bounds after normalization
	LoIncl bool
	HiIncl bool
	// Empty marks a contradiction (e.g. a = 1 AND a = 2).
	Empty bool
	// HasEq reports whether an equality pinned the column to Lo (== Hi).
	HasEq bool
	// Ne lists excluded points from <> predicates.
	Ne []float64
}

// NewConstraint returns the unconstrained interval for col.
func NewConstraint(col string) Constraint {
	return Constraint{Col: col, Lo: math.Inf(-1), Hi: math.Inf(1), LoIncl: true, HiIncl: true}
}

// Add tightens the constraint with one predicate (which must be on the same
// column). exact reports whether the encoded literal was a domain member.
func (c *Constraint) Add(op CmpOp, v float64, exact bool) {
	if c.Empty {
		return
	}
	switch op {
	case OpEq:
		if !exact {
			c.Empty = true
			return
		}
		c.tightenLo(v, true)
		c.tightenHi(v, true)
		if !c.Empty {
			c.HasEq = true
		}
	case OpNe:
		if exact {
			c.Ne = append(c.Ne, v)
		}
	case OpLt:
		c.tightenHi(v, false)
	case OpLe:
		c.tightenHi(v, true)
	case OpGt:
		c.tightenLo(v, false)
	case OpGe:
		c.tightenLo(v, true)
	}
	c.check()
}

func (c *Constraint) tightenLo(v float64, incl bool) {
	if v > c.Lo || (v == c.Lo && !incl && c.LoIncl) {
		c.Lo, c.LoIncl = v, incl
	}
}

func (c *Constraint) tightenHi(v float64, incl bool) {
	if v < c.Hi || (v == c.Hi && !incl && c.HiIncl) {
		c.Hi, c.HiIncl = v, incl
	}
}

func (c *Constraint) check() {
	if c.Lo > c.Hi || (c.Lo == c.Hi && !(c.LoIncl && c.HiIncl)) {
		c.Empty = true
	}
	if c.HasEq {
		for _, ne := range c.Ne {
			if ne == c.Lo {
				c.Empty = true
			}
		}
	}
}

// Unconstrained reports whether the constraint admits all values.
func (c Constraint) Unconstrained() bool {
	return !c.Empty && math.IsInf(c.Lo, -1) && math.IsInf(c.Hi, 1) && len(c.Ne) == 0
}

// OverlapsRange conservatively reports whether any value in the closed
// range [lo, hi] can satisfy the constraint — the zone-map pruning test.
// Ne exclusions are ignored (a block whose zone range intersects the
// interval is read even if every value in it is excluded; the per-row
// filter stays exact), so a false result proves no row in the range
// matches while a true result only means the range cannot be skipped.
func (c Constraint) OverlapsRange(lo, hi float64) bool {
	if c.Empty {
		return false
	}
	if hi < c.Lo || (hi == c.Lo && !c.LoIncl) {
		return false
	}
	if lo > c.Hi || (lo == c.Hi && !c.HiIncl) {
		return false
	}
	return true
}

// Contains reports whether value v satisfies the constraint.
func (c Constraint) Contains(v float64) bool {
	if c.Empty {
		return false
	}
	if v < c.Lo || (v == c.Lo && !c.LoIncl) {
		return false
	}
	if v > c.Hi || (v == c.Hi && !c.HiIncl) {
		return false
	}
	for _, ne := range c.Ne {
		if v == ne {
			return false
		}
	}
	return true
}

// BuildConstraints compiles a conjunction into per-column constraints,
// ordered by first appearance. Predicates on the same column are merged.
func BuildConstraints(preds []Pred, enc Encoder) []Constraint {
	idx := map[string]int{}
	var out []Constraint
	for _, p := range preds {
		i, ok := idx[p.Col]
		if !ok {
			i = len(out)
			idx[p.Col] = i
			out = append(out, NewConstraint(p.Col))
		}
		v, exact := enc(p.Col, p.Val)
		// A <> on a non-member string excludes nothing; handled by
		// exact=false inside Add. Range ops with half-codes stay correct
		// because the encoder places missing strings between codes.
		out[i].Add(p.Op, v, exact)
	}
	return out
}
