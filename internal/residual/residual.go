// Package residual closes ByteCard's feedback loop: a lightweight
// multiplicative corrector learned online from (estimate, executed truth)
// pairs, applied on top of BN/FactorJoin estimates (TiCard-style).
//
// The corrector is a table of log-space ratio buckets keyed by (query
// template, raw-estimate magnitude): each bucket holds an EWMA of
// log(truth/raw_estimate) over the executed queries that landed in it.
// Correcting an estimate multiplies it by e^EWMA once the bucket has seen
// enough observations; observing a truth tuple updates the bucket the raw
// (pre-correction) estimate fell into. Because corrected estimates feed
// back into the observations, Observe reconstructs the raw estimate from
// the correction last applied to the template — a plain EWMA over
// corrected estimates would converge to only half the residual (fixed
// point at t/2), while the reconstruction converges to the full one.
//
// Everything in here is derived from executed-query state paired with the
// *currently loaded* models, so the corrector implements core's
// DerivedCache contract and registers with the inference registry: a model
// load, retrain, disable, or enable resets the affected buckets instead of
// letting stale corrections ride on top of fresh models.
//
// The corrector is deterministic: no clocks, no randomness, and a
// byte-deterministic serialization (key-sorted, fixed-width encoding).
package residual

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"bytecard/internal/obs"
)

// Default tuning knobs (see Config).
const (
	DefaultAlpha                = 0.25
	DefaultMinObservations      = 2
	DefaultMaxFactor            = 32
	DefaultMaxEntries           = 4096
	DefaultDriftMinObservations = 32
	DefaultDriftRatio           = 2.0
)

// bucketOverhead approximates the fixed per-bucket footprint (map cell,
// LRU element, bucket header) for the byte gauge.
const bucketOverhead = 112

// lastAppLimit bounds the template -> last-applied-correction pairing map
// relative to MaxEntries; past it the map is cleared wholesale (losing
// pairing momentarily is harmless — see Observe).
const lastAppLimit = 4

// Config tunes a Corrector. The zero value selects every default.
type Config struct {
	// Alpha is the EWMA floor: young buckets learn at 1/(n+1) (i.e. a plain
	// running mean), mature buckets never adapt slower than Alpha per
	// observation.
	Alpha float64
	// MinObservations is how many truth tuples a bucket needs before its
	// correction is applied — one outlier must not steer the planner.
	MinObservations int64
	// MaxFactor clamps applied corrections to [1/MaxFactor, MaxFactor].
	MaxFactor float64
	// MaxEntries bounds resident buckets; the least recently touched
	// bucket is evicted past it.
	MaxEntries int
	// DriftMinObservations is how many tuples the drift tracker needs
	// after a reset before Drifted may report true.
	DriftMinObservations int64
	// DriftRatio is how many times worse the recent rolling q-error must
	// be than the baseline before Drifted reports true.
	DriftRatio float64
}

func (c Config) fill() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MinObservations <= 0 {
		c.MinObservations = DefaultMinObservations
	}
	if c.MaxFactor <= 1 {
		c.MaxFactor = DefaultMaxFactor
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.DriftMinObservations <= 0 {
		c.DriftMinObservations = DefaultDriftMinObservations
	}
	if c.DriftRatio <= 1 {
		c.DriftRatio = DefaultDriftRatio
	}
	return c
}

// bucket is one (template, magnitude) cell of the corrector.
type bucket struct {
	key string
	// tables is the sorted physical-table list the template covers, for
	// table-scoped invalidation.
	tables []string
	// logRatio is the EWMA of log(truth / raw_estimate).
	logRatio float64
	// n counts absorbed observations (halved by Refit).
	n    int64
	size int64
}

// Corrector is the online residual model. Safe for concurrent use; all
// updates are deterministic given the observation order.
type Corrector struct {
	mu      sync.Mutex
	cfg     Config
	entries map[string]*list.Element
	lru     *list.List // of *bucket; front = most recent
	// lastApp maps a template key to the log correction last applied to
	// one of its estimates, letting Observe reconstruct the raw estimate.
	lastApp map[string]float64
	cm      obs.CacheMetrics
	rm      *obs.ResidualMetrics

	// Rolling drift tracker over the post-correction absolute log q-error:
	// recent follows fast, baseline follows slowly; a sustained gap means
	// the loaded models (even corrected) no longer fit the data.
	recentErr, baselineErr float64
	driftObs               int64
}

// New creates a corrector. rm may be nil (a private block is allocated).
func New(cfg Config, rm *obs.ResidualMetrics) *Corrector {
	if rm == nil {
		rm = obs.NewResidualMetrics()
	}
	return &Corrector{
		cfg:     cfg.fill(),
		entries: map[string]*list.Element{},
		lru:     list.New(),
		lastApp: map[string]float64{},
		rm:      rm,
	}
}

// Metrics returns the corrector's observability block.
func (c *Corrector) Metrics() *obs.ResidualMetrics { return c.rm }

// magBucket is the log2 magnitude cell a raw estimate falls into. Buckets
// partition [1, inf): estimates below one row share bucket 0.
func magBucket(est float64) int {
	if !(est > 1) || math.IsInf(est, 1) {
		return 0
	}
	mb := int(math.Log2(est))
	if mb > 62 {
		mb = 62
	}
	return mb
}

// bucketKey joins template identity and magnitude cell. NUL can't collide
// with template-key bytes meaningfully — the pair is parsed nowhere.
func bucketKey(key string, mb int) string {
	return fmt.Sprintf("%s\x00%d", key, mb)
}

// bucketSize approximates a bucket's resident footprint.
func bucketSize(key string, tables []string) int64 {
	size := int64(bucketOverhead) + int64(len(key))
	for _, t := range tables {
		size += int64(len(t)) + 16
	}
	return size
}

// Correct applies the learned correction for a template's estimate,
// returning the corrected value and the multiplicative factor used
// (1 when no confident bucket exists). The applied log-correction is
// remembered per template so a following Observe for the same template can
// reconstruct the raw estimate. est must be positive and finite; anything
// else is returned unchanged.
func (c *Corrector) Correct(key string, est float64) (float64, float64) {
	if !(est > 0) || math.IsInf(est, 0) {
		return est, 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	applied := 0.0
	if elem, ok := c.entries[bucketKey(key, magBucket(est))]; ok {
		b := elem.Value.(*bucket)
		c.lru.MoveToFront(elem)
		c.cm.Hits.Add(1)
		if b.n >= c.cfg.MinObservations {
			applied = b.logRatio
			if lim := math.Log(c.cfg.MaxFactor); applied > lim {
				applied = lim
			} else if applied < -lim {
				applied = -lim
			}
		}
	} else {
		c.cm.Misses.Add(1)
	}
	c.noteAppliedLocked(key, applied)
	if applied == 0 {
		c.rm.Skipped.Add(1)
		return est, 1
	}
	f := math.Exp(applied)
	c.rm.Applications.Add(1)
	c.rm.FactorMagnitude.Observe(math.Max(f, 1/f))
	return est * f, f
}

// noteAppliedLocked records the log correction last applied to a template
// (0 when none), clearing the pairing map wholesale past its bound.
func (c *Corrector) noteAppliedLocked(key string, applied float64) {
	if len(c.lastApp) >= lastAppLimit*c.cfg.MaxEntries {
		clear(c.lastApp)
	}
	c.lastApp[key] = applied
}

// Observe absorbs one executed truth tuple: est is the final estimate the
// plan carried (post-correction when the corrector was consulted), truth
// the exact executed cardinality, tables the sorted physical tables of the
// template. The raw estimate is reconstructed from the correction last
// applied to the template; when several queries of one template interleave
// between Correct and Observe the pairing can mismatch, but they share the
// same bucket and factor, so the reconstruction error is bounded by one
// EWMA step. Tuples without usable truth (truth < 1) or estimate are
// dropped.
func (c *Corrector) Observe(key string, tables []string, est float64, truth float64) {
	if truth < 1 || !(est > 0) || math.IsInf(est, 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	applied := c.lastApp[key]
	raw := est * math.Exp(-applied)
	if raw < 1 {
		raw = 1
	}
	t := math.Log(truth / raw)
	bk := bucketKey(key, magBucket(raw))
	elem, ok := c.entries[bk]
	if !ok {
		elem = c.insertLocked(bk, tables)
	}
	b := elem.Value.(*bucket)
	c.lru.MoveToFront(elem)
	alpha := math.Max(c.cfg.Alpha, 1/float64(b.n+1))
	b.logRatio += alpha * (t - b.logRatio)
	b.n++

	c.rm.Observations.Add(1)
	c.rm.PreQError.Observe(obs.QError(raw, truth))
	c.rm.PostQError.Observe(obs.QError(est, truth))
	c.trackDriftLocked(math.Abs(math.Log(est / truth)))
}

// insertLocked publishes a fresh bucket, evicting from the cold end past
// the entry bound (c.mu held).
func (c *Corrector) insertLocked(bk string, tables []string) *list.Element {
	b := &bucket{key: bk, tables: append([]string(nil), tables...), size: bucketSize(bk, tables)}
	elem := c.lru.PushFront(b)
	c.entries[bk] = elem
	c.cm.Bytes.Add(b.size)
	c.cm.Entries.Add(1)
	for len(c.entries) > c.cfg.MaxEntries {
		c.removeLocked(c.lru.Back())
		c.cm.Evictions.Add(1)
	}
	return elem
}

// removeLocked unlinks one bucket and settles the gauges (c.mu held).
func (c *Corrector) removeLocked(elem *list.Element) {
	b := elem.Value.(*bucket)
	delete(c.entries, b.key)
	c.lru.Remove(elem)
	c.cm.Bytes.Add(-b.size)
	c.cm.Entries.Add(-1)
}

// trackDriftLocked folds one post-correction absolute log q-error into the
// rolling recent/baseline pair (c.mu held).
func (c *Corrector) trackDriftLocked(absLogQ float64) {
	if c.driftObs == 0 {
		c.recentErr, c.baselineErr = absLogQ, absLogQ
		c.driftObs = 1
		return
	}
	c.recentErr += 0.2 * (absLogQ - c.recentErr)
	c.baselineErr += 0.02 * (absLogQ - c.baselineErr)
	c.driftObs++
}

// Drifted reports whether the rolling recent q-error has pulled away from
// the baseline by the configured ratio — the signal the Monitor turns into
// a Refit. The recent error must also exceed a factor of 2 in q-error
// terms, so a workload whose estimates are uniformly excellent never
// refits over noise.
func (c *Corrector) Drifted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.driftObs >= c.cfg.DriftMinObservations &&
		c.recentErr > c.baselineErr*c.cfg.DriftRatio &&
		c.recentErr > math.Ln2
}

// Refit reacts to drift: every bucket's observation count is halved, so
// the adaptive EWMA step max(Alpha, 1/(n+1)) rises and buckets re-learn
// the shifted distribution faster, and the drift tracker restarts. The
// learned ratios are kept — drift rarely inverts them wholesale. Returns
// the resident bucket count.
func (c *Corrector) Refit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		b := elem.Value.(*bucket)
		b.n /= 2
	}
	c.recentErr, c.baselineErr, c.driftObs = 0, 0, 0
	c.rm.Refits.Add(1)
	return len(c.entries)
}

// Len returns the resident bucket count.
func (c *Corrector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Flush implements core.DerivedCache: every bucket, the pairing map, and
// the drift tracker are dropped (whole-model churn), returning how many
// buckets were resident.
func (c *Corrector) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	for elem := c.lru.Front(); elem != nil; elem = c.lru.Front() {
		c.removeLocked(elem)
	}
	clear(c.lastApp)
	c.recentErr, c.baselineErr, c.driftObs = 0, 0, 0
	c.cm.Invalidations.Add(int64(n))
	return n
}

// InvalidateTables implements core.DerivedCache: buckets whose template
// touches any of the named physical tables are dropped — their residuals
// measured a model that no longer serves the estimate. The pairing map and
// drift tracker reset too (cheap, and their state spans templates).
func (c *Corrector) InvalidateTables(tables ...string) int {
	victim := map[string]bool{}
	for _, t := range tables {
		victim[t] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for elem := c.lru.Front(); elem != nil; elem = next {
		next = elem.Next()
		for _, t := range elem.Value.(*bucket).tables {
			if victim[t] {
				c.removeLocked(elem)
				n++
				break
			}
		}
	}
	clear(c.lastApp)
	c.recentErr, c.baselineErr, c.driftObs = 0, 0, 0
	c.cm.Invalidations.Add(int64(n))
	return n
}

// Stats implements core.DerivedCache.
func (c *Corrector) Stats() obs.CacheSnapshot {
	return c.cm.Snapshot()
}

// Serialization: a fixed magic/version header, then buckets sorted by key
// with uvarint-length strings and fixed-width little-endian numerics. Two
// correctors holding the same buckets encode to identical bytes regardless
// of insertion or access order; the pairing map and drift tracker are
// transient and not persisted.
const (
	encodeMagic   = "BCRS"
	encodeVersion = 1
)

// Encode serializes the resident buckets byte-deterministically.
func (c *Corrector) Encode() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		keys = append(keys, elem.Value.(*bucket).key)
	}
	sort.Strings(keys)
	buf := append([]byte(encodeMagic), encodeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		b := c.entries[k].Value.(*bucket)
		buf = appendString(buf, b.key)
		buf = binary.AppendUvarint(buf, uint64(len(b.tables)))
		for _, t := range b.tables {
			buf = appendString(buf, t)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.logRatio))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.n))
	}
	return buf
}

// Decode replaces the corrector's buckets with a previously encoded set.
// The LRU order after decoding is the (sorted) encoding order.
func (c *Corrector) Decode(data []byte) error {
	if len(data) < len(encodeMagic)+1 || string(data[:len(encodeMagic)]) != encodeMagic {
		return fmt.Errorf("residual: bad magic")
	}
	if data[len(encodeMagic)] != encodeVersion {
		return fmt.Errorf("residual: unsupported version %d", data[len(encodeMagic)])
	}
	r := data[len(encodeMagic)+1:]
	count, r, err := readUvarint(r)
	if err != nil {
		return err
	}
	type decoded struct {
		key      string
		tables   []string
		logRatio float64
		n        int64
	}
	out := make([]decoded, 0, count)
	for i := uint64(0); i < count; i++ {
		var d decoded
		if d.key, r, err = readString(r); err != nil {
			return err
		}
		var nt uint64
		if nt, r, err = readUvarint(r); err != nil {
			return err
		}
		for j := uint64(0); j < nt; j++ {
			var t string
			if t, r, err = readString(r); err != nil {
				return err
			}
			d.tables = append(d.tables, t)
		}
		if len(r) < 16 {
			return fmt.Errorf("residual: truncated bucket payload")
		}
		d.logRatio = math.Float64frombits(binary.LittleEndian.Uint64(r))
		d.n = int64(binary.LittleEndian.Uint64(r[8:]))
		r = r[16:]
		out = append(out, d)
	}
	if len(r) != 0 {
		return fmt.Errorf("residual: %d trailing bytes", len(r))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for elem := c.lru.Front(); elem != nil; elem = c.lru.Front() {
		c.removeLocked(elem)
	}
	clear(c.lastApp)
	c.recentErr, c.baselineErr, c.driftObs = 0, 0, 0
	for _, d := range out {
		elem := c.insertLocked(d.key, d.tables)
		b := elem.Value.(*bucket)
		b.logRatio, b.n = d.logRatio, d.n
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(r []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(r)
	if n <= 0 {
		return 0, nil, fmt.Errorf("residual: truncated varint")
	}
	return v, r[n:], nil
}

func readString(r []byte) (string, []byte, error) {
	n, r, err := readUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(r)) < n {
		return "", nil, fmt.Errorf("residual: truncated string")
	}
	return string(r[:n]), r[n:], nil
}
