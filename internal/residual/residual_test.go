package residual

import (
	"bytes"
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCorrectNeedsMinObservations(t *testing.T) {
	c := New(Config{}, nil)
	tables := []string{"fact"}

	// No bucket: estimate passes through untouched.
	if v, f := c.Correct("tmpl", 100); v != 100 || f != 1 {
		t.Fatalf("empty corrector: Correct = (%g, %g), want (100, 1)", v, f)
	}

	// One observation is below the floor; the correction stays off.
	c.Observe("tmpl", tables, 100, 400)
	if v, f := c.Correct("tmpl", 100); v != 100 || f != 1 {
		t.Fatalf("after 1 obs: Correct = (%g, %g), want (100, 1)", v, f)
	}

	// The second observation crosses DefaultMinObservations and the full
	// residual (x4, learned from consistent truth) applies.
	c.Observe("tmpl", tables, 100, 400)
	v, f := c.Correct("tmpl", 100)
	if !almost(f, 4) || !almost(v, 400) {
		t.Fatalf("after 2 obs: Correct = (%g, %g), want (400, 4)", v, f)
	}
}

// TestFeedbackLoopConvergesToFullResidual is the reconstruction-math test:
// when the corrector's own output feeds back into Observe (as it does in
// the engine loop), the learned factor must converge to the full residual,
// not the half-residual a naive EWMA over corrected estimates reaches.
func TestFeedbackLoopConvergesToFullResidual(t *testing.T) {
	c := New(Config{}, nil)
	tables := []string{"fact"}
	const raw, truth = 100.0, 800.0
	for i := 0; i < 40; i++ {
		est, _ := c.Correct("tmpl", raw)
		c.Observe("tmpl", tables, est, truth)
	}
	_, f := c.Correct("tmpl", raw)
	if math.Abs(f-truth/raw) > 0.01 {
		t.Fatalf("converged factor %g, want %g (full residual)", f, truth/raw)
	}
}

func TestMaxFactorClamp(t *testing.T) {
	c := New(Config{MaxFactor: 8}, nil)
	tables := []string{"fact"}
	for i := 0; i < 20; i++ {
		// A x1000 residual, far beyond the clamp.
		c.Observe("tmpl", tables, 10, 10000)
	}
	_, f := c.Correct("tmpl", 10)
	if !almost(f, 8) {
		t.Fatalf("factor %g, want clamped to 8", f)
	}
	for i := 0; i < 20; i++ {
		c.Observe("down", tables, 10000, 10)
	}
	_, f = c.Correct("down", 10000)
	if !almost(f, 1.0/8) {
		t.Fatalf("factor %g, want clamped to 1/8", f)
	}
}

func TestMagnitudeBucketsAreIndependent(t *testing.T) {
	c := New(Config{}, nil)
	tables := []string{"fact"}
	// Same template, estimates two magnitude decades apart: residuals must
	// not bleed across cells.
	for i := 0; i < 10; i++ {
		c.Observe("tmpl", tables, 100, 400) // small estimates run x4 low
		c.Observe("tmpl", tables, 100000, 50000)
	}
	if _, f := c.Correct("tmpl", 100); math.Abs(f-4) > 0.01 {
		t.Errorf("small-magnitude factor %g, want ~4", f)
	}
	if _, f := c.Correct("tmpl", 100000); math.Abs(f-0.5) > 0.01 {
		t.Errorf("large-magnitude factor %g, want ~0.5", f)
	}
}

func TestDegenerateInputs(t *testing.T) {
	c := New(Config{}, nil)
	for _, est := range []float64{0, -5, math.Inf(1), math.NaN()} {
		if v, f := c.Correct("tmpl", est); f != 1 || (v != est && !math.IsNaN(est)) {
			t.Errorf("Correct(%g) = (%g, %g), want passthrough", est, v, f)
		}
	}
	// Unusable truth or estimate must not create buckets.
	c.Observe("tmpl", nil, 100, 0.5)
	c.Observe("tmpl", nil, 0, 100)
	c.Observe("tmpl", nil, math.Inf(1), 100)
	if c.Len() != 0 {
		t.Fatalf("degenerate observations created %d buckets", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 4}, nil)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range keys {
		c.Observe(k, []string{k}, 100, 200)
	}
	if c.Len() != 4 {
		t.Fatalf("resident buckets %d, want 4", c.Len())
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", s.Evictions)
	}
	// The oldest templates are the evicted ones.
	c.Observe("a", []string{"a"}, 100, 200) // recreates a fresh bucket with n=1
	if _, f := c.Correct("a", 100); f != 1 {
		t.Errorf("evicted bucket kept its confidence (factor %g)", f)
	}
}

func TestRefitHalvesConfidence(t *testing.T) {
	c := New(Config{}, nil)
	c.Observe("tmpl", []string{"fact"}, 100, 400)
	c.Observe("tmpl", []string{"fact"}, 100, 400)
	c.Observe("tmpl", []string{"fact"}, 100, 400)
	if n := c.Refit(); n != 1 {
		t.Fatalf("Refit reported %d buckets, want 1", n)
	}
	// n dropped 3 -> 1: below MinObservations again, correction withheld
	// until fresh truth re-confirms it.
	if _, f := c.Correct("tmpl", 100); f != 1 {
		t.Errorf("factor %g right after refit, want 1 (confidence halved)", f)
	}
	c.Observe("tmpl", []string{"fact"}, 100, 400)
	if _, f := c.Correct("tmpl", 100); almost(f, 1) {
		t.Error("one post-refit observation should restore the correction")
	}
}

func TestDriftSignal(t *testing.T) {
	c := New(Config{DriftMinObservations: 8}, nil)
	// Accurate regime: estimates match truth, no drift.
	for i := 0; i < 20; i++ {
		c.Observe("good", []string{"t"}, 1000, 1000)
	}
	if c.Drifted() {
		t.Fatal("accurate workload reported drift")
	}
	// Distribution shift: recent error explodes past the slow baseline.
	for i := 0; i < 10; i++ {
		c.Observe("bad", []string{"t"}, 1000, 64000)
	}
	if !c.Drifted() {
		t.Fatal("sustained 64x misestimates did not trip the drift signal")
	}
	c.Refit()
	if c.Drifted() {
		t.Fatal("Refit did not reset the drift tracker")
	}
}

func TestFlushAndInvalidateTables(t *testing.T) {
	c := New(Config{}, nil)
	c.Observe("t1", []string{"fact"}, 100, 200)
	c.Observe("t2", []string{"dim", "fact"}, 100, 200)
	c.Observe("t3", []string{"other"}, 100, 200)

	if n := c.InvalidateTables("fact"); n != 2 {
		t.Fatalf("InvalidateTables dropped %d buckets, want 2", n)
	}
	if c.Len() != 1 {
		t.Fatalf("resident %d, want 1 (the fact-free template)", c.Len())
	}
	if n := c.Flush(); n != 1 {
		t.Fatalf("Flush dropped %d, want 1", n)
	}
	if c.Len() != 0 || c.Stats().Entries != 0 || c.Stats().Bytes != 0 {
		t.Fatalf("flush left state: len=%d stats=%+v", c.Len(), c.Stats())
	}
	if c.Stats().Invalidations != 3 {
		t.Errorf("invalidations %d, want 3", c.Stats().Invalidations)
	}
}

func TestEncodeDeterministicAcrossInsertionOrder(t *testing.T) {
	mk := func(order []string) *Corrector {
		c := New(Config{}, nil)
		for _, k := range order {
			c.Observe(k, []string{k}, 100, 300)
			c.Observe(k, []string{k}, 100, 300)
		}
		return c
	}
	a := mk([]string{"x", "y", "z"})
	b := mk([]string{"z", "x", "y"})
	// Touch a's LRU order too: access order must not leak into bytes.
	a.Correct("y", 100)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("encodings differ across insertion/access order")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	c := New(Config{}, nil)
	for i := 0; i < 3; i++ {
		c.Observe("t1", []string{"fact"}, 100, 400)
		c.Observe("t2", []string{"dim", "fact"}, 5000, 2500)
	}
	enc := c.Encode()

	d := New(Config{}, nil)
	d.Observe("stale", []string{"old"}, 10, 20) // must be replaced
	if err := d.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("decoded %d buckets, want 2", d.Len())
	}
	if _, f := d.Correct("stale", 10); f != 1 {
		t.Error("Decode kept a pre-existing bucket")
	}
	for _, k := range []string{"t1", "t2"} {
		ev, ef := c.Correct(k, map[string]float64{"t1": 100, "t2": 5000}[k])
		gv, gf := d.Correct(k, map[string]float64{"t1": 100, "t2": 5000}[k])
		if !almost(ev, gv) || !almost(ef, gf) {
			t.Errorf("%s: decoded corrector answers (%g, %g), original (%g, %g)", k, gv, gf, ev, ef)
		}
	}
	if !bytes.Equal(enc, d.Encode()) {
		t.Fatal("re-encoding after decode is not byte-identical")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	c := New(Config{}, nil)
	c.Observe("t1", []string{"fact"}, 100, 400)
	enc := c.Encode()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXXX\x01\x00"),
		"bad version": append([]byte("BCRS"), 99),
		"truncated":   enc[:len(enc)-3],
		"trailing":    append(append([]byte(nil), enc...), 0xFF),
	}
	for name, data := range cases {
		d := New(Config{}, nil)
		if err := d.Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestMagBucket(t *testing.T) {
	cases := map[float64]int{
		0.5:            0,
		1:              0,
		2:              1,
		1000:           9,
		math.Inf(1):    0,
		1e300:          62, // capped
		math.NaN():     0,
		-5:             0,
		(1 << 40):      40,
		(1 << 40) + 10: 40,
	}
	for est, want := range cases {
		if got := magBucket(est); got != want {
			t.Errorf("magBucket(%g) = %d, want %d", est, got, want)
		}
	}
}
