package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNetworkShape(t *testing.T) {
	n := NewNetwork(1, 4, 8, 8, 1)
	if n.InputDim() != 4 || n.OutputDim() != 1 {
		t.Errorf("dims = %d/%d", n.InputDim(), n.OutputDim())
	}
	want := 4*8 + 8 + 8*8 + 8 + 8*1 + 1
	if n.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), want)
	}
	if n.SizeBytes() != int64(want)*8 {
		t.Errorf("SizeBytes = %d", n.SizeBytes())
	}
}

func TestNewNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for single size")
		}
	}()
	NewNetwork(1, 4)
}

func TestForwardInputWidthPanics(t *testing.T) {
	n := NewNetwork(1, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad input width")
		}
	}()
	n.Forward([]float64{1, 2})
}

func TestForwardDeterministic(t *testing.T) {
	a := NewNetwork(7, 3, 16, 1)
	b := NewNetwork(7, 3, 16, 1)
	x := []float64{0.5, -1, 2}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Error("same seed must give same outputs")
	}
}

// TestGradientCheck verifies backprop against numerical differentiation.
func TestGradientCheck(t *testing.T) {
	n := NewNetwork(3, 4, 6, 5, 1)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	y := 0.8
	loss := func() float64 {
		d := n.Forward(x)[0] - y
		return d * d
	}
	acts, zs := n.forwardCache(x)
	g := newGrads(n)
	pred := acts[len(acts)-1][0]
	n.backward(acts, zs, []float64{2 * (pred - y)}, g)

	const eps = 1e-6
	check := func(p []float64, gr []float64, label string) {
		for _, i := range []int{0, len(p) / 2, len(p) - 1} {
			orig := p[i]
			p[i] = orig + eps
			up := loss()
			p[i] = orig - eps
			down := loss()
			p[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-gr[i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", label, i, gr[i], num)
			}
		}
	}
	for li := range n.Layers {
		check(n.Layers[li].W, g.W[li], "W")
		check(n.Layers[li].B, g.B[li], "B")
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x = append(x, []float64{a, b})
		y = append(y, 2*a-3*b+0.5)
	}
	n := NewNetwork(3, 2, 16, 16, 1)
	losses, err := n.Train(x, y, TrainConfig{Epochs: 60, BatchSize: 32, LR: 5e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > 0.01 {
		t.Errorf("final loss %g too high", losses[len(losses)-1])
	}
	if losses[0] < losses[len(losses)-1] {
		t.Error("loss must decrease")
	}
	got := n.Forward([]float64{0.5, -0.5})[0]
	want := 2*0.5 - 3*(-0.5) + 0.5
	if math.Abs(got-want) > 0.3 {
		t.Errorf("prediction %g, want ~%g", got, want)
	}
}

func TestTrainLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 800; i++ {
		a := rng.Float64()*4 - 2
		x = append(x, []float64{a})
		y = append(y, a*a)
	}
	n := NewNetwork(5, 1, 32, 32, 1)
	losses, err := n.Train(x, y, TrainConfig{Epochs: 120, BatchSize: 32, LR: 5e-3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > 0.05 {
		t.Errorf("final loss %g too high for x^2", losses[len(losses)-1])
	}
}

func TestUnderPenaltyBiasesUpward(t *testing.T) {
	// With a heavy underestimation penalty the model should systematically
	// land above the noisy targets' mean.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64()
		x = append(x, []float64{a})
		y = append(y, 1+rng.NormFloat64()*0.5) // mean 1, noisy
	}
	fit := func(penalty float64) float64 {
		n := NewNetwork(6, 1, 8, 1)
		if _, err := n.Train(x, y, TrainConfig{Epochs: 80, BatchSize: 32, LR: 1e-2, UnderPenalty: penalty, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, xi := range x {
			sum += n.Forward(xi)[0]
		}
		return sum / float64(len(x))
	}
	plain := fit(1)
	biased := fit(8)
	if biased <= plain+0.05 {
		t.Errorf("underestimation penalty must push predictions up: plain %g, penalized %g", plain, biased)
	}
}

func TestTrainErrors(t *testing.T) {
	n := NewNetwork(1, 2, 1)
	if _, err := n.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []float64{1, 2}, TrainConfig{}); err == nil {
		t.Error("mismatched shapes must fail")
	}
	multi := NewNetwork(1, 2, 3)
	if _, err := multi.Train([][]float64{{1, 2}}, []float64{1}, TrainConfig{}); err == nil {
		t.Error("non-scalar output must fail")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	n := NewNetwork(8, 5, 12, 7, 1)
	data, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 0.5, 3, -0.1}
	if math.Abs(n.Forward(x)[0]-m.Forward(x)[0]) > 1e-12 {
		t.Error("decoded network must predict identically")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Error("garbage must fail to decode")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	n := NewNetwork(9, 3, 4, 1)
	if err := n.Validate(); err != nil {
		t.Fatalf("fresh network invalid: %v", err)
	}
	n.Layers[0].W[0] = math.NaN()
	if err := n.Validate(); err == nil {
		t.Error("NaN weight must fail validation")
	}
	n = NewNetwork(9, 3, 4, 1)
	n.Layers[0].W = n.Layers[0].W[:3]
	if err := n.Validate(); err == nil {
		t.Error("truncated weights must fail validation")
	}
	n = NewNetwork(9, 3, 4, 1)
	n.Layers[1].In = 7
	if err := n.Validate(); err == nil {
		t.Error("shape chain mismatch must fail validation")
	}
	empty := &Network{}
	if err := empty.Validate(); err == nil {
		t.Error("empty network must fail validation")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := NewNetwork(10, 2, 4, 1)
	c := n.Clone()
	n.Layers[0].W[0] = 999
	if c.Layers[0].W[0] == 999 {
		t.Error("clone must not share weight storage")
	}
}

func TestLossMatchesTrainObjective(t *testing.T) {
	n := NewNetwork(11, 1, 4, 1)
	x := [][]float64{{0.5}, {1.0}}
	y := []float64{10, 10} // network starts near 0 → underestimates
	plain := n.Loss(x, y, 1)
	heavy := n.Loss(x, y, 5)
	if heavy <= plain {
		t.Error("underestimation penalty must increase loss when predicting low")
	}
}
