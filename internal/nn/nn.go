// Package nn is a small, dependency-free neural-network library: dense
// layers with ReLU activations, Adam optimization, mean-squared and
// asymmetric (underestimation-penalizing) losses, and gob serialization.
// It is the training/inference substrate for the RBX NDV estimator and the
// MSCN baseline; the paper's Python/C++ split collapses here into one Go
// implementation whose inference path is allocation-light and usable from
// concurrent query threads (networks are immutable after training).
package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully connected layer; weights are row-major Out×In.
type Dense struct {
	In, Out int
	W       []float64
	B       []float64
}

// Network is a multilayer perceptron: ReLU between layers, linear output.
type Network struct {
	Layers []Dense
}

// NewNetwork builds a network with the given layer sizes (input, hidden...,
// output) using He initialization from the seed.
func NewNetwork(seed int64, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{}
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		l := Dense{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
		std := math.Sqrt(2 / float64(in))
		for j := range l.W {
			l.W[j] = rng.NormFloat64() * std
		}
		n.Layers = append(n.Layers, l)
	}
	return n
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// NumParams counts trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// SizeBytes reports the serialized weight footprint (8 bytes/parameter).
func (n *Network) SizeBytes() int64 { return int64(n.NumParams()) * 8 }

// Clone deep-copies the network.
func (n *Network) Clone() *Network {
	c := &Network{Layers: make([]Dense, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = Dense{In: l.In, Out: l.Out, W: append([]float64(nil), l.W...), B: append([]float64(nil), l.B...)}
	}
	return c
}

// Forward runs inference. The returned slice is freshly allocated.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), n.InputDim()))
	}
	a := x
	for li := range n.Layers {
		l := &n.Layers[li]
		z := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, v := range a {
				s += row[i] * v
			}
			z[o] = s
		}
		if li < len(n.Layers)-1 {
			for o := range z {
				if z[o] < 0 {
					z[o] = 0
				}
			}
		}
		a = z
	}
	return a
}

// forwardCache runs a forward pass keeping pre-activations for backprop.
func (n *Network) forwardCache(x []float64) (acts [][]float64, zs [][]float64) {
	acts = append(acts, x)
	a := x
	for li := range n.Layers {
		l := &n.Layers[li]
		z := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, v := range a {
				s += row[i] * v
			}
			z[o] = s
		}
		zs = append(zs, z)
		out := make([]float64, l.Out)
		copy(out, z)
		if li < len(n.Layers)-1 {
			for o := range out {
				if out[o] < 0 {
					out[o] = 0
				}
			}
		}
		acts = append(acts, out)
		a = out
	}
	return acts, zs
}

// grads mirrors the network's parameter layout.
type grads struct {
	W [][]float64
	B [][]float64
}

func newGrads(n *Network) *grads {
	g := &grads{W: make([][]float64, len(n.Layers)), B: make([][]float64, len(n.Layers))}
	for i, l := range n.Layers {
		g.W[i] = make([]float64, len(l.W))
		g.B[i] = make([]float64, len(l.B))
	}
	return g
}

func (g *grads) zero() {
	for i := range g.W {
		clearF(g.W[i])
		clearF(g.B[i])
	}
}

func clearF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// backward accumulates gradients of loss dOut (dL/dŷ) into g and returns
// the gradient with respect to the network input (used by composite models
// such as MSCN that backprop through set pooling into shared encoders).
func (n *Network) backward(acts, zs [][]float64, dOut []float64, g *grads) []float64 {
	delta := dOut
	for li := len(n.Layers) - 1; li >= 0; li-- {
		l := &n.Layers[li]
		aPrev := acts[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			g.B[li][o] += d
			row := g.W[li][o*l.In : (o+1)*l.In]
			for i, v := range aPrev {
				row[i] += d * v
			}
		}
		prev := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range prev {
				prev[i] += row[i] * d
			}
		}
		if li > 0 {
			// ReLU derivative of the previous layer's pre-activation.
			zPrev := zs[li-1]
			for i := range prev {
				if zPrev[i] <= 0 {
					prev[i] = 0
				}
			}
		}
		delta = prev
	}
	return delta
}

// Tape is the cached forward state needed for a backward pass.
type Tape struct {
	acts, zs [][]float64
}

// Output returns the forward result recorded on the tape.
func (t *Tape) Output() []float64 { return t.acts[len(t.acts)-1] }

// ForwardTape runs a forward pass recording activations for BackwardTape.
func (n *Network) ForwardTape(x []float64) *Tape {
	acts, zs := n.forwardCache(x)
	return &Tape{acts: acts, zs: zs}
}

// Grads accumulates parameter gradients across one or more BackwardTape
// calls; apply them with Adam.StepGrads.
type Grads struct{ g *grads }

// NewGrads allocates a gradient buffer shaped like n.
func NewGrads(n *Network) *Grads { return &Grads{g: newGrads(n)} }

// Zero clears the accumulated gradients.
func (g *Grads) Zero() { g.g.zero() }

// BackwardTape backpropagates dOut (dL/dŷ) through the taped pass,
// accumulating parameter gradients into g and returning dL/dinput.
func (n *Network) BackwardTape(t *Tape, dOut []float64, g *Grads) []float64 {
	return n.backward(t.acts, t.zs, dOut, g.g)
}

// StepGrads applies one Adam update from externally accumulated gradients.
func (a *Adam) StepGrads(n *Network, g *Grads) { a.Step(n, g.g) }

// Adam is the Adam optimizer state over a network's parameters.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	t            int
	mW, vW       [][]float64
	mB, vB       [][]float64
}

// NewAdam creates an optimizer with standard defaults and the given rate.
func NewAdam(n *Network, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for _, l := range n.Layers {
		a.mW = append(a.mW, make([]float64, len(l.W)))
		a.vW = append(a.vW, make([]float64, len(l.W)))
		a.mB = append(a.mB, make([]float64, len(l.B)))
		a.vB = append(a.vB, make([]float64, len(l.B)))
	}
	return a
}

// Step applies one Adam update from accumulated gradients (already averaged
// over the batch).
func (a *Adam) Step(n *Network, g *grads) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(p, gr, m, v []float64) {
		for i := range p {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gr[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gr[i]*gr[i]
			p[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
	}
	for li := range n.Layers {
		upd(n.Layers[li].W, g.W[li], a.mW[li], a.vW[li])
		upd(n.Layers[li].B, g.B[li], a.mB[li], a.vB[li])
	}
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// UnderPenalty multiplies the squared error when the network
	// underestimates (prediction below target); 1 recovers plain MSE.
	// Values above 1 implement RBX's calibration objective.
	UnderPenalty float64
	// L2 is optional weight decay.
	L2 float64
	// Seed shuffles batches deterministically.
	Seed int64
}

// Train fits scalar targets with mini-batch Adam, returning the mean
// training loss per epoch.
func (n *Network) Train(x [][]float64, y []float64, cfg TrainConfig) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("nn: bad training set shape")
	}
	if n.OutputDim() != 1 {
		return nil, errors.New("nn: Train requires a scalar output network")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.UnderPenalty <= 0 {
		cfg.UnderPenalty = 1
	}
	opt := NewAdam(n, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	g := newGrads(n)
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			g.zero()
			for _, i := range batch {
				acts, zs := n.forwardCache(x[i])
				pred := acts[len(acts)-1][0]
				diff := pred - y[i]
				w := 1.0
				if diff < 0 {
					w = cfg.UnderPenalty
				}
				epochLoss += w * diff * diff
				scale := 2 * w * diff / float64(len(batch))
				n.backward(acts, zs, []float64{scale}, g)
			}
			if cfg.L2 > 0 {
				for li := range n.Layers {
					for i, w := range n.Layers[li].W {
						g.W[li][i] += cfg.L2 * w / float64(len(batch))
					}
				}
			}
			opt.Step(n, g)
		}
		losses = append(losses, epochLoss/float64(len(x)))
	}
	return losses, nil
}

// Loss computes the configured loss over a dataset without training.
func (n *Network) Loss(x [][]float64, y []float64, underPenalty float64) float64 {
	if underPenalty <= 0 {
		underPenalty = 1
	}
	var total float64
	for i := range x {
		diff := n.Forward(x[i])[0] - y[i]
		w := 1.0
		if diff < 0 {
			w = underPenalty
		}
		total += w * diff * diff
	}
	return total / float64(len(x))
}

// Encode serializes the network with gob.
func (n *Network) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes a network and validates its shape.
func Decode(data []byte) (*Network, error) {
	var n Network
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&n); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// Validate checks structural consistency and weight health (shape chaining,
// no NaN/Inf) — the health-detector hook the Model Validator calls before a
// network reaches query threads.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return errors.New("nn: empty network")
	}
	for i, l := range n.Layers {
		if l.In <= 0 || l.Out <= 0 || len(l.W) != l.In*l.Out || len(l.B) != l.Out {
			return fmt.Errorf("nn: layer %d malformed (%d->%d, %d weights, %d biases)", i, l.In, l.Out, len(l.W), len(l.B))
		}
		if i > 0 && n.Layers[i-1].Out != l.In {
			return fmt.Errorf("nn: layer %d input %d != previous output %d", i, l.In, n.Layers[i-1].Out)
		}
		for _, w := range l.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("nn: layer %d contains non-finite weight", i)
			}
		}
		for _, b := range l.B {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return fmt.Errorf("nn: layer %d contains non-finite bias", i)
			}
		}
	}
	return nil
}
