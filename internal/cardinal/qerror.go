// Package cardinal defines the cardinality-estimation metric machinery
// (Q-error and its quantile summaries) and the two traditional estimators
// the paper compares ByteCard against: the sketch-based estimator
// (histograms + attribute-value independence + join uniformity +
// HyperLogLog) and the sample-based estimator (AnalyticDB style: predicate
// evaluation over reservoir samples at estimation time).
package cardinal

import (
	"math"
	"sort"
)

// QError is the standard cardinality-estimation error metric:
// max(est/true, true/est), with both quantities floored at one row so the
// metric's theoretical lower bound is 1.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// Quantile returns the q-th quantile (0..1) of the values; the input need
// not be sorted. The rank position q·(len−1) is resolved by linear
// interpolation between the two nearest order statistics (the "linear"
// method of R/NumPy — not nearest-rank): an exact rank hit returns that
// element, q <= 0 the minimum, q >= 1 the maximum, and an empty input NaN.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a distribution digest of Q-errors (or any positive metric):
// the quantiles the paper reports plus the spread statistics behind its
// violin plots.
type Summary struct {
	Count                        int
	Min, P25, P50, P75, P90, P99 float64
	Max                          float64
	Mean                         float64
}

// Summarize computes a Summary.
func Summarize(values []float64) Summary {
	s := Summary{Count: len(values)}
	if len(values) == 0 {
		return s
	}
	s.Min = Quantile(values, 0)
	s.P25 = Quantile(values, 0.25)
	s.P50 = Quantile(values, 0.50)
	s.P75 = Quantile(values, 0.75)
	s.P90 = Quantile(values, 0.90)
	s.P99 = Quantile(values, 0.99)
	s.Max = Quantile(values, 1)
	var sum float64
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / float64(len(values))
	return s
}

// Cardenas estimates the number of distinct values surviving a selection:
// picking m of n rows from a column with d distinct values leaves
// d·(1−(1−m/n)^(n/d)) distinct values in expectation.
func Cardenas(d, n, m float64) float64 {
	if d <= 0 || n <= 0 {
		return 0
	}
	if m >= n {
		return d
	}
	if m <= 0 {
		return 0
	}
	est := d * (1 - math.Pow(1-m/n, n/d))
	if est > m {
		est = m
	}
	if est > d {
		est = d
	}
	return est
}
