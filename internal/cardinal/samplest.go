package cardinal

import (
	"math"
	"sort"

	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/sample"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// SampleEstimator is the AnalyticDB-style baseline: it keeps a reservoir
// sample per table and answers every estimate by evaluating the query's
// predicates over the samples at estimation time. That real-time predicate
// work is the estimation overhead the paper observes at low latency
// quantiles, and small samples under skew are its accuracy failure mode.
type SampleEstimator struct {
	frames map[string]*sample.Frame
	rate   float64
}

// DefaultSampleRows caps each table's reservoir.
const DefaultSampleRows = 2000

// NewSampleEstimator draws reservoir samples of up to maxRows per table.
func NewSampleEstimator(db *storage.Database, maxRows int, seed int64) *SampleEstimator {
	if maxRows <= 0 {
		maxRows = DefaultSampleRows
	}
	return newSampleEstimator(db, func(int) int { return maxRows }, seed)
}

// NewSampleEstimatorRate draws rate-proportional reservoir samples (the
// production configuration: a fixed sampling rate, clamped to
// [minRows, maxRows]). A fixed absolute reservoir would silently degrade
// into a full scan on small tables, hiding the estimator's sampling error.
func NewSampleEstimatorRate(db *storage.Database, rate float64, minRows, maxRows int, seed int64) *SampleEstimator {
	if rate <= 0 {
		rate = 0.01
	}
	if minRows <= 0 {
		minRows = 50
	}
	if maxRows <= 0 {
		maxRows = DefaultSampleRows
	}
	return newSampleEstimator(db, func(n int) int {
		k := int(float64(n) * rate)
		if k < minRows {
			k = minRows
		}
		if k > maxRows {
			k = maxRows
		}
		return k
	}, seed)
}

func newSampleEstimator(db *storage.Database, sizeOf func(rows int) int, seed int64) *SampleEstimator {
	e := &SampleEstimator{frames: map[string]*sample.Frame{}}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		res := sample.NewReservoir(sizeOf(t.NumRows()), seed^int64(len(name))^int64(t.NumRows()))
		for i := 0; i < t.NumRows(); i++ {
			res.Offer(t.Row(i))
		}
		e.frames[name] = sample.NewFrame(t.ColumnNames(), res.Rows(), int64(t.NumRows()))
	}
	return e
}

// Name implements engine.CardEstimator.
func (e *SampleEstimator) Name() string { return "sample" }

// filteredFrame evaluates the filter tree over the table's sample.
func (e *SampleEstimator) filteredFrame(t *engine.QueryTable, filter *expr.Node) *sample.Frame {
	f := e.frames[t.Name]
	if f == nil || filter == nil {
		return f
	}
	cols := f.Columns()
	idx := map[string]int{}
	for i, c := range cols {
		idx[c] = i
	}
	return f.Filter(func(row []types.Datum) bool {
		return filter.Eval(func(_, col string) types.Datum { return row[idx[col]] })
	})
}

// EstimateFilter implements engine.CardEstimator by counting matching
// sample rows and scaling, with half-row smoothing so empty matches do not
// collapse to zero.
func (e *SampleEstimator) EstimateFilter(t *engine.QueryTable) float64 {
	f := e.frames[t.Name]
	if f == nil {
		return float64(t.Table.NumRows())
	}
	if t.Filter == nil {
		return float64(t.Table.NumRows())
	}
	g := e.filteredFrame(t, t.Filter)
	scale := float64(t.Table.NumRows()) / math.Max(float64(f.Len()), 1)
	return (float64(g.Len()) + 0.5) * scale
}

// EstimateConj implements engine.CardEstimator.
func (e *SampleEstimator) EstimateConj(t *engine.QueryTable, preds []expr.Pred) float64 {
	f := e.frames[t.Name]
	if f == nil || f.Len() == 0 {
		return 1
	}
	var node *expr.Node
	for _, p := range preds {
		node = expr.And(node, expr.Leaf(p))
	}
	g := e.filteredFrame(t, node)
	return (float64(g.Len()) + 0.5) / float64(f.Len())
}

// EstimateJoin implements engine.CardEstimator by actually joining the
// filtered samples along the query's join conditions and scaling by the
// product of sampling rates. The join carries multiplicity-compressed
// signatures (only the key values later conditions still need), so even
// skewed star joins stay linear in the sample sizes. Sample joins still
// famously underestimate sparse keys (few sample rows share join
// partners), which the smoothing floor only partly repairs — the behaviour
// Figure 7 shows on AEOLUS.
func (e *SampleEstimator) EstimateJoin(tables []*engine.QueryTable, joins []engine.JoinCond) float64 {
	type tabState struct {
		t     *engine.QueryTable
		frame *sample.Frame
	}
	states := map[string]*tabState{}
	scale := 1.0
	for _, t := range tables {
		full := e.frames[t.Name]
		if full == nil || full.Len() == 0 {
			return engine.HeuristicEstimator{}.EstimateJoin(tables, joins)
		}
		st := &tabState{t: t, frame: e.filteredFrame(t, t.Filter)}
		states[t.Binding] = st
		scale /= float64(full.Len()) / float64(t.Table.NumRows())
	}
	colIdx := func(binding, col string) int {
		return e.frames[states[binding].t.Name].ColumnIndex(col)
	}

	// A tuple is represented by the values of the columns remaining join
	// conditions can still observe, plus a multiplicity.
	type entry struct {
		vals  map[string]types.Datum // "binding.col" → value
		count float64
	}
	liveCols := func(inSet map[string]bool, remaining []engine.JoinCond) map[string]bool {
		out := map[string]bool{}
		for _, j := range remaining {
			if inSet[j.LeftTab] {
				out[j.LeftTab+"."+j.LeftCol] = true
			}
			if inSet[j.RightTab] {
				out[j.RightTab+"."+j.RightCol] = true
			}
		}
		return out
	}
	sigOf := func(vals map[string]types.Datum, live map[string]bool) uint64 {
		var h uint64 = 1469598103934665603
		for _, key := range sortedKeys(live) {
			h = h*1099511628211 ^ vals[key].Hash64()
		}
		return h
	}
	project := func(ents map[uint64]*entry, live map[string]bool) map[uint64]*entry {
		out := make(map[uint64]*entry, len(ents))
		for _, en := range ents {
			vals := map[string]types.Datum{}
			for key := range live {
				vals[key] = en.vals[key]
			}
			h := sigOf(vals, live)
			if prev, ok := out[h]; ok {
				prev.count += en.count
			} else {
				out[h] = &entry{vals: vals, count: en.count}
			}
		}
		return out
	}

	inSet := map[string]bool{tables[0].Binding: true}
	// Conds not yet applied.
	remaining := append([]engine.JoinCond(nil), joins...)
	first := states[tables[0].Binding]
	cur := map[uint64]*entry{}
	{
		live := liveCols(inSet, remaining)
		for i := 0; i < first.frame.Len(); i++ {
			vals := map[string]types.Datum{}
			for key := range live {
				col := key[len(tables[0].Binding)+1:]
				vals[key] = first.frame.Row(i)[colIdx(tables[0].Binding, col)]
			}
			h := sigOf(vals, live)
			if prev, ok := cur[h]; ok {
				prev.count++
			} else {
				cur[h] = &entry{vals: vals, count: 1}
			}
		}
	}
	for _, t := range tables[1:] {
		st := states[t.Binding]
		var conds []engine.JoinCond
		var rest []engine.JoinCond
		for _, j := range remaining {
			switch {
			case inSet[j.LeftTab] && j.RightTab == t.Binding:
				conds = append(conds, j)
			case inSet[j.RightTab] && j.LeftTab == t.Binding:
				conds = append(conds, engine.JoinCond{LeftTab: j.RightTab, LeftCol: j.RightCol, RightTab: j.LeftTab, RightCol: j.LeftCol})
			default:
				rest = append(rest, j)
			}
		}
		if len(conds) == 0 {
			// Disconnected prefix: the DP only asks connected subsets, so
			// treat this as a modelling gap and fall back.
			return engine.HeuristicEstimator{}.EstimateJoin(tables, joins)
		}
		remaining = rest
		inSet[t.Binding] = true
		live := liveCols(inSet, remaining)

		// Build on the new table's sample rows, keyed by join values.
		type buildRow struct {
			key  []types.Datum
			vals map[string]types.Datum
		}
		build := map[uint64][]buildRow{}
		for i := 0; i < st.frame.Len(); i++ {
			row := st.frame.Row(i)
			key := make([]types.Datum, len(conds))
			var h uint64 = 1469598103934665603
			for k, c := range conds {
				key[k] = row[colIdx(t.Binding, c.RightCol)]
				h = h*1099511628211 ^ key[k].Hash64()
			}
			vals := map[string]types.Datum{}
			for lk := range live {
				if len(lk) > len(t.Binding) && lk[:len(t.Binding)+1] == t.Binding+"." {
					vals[lk] = row[colIdx(t.Binding, lk[len(t.Binding)+1:])]
				}
			}
			build[h] = append(build[h], buildRow{key: key, vals: vals})
		}
		next := map[uint64]*entry{}
		probeKey := make([]types.Datum, len(conds))
		for _, en := range cur {
			var h uint64 = 1469598103934665603
			for k, c := range conds {
				probeKey[k] = en.vals[c.LeftTab+"."+c.LeftCol]
				h = h*1099511628211 ^ probeKey[k].Hash64()
			}
			for _, br := range build[h] {
				match := true
				for k := range probeKey {
					if !probeKey[k].Equal(br.key[k]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				vals := map[string]types.Datum{}
				for lk := range live {
					if v, ok := en.vals[lk]; ok {
						vals[lk] = v
					} else if v, ok := br.vals[lk]; ok {
						vals[lk] = v
					}
				}
				sh := sigOf(vals, live)
				if prev, ok := next[sh]; ok {
					prev.count += en.count
				} else {
					next[sh] = &entry{vals: vals, count: en.count}
				}
			}
		}
		cur = project(next, live)
		if len(cur) == 0 {
			break
		}
	}
	var matches float64
	for _, en := range cur {
		matches += en.count
	}
	if matches == 0 {
		// Empty sample join: smooth with half a match.
		return math.Max(0.5*scale, 1)
	}
	return matches * scale
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EstimateGroupNDV implements engine.CardEstimator with the GEE estimator
// over the filtered per-table sample profiles, multiplied across tables and
// capped by the estimated join size.
func (e *SampleEstimator) EstimateGroupNDV(q *engine.Query) float64 {
	perTable := map[string][]string{}
	for _, g := range q.GroupBy {
		perTable[g.Tab] = append(perTable[g.Tab], g.Col)
	}
	ndv := 1.0
	for binding, cols := range perTable {
		t := q.TableByBinding(binding)
		g := e.filteredFrame(t, t.Filter)
		if g == nil || g.Len() == 0 {
			continue
		}
		ndv *= math.Max(g.ProfileOf(cols...).GEE(), 1)
	}
	var out float64
	if len(q.Tables) == 1 {
		out = e.EstimateFilter(q.Tables[0])
	} else {
		out = e.EstimateJoin(q.Tables, q.Joins)
	}
	return math.Min(ndv, math.Max(out, 1))
}
