package cardinal

import (
	"math"

	"bytecard/internal/engine"
	"bytecard/internal/expr"
	"bytecard/internal/histogram"
	"bytecard/internal/hll"
	"bytecard/internal/storage"
	"bytecard/internal/types"
)

// ColStats are the per-column sketches of the traditional estimator: an
// equi-height histogram and a HyperLogLog distinct-count estimate, both
// built from a full column scan (the full-scan pressure the paper calls
// out).
type ColStats struct {
	Hist *histogram.EquiHeight
	NDV  float64
}

// TableStats are the per-table sketches.
type TableStats struct {
	Rows float64
	Cols map[string]*ColStats
}

// DefaultHistogramBuckets is the per-column bucket budget.
const DefaultHistogramBuckets = 64

// BuildTableStats scans every scalar column of t building sketches.
func BuildTableStats(t *storage.Table, buckets int) *TableStats {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	ts := &TableStats{Rows: float64(t.NumRows()), Cols: map[string]*ColStats{}}
	for i := 0; i < t.NumCols(); i++ {
		col := t.Col(i)
		if !col.Kind().Scalar() {
			continue
		}
		vals := col.NumericAll()
		sk := hll.MustNew(12)
		for j := range vals {
			sk.Add(col.Value(j).Hash64())
		}
		ts.Cols[col.Name()] = &ColStats{
			Hist: histogram.BuildEquiHeight(vals, buckets),
			NDV:  sk.Estimate(),
		}
	}
	return ts
}

// selConstraint estimates the selectivity of one compiled column constraint
// from the histogram.
func (cs *ColStats) selConstraint(c expr.Constraint) float64 {
	if cs == nil || cs.Hist == nil {
		return 1
	}
	if c.Empty {
		return 0
	}
	var sel float64
	if c.HasEq {
		sel = cs.Hist.SelEq(c.Lo)
	} else {
		sel = cs.Hist.SelRange(c.Lo, c.Hi, c.LoIncl, c.HiIncl)
	}
	for _, ne := range c.Ne {
		if ne >= c.Lo && ne <= c.Hi {
			sel -= cs.Hist.SelEq(ne)
		}
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// SketchEstimator is the warehouse's original Selinger-style estimator:
// per-column histograms combined under attribute-value independence, joins
// under the uniformity/containment assumption, and NDV from HyperLogLog
// with independence across group keys. Its failure modes on skewed,
// correlated data are the paper's Table 1.
type SketchEstimator struct {
	stats map[string]*TableStats
}

// NewSketchEstimator builds sketches for every table of db.
func NewSketchEstimator(db *storage.Database, buckets int) *SketchEstimator {
	e := &SketchEstimator{stats: map[string]*TableStats{}}
	for _, name := range db.TableNames() {
		e.stats[name] = BuildTableStats(db.Table(name), buckets)
	}
	return e
}

// Name implements engine.CardEstimator.
func (e *SketchEstimator) Name() string { return "sketch" }

// conjSelectivity multiplies per-column constraint selectivities (AVI).
func (e *SketchEstimator) conjSelectivity(t *engine.QueryTable, preds []expr.Pred) float64 {
	ts := e.stats[t.Name]
	if ts == nil {
		return 1
	}
	constraints := expr.BuildConstraints(preds, func(col string, d types.Datum) (float64, bool) {
		return t.Table.ColByName(col).EncodeDatum(d)
	})
	sel := 1.0
	for _, c := range constraints {
		sel *= ts.Cols[c.Col].selConstraint(c)
	}
	return sel
}

// filterSelectivity handles general trees via inclusion–exclusion over the
// DNF terms, with each conjunction estimated under AVI.
func (e *SketchEstimator) filterSelectivity(t *engine.QueryTable) float64 {
	if t.Filter == nil {
		return 1
	}
	terms, err := t.Filter.InclusionExclusion()
	if err != nil {
		// Oversize expansion: fall back to evaluating OR as independent.
		return e.conjSelectivity(t, t.Filter.Leaves())
	}
	var sel float64
	for _, term := range terms {
		sel += term.Sign * e.conjSelectivity(t, term.Preds)
	}
	return clamp01(sel)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EstimateFilter implements engine.CardEstimator.
func (e *SketchEstimator) EstimateFilter(t *engine.QueryTable) float64 {
	ts := e.stats[t.Name]
	if ts == nil {
		return float64(t.Table.NumRows())
	}
	return ts.Rows * e.filterSelectivity(t)
}

// EstimateConj implements engine.CardEstimator.
func (e *SketchEstimator) EstimateConj(t *engine.QueryTable, preds []expr.Pred) float64 {
	return clamp01(e.conjSelectivity(t, preds))
}

// EstimateJoin implements engine.CardEstimator with the classic
// join-uniformity estimate |L⋈R| = |L|·|R| / max(ndv(l), ndv(r)) applied
// per join condition over the filtered cross product.
func (e *SketchEstimator) EstimateJoin(tables []*engine.QueryTable, joins []engine.JoinCond) float64 {
	rows := 1.0
	for _, t := range tables {
		r := e.EstimateFilter(t)
		if r < 1 {
			r = 1
		}
		rows *= r
	}
	byBinding := map[string]*engine.QueryTable{}
	for _, t := range tables {
		byBinding[t.Binding] = t
	}
	for _, j := range joins {
		l, r := byBinding[j.LeftTab], byBinding[j.RightTab]
		ndv := math.Max(e.colNDV(l, j.LeftCol), e.colNDV(r, j.RightCol))
		if ndv < 1 {
			ndv = 1
		}
		rows /= ndv
	}
	return math.Max(rows, 1)
}

func (e *SketchEstimator) colNDV(t *engine.QueryTable, col string) float64 {
	ts := e.stats[t.Name]
	if ts == nil || ts.Cols[col] == nil {
		return 1
	}
	return ts.Cols[col].NDV
}

// EstimateGroupNDV implements engine.CardEstimator: per-key HLL NDVs
// adjusted for filters with the Cardenas formula and multiplied under
// independence, capped by the estimated input size — the combination whose
// breakdown under correlated keys motivates RBX.
func (e *SketchEstimator) EstimateGroupNDV(q *engine.Query) float64 {
	ndv := 1.0
	for _, g := range q.GroupBy {
		t := q.TableByBinding(g.Tab)
		ts := e.stats[t.Name]
		if ts == nil || ts.Cols[g.Col] == nil {
			continue
		}
		d := ts.Cols[g.Col].NDV
		filtered := e.EstimateFilter(t)
		ndv *= math.Max(Cardenas(d, ts.Rows, filtered), 1)
	}
	// Cap by the (rough) output size of the join.
	if len(q.Tables) == 1 {
		ndv = math.Min(ndv, math.Max(e.EstimateFilter(q.Tables[0]), 1))
	} else {
		ndv = math.Min(ndv, math.Max(e.EstimateJoin(q.Tables, q.Joins), 1))
	}
	return ndv
}
