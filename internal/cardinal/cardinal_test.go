package cardinal

import (
	"math"
	"testing"
	"testing/quick"

	"bytecard/internal/datagen"
	"bytecard/internal/engine"
	"bytecard/internal/sqlparse"
)

func TestQError(t *testing.T) {
	if QError(100, 100) != 1 {
		t.Error("exact estimate must have Q-error 1")
	}
	if QError(10, 1000) != 100 || QError(1000, 10) != 100 {
		t.Error("Q-error must be symmetric")
	}
	if QError(0, 0) != 1 {
		t.Error("both-below-one must floor to 1")
	}
	if QError(0.5, 100) != 100 {
		t.Errorf("QError(0.5,100) = %g, want 100 (estimate floored at 1)", QError(0.5, 100))
	}
}

func TestQuickQErrorProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		e, tr := float64(a%100000)+1, float64(b%100000)+1
		q := QError(e, tr)
		return q >= 1 && q == QError(tr, e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 {
		t.Error("extreme quantiles broken")
	}
	if Quantile(vals, 0.5) != 3 {
		t.Errorf("median = %g", Quantile(vals, 0.5))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
}

// TestQuantileBoundaries pins the documented contract: linear
// interpolation between order statistics (the R/NumPy "linear" method,
// not nearest-rank), exact-rank hits returning the element itself, and
// the empty/single/extreme edge cases.
func TestQuantileBoundaries(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0)) || !math.IsNaN(Quantile([]float64{}, 1)) {
		t.Error("empty input must be NaN at every q")
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := Quantile([]float64{7}, q); v != 7 {
			t.Errorf("single element at q=%g: %g, want 7", q, v)
		}
	}
	vals := []float64{40, 10, 30, 20} // unsorted on purpose
	if Quantile(vals, -0.5) != 10 || Quantile(vals, 0) != 10 {
		t.Error("q <= 0 must return the minimum")
	}
	if Quantile(vals, 1) != 40 || Quantile(vals, 1.5) != 40 {
		t.Error("q >= 1 must return the maximum")
	}
	// Exact rank hits: positions 0, 1, 2, 3 at q = i/(n-1).
	for i, want := range []float64{10, 20, 30, 40} {
		q := float64(i) / 3
		if v := Quantile(vals, q); v != want {
			t.Errorf("exact rank q=%g: %g, want %g", q, v, want)
		}
	}
	// Between ranks: linear interpolation, not a nearest-rank snap.
	if v := Quantile(vals, 0.5); v != 25 {
		t.Errorf("q=0.5 over 4 values: %g, want interpolated 25", v)
	}
	if v := Quantile(vals, 0.25+0.375); v < 28.74 || v > 28.76 {
		t.Errorf("q=0.625: %g, want 28.75", v)
	}
	// The input slice must not be reordered.
	if vals[0] != 40 || vals[3] != 20 {
		t.Errorf("Quantile mutated its input: %v", vals)
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := Summarize(vals)
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.P50-50.5) > 1 || math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("P50=%g Mean=%g", s.P50, s.Mean)
	}
	if s.P90 < s.P75 || s.P99 < s.P90 {
		t.Error("quantiles must be monotone")
	}
	if Summarize(nil).Count != 0 {
		t.Error("empty summary")
	}
}

func TestCardenas(t *testing.T) {
	if Cardenas(100, 1000, 1000) != 100 {
		t.Error("selecting everything keeps all distinct values")
	}
	if Cardenas(100, 1000, 0) != 0 {
		t.Error("selecting nothing keeps none")
	}
	got := Cardenas(10, 1000, 500)
	if got < 9 || got > 10 {
		t.Errorf("frequent values survive: got %g", got)
	}
	got = Cardenas(1000, 1000, 10)
	if got > 10 {
		t.Errorf("cannot exceed selected rows: got %g", got)
	}
}

func toyHarness(t *testing.T, est engine.CardEstimator) (*engine.Engine, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Toy(datagen.Config{Scale: 2, Seed: 21})
	return engine.New(ds.DB, ds.Schema, est), ds
}

// analyzeTable returns the analyzed single-table query for estimator tests.
func analyzeQuery(t *testing.T, e *engine.Engine, sql string) *engine.Query {
	t.Helper()
	q, err := e.Analyze(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSketchSingleColumnAccuracy(t *testing.T) {
	var est *SketchEstimator
	e, ds := toyHarness(t, nil)
	est = NewSketchEstimator(ds.DB, 64)
	e.Est = est
	q := analyzeQuery(t, e, "SELECT COUNT(*) FROM fact WHERE val < 50")
	got := est.EstimateFilter(q.Tables[0])
	truth, err := e.TrueCardinality("SELECT COUNT(*) FROM fact WHERE val < 50")
	if err != nil {
		t.Fatal(err)
	}
	if QError(got, truth) > 1.25 {
		t.Errorf("single-column estimate %g vs truth %g", got, truth)
	}
}

func TestSketchAVIMissesCorrelation(t *testing.T) {
	// flag is fully determined by val (flag=1 ⇔ val>=50): the conjunction
	// val>=50 AND flag=0 is empty, but AVI predicts ~25% of rows. The
	// traditional estimator must overestimate badly — this is Table 1's
	// mechanism, so assert the weakness is reproduced.
	e, ds := toyHarness(t, nil)
	est := NewSketchEstimator(ds.DB, 64)
	e.Est = est
	q := analyzeQuery(t, e, "SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 0")
	got := est.EstimateFilter(q.Tables[0])
	n := float64(ds.DB.Table("fact").NumRows())
	if got < n*0.1 {
		t.Errorf("AVI estimate %g should be far above the true 0 (n=%g)", got, n)
	}
}

func TestSketchJoinEstimate(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSketchEstimator(ds.DB, 64)
	e.Est = est
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id"
	q := analyzeQuery(t, e, sql)
	got := est.EstimateJoin(q.Tables, q.Joins)
	truth, err := e.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if QError(got, truth) > 3 {
		t.Errorf("PK-FK join estimate %g vs truth %g (q=%g)", got, truth, QError(got, truth))
	}
}

func TestSketchGroupNDV(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSketchEstimator(ds.DB, 64)
	e.Est = est
	q := analyzeQuery(t, e, "SELECT cat, COUNT(*) FROM dim GROUP BY cat")
	got := est.EstimateGroupNDV(q)
	if got < 3 || got > 10 {
		t.Errorf("group NDV = %g, want ~5", got)
	}
}

func TestSketchORInclusionExclusion(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSketchEstimator(ds.DB, 64)
	e.Est = est
	sql := "SELECT COUNT(*) FROM fact WHERE val < 20 OR val >= 80"
	q := analyzeQuery(t, e, sql)
	got := est.EstimateFilter(q.Tables[0])
	truth, err := e.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if QError(got, truth) > 1.3 {
		t.Errorf("OR estimate %g vs truth %g", got, truth)
	}
}

func TestSampleFilterAccuracy(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSampleEstimator(ds.DB, 500, 3)
	e.Est = est
	sql := "SELECT COUNT(*) FROM fact WHERE val >= 50 AND flag = 1"
	q := analyzeQuery(t, e, sql)
	got := est.EstimateFilter(q.Tables[0])
	truth, err := e.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	// Sample sees the correlation directly, unlike AVI.
	if QError(got, truth) > 1.5 {
		t.Errorf("sample estimate %g vs truth %g", got, truth)
	}
}

func TestSampleJoinEstimate(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSampleEstimator(ds.DB, 800, 3)
	e.Est = est
	sql := "SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND d.cat <= 3"
	q := analyzeQuery(t, e, sql)
	got := est.EstimateJoin(q.Tables, q.Joins)
	truth, err := e.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if QError(got, truth) > 5 {
		t.Errorf("sample join estimate %g vs truth %g", got, truth)
	}
}

func TestSampleGroupNDV(t *testing.T) {
	e, ds := toyHarness(t, nil)
	est := NewSampleEstimator(ds.DB, 500, 3)
	e.Est = est
	q := analyzeQuery(t, e, "SELECT cat, COUNT(*) FROM dim GROUP BY cat")
	got := est.EstimateGroupNDV(q)
	if got < 2 || got > 20 {
		t.Errorf("sample group NDV = %g, want ~5", got)
	}
}

func TestEstimatorsDriveEngine(t *testing.T) {
	// Both estimators must plug into the engine and produce correct
	// results (plans differ; answers must not).
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 9})
	sqls := []string{
		"SELECT COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id AND f.val < 30",
		"SELECT d.cat, COUNT(*) FROM fact f, dim d WHERE f.dim_id = d.id GROUP BY d.cat",
	}
	ref := engine.New(ds.DB, ds.Schema, engine.HeuristicEstimator{})
	for _, mk := range []func() engine.CardEstimator{
		func() engine.CardEstimator { return NewSketchEstimator(ds.DB, 32) },
		func() engine.CardEstimator { return NewSampleEstimator(ds.DB, 300, 5) },
	} {
		e := engine.New(ds.DB, ds.Schema, mk())
		for _, sql := range sqls {
			a, err := e.Run(sql)
			if err != nil {
				t.Fatalf("%s with %s: %v", sql, e.Est.Name(), err)
			}
			b, err := ref.Run(sql)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Errorf("%s: %d vs %d rows", sql, len(a.Rows), len(b.Rows))
			}
		}
	}
}

func TestSketchNamesAndFallbacks(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 1, Seed: 9})
	sk := NewSketchEstimator(ds.DB, 32)
	sm := NewSampleEstimator(ds.DB, 100, 1)
	if sk.Name() != "sketch" || sm.Name() != "sample" {
		t.Error("names broken")
	}
}

func TestSampleEstimatorRate(t *testing.T) {
	ds := datagen.Toy(datagen.Config{Scale: 4, Seed: 13})
	// 2% of fact (1600 rows → 32) clamps to min 50.
	est := NewSampleEstimatorRate(ds.DB, 0.02, 50, 200, 3)
	e := engine.New(ds.DB, ds.Schema, est)
	q := analyzeQuery(t, e, "SELECT COUNT(*) FROM fact WHERE val < 50")
	got := est.EstimateFilter(q.Tables[0])
	truth, err := e.TrueCardinality("SELECT COUNT(*) FROM fact WHERE val < 50")
	if err != nil {
		t.Fatal(err)
	}
	// Coarse: a 50-row sample should land within 2x on a 50% filter.
	if qe := QError(got, truth); qe > 2 {
		t.Errorf("rate-sampled estimate %g vs truth %g (q=%g)", got, truth, qe)
	}
	// Defaults clamp sanely.
	est2 := NewSampleEstimatorRate(ds.DB, 0, 0, 0, 3)
	if est2 == nil {
		t.Fatal("default-rate estimator missing")
	}
}

func TestSampleJoinLiveColumnChain(t *testing.T) {
	// Three-table chain through the sample join's signature compression.
	ds := datagen.Toy(datagen.Config{Scale: 2, Seed: 14})
	est := NewSampleEstimator(ds.DB, 400, 5)
	e := engine.New(ds.DB, ds.Schema, est)
	// Self-join style chain: fact ⋈ dim ⋈ fact2 is unavailable in toy, so
	// exercise the 2-cond path via aliases.
	sql := "SELECT COUNT(*) FROM fact f1, dim d, fact f2 WHERE f1.dim_id = d.id AND f2.dim_id = d.id AND f1.val < 30 AND f2.val > 70"
	q := analyzeQuery(t, e, sql)
	got := est.EstimateJoin(q.Tables, q.Joins)
	truth, err := e.TrueCardinality(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qe := QError(got, truth); qe > 30 {
		t.Errorf("chain sample estimate %g vs truth %g (q=%g)", got, truth, qe)
	}
}
